package gridrank

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func persistIndex(t *testing.T) *Index {
	t.Helper()
	P, err := GenerateProducts(21, Clustered, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(22, Uniform, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, &Options{GridPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIndexRoundTrip(t *testing.T) {
	ix := persistIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != ix.Dim() || got.NumProducts() != ix.NumProducts() ||
		got.NumPreferences() != ix.NumPreferences() || got.GridPartitions() != ix.GridPartitions() {
		t.Fatalf("metadata lost: %d/%d/%d/%d", got.Dim(), got.NumProducts(),
			got.NumPreferences(), got.GridPartitions())
	}
	// Query equivalence on several products.
	for _, qi := range []int{0, 100, 399} {
		q := ix.Products()[qi]
		want, err := ix.ReverseKRanksCtx(context.Background(), q, 7)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.ReverseKRanksCtx(context.Background(), q, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("q=%d: loaded index answers differ: %+v vs %+v", qi, have, want)
			}
		}
	}
}

func TestIndexSaveLoadFile(t *testing.T) {
	ix := persistIndex(t)
	path := filepath.Join(t.TempDir(), "index.gri")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProducts() != ix.NumProducts() {
		t.Fatal("file round trip lost products")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); !os.IsNotExist(err) {
		t.Errorf("missing file: %v", err)
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX"),
		"truncated": func() []byte {
			ix := persistIndex(t)
			var buf bytes.Buffer
			ix.WriteTo(&buf)
			return buf.Bytes()[:buf.Len()/2]
		}(),
	}
	for name, data := range cases {
		if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrBadIndexFile) {
			t.Errorf("%s: err = %v, want ErrBadIndexFile", name, err)
		}
	}
}

// TestWriteToCountsAllBytes pins the io.WriterTo contract: the returned
// count is the whole serialized stream, not just the header (a former
// bug — the buffered body bytes were flushed but never counted).
func TestWriteToCountsAllBytes(t *testing.T) {
	ix := persistIndex(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo returned %d, but wrote %d bytes", n, buf.Len())
	}
	if n <= 16 {
		t.Fatalf("WriteTo wrote only %d bytes — header without body?", n)
	}
	// Against a real file: the count must equal the file size.
	path := filepath.Join(t.TempDir(), "ix.gri")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := ix.WriteTo(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fn != st.Size() {
		t.Fatalf("WriteTo returned %d, file holds %d bytes", fn, st.Size())
	}
}

// TestSaveIsAtomic pins the crash-safe Save: the target file is
// replaced wholesale by rename (never truncated and rewritten in
// place), no temporary files survive, and a reader racing a rewrite
// always loads a complete index.
func TestSaveIsAtomic(t *testing.T) {
	ix := persistIndex(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.gri")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if os.SameFile(before, after) {
		t.Fatal("Save rewrote the index file in place; want atomic replacement via rename")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "index.gri" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("Save left extra files behind: %v", names)
	}
	// A failed Save (unwritable directory path) must leave the existing
	// good file untouched.
	if err := ix.Save(filepath.Join(dir, "missing", "index.gri")); err == nil {
		t.Fatal("Save into a missing directory succeeded")
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("existing index unreadable after failed Save: %v", err)
	}
	// Readers racing rewrites must always observe a complete file.
	stop := make(chan struct{})
	loadErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				loadErr <- nil
				return
			default:
			}
			if _, err := Load(path); err != nil {
				loadErr <- fmt.Errorf("concurrent Load: %w", err)
				return
			}
		}
	}()
	for i := 0; i < 25; i++ {
		if err := ix.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-loadErr; err != nil {
		t.Fatal(err)
	}
}

func TestProductAccessor(t *testing.T) {
	ix := persistIndex(t)
	p, err := ix.Product(3)
	if err != nil {
		t.Fatal(err)
	}
	p[0] = -999 // must be a copy
	if ix.Products()[3][0] == -999 {
		t.Error("Product returned aliased storage")
	}
	if _, err := ix.Product(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := ix.Product(400); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// TestCheckpointFailurePaths is the error-injection audit of the
// Checkpoint seam: a failure in either stage — the durable save or the
// remap of the just-written file — must leave the index exactly as it
// was (same epoch, same answers, same mappings, no temp litter) and
// must stay retryable.
func TestCheckpointFailurePaths(t *testing.T) {
	ix := persistIndex(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ix.gri3")
	ctx := context.Background()
	q := Vector{0.3, 0.4, 0.2, 0.6, 0.5}
	want, err := ix.ReverseTopKCtx(ctx, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkUntouched := func(t *testing.T, wantMapped int) {
		t.Helper()
		if got := len(ix.mapped); got != wantMapped {
			t.Fatalf("mappings = %d, want %d", got, wantMapped)
		}
		if ix.Epoch() != 0 {
			t.Fatalf("failed checkpoint moved the epoch to %d", ix.Epoch())
		}
		got, err := ix.ReverseTopKCtx(ctx, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !sameInts(got, want) {
			t.Fatalf("answers changed after failed checkpoint: %v vs %v", got, want)
		}
		tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(tmps) != 0 {
			t.Fatalf("failed checkpoint left temp files: %v", tmps)
		}
	}

	// Stage 1: the save's directory sync fails. The rename has happened
	// (the file at path is complete), but Checkpoint must report the
	// error and republish nothing.
	origSync := fsyncDir
	boomSync := errors.New("injected dir sync failure")
	fsyncDir = func(string) error { return boomSync }
	if err := ix.Checkpoint(ckpt); !errors.Is(err, boomSync) {
		t.Fatalf("Checkpoint swallowed the sync failure: %v", err)
	}
	fsyncDir = origSync
	checkUntouched(t, 0)

	// Stage 2: the save succeeds but the remap fails. The index keeps
	// serving its heap epoch; the saved file remains complete on disk.
	origLoad := checkpointLoad
	boomLoad := errors.New("injected remap failure")
	checkpointLoad = func(string) (*Index, error) { return nil, boomLoad }
	if err := ix.Checkpoint(ckpt); !errors.Is(err, boomLoad) {
		t.Fatalf("Checkpoint swallowed the remap failure: %v", err)
	}
	checkpointLoad = origLoad
	checkUntouched(t, 0)
	// The file the failed checkpoint wrote is complete: it loads.
	re, err := Load(ckpt)
	if err != nil {
		t.Fatalf("file from failed checkpoint does not load: %v", err)
	}
	if re.NumProducts() != ix.NumProducts() {
		t.Fatal("file from failed checkpoint lost elements")
	}

	// Both seams restored: the retry succeeds and republishes from the
	// new mapping.
	if err := ix.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	mapped := len(ix.mapped)
	if mapped == 0 {
		t.Fatal("successful checkpoint adopted no mapping")
	}

	// A failed re-checkpoint after a successful one must not disturb the
	// live mapping the published epoch is backed by.
	checkpointLoad = func(string) (*Index, error) { return nil, boomLoad }
	if err := ix.Checkpoint(ckpt); !errors.Is(err, boomLoad) {
		t.Fatalf("re-checkpoint swallowed the remap failure: %v", err)
	}
	checkpointLoad = origLoad
	if got := len(ix.mapped); got != mapped {
		t.Fatalf("failed re-checkpoint changed mappings: %d, want %d", got, mapped)
	}
	got, err := ix.ReverseTopKCtx(ctx, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(got, want) {
		t.Fatalf("answers changed after failed re-checkpoint: %v vs %v", got, want)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}
