package gridrank

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func persistIndex(t *testing.T) *Index {
	t.Helper()
	P, err := GenerateProducts(21, Clustered, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(22, Uniform, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, &Options{GridPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIndexRoundTrip(t *testing.T) {
	ix := persistIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != ix.Dim() || got.NumProducts() != ix.NumProducts() ||
		got.NumPreferences() != ix.NumPreferences() || got.GridPartitions() != ix.GridPartitions() {
		t.Fatalf("metadata lost: %d/%d/%d/%d", got.Dim(), got.NumProducts(),
			got.NumPreferences(), got.GridPartitions())
	}
	// Query equivalence on several products.
	for _, qi := range []int{0, 100, 399} {
		q := ix.Products()[qi]
		want, err := ix.ReverseKRanksCtx(context.Background(), q, 7)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.ReverseKRanksCtx(context.Background(), q, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("q=%d: loaded index answers differ: %+v vs %+v", qi, have, want)
			}
		}
	}
}

func TestIndexSaveLoadFile(t *testing.T) {
	ix := persistIndex(t)
	path := filepath.Join(t.TempDir(), "index.gri")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProducts() != ix.NumProducts() {
		t.Fatal("file round trip lost products")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); !os.IsNotExist(err) {
		t.Errorf("missing file: %v", err)
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX"),
		"truncated": func() []byte {
			ix := persistIndex(t)
			var buf bytes.Buffer
			ix.WriteTo(&buf)
			return buf.Bytes()[:buf.Len()/2]
		}(),
	}
	for name, data := range cases {
		if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrBadIndexFile) {
			t.Errorf("%s: err = %v, want ErrBadIndexFile", name, err)
		}
	}
}

func TestProductAccessor(t *testing.T) {
	ix := persistIndex(t)
	p, err := ix.Product(3)
	if err != nil {
		t.Fatal(err)
	}
	p[0] = -999 // must be a copy
	if ix.Products()[3][0] == -999 {
		t.Error("Product returned aliased storage")
	}
	if _, err := ix.Product(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := ix.Product(400); err == nil {
		t.Error("out-of-range index accepted")
	}
}
