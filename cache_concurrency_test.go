package gridrank

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// The concurrency side of the cache proof: N queriers race M mutators on
// a cache-enabled index (run under -race in CI) and every answer's
// served epoch must be at least the epoch of the last mutation that
// could have affected that query — i.e. the cache never serves a stale
// entry. Staleness is decided with the same dominance predicate the
// cache uses (DESIGN.md §12): a product row affects a query unless it is
// componentwise >= the query; preference mutations affect every query.

// affectsQuery mirrors internal/cache.rowAffects for the test's oracle.
func affectsQuery(row, q Vector) bool {
	if len(row) != len(q) {
		return true
	}
	for j := range row {
		if !(row[j] >= q[j]) {
			return true
		}
	}
	return false
}

// mutRecord is one entry of the shared mutation log: the epoch the
// mutation installed, and the product row it touched (nil for
// preference mutations, which affect every query).
type mutRecord struct {
	seq uint64
	row Vector // nil: affects all queries
}

// TestCacheConcurrencyNoStaleEpoch races 4 queriers against 2 mutators
// on a cache-enabled index. Each querier computes, from the shared
// mutation log, the epoch of the last mutation affecting its query
// before it runs, then asserts the served epoch (WithServedEpoch) is at
// least that — catching any window where an invalidation sweep lags the
// epoch install or a racing store resurrects a pre-mutation answer. The
// test is goroutine-leak-checked.
func TestCacheConcurrencyNoStaleEpoch(t *testing.T) {
	before := runtime.NumGoroutine()

	P, err := GenerateProducts(71, Clustered, 250, 3)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(72, Uniform, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, &Options{GridPartitions: 12, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	// The query pool is fixed and shared, so queriers repeatedly ask the
	// same questions and the cache serves real hits under mutation.
	rng := rand.New(rand.NewSource(73))
	pool := make([]Vector, 6)
	for i := range pool {
		pool[i] = randProduct(rng, 3, 1.0)
	}

	// logMu serializes mutate -> Epoch() -> append, so each log record
	// carries the exact epoch its mutation installed, and queriers read
	// a prefix-consistent log.
	var logMu sync.Mutex
	var mutLog []mutRecord

	const mutations = 80
	ctx := context.Background()
	stop := make(chan struct{})
	errc := make(chan error, 16)
	var qwg, mwg sync.WaitGroup

	for g := 0; g < 4; g++ {
		qwg.Add(1)
		go func(seed int64) {
			defer qwg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := pool[rng.Intn(len(pool))]
				// Floor first, query second: any mutation that lands in
				// between only raises the served epoch further above the
				// floor, so the assertion stays one-sided and sound.
				logMu.Lock()
				var floor uint64
				for _, m := range mutLog {
					if m.row == nil || affectsQuery(m.row, q) {
						floor = m.seq
					}
				}
				logMu.Unlock()
				var served uint64
				var err error
				if rng.Intn(2) == 0 {
					_, err = ix.ReverseTopKCtx(ctx, q, 5, WithServedEpoch(&served))
				} else {
					_, err = ix.ReverseKRanksCtx(ctx, q, 5, WithServedEpoch(&served))
				}
				if err != nil {
					errc <- err
					return
				}
				if served < floor {
					errc <- fmt.Errorf("stale cache serve: answer epoch %d < last affecting mutation epoch %d", served, floor)
					return
				}
			}
		}(int64(100 + g))
	}

	// Product mutator: inserts and deletes, logging the touched row.
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		rng := rand.New(rand.NewSource(200))
		for i := 0; i < mutations; i++ {
			logMu.Lock()
			if rng.Intn(2) == 0 || ix.NumProducts() < 50 {
				p := randProduct(rng, 3, 1.0)
				if _, err := ix.InsertProduct(p); err != nil {
					logMu.Unlock()
					errc <- err
					return
				}
				mutLog = append(mutLog, mutRecord{seq: ix.Epoch(), row: p})
			} else {
				id := rng.Intn(ix.NumProducts())
				row, err := ix.Product(id)
				if err == nil {
					err = ix.DeleteProduct(id)
				}
				if err != nil {
					logMu.Unlock()
					errc <- err
					return
				}
				mutLog = append(mutLog, mutRecord{seq: ix.Epoch(), row: row})
			}
			logMu.Unlock()
		}
	}()

	// Preference mutator: every preference mutation affects every query.
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		rng := rand.New(rand.NewSource(300))
		for i := 0; i < mutations; i++ {
			logMu.Lock()
			var err error
			if rng.Intn(2) == 0 || ix.NumPreferences() < 30 {
				_, err = ix.InsertPreference(randPreference(rng, 3))
			} else {
				err = ix.DeletePreference(rng.Intn(ix.NumPreferences()))
			}
			if err != nil {
				logMu.Unlock()
				errc <- err
				return
			}
			mutLog = append(mutLog, mutRecord{seq: ix.Epoch(), row: nil})
			logMu.Unlock()
		}
	}()

	mwg.Wait()
	close(stop)
	qwg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	cs, ok := ix.CacheStats()
	if !ok {
		t.Fatal("cache disabled mid-test")
	}
	if cs.Hits == 0 {
		t.Fatalf("queriers never hit the cache: %+v", cs)
	}
	if cs.Invalidations == 0 && cs.Flushes == 0 {
		t.Fatalf("mutators never invalidated anything: %+v", cs)
	}

	// Goroutine-leak check: everything the test started must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}
}
