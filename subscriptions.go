package gridrank

// Continuous reverse-rank subscriptions (internal/sub) wiring: the
// Subscribe surface, the publish hooks the mutation paths call, and the
// stats surface. A subscription monitors one (q, k, kind) reverse rank
// answer set; on every epoch install the registry diffs only the
// perturbed region and emits enter/leave events. The hooks run under
// ix.mu immediately after the epoch store — the exact sequencing of the
// answer-cache hooks in answercache.go — so the event stream observes
// epochs in install order with no gaps. DESIGN.md §15 argues the diff
// pass's soundness.

import (
	"errors"
	"fmt"

	"gridrank/internal/flight"
	"gridrank/internal/sub"
	"gridrank/internal/trace"
)

// SubKind selects the query a subscription monitors.
type SubKind = sub.Kind

// Subscription kinds.
const (
	// SubReverseTopK monitors the reverse top-k answer set of (q, k).
	SubReverseTopK = sub.KindTopK
	// SubReverseKRanks monitors the reverse k-ranks answer set of (q, k).
	SubReverseKRanks = sub.KindKRanks
)

// SubEvent is one enter/leave change of a subscription's answer set.
type SubEvent = sub.Event

// Subscription event types.
const (
	SubEnter = sub.Enter
	SubLeave = sub.Leave
)

// SubMember is one current member of a subscription's answer set.
type SubMember = sub.Member

// ErrTooManySubscribers reports a Subscribe against a full registry
// (see SetSubscriberLimit).
var ErrTooManySubscribers = sub.ErrLimit

// DefaultSubEventBuffer is the per-subscription event buffer used when
// Subscribe is called with buffer <= 0.
const DefaultSubEventBuffer = 256

// SubStats is a snapshot of the subscription registry's counters.
type SubStats struct {
	Monitors     int64 // currently registered subscriptions
	Subscribed   int64 // subscriptions ever registered
	Unsubscribed int64 // subscriptions closed by their owners
	Events       int64 // enter/leave events delivered
	Lagged       int64 // subscriptions cancelled for a full buffer

	DiffPasses int64 // single-mutation epochs diffed incrementally
	FullPasses int64 // rebuild epochs recomputed per monitor
	GatedSkips int64 // monitor×epoch pairs skipped by the dominance gate

	PrefsDiffEvaluated    int64 // preference vectors examined by diff passes
	PrefsDiffFullCost     int64 // what full recomputes would have examined there
	PrefsRebuildEvaluated int64 // preference vectors examined on rebuild epochs
}

// Subscription is a live monitor over one reverse rank answer set.
type Subscription struct {
	ix      *Index
	m       *sub.Monitor
	initial []SubMember
}

// ID returns the subscription's index-unique id.
func (s *Subscription) ID() uint64 { return s.m.ID() }

// Kind returns the monitored query kind.
func (s *Subscription) Kind() SubKind { return s.m.Kind() }

// K returns the monitored k.
func (s *Subscription) K() int { return s.m.K() }

// Query returns the monitored point. The caller must not mutate it.
func (s *Subscription) Query() Vector { return s.m.Query() }

// Initial returns the answer set at subscribe time, ascending by
// preference id. Events describe changes relative to it.
func (s *Subscription) Initial() []SubMember { return s.initial }

// Events is the subscription's event stream. An epoch's events are
// fully buffered before the mutation that installed it returns. The
// channel closes when the subscription ends — via Close, or when the
// consumer fell behind (Lagged reports which).
func (s *Subscription) Events() <-chan SubEvent { return s.m.Events() }

// Lagged reports that the index cancelled this subscription because its
// event buffer overflowed: the stream is incomplete and the consumer
// must re-subscribe to resynchronize.
func (s *Subscription) Lagged() bool { return s.m.Lagged() }

// Close ends the subscription and closes its event channel. Closing an
// already-ended subscription is a no-op.
func (s *Subscription) Close() {
	s.ix.mu.Lock()
	defer s.ix.mu.Unlock()
	if r := s.ix.subs.Load(); r != nil {
		if r.Unsubscribe(s.m.ID()) {
			s.ix.recordSubEvent(flight.OpUnsubscribe, s.m.K(), subKindCode(s.m.Kind()), int64(s.m.ID()))
		}
	}
}

// SetSubscriberLimit bounds the number of live subscriptions (0 =
// unlimited, the default). Lowering the limit below the current count
// keeps existing subscriptions and only refuses new ones.
func (ix *Index) SetSubscriberLimit(n int) error {
	if n < 0 {
		return fmt.Errorf("gridrank: subscriber limit must be non-negative, got %d", n)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.registry().SetLimit(n)
	return nil
}

// SetSubscriptionTracer attaches a tracer to the subscription diff
// pass: each notified epoch records a span tree (diff vs rebuild, per
// pass) under the tracer's usual sampling rules. nil detaches.
func (ix *Index) SetSubscriptionTracer(t *trace.Tracer) {
	ix.mu.Lock()
	ix.subTracer = t
	ix.mu.Unlock()
}

// Subscribe registers a monitor over the (q, k, kind) reverse rank
// answer set. The initial membership (Subscription.Initial) is computed
// against the epoch current at the call, and every later epoch's
// changes arrive on Events before the installing mutation returns.
// buffer bounds undelivered events (<= 0 uses DefaultSubEventBuffer); a
// subscriber that lets it fill is cancelled with Lagged set rather than
// sent a gapped stream.
func (ix *Index) Subscribe(q Vector, k int, kind SubKind, buffer int) (*Subscription, error) {
	if err := ix.checkQuery(q, k); err != nil {
		return nil, err
	}
	if kind != SubReverseTopK && kind != SubReverseKRanks {
		return nil, errors.New("gridrank: unknown subscription kind")
	}
	if buffer <= 0 {
		buffer = DefaultSubEventBuffer
	}
	// Serialized with mutators: the initial set and the event stream
	// splice at exactly one epoch boundary.
	ix.mu.Lock()
	defer ix.mu.Unlock()
	m, err := ix.registry().Subscribe(q, k, kind, buffer, subSnapshot(ix.snap()))
	if err != nil {
		return nil, err
	}
	s := &Subscription{ix: ix, m: m}
	if mem, ok := ix.registry().Members(m.ID()); ok {
		s.initial = mem
	}
	ix.recordSubEvent(flight.OpSubscribe, k, subKindCode(kind), int64(m.ID()))
	return s, nil
}

// subKindCode maps a subscription kind to its flight-record Aux1 code.
func subKindCode(kind SubKind) int64 {
	if kind == SubReverseKRanks {
		return 1
	}
	return 0
}

// SubscriptionStats returns the subscription registry's counters. The
// zero value is returned before the first Subscribe.
func (ix *Index) SubscriptionStats() SubStats {
	r := ix.subs.Load()
	if r == nil {
		return SubStats{}
	}
	c := r.Counts()
	return SubStats{
		Monitors:              c.Monitors,
		Subscribed:            c.Subscribed,
		Unsubscribed:          c.Unsubscribed,
		Events:                c.Events,
		Lagged:                c.Lagged,
		DiffPasses:            c.DiffPasses,
		FullPasses:            c.FullPasses,
		GatedSkips:            c.GatedSkips,
		PrefsDiffEvaluated:    c.PrefsDiffEvaluated,
		PrefsDiffFullCost:     c.PrefsDiffFullCost,
		PrefsRebuildEvaluated: c.PrefsRebuildEvaluated,
	}
}

// registry returns the subscription registry, creating it on first use
// (ix.mu held).
func (ix *Index) registry() *sub.Registry {
	if r := ix.subs.Load(); r != nil {
		return r
	}
	r := sub.NewRegistry(0)
	ix.subs.Store(r)
	return r
}

// subSnapshot wraps an epoch's rank machinery as the closures the
// registry diffs against.
func subSnapshot(e *epoch) sub.Snapshot {
	return sub.Snapshot{
		Seq:      e.seq,
		NumPrefs: e.wm.Len(),
		RankOf: func(wi int, q []float64, cutoff int) (int, bool) {
			return e.gir.RankOf(wi, q, cutoff)
		},
		Pref: e.wm.Row,
		TopKSet: func(q []float64, k int) []int {
			return e.gir.ReverseTopK(q, k, nil)
		},
		KRanksSet: func(q []float64, k int) []sub.Member {
			ms := e.gir.ReverseKRanks(q, k, nil)
			out := make([]sub.Member, len(ms))
			for i, m := range ms {
				out[i] = sub.Member{Pref: m.WeightIndex, Rank: m.Rank}
			}
			return out
		},
	}
}

// The publish hooks below run under ix.mu, immediately after the
// mutation stored its epoch and after the answer-cache hook — cache
// maintenance first, then event fan-out, both serialized with the
// install they describe.

// subDiffTrace opens a diff-pass trace when a tracer is attached
// (ix.mu held, so the field read is ordered with SetSubscriptionTracer).
func (ix *Index) subDiffTrace(op string, seq uint64) *trace.Trace {
	t := ix.subTracer
	if !t.Enabled() || ix.subs.Load() == nil {
		return nil
	}
	tr := t.Start("sub.diff", trace.Parent{})
	tr.SetAttr("op", op)
	tr.SetAttr("epoch", seq)
	return tr
}

// subFinish closes a diff-pass trace with the registry's counters.
func (ix *Index) subFinish(tr *trace.Trace) {
	if tr == nil {
		return
	}
	if r := ix.subs.Load(); r != nil {
		c := r.Counts()
		tr.SetAttr("monitors", c.Monitors)
		tr.SetAttr("prefsDiffEvaluated", c.PrefsDiffEvaluated)
	}
	tr.Finish()
}

// subOnProduct diffs subscriptions after a single-product insert or
// delete; row is the inserted point or the deleted point's former
// attributes.
func (ix *Index) subOnProduct(ne *epoch, row Vector, inserted bool) {
	r := ix.subs.Load()
	if r == nil {
		return
	}
	op := "insert_product"
	if !inserted {
		op = "delete_product"
	}
	tr := ix.subDiffTrace(op, ne.seq)
	sp := tr.StartSpan("diff.product")
	r.OnProductMutation(subSnapshot(ne), row, inserted)
	sp.End()
	ix.subFinish(tr)
}

// subOnPrefInsert diffs subscriptions after a single-preference insert.
func (ix *Index) subOnPrefInsert(ne *epoch, id int) {
	r := ix.subs.Load()
	if r == nil {
		return
	}
	tr := ix.subDiffTrace("insert_preference", ne.seq)
	sp := tr.StartSpan("diff.preference")
	r.OnPreferenceInsert(subSnapshot(ne), id)
	sp.End()
	ix.subFinish(tr)
}

// subOnPrefDelete diffs subscriptions after a single-preference delete;
// oldCount is the preference count before the delete.
func (ix *Index) subOnPrefDelete(ne *epoch, id, oldCount int) {
	r := ix.subs.Load()
	if r == nil {
		return
	}
	tr := ix.subDiffTrace("delete_preference", ne.seq)
	sp := tr.StartSpan("diff.preference")
	r.OnPreferenceDelete(subSnapshot(ne), id, oldCount)
	sp.End()
	ix.subFinish(tr)
}

// subOnRebuild recomputes every subscription against a rebuilt epoch
// (the batch mutation paths).
func (ix *Index) subOnRebuild(ne *epoch) {
	r := ix.subs.Load()
	if r == nil {
		return
	}
	tr := ix.subDiffTrace("rebuild", ne.seq)
	sp := tr.StartSpan("recompute")
	r.OnRebuild(subSnapshot(ne))
	sp.End()
	ix.subFinish(tr)
}
