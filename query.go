package gridrank

// The context-first query API. ReverseTopKCtx and ReverseKRanksCtx are
// the two entrypoints every other query method of Index reduces to: they
// take a context for cancellation and deadlines, and functional options
// for the per-call knobs that previously each demanded a dedicated
// method (explicit worker counts, work statistics). The request
// lifecycle is
//
//	ctx (cancellation, deadline)
//	  → option resolution (workers, stats sink)
//	    → validation (dimensions, finiteness, k)
//	      → GIR scan, polling ctx once per preference chunk
//
// A query whose context is cancelled or expires stops within one
// preference chunk on every goroutine and returns ctx.Err(); the stats
// sink of WithStats is still filled with the work performed up to that
// point, so an observability layer can account for abandoned work.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"gridrank/internal/algo"
	"gridrank/internal/cache"
	"gridrank/internal/flight"
	"gridrank/internal/stats"
	"gridrank/internal/trace"
)

// QueryOption configures one call of the context-first query API
// (ReverseTopKCtx, ReverseKRanksCtx). Options are applied in order
// before validation; a nil option is rejected.
type QueryOption func(*queryConfig) error

// queryConfig is the resolved per-call configuration.
type queryConfig struct {
	// workers is the intra-query worker count: -1 selects the index
	// default (Options.Parallelism / SetParallelism), 0 means GOMAXPROCS,
	// 1 forces the sequential scan, larger values shard W across that
	// many goroutines.
	workers int
	// stats, when non-nil, receives the query's work statistics.
	stats *Stats
	// tr, when non-nil, receives the query's execution spans.
	tr *trace.Trace
	// noCache bypasses the answer cache for this call (WithoutCache).
	noCache bool
	// servedEpoch, when non-nil, receives the epoch the answer is valid
	// against (WithServedEpoch).
	servedEpoch *uint64
	// reference forces the float64 reference scan layout for this call
	// (WithLayoutReference), even on an index built with PackedBits.
	reference bool
}

// WithWorkers sets the intra-query worker count for a single call,
// overriding the index default: 1 forces the sequential scan, values
// above 1 shard the preference set across that many goroutines, and 0
// means GOMAXPROCS. The answer is bit-identical for every worker count;
// negative counts are rejected with ErrBadParallelism.
func WithWorkers(n int) QueryOption {
	return func(cfg *queryConfig) error {
		if n < 0 {
			return fmt.Errorf("%w: got %d", ErrBadParallelism, n)
		}
		cfg.workers = n
		return nil
	}
}

// WithStats directs the query's work statistics into s. The sink is
// written exactly once, when the query returns — including on
// cancellation, where it holds the work performed before the context
// fired.
func WithStats(s *Stats) QueryOption {
	return func(cfg *queryConfig) error {
		if s == nil {
			return fmt.Errorf("gridrank: WithStats requires a non-nil sink")
		}
		cfg.stats = s
		return nil
	}
}

// WithTrace attaches the query to tr, an in-flight per-query trace from
// internal/trace: the snapshot load, the grid scan (with its Case-1/2/3
// breakdown), any parallel workers and the result merge each record a
// span. The HTTP server and the CLI's -explain mode construct traces;
// the trace is safe for use across the concurrent queries of a batch. A
// nil tr is allowed and means "not traced" — the query path then does no
// tracing work at all, so callers can pass their maybe-nil trace
// unconditionally.
func WithTrace(tr *trace.Trace) QueryOption {
	return func(cfg *queryConfig) error {
		cfg.tr = tr
		return nil
	}
}

// WithoutCache bypasses the answer cache for a single call: the query
// always runs the scan against the current snapshot, and its answer is
// not stored. Useful for measurements and for the cache's own
// correctness harness; answers are identical either way.
func WithoutCache() QueryOption {
	return func(cfg *queryConfig) error {
		cfg.noCache = true
		return nil
	}
}

// WithLayoutReference forces this call to classify cells through the
// float64 reference layout, even when the index was built with
// Options.PackedBits and normally scans bit-packed rows. Answers are
// byte-identical either way — the packed kernel adds the same bound
// addends in the same order — so the only observable difference is
// speed. Intended for A/B measurements and for layout-equivalence
// harnesses; on an unpacked index the option is a no-op.
func WithLayoutReference() QueryOption {
	return func(cfg *queryConfig) error {
		cfg.reference = true
		return nil
	}
}

// WithServedEpoch directs the epoch the answer is valid against into e,
// written exactly once when the query returns: the snapshot epoch when
// the scan ran, or the cached entry's epoch on an answer-cache hit (a
// cached answer may carry an older epoch than the current one — the
// invalidation sweeps guarantee it is still exact; see DESIGN.md §12).
func WithServedEpoch(e *uint64) QueryOption {
	return func(cfg *queryConfig) error {
		if e == nil {
			return fmt.Errorf("gridrank: WithServedEpoch requires a non-nil sink")
		}
		cfg.servedEpoch = e
		return nil
	}
}

// resolveOptions folds opts over the default configuration.
func resolveOptions(opts []QueryOption) (queryConfig, error) {
	cfg := queryConfig{workers: -1}
	for _, o := range opts {
		if o == nil {
			return cfg, fmt.Errorf("gridrank: nil QueryOption")
		}
		if err := o(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// resolveWorkers maps the option value to the explicit count the algo
// layer expects (always >= 1).
func (cfg *queryConfig) resolveWorkers(ix *Index) int {
	switch {
	case cfg.workers < 0: // index default
		if p := int(ix.par.Load()); p > 1 {
			return p
		}
		return 1
	case cfg.workers == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return cfg.workers
	}
}

// counters returns the stats sink for the algo layer: nil (counting
// disabled) unless the caller asked for statistics.
func (cfg *queryConfig) counters() *stats.Counters {
	if cfg.stats == nil {
		return nil
	}
	return new(stats.Counters)
}

// finish publishes the counters into the caller's sink.
func (cfg *queryConfig) finish(c *stats.Counters) {
	if cfg.stats != nil {
		*cfg.stats = fromCounters(c)
	}
}

// served publishes the answer's epoch into the caller's sink.
func (cfg *queryConfig) served(seq uint64) {
	if cfg.servedEpoch != nil {
		*cfg.servedEpoch = seq
	}
}

// cases copies the scan's case breakdown into the flight digest. c is
// nil unless the caller asked for stats (WithStats) — counters are not
// collected otherwise, so unstatted queries record zeros rather than
// paying for collection.
func (dig *queryDigest) cases(c *stats.Counters) {
	if c != nil {
		dig.case1 = c.Case1Filtered
		dig.case2 = c.Case2Filtered
		dig.case3 = c.Refinements
	}
}

// ReverseTopKCtx returns, in ascending order, the indexes of every
// preference vector that places q within its top-k products. An empty
// answer means no user ranks q that highly (consider ReverseKRanksCtx).
//
// The context governs the whole query: when ctx is cancelled or its
// deadline passes, the scan stops within one preference chunk on every
// goroutine and the call returns ctx.Err(). Options tune the call:
// WithWorkers overrides the index's intra-query parallelism and
// WithStats captures work statistics.
//
// Every call — success, validation error or cancellation — leaves one
// digest in the always-on flight recorder (see FlightRecords).
func (ix *Index) ReverseTopKCtx(ctx context.Context, q Vector, k int, opts ...QueryOption) ([]int, error) {
	start := time.Now()
	res, dig, err := ix.reverseTopK(ctx, q, k, opts)
	ix.recordQuery(flight.OpReverseTopK, k, start, dig, err)
	return res, err
}

func (ix *Index) reverseTopK(ctx context.Context, q Vector, k int, opts []QueryOption) ([]int, queryDigest, error) {
	var dig queryDigest
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, dig, err
	}
	if err := ix.checkQuery(q, k); err != nil {
		return nil, dig, err
	}
	dig.traceHi, dig.traceLo = cfg.tr.IDPair()
	dig.sampled = cfg.tr.Sampled()
	c := cfg.counters()
	ac := ix.answers.Load()
	if ac != nil && !cfg.noCache {
		// Honour cancellation before serving from the cache, so a dead
		// context never "succeeds" just because the answer was resident.
		if err := ctx.Err(); err != nil {
			return nil, dig, err
		}
		lsp := cfg.tr.StartSpan("cache.lookup")
		if res, seq, ok := ac.LookupTopK(q, k); ok {
			lsp.SetInt("hit", 1).SetInt("epoch", int64(seq)).End()
			cfg.finish(c) // a hit performs no scan work: stats are zero
			cfg.served(seq)
			dig.epoch, dig.cacheHit = seq, true
			return res, dig, nil
		}
		lsp.SetInt("hit", 0).End()
	}
	// One snapshot load: the whole scan runs against a single epoch even
	// if mutations land mid-query.
	sp := cfg.tr.StartSpan("snapshot")
	ep := ix.snap()
	sp.SetInt("epoch", int64(ep.seq)).End()
	dig.epoch = ep.seq
	res, err := ep.gir.ReverseTopKOpts(ctx, q, k, algo.QueryOpts{
		Workers:   cfg.resolveWorkers(ix),
		Counters:  c,
		Trace:     cfg.tr,
		Reference: cfg.reference,
	})
	cfg.finish(c)
	dig.cases(c)
	if err != nil {
		return nil, dig, err
	}
	cfg.served(ep.seq)
	if ac != nil && !cfg.noCache {
		ssp := cfg.tr.StartSpan("cache.store")
		ac.StoreTopK(q, k, ep.seq, res)
		ssp.End()
	}
	return res, dig, nil
}

// ReverseKRanksCtx returns the k preference vectors ranking q best,
// ordered by ascending rank (ties toward smaller indexes). It never
// returns an empty answer for k >= 1 — if fewer than k preferences
// exist, all are returned.
//
// The context and options follow the same contract as ReverseTopKCtx,
// including the flight-recorder digest per call.
func (ix *Index) ReverseKRanksCtx(ctx context.Context, q Vector, k int, opts ...QueryOption) ([]Match, error) {
	start := time.Now()
	res, dig, err := ix.reverseKRanks(ctx, q, k, opts)
	ix.recordQuery(flight.OpReverseKRanks, k, start, dig, err)
	return res, err
}

func (ix *Index) reverseKRanks(ctx context.Context, q Vector, k int, opts []QueryOption) ([]Match, queryDigest, error) {
	var dig queryDigest
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, dig, err
	}
	if err := ix.checkQuery(q, k); err != nil {
		return nil, dig, err
	}
	dig.traceHi, dig.traceLo = cfg.tr.IDPair()
	dig.sampled = cfg.tr.Sampled()
	c := cfg.counters()
	ac := ix.answers.Load()
	if ac != nil && !cfg.noCache {
		if err := ctx.Err(); err != nil {
			return nil, dig, err
		}
		lsp := cfg.tr.StartSpan("cache.lookup")
		if cached, seq, ok := ac.LookupKRanks(q, k); ok {
			lsp.SetInt("hit", 1).SetInt("epoch", int64(seq)).End()
			cfg.finish(c)
			cfg.served(seq)
			dig.epoch, dig.cacheHit = seq, true
			out := make([]Match, len(cached))
			for i, m := range cached {
				out[i] = Match{WeightIndex: m.WeightIndex, Rank: m.Rank}
			}
			return out, dig, nil
		}
		lsp.SetInt("hit", 0).End()
	}
	sp := cfg.tr.StartSpan("snapshot")
	ep := ix.snap()
	sp.SetInt("epoch", int64(ep.seq)).End()
	dig.epoch = ep.seq
	matches, err := ep.gir.ReverseKRanksOpts(ctx, q, k, algo.QueryOpts{
		Workers:   cfg.resolveWorkers(ix),
		Counters:  c,
		Trace:     cfg.tr,
		Reference: cfg.reference,
	})
	cfg.finish(c)
	dig.cases(c)
	if err != nil {
		return nil, dig, err
	}
	cfg.served(ep.seq)
	out := make([]Match, len(matches))
	for i, m := range matches {
		out[i] = Match{WeightIndex: m.WeightIndex, Rank: m.Rank}
	}
	if ac != nil && !cfg.noCache {
		ssp := cfg.tr.StartSpan("cache.store")
		stored := make([]cache.Match, len(out))
		for i, m := range out {
			stored[i] = cache.Match{WeightIndex: m.WeightIndex, Rank: m.Rank}
		}
		ac.StoreKRanks(q, k, ep.seq, stored)
		ssp.End()
	}
	return out, dig, nil
}
