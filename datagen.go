package gridrank

import (
	"fmt"
	"math/rand"

	"gridrank/internal/dataset"
)

// Distribution selects a synthetic or simulated-real data generator.
type Distribution string

// Product distributions. Uniform, Clustered and AntiCorrelated follow the
// synthetic-data conventions of the reverse top-k literature; House, Color
// and Dianping are statistical simulators of the paper's real data sets
// (see DESIGN.md §5).
const (
	Uniform        Distribution = "UN"
	Clustered      Distribution = "CL"
	AntiCorrelated Distribution = "AC"
	Normal         Distribution = "NO"
	Exponential    Distribution = "EX"
	House          Distribution = "HOUSE"
	Color          Distribution = "COLOR"
	Dianping       Distribution = "DIANPING"
)

// DefaultRange is the default product attribute range [0, 10000), the
// paper's setting.
const DefaultRange = dataset.DefaultRange

// GenerateProducts generates n d-dimensional products with attributes in
// [0, DefaultRange), deterministically from seed. For the House, Color and
// Dianping simulators, d is fixed by the data set and ignored.
func GenerateProducts(seed int64, dist Distribution, n, d int) ([]Vector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gridrank: need n > 0, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	switch dist {
	case Uniform, Clustered, AntiCorrelated, Normal, Exponential:
		if d <= 0 {
			return nil, fmt.Errorf("gridrank: need d > 0, got %d", d)
		}
		return dataset.GenerateProducts(rng, dataset.Distribution(dist), n, d, dataset.DefaultRange).Points, nil
	case House:
		return dataset.HouseProducts(rng, n).Points, nil
	case Color:
		return dataset.ColorProducts(rng, n).Points, nil
	case Dianping:
		return dataset.DianpingProducts(rng, n).Points, nil
	default:
		return nil, fmt.Errorf("gridrank: unknown product distribution %q", dist)
	}
}

// GeneratePreferences generates n d-dimensional preference vectors on the
// standard simplex, deterministically from seed. Supported distributions:
// Uniform, Clustered, Normal, Exponential and Dianping (whose d is fixed).
func GeneratePreferences(seed int64, dist Distribution, n, d int) ([]Vector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gridrank: need n > 0, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	switch dist {
	case Uniform, Clustered, Normal, Exponential:
		if d <= 0 {
			return nil, fmt.Errorf("gridrank: need d > 0, got %d", d)
		}
		return dataset.GenerateWeights(rng, dataset.Distribution(dist), n, d).Points, nil
	case Dianping:
		return dataset.DianpingWeights(rng, n).Points, nil
	default:
		return nil, fmt.Errorf("gridrank: unknown preference distribution %q", dist)
	}
}
