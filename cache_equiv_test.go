package gridrank

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// The cache-equivalence harness: the proof standard for the answer
// cache. Random interleaved histories of mutations and queries run
// against two indexes over identical data — one with the cache, one
// without — and every answer must be byte-identical at every worker
// count, with ranks cross-validated against the exact scan. Queries
// repeat from a small pool so the cached index actually serves hits
// (asserted at the end): the harness exercises the hit path, the miss
// path, and every invalidation path the mutations reach.

// cacheTrialMutate applies one random mutation to both indexes and
// mirrors it into the ps/ws model slices. It returns false when the
// sampled operation was not applicable (e.g. a delete on a tiny set).
func cacheTrialMutate(t *testing.T, rng *rand.Rand, cached, plain *Index, ps, ws *[]Vector) bool {
	t.Helper()
	d := cached.Dim()
	apply := func(f func(ix *Index) error) {
		t.Helper()
		if err := f(cached); err != nil {
			t.Fatal(err)
		}
		if err := f(plain); err != nil {
			t.Fatal(err)
		}
	}
	switch op := rng.Intn(7); {
	case op == 0 && len(*ps) > 3: // delete product
		i := rng.Intn(len(*ps))
		apply(func(ix *Index) error { return ix.DeleteProduct(i) })
		*ps = append((*ps)[:i:i], (*ps)[i+1:]...)
	case op == 1 && len(*ws) > 3: // delete preference
		i := rng.Intn(len(*ws))
		apply(func(ix *Index) error { return ix.DeletePreference(i) })
		*ws = append((*ws)[:i:i], (*ws)[i+1:]...)
	case op == 2: // insert preference (sometimes skewed: rebuild path)
		w := randPreference(rng, d)
		apply(func(ix *Index) error { _, err := ix.InsertPreference(w); return err })
		*ws = append(*ws, w)
	case op == 3 && len(*ps) > 6: // batch product delete (flush path)
		ids := []int{rng.Intn(len(*ps) / 2), len(*ps)/2 + rng.Intn(len(*ps)/2)}
		apply(func(ix *Index) error { return ix.DeleteProducts(ids) })
		*ps = append((*ps)[:ids[0]:ids[0]], (*ps)[ids[0]+1:]...)
		*ps = append((*ps)[:ids[1]-1:ids[1]-1], (*ps)[ids[1]:]...)
	case op == 4: // batch preference insert (flush path)
		batch := []Vector{randPreference(rng, d), randPreference(rng, d)}
		apply(func(ix *Index) error { _, err := ix.InsertPreferences(batch); return err })
		*ws = append(*ws, batch...)
	default: // insert product, sometimes growing rangeP (rebuild path)
		p := randProduct(rng, d, []float64{0.9, 1.0, 1.4}[rng.Intn(3)])
		apply(func(ix *Index) error { _, err := ix.InsertProduct(p); return err })
		*ps = append(*ps, p)
	}
	return true
}

// checkCacheEquivalence compares the cached index against the plain one
// for every pooled query: identical RTK and RKR answers at workers
// {1, 2, 4, 8}, each query asked twice (populate, then hit), the
// cache-bypass path identical too, and reported ranks equal to the
// exact scan's count.
func checkCacheEquivalence(t *testing.T, cached, plain *Index, pool []Vector, ps, ws []Vector) {
	t.Helper()
	ctx := context.Background()
	const k = 4
	for qi, q := range pool {
		for _, workers := range []int{1, 2, 4, 8} {
			wantRTK, err := plain.ReverseTopKCtx(ctx, q, k, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			wantRKR, err := plain.ReverseKRanksCtx(ctx, q, k, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			// Twice per query: the first call may miss and populate, the
			// second must hit — both must equal the scan of the plain index.
			for pass := 0; pass < 2; pass++ {
				gotRTK, err := cached.ReverseTopKCtx(ctx, q, k, WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				if !sameInts(gotRTK, wantRTK) {
					t.Fatalf("query %d workers=%d pass=%d: cached RTK %v, plain %v", qi, workers, pass, gotRTK, wantRTK)
				}
				gotRKR, err := cached.ReverseKRanksCtx(ctx, q, k, WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				if !sameMatches(gotRKR, wantRKR) {
					t.Fatalf("query %d workers=%d pass=%d: cached RKR %v, plain %v", qi, workers, pass, gotRKR, wantRKR)
				}
			}
			// The bypass option must agree with everything above.
			bypass, err := cached.ReverseTopKCtx(ctx, q, k, WithWorkers(workers), WithoutCache())
			if err != nil {
				t.Fatal(err)
			}
			if !sameInts(bypass, wantRTK) {
				t.Fatalf("query %d workers=%d: WithoutCache RTK %v, plain %v", qi, workers, bypass, wantRTK)
			}
		}
		// Brute force: every rank the cached index reports must equal the
		// exact scan's count of strictly better products.
		matches, err := cached.ReverseKRanksCtx(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			brute := 0
			w := ws[m.WeightIndex]
			var fq float64
			for j := range q {
				fq += w[j] * q[j]
			}
			for _, p := range ps {
				var fp float64
				for j := range p {
					fp += w[j] * p[j]
				}
				if fp < fq {
					brute++
				}
			}
			if m.Rank != brute {
				t.Fatalf("rank(w%d, q%d) = %d, brute force %d", m.WeightIndex, qi, m.Rank, brute)
			}
		}
	}
}

// TestCacheEquivalence is the headline harness: 50 random mutation/query
// histories, cache on vs off, byte-identical answers after every step at
// workers {1, 2, 4, 8}.
func TestCacheEquivalence(t *testing.T) {
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(41000 + trial)))
			d := 2 + rng.Intn(3)
			n := 8
			dist := Uniform
			if trial%2 == 1 {
				dist = Clustered
			}
			P, err := GenerateProducts(int64(300+trial), dist, 15+rng.Intn(40), d)
			if err != nil {
				t.Fatal(err)
			}
			W, err := GeneratePreferences(int64(1300+trial), Uniform, 10+rng.Intn(25), d)
			if err != nil {
				t.Fatal(err)
			}
			// One small cache (eviction in play for some trials), one
			// plain index as the oracle.
			size := 8 + rng.Intn(64)
			cached, err := New(P, W, &Options{GridPartitions: n, CacheSize: size})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := New(P, W, &Options{GridPartitions: n})
			if err != nil {
				t.Fatal(err)
			}
			ps := append([]Vector{}, P...)
			ws := append([]Vector{}, W...)
			// A fixed query pool, reused across steps so entries persist
			// across mutations and the invalidation paths are what decides
			// hit or miss.
			pool := []Vector{ps[rng.Intn(len(ps))], ps[rng.Intn(len(ps))], randProduct(rng, d, 1.2)}
			checkCacheEquivalence(t, cached, plain, pool, ps, ws)
			for step := 0; step < 10; step++ {
				cacheTrialMutate(t, rng, cached, plain, &ps, &ws)
				checkCacheEquivalence(t, cached, plain, pool, ps, ws)
			}
			cs, ok := cached.CacheStats()
			if !ok {
				t.Fatal("CacheStats reports no cache on a cache-enabled index")
			}
			if cs.Hits == 0 {
				t.Fatalf("harness never hit the cache: %+v", cs)
			}
		})
	}
}

// TestCacheOptionsValidation covers the cache configuration rejection
// paths and the enable/disable lifecycle.
func TestCacheOptionsValidation(t *testing.T) {
	if _, err := New(phones, users, &Options{CacheSize: -1}); err == nil {
		t.Fatal("negative CacheSize accepted")
	}
	if _, err := New(phones, users, &Options{CacheSize: 8, CacheTTL: -time.Second}); err == nil {
		t.Fatal("negative CacheTTL accepted")
	}
	if _, err := New(phones, users, &Options{CacheTTL: time.Second}); err == nil {
		t.Fatal("CacheTTL without CacheSize accepted")
	}
	ix := mustIndex(t, nil)
	if ix.CacheEnabled() {
		t.Fatal("cache enabled by default")
	}
	if _, ok := ix.CacheStats(); ok {
		t.Fatal("CacheStats ok without a cache")
	}
	if err := ix.EnableCache(0, 0); err == nil {
		t.Fatal("EnableCache(0) accepted")
	}
	if err := ix.EnableCache(16, time.Minute); err != nil {
		t.Fatal(err)
	}
	if !ix.CacheEnabled() {
		t.Fatal("cache not enabled")
	}
	cs, ok := ix.CacheStats()
	if !ok || cs.Size != 16 || cs.TTL != time.Minute {
		t.Fatalf("CacheStats = %+v, %v", cs, ok)
	}
	ix.DisableCache()
	if ix.CacheEnabled() {
		t.Fatal("cache still enabled after DisableCache")
	}
}

// TestCacheServedEpoch pins the WithServedEpoch contract: misses serve
// the snapshot epoch, hits serve the entry's epoch, and an unaffected
// entry keeps serving its original epoch across mutations that cannot
// change its answer.
func TestCacheServedEpoch(t *testing.T) {
	ix := mustIndex(t, &Options{CacheSize: 16})
	ctx := context.Background()
	q := Vector{0.2, 0.3}
	var served uint64
	if _, err := ix.ReverseTopKCtx(ctx, q, 2, WithServedEpoch(&served)); err != nil {
		t.Fatal(err)
	}
	if served != 0 {
		t.Fatalf("miss served epoch %d, want 0", served)
	}
	// A dominating product (componentwise above q) cannot change q's
	// answer: the entry survives and keeps its epoch tag.
	if _, err := ix.InsertProduct(Vector{0.9, 0.9}); err != nil {
		t.Fatal(err)
	}
	res, err := ix.ReverseTopKCtx(ctx, q, 2, WithServedEpoch(&served))
	if err != nil {
		t.Fatal(err)
	}
	if served != 0 {
		t.Fatalf("unaffected hit served epoch %d, want 0", served)
	}
	want, err := ix.ReverseTopKCtx(ctx, q, 2, WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(res, want) {
		t.Fatalf("cached answer %v, scan %v", res, want)
	}
	// A product below q in one dimension invalidates: the next query
	// scans and serves the current epoch.
	if _, err := ix.InsertProduct(Vector{0.1, 0.9}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.ReverseTopKCtx(ctx, q, 2, WithServedEpoch(&served)); err != nil {
		t.Fatal(err)
	}
	if served != 2 {
		t.Fatalf("post-invalidation query served epoch %d, want 2", served)
	}
	cs, _ := ix.CacheStats()
	if cs.Hits != 1 || cs.Invalidations != 1 {
		t.Fatalf("counters = %+v", cs)
	}
}
