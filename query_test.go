package gridrank

// Coverage for the context-first public API: option validation, the
// cancellation and deadline contract, and parallel/sequential answer
// identity with contexts attached.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

func TestQueryOptionValidation(t *testing.T) {
	ix, P := testIndexWithOpts(t, nil)
	bg := context.Background()
	if _, err := ix.ReverseTopKCtx(bg, P[0], 5, WithWorkers(-3)); !errors.Is(err, ErrBadParallelism) {
		t.Errorf("WithWorkers(-3): %v, want ErrBadParallelism", err)
	}
	if _, err := ix.ReverseKRanksCtx(bg, P[0], 5, WithStats(nil)); err == nil {
		t.Error("WithStats(nil) accepted")
	}
	if _, err := ix.ReverseTopKCtx(bg, P[0], 5, nil); err == nil {
		t.Error("nil QueryOption accepted")
	}
	// Option errors surface before any validation of the query itself.
	if _, err := ix.ReverseTopKCtx(bg, Vector{1}, 5, WithWorkers(-1)); !errors.Is(err, ErrBadParallelism) {
		t.Errorf("option error should win over dimension error: %v", err)
	}
}

func TestQueryCtxAlreadyCancelled(t *testing.T) {
	ix, P := testIndexWithOpts(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := ix.ReverseTopKCtx(ctx, P[0], 5, WithWorkers(workers)); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d RTK: %v, want context.Canceled", workers, err)
		}
		if _, err := ix.ReverseKRanksCtx(ctx, P[0], 5, WithWorkers(workers)); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d RKR: %v, want context.Canceled", workers, err)
		}
	}
	// The stats sink is still written on cancellation — here with the
	// zero work performed, overwriting whatever the caller left in it.
	st := Stats{PairwiseMults: 123, Filtered: 456}
	if _, err := ix.ReverseKRanksCtx(ctx, P[0], 5, WithStats(&st)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if st != (Stats{}) {
		t.Errorf("cancelled query left stale stats in the sink: %+v", st)
	}
}

func TestQueryCtxExpiredDeadline(t *testing.T) {
	ix, P := testIndexWithOpts(t, nil)
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	if _, err := ix.ReverseTopKCtx(ctx, P[0], 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("RTK: %v, want DeadlineExceeded", err)
	}
	if _, err := ix.ReverseKRanksCtx(ctx, P[0], 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("RKR: %v, want DeadlineExceeded", err)
	}
}

// TestQueryCtxWorkerIdentity is the public-API answer-identity guard:
// with a live context attached, every worker count serializes to the
// same bytes as the sequential scan.
func TestQueryCtxWorkerIdentity(t *testing.T) {
	ix, P := testIndexWithOpts(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, q := range []Vector{P[0], P[399], {1, 1, 1, 1, 1}} {
		wantRTK, err := ix.ReverseTopKCtx(ctx, q, 25, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		wantRKR, err := ix.ReverseKRanksCtx(ctx, q, 25, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			gotRTK, err := ix.ReverseTopKCtx(ctx, q, 25, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%v", gotRTK) != fmt.Sprintf("%v", wantRTK) {
				t.Fatalf("workers=%d: RTK %v != %v", workers, gotRTK, wantRTK)
			}
			gotRKR, err := ix.ReverseKRanksCtx(ctx, q, 25, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%+v", gotRKR) != fmt.Sprintf("%+v", wantRKR) {
				t.Fatalf("workers=%d: RKR %+v != %+v", workers, gotRKR, wantRKR)
			}
		}
	}
}

func TestBatchCtxCancellation(t *testing.T) {
	ix, P := testIndexWithOpts(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := append([]Vector{}, P[:10]...)
	for _, res := range ix.ReverseTopKBatchCtx(ctx, queries, 5, 4) {
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("query %d: err = %v, want context.Canceled", res.Query, res.Err)
		}
	}
	for _, res := range ix.ReverseKRanksBatchCtx(ctx, queries, 5, 4) {
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("query %d: err = %v, want context.Canceled", res.Query, res.Err)
		}
	}
}

// TestNonFiniteVectorsRejected pins the validation fix: NaN and ±Inf
// components must be rejected everywhere a vector enters the API.
func TestNonFiniteVectorsRejected(t *testing.T) {
	ix, P := testIndexWithOpts(t, nil)
	bg := context.Background()
	bad := []Vector{
		{math.NaN(), 1, 1, 1, 1},
		{math.Inf(1), 1, 1, 1, 1},
		{math.Inf(-1), 1, 1, 1, 1},
	}
	for _, q := range bad {
		if _, err := ix.ReverseTopKCtx(bg, q, 5); err == nil {
			t.Errorf("RTK accepted %v", q)
		}
		if _, err := ix.ReverseKRanksCtx(bg, q, 5); err == nil {
			t.Errorf("RKR accepted %v", q)
		}
		if _, err := ix.TopK(q, 5); err == nil {
			t.Errorf("TopK accepted %v", q)
		}
		if _, err := ix.Rank(q, P[0]); err == nil {
			t.Errorf("Rank accepted preference %v", q)
		}
		if _, err := ix.Rank(P[0][:5], q); err == nil {
			t.Errorf("Rank accepted query %v", q)
		}
		if _, err := New([]Vector{q}, []Vector{{1, 1, 1, 1, 1}}, nil); err == nil {
			t.Errorf("New accepted product %v", q)
		}
		if _, err := New([]Vector{{1, 1, 1, 1, 1}}, []Vector{q}, nil); err == nil {
			t.Errorf("New accepted preference %v", q)
		}
	}
}
