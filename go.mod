module gridrank

go 1.22
