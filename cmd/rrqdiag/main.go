// Command rrqdiag captures and validates one-shot diagnostics bundles
// for incident forensics.
//
// Fetch a live server's bundle (goroutine dump, runtime stats,
// OpenMetrics snapshot with exemplars, flight-recorder digests, kept
// traces, index metadata, sanitized config — all captured in the same
// instant, checksummed in a manifest):
//
//	rrqdiag -server http://localhost:8080 -out rrq-diag.tar.gz
//
// Build a local bundle from an index file when no server is running:
//
//	rrqdiag -index catalogue.gri -out rrq-diag.tar.gz
//
// Validate and summarize any bundle:
//
//	rrqdiag -inspect rrq-diag.tar.gz
package main

import (
	"fmt"
	"os"

	"gridrank/internal/cli"
)

func main() {
	if err := cli.RunDiag(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrqdiag:", err)
		os.Exit(1)
	}
}
