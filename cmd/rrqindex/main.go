// Command rrqindex builds, inspects and mutates persisted Grid-index
// files. Mutation verbs load the index, apply the change in memory and
// write the file back atomically, so a crash mid-write never corrupts
// the index on disk.
//
// Usage:
//
//	rrqindex build -products p.grd -prefs w.grd -grid 100 -out index.gri
//	rrqindex info -index index.gri
//	rrqindex insert-product -index index.gri -v "120.5,80,3000,42"
//	rrqindex insert-pref -index index.gri -v "0.4,0.3,0.2,0.1;0.25,0.25,0.25,0.25"
//	rrqindex delete-product -index index.gri -i "3,5,7"
//	rrqindex delete-pref -index index.gri -i 0
package main

import (
	"fmt"
	"os"

	"gridrank/internal/cli"
)

func main() {
	if err := cli.RunIndex(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrqindex:", err)
		os.Exit(1)
	}
}
