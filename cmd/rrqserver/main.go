// Command rrqserver serves reverse rank queries over HTTP.
//
// Load an index saved by the library, or generate a synthetic one:
//
//	rrqserver -index catalogue.gri -addr :8080
//	rrqserver -demo -dist DIANPING -np 20000 -nw 5000 -addr :8080
//
// Endpoints (JSON): GET /healthz, GET /metrics, GET /v1/index,
// POST /v1/reverse-topk, /v1/reverse-kranks, /v1/batch, /v1/topk,
// /v1/rank, the /v1/subscriptions continuous-monitor endpoints
// (register with POST, stream enter/leave events as SSE from
// /v1/subscriptions/{id}/events), the forensic endpoints
// GET /debug/flight (flight-recorder digests) and GET /debug/bundle
// (one-shot diagnostics tar.gz, also fetchable with rrqdiag), and —
// when tracing is on — GET /debug/traces and GET /debug/traces/{id}.
//
//	curl -s localhost:8080/v1/reverse-kranks \
//	  -d '{"product": 42, "k": 10, "stats": true, "timeoutMs": 500}'
//
// Tracing: -trace-sample records that fraction of queries as span-level
// traces (responses carry a trace_id and a traceparent header);
// -slow-query additionally captures every query over the threshold and
// logs one structured "slow query" line with its Case-1/2/3 breakdown.
// Completed traces live in a bounded in-memory ring (-trace-buffer) and
// are served by the /debug/traces endpoints.
//
//	rrqserver -demo -trace-sample 0.01 -slow-query 250ms
//
// With -otlp-endpoint set, every kept trace is also exported to an
// OpenTelemetry collector as OTLP/HTTP-JSON — batched, retried with
// backoff, and dropped (with a counter) rather than ever blocking a
// query when the collector stalls:
//
//	rrqserver -demo -trace-sample 0.05 -otlp-endpoint http://localhost:4318
//
// The server shuts down gracefully: on SIGINT/SIGTERM it stops
// accepting connections, ends every live subscription stream with a
// terminal "shutdown" SSE event, lets in-flight requests drain for
// -drain, then cancels whatever is left (running queries stop within
// one preference chunk).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridrank"
	"gridrank/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		index    = flag.String("index", "", "index file saved with gridrank (see rrqgen + library Save)")
		mmap     = flag.Bool("mmap", false, "memory-map the -index file (GRI3) instead of reading it onto the heap")
		demo     = flag.Bool("demo", false, "serve a synthetic index instead of a file")
		dist     = flag.String("dist", "UN", "demo distribution (UN, CL, AC, DIANPING, ...)")
		np       = flag.Int("np", 10000, "demo products")
		nw       = flag.Int("nw", 5000, "demo preferences")
		d        = flag.Int("d", 6, "demo dimensionality")
		seed     = flag.Int64("seed", 1, "demo seed")
		packed   = flag.Int("packed-bits", 0, "demo index layout: bit-packed cell rows at 4-8 bits per dimension (0 = float64)")
		par      = flag.Int("parallel", 0, "default intra-query workers per query (0 or 1 = sequential)")
		maxP     = flag.Int("max-parallel", 0, "cap on the per-request parallelism field (0 = GOMAXPROCS)")
		qTimeout = flag.Duration("query-timeout", 0, "default per-query deadline, e.g. 2s (0 = none; requests may override with timeoutMs)")
		maxBatch = flag.Int("max-batch", 0, "max queries per /v1/batch request (0 = default)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain period for in-flight requests")
		logFmt   = flag.String("log", "text", "request log format: text, json, or off")
		pprofA   = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address, e.g. localhost:6060 (off when empty)")
		sample   = flag.Float64("trace-sample", 0, "fraction of queries traced span-by-span, 0..1 (0 = off)")
		slowQ    = flag.Duration("slow-query", 0, "capture and log every query slower than this, e.g. 250ms (0 = off)")
		traceBuf = flag.Int("trace-buffer", 0, "completed traces kept in memory, rounded up to a power of two (0 = default)")
		cacheSz  = flag.Int("cache", 0, "answer-cache capacity in entries (0 = cache off)")
		cacheTTL = flag.Duration("cache-ttl", 0, "max age of served cache entries, e.g. 30s (0 = until invalidated; requires -cache)")
		maxSubs  = flag.Int("max-subscribers", 0, "max live continuous subscriptions (0 = default, negative = unlimited)")
		evBuf    = flag.Int("event-buffer", 0, "per-subscription event buffer; a subscriber that lets it fill is cancelled as lagged (0 = default)")
		otlpEp   = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL, e.g. http://localhost:4318; kept traces are exported there (requires -trace-sample or -slow-query)")
		otlpSvc  = flag.String("otlp-service", "", "resource service.name for exported spans (default gridrank)")
	)
	flag.Parse()
	if *sample < 0 || *sample > 1 {
		fmt.Fprintf(os.Stderr, "rrqserver: -trace-sample must be in [0, 1], got %g\n", *sample)
		os.Exit(1)
	}
	if *cacheSz < 0 || *cacheTTL < 0 || (*cacheTTL > 0 && *cacheSz == 0) {
		fmt.Fprintln(os.Stderr, "rrqserver: -cache must be >= 0, -cache-ttl >= 0 and only set with -cache")
		os.Exit(1)
	}
	if *otlpEp != "" && *sample == 0 && *slowQ == 0 {
		fmt.Fprintln(os.Stderr, "rrqserver: -otlp-endpoint exports kept traces; enable -trace-sample or -slow-query too")
		os.Exit(1)
	}
	logger, err := buildLogger(*logFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rrqserver:", err)
		os.Exit(1)
	}
	ix, err := buildIndex(*index, *mmap, *demo, *dist, *np, *nw, *d, *seed, *packed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rrqserver:", err)
		os.Exit(1)
	}
	if err := ix.SetParallelism(*par); err != nil {
		fmt.Fprintln(os.Stderr, "rrqserver:", err)
		os.Exit(1)
	}
	slog.Info("serving",
		"products", ix.NumProducts(),
		"preferences", ix.NumPreferences(),
		"dim", ix.Dim(),
		"gridPartitions", ix.GridPartitions(),
		"packed", ix.Layout().Packed,
		"format", ix.Format(),
		"resident", ix.Resident(),
		"addr", *addr,
		"queryTimeout", qTimeout.String(),
	)
	if *pprofA != "" {
		go servePprof(*pprofA)
	}
	handler := server.NewWithConfig(ix, server.Config{
		MaxParallelism:  *maxP,
		QueryTimeout:    *qTimeout,
		MaxBatch:        *maxBatch,
		Logger:          logger,
		TraceSampleRate: *sample,
		SlowQuery:       *slowQ,
		TraceBuffer:     *traceBuf,
		CacheSize:       *cacheSz,
		CacheTTL:        *cacheTTL,
		MaxSubscribers:  *maxSubs,
		EventBuffer:     *evBuf,
		OTLPEndpoint:    *otlpEp,
		OTLPServiceName: *otlpSvc,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := run(srv, handler, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "rrqserver:", err)
		os.Exit(1)
	}
}

// servePprof serves the net/http/pprof endpoints on their own listener,
// kept off the query port so profiling is never exposed wherever the API
// is. The handlers are registered on a private mux (not DefaultServeMux)
// and the listener dies with the process — profiling is operator
// tooling, not part of the graceful-shutdown contract.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	slog.Info("pprof listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		slog.Error("pprof listener failed", "err", err)
	}
}

// run serves until SIGINT/SIGTERM, then drains in-flight requests for up
// to drain before forcing the remaining connections closed. Live SSE
// subscription streams are ended first (handler.Drain), so graceful
// shutdown never stalls the full drain window behind an idle stream.
func run(srv *http.Server, handler *server.Server, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err // the listener failed before any signal
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	slog.Info("shutting down", "drain", drain.String())
	handler.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// The drain window expired: close the stragglers, whose queries
		// die with their request contexts.
		srv.Close()
		return fmt.Errorf("drain expired: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	slog.Info("shutdown complete")
	return nil
}

func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "off":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown -log %q (want text, json, or off)", format)
	}
}

func buildIndex(path string, mmap, demo bool, dist string, np, nw, d int, seed int64, packedBits int) (*gridrank.Index, error) {
	switch {
	case path != "" && demo:
		return nil, fmt.Errorf("-index and -demo are mutually exclusive")
	case path != "":
		if packedBits != 0 {
			return nil, fmt.Errorf("-packed-bits applies only to -demo; a loaded index keeps its saved layout")
		}
		if mmap {
			return gridrank.LoadMmap(path)
		}
		return gridrank.Load(path)
	case mmap:
		return nil, fmt.Errorf("-mmap requires -index")
	case demo:
		P, err := gridrank.GenerateProducts(seed, gridrank.Distribution(dist), np, d)
		if err != nil {
			return nil, err
		}
		wdist := gridrank.Distribution(dist)
		if wdist == gridrank.AntiCorrelated {
			wdist = gridrank.Uniform // AC preferences are not defined
		}
		W, err := gridrank.GeneratePreferences(seed+1, wdist, nw, d)
		if err != nil {
			return nil, err
		}
		return gridrank.New(P, W, &gridrank.Options{PackedBits: packedBits})
	default:
		return nil, fmt.Errorf("one of -index or -demo is required")
	}
}
