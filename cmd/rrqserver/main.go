// Command rrqserver serves reverse rank queries over HTTP.
//
// Load an index saved by the library, or generate a synthetic one:
//
//	rrqserver -index catalogue.gri -addr :8080
//	rrqserver -demo -dist DIANPING -np 20000 -nw 5000 -addr :8080
//
// Endpoints (JSON): GET /healthz, GET /v1/index,
// POST /v1/reverse-topk, /v1/reverse-kranks, /v1/topk, /v1/rank.
//
//	curl -s localhost:8080/v1/reverse-kranks \
//	  -d '{"product": 42, "k": 10}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"gridrank"
	"gridrank/internal/server"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		index = flag.String("index", "", "index file saved with gridrank (see rrqgen + library Save)")
		demo  = flag.Bool("demo", false, "serve a synthetic index instead of a file")
		dist  = flag.String("dist", "UN", "demo distribution (UN, CL, AC, DIANPING, ...)")
		np    = flag.Int("np", 10000, "demo products")
		nw    = flag.Int("nw", 5000, "demo preferences")
		d     = flag.Int("d", 6, "demo dimensionality")
		seed  = flag.Int64("seed", 1, "demo seed")
		par   = flag.Int("parallel", 0, "default intra-query workers per query (0 or 1 = sequential)")
		maxP  = flag.Int("max-parallel", 0, "cap on the per-request parallelism field (0 = GOMAXPROCS)")
	)
	flag.Parse()
	ix, err := buildIndex(*index, *demo, *dist, *np, *nw, *d, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rrqserver:", err)
		os.Exit(1)
	}
	if err := ix.SetParallelism(*par); err != nil {
		fmt.Fprintln(os.Stderr, "rrqserver:", err)
		os.Exit(1)
	}
	log.Printf("serving %d products × %d preferences (d=%d, grid n=%d) on %s",
		ix.NumProducts(), ix.NumPreferences(), ix.Dim(), ix.GridPartitions(), *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewWithConfig(ix, server.Config{MaxParallelism: *maxP}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

func buildIndex(path string, demo bool, dist string, np, nw, d int, seed int64) (*gridrank.Index, error) {
	switch {
	case path != "" && demo:
		return nil, fmt.Errorf("-index and -demo are mutually exclusive")
	case path != "":
		return gridrank.Load(path)
	case demo:
		P, err := gridrank.GenerateProducts(seed, gridrank.Distribution(dist), np, d)
		if err != nil {
			return nil, err
		}
		wdist := gridrank.Distribution(dist)
		if wdist == gridrank.AntiCorrelated {
			wdist = gridrank.Uniform // AC preferences are not defined
		}
		W, err := gridrank.GeneratePreferences(seed+1, wdist, nw, d)
		if err != nil {
			return nil, err
		}
		return gridrank.New(P, W, nil)
	default:
		return nil, fmt.Errorf("one of -index or -demo is required")
	}
}
