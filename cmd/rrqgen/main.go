// Command rrqgen generates product and preference data sets in the
// library's binary or CSV formats, for use with rrqquery and external
// tooling.
//
// Usage:
//
//	rrqgen -kind products  -dist UN -n 100000 -d 6 -out p.grd
//	rrqgen -kind prefs     -dist CL -n 100000 -d 6 -out w.grd
//	rrqgen -kind products  -dist DIANPING -n 209132 -out rest.grd
//	rrqgen -kind products  -dist UN -n 1000 -d 4 -format csv -out p.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"gridrank/internal/cli"
)

func main() {
	var opts cli.GenOptions
	flag.StringVar(&opts.Kind, "kind", "products", "what to generate: products or prefs")
	flag.StringVar(&opts.Dist, "dist", "UN", "distribution: UN, CL, AC, NO, EX, HOUSE, COLOR, DIANPING")
	flag.IntVar(&opts.N, "n", 10000, "number of vectors")
	flag.IntVar(&opts.D, "d", 6, "dimensionality (ignored by HOUSE/COLOR/DIANPING)")
	flag.Int64Var(&opts.Seed, "seed", 1, "random seed")
	flag.StringVar(&opts.Out, "out", "", "output file (required)")
	flag.StringVar(&opts.Format, "format", "binary", "output format: binary or csv")
	flag.Parse()
	msg, err := cli.Generate(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rrqgen:", err)
		os.Exit(1)
	}
	fmt.Println(msg)
}
