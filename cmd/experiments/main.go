// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig10
//	experiments -run all -sizep 20000 -sizew 20000 -queries 10
//	experiments -run table3 -csv out/
//
// Default cardinalities are reduced from the paper's 100K×100K so the
// full suite finishes in minutes; raise -sizep/-sizew/-queries to
// approach paper scale. EXPERIMENTS.md records the reference outputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gridrank/internal/exp"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "", "experiment ID to run, or 'all'")
		seed     = flag.Int64("seed", 1, "random seed")
		sizeP    = flag.Int("sizep", 0, "base |P| (default 5000)")
		sizeW    = flag.Int("sizew", 0, "base |W| (default 5000)")
		queries  = flag.Int("queries", 0, "queries per measurement (default 4)")
		k        = flag.Int("k", 0, "k (default 100)")
		n        = flag.Int("n", 0, "grid partitions (default 32)")
		capacity = flag.Int("capacity", 0, "R-tree node capacity (default 64)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		verbose  = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-8s %-28s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run <id>|all or -list required")
		os.Exit(2)
	}
	cfg := exp.Config{
		Seed: *seed, SizeP: *sizeP, SizeW: *sizeW,
		Queries: *queries, K: *k, N: *n, Capacity: *capacity,
	}
	if *verbose {
		cfg.Out = os.Stderr
	}

	var todo []exp.Experiment
	if *run == "all" {
		todo = exp.Registry()
	} else {
		e, ok := exp.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *run)
			os.Exit(2)
		}
		todo = []exp.Experiment{e}
	}
	for _, e := range todo {
		fmt.Printf("=== %s (%s): %s ===\n", e.ID, e.Paper, e.Title)
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for ti, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, e.ID, ti, t); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func writeCSV(dir, id string, ti int, t *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%d.csv", id, ti))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
