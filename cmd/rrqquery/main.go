// Command rrqquery runs one reverse rank query over data-set files
// produced by rrqgen, with a selectable algorithm.
//
// Usage:
//
//	rrqquery -p p.grd -w w.grd -type rtk -k 100 -qi 0
//	rrqquery -p p.grd -w w.grd -type rkr -k 10 -q "120.5,80,3000,42,7,9"
//	rrqquery -p p.grd -w w.grd -type rtk -algo bbr -qi 3 -stats
//	rrqquery -p p.grd -w w.grd -type rkr -k 10 -qi 0 -explain
//
// -explain (gir only) traces the run and prints the span tree after the
// results: data loading, index build, the grid scan with its Case-1/2/3
// work breakdown (per worker when -parallel > 1) and the result merge.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"gridrank/internal/algo"
	"gridrank/internal/cli"
)

func main() {
	var opts cli.QueryOptions
	flag.StringVar(&opts.PPath, "p", "", "products file (binary, or csv by extension)")
	flag.StringVar(&opts.WPath, "w", "", "preferences file")
	flag.StringVar(&opts.Type, "type", "rtk", "query type: rtk or rkr")
	flag.StringVar(&opts.Algo, "algo", "gir", "algorithm: gir, sparse, sim, brute, bbr (rtk), mpa (rkr), rta (rtk)")
	flag.IntVar(&opts.K, "k", 100, "k")
	flag.IntVar(&opts.QIndex, "qi", -1, "query product index into the products file")
	flag.StringVar(&opts.QRaw, "q", "", "query vector as comma-separated values (alternative to -qi)")
	flag.IntVar(&opts.N, "n", algo.DefaultPartitions, "grid partitions for gir/sparse")
	flag.IntVar(&opts.Capacity, "capacity", 64, "R-tree node capacity for bbr/mpa")
	flag.IntVar(&opts.Parallel, "parallel", 0, "intra-query worker goroutines for gir (0 or 1 = sequential)")
	flag.BoolVar(&opts.ShowStats, "stats", false, "print operation counters")
	flag.IntVar(&opts.Limit, "limit", 20, "max result rows printed (0 = all)")
	flag.DurationVar(&opts.Timeout, "timeout", 0, "per-query deadline, e.g. 500ms (0 = none)")
	flag.BoolVar(&opts.Explain, "explain", false, "print the traced span tree with the per-case scan breakdown (gir only)")
	flag.Parse()
	// Ctrl-C cancels the running query (gir stops within one preference
	// chunk) instead of killing the process mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.RunQueryCtx(ctx, os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "rrqquery:", err)
		os.Exit(1)
	}
}
