package gridrank

// BenchmarkGIRTraceOverhead prices the tracing instrumentation on the
// query path (picked up by scripts/bench.sh's BenchmarkGIR filter, so
// the numbers are tracked in BENCH_gir.json):
//
//   - off:     the plain Ctx entrypoint — the pre-tracing baseline.
//   - noop:    the Traced entrypoint with a nil trace, i.e. every
//     instrumented call site paying the nil-receiver check. This is what
//     an unsampled query costs and must stay within noise of off.
//   - sampled: a rate-1 tracer recording the full span tree, the worst
//     case a traced query pays.

import (
	"context"
	"testing"

	"gridrank/internal/algo"
	"gridrank/internal/trace"
)

func BenchmarkGIRTraceOverhead(b *testing.B) {
	data := makeBenchData(b, 4000, 1000, 6)
	gir := algo.NewGIR(data.P, data.W, DefaultRange, 32)
	ctx := context.Background()

	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gir.ReverseKRanksCtx(ctx, data.q, 100, 1, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("noop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gir.ReverseKRanksTraced(ctx, data.q, 100, 1, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampled", func(b *testing.B) {
		tracer := trace.New(trace.Config{SampleRate: 1, Capacity: 4})
		for i := 0; i < b.N; i++ {
			tr := tracer.Start("bench", trace.Parent{})
			if _, err := gir.ReverseKRanksTraced(ctx, data.q, 100, 1, nil, tr); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	})
}
