package gridrank

import (
	"context"
	"testing"

	"gridrank/internal/flight"
	"gridrank/internal/trace"
)

// flightTestIndex builds a small index for flight-recorder tests.
func flightTestIndex(t *testing.T, opts *Options) *Index {
	t.Helper()
	P, err := GenerateProducts(1, Uniform, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(2, Uniform, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// newestOf returns the newest flight record of the given class.
func newestOf(t *testing.T, ix *Index, class flight.Class) flight.Record {
	t.Helper()
	for _, r := range ix.FlightRecords() {
		if r.Class == class {
			return r
		}
	}
	t.Fatalf("no %v record in %d records", class, len(ix.FlightRecords()))
	return flight.Record{}
}

func TestFlightQueryDigests(t *testing.T) {
	ix := flightTestIndex(t, nil)
	if !ix.FlightEnabled() {
		t.Fatal("flight recorder should be on by default")
	}
	ctx := context.Background()
	q := ix.snap().pm.Row(3)

	// Plain query: recorded with zero case counts (no stats requested).
	if _, err := ix.ReverseTopKCtx(ctx, q, 10); err != nil {
		t.Fatal(err)
	}
	rec := newestOf(t, ix, flight.ClassQuery)
	if rec.Op != flight.OpReverseTopK || rec.Outcome != flight.OutcomeOK {
		t.Fatalf("record = %+v, want ok reverse_topk", rec)
	}
	if rec.K != 10 || rec.Epoch != 0 || rec.DurNs <= 0 {
		t.Fatalf("record = %+v, want k=10 epoch=0 positive duration", rec)
	}
	if rec.Case1 != 0 || rec.Case2 != 0 || rec.Case3 != 0 {
		t.Fatalf("record = %+v, want zero case counts without WithStats", rec)
	}

	// Statted query: the scan's case breakdown lands in the digest.
	var st Stats
	if _, err := ix.ReverseKRanksCtx(ctx, q, 5, WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	rec = newestOf(t, ix, flight.ClassQuery)
	if rec.Op != flight.OpReverseKRanks {
		t.Fatalf("record = %+v, want reverse_kranks", rec)
	}
	if rec.Case1 != st.Case1Filtered || rec.Case2 != st.Case2Filtered || rec.Case3 != st.Refined {
		t.Fatalf("record cases (%d,%d,%d) != stats (%d,%d,%d)",
			rec.Case1, rec.Case2, rec.Case3, st.Case1Filtered, st.Case2Filtered, st.Refined)
	}

	// Validation error: still recorded, outcome error.
	if _, err := ix.ReverseTopKCtx(ctx, q, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	rec = newestOf(t, ix, flight.ClassQuery)
	if rec.Outcome != flight.OutcomeError || rec.K != 0 {
		t.Fatalf("record = %+v, want error outcome for k=0", rec)
	}

	// Cancelled context: outcome canceled.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := ix.ReverseTopKCtx(cctx, q, 10); err == nil {
		t.Fatal("cancelled context accepted")
	}
	rec = newestOf(t, ix, flight.ClassQuery)
	if rec.Outcome != flight.OutcomeCanceled {
		t.Fatalf("record = %+v, want canceled outcome", rec)
	}

	c := ix.FlightCounts()
	if c.Queries < 4 || c.Recorded != c.Queries {
		t.Fatalf("counts = %+v, want >= 4 query records", c)
	}
}

func TestFlightQueryCacheHitAndTrace(t *testing.T) {
	ix := flightTestIndex(t, &Options{CacheSize: 16})
	ctx := context.Background()
	q := ix.snap().pm.Row(7)
	if _, err := ix.ReverseTopKCtx(ctx, q, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.ReverseTopKCtx(ctx, q, 10); err != nil { // hit
		t.Fatal(err)
	}
	rec := newestOf(t, ix, flight.ClassQuery)
	if rec.Flags&flight.FlagCacheHit == 0 {
		t.Fatalf("record = %+v, want cache-hit flag", rec)
	}

	// Traced query: the digest carries the sampled trace's raw ID.
	tracer := trace.New(trace.Config{SampleRate: 1})
	tr := tracer.Start("reverse_topk", trace.Parent{})
	if _, err := ix.ReverseTopKCtx(ctx, q, 3, WithTrace(tr), WithoutCache()); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	rec = newestOf(t, ix, flight.ClassQuery)
	if rec.Flags&flight.FlagSampled == 0 {
		t.Fatalf("record = %+v, want sampled flag", rec)
	}
	if got := rec.TraceID(); got != tr.ID() {
		t.Fatalf("record trace ID %q != trace %q", got, tr.ID())
	}
}

func TestFlightMutationDigests(t *testing.T) {
	ix := flightTestIndex(t, &Options{CacheSize: 16})
	ctx := context.Background()
	q := ix.snap().pm.Row(3)
	// Seed a cache entry so the insert's sweep has something to count.
	if _, err := ix.ReverseTopKCtx(ctx, q, 10); err != nil {
		t.Fatal(err)
	}

	// In-range insert derives the next epoch.
	if _, err := ix.InsertProduct(Vector{0.1, 0.1, 0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	rec := newestOf(t, ix, flight.ClassMutation)
	if rec.Op != flight.OpInsertProduct || rec.Epoch != 1 || rec.DurNs <= 0 {
		t.Fatalf("record = %+v, want insert_product at epoch 1", rec)
	}
	if rec.Flags&flight.FlagDerived == 0 {
		t.Fatalf("record = %+v, want derived flag for in-range insert", rec)
	}

	// Range-growing insert rebuilds.
	if _, err := ix.InsertProduct(Vector{1e9, 1e9, 1e9, 1e9}); err != nil {
		t.Fatal(err)
	}
	rec = newestOf(t, ix, flight.ClassMutation)
	if rec.Flags&flight.FlagDerived != 0 {
		t.Fatalf("record = %+v, want rebuild (no derived flag) for range-growing insert", rec)
	}

	// Batch insert: one record for the whole batch.
	pre := ix.FlightCounts().Mutations
	if _, err := ix.InsertPreferences([]Vector{{0.25, 0.25, 0.25, 0.25}, {0.4, 0.2, 0.2, 0.2}}); err != nil {
		t.Fatal(err)
	}
	if got := ix.FlightCounts().Mutations - pre; got != 1 {
		t.Fatalf("batch recorded %d mutation digests, want 1", got)
	}
	rec = newestOf(t, ix, flight.ClassMutation)
	if rec.Op != flight.OpInsertPreferences || rec.Epoch != 3 {
		t.Fatalf("record = %+v, want insert_preferences at epoch 3", rec)
	}
}

func TestFlightMutationCountsCacheSweeps(t *testing.T) {
	ix := flightTestIndex(t, &Options{CacheSize: 32})
	ctx := context.Background()
	// Fill the cache, then flush it with a batch mutation: the digest's
	// Aux1 must reflect the swept entries.
	for i := 0; i < 5; i++ {
		if _, err := ix.ReverseTopKCtx(ctx, ix.snap().pm.Row(i), 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.DeleteProducts([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	rec := newestOf(t, ix, flight.ClassMutation)
	if rec.Op != flight.OpDeleteProducts {
		t.Fatalf("record = %+v, want delete_products", rec)
	}
	if rec.Aux1 == 0 {
		t.Fatalf("record = %+v, want non-zero cache sweep count (flush of 5 entries)", rec)
	}
}

func TestFlightSubscriptionDigests(t *testing.T) {
	ix := flightTestIndex(t, nil)
	q := ix.snap().pm.Row(2)
	s, err := ix.Subscribe(q, 5, SubReverseKRanks, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := newestOf(t, ix, flight.ClassSub)
	if rec.Op != flight.OpSubscribe || rec.K != 5 || rec.Aux1 != 1 || rec.Aux2 != int64(s.ID()) {
		t.Fatalf("record = %+v, want subscribe k=5 kind=1 id=%d", rec, s.ID())
	}
	// The subscribe's diff work must not be billed to a mutation: a
	// following mutation's Aux2 counts only its own evaluations.
	if _, err := ix.InsertProduct(Vector{0.2, 0.2, 0.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	mrec := newestOf(t, ix, flight.ClassMutation)
	if mrec.Aux2 < 0 {
		t.Fatalf("record = %+v, negative sub diff evals", mrec)
	}
	s.Close()
	rec = newestOf(t, ix, flight.ClassSub)
	if rec.Op != flight.OpUnsubscribe || rec.Aux2 != int64(s.ID()) {
		t.Fatalf("record = %+v, want unsubscribe of id %d", rec, s.ID())
	}
	s.Close() // idempotent: no second unsubscribe record
	c := ix.FlightCounts()
	if c.Subscriptions != 2 {
		t.Fatalf("counts = %+v, want exactly 2 subscription records", c)
	}
}

func TestFlightDisabled(t *testing.T) {
	ix := flightTestIndex(t, &Options{FlightCapacity: -1})
	if ix.FlightEnabled() {
		t.Fatal("FlightCapacity -1 should disable the recorder")
	}
	ctx := context.Background()
	if _, err := ix.ReverseTopKCtx(ctx, ix.snap().pm.Row(0), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.InsertProduct(Vector{0.1, 0.1, 0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	if got := ix.FlightRecords(); got != nil {
		t.Fatalf("disabled recorder returned %d records", len(got))
	}
	if c := ix.FlightCounts(); c != (flight.Counts{}) {
		t.Fatalf("disabled recorder counts = %+v", c)
	}
}

func TestFlightCapacityOption(t *testing.T) {
	ix := flightTestIndex(t, &Options{FlightCapacity: 100})
	if got := ix.FlightCounts().Capacity; got != 128 {
		t.Fatalf("capacity = %d, want 128 (rounded up)", got)
	}
	ix = flightTestIndex(t, nil)
	if got := ix.FlightCounts().Capacity; got != flight.DefaultCapacity {
		t.Fatalf("capacity = %d, want default %d", got, flight.DefaultCapacity)
	}
}

func TestFlightLoadedIndexRecords(t *testing.T) {
	ix := flightTestIndex(t, nil)
	dir := t.TempDir()
	path := dir + "/ix.gri"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.FlightEnabled() {
		t.Fatal("loaded index should have the recorder on")
	}
	if _, err := loaded.ReverseTopKCtx(context.Background(), loaded.snap().pm.Row(0), 5); err != nil {
		t.Fatal(err)
	}
	if got := loaded.FlightCounts().Queries; got != 1 {
		t.Fatalf("loaded index recorded %d queries, want 1", got)
	}
}

// TestFlightZeroAllocOverhead is the acceptance pin: recording a flight
// digest adds zero allocations to the query path. It compares
// allocations per query between a recorder-on and a recorder-off index
// over identical data and query.
func TestFlightZeroAllocOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	on := flightTestIndex(t, nil)
	off := flightTestIndex(t, &Options{FlightCapacity: -1})
	ctx := context.Background()
	q := on.snap().pm.Row(3)
	run := func(ix *Index) float64 {
		// Warm up any lazily-grown internals before counting.
		if _, err := ix.ReverseTopKCtx(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := ix.ReverseTopKCtx(ctx, q, 10); err != nil {
				t.Fatal(err)
			}
		})
	}
	offAllocs, onAllocs := run(off), run(on)
	if onAllocs != offAllocs {
		t.Fatalf("recorder adds allocations: %.1f allocs/op with recorder, %.1f without", onAllocs, offAllocs)
	}
	if got := on.FlightCounts().Queries; got == 0 {
		t.Fatal("recorder did not record during the alloc run")
	}
}
