package gridrank

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randProduct samples a product vector; scale stretches it beyond the
// typical [0, 1) data range to exercise the rangeP-growth rebuild path.
func randProduct(rng *rand.Rand, d int, scale float64) Vector {
	p := make(Vector, d)
	for j := range p {
		p[j] = rng.Float64() * scale
	}
	return p
}

// randPreference samples a simplex weight vector (non-negative, sums
// to 1), occasionally skewed so one component dominates and the
// rangeW-growth rebuild path triggers.
func randPreference(rng *rand.Rand, d int) Vector {
	w := make(Vector, d)
	sum := 0.0
	for j := range w {
		w[j] = rng.Float64()
		if rng.Intn(8) == 0 {
			w[j] += 3 // skew: this component will dominate
		}
		sum += w[j]
	}
	for j := range w {
		w[j] /= sum
	}
	return w
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkMutatedEquivalence compares the mutated index against a fresh
// build over the same data: identical answers for both query types at
// several worker counts, ranks cross-validated against the exact scan,
// and identical persisted bytes.
func checkMutatedEquivalence(t *testing.T, ix *Index, ps, ws []Vector, n int, rng *rand.Rand) {
	t.Helper()
	fresh, err := New(ps, ws, &Options{GridPartitions: n})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumProducts() != len(ps) || ix.NumPreferences() != len(ws) {
		t.Fatalf("mutated index holds %d/%d elements, want %d/%d",
			ix.NumProducts(), ix.NumPreferences(), len(ps), len(ws))
	}
	d := ix.Dim()
	queries := []Vector{ps[rng.Intn(len(ps))], randProduct(rng, d, 1.2)}
	ctx := context.Background()
	for _, q := range queries {
		for _, workers := range []int{1, 2, 4, 8} {
			wantRTK, err := fresh.ReverseTopKCtx(ctx, q, 4, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			gotRTK, err := ix.ReverseTopKCtx(ctx, q, 4, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !sameInts(gotRTK, wantRTK) {
				t.Fatalf("workers=%d: mutated RTK %v, fresh %v", workers, gotRTK, wantRTK)
			}
			wantRKR, err := fresh.ReverseKRanksCtx(ctx, q, 4, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			gotRKR, err := ix.ReverseKRanksCtx(ctx, q, 4, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !sameMatches(gotRKR, wantRKR) {
				t.Fatalf("workers=%d: mutated RKR %v, fresh %v", workers, gotRKR, wantRKR)
			}
		}
		// Brute force: every reported rank must equal the exact scan's
		// count of strictly better products.
		matches, err := ix.ReverseKRanksCtx(ctx, q, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			brute := 0
			w := ws[m.WeightIndex]
			var fq float64
			for j := range q {
				fq += w[j] * q[j]
			}
			for _, p := range ps {
				var fp float64
				for j := range p {
					fp += w[j] * p[j]
				}
				if fp < fq {
					brute++
				}
			}
			if m.Rank != brute {
				t.Fatalf("rank(w%d, q) = %d, brute force %d", m.WeightIndex, m.Rank, brute)
			}
		}
	}
	var mb, fb bytes.Buffer
	if _, err := ix.WriteTo(&mb); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.WriteTo(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb.Bytes(), fb.Bytes()) {
		t.Fatalf("mutated index persists %d bytes differing from a fresh build's %d", mb.Len(), fb.Len())
	}
}

// TestMutationEquivalence drives random insert/delete sequences over
// many random datasets and checks, at several points per sequence, that
// the mutated index is indistinguishable from a fresh build over the
// same data: answers (all worker counts), exact-scan ranks, and Save
// bytes.
func TestMutationEquivalence(t *testing.T) {
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(9000 + trial)))
			d := 2 + rng.Intn(3)
			n := 8
			dist := Uniform
			if trial%2 == 1 {
				dist = Clustered
			}
			P, err := GenerateProducts(int64(trial), dist, 15+rng.Intn(40), d)
			if err != nil {
				t.Fatal(err)
			}
			W, err := GeneratePreferences(int64(trial+1000), Uniform, 10+rng.Intn(25), d)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := New(P, W, &Options{GridPartitions: n})
			if err != nil {
				t.Fatal(err)
			}
			ps := append([]Vector{}, P...)
			ws := append([]Vector{}, W...)
			wantEpoch := uint64(0)
			for step := 0; step < 12; step++ {
				switch op := rng.Intn(6); {
				case op == 0 && len(ps) > 2:
					i := rng.Intn(len(ps))
					if err := ix.DeleteProduct(i); err != nil {
						t.Fatal(err)
					}
					ps = append(ps[:i:i], ps[i+1:]...)
				case op == 1 && len(ws) > 2:
					i := rng.Intn(len(ws))
					if err := ix.DeletePreference(i); err != nil {
						t.Fatal(err)
					}
					ws = append(ws[:i:i], ws[i+1:]...)
				case op == 2:
					w := randPreference(rng, d)
					id, err := ix.InsertPreference(w)
					if err != nil {
						t.Fatal(err)
					}
					if id != len(ws) {
						t.Fatalf("InsertPreference id %d, want %d", id, len(ws))
					}
					ws = append(ws, w)
				case op == 3 && len(ps) > 4: // batch delete
					ids := []int{rng.Intn(len(ps) / 2), len(ps)/2 + rng.Intn(len(ps)/2)}
					if err := ix.DeleteProducts(ids); err != nil {
						t.Fatal(err)
					}
					ps = append(ps[:ids[0]:ids[0]], ps[ids[0]+1:]...)
					ps = append(ps[:ids[1]-1:ids[1]-1], ps[ids[1]:]...)
				case op == 4: // batch insert
					batch := []Vector{randProduct(rng, d, 1), randProduct(rng, d, 1.5)}
					first, err := ix.InsertProducts(batch)
					if err != nil {
						t.Fatal(err)
					}
					if first != len(ps) {
						t.Fatalf("InsertProducts first id %d, want %d", first, len(ps))
					}
					ps = append(ps, batch...)
				default:
					// Scale beyond 1 sometimes exceeds the current rangeP and
					// exercises the range-growth rebuild.
					p := randProduct(rng, d, []float64{0.9, 1.0, 1.4}[rng.Intn(3)])
					id, err := ix.InsertProduct(p)
					if err != nil {
						t.Fatal(err)
					}
					if id != len(ps) {
						t.Fatalf("InsertProduct id %d, want %d", id, len(ps))
					}
					ps = append(ps, p)
				}
				wantEpoch++
				if got := ix.Epoch(); got != wantEpoch {
					t.Fatalf("Epoch() = %d after %d mutations", got, wantEpoch)
				}
				if step == 5 {
					checkMutatedEquivalence(t, ix, ps, ws, n, rng)
				}
			}
			checkMutatedEquivalence(t, ix, ps, ws, n, rng)
		})
	}
}

// TestMutationValidation covers every rejection path; a failed mutation
// must leave the epoch untouched.
func TestMutationValidation(t *testing.T) {
	ix := mustIndex(t, nil)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		call func() error
		want error
	}{
		{"product wrong dim", func() error { _, err := ix.InsertProduct(Vector{1}); return err }, ErrDimensionMismatch},
		{"product NaN", func() error { _, err := ix.InsertProduct(Vector{math.NaN(), 0}); return err }, nil},
		{"product negative", func() error { _, err := ix.InsertProduct(Vector{-1, 0}); return err }, nil},
		{"preference wrong dim", func() error { _, err := ix.InsertPreference(Vector{1}); return err }, ErrDimensionMismatch},
		{"preference bad sum", func() error { _, err := ix.InsertPreference(Vector{0.5, 0.6}); return err }, nil},
		{"preference negative", func() error { _, err := ix.InsertPreference(Vector{-0.5, 1.5}); return err }, nil},
		{"delete product out of range", func() error { return ix.DeleteProduct(len(phones)) }, ErrOutOfRange},
		{"delete product negative", func() error { return ix.DeleteProduct(-1) }, ErrOutOfRange},
		{"delete preference out of range", func() error { return ix.DeletePreference(99) }, ErrOutOfRange},
		{"empty product batch", func() error { _, err := ix.InsertProducts(nil); return err }, nil},
		{"empty preference batch", func() error { _, err := ix.InsertPreferences(nil); return err }, nil},
		{"empty delete batch", func() error { return ix.DeleteProducts(nil) }, nil},
		{"duplicate batch ids", func() error { return ix.DeleteProducts([]int{1, 1}) }, nil},
		{"batch id out of range", func() error { return ix.DeletePreferences([]int{0, 7}) }, ErrOutOfRange},
		{"batch deletes all", func() error { return ix.DeleteProducts([]int{0, 1, 2, 3, 4}) }, ErrLastElement},
		{"cancelled insert", func() error { _, err := ix.InsertProductCtx(cancelled, Vector{0.1, 0.1}); return err }, context.Canceled},
		{"cancelled delete", func() error { return ix.DeletePreferenceCtx(cancelled, 0) }, context.Canceled},
		{"bad element in batch", func() error { _, err := ix.InsertProducts([]Vector{{0.1, 0.1}, {math.Inf(1), 0}}); return err }, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.call()
			if err == nil {
				t.Fatal("mutation accepted")
			}
			if c.want != nil && !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
	if ix.Epoch() != 0 || ix.NumProducts() != len(phones) || ix.NumPreferences() != len(users) {
		t.Fatal("failed mutations changed the index")
	}

	// The last element of either set is not deletable.
	small, err := New([]Vector{{0.5, 0.5}}, []Vector{{0.4, 0.6}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.DeleteProduct(0); !errors.Is(err, ErrLastElement) {
		t.Fatalf("deleting the last product: %v", err)
	}
	if err := small.DeletePreference(0); !errors.Is(err, ErrLastElement) {
		t.Fatalf("deleting the last preference: %v", err)
	}
}

// TestConcurrentMutationsAndQueries runs mutators and queriers together
// (meaningful under -race): queries must always succeed against a
// consistent snapshot while epochs roll forward.
func TestConcurrentMutationsAndQueries(t *testing.T) {
	P, err := GenerateProducts(31, Uniform, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(32, Uniform, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, &Options{GridPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	const mutations = 120
	ctx := context.Background()
	stop := make(chan struct{})
	errc := make(chan error, 16)
	var qwg, mwg sync.WaitGroup

	// Queriers: random valid queries, plus snapshot reads. Answers only
	// need to be error-free; consistency with one epoch is what the
	// equivalence test proves, here the race detector is the oracle.
	for g := 0; g < 4; g++ {
		qwg.Add(1)
		go func(seed int64) {
			defer qwg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randProduct(rng, 4, 1)
				if _, err := ix.ReverseTopKCtx(ctx, q, 5, WithWorkers(1+rng.Intn(4))); err != nil {
					errc <- err
					return
				}
				if _, err := ix.ReverseKRanksCtx(ctx, q, 5); err != nil {
					errc <- err
					return
				}
				if _, err := ix.Product(0); err != nil {
					errc <- err
					return
				}
				var buf bytes.Buffer
				if _, err := ix.WriteTo(&buf); err != nil {
					errc <- err
					return
				}
			}
		}(int64(100 + g))
	}
	// One product mutator and one preference mutator: each is the sole
	// writer for its kind, so its size bookkeeping stays accurate.
	mwg.Add(2)
	go func() {
		defer mwg.Done()
		rng := rand.New(rand.NewSource(7))
		size := ix.NumProducts()
		for op := 0; op < mutations; op++ {
			if size > 250 && rng.Intn(2) == 0 {
				if err := ix.DeleteProduct(rng.Intn(size)); err != nil {
					errc <- err
					return
				}
				size--
			} else {
				if _, err := ix.InsertProduct(randProduct(rng, 4, 1)); err != nil {
					errc <- err
					return
				}
				size++
			}
		}
	}()
	go func() {
		defer mwg.Done()
		rng := rand.New(rand.NewSource(8))
		size := ix.NumPreferences()
		for op := 0; op < mutations; op++ {
			if size > 100 && rng.Intn(2) == 0 {
				if err := ix.DeletePreference(rng.Intn(size)); err != nil {
					errc <- err
					return
				}
				size--
			} else {
				if _, err := ix.InsertPreference(randPreference(rng, 4)); err != nil {
					errc <- err
					return
				}
				size++
			}
		}
	}()

	mwg.Wait()
	close(stop)
	qwg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if got := ix.Epoch(); got != 2*mutations {
		t.Fatalf("Epoch() = %d after %d mutations", got, 2*mutations)
	}
}

// TestBatchRejectionIsAllOrNothing pins the batch validation seam: a
// batch with duplicate or partially-invalid ids is rejected before any
// epoch work — no partial delete, no epoch bump, no cache flush, no
// subscription events. Ids are always interpreted against the pre-batch
// epoch, never against a half-applied one.
func TestBatchRejectionIsAllOrNothing(t *testing.T) {
	P, err := GenerateProducts(91, Uniform, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(92, Uniform, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, &Options{CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Populate one cache entry and one subscription: both must survive
	// every rejected batch untouched.
	q := P[0]
	if _, err := ix.ReverseTopKCtx(ctx, q, 3); err != nil {
		t.Fatal(err)
	}
	sub, err := ix.Subscribe(q, 3, SubReverseTopK, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	rejected := []struct {
		name string
		call func() error
		want error
	}{
		{"duplicate preference ids", func() error { return ix.DeletePreferences([]int{3, 3, 5}) }, nil},
		{"mixed valid and unknown preference ids", func() error { return ix.DeletePreferences([]int{2, 99}) }, ErrOutOfRange},
		{"duplicate product ids", func() error { return ix.DeleteProducts([]int{1, 1, 4}) }, nil},
		{"mixed valid and unknown product ids", func() error { return ix.DeleteProducts([]int{0, -1}) }, ErrOutOfRange},
		{"invalid element mid-batch", func() error { _, err := ix.InsertProducts([]Vector{{0.1, 0.1}, {math.NaN(), 0}}); return err }, nil},
	}
	for _, c := range rejected {
		t.Run(c.name, func(t *testing.T) {
			err := c.call()
			if err == nil {
				t.Fatal("invalid batch accepted")
			}
			if c.want != nil && !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
			if ix.Epoch() != 0 {
				t.Fatalf("rejected batch bumped the epoch to %d", ix.Epoch())
			}
			if ix.NumProducts() != len(P) || ix.NumPreferences() != len(W) {
				t.Fatal("rejected batch changed the element counts")
			}
			cs, _ := ix.CacheStats()
			if cs.Flushes != 0 || cs.Entries != 1 {
				t.Fatalf("rejected batch touched the cache: %+v", cs)
			}
			select {
			case ev := <-sub.Events():
				t.Fatalf("rejected batch emitted a subscription event: %+v", ev)
			default:
			}
		})
	}

	// The seams still work after the rejections: a valid batch applies,
	// flushes the cache, and its ids resolve against the pre-batch epoch
	// — [0, 5] removes the original rows 0 and 5, not renumbered ones.
	want := []Vector{P[1], P[2], P[3], P[4], P[6], P[7]}
	if err := ix.DeleteProducts([]int{0, 5}); err != nil {
		t.Fatal(err)
	}
	if ix.Epoch() != 1 || ix.NumProducts() != len(want) {
		t.Fatalf("epoch %d, %d products after batch delete", ix.Epoch(), ix.NumProducts())
	}
	for i, w := range want {
		got, err := ix.Product(i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range w {
			if got[j] != w[j] {
				t.Fatalf("product %d = %v, want %v (ids must bind pre-batch)", i, got, w)
			}
		}
	}
	cs, _ := ix.CacheStats()
	if cs.Flushes != 1 {
		t.Fatalf("valid batch did not flush the cache: %+v", cs)
	}
}
