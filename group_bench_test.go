package gridrank

// Benchmarks of the cell-grouping regime: duplicate-heavy workloads where
// many points and weights collapse onto few grid cells. The acceptance
// workload (CL data, n=32, d=6) plus a UN/CL/AC × d × n sweep. Run via
// scripts/bench.sh, which records the numbers in BENCH_gir.json.

import (
	"fmt"
	"math/rand"
	"testing"

	"gridrank/internal/algo"
	"gridrank/internal/stats"
)

func makeDistBenchData(b *testing.B, dist Distribution, nP, nW, d int) benchData {
	b.Helper()
	P, err := GenerateProducts(1, dist, nP, d)
	if err != nil {
		b.Fatal(err)
	}
	wdist := dist
	if wdist == AntiCorrelated {
		wdist = Uniform // AC preferences are not defined
	}
	W, err := GeneratePreferences(2, wdist, nW, d)
	if err != nil {
		b.Fatal(err)
	}
	return benchData{P: P, W: W, q: P[len(P)/2]}
}

// makeCatalogBenchData builds the duplicate-heavy workload: a catalog of
// distinct clustered base vectors sampled with multiplicity `dup`, the
// shape of real e-commerce data where many listings share one attribute
// vector (same model, different sellers) and users fall into persona
// archetypes. Points sharing a vector share a grid cell, which is the
// regime cell grouping exploits.
func makeCatalogBenchData(b *testing.B, nP, nW, d, dup int) benchData {
	b.Helper()
	base, err := GenerateProducts(1, Clustered, nP/dup, d)
	if err != nil {
		b.Fatal(err)
	}
	personas, err := GeneratePreferences(2, Clustered, nW/dup, d)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	P := make([]Vector, nP)
	for i := range P {
		P[i] = base[rng.Intn(len(base))]
	}
	W := make([]Vector, nW)
	for i := range W {
		W[i] = personas[rng.Intn(len(personas))]
	}
	return benchData{P: P, W: W, q: base[len(base)/2]}
}

// BenchmarkGIRGroupedRKR is the acceptance workload: clustered catalog
// data, n=32 partitions, d=6 — the duplicate-heavy regime where cell
// grouping shares bound evaluations across identical approximate vectors.
func BenchmarkGIRGroupedRKR(b *testing.B) {
	data := makeCatalogBenchData(b, 4000, 1000, 6, 16)
	gir := algo.NewGIR(data.P, data.W, DefaultRange, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gir.ReverseKRanks(data.q, 100, nil)
	}
}

// BenchmarkGIRGroupedRTK is the acceptance workload for reverse top-k.
func BenchmarkGIRGroupedRTK(b *testing.B) {
	data := makeCatalogBenchData(b, 4000, 1000, 6, 16)
	gir := algo.NewGIR(data.P, data.W, DefaultRange, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gir.ReverseTopK(data.q, 100, nil)
	}
}

// BenchmarkGIRGroupedSweep sweeps distribution, dimensionality and grid
// resolution: coarse grids and clustered data should show grouping wins,
// high d and fine grids a wash.
func BenchmarkGIRGroupedSweep(b *testing.B) {
	if testing.Short() {
		b.Skip("sweep skipped in -short bench runs")
	}
	for _, dist := range []Distribution{Uniform, Clustered, AntiCorrelated} {
		for _, d := range []int{4, 8, 16} {
			for _, n := range []int{32, 128} {
				b.Run(fmt.Sprintf("%s/d=%d/n=%d", dist, d, n), func(b *testing.B) {
					data := makeDistBenchData(b, dist, 2000, 500, d)
					gir := algo.NewGIR(data.P, data.W, DefaultRange, n)
					var c stats.Counters
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						gir.ReverseKRanks(data.q, 50, &c)
					}
					b.ReportMetric(100*c.FilterRate(), "filter%")
				})
			}
		}
	}
}
