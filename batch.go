package gridrank

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// BatchResult pairs one query's answer with its position in the input.
type BatchResult[T any] struct {
	Query int
	Value T
	Err   error
}

// ReverseTopKBatchCtx answers many reverse top-k queries concurrently on
// up to workers goroutines (0 means GOMAXPROCS). The index is immutable,
// so queries share it safely; results are returned in input order. The
// context governs the whole batch: when it is cancelled or expires, the
// in-flight queries stop within one preference chunk and every
// unfinished entry carries ctx.Err().
func (ix *Index) ReverseTopKBatchCtx(ctx context.Context, queries []Vector, k, workers int) []BatchResult[[]int] {
	return runBatch(ctx, queries, workers, func(q Vector) ([]int, error) {
		return ix.ReverseTopKCtx(ctx, q, k)
	})
}

// ReverseKRanksBatchCtx answers many reverse k-ranks queries
// concurrently, with the same context contract as ReverseTopKBatchCtx.
func (ix *Index) ReverseKRanksBatchCtx(ctx context.Context, queries []Vector, k, workers int) []BatchResult[[]Match] {
	return runBatch(ctx, queries, workers, func(q Vector) ([]Match, error) {
		return ix.ReverseKRanksCtx(ctx, q, k)
	})
}

// ReverseTopKBatch is ReverseTopKBatchCtx with a background context.
func (ix *Index) ReverseTopKBatch(queries []Vector, k, workers int) []BatchResult[[]int] {
	return ix.ReverseTopKBatchCtx(context.Background(), queries, k, workers)
}

// ReverseKRanksBatch is ReverseKRanksBatchCtx with a background context.
func (ix *Index) ReverseKRanksBatch(queries []Vector, k, workers int) []BatchResult[[]Match] {
	return ix.ReverseKRanksBatchCtx(context.Background(), queries, k, workers)
}

func runBatch[T any](ctx context.Context, queries []Vector, workers int, f func(Vector) (T, error)) []BatchResult[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([]BatchResult[T], len(queries))
	if len(queries) == 0 {
		return out
	}
	done := ctx.Done()
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(queries) {
					return
				}
				res := BatchResult[T]{Query: i}
				// A dead context fails the remaining queries immediately
				// instead of running them; the per-query scan handles
				// cancellation mid-flight.
				if done != nil && ctx.Err() != nil {
					res.Err = ctx.Err()
					out[i] = res
					continue
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							res.Err = fmt.Errorf("gridrank: query %d panicked: %v", i, r)
						}
					}()
					res.Value, res.Err = f(queries[i])
				}()
				out[i] = res
			}
		}()
	}
	wg.Wait()
	return out
}
