package gridrank

import (
	"fmt"
	"runtime"
	"sync"
)

// BatchResult pairs one query's answer with its position in the input.
type BatchResult[T any] struct {
	Query int
	Value T
	Err   error
}

// ReverseTopKBatch answers many reverse top-k queries concurrently on up
// to workers goroutines (0 means GOMAXPROCS). The index is immutable, so
// queries share it safely; results are returned in input order.
func (ix *Index) ReverseTopKBatch(queries []Vector, k, workers int) []BatchResult[[]int] {
	return runBatch(queries, workers, func(q Vector) ([]int, error) {
		return ix.ReverseTopK(q, k)
	})
}

// ReverseKRanksBatch answers many reverse k-ranks queries concurrently.
func (ix *Index) ReverseKRanksBatch(queries []Vector, k, workers int) []BatchResult[[]Match] {
	return runBatch(queries, workers, func(q Vector) ([]Match, error) {
		return ix.ReverseKRanks(q, k)
	})
}

func runBatch[T any](queries []Vector, workers int, f func(Vector) (T, error)) []BatchResult[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([]BatchResult[T], len(queries))
	if len(queries) == 0 {
		return out
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(queries) {
					return
				}
				res := BatchResult[T]{Query: i}
				func() {
					defer func() {
						if r := recover(); r != nil {
							res.Err = fmt.Errorf("gridrank: query %d panicked: %v", i, r)
						}
					}()
					res.Value, res.Err = f(queries[i])
				}()
				out[i] = res
			}
		}()
	}
	wg.Wait()
	return out
}
