package gridrank

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// BatchResult pairs one query's answer with its position in the input.
type BatchResult[T any] struct {
	Query int
	Value T
	Err   error
}

// ReverseTopKBatchCtx answers many reverse top-k queries concurrently on
// up to workers goroutines (0 means GOMAXPROCS). Queries read one epoch
// snapshot each, so they share the index safely; results are returned in
// input order. The context governs the whole batch: when it is cancelled
// or expires, the in-flight queries stop within one preference chunk and
// every unfinished entry carries ctx.Err().
//
// Each per-query scan runs sequentially (WithWorkers(1)) regardless of
// the index's Parallelism setting: the batch already parallelizes across
// queries, and nesting the index default under every batch worker would
// multiply the goroutine count to workers × Parallelism and oversubscribe
// the CPUs. Pass WithWorkers explicitly in opts to override (opts apply
// to every query in the batch, and later options win). WithStats is not
// usable here — concurrent queries would race on the one sink. WithTrace
// IS usable: a trace serializes span recording internally, so every
// query of the batch lands its spans on the one trace.
func (ix *Index) ReverseTopKBatchCtx(ctx context.Context, queries []Vector, k, workers int, opts ...QueryOption) []BatchResult[[]int] {
	opts = append([]QueryOption{WithWorkers(1)}, opts...)
	return runBatch(ctx, queries, workers, func(q Vector) ([]int, error) {
		return ix.ReverseTopKCtx(ctx, q, k, opts...)
	})
}

// ReverseKRanksBatchCtx answers many reverse k-ranks queries
// concurrently, with the same context, option and worker contracts as
// ReverseTopKBatchCtx.
func (ix *Index) ReverseKRanksBatchCtx(ctx context.Context, queries []Vector, k, workers int, opts ...QueryOption) []BatchResult[[]Match] {
	opts = append([]QueryOption{WithWorkers(1)}, opts...)
	return runBatch(ctx, queries, workers, func(q Vector) ([]Match, error) {
		return ix.ReverseKRanksCtx(ctx, q, k, opts...)
	})
}

// ReverseTopKBatch is ReverseTopKBatchCtx with a background context.
func (ix *Index) ReverseTopKBatch(queries []Vector, k, workers int, opts ...QueryOption) []BatchResult[[]int] {
	return ix.ReverseTopKBatchCtx(context.Background(), queries, k, workers, opts...)
}

// ReverseKRanksBatch is ReverseKRanksBatchCtx with a background context.
func (ix *Index) ReverseKRanksBatch(queries []Vector, k, workers int, opts ...QueryOption) []BatchResult[[]Match] {
	return ix.ReverseKRanksBatchCtx(context.Background(), queries, k, workers, opts...)
}

func runBatch[T any](ctx context.Context, queries []Vector, workers int, f func(Vector) (T, error)) []BatchResult[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([]BatchResult[T], len(queries))
	if len(queries) == 0 {
		return out
	}
	done := ctx.Done()
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(queries) {
					return
				}
				res := BatchResult[T]{Query: i}
				// A dead context fails the remaining queries immediately
				// instead of running them; the per-query scan handles
				// cancellation mid-flight.
				if done != nil && ctx.Err() != nil {
					res.Err = ctx.Err()
					out[i] = res
					continue
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							res.Err = fmt.Errorf("gridrank: query %d panicked: %v", i, r)
						}
					}()
					res.Value, res.Err = f(queries[i])
				}()
				out[i] = res
			}
		}()
	}
	wg.Wait()
	return out
}
