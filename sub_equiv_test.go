package gridrank

import (
	"context"
	"math/rand"
	"sort"
	"testing"
)

// The subscription-equivalence harness: the proof standard for the
// continuous subscription diff pass, mirroring TestCacheEquivalence.
// Random mutation histories run against an index with live monitors of
// both kinds, mirrored into plain model slices; after every epoch the
// emitted enter/leave events are cross-validated against brute-force
// before/after membership, and the diff pass must have examined
// strictly fewer preference vectors than full per-monitor recomputes
// would have (the forced dominated insert at step 0 guarantees the gap).

// subBruteRank is the exact scan: |{p : <w,p> < <w,q>}|.
func subBruteRank(ps []Vector, w, q Vector) int {
	var fq float64
	for j := range q {
		fq += w[j] * q[j]
	}
	r := 0
	for _, p := range ps {
		var fp float64
		for j := range p {
			fp += w[j] * p[j]
		}
		if fp < fq {
			r++
		}
	}
	return r
}

// subBruteMembers computes a monitor's answer set from the model
// slices: TopK membership is rank < k; KRanks is the k best by
// ascending (rank, id), reported ascending by id.
func subBruteMembers(ps, ws []Vector, s *Subscription) []SubMember {
	if s.Kind() == SubReverseTopK {
		var out []SubMember
		for wi := range ws {
			if subBruteRank(ps, ws[wi], s.Query()) < s.K() {
				out = append(out, SubMember{Pref: wi})
			}
		}
		return out
	}
	ms := make([]SubMember, len(ws))
	for wi := range ws {
		ms[wi] = SubMember{Pref: wi, Rank: subBruteRank(ps, ws[wi], s.Query())}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Rank != ms[j].Rank {
			return ms[i].Rank < ms[j].Rank
		}
		return ms[i].Pref < ms[j].Pref
	})
	if s.K() < len(ms) {
		ms = ms[:s.K()]
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Pref < ms[j].Pref })
	return ms
}

type subEvKey struct {
	t  string
	id int
}

func drainSubEvents(s *Subscription) map[subEvKey]int {
	out := map[subEvKey]int{}
	for {
		select {
		case ev, ok := <-s.Events():
			if !ok {
				return out
			}
			out[subEvKey{ev.Type.String(), ev.Pref}]++
		default:
			return out
		}
	}
}

// subExpectedEvents is the membership delta old→fresh. prefDelete >= 0
// applies the delete renumbering: the deleted preference leaves under
// its pre-delete id, survivors are compared under their new ids.
func subExpectedEvents(old, fresh []SubMember, prefDelete int) map[subEvKey]int {
	oldSet := map[int]bool{}
	for _, m := range old {
		oldSet[m.Pref] = true
	}
	newSet := map[int]bool{}
	for _, m := range fresh {
		newSet[m.Pref] = true
	}
	out := map[subEvKey]int{}
	if prefDelete >= 0 {
		remapped := map[int]bool{}
		for p := range oldSet {
			switch {
			case p == prefDelete:
				out[subEvKey{"leave", p}]++
			case p > prefDelete:
				remapped[p-1] = true
			default:
				remapped[p] = true
			}
		}
		oldSet = remapped
	}
	for p := range oldSet {
		if !newSet[p] {
			out[subEvKey{"leave", p}]++
		}
	}
	for p := range newSet {
		if !oldSet[p] {
			out[subEvKey{"enter", p}]++
		}
	}
	return out
}

func sameSubEvents(a, b map[subEvKey]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func sameSubMembers(a, b []SubMember, ranks bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pref != b[i].Pref {
			return false
		}
		if ranks && a[i].Rank != b[i].Rank {
			return false
		}
	}
	return true
}

// subTrialMutate applies one random mutation to the index, mirrors it
// into the model slices, and returns the deleted preference id (or -1).
func subTrialMutate(t *testing.T, rng *rand.Rand, ix *Index, ps, ws *[]Vector) int {
	t.Helper()
	d := ix.Dim()
	switch op := rng.Intn(7); {
	case op == 0 && len(*ps) > 3: // delete product
		i := rng.Intn(len(*ps))
		if err := ix.DeleteProduct(i); err != nil {
			t.Fatal(err)
		}
		*ps = append((*ps)[:i:i], (*ps)[i+1:]...)
	case op == 1 && len(*ws) > 3: // delete preference (renumbering path)
		i := rng.Intn(len(*ws))
		if err := ix.DeletePreference(i); err != nil {
			t.Fatal(err)
		}
		*ws = append((*ws)[:i:i], (*ws)[i+1:]...)
		return i
	case op == 2: // insert preference
		w := randPreference(rng, d)
		if _, err := ix.InsertPreference(w); err != nil {
			t.Fatal(err)
		}
		*ws = append(*ws, w)
	case op == 3 && len(*ps) > 6: // batch product delete (rebuild path)
		ids := []int{rng.Intn(len(*ps) / 2), len(*ps)/2 + rng.Intn(len(*ps)/2)}
		if err := ix.DeleteProducts(ids); err != nil {
			t.Fatal(err)
		}
		*ps = append((*ps)[:ids[0]:ids[0]], (*ps)[ids[0]+1:]...)
		*ps = append((*ps)[:ids[1]-1:ids[1]-1], (*ps)[ids[1]:]...)
	case op == 4: // batch preference insert (rebuild path)
		batch := []Vector{randPreference(rng, d), randPreference(rng, d)}
		if _, err := ix.InsertPreferences(batch); err != nil {
			t.Fatal(err)
		}
		*ws = append(*ws, batch...)
	default: // insert product, sometimes growing rangeP
		p := randProduct(rng, d, []float64{0.9, 1.0, 1.4}[rng.Intn(3)])
		if _, err := ix.InsertProduct(p); err != nil {
			t.Fatal(err)
		}
		*ps = append(*ps, p)
	}
	return -1
}

// TestSubscriptionEquivalence is the headline subscription harness: 50
// random mutation histories with live monitors of both kinds; every
// emitted event must match the brute-force membership delta at every
// epoch, and the diff pass must examine strictly fewer preference
// vectors than full recomputes on the single-mutation epochs.
func TestSubscriptionEquivalence(t *testing.T) {
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(63000 + trial)))
			d := 2 + rng.Intn(3)
			dist := Uniform
			if trial%2 == 1 {
				dist = Clustered
			}
			P, err := GenerateProducts(int64(700+trial), dist, 15+rng.Intn(40), d)
			if err != nil {
				t.Fatal(err)
			}
			W, err := GeneratePreferences(int64(1700+trial), Uniform, 10+rng.Intn(25), d)
			if err != nil {
				t.Fatal(err)
			}
			opts := &Options{GridPartitions: 8}
			if trial%2 == 0 {
				// Half the trials run with the answer cache enabled: the
				// subscription hook must coexist with the cache hooks under
				// the same publish ordering.
				opts.CacheSize = 16
			}
			ix, err := New(P, W, opts)
			if err != nil {
				t.Fatal(err)
			}
			ps := append([]Vector{}, P...)
			ws := append([]Vector{}, W...)
			var subs []*Subscription
			for i := 0; i < 3; i++ {
				kind := SubReverseTopK
				if i%2 == 1 {
					kind = SubReverseKRanks
				}
				q := ps[rng.Intn(len(ps))]
				s, err := ix.Subscribe(q, 1+rng.Intn(5), kind, 4096)
				if err != nil {
					t.Fatal(err)
				}
				if want := subBruteMembers(ps, ws, s); !sameSubMembers(s.Initial(), want, kind == SubReverseKRanks) {
					t.Fatalf("subscription %d initial %v, brute force %v", s.ID(), s.Initial(), want)
				}
				subs = append(subs, s)
			}
			ctx := context.Background()
			members := make([][]SubMember, len(subs))
			for i, s := range subs {
				members[i] = s.Initial()
			}
			for step := 0; step < 13; step++ {
				prefDelete := -1
				if step == 0 {
					// Forced: a product componentwise above every monitored
					// point. The dominance gate must skip every monitor, and
					// that saving makes the strictly-fewer assertion below
					// immune to later epochs (diff never exceeds full cost).
					maxc := 0.0
					for _, p := range ps {
						for _, c := range p {
							if c > maxc {
								maxc = c
							}
						}
					}
					dom := make(Vector, d)
					for j := range dom {
						dom[j] = maxc + 0.5
					}
					if _, err := ix.InsertProduct(dom); err != nil {
						t.Fatal(err)
					}
					ps = append(ps, dom)
				} else {
					prefDelete = subTrialMutate(t, rng, ix, &ps, &ws)
				}
				for i, s := range subs {
					want := subBruteMembers(ps, ws, s)
					gotEv := drainSubEvents(s)
					wantEv := subExpectedEvents(members[i], want, prefDelete)
					if !sameSubEvents(gotEv, wantEv) {
						t.Fatalf("step %d sub %d (%v, k=%d): events %v, want %v (members %v -> %v)",
							step, s.ID(), s.Kind(), s.K(), gotEv, wantEv, members[i], want)
					}
					if s.Lagged() {
						t.Fatalf("step %d sub %d lagged with a 4096 buffer", step, s.ID())
					}
					members[i] = want
				}
				if opts.CacheSize > 0 {
					// Exercise the cache alongside the subscriptions.
					if _, err := ix.ReverseTopKCtx(ctx, subs[0].Query(), subs[0].K()); err != nil {
						t.Fatal(err)
					}
				}
			}
			st := ix.SubscriptionStats()
			if st.GatedSkips < int64(len(subs)) {
				t.Fatalf("dominated insert gated %d monitors, want >= %d", st.GatedSkips, len(subs))
			}
			if st.PrefsDiffEvaluated >= st.PrefsDiffFullCost {
				t.Fatalf("diff pass examined %d preference vectors, full recompute baseline %d: no saving",
					st.PrefsDiffEvaluated, st.PrefsDiffFullCost)
			}
			if st.Lagged != 0 || st.Monitors != int64(len(subs)) {
				t.Fatalf("stats = %+v", st)
			}
			for _, s := range subs {
				s.Close()
				if _, ok := <-s.Events(); ok {
					t.Fatalf("sub %d channel open after Close", s.ID())
				}
			}
			if st := ix.SubscriptionStats(); st.Monitors != 0 {
				t.Fatalf("monitors remain after Close: %+v", st)
			}
		})
	}
}
