package gridrank

// A/B pairs pricing the packed cell-row layout against the float64
// reference on the reverse k-ranks scan, at the paper's default d = 6
// and at d = 16 where the per-row classify work dominates and the
// widened packed kernel has the most to win. Both sides of each pair
// run the identical workload, so the ratio is the layout's speedup;
// scripts/bench.sh records both in BENCH_gir.json.

import (
	"testing"

	"gridrank/internal/algo"
)

func benchGIRLayoutRKR(b *testing.B, d, packedBits int) {
	b.Helper()
	data := makeBenchData(b, 4000, 1000, d)
	gir := algo.NewGIRLayout(data.P, data.W, DefaultRange, 32, algo.Layout{PackedBits: packedBits})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gir.ReverseKRanks(data.q, 100, nil)
	}
}

func benchGIRLayoutRTK(b *testing.B, d, packedBits int) {
	b.Helper()
	data := makeBenchData(b, 4000, 1000, d)
	gir := algo.NewGIRLayout(data.P, data.W, DefaultRange, 32, algo.Layout{PackedBits: packedBits})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gir.ReverseTopK(data.q, 100, nil)
	}
}

func BenchmarkGIRUnpackedKRanksD6(b *testing.B) { benchGIRLayoutRKR(b, 6, 0) }
func BenchmarkGIRPackedKRanksD6(b *testing.B)   { benchGIRLayoutRKR(b, 6, 5) }

func BenchmarkGIRUnpackedKRanksD16(b *testing.B) { benchGIRLayoutRKR(b, 16, 0) }
func BenchmarkGIRPackedKRanksD16(b *testing.B)   { benchGIRLayoutRKR(b, 16, 5) }

func BenchmarkGIRUnpackedTopKD16(b *testing.B) { benchGIRLayoutRTK(b, 16, 0) }
func BenchmarkGIRPackedTopKD16(b *testing.B)   { benchGIRLayoutRTK(b, 16, 5) }
