#!/bin/sh
# check_bce.sh fails when the compiler inserts more bounds checks into
# the hot scan kernels than the recorded budget. The packed classify
# kernels (classifyPacked4 / classifyPackedRow), the unpacked classify
# loop, the Dot/Dot2 kernels and the bit-packing primitives run per
# group per preference — a bounds check that slips into one of them
# (say, by reordering an index expression the prover no longer sees
# through) is a silent performance regression no test catches.
#
# The budgets are per file, counted from `-d=ssa/check_bce` output, and
# deliberately equal to the current counts: most remaining checks are
# data-dependent table loads (bnd[off + 2*code]) the prover cannot
# eliminate, so any increase means a kernel change regressed. After a
# deliberate kernel change, re-run with -update semantics by editing the
# budgets below, justifying the new count in the commit.
set -eu
cd "$(dirname "$0")/.."

out=$(go build -gcflags='-d=ssa/check_bce/debug=1' \
    ./internal/vec ./internal/bits ./internal/topk ./internal/algo 2>&1 |
    grep -E 'Found Is(In|Slice)Bounds' || true)
if [ -z "$out" ]; then
    echo "check_bce: no compiler output — toolchain change?" >&2
    exit 1
fi

bad=0
check() {
    file=$1
    budget=$2
    n=$(printf '%s\n' "$out" | awk -F: -v f="$file" '$1 == f' | wc -l | tr -d ' ')
    if [ "$n" -gt "$budget" ]; then
        echo "new bounds checks in $file: $n, budget $budget:" >&2
        printf '%s\n' "$out" | awk -F: -v f="$file" '$1 == f' | sed 's/^/  /' >&2
        bad=1
    else
        echo "$file: $n bounds checks (budget $budget)"
    fi
}

# gir_packed_widths.go: 4 per kernel x 5 width-specialized kernels, all
# outer-loop row-word loads (words[oN+wi]); the per-code table loads are
# check-free via the constant-stride slice window.
check internal/algo/gir_packed.go 12
check internal/algo/gir_packed_widths.go 20
check internal/algo/gir.go 23
check internal/vec/vec.go 2
check internal/bits/bits.go 12
check internal/topk/topk.go 25

if [ "$bad" -ne 0 ]; then
    echo "hot-kernel bounds checks grew; see -gcflags='-d=ssa/check_bce' output above" >&2
    exit 1
fi
echo "hot-kernel bounds checks within budget"
