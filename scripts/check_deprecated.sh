#!/bin/sh
# check_deprecated.sh fails when repo code calls the deprecated Index
# query matrix (ReverseTopK / ReverseKRanks and their Stats / Parallel /
# ParallelStats variants) instead of the context-first API, or the algo
# layer's positional Traced form instead of the QueryOpts one (the
# positional workers argument has the old 0-means-GOMAXPROCS
# convention; new call sites take ReverseTopKOpts/ReverseKRanksOpts).
#
# Scope: the public-facing layers — the root package, examples/, cmd/
# and internal/server. Exempt:
#   - gridrank.go       (defines the deprecated wrappers)
#   - deprecated_test.go (their equivalence coverage)
#   - internal/algo and the root bench files, whose gir.ReverseTopK(...)
#     calls are the algorithm-layer interface (three-argument form with a
#     *stats.Counters), not the deprecated Index methods.
set -eu
cd "$(dirname "$0")/.."

pattern='\.Reverse(TopK|KRanks)(Stats|Parallel|ParallelStats|Traced)?\([^)]*\)'
files=$(ls ./*.go; find examples cmd internal/server -name '*.go')

bad=0
for f in $files; do
    case "$f" in
    ./gridrank.go | ./deprecated_test.go) continue ;;
    ./*bench_test.go) continue ;;
    esac
    # Ctx and Batch calls are the replacement API; everything else that
    # matches the method family is a deprecated use.
    hits=$(grep -nE "$pattern" "$f" | grep -vE '\.Reverse(TopK|KRanks)(Batch)?Ctx\(|\.Reverse(TopK|KRanks)Batch\(' || true)
    if [ -n "$hits" ]; then
        echo "deprecated query-method use in $f:"
        echo "$hits" | sed 's/^/  /'
        bad=1
    fi
done
if [ "$bad" -ne 0 ]; then
    echo "use ReverseTopKCtx / ReverseKRanksCtx (WithWorkers, WithStats) instead" >&2
    exit 1
fi
echo "no deprecated query-method uses"
