#!/bin/sh
# check_coverage.sh fails when statement coverage over the correctness
# core — the root package plus internal/{algo,grid,cache,server,sub} —
# drops below the recorded baseline, so test debt shows up in the PR
# that introduces it instead of accumulating silently.
#
# The baseline is set ~1.5 points below the measured total at the time
# of recording (93.7% when the answer cache landed), leaving headroom
# for benign fluctuation (new error paths, platform-dependent branches)
# while still catching a change that lands real logic untested. Raise it
# when coverage improves durably; never lower it to make CI pass — add
# tests instead.
#
# Usage: scripts/check_coverage.sh
set -eu
cd "$(dirname "$0")/.."

BASELINE=92.0
PKGS=". ./internal/algo ./internal/grid ./internal/cache ./internal/server ./internal/sub"

PROFILE=$(mktemp)
trap 'rm -f "$PROFILE"' EXIT

# shellcheck disable=SC2086 # PKGS is a deliberate word list
go test -count=1 -coverprofile="$PROFILE" $PKGS

TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
if [ -z "$TOTAL" ]; then
    echo "check_coverage: could not parse total coverage" >&2
    exit 1
fi

echo "total statement coverage: ${TOTAL}% (baseline ${BASELINE}%)"
awk -v total="$TOTAL" -v base="$BASELINE" 'BEGIN {
    if (total + 0 < base + 0) {
        printf "coverage %.1f%% fell below the %.1f%% baseline\n", total, base
        exit 1
    }
}'
