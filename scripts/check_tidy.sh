#!/bin/sh
# check_tidy.sh fails when the tree contains zero-byte tracked files —
# almost always editor or merge debris (an accidental `touch`, a half
# finished `git add`), never something this repo wants committed.
set -eu
cd "$(dirname "$0")/.."

bad=0
for f in $(git ls-files); do
    if [ -f "$f" ] && [ ! -s "$f" ]; then
        echo "zero-byte tracked file: $f"
        bad=1
    fi
done
if [ "$bad" -ne 0 ]; then
    echo "delete the file(s) or give them content" >&2
    exit 1
fi
echo "no zero-byte tracked files"
