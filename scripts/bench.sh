#!/bin/sh
# bench.sh runs the GIR benchmark suite and records the results in
# BENCH_gir.json so performance changes are tracked in review, not lost
# in terminal scrollback.
#
# Usage: scripts/bench.sh [-short]
#
#   -short   quick smoke run: fewer iterations, skips the distribution
#            sweep (BenchmarkGIRGroupedSweep skips itself under -short).
#            Used by the CI bench job.
#
# Covered benchmarks: the query-path suite (BenchmarkGIR*) from
# bench_test.go, parallel_bench_test.go and group_bench_test.go — the
# grouped acceptance workloads, the paper-parameter RTK/RKR runs, the
# high-dimensional run and the intra-query parallel sweep — plus the
# mutation-throughput suite (BenchmarkGIRMutation*) from
# mutate_bench_test.go: single insert/delete epoch derivation, batch
# rebuild, mutation latency under concurrent query load, and the
# subscriber fan-out sweep (BenchmarkGIRMutationSubscriberFanout),
# which prices the per-epoch subscription diff pass at 0/4/16/64 live
# monitors — and the
# tracing-overhead suite (BenchmarkGIRTraceOverhead) from
# trace_bench_test.go, whose off/noop/sampled sub-benchmarks price the
# span instrumentation so a regression on the untraced path is caught
# in review — and the answer-cache suite (BenchmarkGIRCache*,
# BenchmarkGIRMutationUnderQueryLoadCached) from cache_bench_test.go,
# which prices the warm-hit path against the uncached scan and reports
# the achieved hit rate (hit_%) under concurrent mutation churn — and
# the index-load suite (BenchmarkGIRIndexLoad, BenchmarkGIRIndexLoadMmap)
# from scale_test.go, which prices opening a saved GRI3 file through the
# fully validating heap loader against the zero-copy mmap loader; B/op
# on those is each loader's heap footprint per open index, the proxy
# for resident memory (the mmap payload lives in the page cache) — and
# the flight-recorder suite (BenchmarkFlightRecorderOverhead) from
# flight_bench_test.go, whose off/on sub-benchmarks price the always-on
# digest ring against a recorder-disabled index. Each
# entry records ns/op, B/op, allocs/op and any custom metrics the
# benchmark reports (e.g. filter% for the grouped sweep).
set -eu
cd "$(dirname "$0")/.."

BENCHTIME=1s
SHORT_FLAG=""
if [ "${1:-}" = "-short" ]; then
    BENCHTIME=2x
    SHORT_FLAG="-short"
fi

OUT=BENCH_gir.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkGIR|BenchmarkFlightRecorderOverhead' -benchmem -benchtime "$BENCHTIME" \
    $SHORT_FLAG . | tee "$RAW"

# Parse `go test -bench` lines into JSON. A line looks like:
#   BenchmarkName-8  	  123	  456 ns/op	  789 B/op	  2 allocs/op	  91.2 filter%
awk '
BEGIN { print "{"; print "  \"benchmarks\": ["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    printf "%s    {\"name\": \"%s\", \"iterations\": %s", \
        (first ? "" : ",\n"), name, iters
    first = 0
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9_%\/]/, "_", unit)
        gsub(/\//, "_per_", unit)
        gsub(/%/, "_pct", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
/^cpu:/ { cpu = substr($0, 6); gsub(/^[ \t]+|"/, "", cpu) }
END {
    print ""
    print "  ],"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\"\n", BT
    print "}"
}' BT="$BENCHTIME" "$RAW" > "$OUT"

echo "wrote $OUT"
