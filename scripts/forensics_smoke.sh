#!/bin/sh
# forensics_smoke.sh boots a real rrqserver with tracing on, drives a
# mixed load (queries, a mutation, a metrics scrape in both exposition
# flavors), then exercises the whole forensic surface end to end:
# /debug/flight must show the traffic, the OpenMetrics scrape must end
# in `# EOF`, and /debug/bundle — fetched with rrqdiag, which
# manifest-validates before writing — must inspect cleanly. It is the
# CI proof that the incident-forensics workflow in README.md works
# against a live binary, not just in unit tests.
#
# Usage: scripts/forensics_smoke.sh [addr]   (default 127.0.0.1:18080)
set -eu
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:18080}"
BASE="http://$ADDR"
WORK=$(mktemp -d)
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    [ -n "$SRV_PID" ] && wait "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/rrqserver" ./cmd/rrqserver
go build -o "$WORK/rrqdiag" ./cmd/rrqdiag

echo "== boot rrqserver on $ADDR"
"$WORK/rrqserver" -demo -np 2000 -nw 1000 -d 4 -addr "$ADDR" \
    -trace-sample 1 -log off &
SRV_PID=$!

i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "FAIL: server never became healthy" >&2
        exit 1
    fi
    sleep 0.2
done

echo "== mixed load"
for p in 1 2 3 4 5; do
    curl -sf -d "{\"product\": $p, \"k\": 10}" "$BASE/v1/reverse-topk" >/dev/null
done
curl -sf -d '{"product": 1, "k": 5}' "$BASE/v1/reverse-kranks" >/dev/null
curl -sf -d '{"products": [[1, 2, 3, 4]]}' "$BASE/v1/products" >/dev/null

echo "== flight recorder saw the traffic"
FLIGHT=$(curl -sf "$BASE/debug/flight")
echo "$FLIGHT" | grep -q '"enabled":true' || {
    echo "FAIL: flight recorder not enabled: $FLIGHT" >&2; exit 1; }
echo "$FLIGHT" | grep -q '"records":\[{' || {
    echo "FAIL: flight ring empty after load: $FLIGHT" >&2; exit 1; }

echo "== OpenMetrics scrape with exemplars"
OM=$(curl -sf -H 'Accept: application/openmetrics-text' "$BASE/metrics")
printf '%s\n' "$OM" | tail -1 | grep -q '^# EOF$' || {
    echo "FAIL: OpenMetrics scrape does not end with # EOF" >&2; exit 1; }
printf '%s\n' "$OM" | grep -q 'trace_id=' || {
    echo "FAIL: no exemplar in OpenMetrics scrape" >&2; exit 1; }
curl -sf "$BASE/metrics" | grep -q '# EOF' && {
    echo "FAIL: classic scrape contains # EOF" >&2; exit 1; }

echo "== fetch and validate the diagnostics bundle"
"$WORK/rrqdiag" -server "$BASE" -out "$WORK/bundle.tar.gz"
"$WORK/rrqdiag" -inspect "$WORK/bundle.tar.gz"
for entry in goroutines.txt metrics.om flight.json traces.json config.json; do
    "$WORK/rrqdiag" -inspect "$WORK/bundle.tar.gz" | grep -q "$entry" || {
        echo "FAIL: bundle manifest missing $entry" >&2; exit 1; }
done

echo "forensics smoke OK"
