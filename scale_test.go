package gridrank

// Scale smoke and load benchmarks for the mmap serving path. The smoke
// is env-gated (it builds a ≥1M-row catalog) and run by the CI
// scale-smoke job; the benchmarks feed scripts/bench.sh → BENCH_gir.json.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// scaleIndexPath builds and saves a catalog of nP clustered products,
// returning the file path. Clustered data keeps the group count — and
// with it the structural-validation cost of a load — proportional to
// the cluster count rather than the row count, which is the realistic
// shape for the catalogs mmap serving targets.
func scaleIndexPath(tb testing.TB, dir string, nP, nW, d int) string {
	tb.Helper()
	P, err := GenerateProducts(71, Clustered, nP, d)
	if err != nil {
		tb.Fatal(err)
	}
	W, err := GeneratePreferences(72, Uniform, nW, d)
	if err != nil {
		tb.Fatal(err)
	}
	ix, err := New(P, W, &Options{GridPartitions: 32, PackedBits: 6})
	if err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("scale-%d.gri3", nP))
	if err := ix.Save(path); err != nil {
		tb.Fatal(err)
	}
	return path
}

// TestScaleSmokeMmap is the acceptance gate for the mmap loader: on a
// ≥1M-row catalog, LoadMmap must publish a queryable index in under
// 10ms and at least 100× faster than the heap loader reading the same
// file, with identical answers. Gated behind GRIDRANK_SCALE_SMOKE=1
// because building the catalog takes tens of seconds; the CI
// scale-smoke job sets it.
func TestScaleSmokeMmap(t *testing.T) {
	if os.Getenv("GRIDRANK_SCALE_SMOKE") == "" {
		t.Skip("set GRIDRANK_SCALE_SMOKE=1 to run the 1M-row mmap smoke")
	}
	path := scaleIndexPath(t, t.TempDir(), 1<<20, 2048, 6)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("catalog: %d rows, %.1f MiB on disk", 1<<20, float64(st.Size())/(1<<20))

	heapStart := time.Now()
	heap, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	heapLoad := time.Since(heapStart)

	best := time.Duration(1 << 62)
	var mm *Index
	for i := 0; i < 3; i++ {
		if mm != nil {
			mm.Close()
		}
		start := time.Now()
		mm, err = LoadMmap(path)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	defer mm.Close()
	t.Logf("heap load %v, mmap load %v (best of 3, %.0fx)", heapLoad, best, float64(heapLoad)/float64(best))
	if !canMmap() {
		t.Skip("no mmap on this platform; latency gate not applicable")
	}
	if best >= 10*time.Millisecond {
		t.Errorf("mmap load took %v, want <10ms", best)
	}
	if heapLoad < 100*best {
		t.Errorf("mmap load only %.1fx faster than heap (%v vs %v), want ≥100x",
			float64(heapLoad)/float64(best), best, heapLoad)
	}

	q := mm.Products()[1<<19]
	qStart := time.Now()
	got, err := mm.ReverseKRanksCtx(context.Background(), q, 25)
	if err != nil {
		t.Fatal(err)
	}
	qDur := time.Since(qStart)
	t.Logf("reverse k-ranks over mmap: %v", qDur)
	if qDur > 30*time.Second {
		t.Errorf("query over mmap index took %v, want <30s", qDur)
	}
	want, err := heap.ReverseKRanksCtx(context.Background(), q, 25)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Error("heap and mmap answers diverge at scale")
	}
}

// benchLoadPath caches one saved catalog per benchmark binary run.
var benchLoadPath string

func benchSavedIndex(b *testing.B) string {
	b.Helper()
	if benchLoadPath == "" {
		dir, err := os.MkdirTemp("", "gridrank-bench-")
		if err != nil {
			b.Fatal(err)
		}
		nP := 50000
		if testing.Short() {
			nP = 10000
		}
		benchLoadPath = scaleIndexPath(b, dir, nP, 512, 6)
	}
	return benchLoadPath
}

// BenchmarkGIRIndexLoad measures the heap loader: one aligned read of
// the image plus full checksum and semantic validation. B/op tracks
// resident bytes per open index.
func BenchmarkGIRIndexLoad(b *testing.B) {
	path := benchSavedIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := Load(path)
		if err != nil {
			b.Fatal(err)
		}
		ix.Close()
	}
}

// BenchmarkGIRIndexLoadMmap measures the zero-copy loader: header
// verification plus structural checks over mapped memory. B/op is the
// heap footprint of serving the file — the payload stays in the page
// cache.
func BenchmarkGIRIndexLoadMmap(b *testing.B) {
	path := benchSavedIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := LoadMmap(path)
		if err != nil {
			b.Fatal(err)
		}
		ix.Close()
	}
}
