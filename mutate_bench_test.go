package gridrank

import (
	"fmt"
	"math/rand"
	"testing"
)

// Mutation-throughput benchmarks. The names start with BenchmarkGIR so
// scripts/bench.sh picks them up into the tracked BENCH_gir.json.
// Insert/delete pairs keep the index size constant across iterations,
// so ns/op is the steady-state cost of one mutation epoch, not a
// measurement of a growing index.

func mutationBenchIndex(b *testing.B, np, nw int) *Index {
	b.Helper()
	P, err := GenerateProducts(71, Uniform, np, 6)
	if err != nil {
		b.Fatal(err)
	}
	W, err := GeneratePreferences(72, Uniform, nw, 6)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := New(P, W, nil)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

// BenchmarkGIRMutationInsertDeleteProduct measures the derive path: the
// inserted attributes stay inside the existing rangeP, so each epoch
// reuses the grid and splices one cell group.
func BenchmarkGIRMutationInsertDeleteProduct(b *testing.B) {
	ix := mutationBenchIndex(b, 20000, 5000)
	rng := rand.New(rand.NewSource(73))
	p := make(Vector, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range p {
			p[j] = rng.Float64() * 50
		}
		id, err := ix.InsertProduct(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.DeleteProduct(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGIRMutationInsertDeletePreference measures the preference
// derive path (in-range weights, always-derive deletes).
func BenchmarkGIRMutationInsertDeletePreference(b *testing.B) {
	ix := mutationBenchIndex(b, 20000, 5000)
	rng := rand.New(rand.NewSource(74))
	w := make(Vector, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for j := range w {
			w[j] = 0.05 + rng.Float64()*0.1
			sum += w[j]
		}
		for j := range w {
			w[j] /= sum
		}
		id, err := ix.InsertPreference(w)
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.DeletePreference(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGIRMutationBatchInsertProducts measures the rebuild path:
// batches always rebuild the epoch once, amortized over the batch.
func BenchmarkGIRMutationBatchInsertProducts(b *testing.B) {
	if testing.Short() {
		b.Skip("rebuild benchmark skipped in short mode")
	}
	ix := mutationBenchIndex(b, 20000, 5000)
	rng := rand.New(rand.NewSource(75))
	batch := make([]Vector, 64)
	for i := range batch {
		v := make(Vector, 6)
		for j := range v {
			v[j] = rng.Float64() * 50
		}
		batch[i] = v
	}
	ids := make([]int, len(batch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		first, err := ix.InsertProducts(batch)
		if err != nil {
			b.Fatal(err)
		}
		for j := range ids {
			ids[j] = first + j
		}
		if err := ix.DeleteProducts(ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGIRMutationUnderQueryLoad measures mutation latency while a
// background goroutine runs queries continuously — the epoch design's
// claim is that neither side blocks the other.
func BenchmarkGIRMutationUnderQueryLoad(b *testing.B) {
	if testing.Short() {
		b.Skip("contention benchmark skipped in short mode")
	}
	ix := mutationBenchIndex(b, 20000, 5000)
	q := ix.Products()[0]
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ix.ReverseTopK(q, 10); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	rng := rand.New(rand.NewSource(76))
	p := make(Vector, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range p {
			p[j] = rng.Float64() * 50
		}
		id, err := ix.InsertProduct(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.DeleteProduct(id); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkGIRMutationSubscriberFanout measures the marginal cost live
// subscriptions add to a mutation epoch: the same insert/delete pairs
// under query load as BenchmarkGIRMutationUnderQueryLoad, with N
// monitors registered whose diff pass runs inside each publish. The
// sub-benchmark at 0 subscribers is the baseline; the spread across
// counts is the fan-out price per epoch.
//
// The base is deliberately smaller than the other mutation benchmarks:
// random mid-range churn is the diff pass's worst case (nearly every
// epoch moves preferences under every monitor), so a hot monitor-epoch
// costs on the order of one bounded reverse query, and the benchmark's
// point is the per-monitor spread of that price, not the absolute cost
// of a query at catalog scale (the query suite already tracks that).
func BenchmarkGIRMutationSubscriberFanout(b *testing.B) {
	if testing.Short() {
		b.Skip("contention benchmark skipped in short mode")
	}
	for _, nsubs := range []int{0, 4, 16, 64} {
		b.Run(fmt.Sprintf("subs=%d", nsubs), func(b *testing.B) {
			ix := mutationBenchIndex(b, 1000, 500)
			products := ix.Products()
			q := products[0]
			var subs []*Subscription
			for i := 0; i < nsubs; i++ {
				kind := SubReverseTopK
				if i%2 == 1 {
					kind = SubReverseKRanks
				}
				s, err := ix.Subscribe(products[i%len(products)], 10, kind, 1<<16)
				if err != nil {
					b.Fatal(err)
				}
				subs = append(subs, s)
				// Drain each stream in the background so buffers never
				// fill: the benchmark measures the diff pass, not a
				// stalled consumer.
				go func(s *Subscription) {
					for range s.Events() {
					}
				}(s)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := ix.ReverseTopK(q, 10); err != nil {
						b.Error(err)
						return
					}
				}
			}()
			rng := rand.New(rand.NewSource(77))
			p := make(Vector, 6)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range p {
					p[j] = rng.Float64() * 50
				}
				id, err := ix.InsertProduct(p)
				if err != nil {
					b.Fatal(err)
				}
				if err := ix.DeleteProduct(id); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			<-done
			for _, s := range subs {
				s.Close()
			}
		})
	}
}
