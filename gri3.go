package gridrank

// GRI3, the zero-copy index format (little endian throughout).
//
// Versions 1 and 2 store only the authoritative data sets and rebuild
// the grid artifacts on load — O(|P|·d + |W|·d) cell assignments, two
// groupings and an (n+1)² table per open. GRI3 instead stores every
// artifact the scan needs, each as one fixed-stride machine-word array
// at a page-aligned offset, so a load is reassembly: the file (mapped
// or read into one aligned buffer) IS the index's memory.
//
//	header        88 bytes (layout below)
//	section table sectionCount × 32-byte entries
//	sections      each zero-padded to a 4096-byte boundary
//
// Header layout:
//
//	 0  magic        uint32  'G''R''I''3'
//	 4  n            uint32  grid partitions per axis
//	 8  packedBits   uint32  scan layout: 0 = unpacked, 4..8 = packed width
//	12  dim          uint32  dimensionality
//	16  sectionCount uint32  15, or 16 when packedBits > 0
//	20  reserved     uint32  zero
//	24  numP         uint64  |P|
//	32  numW         uint64  |W|
//	40  pGroups      uint64  distinct approximate product rows
//	48  wGroups      uint64  distinct approximate preference rows
//	56  rangeP       float64 point axis range
//	64  rangeW       float64 weight axis range (stored so a load never
//	                         pays the O(|W|·d) rescan New performs)
//	72  fileSize     uint64  total file length in bytes
//	80  headerCRC    uint64  CRC-64/ECMA over bytes [0,80) ++ the table
//
// Each section-table entry is {id uint32, reserved uint32, offset
// uint64, length uint64, crc uint64} with CRC-64/ECMA over the payload.
// The table is self-describing for external tools, but a conforming
// file has NO layout freedom: section ids must appear in canonical
// order and every offset must equal the deterministic packing computed
// from the header counts (first section at the first 4096-byte boundary
// after the table, each next at the first boundary after the previous
// payload). One equality check therefore subsumes overlap, ordering,
// alignment and bounds validation, and fileSize pins the total length
// so truncation is detected before any section is touched.
//
// Validation is split by trust level. The heap reader (ReadIndex/Load)
// treats the stream as untrusted: every section CRC is verified and the
// semantic invariants re-checked — floats finite and in range, weights
// summing to 1, approximate cells equal to re-approximating the data,
// the boundary table equal to recomputation, groupings cross-validated
// (grid.GroupedFromParts strict mode). The mmap reader verifies the
// header CRC and the O(1) shape arithmetic that ties every section to
// the header counts, but skips all content passes — that is what makes
// a multi-gigabyte open a millisecond operation — and trusts the file
// the way any mmap-served database does: a corrupted payload surfaces
// as a bounds-check panic or a wrong answer, never memory corruption.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"gridrank/internal/algo"
	"gridrank/internal/bits"
	"gridrank/internal/dataset"
	"gridrank/internal/flight"
	"gridrank/internal/grid"
	"gridrank/internal/vec"
)

const (
	indexMagicV3  = 0x33495247 // "GRI3"
	gri3Align     = 4096
	gri3HeaderLen = 88
	gri3EntryLen  = 32
)

// Section ids, in canonical file order.
const (
	secProducts    = iota + 1 // product matrix, numP×dim float64
	secPrefs                  // preference matrix, numW×dim float64
	secPointCells             // P^(A) element cells, numP×dim uint8
	secWeightCells            // W^(A) element cells, numW×dim uint8
	secPGRows                 // point grouping: unique rows, pGroups×dim uint8
	secPGMembers              // point grouping: member permutation, numP int32
	secPGOffsets              // point grouping: block offsets, pGroups+1 int32
	secPGGroupOf              // point grouping: element→group map, numP int32
	secPGSingle               // point grouping: singleton cache, pGroups int32
	secWGRows                 // weight grouping: unique rows
	secWGMembers              // weight grouping: member permutation
	secWGOffsets              // weight grouping: block offsets
	secWGGroupOf              // weight grouping: element→group map
	secWGSingle               // weight grouping: singleton cache
	secGridTable              // boundary-product table, (n+1)² float64
	secPackedRows             // packed point group rows, only when packedBits > 0
)

var gri3CRC = crc64.MakeTable(crc64.ECMA)

// gri3Header is the decoded fixed header.
type gri3Header struct {
	n, packedBits, dim int
	numP, numW         int
	pGroups, wGroups   int
	sections           int
	rangeP, rangeW     float64
	fileSize           uint64
}

// gri3Section is one section-table entry.
type gri3Section struct {
	id     uint32
	offset uint64
	length uint64
	crc    uint64
}

// sectionLengths returns the canonical payload lengths, in section-id
// order, implied by the header counts.
func (h gri3Header) sectionLengths() []uint64 {
	d := uint64(h.dim)
	np, nw := uint64(h.numP), uint64(h.numW)
	pg, wg := uint64(h.pGroups), uint64(h.wGroups)
	n1 := uint64(h.n + 1)
	ls := []uint64{
		np * d * 8,   // secProducts
		nw * d * 8,   // secPrefs
		np * d,       // secPointCells
		nw * d,       // secWeightCells
		pg * d,       // secPGRows
		np * 4,       // secPGMembers
		(pg + 1) * 4, // secPGOffsets
		np * 4,       // secPGGroupOf
		pg * 4,       // secPGSingle
		wg * d,       // secWGRows
		nw * 4,       // secWGMembers
		(wg + 1) * 4, // secWGOffsets
		nw * 4,       // secWGGroupOf
		wg * 4,       // secWGSingle
		n1 * n1 * 8,  // secGridTable
	}
	if h.packedBits > 0 {
		cpw := uint64(64 / h.packedBits)
		ls = append(ls, pg*((d+cpw-1)/cpw)*8) // secPackedRows
	}
	return ls
}

// gri3Pad rounds an offset up to the next section boundary.
func gri3Pad(off uint64) uint64 { return (off + gri3Align - 1) &^ uint64(gri3Align-1) }

// layout computes the canonical section placement and total file size
// implied by the header counts. Every conforming file matches it
// exactly (CRCs aside, which layout leaves zero).
func (h gri3Header) layout() ([]gri3Section, uint64) {
	ls := h.sectionLengths()
	secs := make([]gri3Section, len(ls))
	off := gri3Pad(uint64(gri3HeaderLen + gri3EntryLen*len(ls)))
	for i, l := range ls {
		secs[i] = gri3Section{id: uint32(i + 1), offset: off, length: l}
		off = gri3Pad(off + l)
	}
	last := secs[len(secs)-1]
	return secs, last.offset + last.length
}

// encodeHeader serializes h, computing the header CRC over the fixed
// fields and the already-encoded section table.
func (h gri3Header) encodeHeader(table []byte) []byte {
	b := make([]byte, gri3HeaderLen)
	le := binary.LittleEndian
	le.PutUint32(b[0:], indexMagicV3)
	le.PutUint32(b[4:], uint32(h.n))
	le.PutUint32(b[8:], uint32(h.packedBits))
	le.PutUint32(b[12:], uint32(h.dim))
	le.PutUint32(b[16:], uint32(h.sections))
	// b[20:24] reserved, zero.
	le.PutUint64(b[24:], uint64(h.numP))
	le.PutUint64(b[32:], uint64(h.numW))
	le.PutUint64(b[40:], uint64(h.pGroups))
	le.PutUint64(b[48:], uint64(h.wGroups))
	le.PutUint64(b[56:], math.Float64bits(h.rangeP))
	le.PutUint64(b[64:], math.Float64bits(h.rangeW))
	le.PutUint64(b[72:], h.fileSize)
	crc := crc64.New(gri3CRC)
	crc.Write(b[:80])
	crc.Write(table)
	le.PutUint64(b[80:], crc.Sum64())
	return b
}

// badRange reports a range value unusable as a grid axis.
func badRange(r float64) bool { return math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 }

// parseGRI3Header decodes and validates the fixed header (the CRC needs
// the section table and is checked by parseGRI3Image). Field bounds are
// plausibility limits: they keep every later size computation inside
// uint64 and reject absurd counts before any allocation happens.
func parseGRI3Header(b []byte) (gri3Header, error) {
	le := binary.LittleEndian
	var h gri3Header
	if le.Uint32(b[0:]) != indexMagicV3 {
		return h, fmt.Errorf("%w: bad magic", ErrBadIndexFile)
	}
	h.n = int(le.Uint32(b[4:]))
	h.packedBits = int(le.Uint32(b[8:]))
	h.dim = int(le.Uint32(b[12:]))
	h.sections = int(le.Uint32(b[16:]))
	reserved := le.Uint32(b[20:])
	numP := le.Uint64(b[24:])
	numW := le.Uint64(b[32:])
	pGroups := le.Uint64(b[40:])
	wGroups := le.Uint64(b[48:])
	h.rangeP = math.Float64frombits(le.Uint64(b[56:]))
	h.rangeW = math.Float64frombits(le.Uint64(b[64:]))
	h.fileSize = le.Uint64(b[72:])
	if h.n < 1 || h.n > grid.MaxPartitions {
		return h, fmt.Errorf("%w: implausible partition count %d", ErrBadIndexFile, h.n)
	}
	if h.packedBits != 0 {
		if h.packedBits < algo.MinPackedBits || h.packedBits > algo.MaxPackedBits {
			return h, fmt.Errorf("%w: implausible packed width %d", ErrBadIndexFile, h.packedBits)
		}
		if 1<<h.packedBits < h.n {
			return h, fmt.Errorf("%w: packed width %d cannot encode %d partitions", ErrBadIndexFile, h.packedBits, h.n)
		}
	}
	if h.dim < 1 || h.dim > 1<<16 {
		return h, fmt.Errorf("%w: implausible dimension %d", ErrBadIndexFile, h.dim)
	}
	if reserved != 0 {
		return h, fmt.Errorf("%w: reserved header field is %d", ErrBadIndexFile, reserved)
	}
	if numP < 1 || numP > 1<<33 || numW < 1 || numW > 1<<33 {
		return h, fmt.Errorf("%w: implausible element counts %d×%d", ErrBadIndexFile, numP, numW)
	}
	if pGroups < 1 || pGroups > numP || wGroups < 1 || wGroups > numW {
		return h, fmt.Errorf("%w: implausible group counts %d/%d", ErrBadIndexFile, pGroups, wGroups)
	}
	h.numP, h.numW = int(numP), int(numW)
	h.pGroups, h.wGroups = int(pGroups), int(wGroups)
	if badRange(h.rangeP) || badRange(h.rangeW) {
		return h, fmt.Errorf("%w: implausible ranges (%v, %v)", ErrBadIndexFile, h.rangeP, h.rangeW)
	}
	canon, size := h.layout()
	if h.sections != len(canon) {
		return h, fmt.Errorf("%w: %d sections, want %d", ErrBadIndexFile, h.sections, len(canon))
	}
	if h.fileSize != size {
		return h, fmt.Errorf("%w: file size %d, canonical layout needs %d", ErrBadIndexFile, h.fileSize, size)
	}
	return h, nil
}

// parseGRI3Sections decodes the section table and pins every entry to
// the canonical layout; only the CRC field carries information.
func parseGRI3Sections(h gri3Header, table []byte) ([]gri3Section, error) {
	canon, _ := h.layout()
	le := binary.LittleEndian
	for i := range canon {
		e := table[i*gri3EntryLen:]
		if id := le.Uint32(e[0:]); id != canon[i].id {
			return nil, fmt.Errorf("%w: section %d has id %d, want %d", ErrBadIndexFile, i, id, canon[i].id)
		}
		if r := le.Uint32(e[4:]); r != 0 {
			return nil, fmt.Errorf("%w: section %d reserved field is %d", ErrBadIndexFile, i, r)
		}
		if off := le.Uint64(e[8:]); off != canon[i].offset {
			return nil, fmt.Errorf("%w: section %d at offset %d, canonical layout puts it at %d",
				ErrBadIndexFile, i, off, canon[i].offset)
		}
		if l := le.Uint64(e[16:]); l != canon[i].length {
			return nil, fmt.Errorf("%w: section %d is %d bytes, canonical layout needs %d",
				ErrBadIndexFile, i, l, canon[i].length)
		}
		canon[i].crc = le.Uint64(e[24:])
	}
	return canon, nil
}

// The typed views of a section: zero-copy reinterpretation on a
// little-endian host (the buffer is 8-byte aligned and sections sit at
// 4096-byte offsets), an element-wise decode otherwise.

func gri3Float64s(b []byte) []float64 {
	if v, ok := vec.CastFloat64s(b); ok {
		return v
	}
	return vec.DecodeFloat64s(b)
}

func gri3Int32s(b []byte) []int32 {
	if v, ok := vec.CastInt32s(b); ok {
		return v
	}
	return vec.DecodeInt32s(b)
}

func gri3Uint64s(b []byte) []uint64 {
	if v, ok := vec.CastUint64s(b); ok {
		return v
	}
	return vec.DecodeUint64s(b)
}

// And the reverse direction for the writer: the in-memory arrays ARE
// the payload bytes on a little-endian host.

func gri3F64Bytes(v []float64) []byte {
	if b, ok := vec.Float64Bytes(v); ok {
		return b
	}
	return vec.EncodeFloat64s(v)
}

func gri3I32Bytes(v []int32) []byte {
	if b, ok := vec.Int32Bytes(v); ok {
		return b
	}
	return vec.EncodeInt32s(v)
}

func gri3U64Bytes(v []uint64) []byte {
	if b, ok := vec.Uint64Bytes(v); ok {
		return b
	}
	return vec.EncodeUint64s(v)
}

// parseGRI3Image assembles an epoch from a complete GRI3 file image —
// a heap buffer or a memory mapping; every constructed structure views
// data without copying, so data must stay alive and unmodified for the
// epoch's lifetime.
//
// full selects the untrusted-input validation level described in the
// format comment: section CRCs plus semantic re-derivation (heap
// loads). Without it only the header CRC and the structural shape
// checks run (mmap loads).
func parseGRI3Image(data []byte, full bool) (*epoch, int, error) {
	if len(data) < gri3HeaderLen {
		return nil, 0, fmt.Errorf("%w: %d bytes cannot hold a GRI3 header", ErrBadIndexFile, len(data))
	}
	h, err := parseGRI3Header(data[:gri3HeaderLen])
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(data)) != h.fileSize {
		return nil, 0, fmt.Errorf("%w: image is %d bytes, header says %d", ErrBadIndexFile, len(data), h.fileSize)
	}
	table := data[gri3HeaderLen : gri3HeaderLen+gri3EntryLen*h.sections]
	crc := crc64.New(gri3CRC)
	crc.Write(data[:80])
	crc.Write(table)
	if got := binary.LittleEndian.Uint64(data[80:88]); crc.Sum64() != got {
		return nil, 0, fmt.Errorf("%w: header checksum mismatch", ErrBadIndexFile)
	}
	secs, err := parseGRI3Sections(h, table)
	if err != nil {
		return nil, 0, err
	}
	payload := func(id int) []byte {
		s := secs[id-1]
		return data[s.offset : s.offset+s.length]
	}
	if full {
		// Every byte of the file is significant to the untrusted reader:
		// the header and table are under the header CRC, each payload under
		// its section CRC, and the alignment padding must be zero — so no
		// single-byte corruption can hide anywhere.
		pos := uint64(gri3HeaderLen + len(table))
		for _, s := range secs {
			for _, pad := range data[pos:s.offset] {
				if pad != 0 {
					return nil, 0, fmt.Errorf("%w: nonzero padding before section %d", ErrBadIndexFile, s.id)
				}
			}
			if crc64.Checksum(data[s.offset:s.offset+s.length], gri3CRC) != s.crc {
				return nil, 0, fmt.Errorf("%w: section %d checksum mismatch", ErrBadIndexFile, s.id)
			}
			pos = s.offset + s.length
		}
	}

	pData := gri3Float64s(payload(secProducts))
	wData := gri3Float64s(payload(secPrefs))
	pm := vec.MatrixFromFlat(pData, h.dim)
	wm := vec.MatrixFromFlat(wData, h.dim)
	g, err := grid.FromTable(h.n, h.rangeP, h.rangeW, gri3Float64s(payload(secGridTable)))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	pa, err := grid.IndexFromCells(g, h.dim, payload(secPointCells))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	wa, err := grid.IndexFromCells(g, h.dim, payload(secWeightCells))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	var packed *bits.PackedRows
	if h.packedBits > 0 {
		packed, err = bits.RowsFromWords(h.pGroups, h.dim, h.packedBits, gri3Uint64s(payload(secPackedRows)), full)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: packed rows: %v", ErrBadIndexFile, err)
		}
	}
	pg, err := grid.GroupedFromParts(pa, payload(secPGRows),
		gri3Int32s(payload(secPGMembers)), gri3Int32s(payload(secPGOffsets)),
		gri3Int32s(payload(secPGGroupOf)), gri3Int32s(payload(secPGSingle)), packed, full)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: point grouping: %v", ErrBadIndexFile, err)
	}
	wg, err := grid.GroupedFromParts(wa, payload(secWGRows),
		gri3Int32s(payload(secWGMembers)), gri3Int32s(payload(secWGOffsets)),
		gri3Int32s(payload(secWGGroupOf)), gri3Int32s(payload(secWGSingle)), nil, full)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: weight grouping: %v", ErrBadIndexFile, err)
	}
	if full {
		if err := verifyGRI3Semantics(h, pData, wData, g, pa, wa); err != nil {
			return nil, 0, err
		}
	}
	return &epoch{
		pm:     pm,
		wm:     wm,
		rangeP: h.rangeP,
		gir: algo.NewGIRFromParts(algo.GIRParts{
			PM: pm, WM: wm, Grid: g,
			PA: pa, WA: wa, PG: pg, WG: wg,
			PackedBits: h.packedBits,
		}),
	}, h.dim, nil
}

// verifyGRI3Semantics re-derives what versions 1 and 2 rebuild on every
// load and demands equality: data values legal for their axes, the
// stored weight range canonical for the data (so a re-save stays
// byte-identical to a fresh build), and every element cell equal to
// re-approximating its vector — which also bounds each cell below n.
// One O(|P|·d + |W|·d) pass, heap loads only.
func verifyGRI3Semantics(h gri3Header, pData, wData []float64, g *grid.Grid, pa, wa *grid.Index) error {
	pset := &dataset.FlatSet{Dim: h.dim, Range: h.rangeP, Data: pData}
	if err := pset.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	wset := &dataset.FlatSet{Dim: h.dim, Data: wData}
	if err := wset.ValidateWeights(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	if want := algo.CanonicalWeightRange(vec.MatrixFromFlat(wData, h.dim)); h.rangeW != want {
		return fmt.Errorf("%w: weight range %v, data needs %v", ErrBadIndexFile, h.rangeW, want)
	}
	row := make([]uint8, h.dim)
	for i := 0; i < h.numP; i++ {
		g.ApproxPoint(pData[i*h.dim:(i+1)*h.dim], row)
		if !bytesEqual(pa.Row(i), row) {
			return fmt.Errorf("%w: product %d cells disagree with its data", ErrBadIndexFile, i)
		}
	}
	for i := 0; i < h.numW; i++ {
		g.ApproxWeight(wData[i*h.dim:(i+1)*h.dim], row)
		if !bytesEqual(wa.Row(i), row) {
			return fmt.Errorf("%w: preference %d cells disagree with its data", ErrBadIndexFile, i)
		}
	}
	return nil
}

func bytesEqual(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gri3Artifacts are the grid structures a save serializes, already in
// the canonical (fresh-build-identical) form.
type gri3Artifacts struct {
	g      *grid.Grid
	pa, wa *grid.Index
	pg, wg *grid.GroupedIndex
}

// canonicalArtifacts returns the epoch's grid artifacts exactly as a
// fresh build over the same data would produce them, which is what
// keeps Save of a mutated index byte-identical to Save of New(current
// data). Point mutations maintain rangeP canonically, but two kinds of
// drift are possible and repaired here: preference deletions keep a
// wider-than-canonical weight axis (still a valid bounder, so queries
// stay exact, but a fresh build would choose the tighter one), and
// element removals can renumber groups away from first-occurrence
// order (see grid/mutate.go). The common no-mutation case passes
// through with zero rebuilding.
func canonicalArtifacts(e *epoch) gri3Artifacts {
	art := gri3Artifacts{
		pa: e.gir.PointCells(),
		wa: e.gir.WeightCells(),
		pg: e.gir.PointGrouping(),
		wg: e.gir.WeightGrouping(),
	}
	rangeW := algo.CanonicalWeightRange(e.wm)
	g, ok := e.gir.Grid().(*grid.Grid)
	if !ok || g.RangeP() != e.rangeP || g.RangeW() != rangeW {
		g = grid.New(e.gir.Grid().N(), e.rangeP, rangeW)
		art.wa = grid.NewWeightIndex(g, e.wm.Rows())
		art.wg = grid.NewGrouped(art.wa)
	} else if !art.wg.Canonical() {
		art.wg = grid.NewGrouped(art.wa)
	}
	art.g = g
	if !art.pg.Canonical() {
		art.pg = grid.NewGrouped(art.pa)
		if b := e.gir.PackedBits(); b > 0 {
			art.pg.Pack(b)
		}
	}
	return art
}

// writeGRI3 serializes one epoch snapshot in the GRI3 format. The
// returned count is the total number of bytes written to w (equal to
// the header's fileSize on success), per the io.WriterTo contract.
func writeGRI3(w io.Writer, e *epoch, dim int) (int64, error) {
	art := canonicalArtifacts(e)
	h := gri3Header{
		n:          art.g.N(),
		packedBits: e.gir.PackedBits(),
		dim:        dim,
		numP:       e.pm.Len(),
		numW:       e.wm.Len(),
		pGroups:    art.pg.Groups(),
		wGroups:    art.wg.Groups(),
		rangeP:     e.rangeP,
		rangeW:     art.g.RangeW(),
	}
	payloads := [][]byte{
		gri3F64Bytes(e.pm.Data()),
		gri3F64Bytes(e.wm.Data()),
		art.pa.Cells(),
		art.wa.Cells(),
		art.pg.Rows(),
		gri3I32Bytes(art.pg.MemberOrder()),
		gri3I32Bytes(art.pg.Offsets()),
		gri3I32Bytes(art.pg.GroupMap()),
		gri3I32Bytes(art.pg.Single()),
		art.wg.Rows(),
		gri3I32Bytes(art.wg.MemberOrder()),
		gri3I32Bytes(art.wg.Offsets()),
		gri3I32Bytes(art.wg.GroupMap()),
		gri3I32Bytes(art.wg.Single()),
		gri3F64Bytes(art.g.Table()),
	}
	if h.packedBits > 0 {
		payloads = append(payloads, gri3U64Bytes(art.pg.Packed().Words()))
	}
	h.sections = len(payloads)
	secs, fileSize := h.layout()
	h.fileSize = fileSize
	table := make([]byte, gri3EntryLen*len(secs))
	le := binary.LittleEndian
	for i, p := range payloads {
		if uint64(len(p)) != secs[i].length {
			return 0, fmt.Errorf("gridrank: internal: section %d is %d bytes, layout computed %d",
				secs[i].id, len(p), secs[i].length)
		}
		ent := table[i*gri3EntryLen:]
		le.PutUint32(ent[0:], secs[i].id)
		le.PutUint64(ent[8:], secs[i].offset)
		le.PutUint64(ent[16:], secs[i].length)
		le.PutUint64(ent[24:], crc64.Checksum(p, gri3CRC))
	}

	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(h.encodeHeader(table)); err != nil {
		return cw.n, err
	}
	if _, err := bw.Write(table); err != nil {
		return cw.n, err
	}
	var zeros [gri3Align]byte
	pos := uint64(gri3HeaderLen + len(table))
	for i, p := range payloads {
		if _, err := bw.Write(zeros[:secs[i].offset-pos]); err != nil {
			return cw.n, err
		}
		if _, err := bw.Write(p); err != nil {
			return cw.n, err
		}
		pos = secs[i].offset + secs[i].length
	}
	err := bw.Flush()
	return cw.n, err
}

// readIndexV3 is the heap GRI3 reader: it pulls the full image into one
// aligned buffer (geometric growth, so a lying header cannot force a
// huge allocation — unless sizeHint, from Load's stat of a real file,
// already vouches for the size, in which case exactly one allocation)
// and runs the full-validation parse.
func readIndexV3(br io.Reader, first8 []byte, sizeHint int64) (*Index, error) {
	head := make([]byte, gri3HeaderLen)
	copy(head, first8)
	if _, err := io.ReadFull(br, head[len(first8):]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	h, err := parseGRI3Header(head)
	if err != nil {
		return nil, err
	}
	if sizeHint > 0 && uint64(sizeHint) != h.fileSize {
		return nil, fmt.Errorf("%w: file is %d bytes, header says %d", ErrBadIndexFile, sizeHint, h.fileSize)
	}
	data, err := readGRI3Body(br, head, h.fileSize, sizeHint > 0)
	if err != nil {
		return nil, err
	}
	e, dim, err := parseGRI3Image(data, true)
	if err != nil {
		return nil, err
	}
	ix := &Index{dim: dim, format: formatGRI3, fr: flight.New(0)}
	ix.cur.Store(e)
	return ix, nil
}

// readGRI3Body assembles the full file image on the heap, head first.
func readGRI3Body(br io.Reader, head []byte, fileSize uint64, trusted bool) ([]byte, error) {
	total := int(fileSize)
	if trusted {
		data := vec.AlignedBytes(total)
		copy(data, head)
		if _, err := io.ReadFull(br, data[len(head):]); err != nil {
			return nil, fmt.Errorf("%w: truncated image: %v", ErrBadIndexFile, err)
		}
		return data, nil
	}
	data := vec.AlignedBytes(min(total, 512<<10))
	copy(data, head)
	got := len(head)
	for got < total {
		if got == len(data) {
			grown := vec.AlignedBytes(min(total, 2*len(data)))
			copy(grown, data)
			data = grown
		}
		n, err := io.ReadFull(br, data[got:])
		got += n
		if err != nil {
			return nil, fmt.Errorf("%w: truncated image: %v", ErrBadIndexFile, err)
		}
	}
	return data, nil
}
