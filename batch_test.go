package gridrank

import (
	"context"
	"runtime"
	"strings"
	"testing"
)

func batchIndex(t *testing.T) (*Index, []Vector) {
	t.Helper()
	P, err := GenerateProducts(11, Uniform, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(12, Uniform, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ix, P
}

func TestBatchMatchesSequential(t *testing.T) {
	ix, P := batchIndex(t)
	queries := P[:40]
	for _, workers := range []int{0, 1, 3, 64} {
		rtk := ix.ReverseTopKBatch(queries, 15, workers)
		rkr := ix.ReverseKRanksBatch(queries, 15, workers)
		if len(rtk) != len(queries) || len(rkr) != len(queries) {
			t.Fatalf("workers=%d: wrong result count", workers)
		}
		for i, q := range queries {
			if rtk[i].Query != i || rtk[i].Err != nil {
				t.Fatalf("workers=%d rtk[%d]: %+v", workers, i, rtk[i])
			}
			want, err := ix.ReverseTopKCtx(context.Background(), q, 15)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != len(rtk[i].Value) {
				t.Fatalf("workers=%d query %d: batch %v vs sequential %v",
					workers, i, rtk[i].Value, want)
			}
			for j := range want {
				if rtk[i].Value[j] != want[j] {
					t.Fatalf("workers=%d query %d: batch %v vs sequential %v",
						workers, i, rtk[i].Value, want)
				}
			}
			wantKR, err := ix.ReverseKRanksCtx(context.Background(), q, 15)
			if err != nil {
				t.Fatal(err)
			}
			for j := range wantKR {
				if rkr[i].Value[j] != wantKR[j] {
					t.Fatalf("workers=%d query %d RKR mismatch", workers, i)
				}
			}
		}
	}
}

// TestBatchPinsWorkerGoroutines pins the fix for worker multiplication:
// a batch on an index configured with intra-query Parallelism used to
// spawn workers × Parallelism goroutines (each per-query scan picked up
// the index default underneath the batch's own pool). The batch now
// forces sequential per-query scans, so the goroutine peak stays at the
// batch worker count.
func TestBatchPinsWorkerGoroutines(t *testing.T) {
	P, err := GenerateProducts(41, Uniform, 4000, 6)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(42, Uniform, 1200, 6)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, &Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := P[:48]
	const batchWorkers = 4
	baseline := runtime.NumGoroutine()
	stop := make(chan struct{})
	peakc := make(chan int, 1)
	go func() {
		peak := 0
		for {
			select {
			case <-stop:
				peakc <- peak
				return
			default:
			}
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
		}
	}()
	res := ix.ReverseTopKBatchCtx(context.Background(), queries, 10, batchWorkers)
	close(stop)
	peak := <-peakc
	for i := range res {
		if res[i].Err != nil {
			t.Fatalf("query %d: %v", i, res[i].Err)
		}
	}
	// baseline + the batch pool + the sampler, with a little slack for
	// runtime helpers. The pre-fix behavior peaks at
	// baseline + batchWorkers × Parallelism and trips this by a wide
	// margin.
	if limit := baseline + batchWorkers + 3; peak > limit {
		t.Fatalf("goroutine peak %d during batch (baseline %d, limit %d): per-query scans multiplied the batch workers",
			peak, baseline, limit)
	}
	// An explicit per-query override still works and answers identically.
	over := ix.ReverseTopKBatchCtx(context.Background(), queries[:8], 10, 2, WithWorkers(3))
	for i := range over {
		if over[i].Err != nil {
			t.Fatalf("override query %d: %v", i, over[i].Err)
		}
		want, err := ix.ReverseTopKCtx(context.Background(), queries[i], 10, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(over[i].Value) {
			t.Fatalf("override answers differ for query %d", i)
		}
		for j := range want {
			if over[i].Value[j] != want[j] {
				t.Fatalf("override answers differ for query %d", i)
			}
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	ix, _ := batchIndex(t)
	if got := ix.ReverseTopKBatch(nil, 5, 4); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

func TestBatchReportsPerQueryErrors(t *testing.T) {
	ix, P := batchIndex(t)
	queries := []Vector{P[0], {1, 2}, P[1]} // middle query has wrong dim
	res := ix.ReverseTopKBatch(queries, 5, 2)
	if res[0].Err != nil || res[2].Err != nil {
		t.Error("valid queries should succeed")
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "dimension") {
		t.Errorf("bad query error = %v", res[1].Err)
	}
}
