package gridrank

import (
	"context"
	"strings"
	"testing"
)

func batchIndex(t *testing.T) (*Index, []Vector) {
	t.Helper()
	P, err := GenerateProducts(11, Uniform, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(12, Uniform, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ix, P
}

func TestBatchMatchesSequential(t *testing.T) {
	ix, P := batchIndex(t)
	queries := P[:40]
	for _, workers := range []int{0, 1, 3, 64} {
		rtk := ix.ReverseTopKBatch(queries, 15, workers)
		rkr := ix.ReverseKRanksBatch(queries, 15, workers)
		if len(rtk) != len(queries) || len(rkr) != len(queries) {
			t.Fatalf("workers=%d: wrong result count", workers)
		}
		for i, q := range queries {
			if rtk[i].Query != i || rtk[i].Err != nil {
				t.Fatalf("workers=%d rtk[%d]: %+v", workers, i, rtk[i])
			}
			want, err := ix.ReverseTopKCtx(context.Background(), q, 15)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != len(rtk[i].Value) {
				t.Fatalf("workers=%d query %d: batch %v vs sequential %v",
					workers, i, rtk[i].Value, want)
			}
			for j := range want {
				if rtk[i].Value[j] != want[j] {
					t.Fatalf("workers=%d query %d: batch %v vs sequential %v",
						workers, i, rtk[i].Value, want)
				}
			}
			wantKR, err := ix.ReverseKRanksCtx(context.Background(), q, 15)
			if err != nil {
				t.Fatal(err)
			}
			for j := range wantKR {
				if rkr[i].Value[j] != wantKR[j] {
					t.Fatalf("workers=%d query %d RKR mismatch", workers, i)
				}
			}
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	ix, _ := batchIndex(t)
	if got := ix.ReverseTopKBatch(nil, 5, 4); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

func TestBatchReportsPerQueryErrors(t *testing.T) {
	ix, P := batchIndex(t)
	queries := []Vector{P[0], {1, 2}, P[1]} // middle query has wrong dim
	res := ix.ReverseTopKBatch(queries, 5, 2)
	if res[0].Err != nil || res[2].Err != nil {
		t.Error("valid queries should succeed")
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "dimension") {
		t.Errorf("bad query error = %v", res[1].Err)
	}
}
