//go:build !(linux || darwin)

package gridrank

// LoadMmap on platforms without memory-mapping support is the heap
// loader: the same index, the same answers, just without the shared
// page-cache residency. Resident() reports "heap".
func LoadMmap(path string) (*Index, error) { return Load(path) }

func munmap(b []byte) error { return nil }
