package gridrank

import (
	"testing"

	"gridrank/internal/algo"
)

func benchPair(b *testing.B, nP, nW, d, k int) {
	data := makeBenchData(b, nP, nW, d)
	gir := algo.NewGIR(data.P, data.W, DefaultRange, 32)
	sim := algo.NewSIM(data.P, data.W)
	b.Run("GIR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gir.ReverseTopK(data.q, k, nil)
		}
	})
	b.Run("SIM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.ReverseTopK(data.q, k, nil)
		}
	})
}

func BenchmarkScale6d(b *testing.B)  { benchPair(b, 50000, 2000, 6, 100) }
func BenchmarkScale20d(b *testing.B) { benchPair(b, 50000, 2000, 20, 100) }
