package gridrank

import (
	"errors"
	"testing"

	"gridrank/internal/trace"
)

// TestSubscribeAPIValidation pins the root Subscribe surface: argument
// validation, accessor values, the subscriber limit, and the stats
// zero value before the registry exists.
func TestSubscribeAPIValidation(t *testing.T) {
	ix := mustIndex(t, nil)

	if st := ix.SubscriptionStats(); st != (SubStats{}) {
		t.Fatalf("stats before first subscribe = %+v, want zero", st)
	}

	if _, err := ix.Subscribe(Vector{0.5}, 1, SubReverseTopK, 0); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("dimension mismatch: got %v", err)
	}
	if _, err := ix.Subscribe(Vector{0.5, 0.5}, 0, SubReverseTopK, 0); !errors.Is(err, ErrBadK) {
		t.Fatalf("k = 0: got %v", err)
	}
	if _, err := ix.Subscribe(Vector{0.5, 0.5}, 1, SubKind(99), 0); err == nil {
		t.Fatal("unknown kind accepted")
	}

	if err := ix.SetSubscriberLimit(-1); err == nil {
		t.Fatal("negative subscriber limit accepted")
	}
	if err := ix.SetSubscriberLimit(1); err != nil {
		t.Fatal(err)
	}
	s, err := ix.Subscribe(phones[0], 2, SubReverseKRanks, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := ix.Subscribe(phones[1], 1, SubReverseTopK, 0); !errors.Is(err, ErrTooManySubscribers) {
		t.Fatalf("limit breach: got %v", err)
	}

	if s.ID() != 0 {
		t.Fatalf("first subscription id = %d, want 0", s.ID())
	}
	if s.Kind() != SubReverseKRanks || s.K() != 2 {
		t.Fatalf("accessors: kind %v k %d", s.Kind(), s.K())
	}
	if got := s.Query(); len(got) != 2 || got[0] != phones[0][0] || got[1] != phones[0][1] {
		t.Fatalf("Query() = %v, want %v", got, phones[0])
	}
	if len(s.Initial()) != 2 {
		t.Fatalf("initial members = %v, want 2 entries", s.Initial())
	}

	// Raising the limit readmits; Close frees the slot again.
	if err := ix.SetSubscriberLimit(0); err != nil {
		t.Fatal(err)
	}
	s2, err := ix.Subscribe(phones[1], 1, SubReverseTopK, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s2.Close() // idempotent
	if _, ok := <-s2.Events(); ok {
		t.Fatal("events channel still open after Close")
	}
	if st := ix.SubscriptionStats(); st.Monitors != 1 || st.Subscribed != 2 || st.Unsubscribed != 1 {
		t.Fatalf("stats = %+v, want 1 monitor, 2 subscribed, 1 unsubscribed", st)
	}
}

// TestSubscriptionTracing pins the diff-pass trace wiring: with a
// tracer attached and a live subscription, every mutation shape records
// a sub.diff span tree; detaching stops recording; without live
// subscriptions nothing is recorded even when attached.
func TestSubscriptionTracing(t *testing.T) {
	ix := mustIndex(t, nil)
	tracer := trace.New(trace.Config{SampleRate: 1, Capacity: 64})

	// Attached but no registry yet: mutations must not record.
	ix.SetSubscriptionTracer(tracer)
	if _, err := ix.InsertProduct(Vector{0.4, 0.4}); err != nil {
		t.Fatal(err)
	}
	if n := len(tracer.Traces()); n != 0 {
		t.Fatalf("recorded %d traces with no subscriptions", n)
	}

	s, err := ix.Subscribe(phones[0], 2, SubReverseTopK, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	wid, err := ix.InsertPreference(Vector{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.DeletePreference(wid); err != nil {
		t.Fatal(err)
	}
	if err := ix.DeleteProduct(5); err != nil { // the product inserted above
		t.Fatal(err)
	}
	if _, err := ix.InsertProducts([]Vector{{0.3, 0.3}, {0.9, 0.9}}); err != nil {
		t.Fatal(err)
	}

	ops := make(map[string]bool)
	for _, td := range tracer.Traces() {
		if td.Name != "sub.diff" {
			t.Fatalf("unexpected trace %q", td.Name)
		}
		root := td.Spans[0]
		op, _ := root.Attrs["op"].(string)
		ops[op] = true
		if _, ok := root.Attrs["monitors"]; !ok {
			t.Fatalf("trace %q missing monitors attr: %v", op, root.Attrs)
		}
		if len(td.Spans) < 2 {
			t.Fatalf("trace %q has no child span", op)
		}
	}
	for _, want := range []string{"insert_preference", "delete_preference", "delete_product", "rebuild"} {
		if !ops[want] {
			t.Fatalf("no trace recorded for %s (got %v)", want, ops)
		}
	}

	// Detach: further mutations record nothing new.
	ix.SetSubscriptionTracer(nil)
	before := len(tracer.Traces())
	if _, err := ix.InsertProduct(Vector{0.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	if n := len(tracer.Traces()); n != before {
		t.Fatalf("detached tracer still recorded (%d -> %d)", before, n)
	}
}
