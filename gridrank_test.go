package gridrank

import (
	"context"
	"errors"
	"math"
	"testing"
)

// figure1 is the paper's running example.
var (
	phones = []Vector{
		{0.6, 0.7}, {0.2, 0.3}, {0.1, 0.6}, {0.7, 0.5}, {0.8, 0.2},
	}
	users = []Vector{
		{0.8, 0.2}, {0.3, 0.7}, {0.9, 0.1}, // Tom, Jerry, Spike
	}
)

func mustIndex(t *testing.T, opts *Options) *Index {
	t.Helper()
	ix, err := New(phones, users, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		p, w  []Vector
		opts  *Options
		error bool
	}{
		{"ok", phones, users, nil, false},
		{"empty products", nil, users, nil, true},
		{"empty preferences", phones, nil, nil, true},
		{"zero-dim", []Vector{{}}, users, nil, true},
		{"ragged products", []Vector{{1, 2}, {1}}, users, nil, true},
		{"ragged preferences", phones, []Vector{{0.5, 0.5}, {1}}, nil, true},
		{"negative attribute", []Vector{{-1, 2}}, users, nil, true},
		{"NaN attribute", []Vector{{math.NaN(), 2}}, users, nil, true},
		{"Inf attribute", []Vector{{math.Inf(1), 2}}, users, nil, true},
		{"negative weight", phones, []Vector{{-0.5, 1.5}}, nil, true},
		{"non-unit weight sum", phones, []Vector{{0.5, 0.6}}, nil, true},
		{"bad partitions", phones, users, &Options{GridPartitions: -1}, true},
		{"bad target", phones, users, &Options{TargetFiltering: 1.5}, true},
		{"auto target", phones, users, &Options{TargetFiltering: 0.99}, false},
		{"all-zero products", []Vector{{0, 0}}, users, nil, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.p, c.w, c.opts)
			if c.error && err == nil {
				t.Error("expected error")
			}
			if !c.error && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
}

func TestReverseTopKMatchesFigure1(t *testing.T) {
	ix := mustIndex(t, nil)
	want := [][]int{nil, {0, 1, 2}, {0, 2}, nil, {1}}
	for qi, q := range phones {
		got, err := ix.ReverseTopKCtx(context.Background(), q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want[qi]) {
			t.Fatalf("RT-2(p%d) = %v, want %v", qi+1, got, want[qi])
		}
		for i := range got {
			if got[i] != want[qi][i] {
				t.Fatalf("RT-2(p%d) = %v, want %v", qi+1, got, want[qi])
			}
		}
	}
}

func TestReverseKRanksMatchesFigure1(t *testing.T) {
	ix := mustIndex(t, nil)
	want := []Match{
		{WeightIndex: 0, Rank: 2},
		{WeightIndex: 1, Rank: 0},
		{WeightIndex: 0, Rank: 0},
		{WeightIndex: 0, Rank: 3},
		{WeightIndex: 1, Rank: 1},
	}
	for qi, q := range phones {
		got, err := ix.ReverseKRanksCtx(context.Background(), q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != want[qi] {
			t.Errorf("R1-R(p%d) = %+v, want %+v", qi+1, got, want[qi])
		}
	}
}

func TestQueryValidation(t *testing.T) {
	ix := mustIndex(t, nil)
	if _, err := ix.ReverseTopKCtx(context.Background(), Vector{0.5}, 2); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("wrong-dim query: %v", err)
	}
	if _, err := ix.ReverseTopKCtx(context.Background(), phones[0], 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := ix.ReverseKRanksCtx(context.Background(), Vector{0.5, math.NaN()}, 2); err == nil {
		t.Error("NaN query accepted")
	}
	if _, err := ix.TopK(Vector{0.5}, 2); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("TopK wrong dim: %v", err)
	}
	if _, err := ix.TopK(users[0], -1); !errors.Is(err, ErrBadK) {
		t.Errorf("TopK bad k: %v", err)
	}
	if _, err := ix.Rank(Vector{1}, phones[0]); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Rank wrong dim: %v", err)
	}
}

func TestTopKAndRank(t *testing.T) {
	ix := mustIndex(t, nil)
	got, err := ix.TopK(users[0], 2) // Tom: p3 then p2
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Index != 2 || got[1].Index != 1 {
		t.Errorf("Tom's top-2 = %+v", got)
	}
	if math.Abs(got[0].Score-0.2) > 1e-12 {
		t.Errorf("p3 score for Tom = %v, want 0.2", got[0].Score)
	}
	r, err := ix.Rank(users[0], phones[0]) // p1 is Tom's 3rd: 2 better
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 {
		t.Errorf("Rank = %d, want 2", r)
	}
}

func TestStatsReported(t *testing.T) {
	P, err := GenerateProducts(1, Uniform, 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(2, Uniform, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	_, err = ix.ReverseKRanksCtx(context.Background(), P[0], 10, WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundSums == 0 || st.Filtered == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if st.FilterRate() <= 0.5 {
		t.Errorf("filter rate %v suspiciously low", st.FilterRate())
	}
	if (Stats{}).FilterRate() != 0 {
		t.Error("zero stats should report rate 0")
	}
}

func TestAutoPartitionSizing(t *testing.T) {
	P, err := GenerateProducts(3, Uniform, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(4, Uniform, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, &Options{TargetFiltering: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 1's worked example: d=20, ε=1% → n=32.
	if ix.GridPartitions() != 32 {
		t.Errorf("auto n = %d, want 32", ix.GridPartitions())
	}
	// The boundary table is ~8K; the column-transposed scan copies triple
	// it. Still negligible (< 32 KiB).
	if ix.GridMemoryBytes() > 32<<10 {
		t.Errorf("grid memory %d bytes, want < 32K", ix.GridMemoryBytes())
	}
}

func TestRequiredPartitions(t *testing.T) {
	n, err := RequiredPartitions(20, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Errorf("RequiredPartitions(20, 0.99) = %d, want 32", n)
	}
	if _, err := RequiredPartitions(20, 0); err == nil {
		t.Error("target 0 should error")
	}
	if _, err := RequiredPartitions(20, 1); err == nil {
		t.Error("target 1 should error")
	}
}

func TestAccessors(t *testing.T) {
	ix := mustIndex(t, &Options{GridPartitions: 8})
	if ix.Dim() != 2 || ix.NumProducts() != 5 || ix.NumPreferences() != 3 {
		t.Errorf("accessors wrong: %d %d %d", ix.Dim(), ix.NumProducts(), ix.NumPreferences())
	}
	if ix.GridPartitions() != 8 {
		t.Errorf("GridPartitions = %d, want 8", ix.GridPartitions())
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := GenerateProducts(1, "XX", 10, 2); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := GenerateProducts(1, Uniform, 0, 2); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GenerateProducts(1, Uniform, 10, 0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := GeneratePreferences(1, "XX", 10, 2); err == nil {
		t.Error("unknown preference distribution accepted")
	}
	if _, err := GeneratePreferences(1, AntiCorrelated, 10, 2); err == nil {
		t.Error("AC preferences are not defined and must error")
	}
	// The fixed-d simulators ignore d.
	P, err := GenerateProducts(1, House, 50, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(P) != 50 || len(P[0]) != 6 {
		t.Errorf("House shape: %d × %d", len(P), len(P[0]))
	}
}

func TestMonoReverseTopKPublic(t *testing.T) {
	// Figure 1 phones: for which preference mixes does p2 make the top-2?
	// p2 is in everyone's top-2 (Figure 1b), and indeed for every λ.
	ivs, err := MonoReverseTopK(phones, phones[1], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].Lo != 0 || ivs[0].Hi != 1 {
		t.Fatalf("p2 should qualify for all λ: %v", ivs)
	}
	// p1 is in nobody's top-2, but the monochromatic answer covers ALL
	// preferences, not just the three users: verify any reported region
	// against the definition, and that Tom/Jerry/Spike's λ (0.8, 0.3,
	// 0.9) are excluded.
	ivs, err = MonoReverseTopK(phones, phones[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, lam := range []float64{0.8, 0.3, 0.9} {
		for _, iv := range ivs {
			if lam >= iv.Lo && lam <= iv.Hi {
				t.Errorf("λ=%v should not qualify for p1 (Figure 1b)", lam)
			}
		}
	}
	if _, err := MonoReverseTopK([]Vector{{1, 2, 3}}, Vector{1, 2, 3}, 1); err == nil {
		t.Error("3-d data must be rejected")
	}
}

func TestAggregateReverseRankPublic(t *testing.T) {
	P, err := GenerateProducts(41, Uniform, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(42, Uniform, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	bundle := []Vector{P[1], P[2], P[3]}
	got, err := ix.AggregateReverseRank(bundle, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d matches", len(got))
	}
	// Verify the best match's aggregate by direct recount.
	best := got[0]
	total := 0
	for _, q := range bundle {
		r, err := ix.Rank(W[best.WeightIndex], q)
		if err != nil {
			t.Fatal(err)
		}
		total += r
	}
	if total != best.AggRank {
		t.Errorf("aggregate %d but recount %d", best.AggRank, total)
	}
	if _, err := ix.AggregateReverseRank(nil, 4); err == nil {
		t.Error("empty bundle accepted")
	}
	if _, err := ix.AggregateReverseRank([]Vector{{1}}, 4); err == nil {
		t.Error("wrong-dimension bundle accepted")
	}
	if _, err := ix.AggregateReverseRank(bundle, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// End-to-end: generated data flows through the index and RKR answers are
// consistent with per-preference Rank.
func TestEndToEndConsistency(t *testing.T) {
	P, err := GenerateProducts(7, Dianping, 400, 0)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(8, Dianping, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := P[17]
	matches, err := ix.ReverseKRanksCtx(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 5 {
		t.Fatalf("got %d matches", len(matches))
	}
	for _, m := range matches {
		r, err := ix.Rank(W[m.WeightIndex], q)
		if err != nil {
			t.Fatal(err)
		}
		if r != m.Rank {
			t.Errorf("match %+v but Rank says %d", m, r)
		}
	}
	// RTK with k = best rank + 1 must include the best RKR match.
	rtk, err := ix.ReverseTopKCtx(context.Background(), q, matches[0].Rank+1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, wi := range rtk {
		if wi == matches[0].WeightIndex {
			found = true
		}
	}
	if !found {
		t.Errorf("RTK(k=%d) = %v misses best RKR match %d",
			matches[0].Rank+1, rtk, matches[0].WeightIndex)
	}
}
