package gridrank

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// testIndexWithOpts builds a small index over synthetic data.
func testIndexWithOpts(t *testing.T, opts *Options) (*Index, []Vector) {
	t.Helper()
	P, err := GenerateProducts(41, Uniform, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(42, Clustered, 250, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix, P
}

// TestIntraQueryDeterminism is the byte-identity guard of the merge and
// sort step: the parallel path must produce the same serialized answer
// for every worker count and across repeated runs (the tie-breaking by
// WeightIndex would be the first casualty of a nondeterministic merge).
func TestIntraQueryDeterminism(t *testing.T) {
	ix, P := testIndexWithOpts(t, nil)
	queries := []Vector{P[0], P[17], P[399], {1, 1, 1, 1, 1}}
	for qi, q := range queries {
		for _, k := range []int{1, 10, 300} {
			wantRTK, err := ix.ReverseTopKCtx(context.Background(), q, k, WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			wantRKR, err := ix.ReverseKRanksCtx(context.Background(), q, k, WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			wantR := fmt.Sprintf("%v", wantRTK)
			wantK := fmt.Sprintf("%+v", wantRKR)
			for _, workers := range []int{2, 4, 8} {
				for run := 0; run < 3; run++ {
					gotRTK, err := ix.ReverseTopKCtx(context.Background(), q, k, WithWorkers(workers))
					if err != nil {
						t.Fatal(err)
					}
					if got := fmt.Sprintf("%v", gotRTK); got != wantR {
						t.Fatalf("q%d k=%d workers=%d run=%d: RTK %s != sequential %s",
							qi, k, workers, run, got, wantR)
					}
					gotRKR, err := ix.ReverseKRanksCtx(context.Background(), q, k, WithWorkers(workers))
					if err != nil {
						t.Fatal(err)
					}
					if got := fmt.Sprintf("%+v", gotRKR); got != wantK {
						t.Fatalf("q%d k=%d workers=%d run=%d: RKR %s != sequential %s",
							qi, k, workers, run, got, wantK)
					}
				}
			}
		}
	}
}

// TestBatchDeterminism guards the cross-query path the same way: batch
// answers are byte-identical regardless of the batch worker count, of
// repeated runs, and of the intra-query parallelism nested inside.
func TestBatchDeterminism(t *testing.T) {
	for _, parallelism := range []int{0, 3} {
		ix, P := testIndexWithOpts(t, &Options{Parallelism: parallelism})
		queries := append([]Vector{}, P[:40]...)
		want := fmt.Sprintf("%+v", ix.ReverseTopKBatchCtx(context.Background(), queries, 10, 1))
		wantKR := fmt.Sprintf("%+v", ix.ReverseKRanksBatchCtx(context.Background(), queries, 10, 1))
		for _, workers := range []int{2, 4, 8} {
			for run := 0; run < 2; run++ {
				if got := fmt.Sprintf("%+v", ix.ReverseTopKBatchCtx(context.Background(), queries, 10, workers)); got != want {
					t.Fatalf("parallelism=%d batch workers=%d run=%d: RTK batch differs", parallelism, workers, run)
				}
				if got := fmt.Sprintf("%+v", ix.ReverseKRanksBatchCtx(context.Background(), queries, 10, workers)); got != wantKR {
					t.Fatalf("parallelism=%d batch workers=%d run=%d: RKR batch differs", parallelism, workers, run)
				}
			}
		}
	}
}

// TestParallelismOptionPlumbing covers the Options/Index surface of the
// new field.
func TestParallelismOptionPlumbing(t *testing.T) {
	ix, P := testIndexWithOpts(t, &Options{Parallelism: 4})
	if got := ix.Parallelism(); got != 4 {
		t.Errorf("Parallelism() = %d, want 4", got)
	}
	// Queries on a parallel-by-default index agree with a sequential one.
	seq, _ := testIndexWithOpts(t, nil)
	if seq.Parallelism() != 0 {
		t.Errorf("default Parallelism() = %d, want 0", seq.Parallelism())
	}
	q := P[7]
	want, err := seq.ReverseKRanksCtx(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.ReverseKRanksCtx(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("parallel-default index disagrees: got %+v want %+v", got, want)
	}
	if err := ix.SetParallelism(-2); err == nil {
		t.Error("SetParallelism(-2) should fail")
	}
	if err := ix.SetParallelism(2); err != nil || ix.Parallelism() != 2 {
		t.Errorf("SetParallelism(2): err=%v, Parallelism()=%d", err, ix.Parallelism())
	}
	if _, err := New(P[:1], [][]float64{{0.2, 0.2, 0.2, 0.2, 0.2}}, &Options{Parallelism: -1}); err == nil {
		t.Error("New with negative Parallelism should fail")
	}
	if _, err := ix.ReverseTopKCtx(context.Background(), q, 5, WithWorkers(-1)); err == nil {
		t.Error("WithWorkers(-1) should fail")
	}
	if _, err := ix.ReverseKRanksCtx(context.Background(), q, 5, WithWorkers(-1)); err == nil {
		t.Error("WithWorkers(-1) should fail")
	}
	// WithWorkers(0) means GOMAXPROCS; it must run and agree too.
	var st Stats
	res, err := ix.ReverseTopKCtx(context.Background(), q, 5, WithWorkers(0), WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	wantRTK, err := seq.ReverseTopKCtx(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", res) != fmt.Sprintf("%v", wantRTK) {
		t.Fatalf("workers=0 (GOMAXPROCS=%d) RTK disagrees: got %v want %v",
			runtime.GOMAXPROCS(0), res, wantRTK)
	}
}
