// Product placement: a manufacturer designing a new product compares
// candidate configurations by how many customers would shortlist each one
// — the "identify the most influential products" application of reverse
// top-k queries (Vlachou et al., cited in the paper's Section 2).
//
// The market is a clustered synthetic catalogue (competitors cluster
// around established designs); candidate configurations trade price
// against quality. For each candidate, the size of its reverse top-50 set
// measures expected visibility, and reverse 5-ranks names the concrete
// early adopters.
//
// Run with: go run ./examples/product_placement
package main

import (
	"context"
	"fmt"
	"log"

	"gridrank"
)

func main() {
	// Existing market: 8000 competitor products over four attributes
	// (price, defect rate, delivery days, power draw) — all minimized.
	market, err := gridrank.GenerateProducts(7, gridrank.Clustered, 8000, 4)
	if err != nil {
		log.Fatal(err)
	}
	customers, err := gridrank.GeneratePreferences(8, gridrank.Clustered, 3000, 4)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := gridrank.New(market, customers, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Candidate designs, attributes on the market's [0, 10000) scale.
	// Cheaper usually means worse quality; the premium build is pricey
	// but excellent; the "balanced" build is decent everywhere.
	candidates := []struct {
		name string
		spec gridrank.Vector
	}{
		{"budget", gridrank.Vector{1200, 6500, 5500, 5000}},
		{"balanced", gridrank.Vector{4000, 3000, 3000, 3000}},
		{"premium", gridrank.Vector{8200, 600, 1200, 900}},
		{"rush-job", gridrank.Vector{6800, 7800, 800, 6200}},
	}

	fmt.Printf("Market: %d competitor products, %d customer profiles\n\n",
		ix.NumProducts(), ix.NumPreferences())
	fmt.Println("Candidate visibility (reverse top-50 cardinality):")
	best, bestCount := "", -1
	for _, cand := range candidates {
		res, err := ix.ReverseTopKCtx(context.Background(), cand.spec, 50)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %4d customers would shortlist it\n", cand.name, len(res))
		if len(res) > bestCount {
			best, bestCount = cand.name, len(res)
		}
	}
	fmt.Printf("\n→ '%s' reaches the largest audience (%d customers).\n\n", best, bestCount)

	// For the winner, name the five keenest customers even if the design
	// cracks nobody's top-50 (reverse k-ranks never returns empty).
	for _, cand := range candidates {
		if cand.name != best {
			continue
		}
		matches, err := ix.ReverseKRanksCtx(context.Background(), cand.spec, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Its five keenest customers (reverse 5-ranks):")
		for _, m := range matches {
			fmt.Printf("  customer %-5d would rank it #%d in the whole market\n",
				m.WeightIndex, m.Rank+1)
		}
	}
}
