// Tuning: choosing the Grid-index resolution with the paper's Theorem 1,
// then verifying the filtering the model promises against the filtering a
// real workload delivers, across dimensionalities.
//
// Run with: go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"

	"gridrank"
)

func main() {
	fmt.Println("Theorem 1: partitions required for 99% worst-case model filtering")
	fmt.Println("  d    required n   grid memory")
	for _, d := range []int{2, 6, 10, 20, 30, 50} {
		n, err := gridrank.RequiredPartitions(d, 0.99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4d %-12d %d bytes\n", d, n, (n+1)*(n+1)*8)
	}

	fmt.Println("\nMeasured on a uniform workload (|P|=4000, |W|=800, RKR k=25):")
	fmt.Println("  d    n     filter rate   exact mults   bound sums")
	for _, d := range []int{4, 8, 16} {
		P, err := gridrank.GenerateProducts(int64(d), gridrank.Uniform, 4000, d)
		if err != nil {
			log.Fatal(err)
		}
		W, err := gridrank.GeneratePreferences(int64(d+100), gridrank.Uniform, 800, d)
		if err != nil {
			log.Fatal(err)
		}
		for _, target := range []float64{0.90, 0.99} {
			ix, err := gridrank.New(P, W, &gridrank.Options{TargetFiltering: target})
			if err != nil {
				log.Fatal(err)
			}
			var st gridrank.Stats
			_, err = ix.ReverseKRanksCtx(context.Background(), P[0], 25, gridrank.WithStats(&st))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-4d %-5d %-13.2f %-13d %d\n",
				d, ix.GridPartitions(), st.FilterRate(), st.PairwiseMults, st.BoundSums)
		}
	}
	fmt.Println("\nHigher n buys a higher filter rate (fewer exact multiplications)")
	fmt.Println("for a quadratically growing — but still tiny — table.")
}
