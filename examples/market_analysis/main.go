// Market analysis on the DIANPING-style workload: a restaurant owner asks
// "which users are my most promising customers, and how do I compare to
// the market?" — the application scenario the paper's introduction
// motivates.
//
// The example simulates the paper's DIANPING data (restaurants described
// by six review aspects, users by aspect-importance profiles), then uses
// reverse k-ranks to find the target audience of one restaurant and
// reverse top-k to measure its visibility against the whole market.
//
// Run with: go run ./examples/market_analysis
package main

import (
	"context"
	"fmt"
	"log"

	"gridrank"
)

const (
	numRestaurants = 5000
	numUsers       = 2000
)

var aspects = []string{"rate", "food", "cost", "service", "ambience", "waiting"}

func main() {
	restaurants, err := gridrank.GenerateProducts(42, gridrank.Dianping, numRestaurants, 0)
	if err != nil {
		log.Fatal(err)
	}
	users, err := gridrank.GeneratePreferences(43, gridrank.Dianping, numUsers, 0)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := gridrank.New(restaurants, users, nil)
	if err != nil {
		log.Fatal(err)
	}

	// "Our" restaurant: pick one from the catalogue.
	mine := 1234
	q := restaurants[mine]
	fmt.Printf("Restaurant #%d aspect scores (lower = better):\n ", mine)
	for i, a := range aspects {
		fmt.Printf(" %s=%.0f", a, q[i])
	}
	fmt.Println()

	// Reverse 10-ranks: the ten users who rank us best — the audience a
	// targeted campaign should reach first. Never empty, even for an
	// unpopular restaurant (the reason reverse k-ranks exists).
	var st gridrank.Stats
	matches, err := ix.ReverseKRanksCtx(context.Background(), q, 10, gridrank.WithStats(&st))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTop-10 best-matching users (reverse 10-ranks):")
	for _, m := range matches {
		u := users[m.WeightIndex]
		top, dominant := 0.0, 0
		for i, x := range u {
			if x > top {
				top, dominant = x, i
			}
		}
		fmt.Printf("  user %-5d ranks us #%-5d (cares most about %s: %.0f%%)\n",
			m.WeightIndex, m.Rank+1, aspects[dominant], 100*top)
	}
	fmt.Printf("(grid filtered %.1f%% of the scan without multiplications)\n",
		100*st.FilterRate())

	// Reverse top-100 across a few restaurants: market visibility. The
	// city's best all-rounder (smallest total score) sets the bar; the
	// typical mid-pack restaurant cracks almost nobody's top 100 of 5000 —
	// exactly the empty-answer problem that motivates reverse k-ranks.
	best, bestSum := 0, 0.0
	for ri, r := range restaurants {
		sum := 0.0
		for _, x := range r {
			sum += x
		}
		if ri == 0 || sum < bestSum {
			best, bestSum = ri, sum
		}
	}
	fmt.Println("\nVisibility: users placing each restaurant in their personal top-100:")
	for _, ri := range []int{best, mine, 17, 4999} {
		res, err := ix.ReverseTopKCtx(context.Background(), restaurants[ri], 100)
		if err != nil {
			log.Fatal(err)
		}
		share := float64(len(res)) / float64(numUsers) * 100
		label := ""
		if ri == best {
			label = "  ← city's best all-rounder"
		}
		fmt.Printf("  restaurant %-5d: %4d users (%.1f%% of the market)%s\n", ri, len(res), share, label)
	}
}
