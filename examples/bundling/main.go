// Bundling: a retailer assembles product bundles and asks which customers
// like each *whole bundle* best — the aggregate reverse rank query (Dong
// et al., DEXA 2016), the bundling extension the paper's related work
// motivates: single-product reverse queries cannot score a set.
//
// Run with: go run ./examples/bundling
package main

import (
	"fmt"
	"log"

	"gridrank"
)

func main() {
	// Catalogue: 6000 products over (price, defect rate, delivery days).
	catalogue, err := gridrank.GenerateProducts(5, gridrank.Clustered, 6000, 3)
	if err != nil {
		log.Fatal(err)
	}
	customers, err := gridrank.GeneratePreferences(6, gridrank.Clustered, 2500, 3)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := gridrank.New(catalogue, customers, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Two candidate bundles of three catalogue items each.
	bundles := map[string][]int{
		"value pack":   {120, 1210, 4800},
		"premium pack": {77, 2300, 5505},
	}
	for name, items := range bundles {
		bundle := make([]gridrank.Vector, len(items))
		for i, pi := range items {
			p, err := ix.Product(pi)
			if err != nil {
				log.Fatal(err)
			}
			bundle[i] = p
		}
		matches, err := ix.AggregateReverseRank(bundle, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (items %v): five keenest customers\n", name, items)
		for _, m := range matches {
			avg := float64(m.AggRank)/float64(len(items)) + 1
			fmt.Printf("  customer %-5d aggregate rank %-6d (avg position %.0f of %d per item)\n",
				m.WeightIndex, m.AggRank, avg, ix.NumProducts())
		}
		fmt.Println()
	}
}
