// Quickstart: the paper's Figure 1 cell-phone example through the public
// API — score a catalogue against user preferences, then answer both
// reverse rank queries for every phone.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"gridrank"
)

func main() {
	// Five phones scored on ("smart", "rating"); smaller is preferable.
	phones := []gridrank.Vector{
		{0.6, 0.7}, // p1
		{0.2, 0.3}, // p2
		{0.1, 0.6}, // p3
		{0.7, 0.5}, // p4
		{0.8, 0.2}, // p5
	}
	// Three users and how much each attribute matters to them.
	users := []gridrank.Vector{
		{0.8, 0.2}, // Tom cares about smartness
		{0.3, 0.7}, // Jerry cares about the rating
		{0.9, 0.1}, // Spike really cares about smartness
	}
	names := []string{"Tom", "Jerry", "Spike"}

	ix, err := gridrank.New(phones, users, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Top-2 phones per user (Definition 1):")
	for ui, name := range names {
		top, err := ix.TopK(users[ui], 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s", name)
		for _, r := range top {
			fmt.Printf("  p%d (score %.2f)", r.Index+1, r.Score)
		}
		fmt.Println()
	}

	fmt.Println("\nReverse top-2 per phone (who would shortlist it? — Figure 1b):")
	for pi := range phones {
		res, err := ix.ReverseTopKCtx(context.Background(), phones[pi], 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p%d: ", pi+1)
		if len(res) == 0 {
			fmt.Println("nobody — every user prefers two other phones")
			continue
		}
		for i, wi := range res {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(names[wi])
		}
		fmt.Println()
	}

	fmt.Println("\nReverse 1-rank per phone (the single best-matching user — Figure 1c):")
	for pi := range phones {
		res, err := ix.ReverseKRanksCtx(context.Background(), phones[pi], 1)
		if err != nil {
			log.Fatal(err)
		}
		m := res[0]
		fmt.Printf("  p%d: %s ranks it #%d of %d\n",
			pi+1, names[m.WeightIndex], m.Rank+1, ix.NumProducts())
	}
}
