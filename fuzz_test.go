package gridrank

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"testing"
)

// FuzzReadIndex ensures the index parser never panics, rejects every
// malformed stream with ErrBadIndexFile (callers branch on it to tell
// corruption from I/O failures), and that parsed indexes answer queries
// without crashing.
func FuzzReadIndex(f *testing.F) {
	P, err := GenerateProducts(51, Uniform, 30, 3)
	if err != nil {
		f.Fatal(err)
	}
	W, err := GeneratePreferences(52, Uniform, 10, 3)
	if err != nil {
		f.Fatal(err)
	}
	ix, err := New(P, W, &Options{GridPartitions: 8})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := ix.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:20])
	f.Add([]byte("GRI1aaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	// Every truncation of the header region.
	for cut := 1; cut < 16; cut++ {
		f.Add(valid.Bytes()[:cut])
	}
	// Corrupt GRI3 header fields on an otherwise valid stream: magic,
	// grid partitions (0 and absurd), packedBits (below the floor, above
	// the ceiling, absurd), a count field blown up.
	corrupt := func(off int, val uint32) []byte {
		b := append([]byte(nil), valid.Bytes()...)
		binary.LittleEndian.PutUint32(b[off:], val)
		return b
	}
	f.Add(corrupt(0, 0))
	f.Add(corrupt(0, 0x31495248))
	f.Add(corrupt(4, 0))
	f.Add(corrupt(4, 1<<30))
	f.Add(corrupt(8, 3))
	f.Add(corrupt(8, 9))
	f.Add(corrupt(8, 1<<20))
	f.Add(corrupt(24, ^uint32(0)))
	b := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint64(b[56:], ^uint64(0)) // NaN rangeP
	f.Add(b)
	// Structure-aware GRI3 seeds: truncated at the section table, a
	// tampered table entry (header CRC mismatch), a misaligned section
	// offset and a stretched fileSize with the header CRC re-signed so
	// rejection must come from the canonical-layout equality, a section
	// payload flip (section CRC mismatch), nonzero inter-section padding,
	// and a truncated final section.
	resign := func(b []byte) []byte {
		sc := int(binary.LittleEndian.Uint32(b[16:]))
		crc := crc64.New(gri3CRC)
		crc.Write(b[:80])
		crc.Write(b[gri3HeaderLen : gri3HeaderLen+gri3EntryLen*sc])
		binary.LittleEndian.PutUint64(b[80:], crc.Sum64())
		return b
	}
	f.Add(valid.Bytes()[:gri3HeaderLen])
	f.Add(valid.Bytes()[:gri3HeaderLen+gri3EntryLen*5])
	b = append([]byte(nil), valid.Bytes()...)
	b[gri3HeaderLen+8] ^= 0x44 // first section's offset, CRC not re-signed
	f.Add(b)
	b = append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint64(b[gri3HeaderLen+8:], gri3Align*3)
	f.Add(resign(b))
	b = append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint64(b[72:], binary.LittleEndian.Uint64(b[72:])+gri3Align)
	f.Add(resign(b))
	b = append([]byte(nil), valid.Bytes()...)
	b[gri3Align+5] ^= 0x01 // inside the first payload
	f.Add(b)
	b = append([]byte(nil), valid.Bytes()...)
	b[gri3Align-1] = 0xAA // padding byte before the first section
	f.Add(b)
	f.Add(valid.Bytes()[:valid.Len()-7])
	// A packed index stream plus blind flips landing in its later
	// sections (the offsets, relative to the unpacked stream's length,
	// fall inside the packed stream's payload region): rejection must
	// come from a section CRC or the padding rule.
	pix, err := New(P, W, &Options{GridPartitions: 8, PackedBits: 4})
	if err != nil {
		f.Fatal(err)
	}
	var packed bytes.Buffer
	if _, err := pix.WriteTo(&packed); err != nil {
		f.Fatal(err)
	}
	f.Add(packed.Bytes())
	f.Add(packed.Bytes()[:valid.Len()]) // section truncated away
	f.Add(packed.Bytes()[:packed.Len()-3])
	for _, off := range []int{0, 8, 16, 40} {
		b := append([]byte(nil), packed.Bytes()...)
		b[valid.Len()+off] ^= 0x11
		f.Add(b)
	}
	// Header claims packed over an unpacked image: the canonical layout
	// then expects one more section than the file holds.
	b = append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(b[8:], 4)
	f.Add(b)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadIndexFile) {
				t.Fatalf("ReadIndex error %v does not wrap ErrBadIndexFile", err)
			}
			return
		}
		// A successfully parsed index must answer queries.
		q := got.Products()[0]
		if _, err := got.ReverseKRanksCtx(context.Background(), q, 1); err != nil {
			t.Fatalf("parsed index cannot query: %v", err)
		}
	})
}
