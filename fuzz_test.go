package gridrank

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzReadIndex ensures the index parser never panics, rejects every
// malformed stream with ErrBadIndexFile (callers branch on it to tell
// corruption from I/O failures), and that parsed indexes answer queries
// without crashing.
func FuzzReadIndex(f *testing.F) {
	P, err := GenerateProducts(51, Uniform, 30, 3)
	if err != nil {
		f.Fatal(err)
	}
	W, err := GeneratePreferences(52, Uniform, 10, 3)
	if err != nil {
		f.Fatal(err)
	}
	ix, err := New(P, W, &Options{GridPartitions: 8})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := ix.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:20])
	f.Add([]byte("GRI1aaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	// Every truncation of the header region.
	for cut := 1; cut < 16; cut++ {
		f.Add(valid.Bytes()[:cut])
	}
	// Corrupt header fields on an otherwise valid stream: magic, grid
	// partitions (0 and absurd), rangeP (zero, negative, NaN bits).
	corrupt := func(off int, val uint32) []byte {
		b := append([]byte(nil), valid.Bytes()...)
		binary.LittleEndian.PutUint32(b[off:], val)
		return b
	}
	f.Add(corrupt(0, 0))
	f.Add(corrupt(0, 0x31495248))
	f.Add(corrupt(4, 0))
	f.Add(corrupt(4, 1<<30))
	f.Add(corrupt(8, 0))
	b := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint64(b[8:], ^uint64(0)) // NaN rangeP
	f.Add(b)
	// Body corruption: truncated mid-dataset and flipped length prefix.
	f.Add(valid.Bytes()[:valid.Len()-7])
	f.Add(corrupt(20, ^uint32(0)))
	// Layout corruption: packedBits outside {0} ∪ [4, 8], and a width the
	// grid cannot fit (8 partitions need at least 3 bits, but 4 is the
	// floor — use a too-small grid encoding instead).
	f.Add(corrupt(8, 3))
	f.Add(corrupt(8, 9))
	f.Add(corrupt(8, 1<<20))
	// A packed index stream plus corruptions of its packed section: the
	// header and data sets parse, so rejection must come from the packed
	// rows' framing or the byte-for-byte comparison with rebuilt cells.
	pix, err := New(P, W, &Options{GridPartitions: 8, PackedBits: 4})
	if err != nil {
		f.Fatal(err)
	}
	var packed bytes.Buffer
	if _, err := pix.WriteTo(&packed); err != nil {
		f.Fatal(err)
	}
	f.Add(packed.Bytes())
	f.Add(packed.Bytes()[:valid.Len()]) // section truncated away
	f.Add(packed.Bytes()[:packed.Len()-3])
	for _, off := range []int{0, 8, 16, 40} {
		b := append([]byte(nil), packed.Bytes()...)
		b[valid.Len()+off] ^= 0x11
		f.Add(b)
	}
	// Header claims packed but the section is missing / claims unpacked
	// with a trailing section.
	b = append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(b[8:], 4)
	f.Add(b)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadIndexFile) {
				t.Fatalf("ReadIndex error %v does not wrap ErrBadIndexFile", err)
			}
			return
		}
		// A successfully parsed index must answer queries.
		q := got.Products()[0]
		if _, err := got.ReverseKRanksCtx(context.Background(), q, 1); err != nil {
			t.Fatalf("parsed index cannot query: %v", err)
		}
	})
}
