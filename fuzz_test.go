package gridrank

import (
	"bytes"
	"context"
	"testing"
)

// FuzzReadIndex ensures the index parser never panics and that parsed
// indexes answer queries without crashing.
func FuzzReadIndex(f *testing.F) {
	P, err := GenerateProducts(51, Uniform, 30, 3)
	if err != nil {
		f.Fatal(err)
	}
	W, err := GeneratePreferences(52, Uniform, 10, 3)
	if err != nil {
		f.Fatal(err)
	}
	ix, err := New(P, W, &Options{GridPartitions: 8})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := ix.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:20])
	f.Add([]byte("GRI1aaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed index must answer queries.
		q := got.Products()[0]
		if _, err := got.ReverseKRanksCtx(context.Background(), q, 1); err != nil {
			t.Fatalf("parsed index cannot query: %v", err)
		}
	})
}
