package gridrank

// Dynamic updates. The index mutates through copy-on-write epoch
// snapshots: a mutator builds the next epoch — matrices, approximate
// cells, groupings, GIR — from the current one under ix.mu, then
// publishes it with a single atomic store. Queries load the epoch
// pointer once per call and never take a lock, so readers are
// wait-free, in-flight queries keep their snapshot until they finish,
// and every answer is consistent with exactly one epoch.
//
// Single-element operations derive the next epoch incrementally
// (internal/vec, internal/grid, internal/algo With* methods): amortized
// O(|set| + groups·d) flat copies instead of the O(|P|·d + |W|·d)
// re-approximation plus (n+1)² table a full construction pays. The
// batch operations rebuild once per call, amortizing the construction
// over the whole batch.
//
// Range policy. The grid's point range must always equal what a fresh
// New over the current data would choose, because rangeP is persisted
// and Save of a mutated index is defined to be byte-identical to Save
// of a fresh build (see persist.go). Every point mutation therefore
// recomputes computeRangeP over the surviving rows — a sequential
// O(|P|·d) scan, the same order as the copies the derivation performs —
// and falls back to a full rebuild when the range changes. The weight
// range is not persisted; an insert whose component would fall outside
// the current weight axis forces a rebuild (clamping it into the last
// cell would break the upper bound), while deletes keep the existing
// axis even when a fresh build would shrink it — a wider range is still
// a valid bounder, so answers stay exact.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"gridrank/internal/algo"
	"gridrank/internal/flight"
	"gridrank/internal/vec"
)

// ErrOutOfRange reports a mutation addressing an element index that
// does not exist in the current epoch.
var ErrOutOfRange = errors.New("gridrank: element index out of range")

// ErrLastElement reports an attempt to delete the last product or
// preference — empty sets are not representable.
var ErrLastElement = errors.New("gridrank: cannot delete the last element")

// checkProduct validates a product vector for insertion.
func (ix *Index) checkProduct(p Vector) error {
	if len(p) != ix.dim {
		return fmt.Errorf("%w: product has %d dimensions, want %d", ErrDimensionMismatch, len(p), ix.dim)
	}
	for j, x := range p {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return fmt.Errorf("gridrank: product attribute %d = %v (must be finite and non-negative)", j, x)
		}
	}
	return nil
}

// checkNewPreference validates a preference vector for insertion: the
// same finiteness rules as ad-hoc preferences, plus New's requirement
// that the weights sum to 1 (within 1e-6).
func (ix *Index) checkNewPreference(w Vector) error {
	if err := ix.checkPreference(w); err != nil {
		return err
	}
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("gridrank: preference weights sum to %v, want 1", sum)
	}
	return nil
}

// rebuildEpoch constructs epoch seq from scratch over (pm, wm), exactly
// as New would over the same data: fresh ranges, approximate vectors,
// groupings and grid. The physical layout (packed row width) carries
// over so a rebuild never silently changes how the index scans.
func rebuildEpoch(seq uint64, pm, wm *vec.Matrix, n int, lay algo.Layout) *epoch {
	rangeP := computeRangeP(pm.Rows())
	return &epoch{
		seq:    seq,
		pm:     pm,
		wm:     wm,
		rangeP: rangeP,
		gir:    algo.NewGIRFromMatricesLayout(pm, wm, rangeP, n, lay),
	}
}

// partitions returns the grid resolution of an epoch, preserved across
// rebuilds.
func (e *epoch) partitions() int { return e.gir.Grid().N() }

// layout returns the physical scan layout of an epoch, preserved across
// rebuilds.
func (e *epoch) layout() algo.Layout { return algo.Layout{PackedBits: e.gir.PackedBits()} }

// nextPointEpoch derives the epoch after a single-product mutation:
// incremental when the persisted point range is unchanged (and the
// current grid actually uses it), a full rebuild otherwise. Both the
// insert and delete paths previously spelled this policy out inline;
// the range rule they share is documented at the top of this file.
// The derived result reports which path was taken, for the install's
// flight-recorder digest.
func nextPointEpoch(e *epoch, pm *vec.Matrix, derive func() *algo.GIR) (ne *epoch, derived bool) {
	if nr := computeRangeP(pm.Rows()); nr == e.rangeP && e.gir.PointRange() == e.rangeP {
		return &epoch{seq: e.seq + 1, pm: pm, wm: e.wm, rangeP: e.rangeP, gir: derive()}, true
	}
	return rebuildEpoch(e.seq+1, pm, e.wm, e.partitions(), e.layout()), false
}

// storeRebuilt publishes a from-scratch epoch over (pm, wm), flushes
// the answer cache and recomputes subscriptions — the shared tail of
// every batch mutation. Hook order is fixed: cache first, then the
// subscription fan-out, both against the epoch just stored.
// op and start feed the install's flight-recorder digest.
func (ix *Index) storeRebuilt(e *epoch, pm, wm *vec.Matrix, op flight.Op, start time.Time) {
	pre := ix.flightProbe()
	ne := rebuildEpoch(e.seq+1, pm, wm, e.partitions(), e.layout())
	ix.cur.Store(ne)
	ix.cacheFlush(ne.seq)
	ix.subOnRebuild(ne)
	ix.recordMutation(op, start, ne.seq, false, pre)
}

// InsertProduct appends product p to the index and returns its id
// (equal to NumProducts() before the call; existing ids are unchanged).
// The new epoch is visible to queries as soon as the call returns.
func (ix *Index) InsertProduct(p Vector) (int, error) {
	return ix.InsertProductCtx(context.Background(), p)
}

// InsertProductCtx is InsertProduct honoring a context: a cancelled or
// expired ctx aborts before the epoch is built (an installed mutation
// is never rolled back).
func (ix *Index) InsertProductCtx(ctx context.Context, p Vector) (int, error) {
	start := time.Now()
	if err := ix.checkProduct(p); err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	pre := ix.flightProbe()
	e := ix.snap()
	id := e.pm.Len()
	pm := e.pm.WithAppended(p)
	ne, derived := nextPointEpoch(e, pm, func() *algo.GIR { return e.gir.WithAppendedPoint(pm) })
	ix.cur.Store(ne)
	ix.cacheOnProduct(ne.seq, p)
	ix.subOnProduct(ne, p, true)
	ix.recordMutation(flight.OpInsertProduct, start, ne.seq, derived, pre)
	return id, nil
}

// DeleteProduct removes product i. Products after i shift down by one
// id, matching a fresh build over the remaining data; the last product
// cannot be deleted.
func (ix *Index) DeleteProduct(i int) error {
	return ix.DeleteProductCtx(context.Background(), i)
}

// DeleteProductCtx is DeleteProduct honoring a context.
func (ix *Index) DeleteProductCtx(ctx context.Context, i int) error {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	pre := ix.flightProbe()
	e := ix.snap()
	if i < 0 || i >= e.pm.Len() {
		return fmt.Errorf("%w: product %d not in [0, %d)", ErrOutOfRange, i, e.pm.Len())
	}
	if e.pm.Len() == 1 {
		return fmt.Errorf("%w: the index holds one product", ErrLastElement)
	}
	// The removed row's view into e's storage stays valid after the new
	// epoch is built — epochs are immutable — so the cache sweep can use
	// it directly.
	removed := e.pm.Row(i)
	pm := e.pm.WithRemoved(i)
	ne, derived := nextPointEpoch(e, pm, func() *algo.GIR { return e.gir.WithRemovedPoint(pm, i) })
	ix.cur.Store(ne)
	ix.cacheOnProduct(ne.seq, removed)
	ix.subOnProduct(ne, removed, false)
	ix.recordMutation(flight.OpDeleteProduct, start, ne.seq, derived, pre)
	return nil
}

// InsertPreference appends preference w (non-negative weights summing
// to 1) and returns its id (equal to NumPreferences() before the call).
func (ix *Index) InsertPreference(w Vector) (int, error) {
	return ix.InsertPreferenceCtx(context.Background(), w)
}

// InsertPreferenceCtx is InsertPreference honoring a context.
func (ix *Index) InsertPreferenceCtx(ctx context.Context, w Vector) (int, error) {
	start := time.Now()
	if err := ix.checkNewPreference(w); err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	pre := ix.flightProbe()
	e := ix.snap()
	id := e.wm.Len()
	wm := e.wm.WithAppended(w)
	maxComp := 0.0
	for _, x := range w {
		if x > maxComp {
			maxComp = x
		}
	}
	var ne *epoch
	derived := false
	if rw := e.gir.WeightRange(); rw > 0 && maxComp < rw {
		ne = &epoch{seq: e.seq + 1, pm: e.pm, wm: wm, rangeP: e.rangeP, gir: e.gir.WithAppendedWeight(wm)}
		derived = true
	} else {
		// A component at or beyond the weight axis would clamp into the
		// last cell and break the upper bound: rebuild with a grown axis.
		ne = rebuildEpoch(e.seq+1, e.pm, wm, e.partitions(), e.layout())
	}
	ix.cur.Store(ne)
	ix.cacheOnPrefInsert(ne, id)
	ix.subOnPrefInsert(ne, id)
	ix.recordMutation(flight.OpInsertPreference, start, ne.seq, derived, pre)
	return id, nil
}

// DeletePreference removes preference i. Preferences after i shift
// down by one id; the last preference cannot be deleted.
func (ix *Index) DeletePreference(i int) error {
	return ix.DeletePreferenceCtx(context.Background(), i)
}

// DeletePreferenceCtx is DeletePreference honoring a context.
func (ix *Index) DeletePreferenceCtx(ctx context.Context, i int) error {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	pre := ix.flightProbe()
	e := ix.snap()
	if i < 0 || i >= e.wm.Len() {
		return fmt.Errorf("%w: preference %d not in [0, %d)", ErrOutOfRange, i, e.wm.Len())
	}
	if e.wm.Len() == 1 {
		return fmt.Errorf("%w: the index holds one preference", ErrLastElement)
	}
	oldCount := e.wm.Len()
	wm := e.wm.WithRemoved(i)
	ne := &epoch{
		seq: e.seq + 1, pm: e.pm, wm: wm, rangeP: e.rangeP,
		gir: e.gir.WithRemovedWeight(wm, i),
	}
	ix.cur.Store(ne)
	ix.cacheOnPrefDelete(ne.seq, i, oldCount)
	ix.subOnPrefDelete(ne, i, oldCount)
	ix.recordMutation(flight.OpDeletePreference, start, ne.seq, true, pre)
	return nil
}

// InsertProducts appends products ps in order as one epoch and returns
// the id of the first (the batch occupies consecutive ids from it). The
// construction cost of the rebuild is paid once for the whole batch.
func (ix *Index) InsertProducts(ps []Vector) (int, error) {
	return ix.InsertProductsCtx(context.Background(), ps)
}

// InsertProductsCtx is InsertProducts honoring a context.
func (ix *Index) InsertProductsCtx(ctx context.Context, ps []Vector) (int, error) {
	start := time.Now()
	if len(ps) == 0 {
		return 0, errors.New("gridrank: empty product batch")
	}
	for bi, p := range ps {
		if err := ix.checkProduct(p); err != nil {
			return 0, fmt.Errorf("batch element %d: %w", bi, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e := ix.snap()
	first := e.pm.Len()
	rows := make([]Vector, 0, first+len(ps))
	rows = append(rows, e.pm.Rows()...)
	rows = append(rows, ps...)
	ix.storeRebuilt(e, vec.NewMatrix(rows), e.wm, flight.OpInsertProducts, start)
	return first, nil
}

// DeleteProducts removes the products with the given current-epoch ids
// as one epoch; survivors keep their order and renumber down past the
// gaps, matching a fresh build over the remaining data. Duplicate ids
// are rejected, and at least one product must survive.
func (ix *Index) DeleteProducts(ids []int) error {
	return ix.DeleteProductsCtx(context.Background(), ids)
}

// DeleteProductsCtx is DeleteProducts honoring a context.
func (ix *Index) DeleteProductsCtx(ctx context.Context, ids []int) error {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e := ix.snap()
	drop, err := checkBatchIDs(ids, e.pm.Len(), "product")
	if err != nil {
		return err
	}
	rows := surviving(e.pm, drop)
	ix.storeRebuilt(e, vec.NewMatrix(rows), e.wm, flight.OpDeleteProducts, start)
	return nil
}

// InsertPreferences appends preferences ws in order as one epoch and
// returns the id of the first.
func (ix *Index) InsertPreferences(ws []Vector) (int, error) {
	return ix.InsertPreferencesCtx(context.Background(), ws)
}

// InsertPreferencesCtx is InsertPreferences honoring a context.
func (ix *Index) InsertPreferencesCtx(ctx context.Context, ws []Vector) (int, error) {
	start := time.Now()
	if len(ws) == 0 {
		return 0, errors.New("gridrank: empty preference batch")
	}
	for bi, w := range ws {
		if err := ix.checkNewPreference(w); err != nil {
			return 0, fmt.Errorf("batch element %d: %w", bi, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e := ix.snap()
	first := e.wm.Len()
	rows := make([]Vector, 0, first+len(ws))
	rows = append(rows, e.wm.Rows()...)
	rows = append(rows, ws...)
	ix.storeRebuilt(e, e.pm, vec.NewMatrix(rows), flight.OpInsertPreferences, start)
	return first, nil
}

// DeletePreferences removes the preferences with the given
// current-epoch ids as one epoch; at least one must survive.
func (ix *Index) DeletePreferences(ids []int) error {
	return ix.DeletePreferencesCtx(context.Background(), ids)
}

// DeletePreferencesCtx is DeletePreferences honoring a context.
func (ix *Index) DeletePreferencesCtx(ctx context.Context, ids []int) error {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e := ix.snap()
	drop, err := checkBatchIDs(ids, e.wm.Len(), "preference")
	if err != nil {
		return err
	}
	rows := surviving(e.wm, drop)
	ix.storeRebuilt(e, e.pm, vec.NewMatrix(rows), flight.OpDeletePreferences, start)
	return nil
}

// checkBatchIDs validates a batch of element ids against a set of size
// count and returns the membership mask of ids to drop.
func checkBatchIDs(ids []int, count int, kind string) ([]bool, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("gridrank: empty %s batch", kind)
	}
	drop := make([]bool, count)
	for _, id := range ids {
		if id < 0 || id >= count {
			return nil, fmt.Errorf("%w: %s %d not in [0, %d)", ErrOutOfRange, kind, id, count)
		}
		if drop[id] {
			return nil, fmt.Errorf("gridrank: duplicate %s id %d in batch", kind, id)
		}
		drop[id] = true
	}
	if len(ids) >= count {
		return nil, fmt.Errorf("%w: batch would delete all %d %ss", ErrLastElement, count, kind)
	}
	return drop, nil
}

// surviving returns the rows of m not marked in drop, in order.
func surviving(m *vec.Matrix, drop []bool) []Vector {
	rows := make([]Vector, 0, m.Len()-1)
	for i, r := range m.Rows() {
		if !drop[i] {
			rows = append(rows, r)
		}
	}
	return rows
}
