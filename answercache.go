package gridrank

// The answer cache (internal/cache) wiring: enablement, the mutation
// hooks that keep resident entries exact, and the stats surface. The
// cache sits in front of the GIR scan in query.go — a hit returns the
// stored admitted-preference set with zero scan work — and is kept
// consistent by the mutation paths in mutate.go, which notify it under
// ix.mu so sweeps are serialized with epoch installs. DESIGN.md §12
// derives the invalidation predicate and argues its soundness.

import (
	"fmt"
	"time"

	"gridrank/internal/cache"
)

// CacheStats is a snapshot of the answer cache's configuration and
// lifetime counters.
type CacheStats struct {
	// Size and TTL echo the cache's configuration (TTL 0 = no expiry).
	Size int
	TTL  time.Duration
	// Entries is the current resident entry count.
	Entries int

	Hits           int64 // queries answered from the cache
	Misses         int64 // queries that fell through to the scan
	Stores         int64 // answers accepted into the cache
	RejectedStores int64 // answers refused for predating a mutation
	Invalidations  int64 // entries removed by mutation sweeps
	Flushes        int64 // full flushes (batch mutations)
	Evictions      int64 // entries evicted by the LRU bound
	Expirations    int64 // entries removed past their TTL
}

// EnableCache attaches an answer cache holding up to size entries, each
// living at most ttl (0 = no expiry). Cached answers are invalidated
// epoch-exactly by the mutation paths, so enabling the cache never
// changes any answer — only how fast repeated queries return. Enabling
// replaces any existing cache (dropping its entries); it is safe while
// queries and mutations are in flight.
func (ix *Index) EnableCache(size int, ttl time.Duration) error {
	if size <= 0 {
		return fmt.Errorf("gridrank: cache size must be positive, got %d", size)
	}
	if ttl < 0 {
		return fmt.Errorf("gridrank: cache TTL must be non-negative, got %v", ttl)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	c := cache.New(cache.Config{Size: size, TTL: ttl})
	// Serialized with mutators under ix.mu: no mutation can land between
	// reading the epoch and publishing the cache, so a scan that started
	// against an older epoch can never seed the fresh cache.
	c.SetHead(ix.snap().seq)
	ix.answers.Store(c)
	return nil
}

// DisableCache detaches the answer cache, dropping its entries. Queries
// fall through to the scan again.
func (ix *Index) DisableCache() {
	ix.mu.Lock()
	ix.answers.Store(nil)
	ix.mu.Unlock()
}

// CacheEnabled reports whether an answer cache is attached.
func (ix *Index) CacheEnabled() bool { return ix.answers.Load() != nil }

// CacheStats returns the answer cache's counters; ok is false when no
// cache is attached.
func (ix *Index) CacheStats() (stats CacheStats, ok bool) {
	c := ix.answers.Load()
	if c == nil {
		return CacheStats{}, false
	}
	cs := c.Counts()
	return CacheStats{
		Size:           c.Size(),
		TTL:            c.TTL(),
		Entries:        c.Len(),
		Hits:           cs.Hits,
		Misses:         cs.Misses,
		Stores:         cs.Stores,
		RejectedStores: cs.RejectedStores,
		Invalidations:  cs.Invalidations,
		Flushes:        cs.Flushes,
		Evictions:      cs.Evictions,
		Expirations:    cs.Expirations,
	}, true
}

// The cache notification hooks below run under ix.mu, immediately after
// the mutation published its epoch, so cache maintenance is serialized
// with epoch installs and every resident entry stays valid for the
// current epoch (the invariant Lookup relies on).

// cacheOnProduct sweeps the cache after a single-product insert or
// delete: row is the inserted point or the deleted point's former
// attributes, the only data whose ranks changed.
func (ix *Index) cacheOnProduct(seq uint64, row Vector) {
	if c := ix.answers.Load(); c != nil {
		c.OnProductMutation(seq, row)
	}
}

// cacheOnPrefInsert splices the newly inserted preference (id, the
// largest) into every resident entry, using the new epoch's GIR as the
// rank oracle.
func (ix *Index) cacheOnPrefInsert(ne *epoch, id int) {
	if c := ix.answers.Load(); c != nil {
		c.OnPreferenceInsert(ne.seq, id, func(q []float64, cutoff int) (int, bool) {
			return ne.gir.RankOf(id, q, cutoff)
		})
	}
}

// cacheOnPrefDelete remaps resident entries past the deleted
// preference id; oldCount is the preference count before the delete.
func (ix *Index) cacheOnPrefDelete(seq uint64, id, oldCount int) {
	if c := ix.answers.Load(); c != nil {
		c.OnPreferenceDelete(seq, id, oldCount)
	}
}

// cacheFlush drops every resident entry; the batch mutation paths call
// it (they rebuild the whole epoch, and per-row sweeps would cost more
// than recomputing the answers).
func (ix *Index) cacheFlush(seq uint64) {
	if c := ix.answers.Load(); c != nil {
		c.Flush(seq)
	}
}
