//go:build race

package gridrank

const raceEnabled = true
