package gridrank

// Flight-recorder wiring: the record helpers called from query.go,
// mutate.go and subscriptions.go, and the public accessors the server
// and the diagnostics tooling read. The recorder itself (internal/
// flight) is an always-on bounded ring of fixed-size digests; every
// helper here is nil-safe so a recorder disabled with a negative
// Options.FlightCapacity costs one nil check per operation.

import (
	"context"
	"errors"
	"time"

	"gridrank/internal/flight"
)

// FlightRecords returns the flight recorder's resident digests, newest
// first (nil when the recorder is disabled). The snapshot is a copy;
// holding it retains nothing from the query path.
func (ix *Index) FlightRecords() []flight.Record { return ix.fr.Snapshot() }

// FlightCounts returns the recorder's lifetime totals (zero when
// disabled).
func (ix *Index) FlightCounts() flight.Counts { return ix.fr.Counts() }

// FlightEnabled reports whether the always-on flight recorder is
// attached (it is unless Options.FlightCapacity was negative).
func (ix *Index) FlightEnabled() bool { return ix.fr != nil }

// queryDigest carries the per-query facts the inner query methods hand
// back for flight recording. A plain value — it must never escape to
// the heap, since the query path is pinned at zero allocations.
type queryDigest struct {
	epoch               uint64
	case1, case2, case3 int64
	traceHi, traceLo    uint64
	cacheHit            bool
	sampled             bool
}

// flightOutcome folds an error into the digest's outcome code.
func flightOutcome(err error) flight.Outcome {
	switch {
	case err == nil:
		return flight.OutcomeOK
	case errors.Is(err, context.Canceled):
		return flight.OutcomeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return flight.OutcomeDeadline
	default:
		return flight.OutcomeError
	}
}

// recordQuery writes one query digest. Called exactly once per
// ReverseTopKCtx / ReverseKRanksCtx call, including error returns.
// Case1/2/3 are non-zero only when the caller requested stats — the
// scan's counters are not collected otherwise, and recording must not
// force the allocation that collecting them costs.
func (ix *Index) recordQuery(op flight.Op, k int, start time.Time, dig queryDigest, err error) {
	if ix.fr == nil {
		return
	}
	end := time.Now()
	rec := flight.Record{
		Unix:    end.UnixNano(),
		Class:   flight.ClassQuery,
		Op:      op,
		Outcome: flightOutcome(err),
		K:       int32(k),
		Epoch:   dig.epoch,
		DurNs:   end.Sub(start).Nanoseconds(),
		Case1:   dig.case1,
		Case2:   dig.case2,
		Case3:   dig.case3,
		TraceHi: dig.traceHi,
		TraceLo: dig.traceLo,
	}
	if dig.cacheHit {
		rec.Flags |= flight.FlagCacheHit
	}
	if dig.sampled {
		rec.Flags |= flight.FlagSampled
	}
	ix.fr.Record(rec)
}

// mutProbe is the pre-install counter snapshot recordMutation diffs
// against: cache sweep work and subscription diff evaluations are
// global counters, so the install's own contribution is the delta
// across the publish hooks. Taken under ix.mu, so no other install can
// move the counters in between.
type mutProbe struct {
	cacheInvalidations int64
	cacheFlushes       int64
	subDiffEvals       int64
	subLagged          int64
}

func (ix *Index) flightProbe() mutProbe {
	if ix.fr == nil {
		return mutProbe{}
	}
	var p mutProbe
	if cs, ok := ix.CacheStats(); ok {
		p.cacheInvalidations = cs.Invalidations
		p.cacheFlushes = cs.Flushes
	}
	ss := ix.SubscriptionStats()
	p.subDiffEvals = ss.PrefsDiffEvaluated + ss.PrefsRebuildEvaluated
	p.subLagged = ss.Lagged
	return p
}

// recordMutation writes one epoch-install digest (and, when the install
// cancelled lagged subscribers, one subscription digest). Called under
// ix.mu after the publish hooks ran, so the counter deltas against pre
// are exactly this install's work. start is the mutation entrypoint
// time: the duration covers validation, epoch construction (derive or
// rebuild) and both publish hooks — entry to published.
func (ix *Index) recordMutation(op flight.Op, start time.Time, seq uint64, derived bool, pre mutProbe) {
	if ix.fr == nil {
		return
	}
	post := ix.flightProbe()
	end := time.Now()
	rec := flight.Record{
		Unix:  end.UnixNano(),
		Class: flight.ClassMutation,
		Op:    op,
		Epoch: seq,
		DurNs: end.Sub(start).Nanoseconds(),
		Aux1:  (post.cacheInvalidations - pre.cacheInvalidations) + (post.cacheFlushes - pre.cacheFlushes),
		Aux2:  post.subDiffEvals - pre.subDiffEvals,
	}
	if derived {
		rec.Flags |= flight.FlagDerived
	}
	ix.fr.Record(rec)
	if lagged := post.subLagged - pre.subLagged; lagged > 0 {
		ix.fr.Record(flight.Record{
			Unix:  end.UnixNano(),
			Class: flight.ClassSub,
			Op:    flight.OpSubLagged,
			Epoch: seq,
			Aux2:  lagged,
		})
	}
}

// recordSubEvent writes one subscription lifecycle digest (subscribe /
// unsubscribe). kind is 0 for reverse top-k, 1 for reverse k-ranks.
func (ix *Index) recordSubEvent(op flight.Op, k int, kind int64, id int64) {
	if ix.fr == nil {
		return
	}
	ix.fr.Record(flight.Record{
		Unix:  time.Now().UnixNano(),
		Class: flight.ClassSub,
		Op:    op,
		K:     int32(k),
		Epoch: ix.snap().seq,
		Aux1:  kind,
		Aux2:  id,
	})
}
