package vec

import (
	"bytes"
	"math"
	"testing"
	"unsafe"
)

// TestCastRoundTrip proves the zero-copy casts and the element-wise
// fallbacks decode the same bytes to the same values, in both
// directions, for every element type the GRI3 format stores.
func TestCastRoundTrip(t *testing.T) {
	floats := []float64{0, 1, -1, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64}
	ints := []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 42}
	words := []uint64{0, 1, math.MaxUint64, 0xdeadbeefcafef00d}

	fb := EncodeFloat64s(floats)
	ib := EncodeInt32s(ints)
	ub := EncodeUint64s(words)

	if got := DecodeFloat64s(fb); !equalF64(got, floats) {
		t.Fatalf("DecodeFloat64s = %v, want %v", got, floats)
	}
	if got := DecodeInt32s(ib); !equalI32(got, ints) {
		t.Fatalf("DecodeInt32s = %v, want %v", got, ints)
	}
	if got := DecodeUint64s(ub); !equalU64(got, words) {
		t.Fatalf("DecodeUint64s = %v, want %v", got, words)
	}

	if !HostLittleEndian() {
		t.Skip("big-endian host: zero-copy casts are deliberately unavailable")
	}
	// Copy into aligned storage: the encode fallbacks return plain []byte
	// whose alignment is incidental.
	af := AlignedBytes(len(fb))
	copy(af, fb)
	if got, ok := CastFloat64s(af); !ok || !equalF64(got, floats) {
		t.Fatalf("CastFloat64s = %v, %v; want %v, true", got, ok, floats)
	}
	ai := AlignedBytes(len(ib))
	copy(ai, ib)
	if got, ok := CastInt32s(ai); !ok || !equalI32(got, ints) {
		t.Fatalf("CastInt32s = %v, %v; want %v, true", got, ok, ints)
	}
	au := AlignedBytes(len(ub))
	copy(au, ub)
	if got, ok := CastUint64s(au); !ok || !equalU64(got, words) {
		t.Fatalf("CastUint64s = %v, %v; want %v, true", got, ok, words)
	}

	// Typed slice -> bytes matches the element-wise encoding.
	if got, ok := Float64Bytes(floats); !ok || !bytes.Equal(got, fb) {
		t.Fatalf("Float64Bytes mismatch (ok=%v)", ok)
	}
	if got, ok := Int32Bytes(ints); !ok || !bytes.Equal(got, ib) {
		t.Fatalf("Int32Bytes mismatch (ok=%v)", ok)
	}
	if got, ok := Uint64Bytes(words); !ok || !bytes.Equal(got, ub) {
		t.Fatalf("Uint64Bytes mismatch (ok=%v)", ok)
	}
}

// TestCastIsZeroCopy proves a cast aliases the input storage rather than
// copying it.
func TestCastIsZeroCopy(t *testing.T) {
	if !HostLittleEndian() {
		t.Skip("big-endian host")
	}
	b := AlignedBytes(16)
	vals, ok := CastFloat64s(b)
	if !ok || len(vals) != 2 {
		t.Fatalf("CastFloat64s ok=%v len=%d", ok, len(vals))
	}
	vals[1] = math.Pi
	if got := DecodeFloat64s(b)[1]; got != math.Pi {
		t.Fatalf("write through cast not visible in backing bytes: %v", got)
	}
	back, ok := Float64Bytes(vals)
	if !ok || unsafe.SliceData(back) != unsafe.SliceData(b) {
		t.Fatal("Float64Bytes did not alias the original storage")
	}
}

// TestCastRejectsMisaligned proves the casts refuse byte slices whose
// base pointer the target type cannot legally address.
func TestCastRejectsMisaligned(t *testing.T) {
	if !HostLittleEndian() {
		t.Skip("big-endian host")
	}
	b := AlignedBytes(24)
	if _, ok := CastFloat64s(b[1:17]); ok {
		t.Fatal("CastFloat64s accepted a misaligned base")
	}
	if _, ok := CastUint64s(b[4:20]); ok {
		t.Fatal("CastUint64s accepted a misaligned base")
	}
	if _, ok := CastInt32s(b[2:18]); ok {
		t.Fatal("CastInt32s accepted a misaligned base")
	}
	// Wrong lengths are rejected too.
	if _, ok := CastFloat64s(b[:7]); ok {
		t.Fatal("CastFloat64s accepted a non-multiple-of-8 length")
	}
	if _, ok := CastInt32s(b[:6]); ok {
		t.Fatal("CastInt32s accepted a non-multiple-of-4 length")
	}
}

// TestAlignedBytes proves the allocator returns 8-byte-aligned storage
// of the exact requested length.
func TestAlignedBytes(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 4096, 4097} {
		b := AlignedBytes(n)
		if len(b) != n {
			t.Fatalf("AlignedBytes(%d) has length %d", n, len(b))
		}
		if n > 0 && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%8 != 0 {
			t.Fatalf("AlignedBytes(%d) base not 8-byte aligned", n)
		}
	}
}

// TestCastEmpty pins the empty-slice contract: legal, zero-copy, nil.
func TestCastEmpty(t *testing.T) {
	if !HostLittleEndian() {
		t.Skip("big-endian host")
	}
	if got, ok := CastFloat64s(nil); !ok || got != nil {
		t.Fatalf("CastFloat64s(nil) = %v, %v", got, ok)
	}
	if got, ok := Float64Bytes(nil); !ok || got != nil {
		t.Fatalf("Float64Bytes(nil) = %v, %v", got, ok)
	}
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
