// Package vec provides the d-dimensional vector primitives shared by every
// other package in gridrank: inner products, dominance tests, and score
// bounds of a fixed point over an axis-aligned box of weight vectors.
//
// Throughout the library a product point p has non-negative attributes in
// [0, r) and a preference vector w has non-negative weights summing to 1.
// Smaller scores f_w(p) = Σ w[i]·p[i] are preferable, following the paper's
// convention.
package vec

import (
	"fmt"
	"math"
)

// Vector is a d-dimensional point or weight vector. It is a type alias so
// that []float64 values flow freely between the public API and internal
// packages without copying.
type Vector = []float64

// Dot returns the inner product Σ a[i]·b[i], the score function f_w(p) of
// the paper. It panics if the lengths differ, since mismatched
// dimensionality is always a programming error.
//
// The loop is unrolled 4-wide with a scalar tail. The accumulator is a
// single variable updated in index order, so the floating-point result is
// bit-identical to the naive loop — rank comparisons must not move when
// the kernel changes shape. Each block is accessed through a capped
// sub-slice (a[i:i+4:i+4]), which reduces the four per-element bounds
// checks to one slice check per block; among the unroll shapes measured
// (naive, reslice-advance, indexed blocks) this one is fastest from d = 6
// through d = 64.
func Dot(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	i := 0
	for ; i+4 <= len(a) && i+4 <= len(b); i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s += aa[0] * bb[0]
		s += aa[1] * bb[1]
		s += aa[2] * bb[2]
		s += aa[3] * bb[3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Dot2 returns (Σ w[i]·a[i], Σ w[i]·b[i]), the two-row widening of Dot:
// full-scan callers scoring consecutive points under one weight share the
// w loads across both rows and give the CPU two independent multiply-add
// chains to overlap. Each output uses its own accumulator updated in
// index order with the same 4-wide unroll as Dot, so both results are
// bit-identical to calling Dot twice — rank comparisons must not move
// when a caller switches to the paired kernel.
//
// Only safe for callers that evaluate every row unconditionally (TopK,
// Rank): early-exit scans like RankBounded would compute the second row
// speculatively and distort visit counters.
func Dot2(w, a, b Vector) (float64, float64) {
	if len(w) != len(a) || len(w) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d, %d != %d", len(a), len(b), len(w)))
	}
	var s, t float64
	i := 0
	for ; i+4 <= len(w); i += 4 {
		ww := w[i : i+4 : i+4]
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s += ww[0] * aa[0]
		t += ww[0] * bb[0]
		s += ww[1] * aa[1]
		t += ww[1] * bb[1]
		s += ww[2] * aa[2]
		t += ww[2] * bb[2]
		s += ww[3] * aa[3]
		t += ww[3] * bb[3]
	}
	for ; i < len(w); i++ {
		s += w[i] * a[i]
		t += w[i] * b[i]
	}
	return s, t
}

// Dominates reports whether p strictly dominates q under the
// minimum-is-preferable convention: p[i] < q[i] on every dimension.
//
// Strict inequality on every coordinate guarantees f_w(p) < f_w(q) for every
// legal preference vector w (non-negative weights summing to one), which is
// what the Domin buffer of the GIR and SIM algorithms relies on.
func Dominates(p, q Vector) bool {
	if len(p) != len(q) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(p), len(q)))
	}
	for i, pi := range p {
		if pi >= q[i] {
			return false
		}
	}
	return true
}

// WeakDominates reports whether p[i] <= q[i] on every dimension with strict
// inequality on at least one. Used by dataset diagnostics and tests; query
// algorithms use the strict Dominates above.
func WeakDominates(p, q Vector) bool {
	if len(p) != len(q) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(p), len(q)))
	}
	strict := false
	for i, pi := range p {
		if pi > q[i] {
			return false
		}
		if pi < q[i] {
			strict = true
		}
	}
	return strict
}

// Equal reports exact element-wise equality.
func Equal(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i, ai := range a {
		if ai != b[i] {
			return false
		}
	}
	return true
}

// Clone returns a fresh copy of v.
func Clone(v Vector) Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Sum returns Σ v[i].
func Sum(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Normalize scales v in place so that Σ v[i] = 1, turning any non-negative,
// non-zero vector into a legal preference vector. It reports whether
// normalization was possible (the sum was positive and finite).
func Normalize(v Vector) bool {
	s := Sum(v)
	if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		return false
	}
	for i := range v {
		v[i] /= s
	}
	return true
}

// MinScore returns the smallest score any weight vector inside the box
// [wlo, whi] can assign to point p: Σ wlo[i]·p[i], valid because p is
// non-negative. Used to bound scores of a query point over an R-tree node
// or histogram cell of weight vectors.
func MinScore(p, wlo Vector) float64 { return Dot(p, wlo) }

// MaxScore returns the largest score any weight vector inside the box
// [wlo, whi] can assign to p: Σ whi[i]·p[i].
func MaxScore(p, whi Vector) float64 { return Dot(p, whi) }

// MaxDiffScore returns max over w in the box [wlo, whi] of w·(p-q).
// Because every w is component-wise non-negative, the maximum picks
// whi[i] where p[i]-q[i] > 0 and wlo[i] where it is negative.
//
// If the result is negative, every weight vector in the box scores p
// strictly below q, i.e. p beats q for the whole box. This is the exact
// per-w test that BBR and MPA use to count whole P-subtrees into the rank
// of q for a whole group of weight vectors at once.
func MaxDiffScore(p, q, wlo, whi Vector) float64 {
	if len(p) != len(q) || len(p) != len(wlo) || len(p) != len(whi) {
		panic("vec: dimension mismatch in MaxDiffScore")
	}
	var s float64
	for i := range p {
		v := p[i] - q[i]
		if v > 0 {
			s += whi[i] * v
		} else {
			s += wlo[i] * v
		}
	}
	return s
}

// MinDiffScore returns min over w in the box [wlo, whi] of w·(p-q); if the
// result is positive, q beats p for every weight vector in the box.
func MinDiffScore(p, q, wlo, whi Vector) float64 {
	if len(p) != len(q) || len(p) != len(wlo) || len(p) != len(whi) {
		panic("vec: dimension mismatch in MinDiffScore")
	}
	var s float64
	for i := range p {
		v := p[i] - q[i]
		if v > 0 {
			s += wlo[i] * v
		} else {
			s += whi[i] * v
		}
	}
	return s
}

// BoxDot bounds the score of any point inside the box [plo, phi] under any
// weight inside [wlo, whi]: lower = Σ wlo[i]·plo[i], upper = Σ whi[i]·phi[i].
// All coordinates are non-negative, which makes the corner products exact
// bounds. This is the MBR-vs-MBR score bound used by the tree baselines.
func BoxDot(plo, phi, wlo, whi Vector) (lower, upper float64) {
	if len(plo) != len(phi) || len(plo) != len(wlo) || len(plo) != len(whi) {
		panic("vec: dimension mismatch in BoxDot")
	}
	for i := range plo {
		lower += wlo[i] * plo[i]
		upper += whi[i] * phi[i]
	}
	return lower, upper
}

// L2 returns the Euclidean norm of v.
func L2(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
