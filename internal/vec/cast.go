package vec

// The cast layer is the single place the repository reinterprets raw
// bytes as typed slices. The GRI3 index format stores every section as
// fixed-stride little-endian machine words at 8-byte-aligned offsets,
// so on a little-endian host a mapped (or heap-read) file region *is*
// the []float64 / []int32 / []uint64 the algorithms want — zero copies.
// Each cast reports whether the reinterpretation is legal; when it is
// not (misaligned base pointer, or a big-endian host) the caller falls
// back to the element-wise decode helpers below, which always work at
// the cost of one copy. Keeping the unsafe arithmetic here, behind
// alignment checks, is what makes the rest of the mmap path ordinary
// safe Go.

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether the running machine stores integers
// little-endian, i.e. whether GRI3 sections can be reinterpreted
// in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// HostLittleEndian reports whether zero-copy casts are possible on this
// machine.
func HostLittleEndian() bool { return hostLittleEndian }

// aligned reports whether b's base pointer is a multiple of align
// (which must be a power of two).
func aligned(b []byte, align uintptr) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(b)))&(align-1) == 0
}

// CastFloat64s reinterprets b as little-endian float64 values without
// copying. ok is false when the cast is illegal (wrong length,
// misaligned base, or big-endian host); callers then fall back to
// DecodeFloat64s.
func CastFloat64s(b []byte) (vals []float64, ok bool) {
	if !hostLittleEndian || len(b)%8 != 0 || !aligned(b, 8) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8), true
}

// CastInt32s reinterprets b as little-endian int32 values without
// copying; see CastFloat64s.
func CastInt32s(b []byte) (vals []int32, ok bool) {
	if !hostLittleEndian || len(b)%4 != 0 || !aligned(b, 4) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4), true
}

// CastUint64s reinterprets b as little-endian uint64 values without
// copying; see CastFloat64s.
func CastUint64s(b []byte) (vals []uint64, ok bool) {
	if !hostLittleEndian || len(b)%8 != 0 || !aligned(b, 8) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8), true
}

// Float64Bytes reinterprets vals as their little-endian byte image
// without copying. ok is false on a big-endian host; callers then fall
// back to EncodeFloat64s. (Go float64 slices are always 8-byte aligned,
// so no alignment check is needed in this direction.)
func Float64Bytes(vals []float64) (b []byte, ok bool) {
	if !hostLittleEndian {
		return nil, false
	}
	if len(vals) == 0 {
		return nil, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(vals))), len(vals)*8), true
}

// Int32Bytes reinterprets vals as little-endian bytes; see Float64Bytes.
func Int32Bytes(vals []int32) (b []byte, ok bool) {
	if !hostLittleEndian {
		return nil, false
	}
	if len(vals) == 0 {
		return nil, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(vals))), len(vals)*4), true
}

// Uint64Bytes reinterprets vals as little-endian bytes; see
// Float64Bytes.
func Uint64Bytes(vals []uint64) (b []byte, ok bool) {
	if !hostLittleEndian {
		return nil, false
	}
	if len(vals) == 0 {
		return nil, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(vals))), len(vals)*8), true
}

// AlignedBytes allocates an n-byte buffer whose base pointer is 8-byte
// aligned (it is backed by a []uint64), so every section read into it at
// a GRI3 page-aligned offset stays castable.
func AlignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), len(words)*8)[:n]
}

// DecodeFloat64s is the copying fallback for CastFloat64s: it decodes
// little-endian bytes element-wise into a fresh slice. len(b) must be a
// multiple of 8.
func DecodeFloat64s(b []byte) []float64 {
	vals := make([]float64, len(b)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vals
}

// DecodeInt32s is the copying fallback for CastInt32s.
func DecodeInt32s(b []byte) []int32 {
	vals := make([]int32, len(b)/4)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return vals
}

// DecodeUint64s is the copying fallback for CastUint64s.
func DecodeUint64s(b []byte) []uint64 {
	vals := make([]uint64, len(b)/8)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return vals
}

// EncodeFloat64s is the copying fallback for Float64Bytes.
func EncodeFloat64s(vals []float64) []byte {
	b := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

// EncodeInt32s is the copying fallback for Int32Bytes.
func EncodeInt32s(vals []int32) []byte {
	b := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	return b
}

// EncodeUint64s is the copying fallback for Uint64Bytes.
func EncodeUint64s(vals []uint64) []byte {
	b := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return b
}
