package vec

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]Vector, 17)
	for i := range vs {
		v := make(Vector, 5)
		for j := range v {
			v[j] = rng.Float64()
		}
		vs[i] = v
	}
	m := NewMatrix(vs)
	if m.Len() != 17 || m.Dim() != 5 {
		t.Fatalf("shape = %d×%d, want 17×5", m.Len(), m.Dim())
	}
	if len(m.Data()) != 85 {
		t.Fatalf("backing length %d, want 85", len(m.Data()))
	}
	for i, v := range vs {
		if !Equal(m.Row(i), v) || !Equal(m.Rows()[i], v) {
			t.Fatalf("row %d: got %v want %v", i, m.Row(i), v)
		}
	}
	// NewMatrix copies: mutating the source must not reach the matrix.
	vs[3][2] = -99
	if m.Row(3)[2] == -99 {
		t.Fatal("NewMatrix aliased its input")
	}
	// Rows are views: the backing array and the row views agree.
	m.Data()[5*7+1] = 42
	if m.Row(7)[1] != 42 {
		t.Fatal("Row is not a view of Data")
	}
	// Full-slice views: appending through a row must not clobber the next.
	r := m.Row(2)
	_ = append(r, 1.0)
	if m.Row(3)[0] == 1.0 && vs[3][0] != 1.0 {
		t.Fatal("append through a row view bled into the next row")
	}
}

func TestMatrixFromFlat(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := MatrixFromFlat(data, 3)
	if m.Len() != 2 || m.Dim() != 3 {
		t.Fatalf("shape = %d×%d, want 2×3", m.Len(), m.Dim())
	}
	if !Equal(m.Row(1), Vector{4, 5, 6}) {
		t.Fatalf("row 1 = %v", m.Row(1))
	}
	// No copy: writes through the original slice are visible.
	data[0] = 9
	if m.Row(0)[0] != 9 {
		t.Fatal("MatrixFromFlat copied its input")
	}
}

func TestMatrixPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty", func() { NewMatrix(nil) }},
		{"zero-dim", func() { NewMatrix([]Vector{{}}) }},
		{"ragged", func() { NewMatrix([]Vector{{1, 2}, {1}}) }},
		{"flat-misaligned", func() { MatrixFromFlat([]float64{1, 2, 3}, 2) }},
		{"flat-empty", func() { MatrixFromFlat(nil, 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

// naiveDot is the straight reference loop Dot's unrolled kernel must match
// bit for bit (same accumulation order, so the floating-point result is
// identical, not merely close).
func naiveDot(a, b Vector) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for d := 0; d <= 33; d++ { // covers every tail length and the empty case
		for trial := 0; trial < 50; trial++ {
			a := make(Vector, d)
			b := make(Vector, d)
			for i := 0; i < d; i++ {
				// Mixed magnitudes make accumulation-order changes visible.
				a[i] = (rng.Float64() - 0.5) * float64(int64(1)<<uint(rng.Intn(40)))
				b[i] = (rng.Float64() - 0.5) * float64(int64(1)<<uint(rng.Intn(40)))
			}
			if got, want := Dot(a, b), naiveDot(a, b); got != want {
				t.Fatalf("d=%d: Dot = %v, naive = %v (must be bit-identical)", d, got, want)
			}
		}
	}
}

func benchVectors(d int) (Vector, Vector) {
	rng := rand.New(rand.NewSource(3))
	a := make(Vector, d)
	b := make(Vector, d)
	for i := 0; i < d; i++ {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	return a, b
}

var dotSink float64

func BenchmarkDot(b *testing.B) {
	for _, d := range []int{4, 6, 8, 16, 64} {
		a, v := benchVectors(d)
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dotSink += Dot(a, v)
			}
		})
	}
}

// TestMatrixWithAppended covers both append paths (tail reuse and
// grow-copy) and proves derivation never disturbs the base matrix.
func TestMatrixWithAppended(t *testing.T) {
	base := NewMatrix([]Vector{{1, 2}, {3, 4}})
	snapshot := append([]float64{}, base.Data()...)

	a := base.WithAppended(Vector{5, 6})
	b := base.WithAppended(Vector{7, 8}) // second derive from same base must not corrupt a
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("derived lengths %d, %d, want 3", a.Len(), b.Len())
	}
	if got := a.Row(2); got[0] != 5 || got[1] != 6 {
		t.Fatalf("a last row = %v, want [5 6]", got)
	}
	if got := b.Row(2); got[0] != 7 || got[1] != 8 {
		t.Fatalf("b last row = %v, want [7 8]", got)
	}
	for i, x := range base.Data() {
		if x != snapshot[i] {
			t.Fatalf("base mutated at %d: %v vs %v", i, base.Data(), snapshot)
		}
	}
	// A long append chain exercises both the in-place and the grow path.
	m := NewMatrix([]Vector{{0, 0}})
	for i := 1; i <= 50; i++ {
		m = m.WithAppended(Vector{float64(i), float64(-i)})
	}
	if m.Len() != 51 {
		t.Fatalf("chain length %d, want 51", m.Len())
	}
	for i := 0; i < 51; i++ {
		if r := m.Row(i); r[0] != float64(i) || r[1] != float64(-i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestMatrixWithRemoved(t *testing.T) {
	base := NewMatrix([]Vector{{1, 1}, {2, 2}, {3, 3}})
	m := base.WithRemoved(1)
	if m.Len() != 2 || m.Row(0)[0] != 1 || m.Row(1)[0] != 3 {
		t.Fatalf("WithRemoved(1) = %v", m.Rows())
	}
	if base.Len() != 3 || base.Row(1)[0] != 2 {
		t.Fatalf("base mutated: %v", base.Rows())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("removing the last row should panic")
		}
	}()
	one := NewMatrix([]Vector{{9}})
	one.WithRemoved(0)
}
