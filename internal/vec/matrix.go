package vec

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Matrix is a dense row-major collection of equal-dimension vectors backed
// by one contiguous []float64. The scan algorithms iterate vectors in row
// order, so contiguous backing turns the pointer-chasing [][]float64 walk
// into sequential memory traffic; Rows() exposes the same data as
// []Vector stride-d views, so code written against slices of vectors
// keeps working unchanged.
type Matrix struct {
	data []float64
	d    int
	// rows is built lazily on the first Rows() call: a mapped 10M-row
	// matrix must not pay an O(rows) header build at load time, and the
	// scan paths address rows arithmetically through Row anyway.
	rowsOnce sync.Once
	rows     []Vector
	// tailExtended records that a derived matrix has already appended a
	// row into this matrix's spare backing capacity. WithAppended claims
	// it with a CAS: the first derivation may reuse the tail in place
	// (readers of this matrix never touch data beyond their own length),
	// any later derivation from the same base copies instead — two
	// children writing the same tail slot would corrupt each other.
	tailExtended atomic.Bool
}

// NewMatrix copies vs into contiguous storage. It panics on an empty set
// or ragged rows — matrix shape is program configuration, not user input.
func NewMatrix(vs []Vector) *Matrix {
	if len(vs) == 0 {
		panic("vec: empty matrix")
	}
	d := len(vs[0])
	if d == 0 {
		panic("vec: zero-dimensional matrix")
	}
	data := make([]float64, len(vs)*d)
	for i, v := range vs {
		if len(v) != d {
			panic(fmt.Sprintf("vec: row %d has dimension %d, want %d", i, len(v), d))
		}
		copy(data[i*d:(i+1)*d], v)
	}
	return fromFlat(data, d)
}

// MatrixFromFlat wraps an existing row-major backing array without
// copying. len(data) must be a positive multiple of d.
func MatrixFromFlat(data []float64, d int) *Matrix {
	if d < 1 || len(data) == 0 || len(data)%d != 0 {
		panic(fmt.Sprintf("vec: flat length %d not a positive multiple of dim %d", len(data), d))
	}
	return fromFlat(data, d)
}

func fromFlat(data []float64, d int) *Matrix {
	return &Matrix{data: data, d: d}
}

// Len returns the number of rows.
func (m *Matrix) Len() int { return len(m.data) / m.d }

// Dim returns the row dimensionality.
func (m *Matrix) Dim() int { return m.d }

// Data returns the contiguous backing array (Len()·Dim() floats,
// row-major). Callers must not modify it.
func (m *Matrix) Data() []float64 { return m.data }

// Row returns row i as a view into the backing array. Full-slice view:
// appends through a row can never bleed into the next one.
func (m *Matrix) Row(i int) Vector { return m.data[i*m.d : (i+1)*m.d : (i+1)*m.d] }

// Rows returns all rows as stride-d views into the backing array. The
// header slice is built on first use and cached; callers must not
// modify it.
func (m *Matrix) Rows() []Vector {
	m.rowsOnce.Do(func() {
		rows := make([]Vector, m.Len())
		for i := range rows {
			rows[i] = m.Row(i)
		}
		m.rows = rows
	})
	return m.rows
}

// WithAppended derives a new matrix with v as an extra final row. The
// receiver is unchanged and stays fully usable — derived matrices are
// the copy-on-write building block of the index's epoch snapshots.
//
// When the backing array has spare capacity the new row is written into
// it in place (amortized O(d): the tail beyond the receiver's length is
// invisible to its readers, and the tailExtended claim ensures only one
// derivation ever reuses it); otherwise the data is copied into a
// backing array grown by half, so repeated appends amortize to O(d) per
// row plus the one-time copies.
func (m *Matrix) WithAppended(v Vector) *Matrix {
	if len(v) != m.d {
		panic(fmt.Sprintf("vec: appended row has dimension %d, want %d", len(v), m.d))
	}
	n := len(m.data)
	if cap(m.data) >= n+m.d && m.tailExtended.CompareAndSwap(false, true) {
		data := m.data[: n+m.d : cap(m.data)]
		copy(data[n:], v)
		return fromFlat(data, m.d)
	}
	grown := n + m.d + n/2
	data := make([]float64, n+m.d, grown)
	copy(data, m.data)
	copy(data[n:], v)
	return fromFlat(data, m.d)
}

// WithRemoved derives a new matrix without row i. The receiver is
// unchanged; the surviving rows keep their order (rows after i shift
// down by one). It panics on an out-of-range i or when removing the
// last remaining row — an empty matrix is not representable.
func (m *Matrix) WithRemoved(i int) *Matrix {
	if i < 0 || i >= m.Len() {
		panic(fmt.Sprintf("vec: removed row %d out of range [0, %d)", i, m.Len()))
	}
	if m.Len() == 1 {
		panic("vec: cannot remove the last row")
	}
	data := make([]float64, len(m.data)-m.d)
	copy(data, m.data[:i*m.d])
	copy(data[i*m.d:], m.data[(i+1)*m.d:])
	return fromFlat(data, m.d)
}
