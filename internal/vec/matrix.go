package vec

import "fmt"

// Matrix is a dense row-major collection of equal-dimension vectors backed
// by one contiguous []float64. The scan algorithms iterate vectors in row
// order, so contiguous backing turns the pointer-chasing [][]float64 walk
// into sequential memory traffic; Rows() exposes the same data as
// []Vector stride-d views, so code written against slices of vectors
// keeps working unchanged.
type Matrix struct {
	data []float64
	d    int
	rows []Vector
}

// NewMatrix copies vs into contiguous storage. It panics on an empty set
// or ragged rows — matrix shape is program configuration, not user input.
func NewMatrix(vs []Vector) *Matrix {
	if len(vs) == 0 {
		panic("vec: empty matrix")
	}
	d := len(vs[0])
	if d == 0 {
		panic("vec: zero-dimensional matrix")
	}
	data := make([]float64, len(vs)*d)
	for i, v := range vs {
		if len(v) != d {
			panic(fmt.Sprintf("vec: row %d has dimension %d, want %d", i, len(v), d))
		}
		copy(data[i*d:(i+1)*d], v)
	}
	return fromFlat(data, d)
}

// MatrixFromFlat wraps an existing row-major backing array without
// copying. len(data) must be a positive multiple of d.
func MatrixFromFlat(data []float64, d int) *Matrix {
	if d < 1 || len(data) == 0 || len(data)%d != 0 {
		panic(fmt.Sprintf("vec: flat length %d not a positive multiple of dim %d", len(data), d))
	}
	return fromFlat(data, d)
}

func fromFlat(data []float64, d int) *Matrix {
	m := &Matrix{data: data, d: d, rows: make([]Vector, len(data)/d)}
	for i := range m.rows {
		// Full-slice views: appends through a row can never bleed into the
		// next one.
		m.rows[i] = data[i*d : (i+1)*d : (i+1)*d]
	}
	return m
}

// Len returns the number of rows.
func (m *Matrix) Len() int { return len(m.rows) }

// Dim returns the row dimensionality.
func (m *Matrix) Dim() int { return m.d }

// Data returns the contiguous backing array (Len()·Dim() floats,
// row-major). Callers must not modify it.
func (m *Matrix) Data() []float64 { return m.data }

// Row returns row i as a view into the backing array.
func (m *Matrix) Row(i int) Vector { return m.rows[i] }

// Rows returns all rows as stride-d views into the backing array. The
// slice is the matrix's own storage; callers must not modify it.
func (m *Matrix) Rows() []Vector { return m.rows }
