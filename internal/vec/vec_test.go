package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{0.6, 0.7}, Vector{0.8, 0.2}, 0.62}, // Tom scoring p1, Figure 1
		{Vector{0.2, 0.3}, Vector{0.8, 0.2}, 0.22}, // Tom scoring p2
		{Vector{}, Vector{}, 0},
		{Vector{1, 2, 3}, Vector{0, 0, 0}, 0},
		{Vector{1}, Vector{5}, 5},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dot(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Dot2's two results must be bit-identical to separate Dot calls — the
// pairing is only legal in full-scan callers because scores cannot move.
func TestDot2BitIdenticalToDot(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, d := range []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 33} {
		for trial := 0; trial < 20; trial++ {
			w, a, b := make(Vector, d), make(Vector, d), make(Vector, d)
			for i := 0; i < d; i++ {
				w[i] = rng.Float64()
				a[i] = rng.Float64() * 100
				b[i] = rng.Float64() * 100
			}
			s, u := Dot2(w, a, b)
			if s != Dot(w, a) || u != Dot(w, b) {
				t.Fatalf("d=%d: Dot2 = (%v, %v), Dot = (%v, %v)", d, s, u, Dot(w, a), Dot(w, b))
			}
		}
	}
}

func TestDot2PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot2 with mismatched dims should panic")
		}
	}()
	Dot2(Vector{1, 2}, Vector{1, 2}, Vector{1})
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched dims should panic")
		}
	}()
	Dot(Vector{1, 2}, Vector{1})
}

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q Vector
		want bool
	}{
		{Vector{1, 1}, Vector{2, 2}, true},
		{Vector{1, 2}, Vector{2, 2}, false}, // tie on one dim is not strict
		{Vector{3, 1}, Vector{2, 2}, false},
		{Vector{2, 2}, Vector{2, 2}, false},
		{Vector{0, 0, 0}, Vector{1, 1, 1}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.p, c.q); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestWeakDominates(t *testing.T) {
	if !WeakDominates(Vector{1, 2}, Vector{2, 2}) {
		t.Error("weak dominance with one tie should hold")
	}
	if WeakDominates(Vector{2, 2}, Vector{2, 2}) {
		t.Error("identical vectors do not weakly dominate")
	}
	if WeakDominates(Vector{3, 1}, Vector{2, 2}) {
		t.Error("incomparable vectors do not weakly dominate")
	}
}

// Property: strict dominance implies a strictly smaller score for every
// legal preference vector. This is the invariant the Domin buffer rests on.
func TestDominanceImpliesBetterScore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		d := 1 + rng.Intn(10)
		p := make(Vector, d)
		q := make(Vector, d)
		w := make(Vector, d)
		for i := 0; i < d; i++ {
			q[i] = rng.Float64()*100 + 1e-9
			p[i] = q[i] * rng.Float64() * 0.999 // strictly below q[i]
			w[i] = rng.Float64()
		}
		if !Normalize(w) {
			continue
		}
		if !Dominates(p, q) {
			t.Fatalf("constructed p=%v should dominate q=%v", p, q)
		}
		if Dot(w, p) >= Dot(w, q) {
			t.Fatalf("dominating p must score strictly lower: f(p)=%v f(q)=%v",
				Dot(w, p), Dot(w, q))
		}
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{2, 3, 5}
	if !Normalize(v) {
		t.Fatal("Normalize failed on positive vector")
	}
	if math.Abs(Sum(v)-1) > 1e-12 {
		t.Errorf("normalized sum = %v, want 1", Sum(v))
	}
	if math.Abs(v[0]-0.2) > 1e-12 {
		t.Errorf("v[0] = %v, want 0.2", v[0])
	}
	if Normalize(Vector{0, 0}) {
		t.Error("Normalize of zero vector should fail")
	}
	if Normalize(Vector{math.Inf(1), 1}) {
		t.Error("Normalize of infinite vector should fail")
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone must not share backing array")
	}
	if !Equal(v, Vector{1, 2, 3}) {
		t.Error("original changed")
	}
}

func TestEqual(t *testing.T) {
	if Equal(Vector{1, 2}, Vector{1, 2, 3}) {
		t.Error("different lengths are not equal")
	}
	if !Equal(Vector{1, 2}, Vector{1, 2}) {
		t.Error("identical vectors are equal")
	}
	if Equal(Vector{1, 2}, Vector{1, 2.5}) {
		t.Error("different values are not equal")
	}
}

// Property: MaxDiffScore/MinDiffScore bracket w·(p-q) for any w in the box.
func TestDiffScoreBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 2000; iter++ {
		d := 1 + rng.Intn(8)
		p, q, wlo, whi, w := make(Vector, d), make(Vector, d), make(Vector, d), make(Vector, d), make(Vector, d)
		for i := 0; i < d; i++ {
			p[i] = rng.Float64() * 10
			q[i] = rng.Float64() * 10
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			wlo[i], whi[i] = a, b
			w[i] = a + rng.Float64()*(b-a)
		}
		diff := Dot(w, p) - Dot(w, q)
		lo := MinDiffScore(p, q, wlo, whi)
		hi := MaxDiffScore(p, q, wlo, whi)
		if diff < lo-1e-9 || diff > hi+1e-9 {
			t.Fatalf("w·(p-q)=%v outside [%v, %v]", diff, lo, hi)
		}
	}
}

// Property: BoxDot brackets the score of any (p, w) drawn inside the boxes.
func TestBoxDotBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 2000; iter++ {
		d := 1 + rng.Intn(8)
		plo, phi, wlo, whi := make(Vector, d), make(Vector, d), make(Vector, d), make(Vector, d)
		p, w := make(Vector, d), make(Vector, d)
		for i := 0; i < d; i++ {
			a, b := rng.Float64()*10, rng.Float64()*10
			if a > b {
				a, b = b, a
			}
			plo[i], phi[i] = a, b
			p[i] = a + rng.Float64()*(b-a)
			a, b = rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			wlo[i], whi[i] = a, b
			w[i] = a + rng.Float64()*(b-a)
		}
		lo, hi := BoxDot(plo, phi, wlo, whi)
		s := Dot(p, w)
		if s < lo-1e-9 || s > hi+1e-9 {
			t.Fatalf("score %v outside box bound [%v, %v]", s, lo, hi)
		}
	}
}

func TestL2(t *testing.T) {
	if got := L2(Vector{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2(3,4) = %v, want 5", got)
	}
	if got := L2(Vector{}); got != 0 {
		t.Errorf("L2(empty) = %v, want 0", got)
	}
}

// quick-check: Dot is symmetric and linear in its first argument.
func TestDotSymmetricQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := raw[:half], raw[half:half*2]
		for _, x := range raw {
			// Skip values whose products overflow: Inf + (-Inf) = NaN and
			// NaN breaks equality without violating symmetry.
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				return true
			}
		}
		return Dot(a, b) == Dot(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSum(t *testing.T) {
	if Sum(Vector{1, 2, 3}) != 6 {
		t.Error("Sum(1,2,3) != 6")
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
}

func TestMinMaxScore(t *testing.T) {
	p := Vector{2, 4}
	wlo := Vector{0.1, 0.2}
	whi := Vector{0.5, 0.9}
	if got := MinScore(p, wlo); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("MinScore = %v, want 1.0", got)
	}
	if got := MaxScore(p, whi); math.Abs(got-4.6) > 1e-12 {
		t.Errorf("MaxScore = %v, want 4.6", got)
	}
}
