// Package rtree implements the d-dimensional R-tree used as the substrate
// of the tree-based baselines BBR and MPA, with both STR bulk loading and
// Guttman quadratic-split insertion, plus the MBR statistics the paper
// reports in Table 3 and Figure 15a (count, diagonal, shape ratio, overlap
// rate with range queries, volume).
package rtree

import (
	"fmt"
	"math"

	"gridrank/internal/vec"
)

// Rect is an axis-aligned minimum bounding rectangle [Lo, Hi].
type Rect struct {
	Lo, Hi vec.Vector
}

// RectOf returns the degenerate rectangle covering a single point. The
// point is cloned, so later mutation of p does not corrupt the tree.
func RectOf(p vec.Vector) Rect {
	return Rect{Lo: vec.Clone(p), Hi: vec.Clone(p)}
}

// Dim returns the dimensionality.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy.
func (r Rect) Clone() Rect {
	return Rect{Lo: vec.Clone(r.Lo), Hi: vec.Clone(r.Hi)}
}

// Expand grows r in place to cover o.
func (r *Rect) Expand(o Rect) {
	for i := range r.Lo {
		if o.Lo[i] < r.Lo[i] {
			r.Lo[i] = o.Lo[i]
		}
		if o.Hi[i] > r.Hi[i] {
			r.Hi[i] = o.Hi[i]
		}
	}
}

// ExpandPoint grows r in place to cover point p.
func (r *Rect) ExpandPoint(p vec.Vector) {
	for i := range r.Lo {
		if p[i] < r.Lo[i] {
			r.Lo[i] = p[i]
		}
		if p[i] > r.Hi[i] {
			r.Hi[i] = p[i]
		}
	}
}

// ContainsPoint reports whether p lies inside r (inclusive).
func (r Rect) ContainsPoint(p vec.Vector) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and o overlap (boundary contact counts).
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < o.Lo[i] || o.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Volume returns the d-dimensional volume Π (Hi[i]-Lo[i]).
func (r Rect) Volume() float64 {
	v := 1.0
	for i := range r.Lo {
		v *= r.Hi[i] - r.Lo[i]
	}
	return v
}

// Margin returns Σ (Hi[i]-Lo[i]), the perimeter surrogate used by split
// heuristics.
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Diagonal returns the Euclidean length of the main diagonal, the metric
// of Table 3's "diagonal length" row.
func (r Rect) Diagonal() float64 {
	var s float64
	for i := range r.Lo {
		e := r.Hi[i] - r.Lo[i]
		s += e * e
	}
	return math.Sqrt(s)
}

// ShapeRatio returns the ratio of the longest edge to the shortest, the
// metric of Table 3's "Shape" row. Degenerate rectangles with a zero
// shortest edge report +Inf unless all edges are zero, in which case the
// ratio is 1 (a point is perfectly square).
func (r Rect) ShapeRatio() float64 {
	longest, shortest := 0.0, math.Inf(1)
	for i := range r.Lo {
		e := r.Hi[i] - r.Lo[i]
		if e > longest {
			longest = e
		}
		if e < shortest {
			shortest = e
		}
	}
	if longest == 0 {
		return 1
	}
	if shortest == 0 {
		return math.Inf(1)
	}
	return longest / shortest
}

// EnlargementVolume returns the volume increase of r if expanded to cover o.
func (r Rect) EnlargementVolume(o Rect) float64 {
	grown := r.Clone()
	grown.Expand(o)
	return grown.Volume() - r.Volume()
}

// validate panics when the rectangle is malformed; used by tree invariant
// checks in tests.
func (r Rect) validate() error {
	if len(r.Lo) != len(r.Hi) {
		return fmt.Errorf("rtree: rect lo/hi dimension mismatch %d/%d", len(r.Lo), len(r.Hi))
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return fmt.Errorf("rtree: inverted rect on dim %d: [%v, %v]", i, r.Lo[i], r.Hi[i])
		}
	}
	return nil
}
