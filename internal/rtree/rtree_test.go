package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

func randomPoints(seed int64, n, d int, r float64) []vec.Vector {
	rng := rand.New(rand.NewSource(seed))
	return dataset.GenerateProducts(rng, dataset.Uniform, n, d, r).Points
}

func TestBulkInvariants(t *testing.T) {
	for _, n := range []int{1, 5, 100, 1000, 3177} {
		for _, d := range []int{1, 2, 6, 12} {
			pts := randomPoints(int64(n*100+d), n, d, 100)
			tr := Bulk(pts, 16)
			if tr.Len() != n {
				t.Fatalf("n=%d d=%d: Len=%d", n, d, tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("n=%d d=%d: %v", n, d, err)
			}
			if got := tr.Root().Count(); got != n {
				t.Fatalf("n=%d d=%d: root count %d", n, d, got)
			}
		}
	}
}

func TestInsertInvariants(t *testing.T) {
	for _, n := range []int{1, 10, 300, 777} {
		pts := randomPoints(int64(n), n, 3, 100)
		tr := New(3, 8)
		for i, p := range pts {
			tr.Insert(i, p)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	pts := randomPoints(7, 800, 4, 100)
	bulk := Bulk(pts, 10)
	dyn := New(4, 10)
	for i, p := range pts {
		dyn.Insert(i, p)
	}
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 50; iter++ {
		lo := make(vec.Vector, 4)
		hi := make(vec.Vector, 4)
		for i := range lo {
			a, b := rng.Float64()*100, rng.Float64()*100
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		q := Rect{Lo: lo, Hi: hi}
		var want []int
		for i, p := range pts {
			if q.ContainsPoint(p) {
				want = append(want, i)
			}
		}
		for name, tr := range map[string]*Tree{"bulk": bulk, "dyn": dyn} {
			got := tr.Search(q, nil, nil)
			ids := make([]int, len(got))
			for i, e := range got {
				ids[i] = e.Index
			}
			sort.Ints(ids)
			if len(ids) != len(want) {
				t.Fatalf("%s iter %d: got %d hits, want %d", name, iter, len(ids), len(want))
			}
			for i := range want {
				if ids[i] != want[i] {
					t.Fatalf("%s iter %d: hit[%d]=%d, want %d", name, iter, i, ids[i], want[i])
				}
			}
		}
	}
}

func TestSearchCountsVisits(t *testing.T) {
	pts := randomPoints(9, 500, 3, 100)
	tr := Bulk(pts, 10)
	var c stats.Counters
	full := Rect{Lo: vec.Vector{0, 0, 0}, Hi: vec.Vector{100, 100, 100}}
	got := tr.Search(full, nil, &c)
	if len(got) != 500 {
		t.Fatalf("full-space search returned %d of 500", len(got))
	}
	if c.NodesVisited == 0 || c.LeavesVisited == 0 || c.PointsVisited != 500 {
		t.Errorf("counters not populated: %+v", c)
	}
}

func TestEmptyAndSearchEmptyTree(t *testing.T) {
	tr := New(2, 4)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Search(Rect{Lo: vec.Vector{0, 0}, Hi: vec.Vector{1, 1}}, nil, nil); len(got) != 0 {
		t.Error("empty tree search should return nothing")
	}
	if tr.Height() != 0 {
		t.Errorf("empty tree height %d", tr.Height())
	}
}

func TestHeightGrows(t *testing.T) {
	pts := randomPoints(10, 1000, 2, 100)
	tr := Bulk(pts, 4)
	if tr.Height() < 4 {
		t.Errorf("1000 points at capacity 4: height %d, want >= 4", tr.Height())
	}
	single := Bulk(pts[:3], 4)
	if single.Height() != 1 {
		t.Errorf("3 points fit a single leaf: height %d", single.Height())
	}
}

func TestNewPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dim 0", func() { New(0, 4) })
	mustPanic("cap 1", func() { New(2, 1) })
	mustPanic("bulk empty", func() { Bulk(nil, 4) })
	mustPanic("insert wrong dim", func() { New(2, 4).Insert(0, vec.Vector{1}) })
	mustPanic("bulk ragged", func() { Bulk([]vec.Vector{{1, 2}, {1}}, 4) })
}

func TestRectOps(t *testing.T) {
	r := RectOf(vec.Vector{1, 2})
	if r.Volume() != 0 || r.Diagonal() != 0 {
		t.Error("point rect has zero volume and diagonal")
	}
	if r.ShapeRatio() != 1 {
		t.Error("point rect shape ratio is 1")
	}
	r.ExpandPoint(vec.Vector{3, 6})
	if r.Volume() != 8 { // 2 × 4
		t.Errorf("volume %v, want 8", r.Volume())
	}
	if r.Margin() != 6 {
		t.Errorf("margin %v, want 6", r.Margin())
	}
	if got := r.Diagonal(); math.Abs(got-math.Sqrt(20)) > 1e-12 {
		t.Errorf("diagonal %v", got)
	}
	if got := r.ShapeRatio(); got != 2 {
		t.Errorf("shape %v, want 2", got)
	}
	flat := Rect{Lo: vec.Vector{0, 0}, Hi: vec.Vector{5, 0}}
	if !math.IsInf(flat.ShapeRatio(), 1) {
		t.Error("flat rect shape ratio should be +Inf")
	}
	if !r.Intersects(Rect{Lo: vec.Vector{3, 6}, Hi: vec.Vector{9, 9}}) {
		t.Error("boundary contact counts as intersection")
	}
	if r.Intersects(Rect{Lo: vec.Vector{3.1, 6.1}, Hi: vec.Vector{9, 9}}) {
		t.Error("disjoint rects must not intersect")
	}
	if enl := r.EnlargementVolume(Rect{Lo: vec.Vector{1, 2}, Hi: vec.Vector{3, 6}}); enl != 0 {
		t.Errorf("contained rect enlargement %v, want 0", enl)
	}
}

func TestCollectLeafStats(t *testing.T) {
	pts := randomPoints(11, 2000, 3, 100)
	tr := Bulk(pts, 50)
	st := CollectLeafStats(tr)
	wantLeaves := (2000 + 49) / 50
	if st.NumMBR < wantLeaves || st.NumMBR > wantLeaves*2 {
		t.Errorf("NumMBR = %d, want ≈%d", st.NumMBR, wantLeaves)
	}
	if st.AvgDiagonal <= 0 || st.AvgVolume <= 0 || st.AvgShape < 1 {
		t.Errorf("degenerate stats: %+v", st)
	}
	maxDiag := math.Sqrt(3 * 100 * 100)
	if st.AvgDiagonal > maxDiag {
		t.Errorf("diagonal %v exceeds space diagonal %v", st.AvgDiagonal, maxDiag)
	}
}

// The phenomenon behind Table 3: with fixed leaf capacity, the fraction of
// leaf MBRs overlapping a 1%-volume query explodes as d grows.
func TestOverlapFractionGrowsWithDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	overlap := func(d int) float64 {
		pts := randomPoints(int64(13+d), 3000, d, 100)
		tr := Bulk(pts, 50)
		return OverlapFraction(tr, 100, 0.01, 20, rng)
	}
	lo, hi := overlap(2), overlap(9)
	if hi < 0.9 {
		t.Errorf("9-d overlap = %v, want near 1 (Table 3 reports 100%%)", hi)
	}
	if lo > hi {
		t.Errorf("overlap should grow with d: d=2 %v > d=9 %v", lo, hi)
	}
	if lo > 0.8 {
		t.Errorf("2-d overlap = %v, want clearly below the high-d regime", lo)
	}
}

func TestLeavesCollects(t *testing.T) {
	pts := randomPoints(14, 130, 2, 10)
	tr := Bulk(pts, 8)
	leaves := Leaves(tr.Root(), nil)
	total := 0
	for _, l := range leaves {
		if !l.Leaf() {
			t.Fatal("non-leaf returned")
		}
		total += len(l.Entries)
	}
	if total != 130 {
		t.Errorf("leaves hold %d entries, want 130", total)
	}
	if Leaves(nil, nil) != nil {
		t.Error("nil node yields nil")
	}
}

func TestInsertThenSearchSingle(t *testing.T) {
	tr := New(2, 4)
	tr.Insert(42, vec.Vector{5, 5})
	got := tr.Search(Rect{Lo: vec.Vector{4, 4}, Hi: vec.Vector{6, 6}}, nil, nil)
	if len(got) != 1 || got[0].Index != 42 {
		t.Fatalf("got %+v", got)
	}
	if tr.Height() != 1 {
		t.Errorf("height %d", tr.Height())
	}
}

func TestDuplicatePointsSurviveSplit(t *testing.T) {
	// Many identical points force zero-volume split decisions.
	tr := New(2, 4)
	for i := 0; i < 50; i++ {
		tr.Insert(i, vec.Vector{1, 1})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.Search(Rect{Lo: vec.Vector{1, 1}, Hi: vec.Vector{1, 1}}, nil, nil)
	if len(got) != 50 {
		t.Fatalf("found %d of 50 duplicates", len(got))
	}
}
