package rtree

import (
	"math/rand"
	"testing"

	"gridrank/internal/vec"
)

func BenchmarkBulkLoad100K6d(b *testing.B) {
	pts := randomPoints(1, 100000, 6, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bulk(pts, DefaultCapacity)
	}
}

func BenchmarkInsert6d(b *testing.B) {
	pts := randomPoints(2, 10000, 6, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := New(6, 64)
		for j, p := range pts {
			t.Insert(j, p)
		}
	}
}

func benchSearch(b *testing.B, d int) {
	pts := randomPoints(3, 50000, d, 10000)
	t := Bulk(pts, DefaultCapacity)
	rng := rand.New(rand.NewSource(4))
	queries := make([]Rect, 64)
	for i := range queries {
		lo := make(vec.Vector, d)
		hi := make(vec.Vector, d)
		for j := 0; j < d; j++ {
			start := rng.Float64() * 9000
			lo[j] = start
			hi[j] = start + 1000
		}
		queries[i] = Rect{Lo: lo, Hi: hi}
	}
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		hits += len(t.Search(queries[i%len(queries)], nil, nil))
	}
	_ = hits
}

// The Table 3 phenomenon in benchmark form: identical range-query volume,
// exploding cost with dimensionality.
func BenchmarkSearch3d(b *testing.B)  { benchSearch(b, 3) }
func BenchmarkSearch9d(b *testing.B)  { benchSearch(b, 9) }
func BenchmarkSearch15d(b *testing.B) { benchSearch(b, 15) }
