package rtree

import (
	"math"
	"math/rand"

	"gridrank/internal/vec"
)

// LeafStats aggregates the MBR observations of the paper's Table 3 over
// the leaf level of a tree.
type LeafStats struct {
	NumMBR      int     // "#MBR"
	AvgDiagonal float64 // "diagonal length"
	AvgShape    float64 // "Shape": longest/shortest edge ratio
	AvgVolume   float64 // "Volume"
}

// CollectLeafStats computes Table 3's per-leaf averages. Leaves whose
// shape ratio is infinite (a zero-width edge, possible with duplicate
// coordinates) are excluded from the shape average, as the paper's finite
// reported ratios imply.
func CollectLeafStats(t *Tree) LeafStats {
	leaves := Leaves(t.Root(), nil)
	st := LeafStats{NumMBR: len(leaves)}
	if len(leaves) == 0 {
		return st
	}
	shapeCount := 0
	for _, l := range leaves {
		st.AvgDiagonal += l.MBR.Diagonal()
		st.AvgVolume += l.MBR.Volume()
		if s := l.MBR.ShapeRatio(); !math.IsInf(s, 1) {
			st.AvgShape += s
			shapeCount++
		}
	}
	n := float64(len(leaves))
	st.AvgDiagonal /= n
	st.AvgVolume /= n
	if shapeCount > 0 {
		st.AvgShape /= float64(shapeCount)
	}
	return st
}

// OverlapFraction measures Table 3's "Overlaps in Query(1%)" row: the
// average fraction of leaf MBRs intersecting a random range query whose
// volume is frac of the data space [0, r)^d, over queries trials.
func OverlapFraction(t *Tree, r float64, frac float64, queries int, rng *rand.Rand) float64 {
	leaves := Leaves(t.Root(), nil)
	if len(leaves) == 0 || queries <= 0 {
		return 0
	}
	d := t.Dim()
	side := math.Pow(frac, 1/float64(d)) * r
	var total float64
	for qi := 0; qi < queries; qi++ {
		lo := make(vec.Vector, d)
		hi := make(vec.Vector, d)
		for i := 0; i < d; i++ {
			start := rng.Float64() * (r - side)
			lo[i] = start
			hi[i] = start + side
		}
		q := Rect{Lo: lo, Hi: hi}
		hitCount := 0
		for _, l := range leaves {
			if l.MBR.Intersects(q) {
				hitCount++
			}
		}
		total += float64(hitCount) / float64(len(leaves))
	}
	return total / float64(queries)
}
