package rtree

import (
	"fmt"
	"sort"

	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

// Entry is a leaf payload: a point and its index in the source data set.
type Entry struct {
	Index int
	Point vec.Vector
}

// Node is an R-tree node. Exactly one of Children (internal) or Entries
// (leaf) is non-nil. Nodes are exported so the BBR and MPA algorithms can
// run their own branch-and-bound traversals.
type Node struct {
	MBR      Rect
	Children []*Node
	Entries  []Entry
	// Size caches the number of points under the node, so branch-and-bound
	// algorithms can count whole subtrees into a rank in O(1).
	Size int
}

// Leaf reports whether n is a leaf node.
func (n *Node) Leaf() bool { return n.Children == nil }

// Count returns the number of points under n (cached).
func (n *Node) Count() int { return n.Size }

func (n *Node) recomputeSize() {
	if n.Leaf() {
		n.Size = len(n.Entries)
		return
	}
	n.Size = 0
	for _, c := range n.Children {
		n.Size += c.Size
	}
}

// Tree is a d-dimensional R-tree over points.
type Tree struct {
	root *Node
	dim  int
	max  int // node capacity M
	min  int // minimum fill m
	size int
}

// DefaultCapacity is the paper's Table 3 setting: 100 entries per node.
const DefaultCapacity = 100

// New creates an empty tree with the given dimensionality and node
// capacity (minimum fill is capacity·40%, the usual Guttman setting).
// It panics on invalid parameters.
func New(dim, capacity int) *Tree {
	if dim <= 0 {
		panic(fmt.Sprintf("rtree: invalid dimension %d", dim))
	}
	if capacity < 2 {
		panic(fmt.Sprintf("rtree: capacity %d < 2", capacity))
	}
	minFill := capacity * 2 / 5
	if minFill < 1 {
		minFill = 1
	}
	return &Tree{dim: dim, max: capacity, min: minFill}
}

// Bulk builds a tree over the points using Sort-Tile-Recursive packing,
// the construction used for all benchmark trees (the paper pre-builds its
// R-trees too). Points are not copied; the caller must not mutate them.
func Bulk(points []vec.Vector, capacity int) *Tree {
	if len(points) == 0 {
		panic("rtree: Bulk needs at least one point")
	}
	t := New(len(points[0]), capacity)
	entries := make([]Entry, len(points))
	for i, p := range points {
		if len(p) != t.dim {
			panic(fmt.Sprintf("rtree: point %d has dimension %d, want %d", i, len(p), t.dim))
		}
		entries[i] = Entry{Index: i, Point: p}
	}
	leaves := strPackEntries(entries, t.dim, t.max)
	t.root = packUpward(leaves, t.max)
	t.size = len(points)
	return t
}

// strPackEntries recursively tiles entries into leaves of at most max
// entries: sort by the current dimension, cut into slabs, recurse on the
// next dimension.
func strPackEntries(entries []Entry, dim, max int) []*Node {
	var leaves []*Node
	var recurse func(es []Entry, axis int)
	recurse = func(es []Entry, axis int) {
		if len(es) <= max {
			leaf := &Node{Entries: es, MBR: RectOf(es[0].Point), Size: len(es)}
			for _, e := range es[1:] {
				leaf.MBR.ExpandPoint(e.Point)
			}
			leaves = append(leaves, leaf)
			return
		}
		sort.Slice(es, func(a, b int) bool {
			if es[a].Point[axis] != es[b].Point[axis] {
				return es[a].Point[axis] < es[b].Point[axis]
			}
			return es[a].Index < es[b].Index
		})
		pages := (len(es) + max - 1) / max
		// Number of slabs along this axis: ceil(pages^(1/remaining)).
		remaining := dim - axis
		if remaining < 1 {
			remaining = 1
		}
		slabs := int(ceilRoot(float64(pages), remaining))
		if slabs < 1 {
			slabs = 1
		}
		per := (len(es) + slabs - 1) / slabs
		nextAxis := axis + 1
		if nextAxis >= dim {
			nextAxis = dim - 1 // keep cutting the last axis if pages remain
		}
		for lo := 0; lo < len(es); lo += per {
			hi := lo + per
			if hi > len(es) {
				hi = len(es)
			}
			if axis == dim-1 || per <= max {
				// Final axis (or slabs already page-sized): emit leaves.
				for a := lo; a < hi; a += max {
					b := a + max
					if b > hi {
						b = hi
					}
					sub := es[a:b]
					leaf := &Node{Entries: sub, MBR: RectOf(sub[0].Point), Size: len(sub)}
					for _, e := range sub[1:] {
						leaf.MBR.ExpandPoint(e.Point)
					}
					leaves = append(leaves, leaf)
				}
			} else {
				recurse(es[lo:hi], nextAxis)
			}
		}
	}
	recurse(entries, 0)
	return leaves
}

// ceilRoot returns ⌈x^(1/k)⌉ computed robustly for small k.
func ceilRoot(x float64, k int) float64 {
	if x <= 1 {
		return 1
	}
	r := 1.0
	for pow(r, k) < x {
		r++
	}
	return r
}

func pow(x float64, k int) float64 {
	v := 1.0
	for i := 0; i < k; i++ {
		v *= x
	}
	return v
}

// packUpward groups consecutive nodes (already spatially coherent in STR
// order) into parents of at most max children until one root remains.
func packUpward(nodes []*Node, max int) *Node {
	for len(nodes) > 1 {
		var parents []*Node
		for lo := 0; lo < len(nodes); lo += max {
			hi := lo + max
			if hi > len(nodes) {
				hi = len(nodes)
			}
			kids := make([]*Node, hi-lo)
			copy(kids, nodes[lo:hi])
			parent := &Node{Children: kids, MBR: kids[0].MBR.Clone()}
			for _, c := range kids[1:] {
				parent.MBR.Expand(c.MBR)
			}
			parent.recomputeSize()
			parents = append(parents, parent)
		}
		nodes = parents
	}
	return nodes[0]
}

// Root returns the root node, or nil for an empty tree.
func (t *Tree) Root() *Node { return t.root }

// Dim returns the dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (0 for empty, 1 for a single leaf).
func (t *Tree) Height() int {
	h, n := 0, t.root
	for n != nil {
		h++
		if n.Leaf() {
			break
		}
		n = n.Children[0]
	}
	return h
}

// Insert adds a point with Guttman's algorithm: choose-leaf by least
// volume enlargement, quadratic split on overflow.
func (t *Tree) Insert(index int, p vec.Vector) {
	if len(p) != t.dim {
		panic(fmt.Sprintf("rtree: inserting dimension %d into %d-d tree", len(p), t.dim))
	}
	t.size++
	if t.root == nil {
		t.root = &Node{Entries: []Entry{{index, p}}, MBR: RectOf(p), Size: 1}
		return
	}
	split := t.insert(t.root, Entry{index, p})
	if split != nil {
		old := t.root
		t.root = &Node{Children: []*Node{old, split}, MBR: old.MBR.Clone()}
		t.root.MBR.Expand(split.MBR)
		t.root.recomputeSize()
	}
}

// insert descends into n; returns a new sibling if n split.
func (t *Tree) insert(n *Node, e Entry) *Node {
	n.MBR.ExpandPoint(e.Point)
	if n.Leaf() {
		n.Entries = append(n.Entries, e)
		n.Size = len(n.Entries)
		if len(n.Entries) > t.max {
			return t.splitLeaf(n)
		}
		return nil
	}
	child := chooseSubtree(n.Children, e.Point)
	if split := t.insert(child, e); split != nil {
		n.Children = append(n.Children, split)
		if len(n.Children) > t.max {
			n.recomputeSize()
			return t.splitInternal(n)
		}
	}
	n.recomputeSize()
	return nil
}

// chooseSubtree picks the child needing the least volume enlargement,
// breaking ties by smaller volume.
func chooseSubtree(children []*Node, p vec.Vector) *Node {
	best := children[0]
	bestEnl := best.MBR.EnlargementVolume(RectOf(p))
	for _, c := range children[1:] {
		enl := c.MBR.EnlargementVolume(RectOf(p))
		if enl < bestEnl || (enl == bestEnl && c.MBR.Volume() < best.MBR.Volume()) {
			best, bestEnl = c, enl
		}
	}
	return best
}

// splitLeaf performs a quadratic split of an overflowing leaf, leaving one
// group in n and returning the other as a new node.
func (t *Tree) splitLeaf(n *Node) *Node {
	rects := make([]Rect, len(n.Entries))
	for i, e := range n.Entries {
		rects[i] = RectOf(e.Point)
	}
	a, b := quadraticSplit(rects, t.min)
	oldEntries := n.Entries
	n.Entries = nil
	sib := &Node{}
	for _, i := range a {
		n.Entries = append(n.Entries, oldEntries[i])
	}
	for _, i := range b {
		sib.Entries = append(sib.Entries, oldEntries[i])
	}
	n.MBR = recomputeLeafMBR(n)
	sib.MBR = recomputeLeafMBR(sib)
	n.Size = len(n.Entries)
	sib.Size = len(sib.Entries)
	return sib
}

func recomputeLeafMBR(n *Node) Rect {
	r := RectOf(n.Entries[0].Point)
	for _, e := range n.Entries[1:] {
		r.ExpandPoint(e.Point)
	}
	return r
}

// splitInternal performs a quadratic split of an overflowing internal node.
func (t *Tree) splitInternal(n *Node) *Node {
	rects := make([]Rect, len(n.Children))
	for i, c := range n.Children {
		rects[i] = c.MBR
	}
	a, b := quadraticSplit(rects, t.min)
	oldKids := n.Children
	n.Children = nil
	sib := &Node{}
	for _, i := range a {
		n.Children = append(n.Children, oldKids[i])
	}
	for _, i := range b {
		sib.Children = append(sib.Children, oldKids[i])
	}
	n.MBR = recomputeInternalMBR(n)
	sib.MBR = recomputeInternalMBR(sib)
	n.recomputeSize()
	sib.recomputeSize()
	return sib
}

func recomputeInternalMBR(n *Node) Rect {
	r := n.Children[0].MBR.Clone()
	for _, c := range n.Children[1:] {
		r.Expand(c.MBR)
	}
	return r
}

// quadraticSplit partitions rect indexes into two groups with Guttman's
// quadratic pick-seeds / pick-next heuristics, respecting the minimum fill.
func quadraticSplit(rects []Rect, minFill int) (a, b []int) {
	// Pick seeds: the pair wasting the most volume if grouped.
	seedA, seedB, worst := 0, 1, -1.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			joined := rects[i].Clone()
			joined.Expand(rects[j])
			waste := joined.Volume() - rects[i].Volume() - rects[j].Volume()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	a, b = []int{seedA}, []int{seedB}
	mbrA, mbrB := rects[seedA].Clone(), rects[seedB].Clone()
	remaining := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != seedA && i != seedB {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Force-assign to satisfy minimum fill.
		if len(a)+len(remaining) == minFill {
			for _, i := range remaining {
				a = append(a, i)
				mbrA.Expand(rects[i])
			}
			break
		}
		if len(b)+len(remaining) == minFill {
			for _, i := range remaining {
				b = append(b, i)
				mbrB.Expand(rects[i])
			}
			break
		}
		// Pick next: the rect with the largest preference difference.
		bestIdx, bestDiff, bestPos := -1, -1.0, 0
		for pos, i := range remaining {
			dA := mbrA.EnlargementVolume(rects[i])
			dB := mbrB.EnlargementVolume(rects[i])
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx, bestPos = diff, i, pos
			}
		}
		dA := mbrA.EnlargementVolume(rects[bestIdx])
		dB := mbrB.EnlargementVolume(rects[bestIdx])
		toA := dA < dB
		if dA == dB {
			toA = mbrA.Volume() < mbrB.Volume() ||
				(mbrA.Volume() == mbrB.Volume() && len(a) <= len(b))
		}
		if toA {
			a = append(a, bestIdx)
			mbrA.Expand(rects[bestIdx])
		} else {
			b = append(b, bestIdx)
			mbrB.Expand(rects[bestIdx])
		}
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
	}
	return a, b
}

// Search appends to dst the entries whose points lie inside query and
// returns it, counting node visits into c (may be nil).
func (t *Tree) Search(query Rect, dst []Entry, c *stats.Counters) []Entry {
	if t.root == nil {
		return dst
	}
	return t.search(t.root, query, dst, c)
}

func (t *Tree) search(n *Node, query Rect, dst []Entry, c *stats.Counters) []Entry {
	if c != nil {
		c.NodesVisited++
		if n.Leaf() {
			c.LeavesVisited++
		}
	}
	if n.Leaf() {
		for _, e := range n.Entries {
			if c != nil {
				c.PointsVisited++
			}
			if query.ContainsPoint(e.Point) {
				dst = append(dst, e)
			}
		}
		return dst
	}
	for _, child := range n.Children {
		if child.MBR.Intersects(query) {
			dst = t.search(child, query, dst, c)
		}
	}
	return dst
}

// Leaves appends all leaf nodes under n in depth-first order to dst.
func Leaves(n *Node, dst []*Node) []*Node {
	if n == nil {
		return dst
	}
	if n.Leaf() {
		return append(dst, n)
	}
	for _, c := range n.Children {
		dst = Leaves(c, dst)
	}
	return dst
}

// CheckInvariants verifies structural soundness: MBR containment, fill
// bounds (except root), and entry/child exclusivity. Used by tests.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("rtree: nil root with size %d", t.size)
		}
		return nil
	}
	counted, err := t.check(t.root, true)
	if err != nil {
		return err
	}
	if counted != t.size {
		return fmt.Errorf("rtree: size %d but counted %d entries", t.size, counted)
	}
	return nil
}

func (t *Tree) check(n *Node, isRoot bool) (int, error) {
	if err := n.MBR.validate(); err != nil {
		return 0, err
	}
	if n.Leaf() {
		if n.Size != len(n.Entries) {
			return 0, fmt.Errorf("rtree: leaf Size %d != %d entries", n.Size, len(n.Entries))
		}
		if len(n.Entries) == 0 {
			return 0, fmt.Errorf("rtree: empty leaf")
		}
		if len(n.Entries) > t.max {
			return 0, fmt.Errorf("rtree: leaf overflow %d > %d", len(n.Entries), t.max)
		}
		for _, e := range n.Entries {
			if !n.MBR.ContainsPoint(e.Point) {
				return 0, fmt.Errorf("rtree: leaf MBR does not contain entry %d", e.Index)
			}
		}
		return len(n.Entries), nil
	}
	if len(n.Children) == 0 {
		return 0, fmt.Errorf("rtree: internal node without children")
	}
	if len(n.Children) > t.max {
		return 0, fmt.Errorf("rtree: internal overflow %d > %d", len(n.Children), t.max)
	}
	if !isRoot && len(n.Children) < 2 {
		return 0, fmt.Errorf("rtree: internal underflow")
	}
	total := 0
	for _, c := range n.Children {
		cover := n.MBR.Clone()
		cover.Expand(c.MBR)
		if cover.Volume() != n.MBR.Volume() || !vec.Equal(cover.Lo, n.MBR.Lo) || !vec.Equal(cover.Hi, n.MBR.Hi) {
			return 0, fmt.Errorf("rtree: parent MBR does not cover child")
		}
		sub, err := t.check(c, false)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	if n.Size != total {
		return 0, fmt.Errorf("rtree: internal Size %d != %d descendants", n.Size, total)
	}
	return total, nil
}
