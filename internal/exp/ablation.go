package exp

import (
	"gridrank/internal/algo"
	"gridrank/internal/dataset"
	"gridrank/internal/grid"
)

func init() {
	register(Experiment{
		ID:    "ablation",
		Paper: "(ours) design ablations",
		Title: "Domin buffer, adaptive grid, and sparse-weight optimization, each on/off",
		Run:   runAblation,
	})
}

// runAblation quantifies the design choices DESIGN.md calls out:
//
//  1. the Domin buffer of Algorithm 1 (shared dominating-point counts),
//  2. the future-work adaptive quantile grid vs the paper's equal-width
//     grid on skewed (exponential) data, and
//  3. the future-work sparse-weight optimization on few-interest users.
//
// Each row reports time and exact multiplications with the feature on and
// off; answers are identical by construction (cross-validated in tests).
func runAblation(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	rng := cfg.rng()
	const d = 6

	// 1. Domin buffer, uniform data, RKR workload (where the buffer
	// pre-counts dominators for every weight).
	domin := &Table{
		Title:   "Ablation 1: Domin buffer (UN data, d=6, RKR)",
		Columns: []string{"variant", "avg ms/query", "mults/query"},
	}
	{
		P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, dataset.DefaultRange)
		W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
		qs := pickQueries(rng, P.Points, cfg.Queries)
		on := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
		off := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
		off.DisableDomin = true
		mOn := measureRKR(on, qs, cfg.K)
		mOff := measureRKR(off, qs, cfg.K)
		domin.AddRow("GIR with Domin", ms(mOn.avg), itoa64(mOn.perQueryMults()))
		domin.AddRow("GIR without Domin", ms(mOff.avg), itoa64(mOff.perQueryMults()))
		simOn := algo.NewSIM(P.Points, W.Points)
		simOff := algo.NewSIM(P.Points, W.Points)
		simOff.DisableDomin = true
		sOn := measureRKR(simOn, qs, cfg.K)
		sOff := measureRKR(simOff, qs, cfg.K)
		domin.AddRow("SIM with Domin", ms(sOn.avg), itoa64(sOn.perQueryMults()))
		domin.AddRow("SIM without Domin", ms(sOff.avg), itoa64(sOff.perQueryMults()))
	}

	// 2. Equal-width vs adaptive grid on exponential (skewed) data.
	adaptive := &Table{
		Title:   "Ablation 2: equal-width vs adaptive quantile grid (EX data, d=6, RKR)",
		Columns: []string{"grid", "avg ms/query", "mults/query", "refine rate"},
	}
	{
		P := dataset.GenerateProducts(rng, dataset.Exponential, cfg.SizeP, d, dataset.DefaultRange)
		W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
		qs := pickQueries(rng, P.Points, cfg.Queries)
		for _, v := range []struct {
			name string
			gir  *algo.GIR
		}{
			{"equal-width", algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)},
			{"adaptive", algo.NewGIRWithBounder(P.Points, W.Points,
				grid.NewAdaptive(cfg.N, P.Points, W.Points, P.Range))},
		} {
			m := measureRKR(v.gir, qs, cfg.K)
			adaptive.AddRow(v.name, ms(m.avg), itoa64(m.perQueryMults()),
				pct(1-m.counters.FilterRate()))
		}
	}

	// 3. Dense vs sparse GIR on sparse preferences (3 of 20 attributes).
	sparse := &Table{
		Title:   "Ablation 3: dense vs sparse GIR (UN data, d=20, 3 non-zero weights, RKR)",
		Columns: []string{"variant", "avg ms/query", "mults/query"},
	}
	{
		P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, 20, dataset.DefaultRange)
		W := dataset.SparseWeights(rng, cfg.SizeW, 20, 3)
		qs := pickQueries(rng, P.Points, cfg.Queries)
		dense := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
		sp := algo.NewSparseGIR(P.Points, W.Points, P.Range, cfg.N)
		mDense := measureRKR(dense, qs, cfg.K)
		mSparse := measureRKR(sp, qs, cfg.K)
		sparse.AddRow("dense GIR", ms(mDense.avg), itoa64(mDense.perQueryMults()))
		sparse.AddRow("sparse GIR", ms(mSparse.avg), itoa64(mSparse.perQueryMults()))
	}
	return []*Table{domin, adaptive, sparse}, nil
}
