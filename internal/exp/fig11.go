package exp

import (
	"gridrank/internal/algo"
	"gridrank/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Paper: "Figure 11",
		Title: "High-dimensional performance (d = 10–50): CPU time and pairwise computations",
		Run:   runFig11,
	})
}

// runFig11 reproduces the high-dimension sweep. The paper's claims: the
// tree methods blow up (overlapping MBRs, no prunable volume) and perform
// MORE pairwise computations than a plain scan, while GIR grows only
// gently with d. GIR and SIM access the same number of pairs ("SCAN" in
// the paper's plots); GIR's advantage is that almost none of those
// accesses require a multiplication.
func runFig11(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	timeRTK := &Table{
		Title:   "Figure 11a (RTK): avg ms/query",
		Columns: []string{"d", "GIR", "SIM", "BBR"},
	}
	compRTK := &Table{
		Title:   "Figure 11b (RTK): avg pair accesses per query (SCAN = GIR = SIM) and exact multiplications",
		Columns: []string{"d", "SCAN accesses (GIR)", "SCAN accesses (SIM)", "BBR accesses", "GIR mults", "SIM mults", "BBR mults"},
	}
	timeRKR := &Table{
		Title:   "Figure 11c (RKR): avg ms/query",
		Columns: []string{"d", "GIR", "SIM", "MPA"},
	}
	compRKR := &Table{
		Title:   "Figure 11d (RKR): avg pair accesses per query and exact multiplications",
		Columns: []string{"d", "SCAN accesses (GIR)", "SCAN accesses (SIM)", "MPA accesses", "GIR mults", "SIM mults", "MPA mults"},
	}
	rng := cfg.rng()
	for _, d := range []int{10, 20, 30, 40, 50} {
		cfg.logf("fig11: d=%d\n", d)
		P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, dataset.DefaultRange)
		W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
		qs := pickQueries(rng, P.Points, cfg.Queries)

		gir := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
		sim := algo.NewSIM(P.Points, W.Points)
		bbr := algo.NewBBR(P.Points, W.Points, cfg.Capacity)
		mpa, err := algo.NewMPA(P.Points, W.Points, cfg.Capacity, 5)
		if err != nil {
			return nil, err
		}

		g := measureRTK(gir, qs, cfg.K)
		s := measureRTK(sim, qs, cfg.K)
		b := measureRTK(bbr, qs, cfg.K)
		timeRTK.AddRow(itoa(d), ms(g.avg), ms(s.avg), ms(b.avg))
		compRTK.AddRow(itoa(d),
			itoa64(g.perQueryAccesses()), itoa64(s.perQueryAccesses()), itoa64(b.perQueryAccesses()),
			itoa64(g.perQueryMults()), itoa64(s.perQueryMults()), itoa64(b.perQueryMults()))

		g = measureRKR(gir, qs, cfg.K)
		s = measureRKR(sim, qs, cfg.K)
		m := measureRKR(mpa, qs, cfg.K)
		timeRKR.AddRow(itoa(d), ms(g.avg), ms(s.avg), ms(m.avg))
		compRKR.AddRow(itoa(d),
			itoa64(g.perQueryAccesses()), itoa64(s.perQueryAccesses()), itoa64(m.perQueryAccesses()),
			itoa64(g.perQueryMults()), itoa64(s.perQueryMults()), itoa64(m.perQueryMults()))
	}
	return []*Table{timeRTK, compRTK, timeRKR, compRKR}, nil
}

func itoa64(n int64) string { return itoa(int(n)) }
