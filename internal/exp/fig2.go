package exp

import (
	"gridrank/internal/algo"
	"gridrank/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Paper: "Figure 2",
		Title: "Tree-based algorithms (BBR, MPA) vs simple scan (SIM) on varying d",
		Run:   runFig2,
	})
}

// runFig2 reproduces the motivation figure: CPU time of the tree-based
// methods against the simple scan as dimensionality grows from 2 to 20.
// The paper's claim: the trees win only in very low dimensions and fall
// behind SIM — badly — as d grows.
func runFig2(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	rtk := &Table{
		Title:   "Figure 2 (RTK): avg CPU time per query, ms",
		Columns: []string{"d", "SIM", "BBR"},
	}
	rkr := &Table{
		Title:   "Figure 2 (RKR): avg CPU time per query, ms",
		Columns: []string{"d", "SIM", "MPA"},
	}
	rng := cfg.rng()
	for _, d := range []int{2, 4, 6, 8, 12, 16, 20} {
		cfg.logf("fig2: d=%d\n", d)
		P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, dataset.DefaultRange)
		W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
		qs := pickQueries(rng, P.Points, cfg.Queries)

		sim := algo.NewSIM(P.Points, W.Points)
		bbr := algo.NewBBR(P.Points, W.Points, cfg.Capacity)
		mpa, err := algo.NewMPA(P.Points, W.Points, cfg.Capacity, 5)
		if err != nil {
			return nil, err
		}

		simRTK := measureRTK(sim, qs, cfg.K)
		bbrRTK := measureRTK(bbr, qs, cfg.K)
		rtk.AddRow(itoa(d), ms(simRTK.avg), ms(bbrRTK.avg))

		simRKR := measureRKR(sim, qs, cfg.K)
		mpaRKR := measureRKR(mpa, qs, cfg.K)
		rkr.AddRow(itoa(d), ms(simRKR.avg), ms(mpaRKR.avg))
	}
	return []*Table{rtk, rkr}, nil
}
