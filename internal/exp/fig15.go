package exp

import (
	"gridrank/internal/algo"
	"gridrank/internal/dataset"
	"gridrank/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig15a",
		Paper: "Figure 15a",
		Title: "Percentage of original data points visited per query, varying d",
		Run:   runFig15a,
	})
	register(Experiment{
		ID:    "fig15b",
		Paper: "Figure 15b",
		Title: "Grid-index filtering rate vs partition count n (d=20)",
		Run:   runFig15b,
	})
}

// runFig15a reproduces the accessed-data figure: the fraction of original
// (full-precision) points each algorithm touches per (w, p) opportunity.
// The paper's claim: the R-tree degenerates to scanning all leaves in
// high d, while GIR touches only the small refinement set.
func runFig15a(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:   "Figure 15a: original data points visited, % of |P|·|W| opportunities (RTK workload)",
		Columns: []string{"d", "GIR", "SIM", "BBR", "MPA(rkr)"},
	}
	rng := cfg.rng()
	for _, d := range []int{4, 8, 12, 16, 20} {
		cfg.logf("fig15a: d=%d\n", d)
		P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, dataset.DefaultRange)
		W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
		qs := pickQueries(rng, P.Points, cfg.Queries)
		opportunities := float64(len(P.Points)) * float64(len(W.Points)) * float64(len(qs))

		gir := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
		sim := algo.NewSIM(P.Points, W.Points)
		bbr := algo.NewBBR(P.Points, W.Points, cfg.Capacity)
		mpa, err := algo.NewMPA(P.Points, W.Points, cfg.Capacity, 5)
		if err != nil {
			return nil, err
		}

		visited := func(c stats.Counters) string {
			return pct(float64(c.PointsVisited) / opportunities)
		}
		t.AddRow(itoa(d),
			visited(measureRTK(gir, qs, cfg.K).counters),
			visited(measureRTK(sim, qs, cfg.K).counters),
			visited(measureRTK(bbr, qs, cfg.K).counters),
			visited(measureRKR(mpa, qs, cfg.K).counters),
		)
	}
	return []*Table{t}, nil
}

// runFig15b reproduces the partition-count study at d=20: the fraction of
// scanned points decided by Grid bounds alone, for n from 4 to 128. Both
// the strict examined-pair rate and the workload rate (crediting
// early-termination skips, the paper's accounting) are reported.
func runFig15b(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	const d = 20
	t := &Table{
		Title:   "Figure 15b: Grid-index filtering at d=20",
		Columns: []string{"n", "examined-pair rate", "workload rate", "grid memory (bytes)"},
	}
	rng := cfg.rng()
	P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
	qs := pickQueries(rng, P.Points, cfg.Queries)
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		cfg.logf("fig15b: n=%d\n", n)
		gir := algo.NewGIR(P.Points, W.Points, P.Range, n)
		var c stats.Counters
		for _, q := range qs {
			gir.ReverseKRanks(q, cfg.K, &c)
		}
		total := int64(len(P.Points)) * int64(len(W.Points)) * c.Queries
		t.AddRow(itoa(n),
			pct(c.FilterRate()),
			pct(1-float64(c.Refinements)/float64(total)),
			itoa(gir.Grid().MemoryBytes()))
	}
	return []*Table{t}, nil
}
