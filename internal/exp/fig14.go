package exp

import (
	"gridrank/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "fig14",
		Paper: "Figure 14",
		Title: "Effect of k (100–500) on uniform data, d=6",
		Run:   runFig14,
	})
}

// runFig14 reproduces the k sensitivity study on uniform synthetic data.
// The paper's claim: every algorithm is essentially flat in k because
// k ≪ |P|, |W|.
func runFig14(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	rng := cfg.rng()
	const d = 6
	P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
	ks := []int{100, 200, 300, 400, 500}
	rtk := sweepKRTK(cfg, rng, "Figure 14 RTK (UN data)", P, W, ks)
	rkr, err := sweepKRKR(cfg, rng, "Figure 14 RKR (UN data)", P, W, ks)
	if err != nil {
		return nil, err
	}
	return []*Table{rtk, rkr}, nil
}
