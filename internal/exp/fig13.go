package exp

import (
	"gridrank/internal/algo"
	"gridrank/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Paper: "Figure 13",
		Title: "Scalability with varying |P| and |W| (d=6, k=100)",
		Run:   runFig13,
	})
}

// runFig13 reproduces the scalability sweep: growing |P| with |W| fixed
// and vice versa. The paper's claim: GIR's advantage over both the trees
// and SIM widens with cardinality. The paper's tiers reach 5M; here the
// tiers are multiples of the configured base so any scale can be
// requested.
func runFig13(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	tiers := []float64{0.5, 1, 2, 4}
	rng := cfg.rng()
	const d = 6

	varyP := &Table{
		Title:   "Figure 13a/b: varying |P|, fixed |W|: avg ms/query (RTK and RKR)",
		Columns: []string{"|P|", "GIR rtk", "SIM rtk", "BBR rtk", "GIR rkr", "SIM rkr", "MPA rkr"},
	}
	for _, tier := range tiers {
		nP := int(float64(cfg.SizeP) * tier)
		cfg.logf("fig13: |P|=%d\n", nP)
		P := dataset.GenerateProducts(rng, dataset.Uniform, nP, d, dataset.DefaultRange)
		W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
		row, err := scalabilityRow(cfg, sizeLabel(nP), P, W)
		if err != nil {
			return nil, err
		}
		varyP.AddRow(row...)
	}

	varyW := &Table{
		Title:   "Figure 13c/d: varying |W|, fixed |P|: avg ms/query (RTK and RKR)",
		Columns: []string{"|W|", "GIR rtk", "SIM rtk", "BBR rtk", "GIR rkr", "SIM rkr", "MPA rkr"},
	}
	for _, tier := range tiers {
		nW := int(float64(cfg.SizeW) * tier)
		cfg.logf("fig13: |W|=%d\n", nW)
		P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, dataset.DefaultRange)
		W := dataset.GenerateWeights(rng, dataset.Uniform, nW, d)
		row, err := scalabilityRow(cfg, sizeLabel(nW), P, W)
		if err != nil {
			return nil, err
		}
		varyW.AddRow(row...)
	}
	return []*Table{varyP, varyW}, nil
}

func scalabilityRow(cfg Config, label string, P, W *dataset.Dataset) ([]string, error) {
	gir := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
	sim := algo.NewSIM(P.Points, W.Points)
	bbr := algo.NewBBR(P.Points, W.Points, cfg.Capacity)
	mpa, err := algo.NewMPA(P.Points, W.Points, cfg.Capacity, 5)
	if err != nil {
		return nil, err
	}
	qs := pickQueries(cfg.rng(), P.Points, cfg.Queries)
	return []string{
		label,
		ms(measureRTK(gir, qs, cfg.K).avg),
		ms(measureRTK(sim, qs, cfg.K).avg),
		ms(measureRTK(bbr, qs, cfg.K).avg),
		ms(measureRKR(gir, qs, cfg.K).avg),
		ms(measureRKR(sim, qs, cfg.K).avg),
		ms(measureRKR(mpa, qs, cfg.K).avg),
	}, nil
}
