package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gridrank/internal/algo"
	"gridrank/internal/dataset"
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Paper: "Table 2",
		Title: "Time for reading data vs processing RRQ vs pairwise computations (d=6)",
		Run:   runTable2,
	})
}

// runTable2 reproduces the cost-breakdown observation that motivates the
// whole paper: reading the data is negligible; the pairwise computations
// dominate the processing time. For each cardinality we (1) write and
// re-read the binary data files, (2) run the SIM reverse top-k workload,
// and (3) time the same number of raw inner products the workload
// performed, isolating the pairwise share.
func runTable2(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	const d = 6
	t := &Table{
		Title:   "Table 2: elapsed time (ms), d=6",
		Columns: []string{"Data size", "Reading data", "Processing RRQ", "-Pairwise computations"},
	}
	dir, err := os.MkdirTemp("", "gridrank-table2-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rng := cfg.rng()
	sizes := []int{1000, 10000}
	if cfg.SizeP > 10000 {
		sizes = append(sizes, cfg.SizeP)
	}
	for _, n := range sizes {
		cfg.logf("table2: n=%d\n", n)
		P := dataset.GenerateProducts(rng, dataset.Uniform, n, d, dataset.DefaultRange)
		W := dataset.GenerateWeights(rng, dataset.Uniform, n, d)

		pPath := filepath.Join(dir, fmt.Sprintf("p-%d.grd", n))
		wPath := filepath.Join(dir, fmt.Sprintf("w-%d.grd", n))
		if err := dataset.SaveBinary(pPath, P); err != nil {
			return nil, err
		}
		if err := dataset.SaveBinary(wPath, W); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := dataset.LoadBinary(pPath); err != nil {
			return nil, err
		}
		if _, err := dataset.LoadBinary(wPath); err != nil {
			return nil, err
		}
		readTime := time.Since(start)

		sim := algo.NewSIM(P.Points, W.Points)
		qs := pickQueries(rng, P.Points, cfg.Queries)
		var c stats.Counters
		start = time.Now()
		for _, q := range qs {
			sim.ReverseTopK(q, cfg.K, &c)
		}
		procTime := time.Since(start)

		pairTime := timePairwise(P.Points, W.Points, c.PairwiseMults)

		t.AddRow(sizeLabel(n), ms(readTime), ms(procTime), ms(pairTime))
	}
	return []*Table{t}, nil
}

// timePairwise times count raw inner products over the data, cycling
// through (p, w) pairs the way the scan does.
func timePairwise(P, W []vec.Vector, count int64) time.Duration {
	if count <= 0 {
		return 0
	}
	var sink float64
	start := time.Now()
	pi, wi := 0, 0
	for i := int64(0); i < count; i++ {
		sink += vec.Dot(W[wi], P[pi])
		pi++
		if pi == len(P) {
			pi = 0
			wi++
			if wi == len(W) {
				wi = 0
			}
		}
	}
	elapsed := time.Since(start)
	if sink == 0 { // defeat dead-code elimination; never true for real data
		fmt.Fprintln(os.Stderr, "timePairwise: zero checksum")
	}
	return elapsed
}

func sizeLabel(n int) string {
	if n%1000 == 0 {
		return fmt.Sprintf("%dK", n/1000)
	}
	return itoa(n)
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
