package exp

import (
	"fmt"

	"gridrank/internal/dataset"
	"gridrank/internal/rtree"
)

func init() {
	register(Experiment{
		ID:    "table3",
		Paper: "Table 3",
		Title: "Observation of accessed MBRs of R-tree in query, varying d",
		Run:   runTable3,
	})
}

// runTable3 reproduces the MBR pathology table: R-trees over uniform data
// with a fixed leaf capacity develop MBRs whose diagonals approach the
// space diagonal and which nearly all intersect even a 1%-volume range
// query once d exceeds ~6.
func runTable3(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title: fmt.Sprintf("Table 3: leaf MBR statistics, %d points, capacity %d",
			cfg.SizeP, cfg.Capacity),
		Columns: []string{"Dimensionality", "#MBR", "diagonal length", "Shape", "Overlaps in Query(1%)", "Volume"},
	}
	rng := cfg.rng()
	for _, d := range []int{3, 6, 9, 12, 15, 18, 21, 24} {
		cfg.logf("table3: d=%d\n", d)
		P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, dataset.DefaultRange)
		tree := rtree.Bulk(P.Points, cfg.Capacity)
		st := rtree.CollectLeafStats(tree)
		overlap := rtree.OverlapFraction(tree, P.Range, 0.01, 20, rng)
		t.AddRow(
			itoa(d),
			itoa(st.NumMBR),
			fmt.Sprintf("%.1f", st.AvgDiagonal),
			fmt.Sprintf("%.1f", st.AvgShape),
			pct(overlap),
			fmt.Sprintf("%.2e", st.AvgVolume),
		)
	}
	return []*Table{t}, nil
}
