package exp

import (
	"fmt"

	"gridrank/internal/algo"
	"gridrank/internal/dataset"
	"gridrank/internal/model"
	"gridrank/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "model",
		Paper: "Section 5 (Theorem 1, Eq. 10, Eq. 28)",
		Title: "Analytical model: required partitions, predicted vs measured filtering, R-tree volume bound",
		Run:   runModel,
	})
}

// runModel evaluates the paper's analytical results directly: Theorem 1's
// required n per dimension, the worst-case filtering guarantee at the
// default n=32, the measured examined-pair rate for comparison, and the
// Section 5.2 bound on prunable volume for tree-based methods.
func runModel(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title: "Theorem 1 and Section 5.2 model vs measurement (ε=1%)",
		Columns: []string{
			"d", "required n", "pow2 n", "F_worst(n=32)",
			"measured examined rate (n=32)", "R-tree Vol_max (g=d/2)",
		},
	}
	rng := cfg.rng()
	for _, d := range []int{2, 6, 10, 20, 30, 50} {
		cfg.logf("model: d=%d\n", d)
		n, err := model.RequiredPartitions(d, 0.01)
		if err != nil {
			return nil, err
		}
		p2, err := model.RequiredPartitionsPow2(d, 0.01)
		if err != nil {
			return nil, err
		}
		// Measure the examined-pair rate on a reduced workload.
		sizeP, sizeW := cfg.SizeP/2, cfg.SizeW/2
		if sizeP < 500 {
			sizeP = 500
		}
		if sizeW < 500 {
			sizeW = 500
		}
		P := dataset.GenerateProducts(rng, dataset.Uniform, sizeP, d, dataset.DefaultRange)
		W := dataset.GenerateWeights(rng, dataset.Uniform, sizeW, d)
		gir := algo.NewGIR(P.Points, W.Points, P.Range, 32)
		var c stats.Counters
		for _, q := range pickQueries(rng, P.Points, cfg.Queries) {
			gir.ReverseKRanks(q, cfg.K, &c)
		}
		t.AddRow(
			itoa(d),
			itoa(n),
			itoa(p2),
			pct(model.WorstCaseFiltering(d, 32)),
			pct(c.FilterRate()),
			fmt.Sprintf("%.3e", model.RTreeFilterVolume(d/2, 0)),
		)
	}

	// The worked example of Equation 28.
	ex := &Table{
		Title:   "Eq. 28 worked example: d=20, ε=1%",
		Columns: []string{"quantity", "value"},
	}
	halfDelta, err := model.InvUpperTail(0.495)
	if err != nil {
		return nil, err
	}
	ex.AddRow("δ/2 with Φ(δ/2)=0.495", fmt.Sprintf("%.4f", halfDelta))
	n20, err := model.RequiredPartitions(20, 0.01)
	if err != nil {
		return nil, err
	}
	ex.AddRow("required n (exact)", itoa(n20))
	p20, err := model.RequiredPartitionsPow2(20, 0.01)
	if err != nil {
		return nil, err
	}
	ex.AddRow("required n (power of two, paper's choice)", itoa(p20))
	ex.AddRow("Grid memory at n=32 (bytes)", itoa(32*32*8))
	return []*Table{t, ex}, nil
}
