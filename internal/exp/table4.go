package exp

import (
	"fmt"

	"gridrank/internal/algo"
	"gridrank/internal/dataset"
	"gridrank/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "table4",
		Paper: "Table 4",
		Title: "Filtering performance of Grid-index across data distributions (d=6, n=32)",
		Run:   runTable4,
	})
}

// runTable4 measures the Grid-index filtering rate for every combination
// of P distribution (uniform, normal, exponential) and W distribution,
// during a reverse k-ranks workload at the paper's d=6, n=32 setting.
//
// Two rates are reported per cell: "examined" counts only points the scan
// actually classified (filtered / (filtered + refined)), while "workload"
// additionally credits the points never examined thanks to early
// termination — the more generous accounting that matches the paper's
// >96% levels.
func runTable4(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	const d = 6
	dists := []dataset.Distribution{dataset.Uniform, dataset.Normal, dataset.Exponential}
	ex := &Table{
		Title:   "Table 4 (examined-pair filtering rate), d=6, n=32",
		Columns: []string{"W \\ P", "Uniform", "Normal", "Exponential"},
	}
	wl := &Table{
		Title:   "Table 4 (workload filtering rate incl. early-termination skips)",
		Columns: []string{"W \\ P", "Uniform", "Normal", "Exponential"},
	}
	rng := cfg.rng()
	for _, wd := range dists {
		exRow := []string{distName(wd)}
		wlRow := []string{distName(wd)}
		for _, pd := range dists {
			cfg.logf("table4: P=%s W=%s\n", pd, wd)
			P := dataset.GenerateProducts(rng, pd, cfg.SizeP, d, dataset.DefaultRange)
			W := dataset.GenerateWeights(rng, wd, cfg.SizeW, d)
			gir := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
			qs := pickQueries(rng, P.Points, cfg.Queries)
			var c stats.Counters
			for _, q := range qs {
				gir.ReverseKRanks(q, cfg.K, &c)
			}
			exRow = append(exRow, pct(c.FilterRate()))
			// Workload rate: of all |P|·|W| conceptual pairs per query,
			// only the refinements required an exact score.
			total := int64(len(P.Points)) * int64(len(W.Points)) * c.Queries
			wlRow = append(wlRow, pct(1-float64(c.Refinements)/float64(total)))
		}
		ex.AddRow(exRow...)
		wl.AddRow(wlRow...)
	}
	return []*Table{ex, wl}, nil
}

func distName(d dataset.Distribution) string {
	switch d {
	case dataset.Uniform:
		return "Uniform"
	case dataset.Normal:
		return "Normal"
	case dataset.Exponential:
		return "Exponential"
	case dataset.Clustered:
		return "Clustered"
	case dataset.AntiCorrelated:
		return "Anti-correlated"
	default:
		return fmt.Sprintf("%v", d)
	}
}
