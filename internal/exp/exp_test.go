package exp

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps every experiment's test run under a second or two.
func tinyConfig() Config {
	return Config{Seed: 3, SizeP: 400, SizeW: 200, Queries: 2, K: 10, N: 16, Capacity: 16}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "table2", "table3", "table4", "fig8",
		"fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15a", "fig15b", "model", "ablation", "baselines", "throughput",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown id should fail")
	}
	reg := Registry()
	for i := 1; i < len(reg); i++ {
		if reg[i-1].ID >= reg[i].ID {
			t.Errorf("Registry not sorted: %q >= %q", reg[i-1].ID, reg[i].ID)
		}
	}
}

// Every registered experiment must run to completion at tiny scale and
// produce well-formed, renderable tables. This is the smoke test that
// keeps all paper artifacts reproducible.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests in -short mode")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(tinyConfig())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("%s produced a degenerate table: %+v", e.ID, tb)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("%s: row width %d != %d columns", e.ID, len(row), len(tb.Columns))
					}
				}
				var buf bytes.Buffer
				if err := tb.Render(&buf); err != nil {
					t.Fatalf("%s render: %v", e.ID, err)
				}
				if !strings.Contains(buf.String(), tb.Title) {
					t.Fatalf("%s render missing title", e.ID)
				}
				buf.Reset()
				if err := tb.CSV(&buf); err != nil {
					t.Fatalf("%s csv: %v", e.ID, err)
				}
				if lines := strings.Count(buf.String(), "\n"); lines != len(tb.Rows)+1 {
					t.Fatalf("%s csv has %d lines, want %d", e.ID, lines, len(tb.Rows)+1)
				}
			}
		})
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
	}
	tb.AddRow("x", "1")
	tb.AddRow("longer-cell", "2")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header, separator, two rows, plus the title line.
	if len(lines) != 4+1 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	// Separator must be as wide as the widest cell per column.
	if !strings.Contains(lines[2], strings.Repeat("-", len("longer-cell"))) {
		t.Errorf("separator not sized to data: %q", lines[2])
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := &Table{Title: "q", Columns: []string{"a"}}
	tb.AddRow(`va"l,ue`)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a\n\"va\"\"l,ue\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.SizeP == 0 || c.SizeW == 0 || c.Queries == 0 || c.K == 0 || c.N == 0 || c.Capacity == 0 || c.Seed == 0 {
		t.Errorf("Defaults left zero fields: %+v", c)
	}
	custom := Config{SizeP: 7, K: 3}.Defaults()
	if custom.SizeP != 7 || custom.K != 3 {
		t.Error("Defaults must not override set fields")
	}
}

func TestMsFormatting(t *testing.T) {
	if got := ms(1500 * 1000); got != "1.500" {
		t.Errorf("ms = %q", got)
	}
	if got := pct(0.5); got != "50.00%" {
		t.Errorf("pct = %q", got)
	}
}
