package exp

import (
	"fmt"
	"runtime"
	"time"

	"gridrank/internal/algo"
	"gridrank/internal/dataset"
	"gridrank/internal/grid"
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "baselines",
		Paper: "(ours) full baseline matrix",
		Title: "Every implemented algorithm head-to-head (incl. RTA, sparse, adaptive)",
		Run:   runBaselines,
	})
	register(Experiment{
		ID:    "throughput",
		Paper: "(ours) concurrency",
		Title: "Batch query throughput vs worker count",
		Run:   runThroughput,
	})
}

// runBaselines runs every RTK and RKR implementation — including the RTA
// related-work baseline and the future-work sparse/adaptive variants — on
// one uniform workload, reporting time, multiplications and pair accesses.
func runBaselines(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	const d = 6
	rng := cfg.rng()
	P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
	qs := pickQueries(rng, P.Points, cfg.Queries)

	rtk := &Table{
		Title:   fmt.Sprintf("All RTK algorithms, UN %d×%d, d=%d, k=%d", cfg.SizeP, cfg.SizeW, d, cfg.K),
		Columns: []string{"algorithm", "avg ms/query", "mults/query", "pair accesses/query"},
	}
	mpa, err := algo.NewMPA(P.Points, W.Points, cfg.Capacity, 5)
	if err != nil {
		return nil, err
	}
	adaptiveGIR := algo.NewGIRWithBounder(P.Points, W.Points,
		grid.NewAdaptive(cfg.N, P.Points, W.Points, P.Range))
	for _, a := range []algo.RTKAlgorithm{
		algo.NewGIR(P.Points, W.Points, P.Range, cfg.N),
		adaptiveGIR,
		algo.NewSparseGIR(P.Points, W.Points, P.Range, cfg.N),
		algo.NewSIM(P.Points, W.Points),
		algo.NewBBR(P.Points, W.Points, cfg.Capacity),
		algo.NewRTA(P.Points, W.Points),
	} {
		cfg.logf("baselines rtk: %s\n", a.Name())
		m := measureRTK(a, qs, cfg.K)
		name := a.Name()
		if a == adaptiveGIR {
			name = "GIR-ADAPTIVE"
		}
		rtk.AddRow(name, ms(m.avg), itoa64(m.perQueryMults()), itoa64(m.perQueryAccesses()))
	}

	rkr := &Table{
		Title:   fmt.Sprintf("All RKR algorithms, UN %d×%d, d=%d, k=%d", cfg.SizeP, cfg.SizeW, d, cfg.K),
		Columns: []string{"algorithm", "avg ms/query", "mults/query", "pair accesses/query"},
	}
	for _, a := range []algo.RKRAlgorithm{
		algo.NewGIR(P.Points, W.Points, P.Range, cfg.N),
		adaptiveGIR,
		algo.NewSparseGIR(P.Points, W.Points, P.Range, cfg.N),
		algo.NewSIM(P.Points, W.Points),
		mpa,
	} {
		cfg.logf("baselines rkr: %s\n", a.Name())
		m := measureRKR(a, qs, cfg.K)
		name := a.Name()
		if a == adaptiveGIR {
			name = "GIR-ADAPTIVE"
		}
		rkr.AddRow(name, ms(m.avg), itoa64(m.perQueryMults()), itoa64(m.perQueryAccesses()))
	}
	return []*Table{rtk, rkr}, nil
}

// runThroughput measures reverse k-ranks throughput as query workers
// grow, demonstrating that the immutable index parallelizes linearly up
// to the core count.
func runThroughput(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	const d = 6
	rng := cfg.rng()
	P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
	gir := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
	numQueries := cfg.Queries * 8
	qs := pickQueries(rng, P.Points, numQueries)

	t := &Table{
		Title: fmt.Sprintf("RKR batch throughput, UN %d×%d, d=%d, k=%d, %d queries (GOMAXPROCS=%d)",
			cfg.SizeP, cfg.SizeW, d, cfg.K, numQueries, runtime.GOMAXPROCS(0)),
		Columns: []string{"workers", "total time", "queries/sec", "speedup"},
	}
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		cfg.logf("throughput: %d workers\n", workers)
		elapsed := runParallel(gir, qs, cfg.K, workers)
		if workers == 1 {
			base = elapsed
		}
		qps := float64(numQueries) / elapsed.Seconds()
		t.AddRow(itoa(workers),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", qps),
			fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
	}
	return []*Table{t}, nil
}

func runParallel(gir *algo.GIR, qs []vec.Vector, k, workers int) time.Duration {
	type job struct{ q vec.Vector }
	jobs := make(chan job)
	done := make(chan struct{})
	start := time.Now()
	for w := 0; w < workers; w++ {
		go func() {
			var c stats.Counters
			for j := range jobs {
				gir.ReverseKRanks(j.q, k, &c)
			}
			done <- struct{}{}
		}()
	}
	for _, q := range qs {
		jobs <- job{q: q}
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
	return time.Since(start)
}
