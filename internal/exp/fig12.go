package exp

import (
	"math/rand"

	"gridrank/internal/algo"
	"gridrank/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Paper: "Figure 12",
		Title: "Real-data workloads (COLOR, HOUSE, DIANPING simulators), varying k = 100–500",
		Run:   runFig12,
	})
}

// runFig12 reproduces the real-data evaluation using the statistical
// simulators of DESIGN.md §5: COLOR with RTK, HOUSE with RKR, and
// DIANPING with both, sweeping k. The paper's claims: GIR is consistently
// fastest and every algorithm is nearly flat in k (k ≪ |P|, |W|).
func runFig12(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	rng := cfg.rng()
	ks := []int{100, 200, 300, 400, 500}

	var tables []*Table

	// (a) COLOR + RTK, W uniform.
	color := dataset.ColorProducts(rng, cfg.SizeP)
	wColor := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, color.Dim)
	tables = append(tables, sweepKRTK(cfg, rng, "Figure 12a: COLOR (simulated), RTK", color, wColor, ks))

	// (b) HOUSE + RKR, W uniform.
	house := dataset.HouseProducts(rng, cfg.SizeP)
	wHouse := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, house.Dim)
	t, err := sweepKRKR(cfg, rng, "Figure 12b: HOUSE (simulated), RKR", house, wHouse, ks)
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)

	// (c, d) DIANPING + RTK and RKR, W from the user-profile simulator.
	dp := dataset.DianpingProducts(rng, cfg.SizeP)
	wdp := dataset.DianpingWeights(rng, cfg.SizeW)
	tables = append(tables, sweepKRTK(cfg, rng, "Figure 12c: DIANPING (simulated), RTK", dp, wdp, ks))
	t, err = sweepKRKR(cfg, rng, "Figure 12d: DIANPING (simulated), RKR", dp, wdp, ks)
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	return tables, nil
}

func sweepKRTK(cfg Config, rng *rand.Rand, title string, P, W *dataset.Dataset, ks []int) *Table {
	t := &Table{Title: title + ": avg ms/query", Columns: []string{"k", "GIR", "SIM", "BBR"}}
	gir := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
	sim := algo.NewSIM(P.Points, W.Points)
	bbr := algo.NewBBR(P.Points, W.Points, cfg.Capacity)
	qs := pickQueries(rng, P.Points, cfg.Queries)
	for _, k := range ks {
		cfg.logf("%s: k=%d\n", title, k)
		t.AddRow(itoa(k),
			ms(measureRTK(gir, qs, k).avg),
			ms(measureRTK(sim, qs, k).avg),
			ms(measureRTK(bbr, qs, k).avg))
	}
	return t
}

func sweepKRKR(cfg Config, rng *rand.Rand, title string, P, W *dataset.Dataset, ks []int) (*Table, error) {
	t := &Table{Title: title + ": avg ms/query", Columns: []string{"k", "GIR", "SIM", "MPA"}}
	gir := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
	sim := algo.NewSIM(P.Points, W.Points)
	mpa, err := algo.NewMPA(P.Points, W.Points, cfg.Capacity, 5)
	if err != nil {
		return nil, err
	}
	qs := pickQueries(rng, P.Points, cfg.Queries)
	for _, k := range ks {
		cfg.logf("%s: k=%d\n", title, k)
		t.AddRow(itoa(k),
			ms(measureRKR(gir, qs, k).avg),
			ms(measureRKR(sim, qs, k).avg),
			ms(measureRKR(mpa, qs, k).avg))
	}
	return t, nil
}
