package exp

import (
	"fmt"
	"math"

	"gridrank/internal/dataset"
	"gridrank/internal/grid"
	"gridrank/internal/model"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Paper: "Figure 8",
		Title: "Distribution of Grid-index scores vs normal approximation (d=4, n=4)",
		Run:   runFig8,
	})
}

// runFig8 reproduces the normality observation underpinning Lemma 1: the
// histogram of Grid-approximated scores over random (p, w) pairs at d=4,
// n=4 already tracks the normal curve with the moments of Equation 19.
func runFig8(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	const d, n = 4, 4
	rng := cfg.rng()
	P := dataset.GenerateProducts(rng, dataset.Uniform, cfg.SizeP, d, 1)
	W := dataset.GenerateWeights(rng, dataset.Uniform, cfg.SizeW, d)
	g := grid.New(n, 1, 1)
	pix := grid.NewPointIndex(g, P.Points)
	wix := grid.NewWeightIndex(g, W.Points)

	// Bucket pair scores by the midpoint of their Grid bound interval,
	// into 20 equal buckets over the possible score range [0, d·r).
	const buckets = 20
	counts := make([]int, buckets)
	pairs := 0
	// Sample: every point against a rotating subset of weights.
	step := len(W.Points)/64 + 1
	for pi := 0; pi < pix.Count(); pi++ {
		for wi := pi % step; wi < wix.Count(); wi += step {
			lo, hi := g.Bounds(pix.Row(pi), wix.Row(wi))
			mid := (lo + hi) / 2
			b := int(mid / (float64(d) / buckets))
			if b >= buckets {
				b = buckets - 1
			}
			counts[b]++
			pairs++
		}
	}
	// Moments of the per-dimension sub-score w[i]·p[i]: the weight vectors
	// live on the simplex so E[w[i]] = 1/d; the model of Section 5.3
	// treats the sub-score as uniform on [0, r'), matched here by moment:
	// use the empirical normal fit N(μ', σ') from the sampled scores.
	var sum, sumSq float64
	for b, c := range counts {
		mid := (float64(b) + 0.5) * float64(d) / buckets
		sum += mid * float64(c)
		sumSq += mid * mid * float64(c)
	}
	mean := sum / float64(pairs)
	std := sumSq/float64(pairs) - mean*mean
	if std > 0 {
		std = math.Sqrt(std)
	}

	t := &Table{
		Title: fmt.Sprintf("Figure 8: Grid-index score histogram, d=%d, n=%d (%d pairs), fit N(%.3f, %.3f)",
			d, n, pairs, mean, std),
		Columns: []string{"score bucket", "empirical", "normal fit"},
	}
	for b, c := range counts {
		lo := float64(b) * float64(d) / buckets
		hi := lo + float64(d)/buckets
		mid := (lo + hi) / 2
		emp := float64(c) / float64(pairs)
		fit := 0.0
		if std > 0 {
			fit = model.NormalPDF((mid-mean)/std) / std * (hi - lo)
		}
		t.AddRow(fmt.Sprintf("[%.2f, %.2f)", lo, hi), pct(emp), pct(fit))
	}
	return []*Table{t}, nil
}
