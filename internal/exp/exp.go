// Package exp is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (Section 6). Each experiment is a
// registered runner that builds the workload, executes the algorithms,
// and reports a table whose rows mirror what the paper plots.
//
// Default cardinalities are reduced from the paper's 100K×100K×1000-query
// setting so the whole suite runs in minutes; Config.SizeP/SizeW/Queries
// restore any scale. Absolute times differ from the paper's C++ testbed;
// the shapes (who wins, by what factor, where the crossovers fall) are
// the reproduction target, as recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"gridrank/internal/algo"
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

// Config holds the knobs shared by all experiments.
type Config struct {
	Seed     int64
	SizeP    int       // base |P| (default 5000)
	SizeW    int       // base |W| (default 5000)
	Queries  int       // queries averaged per cell (default 4)
	K        int       // k for top-k / k-ranks (default 100)
	N        int       // Grid-index partitions (default 32)
	Capacity int       // R-tree node capacity (default 64)
	Out      io.Writer // optional progress sink
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SizeP == 0 {
		c.SizeP = 5000
	}
	if c.SizeW == 0 {
		c.SizeW = 5000
	}
	if c.Queries == 0 {
		c.Queries = 4
	}
	if c.K == 0 {
		c.K = 100
	}
	if c.N == 0 {
		c.N = algo.DefaultPartitions
	}
	if c.Capacity == 0 {
		c.Capacity = 64
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// rng returns the experiment's seeded random source.
func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is a registered reproduction of one paper artifact.
type Experiment struct {
	ID    string // harness id, e.g. "fig10"
	Paper string // the artifact it regenerates, e.g. "Figure 10"
	Title string
	Run   func(cfg Config) ([]*Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Registry returns all experiments sorted by ID.
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// measurement is one averaged algorithm run.
type measurement struct {
	avg      time.Duration
	counters stats.Counters
}

// perQueryMults returns the average pairwise multiplications per query.
func (m measurement) perQueryMults() int64 {
	if m.counters.Queries == 0 {
		return 0
	}
	return m.counters.PairwiseMults / m.counters.Queries
}

// perQueryAccesses returns the average number of pairs examined per query
// — the paper's "pairwise computations" axis. For the grid scan this is
// the approximate-vector classifications (each refined pair was already
// classified, so adding PointsVisited would double-count); for the exact
// methods it is the points scored.
func (m measurement) perQueryAccesses() int64 {
	if m.counters.Queries == 0 {
		return 0
	}
	n := m.counters.PointsVisited
	if m.counters.ApproxVisited > 0 {
		n = m.counters.ApproxVisited
	}
	return n / m.counters.Queries
}

func measureRTK(a algo.RTKAlgorithm, queries []vec.Vector, k int) measurement {
	var m measurement
	start := time.Now()
	for _, q := range queries {
		a.ReverseTopK(q, k, &m.counters)
	}
	m.avg = time.Since(start) / time.Duration(len(queries))
	return m
}

func measureRKR(a algo.RKRAlgorithm, queries []vec.Vector, k int) measurement {
	var m measurement
	start := time.Now()
	for _, q := range queries {
		a.ReverseKRanks(q, k, &m.counters)
	}
	m.avg = time.Since(start) / time.Duration(len(queries))
	return m
}

// pickQueries selects cfg.Queries random query points from P (the paper's
// protocol: "the query point q is randomly selected from P").
func pickQueries(rng *rand.Rand, P []vec.Vector, n int) []vec.Vector {
	qs := make([]vec.Vector, n)
	for i := range qs {
		qs[i] = P[rng.Intn(len(P))]
	}
	return qs
}

// ms formats a duration in milliseconds with three significant decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
