package exp

import (
	"fmt"

	"gridrank/internal/algo"
	"gridrank/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Paper: "Figure 10",
		Title: "GIR vs BBR (RTK) and GIR vs MPA (RKR) on synthetic data, d = 2–8",
		Run:   runFig10,
	})
}

// runFig10 reproduces the low-dimension comparison: one table per P
// distribution (UN, CL, AC; W uniform) for each query type. The paper's
// claims: GIR beats BBR beyond d≈4, beats MPA beyond d≈4, and always
// beats SIM by ≥2×; CL data is where the trees hold on longest.
func runFig10(cfg Config) ([]*Table, error) {
	cfg = cfg.Defaults()
	var tables []*Table
	rng := cfg.rng()
	// The paper sweeps P over UN/CL/AC and W over UN/CL (Table 5); the
	// W=CL pairing is run against uniform P, matching the sub-figures.
	combos := []struct{ pd, wd dataset.Distribution }{
		{dataset.Uniform, dataset.Uniform},
		{dataset.Clustered, dataset.Uniform},
		{dataset.AntiCorrelated, dataset.Uniform},
		{dataset.Uniform, dataset.Clustered},
	}
	for _, combo := range combos {
		pd, wd := combo.pd, combo.wd
		rtk := &Table{
			Title:   fmt.Sprintf("Figure 10 RTK, P=%s, W=%s: avg ms/query", distName(pd), distName(wd)),
			Columns: []string{"d", "GIR", "SIM", "BBR"},
		}
		rkr := &Table{
			Title:   fmt.Sprintf("Figure 10 RKR, P=%s, W=%s: avg ms/query", distName(pd), distName(wd)),
			Columns: []string{"d", "GIR", "SIM", "MPA"},
		}
		for _, d := range []int{2, 4, 6, 8} {
			cfg.logf("fig10: P=%s W=%s d=%d\n", pd, wd, d)
			P := dataset.GenerateProducts(rng, pd, cfg.SizeP, d, dataset.DefaultRange)
			W := dataset.GenerateWeights(rng, wd, cfg.SizeW, d)
			qs := pickQueries(rng, P.Points, cfg.Queries)

			gir := algo.NewGIR(P.Points, W.Points, P.Range, cfg.N)
			sim := algo.NewSIM(P.Points, W.Points)
			bbr := algo.NewBBR(P.Points, W.Points, cfg.Capacity)
			mpa, err := algo.NewMPA(P.Points, W.Points, cfg.Capacity, 5)
			if err != nil {
				return nil, err
			}

			rtk.AddRow(itoa(d),
				ms(measureRTK(gir, qs, cfg.K).avg),
				ms(measureRTK(sim, qs, cfg.K).avg),
				ms(measureRTK(bbr, qs, cfg.K).avg))
			rkr.AddRow(itoa(d),
				ms(measureRKR(gir, qs, cfg.K).avg),
				ms(measureRKR(sim, qs, cfg.K).avg),
				ms(measureRKR(mpa, qs, cfg.K).avg))
		}
		tables = append(tables, rtk, rkr)
	}
	return tables, nil
}
