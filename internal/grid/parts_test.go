package grid

import (
	"math/rand"
	"strings"
	"testing"

	"gridrank/internal/bits"
)

// partsFixture builds a grouped index with real duplicate structure
// (quantized attributes force multi-member groups) and packs it, so the
// reassembly tests exercise every stored array.
func partsFixture(t *testing.T) (*Index, *GroupedIndex) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	g := New(8, 100, 1)
	ix := NewPointIndex(g, randomPoints(rng, 120, 3, 100, 4))
	grp := NewGrouped(ix)
	grp.Pack(4)
	return ix, grp
}

// clone32 copies an int32 array so a test can corrupt one field without
// disturbing the fixture.
func clone32(s []int32) []int32 { return append([]int32(nil), s...) }

// TestGroupedFromPartsRoundTrip reassembles a grouped index from its
// own stored arrays, strict and non-strict, and checks the result is
// observably the same index.
func TestGroupedFromPartsRoundTrip(t *testing.T) {
	ix, want := partsFixture(t)
	for _, strict := range []bool{true, false} {
		got, err := GroupedFromParts(ix, want.Rows(), want.MemberOrder(), want.Offsets(),
			want.GroupMap(), want.Single(), want.Packed(), strict)
		if err != nil {
			t.Fatalf("strict=%v: %v", strict, err)
		}
		if got.Groups() != want.Groups() || got.Count() != want.Count() || got.Dim() != want.Dim() {
			t.Fatalf("strict=%v: shape %d/%d/%d, want %d/%d/%d", strict,
				got.Groups(), got.Count(), got.Dim(), want.Groups(), want.Count(), want.Dim())
		}
		if !got.Canonical() {
			t.Errorf("strict=%v: reassembled index not canonical", strict)
		}
		for gid := 0; gid < got.Groups(); gid++ {
			if !got.Packed().EqualRow(gid, got.Row(gid)) {
				t.Fatalf("strict=%v: packed row %d diverges", strict, gid)
			}
		}
	}
}

// TestGroupedFromPartsRejects drives every validation branch: the O(1)
// shape checks that run at both trust levels, the strict content scans,
// and the strict cross-array verification. Each corruption is minimal —
// one field or one element — so a passing rejection pins that exact
// check.
func TestGroupedFromPartsRejects(t *testing.T) {
	ix, g := partsFixture(t)
	rows, members, offsets := g.Rows(), g.MemberOrder(), g.Offsets()
	groupOf, single := g.GroupMap(), g.Single()
	packed := g.Packed()
	d := g.Dim()
	// A group with at least two members (guaranteed: 120 points in at
	// most 4³ quantized cells).
	multi := -1
	for gid := 0; gid < g.Groups(); gid++ {
		if offsets[gid+1]-offsets[gid] >= 2 {
			multi = gid
			break
		}
	}
	if multi < 0 {
		t.Fatal("fixture has no multi-member group")
	}

	try := func(rows []uint8, members, offsets, groupOf, single []int32, p *bits.PackedRows) error {
		_, err := GroupedFromParts(ix, rows, members, offsets, groupOf, single, p, true)
		return err
	}
	cases := []struct {
		name string
		call func() error
	}{
		{"nil index", func() error {
			_, err := GroupedFromParts(nil, rows, members, offsets, groupOf, single, packed, true)
			return err
		}},
		{"rows not multiple of dim", func() error {
			return try(rows[:len(rows)-1], members, offsets, groupOf, single, packed)
		}},
		{"more groups than elements", func() error {
			return try(make([]uint8, (g.Count()+1)*d), members, offsets, groupOf, single, packed)
		}},
		{"offsets length", func() error {
			return try(rows, members, offsets[:len(offsets)-1], groupOf, single, packed)
		}},
		{"member order length", func() error {
			return try(rows, members[:len(members)-1], offsets, groupOf, single, packed)
		}},
		{"singleton cache length", func() error {
			return try(rows, members, offsets, groupOf, single[:len(single)-1], packed)
		}},
		{"offsets span", func() error {
			o := clone32(offsets)
			o[len(o)-1]++
			return try(rows, members, o, groupOf, single, packed)
		}},
		{"packed shape", func() error {
			return try(rows, members, offsets, groupOf, single, bits.NewPackedRows(g.Groups()+1, d, 4))
		}},
		{"offsets not increasing", func() error {
			o := clone32(offsets)
			o[1] = o[2] + 1 // makes group 1's member range negative
			return try(rows, members, o, groupOf, single, packed)
		}},
		{"row cell out of grid", func() error {
			r := append([]uint8(nil), rows...)
			r[0] = uint8(ix.Grid().N())
			return try(r, members, offsets, groupOf, single, packed)
		}},
		{"first-occurrence order", func() error {
			m := clone32(members)
			m[0], m[offsets[1]] = m[offsets[1]], m[0]
			return try(rows, m, offsets, groupOf, single, packed)
		}},
		{"member out of range", func() error {
			m := clone32(members)
			m[len(m)-1] = int32(g.Count())
			return try(rows, m, offsets, groupOf, single, packed)
		}},
		{"members not ascending", func() error {
			m := clone32(members)
			m[offsets[multi]+1] = m[offsets[multi]]
			return try(rows, m, offsets, groupOf, single, packed)
		}},
		{"singleton cache wrong", func() error {
			s := clone32(single)
			if s[0] == -1 {
				s[0] = members[0]
			} else {
				s[0] = -1
			}
			return try(rows, members, offsets, groupOf, s, packed)
		}},
		{"group map out of range", func() error {
			gm := clone32(groupOf)
			gm[0] = int32(g.Groups())
			return try(rows, members, offsets, gm, single, packed)
		}},
		{"group map disagrees with blocks", func() error {
			gm := clone32(groupOf)
			gm[members[0]] = int32(g.Groups() - 1)
			if g.Groups() == 1 {
				t.Skip("needs two groups")
			}
			return try(rows, members, offsets, gm, single, packed)
		}},
		{"row differs from first member's cells", func() error {
			r := append([]uint8(nil), rows...)
			r[0] ^= 1
			// Re-encode the packed side to match, so rejection must come
			// from the row-vs-element-cells cross-check, not EqualRow.
			p := bits.NewPackedRows(g.Groups(), d, 4)
			for gid := 0; gid < g.Groups(); gid++ {
				p.EncodeRow(gid, r[gid*d:(gid+1)*d])
			}
			return try(r, members, offsets, groupOf, single, p)
		}},
		{"packed rows disagree with unpacked", func() error {
			r := append([]uint8(nil), rows...)
			r[0] ^= 1
			p := bits.NewPackedRows(g.Groups(), d, 4)
			for gid := 0; gid < g.Groups(); gid++ {
				p.EncodeRow(gid, r[gid*d:(gid+1)*d])
			}
			return try(rows, members, offsets, groupOf, single, p)
		}},
	}
	for _, c := range cases {
		err := c.call()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.HasPrefix(err.Error(), "grid: ") {
			t.Errorf("%s: error %q not from the grid layer", c.name, err)
		}
	}
}

// TestGroupedFromPartsTrustedSkipsContent documents the mmap trade
// explicitly: a content corruption the strict path rejects assembles
// without error at the non-strict trust level (see GroupedFromParts).
func TestGroupedFromPartsTrustedSkipsContent(t *testing.T) {
	ix, g := partsFixture(t)
	gm := clone32(g.GroupMap())
	gm[0] = int32(g.Groups()) // out of range: strict rejects, trusted must not scan it
	if _, err := GroupedFromParts(ix, g.Rows(), g.MemberOrder(), g.Offsets(), gm, g.Single(), nil, true); err == nil {
		t.Fatal("strict path accepted an out-of-range group map")
	}
	if _, err := GroupedFromParts(ix, g.Rows(), g.MemberOrder(), g.Offsets(), gm, g.Single(), nil, false); err != nil {
		t.Fatalf("non-strict path rejected a content-level corruption it documents trusting: %v", err)
	}
}
