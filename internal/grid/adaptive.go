package grid

import (
	"fmt"
	"sort"

	"gridrank/internal/vec"
)

// Adaptive is the non-equal-width Grid-index sketched in the paper's
// future work (Section 7): instead of cutting the value ranges into equal
// partitions, the boundaries are placed at the empirical quantiles of the
// indexed data, so every cell holds roughly the same number of values.
// On skewed data (exponential attributes, simplex-concentrated weights)
// this keeps the per-cell bound width small where the data actually is,
// recovering filtering power an equal-width grid wastes on empty cells.
//
// The table layout and bound equations are identical to the equal-width
// Grid — only the boundary vectors α_p, α_w differ — so Adaptive satisfies
// the same Bounder contract and plugs into the GIR algorithms unchanged.
type Adaptive struct {
	n      int
	edgesP []float64 // n+1 ascending boundaries for point values
	edgesW []float64 // n+1 ascending boundaries for weight values
	table  []float64 // flattened (n+1)×(n+1) products
	loCols [][]float64
	upCols [][]float64
}

// NewAdaptive builds an n-partition adaptive grid whose point boundaries
// are the pooled quantiles of all attribute values of points and whose
// weight boundaries are the pooled quantiles of all weight components.
// maxP must be at least the largest point attribute that will ever be
// queried (the top boundary); weights are bounded by 1. It panics on
// invalid shape parameters and empty samples, as construction inputs are
// programmatic.
func NewAdaptive(n int, points, weights []vec.Vector, maxP float64) *Adaptive {
	if n < 1 || n > MaxPartitions {
		panic(fmt.Sprintf("grid: partitions %d outside [1, %d]", n, MaxPartitions))
	}
	if len(points) == 0 || len(weights) == 0 {
		panic("grid: adaptive grid needs non-empty samples")
	}
	if maxP <= 0 {
		panic(fmt.Sprintf("grid: non-positive range %v", maxP))
	}
	a := &Adaptive{
		n:      n,
		edgesP: quantileEdges(pool(points), n, maxP),
		edgesW: quantileEdges(pool(weights), n, 1),
		table:  make([]float64, (n+1)*(n+1)),
	}
	for i := 0; i <= n; i++ {
		row := a.table[i*(n+1):]
		for j := 0; j <= n; j++ {
			row[j] = a.edgesP[i] * a.edgesW[j]
		}
	}
	a.loCols, a.upCols = buildColumns(a.table, n)
	return a
}

// pool flattens all components of all vectors into one sample.
func pool(vs []vec.Vector) []float64 {
	out := make([]float64, 0, len(vs)*len(vs[0]))
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// quantileEdges returns n+1 strictly increasing boundaries: edge 0 is 0,
// edge n is max, and the interior edges sit at the sample's k/n quantiles
// (deduplicated; repeated quantiles collapse toward equal spacing so the
// edge vector stays strictly monotone).
func quantileEdges(sample []float64, n int, max float64) []float64 {
	sort.Float64s(sample)
	edges := make([]float64, n+1)
	edges[0] = 0
	edges[n] = max
	for k := 1; k < n; k++ {
		idx := k * len(sample) / n
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		edges[k] = sample[idx]
	}
	// Enforce strict monotonicity: ties (heavy duplicates in the sample)
	// are resolved by nudging toward an even split of the remaining span.
	for k := 1; k <= n; k++ {
		if edges[k] <= edges[k-1] {
			remaining := n - k + 1
			step := (max - edges[k-1]) / float64(remaining+1)
			if step <= 0 {
				step = 1e-12
			}
			edges[k] = edges[k-1] + step
		}
	}
	if edges[n] < max {
		edges[n] = max
	}
	return edges
}

// N returns the partition count per axis.
func (a *Adaptive) N() int { return a.n }

// MemoryBytes returns the footprint of the tables and edge vectors.
func (a *Adaptive) MemoryBytes() int {
	return 8 * (len(a.table) + 2*a.n*a.n + len(a.edgesP) + len(a.edgesW))
}

// LowerColumn returns the lower-bound addends for weight cell j.
func (a *Adaptive) LowerColumn(j uint8) []float64 { return a.loCols[j] }

// UpperColumn returns the upper-bound addends for weight cell j.
func (a *Adaptive) UpperColumn(j uint8) []float64 { return a.upCols[j] }

// EdgesP returns the point boundaries (for diagnostics). The slice is the
// grid's own storage and must not be modified.
func (a *Adaptive) EdgesP() []float64 { return a.edgesP }

// EdgesW returns the weight boundaries.
func (a *Adaptive) EdgesW() []float64 { return a.edgesW }

// cellOf locates x among ascending edges: the largest c with
// edges[c] <= x, clamped to [0, n-1]. Values above the top edge land in
// the last cell; the bounds then remain valid because edge n is the
// declared maximum.
func cellOf(edges []float64, x float64) uint8 {
	n := len(edges) - 1
	if x <= edges[0] {
		return 0
	}
	if x >= edges[n] {
		return uint8(n - 1)
	}
	// Binary search for the insertion point, then step back to the cell.
	c := sort.SearchFloat64s(edges, x)
	if c > 0 && edges[c] != x {
		c--
	}
	if c >= n {
		c = n - 1
	}
	return uint8(c)
}

// ApproxPoint fills dst with the adaptive approximate vector of a point.
func (a *Adaptive) ApproxPoint(p vec.Vector, dst []uint8) []uint8 {
	if len(dst) != len(p) {
		panic(fmt.Sprintf("grid: approx buffer length %d, want %d", len(dst), len(p)))
	}
	for i, x := range p {
		dst[i] = cellOf(a.edgesP, x)
	}
	return dst
}

// ApproxWeight fills dst with the adaptive approximate vector of a weight.
func (a *Adaptive) ApproxWeight(w vec.Vector, dst []uint8) []uint8 {
	if len(dst) != len(w) {
		panic(fmt.Sprintf("grid: approx buffer length %d, want %d", len(dst), len(w)))
	}
	for i, x := range w {
		dst[i] = cellOf(a.edgesW, x)
	}
	return dst
}

// Lower evaluates Equation 3 on the adaptive table.
func (a *Adaptive) Lower(pa, wa []uint8) float64 {
	stride := a.n + 1
	var s float64
	for i, pi := range pa {
		s += a.table[int(pi)*stride+int(wa[i])]
	}
	return s
}

// Upper evaluates Equation 4 on the adaptive table.
func (a *Adaptive) Upper(pa, wa []uint8) float64 {
	stride := a.n + 1
	var s float64
	for i, pi := range pa {
		s += a.table[(int(pi)+1)*stride+int(wa[i])+1]
	}
	return s
}

// Bounds returns both bounds in one pass.
func (a *Adaptive) Bounds(pa, wa []uint8) (lower, upper float64) {
	stride := a.n + 1
	for i, pi := range pa {
		base := int(pi)*stride + int(wa[i])
		lower += a.table[base]
		upper += a.table[base+stride+1]
	}
	return lower, upper
}

// compile-time interface checks.
var (
	_ Bounder = (*Grid)(nil)
	_ Bounder = (*Adaptive)(nil)
)
