package grid

import (
	"math"
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/vec"
)

func TestNewTableValues(t *testing.T) {
	// The paper's running example: 4 partitions over [0,1]×[0,1],
	// α = (0, 0.25, 0.5, 0.75, 1).
	g := New(4, 1, 1)
	if g.At(2, 0) != 0.5*0 {
		t.Errorf("Grid[2][0] = %v, want 0", g.At(2, 0))
	}
	if got := g.At(3, 1); math.Abs(got-0.75*0.25) > 1e-15 {
		t.Errorf("Grid[3][1] = %v, want 0.1875", got)
	}
	if g.At(4, 4) != 1 {
		t.Errorf("Grid[4][4] = %v, want 1", g.At(4, 4))
	}
}

func TestNewPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("n=0", func() { New(0, 1, 1) })
	mustPanic("rangeP=0", func() { New(4, 0, 1) })
	mustPanic("rangeW<0", func() { New(4, 1, -1) })
}

func TestCellMatchesPaperExample(t *testing.T) {
	// Figure 4: p = (0.62, 0.15, 0.73) with 4 partitions of [0,1]
	// gives p^(a) = (2, 0, 2); w = (0.12, 0.60, 0.28) gives (0, 2, 1).
	g := New(4, 1, 1)
	p := vec.Vector{0.62, 0.15, 0.73}
	w := vec.Vector{0.12, 0.60, 0.28}
	pa := g.ApproxPoint(p, make([]uint8, 3))
	wa := g.ApproxWeight(w, make([]uint8, 3))
	for i, want := range []uint8{2, 0, 2} {
		if pa[i] != want {
			t.Errorf("p^(a)[%d] = %d, want %d", i, pa[i], want)
		}
	}
	for i, want := range []uint8{0, 2, 1} {
		if wa[i] != want {
			t.Errorf("w^(a)[%d] = %d, want %d", i, wa[i], want)
		}
	}
}

func TestCellEdges(t *testing.T) {
	g := New(8, 100, 1)
	if g.CellP(0) != 0 {
		t.Error("0 should land in cell 0")
	}
	if g.CellP(-1) != 0 {
		t.Error("negative values clamp to cell 0")
	}
	if g.CellP(100) != 7 {
		t.Error("range max clamps into last cell")
	}
	if g.CellP(99.999999) != 7 {
		t.Error("just below max lands in last cell")
	}
	if g.CellP(12.5) != 1 {
		t.Errorf("12.5 on [0,100)/8: got %d, want 1", g.CellP(12.5))
	}
}

// The central correctness property of the whole paper: for random data the
// Grid bounds always bracket the true inner product (Equation 2).
func TestBoundsBracketTrueScore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 32, 128} {
		for iter := 0; iter < 500; iter++ {
			d := 1 + rng.Intn(12)
			rp := []float64{1, 100, 10000}[rng.Intn(3)]
			g := New(n, rp, 1)
			p := make(vec.Vector, d)
			w := make(vec.Vector, d)
			for i := 0; i < d; i++ {
				p[i] = rng.Float64() * rp
				w[i] = rng.Float64()
			}
			if !vec.Normalize(w) {
				continue
			}
			pa := g.ApproxPoint(p, make([]uint8, d))
			wa := g.ApproxWeight(w, make([]uint8, d))
			f := vec.Dot(p, w)
			lo, hi := g.Bounds(pa, wa)
			if f < lo-1e-9 || f > hi+1e-9 {
				t.Fatalf("n=%d d=%d: f=%v outside [%v, %v]", n, d, f, lo, hi)
			}
			if got := g.Lower(pa, wa); math.Abs(got-lo) > 1e-12 {
				t.Fatalf("Lower disagrees with Bounds: %v vs %v", got, lo)
			}
			if got := g.Upper(pa, wa); math.Abs(got-hi) > 1e-12 {
				t.Fatalf("Upper disagrees with Bounds: %v vs %v", got, hi)
			}
		}
	}
}

// Bound width shrinks as n grows: n=32 bounds are tighter than n=4 bounds.
func TestBoundsTightenWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g4, g32 := New(4, 1, 1), New(32, 1, 1)
	var w4, w32 float64
	for iter := 0; iter < 300; iter++ {
		d := 6
		p := make(vec.Vector, d)
		w := make(vec.Vector, d)
		for i := 0; i < d; i++ {
			p[i] = rng.Float64()
			w[i] = rng.Float64()
		}
		vec.Normalize(w)
		pa4 := g4.ApproxPoint(p, make([]uint8, d))
		wa4 := g4.ApproxWeight(w, make([]uint8, d))
		lo, hi := g4.Bounds(pa4, wa4)
		w4 += hi - lo
		pa32 := g32.ApproxPoint(p, make([]uint8, d))
		wa32 := g32.ApproxWeight(w, make([]uint8, d))
		lo, hi = g32.Bounds(pa32, wa32)
		w32 += hi - lo
	}
	if w32*4 > w4 {
		t.Errorf("n=32 bound width %v not clearly tighter than n=4 width %v", w32, w4)
	}
}

func TestClassify(t *testing.T) {
	g := New(4, 1, 1)
	p := vec.Vector{0.62, 0.15, 0.73}
	w := vec.Vector{0.2, 0.5, 0.3}
	pa := g.ApproxPoint(p, make([]uint8, 3))
	wa := g.ApproxWeight(w, make([]uint8, 3))
	lo, hi := g.Bounds(pa, wa)
	if got := g.Classify(pa, wa, hi+0.1); got != PrecedesQ {
		t.Errorf("fq above upper: got %v, want PrecedesQ", got)
	}
	if got := g.Classify(pa, wa, lo-0.1); got != QPrecedes {
		t.Errorf("fq below lower: got %v, want QPrecedes", got)
	}
	if got := g.Classify(pa, wa, (lo+hi)/2); got != Incomparable {
		t.Errorf("fq inside bounds: got %v, want Incomparable", got)
	}
	if got := g.Classify(pa, wa, hi); got != Incomparable {
		t.Errorf("fq exactly at upper: got %v, want Incomparable", got)
	}
}

func TestMemoryBytesMatchesPaperEstimate(t *testing.T) {
	// Section 5.3: a 32×32 Grid-index needs about 8K (32·32·8) bytes for
	// the boundary table. Our implementation keeps two additional
	// column-transposed copies for the scan hot loop, tripling that —
	// still a negligible ~25 KiB.
	g := New(32, 10000, 1)
	if g.MemoryBytes() > 3*9500 {
		t.Errorf("32-partition grid uses %d bytes, want < ~28K", g.MemoryBytes())
	}
}

func TestIndexRowsMatchDirectApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 200, 5, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 200, 5)
	g := New(32, P.Range, 1)
	pix := NewPointIndex(g, P.Points)
	wix := NewWeightIndex(g, W.Points)
	if pix.Count() != 200 || wix.Count() != 200 || pix.Dim() != 5 {
		t.Fatalf("bad index shape")
	}
	buf := make([]uint8, 5)
	for i := 0; i < 200; i++ {
		g.ApproxPoint(P.Points[i], buf)
		for j, v := range pix.Row(i) {
			if v != buf[j] {
				t.Fatalf("point %d dim %d: index %d, direct %d", i, j, v, buf[j])
			}
		}
		g.ApproxWeight(W.Points[i], buf)
		for j, v := range wix.Row(i) {
			if v != buf[j] {
				t.Fatalf("weight %d dim %d: index %d, direct %d", i, j, v, buf[j])
			}
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{4, 32, 128} {
		P := dataset.GenerateProducts(rng, dataset.Uniform, 100, 6, 1)
		g := New(n, 1, 1)
		ix := NewPointIndex(g, P.Points)
		packed := ix.Pack()
		back := UnpackIndex(g, packed)
		for i := 0; i < ix.Count(); i++ {
			a, b := ix.Row(i), back.Row(i)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("n=%d: cell (%d,%d) lost in pack round trip", n, i, j)
				}
			}
		}
	}
}

func TestPackedStorageFactor(t *testing.T) {
	// b/64 of the original float data, Section 3.2's footnote.
	rng := rand.New(rand.NewSource(5))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 1000, 20, 1)
	g := New(64, 1, 1) // b = 6
	ix := NewPointIndex(g, P.Points)
	packed := ix.Pack()
	if packed.BitsPerDim() != 6 {
		t.Fatalf("n=64 should pack at 6 bits, got %d", packed.BitsPerDim())
	}
	floatBytes := 1000 * 20 * 8
	ratio := float64(packed.SizeBytes()) / float64(floatBytes)
	if ratio > 6.0/64+0.01 {
		t.Errorf("storage ratio %v exceeds b/64 = %v", ratio, 6.0/64)
	}
}

func TestBitsFor(t *testing.T) {
	for _, c := range []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {32, 5}, {64, 6}, {128, 7},
	} {
		if got := bitsFor(c.n); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNewIndexPanics(t *testing.T) {
	g := New(4, 1, 1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { NewPointIndex(g, nil) })
	mustPanic("ragged", func() {
		NewPointIndex(g, []vec.Vector{{0.1, 0.2}, {0.3}})
	})
}
