package grid

import (
	"bytes"
	"math/rand"
	"testing"

	"gridrank/internal/vec"
)

// TestParallelIndexConstruction verifies the sharded row fill produces
// byte-identical approximate vectors at every worker count, including on
// sets large enough to cross the parallel threshold.
func TestParallelIndexConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := 6
	points := make([]vec.Vector, 4000) // 24k cells: above parallelRowThreshold
	weights := make([]vec.Vector, 4000)
	for i := range points {
		p := make(vec.Vector, d)
		w := make(vec.Vector, d)
		var sum float64
		for j := 0; j < d; j++ {
			p[j] = rng.Float64() * 100
			w[j] = rng.Float64()
			sum += w[j]
		}
		for j := 0; j < d; j++ {
			w[j] /= sum
		}
		points[i] = p
		weights[i] = w
	}
	g := New(32, 100, 1)
	wantP := NewPointIndexParallel(g, points, 1).Cells()
	wantW := NewWeightIndexParallel(g, weights, 1).Cells()
	for _, workers := range []int{0, 2, 3, 8} {
		if got := NewPointIndexParallel(g, points, workers).Cells(); !bytes.Equal(got, wantP) {
			t.Errorf("workers=%d: point cells differ from serial build", workers)
		}
		if got := NewWeightIndexParallel(g, weights, workers).Cells(); !bytes.Equal(got, wantW) {
			t.Errorf("workers=%d: weight cells differ from serial build", workers)
		}
	}
	// Ragged input still panics, now from the up-front validation.
	defer func() {
		if recover() == nil {
			t.Error("ragged input should panic")
		}
	}()
	NewPointIndexParallel(g, []vec.Vector{{1, 2}, {1}}, 4)
}
