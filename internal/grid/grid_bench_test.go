package grid

import (
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/vec"
)

func benchSetup(b *testing.B, n, d int) (*Grid, *Index, *Index, []vec.Vector, []vec.Vector) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 2000, d, 1)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 200, d)
	g := New(n, 1, 1)
	return g, NewPointIndex(g, P.Points), NewWeightIndex(g, W.Points), P.Points, W.Points
}

func BenchmarkBounds6d(b *testing.B) {
	g, pix, wix, _, _ := benchSetup(b, 32, 6)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		lo, hi := g.Bounds(pix.Row(i%pix.Count()), wix.Row(i%wix.Count()))
		sink += lo + hi
	}
	_ = sink
}

func BenchmarkBounds20d(b *testing.B) {
	g, pix, wix, _, _ := benchSetup(b, 32, 20)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		lo, hi := g.Bounds(pix.Row(i%pix.Count()), wix.Row(i%wix.Count()))
		sink += lo + hi
	}
	_ = sink
}

// BenchmarkDot20d is the multiplication path the bounds replace, for
// comparison in the same output.
func BenchmarkDot20d(b *testing.B) {
	_, _, _, P, W := benchSetup(b, 32, 20)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += vec.Dot(P[i%len(P)], W[i%len(W)])
	}
	_ = sink
}

func BenchmarkApproxPoint(b *testing.B) {
	g, _, _, P, _ := benchSetup(b, 32, 6)
	dst := make([]uint8, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ApproxPoint(P[i%len(P)], dst)
	}
}

func BenchmarkAdaptiveCell(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	P := dataset.GenerateProducts(rng, dataset.Exponential, 500, 6, 1000)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 100, 6)
	a := NewAdaptive(32, P.Points, W.Points, 1000)
	dst := make([]uint8, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ApproxPoint(P.Points[i%len(P.Points)], dst)
	}
}

func BenchmarkIndexConstruction100K(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 100000, 6, 1)
	g := New(32, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPointIndex(g, P.Points)
	}
}
