package grid

// Copy-on-write derivation of the approximate-vector structures under
// point/weight insertion and deletion. Every With* method leaves its
// receiver untouched and returns a structure valid for the mutated data
// set, so an index can keep serving queries from the old epoch while a
// writer installs the next one.
//
// None of these paths re-approximate surviving vectors or re-hash rows
// into groups — the O(|P|·d) construction work of NewGrouped. What they
// do pay is flat byte/int copies of the ancillary arrays (cells, member
// permutation, offsets), which are plain memmoves: for an append the
// mutated group's member block is patched and the prefix-sum offsets
// after it incremented; for a removal element ids above the removed one
// shift down by one everywhere. See DESIGN.md §10 for the cost model.
//
// Group numbering: NewGrouped numbers groups by first occurrence in
// element order. A removal can change which element occurs first, so a
// derived grouping's group NUMBERING may drift from what a fresh build
// over the same data would produce. That is deliberate: numbering only
// fixes the scan's visit order, and query answers are proven
// order-independent (the parallel scan already visits in arbitrary
// chunk order) — the equivalence tests compare answers, which match a
// fresh rebuild exactly.

import (
	"bytes"
	"fmt"
)

// WithAppendedPoint derives an Index with the approximate vector of p
// appended. Every attribute of p must fall inside the grid's point
// range — callers detect range growth and rebuild instead.
func (ix *Index) WithAppendedPoint(p []float64) *Index {
	row := make([]uint8, ix.dim)
	ix.grid.ApproxPoint(p, row)
	return ix.withAppendedRow(row)
}

// WithAppendedWeight derives an Index with the approximate vector of w
// appended. Every component of w must fall inside the grid's weight
// range — callers detect range growth and rebuild instead.
func (ix *Index) WithAppendedWeight(w []float64) *Index {
	row := make([]uint8, ix.dim)
	ix.grid.ApproxWeight(w, row)
	return ix.withAppendedRow(row)
}

func (ix *Index) withAppendedRow(row []uint8) *Index {
	approx := make([]uint8, len(ix.approx)+ix.dim)
	copy(approx, ix.approx)
	copy(approx[len(ix.approx):], row)
	return &Index{grid: ix.grid, dim: ix.dim, approx: approx}
}

// WithRemoved derives an Index without element i; elements after i
// shift down by one.
func (ix *Index) WithRemoved(i int) *Index {
	if i < 0 || i >= ix.Count() {
		panic(fmt.Sprintf("grid: removed element %d out of range [0, %d)", i, ix.Count()))
	}
	approx := make([]uint8, len(ix.approx)-ix.dim)
	copy(approx, ix.approx[:i*ix.dim])
	copy(approx[i*ix.dim:], ix.approx[(i+1)*ix.dim:])
	return &Index{grid: ix.grid, dim: ix.dim, approx: approx}
}

// findGroup returns the group whose shared approximate vector equals
// row, or -1. A linear scan over the unique rows: O(Groups()·d) — the
// worst case (continuous data, every group a singleton) costs the same
// order as the member-array copy the derivation performs anyway, and it
// needs no auxiliary map to keep consistent across epochs.
func (g *GroupedIndex) findGroup(row []uint8) int {
	d := g.Dim()
	for gid := 0; gid*d < len(g.rows); gid++ {
		if bytes.Equal(g.rows[gid*d:(gid+1)*d], row) {
			return gid
		}
	}
	return -1
}

// WithAppended derives the grouping for nix, which must hold the
// receiver's elements plus one appended row (the new element's id is
// nix.Count()-1). If the row matches an existing group the new id joins
// that group's member block (it is the largest id, so the block stays
// ascending) and the offsets after the group increment; otherwise a new
// singleton group is appended, exactly where a fresh first-occurrence
// numbering would place it.
func (g *GroupedIndex) WithAppended(nix *Index) *GroupedIndex {
	count := nix.Count()
	if count != g.Count()+1 {
		panic(fmt.Sprintf("grid: WithAppended index has %d elements, want %d", count, g.Count()+1))
	}
	d := g.Dim()
	id := int32(count - 1)
	row := nix.Row(count - 1)
	// An append cannot disturb first-occurrence numbering (a new distinct
	// row is numbered last, exactly where a fresh build would put it), so
	// canonicality is inherited.
	ng := &GroupedIndex{ix: nix, canonical: g.canonical}
	gid := g.findGroup(row)
	if gid < 0 {
		// New distinct row: a fresh singleton group numbered last.
		nG := len(g.offsets) - 1
		ng.rows = append(append(make([]uint8, 0, len(g.rows)+d), g.rows...), row...)
		ng.offsets = append(append(make([]int32, 0, len(g.offsets)+1), g.offsets...), int32(count))
		ng.members = append(append(make([]int32, 0, count), g.members...), id)
		ng.groupOf = append(append(make([]int32, 0, count), g.groupOf...), int32(nG))
		ng.single = append(append(make([]int32, 0, nG+1), g.single...), id)
		if g.packed != nil {
			// The packed store mirrors rows: appending the encoded row is
			// byte-identical to re-encoding the derived row set, because
			// every packed row is word-aligned with zeroed padding.
			ng.packed = g.packed.WithAppendedRow(row)
		}
		return ng
	}
	// Existing group: splice the new id at the end of its member block.
	ng.rows = g.rows // unchanged, shared across epochs
	ng.packed = g.packed
	pos := int(g.offsets[gid+1])
	ng.members = make([]int32, count)
	copy(ng.members, g.members[:pos])
	ng.members[pos] = id
	copy(ng.members[pos+1:], g.members[pos:])
	ng.offsets = make([]int32, len(g.offsets))
	copy(ng.offsets, g.offsets)
	for k := gid + 1; k < len(ng.offsets); k++ {
		ng.offsets[k]++
	}
	ng.groupOf = append(append(make([]int32, 0, count), g.groupOf...), int32(gid))
	ng.single = make([]int32, len(g.single))
	copy(ng.single, g.single)
	ng.single[gid] = -1 // at least two members now
	return ng
}

// WithRemoved derives the grouping for nix, which must hold the
// receiver's elements minus element i (ids after i shifted down by
// one). The removed element leaves its group's member block; a group
// left empty is removed and the groups after it renumber down by one.
func (g *GroupedIndex) WithRemoved(nix *Index, i int) *GroupedIndex {
	count := nix.Count()
	if count != g.Count()-1 {
		panic(fmt.Sprintf("grid: WithRemoved index has %d elements, want %d", count, g.Count()-1))
	}
	d := g.Dim()
	gid := int(g.groupOf[i])
	emptied := g.Size(gid) == 1
	// Removals may change which element of a group occurs first, so the
	// derived numbering can drift from a fresh build's (see the package
	// comment); the grouping is conservatively marked non-canonical and
	// the persist layer renumbers at save time.
	ng := &GroupedIndex{ix: nix} // canonical: false
	// Member permutation: drop i, shift larger ids down. Group blocks
	// keep their order and stay ascending (the id map is monotone).
	ng.members = make([]int32, count)
	j := 0
	for _, id := range g.members {
		if id == int32(i) {
			continue
		}
		if id > int32(i) {
			id--
		}
		ng.members[j] = id
		j++
	}
	if emptied {
		nG := len(g.offsets) - 2 // groups after removal
		ng.rows = make([]uint8, 0, nG*d)
		ng.rows = append(ng.rows, g.rows[:gid*d]...)
		ng.rows = append(ng.rows, g.rows[(gid+1)*d:]...)
		ng.offsets = make([]int32, nG+1)
		copy(ng.offsets, g.offsets[:gid+1])
		for k := gid + 1; k < len(ng.offsets); k++ {
			ng.offsets[k] = g.offsets[k+1] - 1
		}
		if g.packed != nil {
			// Splice the emptied group's packed row out; word-aligned rows
			// make this byte-identical to re-encoding the derived rows.
			ng.packed = g.packed.WithRemovedRow(gid)
		}
	} else {
		ng.rows = g.rows
		ng.packed = g.packed
		ng.offsets = make([]int32, len(g.offsets))
		copy(ng.offsets, g.offsets)
		for k := gid + 1; k < len(ng.offsets); k++ {
			ng.offsets[k]--
		}
	}
	// groupOf and the singleton cache follow mechanically from the new
	// (members, offsets): rebuilding them wholesale is one O(count) and
	// one O(groups) pass, simpler than patching ids in place.
	ng.groupOf = make([]int32, count)
	ng.single = make([]int32, len(ng.offsets)-1)
	for gg := 0; gg < len(ng.offsets)-1; gg++ {
		lo, hi := ng.offsets[gg], ng.offsets[gg+1]
		for _, id := range ng.members[lo:hi] {
			ng.groupOf[id] = int32(gg)
		}
		if hi-lo == 1 {
			ng.single[gg] = ng.members[lo]
		} else {
			ng.single[gg] = -1
		}
	}
	return ng
}
