package grid

// View constructors for the persist layer: a GRI3 file stores a
// GroupedIndex's arrays verbatim (unique rows, member order, offsets,
// element→group map, singleton cache, optional packed rows), so loading
// is reassembly plus validation instead of an O(count) rebuild. All
// slices are adopted without copying — they may alias mapped memory and
// must not be modified afterward.

import (
	"fmt"

	"gridrank/internal/bits"
)

// GroupedFromParts reassembles a GroupedIndex from its stored arrays.
//
// It always performs the O(1) shape checks — array lengths consistent
// with each other and with the index, offsets spanning exactly
// [0, Count()] — so a file of the wrong shape can never be assembled.
//
// With strict set it also validates the contents: offsets monotone,
// member ids within [0, Count()) and ascending within each group, group
// ids within [0, Groups()), row cells below the grid's partition count,
// first members strictly increasing across groups (canonical
// numbering), the singleton cache consistent, members a permutation of
// [0, Count()), groupOf in agreement with the member blocks, each
// group's row equal to the element cells of its first member, and the
// packed rows (if present) equal to re-encoding the unique rows. The
// heap load path uses strict. The mmap path does not: those passes
// touch every element and would dominate the load, so it trusts the
// file the way any mmap-served database does — a corrupted payload
// surfaces as a bounds-check panic or a wrong answer at query time,
// never as memory corruption (see LoadMmap).
func GroupedFromParts(ix *Index, rows []uint8, members, offsets, groupOf, single []int32, packed *bits.PackedRows, strict bool) (*GroupedIndex, error) {
	if ix == nil {
		return nil, fmt.Errorf("grid: grouped parts without an index")
	}
	d := ix.Dim()
	count := ix.Count()
	if len(rows) == 0 || len(rows)%d != 0 {
		return nil, fmt.Errorf("grid: grouped rows length %d not a positive multiple of dim %d", len(rows), d)
	}
	groups := len(rows) / d
	if groups > count {
		return nil, fmt.Errorf("grid: %d groups for %d elements", groups, count)
	}
	if len(offsets) != groups+1 {
		return nil, fmt.Errorf("grid: %d offsets for %d groups", len(offsets), groups)
	}
	if len(members) != count || len(groupOf) != count {
		return nil, fmt.Errorf("grid: member order %d / group map %d, want %d", len(members), len(groupOf), count)
	}
	if len(single) != groups {
		return nil, fmt.Errorf("grid: singleton cache %d, want %d", len(single), groups)
	}
	if offsets[0] != 0 || offsets[groups] != int32(count) {
		return nil, fmt.Errorf("grid: offsets span [%d, %d], want [0, %d]", offsets[0], offsets[groups], count)
	}
	if strict {
		n := ix.Grid().N()
		prevFirst := int32(-1)
		for g := 0; g < groups; g++ {
			lo, hi := offsets[g], offsets[g+1]
			if hi <= lo {
				return nil, fmt.Errorf("grid: group %d empty or offsets not increasing", g)
			}
			for _, c := range rows[g*d : (g+1)*d] {
				if int(c) >= n {
					return nil, fmt.Errorf("grid: group %d cell %d outside %d-partition grid", g, c, n)
				}
			}
			first := members[lo]
			if first <= prevFirst {
				return nil, fmt.Errorf("grid: group %d not in first-occurrence order", g)
			}
			prevFirst = first
			prev := int32(-1)
			for _, m := range members[lo:hi] {
				if m < 0 || m >= int32(count) {
					return nil, fmt.Errorf("grid: member %d outside [0, %d)", m, count)
				}
				if m <= prev {
					return nil, fmt.Errorf("grid: group %d members not ascending", g)
				}
				prev = m
			}
			want := int32(-1)
			if hi-lo == 1 {
				want = first
			}
			if single[g] != want {
				return nil, fmt.Errorf("grid: singleton cache of group %d is %d, want %d", g, single[g], want)
			}
		}
		for i, gid := range groupOf {
			if gid < 0 || gid >= int32(groups) {
				return nil, fmt.Errorf("grid: element %d mapped to group %d outside [0, %d)", i, gid, groups)
			}
		}
	}
	if packed != nil {
		if packed.Count() != groups || packed.Dim() != d {
			return nil, fmt.Errorf("grid: packed rows shape %d×%d, want %d×%d", packed.Count(), packed.Dim(), groups, d)
		}
	}
	g := &GroupedIndex{
		ix:        ix,
		rows:      rows,
		members:   members,
		offsets:   offsets,
		groupOf:   groupOf,
		single:    single,
		packed:    packed,
		canonical: true,
	}
	if strict {
		if err := g.verifyStrict(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// verifyStrict cross-validates the redundant grouped arrays; see
// GroupedFromParts.
func (g *GroupedIndex) verifyStrict() error {
	count := g.Count()
	d := g.Dim()
	seen := make([]bool, count)
	for gid := 0; gid < g.Groups(); gid++ {
		lo, hi := g.offsets[gid], g.offsets[gid+1]
		row := g.rows[gid*d : (gid+1)*d]
		for _, m := range g.members[lo:hi] {
			if seen[m] {
				return fmt.Errorf("grid: element %d appears in two groups", m)
			}
			seen[m] = true
			if g.groupOf[m] != int32(gid) {
				return fmt.Errorf("grid: element %d in block of group %d but mapped to %d", m, gid, g.groupOf[m])
			}
		}
		first := g.members[lo]
		elemRow := g.ix.Row(int(first))
		for j := range row {
			if row[j] != elemRow[j] {
				return fmt.Errorf("grid: group %d row disagrees with element %d cells", gid, first)
			}
		}
		if g.packed != nil && !g.packed.EqualRow(gid, row) {
			return fmt.Errorf("grid: packed row of group %d disagrees with unpacked row", gid)
		}
	}
	return nil
}
