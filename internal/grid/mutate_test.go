package grid

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gridrank/internal/bits"
	"gridrank/internal/vec"
)

// randPoints samples n d-dimensional points from a small catalog so
// many share grid cells (multi-member groups) while some are unique.
func randPoints(rng *rand.Rand, n, d int, rangeP float64) []vec.Vector {
	catalog := make([]vec.Vector, 1+rng.Intn(n)) // small → heavy grouping
	for i := range catalog {
		v := make(vec.Vector, d)
		for j := range v {
			v[j] = rng.Float64() * rangeP * 0.99
		}
		catalog[i] = v
	}
	out := make([]vec.Vector, n)
	for i := range out {
		out[i] = catalog[rng.Intn(len(catalog))]
	}
	return out
}

// checkGroupingInvariants verifies a GroupedIndex is internally
// consistent with its Index and equivalent (up to group numbering) to a
// fresh grouping of the same data.
func checkGroupingInvariants(t *testing.T, ix *Index, g *GroupedIndex) {
	t.Helper()
	count := ix.Count()
	if g.Count() != count {
		t.Fatalf("grouping holds %d elements, index %d", g.Count(), count)
	}
	seen := make([]bool, count)
	for gid := 0; gid < g.Groups(); gid++ {
		members := g.Members(gid)
		if len(members) == 0 {
			t.Fatalf("group %d is empty", gid)
		}
		want := g.Row(gid)
		prev := int32(-1)
		for _, id := range members {
			if id <= prev {
				t.Fatalf("group %d members not ascending: %v", gid, members)
			}
			prev = id
			if seen[id] {
				t.Fatalf("element %d appears in two groups", id)
			}
			seen[id] = true
			if !bytes.Equal(ix.Row(int(id)), want) {
				t.Fatalf("element %d row %v does not match its group %d row %v", id, ix.Row(int(id)), gid, want)
			}
			if g.GroupOf(int(id)) != int32(gid) {
				t.Fatalf("GroupOf(%d) = %d, want %d", id, g.GroupOf(int(id)), gid)
			}
		}
		if len(members) == 1 {
			if g.Single()[gid] != members[0] {
				t.Fatalf("single[%d] = %d, want %d", gid, g.Single()[gid], members[0])
			}
		} else if g.Single()[gid] != -1 {
			t.Fatalf("single[%d] = %d for a %d-member group", gid, g.Single()[gid], len(members))
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("element %d missing from every group", id)
		}
	}
	// Same partition as a fresh build: identical row→members mapping.
	fresh := NewGrouped(ix)
	if fresh.Groups() != g.Groups() {
		t.Fatalf("derived has %d groups, fresh build %d", g.Groups(), fresh.Groups())
	}
	fm := make(map[string]string, fresh.Groups())
	for gid := 0; gid < fresh.Groups(); gid++ {
		fm[string(fresh.Row(gid))] = fmt.Sprint(fresh.Members(gid))
	}
	for gid := 0; gid < g.Groups(); gid++ {
		if got := fmt.Sprint(g.Members(gid)); fm[string(g.Row(gid))] != got {
			t.Fatalf("group %v members %s, fresh build %s", g.Row(gid), got, fm[string(g.Row(gid))])
		}
	}
	// A packed row store maintained through derivations must be
	// byte-identical to re-encoding the derived unique rows.
	if p := g.Packed(); p != nil {
		want := bits.NewPackedRows(g.Groups(), ix.Dim(), p.BitsPerDim())
		for gid := 0; gid < g.Groups(); gid++ {
			want.EncodeRow(gid, g.Row(gid))
		}
		if !p.Equal(want) {
			t.Fatal("derived packed rows differ from re-encoding the derived rows")
		}
	}
}

// TestGroupedMutations drives random insert/delete sequences through
// the derive API and checks every intermediate grouping against a fresh
// build of the same data.
func TestGroupedMutations(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		d := 2 + rng.Intn(4)
		const rangeP = 10.0
		g := New(8, rangeP, 1)
		points := randPoints(rng, 3+rng.Intn(20), d, rangeP)
		ix := NewPointIndex(g, points)
		grouped := NewGrouped(ix)
		grouped.Pack(4) // n=8 partitions → cells fit in 4 bits
		for step := 0; step < 25; step++ {
			if len(points) > 1 && rng.Intn(3) == 0 {
				i := rng.Intn(len(points))
				points = append(points[:i:i], points[i+1:]...)
				ix2 := ix.WithRemoved(i)
				grouped = grouped.WithRemoved(ix2, i)
				ix = ix2
			} else {
				p := randPoints(rng, 1, d, rangeP)[0]
				points = append(points, p)
				ix2 := ix.WithAppendedPoint(p)
				grouped = grouped.WithAppended(ix2)
				ix = ix2
			}
			checkGroupingInvariants(t, ix, grouped)
		}
	}
}

// TestIndexDeriveMatchesFresh checks the derived cell store equals a
// fresh approximation of the mutated data, for points and weights.
func TestIndexDeriveMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := New(16, 5, 0.8)
	points := randPoints(rng, 12, 3, 5)
	ix := NewPointIndex(g, points)

	p := vec.Vector{1.5, 0.25, 4.9}
	derived := ix.WithAppendedPoint(p)
	fresh := NewPointIndex(g, append(append([]vec.Vector{}, points...), p))
	if !bytes.Equal(derived.Cells(), fresh.Cells()) {
		t.Fatalf("appended point cells differ:\n%v\n%v", derived.Cells(), fresh.Cells())
	}

	removed := derived.WithRemoved(4)
	data := append(append([]vec.Vector{}, points...), p)
	data = append(data[:4], data[5:]...)
	fresh = NewPointIndex(g, data)
	if !bytes.Equal(removed.Cells(), fresh.Cells()) {
		t.Fatalf("removed point cells differ:\n%v\n%v", removed.Cells(), fresh.Cells())
	}

	weights := []vec.Vector{{0.2, 0.3, 0.5}, {0.7, 0.2, 0.1}}
	wix := NewWeightIndex(g, weights)
	w := vec.Vector{0.1, 0.1, 0.8}
	wd := wix.WithAppendedWeight(w)
	wf := NewWeightIndex(g, append(append([]vec.Vector{}, weights...), w))
	if !bytes.Equal(wd.Cells(), wf.Cells()) {
		t.Fatalf("appended weight cells differ:\n%v\n%v", wd.Cells(), wf.Cells())
	}
}
