package grid

// Cell grouping: the Grid-index's whole premise (Section 3) is that many
// vectors collapse onto few grid cells — two points with identical
// approximate vectors P^(A) receive identical (lower, upper) bounds
// against every weight, so the bound evaluation, and the Case-1/Case-2
// classification it drives, can be computed once per DISTINCT row and
// shared by every member. GroupedIndex materializes that sharing at index
// build time: the unique rows, each row's member list, and a reverse
// element→group map. It is built once per Index and reused by every
// query.

import "gridrank/internal/bits"

// GroupedIndex partitions the elements of an Index into groups of
// identical approximate vectors. Groups are numbered by first occurrence
// (the group of the smallest member index comes first) and each group's
// member list is ascending, so iteration order is deterministic.
type GroupedIndex struct {
	ix *Index
	// rows holds the unique approximate vectors, Groups()×Dim() cells.
	rows []uint8
	// members lists element ids group by group; offsets[g]:offsets[g+1]
	// brackets group g. Concatenated, members is a permutation of
	// [0, Count()) — the scan algorithms use it directly as a
	// cell-sorted visit order.
	members []int32
	offsets []int32
	// groupOf maps an element id to its group id.
	groupOf []int32
	// single caches singleton groups: single[g] is the lone member of
	// group g, or -1 when the group has several members. Continuous data
	// produces almost exclusively singletons, and the one-load fast path
	// keeps the grouped scan from paying member-list indirection there.
	single []int32
	// packed, when non-nil, holds the unique rows bit-packed at
	// packed.BitsPerDim() bits per cell in the fixed-stride layout of
	// bits.PackedRows, one packed row per group in group order. It is a
	// derived view of rows: Pack populates it, and the copy-on-write
	// derivations keep it byte-identical to re-encoding the derived rows.
	packed *bits.PackedRows
	// canonical records that group numbering still matches what
	// NewGrouped would produce over the same elements (first-occurrence
	// order). Fresh builds are canonical and appends preserve it; removals
	// may renumber (see mutate.go) and clear it. The persist layer uses
	// the flag to decide whether a grouping can be written as-is: GRI3
	// stores groupings verbatim, and byte-identical saves of mutated vs
	// freshly-built indexes require canonical numbering on disk.
	canonical bool
}

// NewGrouped groups the elements of ix by identical approximate vector.
func NewGrouped(ix *Index) *GroupedIndex {
	count := ix.Count()
	g := &GroupedIndex{
		ix:        ix,
		members:   make([]int32, count),
		groupOf:   make([]int32, count),
		canonical: true,
	}
	seen := make(map[string]int32, count)
	sizes := make([]int32, 0, 64)
	for i := 0; i < count; i++ {
		row := ix.Row(i)
		gid, ok := seen[string(row)]
		if !ok {
			gid = int32(len(sizes))
			seen[string(row)] = gid
			sizes = append(sizes, 0)
			g.rows = append(g.rows, row...)
		}
		sizes[gid]++
		g.groupOf[i] = gid
	}
	// Prefix-sum the sizes into offsets, then fill each group's member
	// list in ascending element order.
	g.offsets = make([]int32, len(sizes)+1)
	for gid, n := range sizes {
		g.offsets[gid+1] = g.offsets[gid] + n
	}
	next := make([]int32, len(sizes))
	copy(next, g.offsets[:len(sizes)])
	for i := 0; i < count; i++ {
		gid := g.groupOf[i]
		g.members[next[gid]] = int32(i)
		next[gid]++
	}
	g.single = make([]int32, len(sizes))
	for gid, n := range sizes {
		if n == 1 {
			g.single[gid] = g.members[g.offsets[gid]]
		} else {
			g.single[gid] = -1
		}
	}
	return g
}

// Groups returns the number of distinct approximate vectors.
func (g *GroupedIndex) Groups() int { return len(g.offsets) - 1 }

// Count returns the number of grouped elements.
func (g *GroupedIndex) Count() int { return len(g.members) }

// Dim returns the dimensionality.
func (g *GroupedIndex) Dim() int { return g.ix.Dim() }

// Row returns the approximate vector shared by group gid. The slice
// aliases the grouped storage and must not be modified.
func (g *GroupedIndex) Row(gid int) []uint8 {
	d := g.ix.Dim()
	return g.rows[gid*d : (gid+1)*d]
}

// Rows returns the flat unique-row store (Groups()·Dim() bytes,
// row-major), for hot loops that slice it directly. Not to be modified.
func (g *GroupedIndex) Rows() []uint8 { return g.rows }

// Members returns the ascending element ids of group gid (not to be
// modified).
func (g *GroupedIndex) Members(gid int) []int32 {
	return g.members[g.offsets[gid]:g.offsets[gid+1]]
}

// MemberOrder returns the concatenated member lists — a permutation of
// [0, Count()) in which elements of a group are adjacent. Scanning in
// this order maximizes reuse of any per-group state. Not to be modified.
func (g *GroupedIndex) MemberOrder() []int32 { return g.members }

// Offsets returns the group boundaries into MemberOrder(): group gid
// spans [Offsets()[gid], Offsets()[gid+1]). Not to be modified.
func (g *GroupedIndex) Offsets() []int32 { return g.offsets }

// GroupOf returns the group id of element i.
func (g *GroupedIndex) GroupOf(i int) int32 { return g.groupOf[i] }

// GroupMap returns the full element→group mapping (Count() entries). The
// slice is the grouping's own storage and must not be modified.
func (g *GroupedIndex) GroupMap() []int32 { return g.groupOf }

// Single returns the singleton cache: Single()[g] is group g's lone
// member, or -1 when the group has several. Not to be modified.
func (g *GroupedIndex) Single() []int32 { return g.single }

// Size returns the member count of group gid.
func (g *GroupedIndex) Size(gid int) int {
	return int(g.offsets[gid+1] - g.offsets[gid])
}

// Pack materializes the unique rows bit-packed at b bits per cell. Every
// cell value must fit in b bits (callers validate 1<<b ≥ grid partitions
// before enabling packing). Idempotent for a given b.
func (g *GroupedIndex) Pack(b int) {
	if g.packed != nil && g.packed.BitsPerDim() == b {
		return
	}
	d := g.Dim()
	p := bits.NewPackedRows(g.Groups(), d, b)
	for gid := 0; gid < g.Groups(); gid++ {
		p.EncodeRow(gid, g.rows[gid*d:(gid+1)*d])
	}
	g.packed = p
}

// Packed returns the bit-packed unique rows, or nil when Pack has not
// been called on this grouping (or its ancestor, for derived groupings).
func (g *GroupedIndex) Packed() *bits.PackedRows { return g.packed }

// Canonical reports whether group numbering matches a fresh NewGrouped
// build over the same elements.
func (g *GroupedIndex) Canonical() bool { return g.canonical }
