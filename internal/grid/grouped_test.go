package grid

import (
	"math/rand"
	"testing"

	"gridrank/internal/vec"
)

func randomPoints(rng *rand.Rand, n, d int, r float64, levels int) []vec.Vector {
	ps := make([]vec.Vector, n)
	for i := range ps {
		p := make(vec.Vector, d)
		for j := range p {
			if levels > 0 {
				// Quantized attributes force heavy cell duplication.
				p[j] = float64(rng.Intn(levels)) * r / float64(levels)
			} else {
				p[j] = rng.Float64() * r
			}
		}
		ps[i] = p
	}
	return ps
}

// TestGroupedInvariants checks the structural contract of NewGrouped on a
// spread of shapes: duplicate-heavy quantized grids, continuous data with
// few collisions, and single-group degenerate inputs.
func TestGroupedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name      string
		n, d, gn  int
		levels    int
		maxGroups int // 0 = no bound asserted
	}{
		{name: "continuous", n: 200, d: 4, gn: 16, levels: 0},
		{name: "quantized", n: 300, d: 3, gn: 4, levels: 3, maxGroups: 27},
		{name: "coarse", n: 150, d: 5, gn: 1, levels: 0, maxGroups: 1},
		{name: "single", n: 1, d: 2, gn: 8, levels: 0, maxGroups: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps := randomPoints(rng, tc.n, tc.d, 100, tc.levels)
			g := New(tc.gn, 100, 1)
			ix := NewPointIndex(g, ps)
			gi := NewGrouped(ix)

			if gi.Count() != tc.n {
				t.Fatalf("Count = %d, want %d", gi.Count(), tc.n)
			}
			if tc.maxGroups > 0 && gi.Groups() > tc.maxGroups {
				t.Fatalf("Groups = %d, want <= %d", gi.Groups(), tc.maxGroups)
			}

			// MemberOrder is a permutation of [0, n).
			seen := make([]bool, tc.n)
			for _, m := range gi.MemberOrder() {
				if m < 0 || int(m) >= tc.n || seen[m] {
					t.Fatalf("MemberOrder not a permutation: element %d", m)
				}
				seen[m] = true
			}

			// Every member's approximate row equals its group's row, member
			// lists are ascending, and GroupOf agrees with membership.
			rowSeen := make(map[string]int)
			for gid := 0; gid < gi.Groups(); gid++ {
				row := gi.Row(gid)
				if prev, dup := rowSeen[string(row)]; dup {
					t.Fatalf("groups %d and %d share row %v", prev, gid, row)
				}
				rowSeen[string(row)] = gid
				members := gi.Members(gid)
				if len(members) != gi.Size(gid) || len(members) == 0 {
					t.Fatalf("group %d: %d members, Size %d", gid, len(members), gi.Size(gid))
				}
				for i, m := range members {
					if i > 0 && members[i-1] >= m {
						t.Fatalf("group %d members not ascending: %v", gid, members)
					}
					if gi.GroupOf(int(m)) != int32(gid) {
						t.Fatalf("GroupOf(%d) = %d, want %d", m, gi.GroupOf(int(m)), gid)
					}
					got := ix.Row(int(m))
					if string(got) != string(row) {
						t.Fatalf("member %d row %v != group %d row %v", m, got, gid, row)
					}
				}
			}

			// Groups are numbered by first occurrence: the first member of
			// group g appears before the first member of group g+1 in
			// element order.
			first := make([]int32, gi.Groups())
			for gid := range first {
				first[gid] = gi.Members(gid)[0]
			}
			for gid := 1; gid < len(first); gid++ {
				if first[gid-1] >= first[gid] {
					t.Fatalf("group numbering not by first occurrence: firsts %v", first)
				}
			}

			// GroupMap is consistent with GroupOf.
			gm := gi.GroupMap()
			if len(gm) != tc.n {
				t.Fatalf("GroupMap length %d, want %d", len(gm), tc.n)
			}
			for i, gid := range gm {
				if gid != gi.GroupOf(i) {
					t.Fatalf("GroupMap[%d] = %d != GroupOf = %d", i, gid, gi.GroupOf(i))
				}
			}
		})
	}
}

// TestGroupedIdenticalVectors pins full collapse: identical vectors form
// exactly one group containing everything.
func TestGroupedIdenticalVectors(t *testing.T) {
	p := vec.Vector{1, 2, 3}
	ps := []vec.Vector{p, p, p, p, p}
	ix := NewPointIndex(New(32, 10, 1), ps)
	gi := NewGrouped(ix)
	if gi.Groups() != 1 || gi.Size(0) != 5 {
		t.Fatalf("got %d groups, group 0 size %d; want 1 group of 5", gi.Groups(), gi.Size(0))
	}
}
