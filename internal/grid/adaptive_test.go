package grid

import (
	"math/rand"
	"sort"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/vec"
)

func TestAdaptiveEdgesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dist := range []dataset.Distribution{dataset.Uniform, dataset.Exponential, dataset.Clustered} {
		P := dataset.GenerateProducts(rng, dist, 500, 4, 100)
		W := dataset.GenerateWeights(rng, dataset.Uniform, 300, 4)
		for _, n := range []int{2, 8, 32} {
			a := NewAdaptive(n, P.Points, W.Points, 100)
			for _, edges := range [][]float64{a.EdgesP(), a.EdgesW()} {
				if len(edges) != n+1 {
					t.Fatalf("%s n=%d: %d edges", dist, n, len(edges))
				}
				if edges[0] != 0 {
					t.Fatalf("%s n=%d: first edge %v", dist, n, edges[0])
				}
				if !sort.Float64sAreSorted(edges) {
					t.Fatalf("%s n=%d: edges not sorted: %v", dist, n, edges)
				}
				for k := 1; k <= n; k++ {
					if edges[k] <= edges[k-1] {
						t.Fatalf("%s n=%d: edges not strictly increasing at %d: %v", dist, n, k, edges)
					}
				}
			}
			if a.EdgesP()[n] < 100 {
				t.Fatalf("top point edge %v below max", a.EdgesP()[n])
			}
		}
	}
}

func TestAdaptiveEdgesWithHeavyDuplicates(t *testing.T) {
	// All values identical: the quantiles collapse; edges must still be
	// strictly increasing and cover the range.
	pts := make([]vec.Vector, 50)
	for i := range pts {
		pts[i] = vec.Vector{5, 5}
	}
	ws := make([]vec.Vector, 50)
	for i := range ws {
		ws[i] = vec.Vector{0.5, 0.5}
	}
	a := NewAdaptive(8, pts, ws, 10)
	for k := 1; k <= 8; k++ {
		if a.EdgesP()[k] <= a.EdgesP()[k-1] {
			t.Fatalf("duplicate-heavy edges not strictly increasing: %v", a.EdgesP())
		}
	}
}

// The same central invariant as the equal-width grid: bounds bracket the
// true score — on skewed data, where Adaptive matters.
func TestAdaptiveBoundsBracket(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 4, 32} {
		P := dataset.GenerateProducts(rng, dataset.Exponential, 400, 6, 1000)
		W := dataset.GenerateWeights(rng, dataset.Exponential, 200, 6)
		a := NewAdaptive(n, P.Points, W.Points, 1000)
		pa := make([]uint8, 6)
		wa := make([]uint8, 6)
		for iter := 0; iter < 2000; iter++ {
			p := P.Points[rng.Intn(len(P.Points))]
			w := W.Points[rng.Intn(len(W.Points))]
			a.ApproxPoint(p, pa)
			a.ApproxWeight(w, wa)
			f := vec.Dot(p, w)
			lo, hi := a.Bounds(pa, wa)
			if f < lo-1e-9 || f > hi+1e-9 {
				t.Fatalf("n=%d: f=%v outside [%v, %v]", n, f, lo, hi)
			}
			if a.Lower(pa, wa) != lo || a.Upper(pa, wa) != hi {
				t.Fatal("Lower/Upper disagree with Bounds")
			}
		}
	}
}

// Values outside the sampled range (but inside maxP) must still bracket.
func TestAdaptiveBoundsForUnsampledValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	P := dataset.GenerateProducts(rng, dataset.Exponential, 300, 3, 1000)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 100, 3)
	a := NewAdaptive(16, P.Points, W.Points, 1000)
	pa := make([]uint8, 3)
	wa := make([]uint8, 3)
	// A query near the top of the declared range: far above any sampled
	// exponential value.
	q := vec.Vector{999.9, 0, 500}
	w := W.Points[0]
	a.ApproxPoint(q, pa)
	a.ApproxWeight(w, wa)
	f := vec.Dot(q, w)
	lo, hi := a.Bounds(pa, wa)
	if f < lo-1e-9 || f > hi+1e-9 {
		t.Fatalf("unsampled value: f=%v outside [%v, %v]", f, lo, hi)
	}
}

func TestCellOf(t *testing.T) {
	edges := []float64{0, 1, 5, 100}
	cases := []struct {
		x    float64
		want uint8
	}{
		{-3, 0}, {0, 0}, {0.5, 0}, {1, 1}, {3, 1}, {5, 2}, {99, 2}, {100, 2}, {200, 2},
	}
	for _, c := range cases {
		if got := cellOf(edges, c.x); got != c.want {
			t.Errorf("cellOf(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

// The point of the extension: on exponential data the adaptive grid's
// average bound interval is tighter than the equal-width grid's at the
// same n, yielding a higher classification rate.
func TestAdaptiveTighterOnSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const d, n = 6, 16
	P := dataset.GenerateProducts(rng, dataset.Exponential, 600, d, 10000)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 150, d)
	eq := New(n, 10000, 1)
	ad := NewAdaptive(n, P.Points, W.Points, 10000)

	classified := func(b Bounder) float64 {
		pix := NewPointIndex(b, P.Points)
		wix := NewWeightIndex(b, W.Points)
		decided, total := 0, 0
		for wi, w := range W.Points {
			q := P.Points[rng.Intn(len(P.Points))]
			fq := vec.Dot(w, q)
			for pi := range P.Points {
				total++
				lo, hi := b.Bounds(pix.Row(pi), wix.Row(wi))
				if hi < fq || lo > fq {
					decided++
				}
			}
		}
		return float64(decided) / float64(total)
	}
	eqRate := classified(eq)
	adRate := classified(ad)
	if adRate <= eqRate {
		t.Errorf("adaptive rate %v should beat equal-width %v on exponential data", adRate, eqRate)
	}
}

func TestAdaptivePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	P := []vec.Vector{{1, 2}}
	W := []vec.Vector{{0.5, 0.5}}
	mustPanic("n=0", func() { NewAdaptive(0, P, W, 10) })
	mustPanic("empty points", func() { NewAdaptive(4, nil, W, 10) })
	mustPanic("empty weights", func() { NewAdaptive(4, P, nil, 10) })
	mustPanic("bad max", func() { NewAdaptive(4, P, W, 0) })
	a := NewAdaptive(4, P, W, 10)
	mustPanic("short approx buffer", func() { a.ApproxPoint(vec.Vector{1, 2}, make([]uint8, 1)) })
	mustPanic("short weight buffer", func() { a.ApproxWeight(vec.Vector{1, 2}, make([]uint8, 1)) })
}

func TestAdaptiveMemoryComparable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 100, 3, 100)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 100, 3)
	a := NewAdaptive(32, P.Points, W.Points, 100)
	g := New(32, 100, 1)
	if a.MemoryBytes() != g.MemoryBytes() {
		t.Errorf("adaptive %d bytes vs equal-width %d: same table shape should match",
			a.MemoryBytes(), g.MemoryBytes())
	}
}
