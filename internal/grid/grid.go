// Package grid implements the paper's core contribution: the Grid-index
// (Section 3), a small table of pre-computed boundary products that turns
// the inner-product score into cheap lower and upper bounds, plus the
// approximate vectors P^(A) and W^(A) that index into it.
//
// With the value range of points divided into n partitions (boundaries
// α_p[i] = i·r_p/n) and likewise for weights (α_w[j] = j·r_w/n, r_w = 1),
// the Grid-index is the (n+1)×(n+1) table
//
//	Grid[i][j] = α_p[i] · α_w[j]
//
// For a point p with approximate vector p^(a) and weight w with w^(a),
//
//	L[f_w(p)] = Σ_i Grid[p^(a)[i]][w^(a)[i]]
//	U[f_w(p)] = Σ_i Grid[p^(a)[i]+1][w^(a)[i]+1]
//
// bracket the true score using additions and table lookups only; no
// multiplications. The three-way precedence classification (Cases 1–3 of
// Section 3.1) drives the GIR filtering.
package grid

import (
	"fmt"
	"runtime"
	"sync"

	"gridrank/internal/bits"
	"gridrank/internal/vec"
)

// MaxPartitions bounds the per-axis partition count so approximate cells
// fit one byte. The paper's largest evaluated grid is n = 128; byte cells
// keep P^(A) and W^(A) eight times denser than the raw float data, which
// is what makes the bound scan memory-bound-friendly.
const MaxPartitions = 256

// Bounder is the contract shared by the equal-width Grid of the paper and
// the adaptive (quantile-boundary) grid of its future-work Section 7: map
// values to partition cells and turn approximate vectors into score
// bounds. All implementations must guarantee Lower ≤ f_w(p) ≤ Upper.
type Bounder interface {
	// N returns the partition count per axis.
	N() int
	// MemoryBytes returns the footprint of the pre-computed tables.
	MemoryBytes() int
	// ApproxPoint fills dst with the point's approximate vector.
	ApproxPoint(p vec.Vector, dst []uint8) []uint8
	// ApproxWeight fills dst with the weight's approximate vector.
	ApproxWeight(w vec.Vector, dst []uint8) []uint8
	// Lower evaluates the lower score bound of Equation 3.
	Lower(pa, wa []uint8) float64
	// Upper evaluates the upper score bound of Equation 4.
	Upper(pa, wa []uint8) float64
	// Bounds returns both bounds in one pass.
	Bounds(pa, wa []uint8) (lower, upper float64)
	// LowerColumn returns the lower-bound addends for weight cell j,
	// indexed by point cell: col[pc] = Grid[pc][j]. The scan algorithms
	// gather one column per dimension once per weight vector and then
	// evaluate bounds with tight, cache-resident indexed loads.
	LowerColumn(j uint8) []float64
	// UpperColumn returns the upper-bound addends for weight cell j:
	// col[pc] = Grid[pc+1][j+1].
	UpperColumn(j uint8) []float64
}

// Grid is an equal-width Grid-index over a point value range [0, RangeP)
// and the weight range [0, RangeW).
type Grid struct {
	n      int     // number of partitions per axis
	rangeP float64 // point attribute range r_p
	rangeW float64 // weight range r_w (1 for simplex weights)
	// table is the flattened (n+1)×(n+1) boundary-product table.
	table []float64
	// loCols and upCols are column-major views of the table used by the
	// scan hot loops: loCols[j][pc] = table[pc][j] and
	// upCols[j][pc] = table[pc+1][j+1], each n entries long.
	loCols [][]float64
	upCols [][]float64
	// alphaP, alphaW are the n+1 partition boundaries per axis.
	alphaP []float64
	alphaW []float64
}

// New builds an n-partition Grid-index for point attributes in [0, rangeP)
// and weights in [0, rangeW). It panics on invalid parameters — grid shape
// is program configuration, not user input.
func New(n int, rangeP, rangeW float64) *Grid {
	if n < 1 || n > MaxPartitions {
		panic(fmt.Sprintf("grid: partitions %d outside [1, %d]", n, MaxPartitions))
	}
	if rangeP <= 0 || rangeW <= 0 {
		panic(fmt.Sprintf("grid: non-positive range (%v, %v)", rangeP, rangeW))
	}
	g := &Grid{
		n:      n,
		rangeP: rangeP,
		rangeW: rangeW,
		table:  make([]float64, (n+1)*(n+1)),
		alphaP: make([]float64, n+1),
		alphaW: make([]float64, n+1),
	}
	for i := 0; i <= n; i++ {
		g.alphaP[i] = float64(i) * rangeP / float64(n)
		g.alphaW[i] = float64(i) * rangeW / float64(n)
	}
	for i := 0; i <= n; i++ {
		row := g.table[i*(n+1):]
		for j := 0; j <= n; j++ {
			row[j] = g.alphaP[i] * g.alphaW[j]
		}
	}
	g.loCols, g.upCols = buildColumns(g.table, n)
	return g
}

// Table returns the flattened (n+1)×(n+1) boundary-product table — the
// persist layer stores it verbatim so a load never recomputes it. The
// slice is the grid's own storage; callers must not modify it.
func (g *Grid) Table() []float64 { return g.table }

// FromTable rebuilds a Grid around a stored boundary-product table,
// which may alias mapped memory and is adopted without copying. Every
// entry is verified against the recomputation α_p[i]·α_w[j] — the same
// IEEE expressions New evaluates, so a table written by Table() always
// passes and a corrupted one never does. Only the column views (a few
// KiB) are rebuilt on the heap. Returns an error rather than panicking:
// the table comes from a file, not program configuration.
func FromTable(n int, rangeP, rangeW float64, table []float64) (*Grid, error) {
	if n < 1 || n > MaxPartitions {
		return nil, fmt.Errorf("grid: partitions %d outside [1, %d]", n, MaxPartitions)
	}
	if !(rangeP > 0) || !(rangeW > 0) {
		return nil, fmt.Errorf("grid: non-positive range (%v, %v)", rangeP, rangeW)
	}
	if len(table) != (n+1)*(n+1) {
		return nil, fmt.Errorf("grid: table has %d entries, want %d", len(table), (n+1)*(n+1))
	}
	g := &Grid{
		n:      n,
		rangeP: rangeP,
		rangeW: rangeW,
		table:  table,
		alphaP: make([]float64, n+1),
		alphaW: make([]float64, n+1),
	}
	for i := 0; i <= n; i++ {
		g.alphaP[i] = float64(i) * rangeP / float64(n)
		g.alphaW[i] = float64(i) * rangeW / float64(n)
	}
	for i := 0; i <= n; i++ {
		row := table[i*(n+1):]
		for j := 0; j <= n; j++ {
			if want := g.alphaP[i] * g.alphaW[j]; row[j] != want {
				return nil, fmt.Errorf("grid: table[%d][%d] = %v, want %v", i, j, row[j], want)
			}
		}
	}
	g.loCols, g.upCols = buildColumns(g.table, n)
	return g, nil
}

// buildColumns transposes the boundary table into the per-weight-cell
// column slices served by LowerColumn and UpperColumn.
func buildColumns(table []float64, n int) (lo, up [][]float64) {
	stride := n + 1
	lo = make([][]float64, n)
	up = make([][]float64, n)
	for j := 0; j < n; j++ {
		l := make([]float64, n)
		u := make([]float64, n)
		for pc := 0; pc < n; pc++ {
			l[pc] = table[pc*stride+j]
			u[pc] = table[(pc+1)*stride+j+1]
		}
		lo[j] = l
		up[j] = u
	}
	return lo, up
}

// N returns the number of partitions per axis.
func (g *Grid) N() int { return g.n }

// RangeP returns the point attribute range.
func (g *Grid) RangeP() float64 { return g.rangeP }

// RangeW returns the weight range.
func (g *Grid) RangeW() float64 { return g.rangeW }

// MemoryBytes returns the size of the boundary-product table, the memory
// cost discussed at the end of Section 5.3 (n=32 → below 8 KiB + bounds).
func (g *Grid) MemoryBytes() int {
	return 8 * (len(g.table) + 2*g.n*g.n + len(g.alphaP) + len(g.alphaW))
}

// At returns Grid[i][j] = α_p[i]·α_w[j].
func (g *Grid) At(i, j int) float64 { return g.table[i*(g.n+1)+j] }

// CellP returns the partition index of a point attribute value:
// ⌊x·n/r_p⌋ clamped into [0, n-1], so x = r_p and small floating-point
// excursions land in the last cell.
func (g *Grid) CellP(x float64) uint8 { return cell(x, g.rangeP, g.n) }

// CellW returns the partition index of a weight value.
func (g *Grid) CellW(x float64) uint8 { return cell(x, g.rangeW, g.n) }

func cell(x, r float64, n int) uint8 {
	if x <= 0 {
		return 0
	}
	c := int(x * float64(n) / r)
	if c >= n {
		c = n - 1
	}
	return uint8(c)
}

// ApproxPoint fills dst with the approximate vector p^(a) of a point.
func (g *Grid) ApproxPoint(p vec.Vector, dst []uint8) []uint8 {
	if len(dst) != len(p) {
		panic(fmt.Sprintf("grid: approx buffer length %d, want %d", len(dst), len(p)))
	}
	for i, x := range p {
		dst[i] = g.CellP(x)
	}
	return dst
}

// ApproxWeight fills dst with the approximate vector w^(a) of a weight.
func (g *Grid) ApproxWeight(w vec.Vector, dst []uint8) []uint8 {
	if len(dst) != len(w) {
		panic(fmt.Sprintf("grid: approx buffer length %d, want %d", len(dst), len(w)))
	}
	for i, x := range w {
		dst[i] = g.CellW(x)
	}
	return dst
}

// Lower evaluates Equation (3): the lower score bound from approximate
// vectors pa and wa, using d additions and d table lookups.
func (g *Grid) Lower(pa, wa []uint8) float64 {
	stride := g.n + 1
	var s float64
	for i, pi := range pa {
		s += g.table[int(pi)*stride+int(wa[i])]
	}
	return s
}

// Upper evaluates Equation (4): the upper score bound.
func (g *Grid) Upper(pa, wa []uint8) float64 {
	stride := g.n + 1
	var s float64
	for i, pi := range pa {
		s += g.table[(int(pi)+1)*stride+int(wa[i])+1]
	}
	return s
}

// LowerColumn returns the lower-bound addends for weight cell j.
// The returned slice is the grid's own storage; callers must not modify it.
func (g *Grid) LowerColumn(j uint8) []float64 { return g.loCols[j] }

// UpperColumn returns the upper-bound addends for weight cell j.
func (g *Grid) UpperColumn(j uint8) []float64 { return g.upCols[j] }

// Bounds returns both bounds in one pass.
func (g *Grid) Bounds(pa, wa []uint8) (lower, upper float64) {
	stride := g.n + 1
	for i, pi := range pa {
		base := int(pi)*stride + int(wa[i])
		lower += g.table[base]
		upper += g.table[base+stride+1]
	}
	return lower, upper
}

// Precedence is the three-way classification of Section 3.1.
type Precedence int8

const (
	// PrecedesQ: Case 1, U[f_w(p)] < f_w(q): p ranks above q under w.
	PrecedesQ Precedence = iota - 1
	// Incomparable: Case 3, the bounds straddle f_w(q); refinement needed.
	Incomparable
	// QPrecedes: Case 2, L[f_w(p)] > f_w(q): p cannot affect q's rank.
	QPrecedes
)

// Classify applies the three cases to approximate vectors against the exact
// query score fq = f_w(q). Following Algorithm 1 (line 5), ties on the
// upper bound count as Case 1 (U ≤ fq ⇒ p precedes), which is safe under
// Definition 2's q-favouring tie rule only when scores are continuous; the
// GIR algorithms treat the boundary case as incomparable to stay exact, so
// Classify uses strict inequalities on both sides.
func (g *Grid) Classify(pa, wa []uint8, fq float64) Precedence {
	lo, hi := g.Bounds(pa, wa)
	switch {
	case hi < fq:
		return PrecedesQ
	case lo > fq:
		return QPrecedes
	default:
		return Incomparable
	}
}

// Index pairs a Bounder with the pre-computed approximate vectors of a
// data set (P^(A) or W^(A) of the paper), stored unpacked for the hot
// loops and optionally bit-packed for storage (Section 3.2).
type Index struct {
	grid Bounder
	dim  int
	// approx holds count×dim cells contiguously, one byte per cell.
	approx []uint8
}

// NewPointIndex pre-computes P^(A) for a point set, using every CPU for
// large sets (this is the cold-start cost of a server boot; see
// NewPointIndexParallel for explicit worker control).
func NewPointIndex(g Bounder, points []vec.Vector) *Index {
	return NewPointIndexParallel(g, points, 0)
}

// NewWeightIndex pre-computes W^(A) for a weight set, using every CPU
// for large sets.
func NewWeightIndex(g Bounder, weights []vec.Vector) *Index {
	return NewWeightIndexParallel(g, weights, 0)
}

// NewPointIndexParallel is NewPointIndex on an explicit number of
// goroutines; 0 or negative means GOMAXPROCS.
func NewPointIndexParallel(g Bounder, points []vec.Vector, workers int) *Index {
	return newIndex(g, points, true, workers)
}

// NewWeightIndexParallel is NewWeightIndex on an explicit number of
// goroutines; 0 or negative means GOMAXPROCS.
func NewWeightIndexParallel(g Bounder, weights []vec.Vector, workers int) *Index {
	return newIndex(g, weights, false, workers)
}

// parallelRowThreshold is the cell count below which row computation
// stays serial: tiny sets finish before goroutines would even start.
const parallelRowThreshold = 1 << 14

func newIndex(g Bounder, data []vec.Vector, isPoint bool, workers int) *Index {
	if len(data) == 0 {
		panic("grid: empty data set")
	}
	dim := len(data[0])
	// Validate up front so the fill workers cannot panic off-goroutine.
	for i, v := range data {
		if len(v) != dim {
			panic(fmt.Sprintf("grid: vector %d has dimension %d, want %d", i, len(v), dim))
		}
	}
	ix := &Index{grid: g, dim: dim, approx: make([]uint8, len(data)*dim)}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(data) {
		workers = len(data)
	}
	if workers <= 1 || len(ix.approx) < parallelRowThreshold {
		ix.fillRows(data, isPoint, 0, len(data))
		return ix
	}
	// Static contiguous shards: each row is independent and written to a
	// disjoint region, so the result is identical for any worker count.
	var wg sync.WaitGroup
	per := (len(data) + workers - 1) / workers
	for start := 0; start < len(data); start += per {
		end := start + per
		if end > len(data) {
			end = len(data)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			ix.fillRows(data, isPoint, start, end)
		}(start, end)
	}
	wg.Wait()
	return ix
}

// fillRows computes the approximate vectors of rows [start, end).
func (ix *Index) fillRows(data []vec.Vector, isPoint bool, start, end int) {
	for i := start; i < end; i++ {
		row := ix.approx[i*ix.dim : (i+1)*ix.dim]
		if isPoint {
			ix.grid.ApproxPoint(data[i], row)
		} else {
			ix.grid.ApproxWeight(data[i], row)
		}
	}
}

// IndexFromCells builds an Index view over a stored cell array, which
// may alias mapped memory and is adopted without copying (so it must
// not be modified afterward). Shape errors are returned, not panicked:
// the cells come from a file.
func IndexFromCells(g Bounder, dim int, cells []uint8) (*Index, error) {
	if dim <= 0 || len(cells) == 0 || len(cells)%dim != 0 {
		return nil, fmt.Errorf("grid: cell store length %d not a positive multiple of dim %d", len(cells), dim)
	}
	return &Index{grid: g, dim: dim, approx: cells}, nil
}

// Grid returns the underlying Grid.
func (ix *Index) Grid() Bounder { return ix.grid }

// Dim returns the dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Count returns the number of indexed vectors.
func (ix *Index) Count() int { return len(ix.approx) / ix.dim }

// Row returns the approximate vector of element i. The returned slice
// aliases the index storage and must not be modified.
func (ix *Index) Row(i int) []uint8 {
	return ix.approx[i*ix.dim : (i+1)*ix.dim]
}

// Cells returns the flat cell store (Count()·Dim() bytes, row-major). The
// scan hot loops slice it directly; callers must not modify it.
func (ix *Index) Cells() []uint8 { return ix.approx }

// Pack compresses the approximate vectors into a bit-string store with
// ⌈log₂ n⌉ bits per dimension (Section 3.2).
func (ix *Index) Pack() *bits.Packed {
	b := bitsFor(ix.grid.N())
	p := bits.NewPacked(ix.Count(), ix.dim, b)
	buf := make([]uint16, ix.dim)
	for i := 0; i < ix.Count(); i++ {
		row := ix.Row(i)
		for j, v := range row {
			buf[j] = uint16(v)
		}
		p.Encode(i, buf)
	}
	return p
}

// PackRows compresses the approximate vectors element-wise into the
// fixed-stride PackedRows layout at b bits per cell (1<<b must cover the
// grid's partition count). Unlike Pack, which packs contiguously for
// minimal size, PackRows keeps each element's row word-aligned — the
// layout the persist format stores so an mmap-ed file can serve rows
// in place.
func (ix *Index) PackRows(b int) *bits.PackedRows {
	p := bits.NewPackedRows(ix.Count(), ix.dim, b)
	for i := 0; i < ix.Count(); i++ {
		p.EncodeRow(i, ix.Row(i))
	}
	return p
}

// UnpackRowsIndex reconstructs an Index from a fixed-stride packed store
// and its Grid.
func UnpackRowsIndex(g Bounder, p *bits.PackedRows) *Index {
	ix := &Index{grid: g, dim: p.Dim(), approx: make([]uint8, p.Count()*p.Dim())}
	for i := 0; i < p.Count(); i++ {
		p.DecodeRow(i, ix.approx[i*ix.dim:(i+1)*ix.dim])
	}
	return ix
}

// UnpackIndex reconstructs an Index from a packed store and its Grid.
func UnpackIndex(g Bounder, p *bits.Packed) *Index {
	ix := &Index{grid: g, dim: p.Dim(), approx: make([]uint8, p.Count()*p.Dim())}
	buf := make([]uint16, p.Dim())
	for i := 0; i < p.Count(); i++ {
		p.Decode(i, buf)
		row := ix.approx[i*ix.dim : (i+1)*ix.dim]
		for j, v := range buf {
			row[j] = uint8(v)
		}
	}
	return ix
}

// bitsFor returns ⌈log₂ n⌉, at least 1.
func bitsFor(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}
