// Package dataset generates and stores the product and preference data sets
// of the paper's evaluation (Section 6.1).
//
// Synthetic product sets: uniform (UN), clustered (CL) and anti-correlated
// (AC), with attribute values in [0, Range). Additional normal (NO) and
// exponential (EX) sets reproduce Table 4. Preference sets are generated on
// the standard simplex (weights are non-negative and sum to one), uniformly
// or in clusters, following the conventions of Vlachou et al. that the paper
// reuses.
//
// The three real data sets of the paper (HOUSE, COLOR, DIANPING) are not
// redistributable, so this package ships statistical simulators that
// reproduce the structural properties the algorithms are sensitive to —
// correlation, clustering and per-dimension skew. See DESIGN.md §5 for the
// substitution argument.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"gridrank/internal/vec"
)

// DefaultRange is the paper's attribute value range [0, 10K).
const DefaultRange = 10000.0

// Distribution identifies a generator for product or weight data.
type Distribution string

// Product distributions (and, where noted, weight distributions).
const (
	Uniform        Distribution = "UN" // uniform in [0, Range)^d
	Clustered      Distribution = "CL" // Gaussian clusters, ∛n centroids
	AntiCorrelated Distribution = "AC" // anti-correlated (skyline-style)
	Normal         Distribution = "NO" // N(Range/2, (0.1·Range)²) clamped
	Exponential    Distribution = "EX" // Exp(λ=2) scaled into [0, Range)
	House          Distribution = "HOUSE"
	Color          Distribution = "COLOR"
	Dianping       Distribution = "DIANPING"
)

// ClusterVariance is the paper's cluster variance σ² = 0.1² (on the unit
// scale; scaled by Range for product data).
const ClusterVariance = 0.1

// Dataset is a set of d-dimensional vectors with a declared value range.
// For product data, every attribute lies in [0, Range). For weight data,
// Range is 1 and every vector lies on the standard simplex.
type Dataset struct {
	Dim    int
	Range  float64
	Points []vec.Vector
}

// Len returns the number of vectors.
func (ds *Dataset) Len() int { return len(ds.Points) }

// Validate checks the structural invariants of the data set: consistent
// dimensionality and every attribute inside [0, Range]. It returns the
// first violation found.
func (ds *Dataset) Validate() error {
	if ds.Dim <= 0 {
		return fmt.Errorf("dataset: non-positive dimension %d", ds.Dim)
	}
	if ds.Range <= 0 {
		return fmt.Errorf("dataset: non-positive range %v", ds.Range)
	}
	for i, p := range ds.Points {
		if len(p) != ds.Dim {
			return fmt.Errorf("dataset: point %d has dimension %d, want %d", i, len(p), ds.Dim)
		}
		for j, x := range p {
			if math.IsNaN(x) || x < 0 || x > ds.Range {
				return fmt.Errorf("dataset: point %d attribute %d = %v outside [0, %v]", i, j, x, ds.Range)
			}
		}
	}
	return nil
}

// ValidateWeights checks that every vector is a legal preference vector:
// non-negative weights summing to 1 within tolerance.
func (ds *Dataset) ValidateWeights() error {
	for i, w := range ds.Points {
		if len(w) != ds.Dim {
			return fmt.Errorf("dataset: weight %d has dimension %d, want %d", i, len(w), ds.Dim)
		}
		var sum float64
		for j, x := range w {
			if math.IsNaN(x) || x < 0 {
				return fmt.Errorf("dataset: weight %d component %d = %v is negative or NaN", i, j, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("dataset: weight %d sums to %v, want 1", i, sum)
		}
	}
	return nil
}

// clamp limits x into [0, r), keeping generated attributes inside the
// declared range (the paper's generators clamp the same way).
func clamp(x, r float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= r {
		return math.Nextafter(r, 0)
	}
	return x
}

// GenerateProducts generates n product points of the given synthetic or
// simulated-real distribution. It panics on an unknown distribution, since
// callers select from the package constants.
func GenerateProducts(rng *rand.Rand, dist Distribution, n, d int, r float64) *Dataset {
	switch dist {
	case Uniform:
		return uniformProducts(rng, n, d, r)
	case Clustered:
		return clusteredProducts(rng, n, d, r)
	case AntiCorrelated:
		return antiCorrelatedProducts(rng, n, d, r)
	case Normal:
		return normalProducts(rng, n, d, r)
	case Exponential:
		return exponentialProducts(rng, n, d, r)
	case House:
		return HouseProducts(rng, n)
	case Color:
		return ColorProducts(rng, n)
	case Dianping:
		return DianpingProducts(rng, n)
	default:
		panic(fmt.Sprintf("dataset: unknown product distribution %q", dist))
	}
}

func uniformProducts(rng *rand.Rand, n, d int, r float64) *Dataset {
	ds := &Dataset{Dim: d, Range: r, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		p := make(vec.Vector, d)
		for j := range p {
			p[j] = rng.Float64() * r
		}
		ds.Points[i] = p
	}
	return ds
}

// clusteredProducts draws ∛n centroids uniformly and places Gaussian
// clusters of variance (0.1·r)² around them, per the paper's Table 5.
func clusteredProducts(rng *rand.Rand, n, d int, r float64) *Dataset {
	nc := numClusters(n)
	centroids := make([]vec.Vector, nc)
	for i := range centroids {
		c := make(vec.Vector, d)
		for j := range c {
			c[j] = rng.Float64() * r
		}
		centroids[i] = c
	}
	sigma := ClusterVariance * r
	ds := &Dataset{Dim: d, Range: r, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		c := centroids[rng.Intn(nc)]
		p := make(vec.Vector, d)
		for j := range p {
			p[j] = clamp(c[j]+rng.NormFloat64()*sigma, r)
		}
		ds.Points[i] = p
	}
	return ds
}

// antiCorrelatedProducts follows the standard construction (Börzsönyi et
// al., reused by the reverse top-k papers): points concentrate around the
// hyperplane Σx = d·r/2, so a point good in one dimension is bad in others.
func antiCorrelatedProducts(rng *rand.Rand, n, d int, r float64) *Dataset {
	ds := &Dataset{Dim: d, Range: r, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		p := make(vec.Vector, d)
		// Plane offset drawn near the center with small variance.
		target := 0.5 + rng.NormFloat64()*0.05
		if target < 0.05 {
			target = 0.05
		}
		if target > 0.95 {
			target = 0.95
		}
		// Split target·d mass across dimensions with strong negative
		// correlation: repeatedly move mass between random pairs.
		for j := range p {
			p[j] = target
		}
		for s := 0; s < d*2; s++ {
			a, b := rng.Intn(d), rng.Intn(d)
			if a == b {
				continue
			}
			maxShift := math.Min(p[a], 1-p[b])
			shift := rng.Float64() * maxShift
			p[a] -= shift
			p[b] += shift
		}
		for j := range p {
			p[j] = clamp(p[j]*r, r)
		}
		ds.Points[i] = p
	}
	return ds
}

func normalProducts(rng *rand.Rand, n, d int, r float64) *Dataset {
	mu, sigma := r/2, ClusterVariance*r
	ds := &Dataset{Dim: d, Range: r, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		p := make(vec.Vector, d)
		for j := range p {
			p[j] = clamp(mu+rng.NormFloat64()*sigma, r)
		}
		ds.Points[i] = p
	}
	return ds
}

// exponentialProducts draws Exp(λ=2) per dimension (the paper's Table 4
// setting) and scales the unit value into [0, r).
func exponentialProducts(rng *rand.Rand, n, d int, r float64) *Dataset {
	const lambda = 2.0
	ds := &Dataset{Dim: d, Range: r, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		p := make(vec.Vector, d)
		for j := range p {
			p[j] = clamp(rng.ExpFloat64()/lambda*r/2, r)
		}
		ds.Points[i] = p
	}
	return ds
}

// numClusters returns the paper's ∛n cluster count, at least 1.
func numClusters(n int) int {
	nc := int(math.Cbrt(float64(n)))
	if nc < 1 {
		nc = 1
	}
	return nc
}

// GenerateWeights generates n preference vectors on the standard simplex.
// Supported distributions: Uniform (flat Dirichlet), Clustered (∛n cluster
// profiles, per-cluster concentration), Normal and Exponential (component
// draws normalized, for Table 4), and Dianping (user aspect-importance
// profiles).
func GenerateWeights(rng *rand.Rand, dist Distribution, n, d int) *Dataset {
	switch dist {
	case Uniform:
		return uniformWeights(rng, n, d)
	case Clustered:
		return clusteredWeights(rng, n, d)
	case Normal:
		return normalWeights(rng, n, d)
	case Exponential:
		return exponentialWeights(rng, n, d)
	case Dianping:
		return DianpingWeights(rng, n)
	default:
		panic(fmt.Sprintf("dataset: unknown weight distribution %q", dist))
	}
}

// uniformWeights draws uniformly on the simplex via normalized exponentials
// (the Dirichlet(1,…,1) construction).
func uniformWeights(rng *rand.Rand, n, d int) *Dataset {
	ds := &Dataset{Dim: d, Range: 1, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		ds.Points[i] = simplexUniform(rng, d)
	}
	return ds
}

func simplexUniform(rng *rand.Rand, d int) vec.Vector {
	w := make(vec.Vector, d)
	for {
		for j := range w {
			w[j] = rng.ExpFloat64()
		}
		if vec.Normalize(w) {
			return w
		}
	}
}

// clusteredWeights draws ∛n profile vectors on the simplex and perturbs
// each sample around its profile with σ = 0.1, re-normalizing, following
// the paper's clustered-W construction.
func clusteredWeights(rng *rand.Rand, n, d int) *Dataset {
	nc := numClusters(n)
	profiles := make([]vec.Vector, nc)
	for i := range profiles {
		profiles[i] = simplexUniform(rng, d)
	}
	ds := &Dataset{Dim: d, Range: 1, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		c := profiles[rng.Intn(nc)]
		w := make(vec.Vector, d)
		for {
			for j := range w {
				w[j] = math.Max(0, c[j]+rng.NormFloat64()*ClusterVariance)
			}
			if vec.Normalize(w) {
				break
			}
		}
		ds.Points[i] = w
	}
	return ds
}

func normalWeights(rng *rand.Rand, n, d int) *Dataset {
	ds := &Dataset{Dim: d, Range: 1, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		w := make(vec.Vector, d)
		for {
			for j := range w {
				w[j] = math.Max(0, 0.5+rng.NormFloat64()*ClusterVariance)
			}
			if vec.Normalize(w) {
				break
			}
		}
		ds.Points[i] = w
	}
	return ds
}

// SparseWeights generates n preference vectors with exactly nnz non-zero
// components each (uniform on the simplex restricted to nnz random
// dimensions). This models the paper's future-work observation that "a
// user is normally interested in a few attributes of the products" and
// feeds the sparse GIR optimization.
func SparseWeights(rng *rand.Rand, n, d, nnz int) *Dataset {
	if nnz < 1 || nnz > d {
		panic(fmt.Sprintf("dataset: nnz %d outside [1, %d]", nnz, d))
	}
	ds := &Dataset{Dim: d, Range: 1, Points: make([]vec.Vector, n)}
	dims := make([]int, d)
	for i := range dims {
		dims[i] = i
	}
	for i := range ds.Points {
		rng.Shuffle(d, func(a, b int) { dims[a], dims[b] = dims[b], dims[a] })
		w := make(vec.Vector, d)
		for {
			var sum float64
			for _, dim := range dims[:nnz] {
				w[dim] = rng.ExpFloat64()
				sum += w[dim]
			}
			if sum > 0 {
				for _, dim := range dims[:nnz] {
					w[dim] /= sum
				}
				break
			}
		}
		ds.Points[i] = w
	}
	return ds
}

func exponentialWeights(rng *rand.Rand, n, d int) *Dataset {
	const lambda = 2.0
	ds := &Dataset{Dim: d, Range: 1, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		w := make(vec.Vector, d)
		for {
			for j := range w {
				w[j] = rng.ExpFloat64() / lambda
			}
			if vec.Normalize(w) {
				break
			}
		}
		ds.Points[i] = w
	}
	return ds
}
