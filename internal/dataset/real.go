package dataset

import (
	"math"
	"math/rand"

	"gridrank/internal/vec"
)

// This file implements the statistical simulators for the paper's three
// real data sets. The real files are not redistributable; the simulators
// reproduce the structure the query algorithms react to (correlation,
// clustering, per-dimension skew). DESIGN.md §5 documents each substitution.

// HouseSize is the cardinality of the paper's HOUSE data set: 201,760
// 6-dimensional tuples of a US household's annual expense distribution on
// gas, electricity, water, heating, insurance and property tax.
const HouseSize = 201760

// HouseDim is the dimensionality of HOUSE.
const HouseDim = 6

// houseAlpha are Dirichlet concentration parameters per expense category.
// Heating and property tax dominate and are the most variable (heavy right
// tail across households); water is small and stable. The absolute values
// only need to reproduce budget-share skew, not census-exact numbers.
var houseAlpha = [HouseDim]float64{
	2.0, // gas
	3.0, // electricity
	1.2, // water
	4.0, // heating
	2.5, // insurance
	5.0, // property tax
}

// HouseProducts simulates the HOUSE data set: n 6-d expense-share vectors
// (percentages of annual payment) scaled into [0, DefaultRange).
// Pass n <= 0 for the full paper cardinality.
func HouseProducts(rng *rand.Rand, n int) *Dataset {
	if n <= 0 {
		n = HouseSize
	}
	ds := &Dataset{Dim: HouseDim, Range: DefaultRange, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		p := dirichlet(rng, houseAlpha[:])
		for j := range p {
			p[j] = clamp(p[j]*DefaultRange, DefaultRange)
		}
		ds.Points[i] = p
	}
	return ds
}

// ColorSize is the cardinality of the paper's COLOR data set: 68,040
// 9-dimensional HSV color features of images.
const ColorSize = 68040

// ColorDim is the dimensionality of COLOR.
const ColorDim = 9

// ColorProducts simulates the COLOR data set: image features cluster
// strongly (images of similar scenes share color statistics), and the
// higher moments have smaller variance than the means. We draw a
// Gaussian mixture with ∛n components and per-dimension variance decay.
// Pass n <= 0 for the full paper cardinality.
func ColorProducts(rng *rand.Rand, n int) *Dataset {
	if n <= 0 {
		n = ColorSize
	}
	const r = DefaultRange
	nc := numClusters(n)
	// Per-dimension spread decays: the mean dims (first three: H,S,V means)
	// span the full range while the higher-moment dims concentrate, as in
	// the real HSV feature files.
	spread := make([]float64, ColorDim)
	for j := range spread {
		spread[j] = 1 / (1 + float64(j)/3)
	}
	centroids := make([]vec.Vector, nc)
	for i := range centroids {
		c := make(vec.Vector, ColorDim)
		for j := range c {
			c[j] = rng.Float64() * r * spread[j]
		}
		centroids[i] = c
	}
	ds := &Dataset{Dim: ColorDim, Range: r, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		c := centroids[rng.Intn(nc)]
		p := make(vec.Vector, ColorDim)
		for j := range p {
			sigma := 0.12 * r * spread[j]
			p[j] = clamp(c[j]+rng.NormFloat64()*sigma, r)
		}
		ds.Points[i] = p
	}
	return ds
}

// DianpingRestaurants and DianpingUsers are the paper's DIANPING
// cardinalities: 209,132 restaurants and 510,071 users, 6 review aspects
// (rate, food flavor, cost, service, environment, waiting time).
const (
	DianpingRestaurants = 209132
	DianpingUsers       = 510071
	DianpingDim         = 6
)

// DianpingProducts simulates the restaurant side of DIANPING: each
// restaurant's attribute vector is the average of its review scores per
// aspect. Averages concentrate around a latent per-restaurant quality, and
// aspects are positively correlated (a good restaurant tends to be good at
// most aspects), with cost and waiting time the least correlated.
// Pass n <= 0 for the full paper cardinality.
func DianpingProducts(rng *rand.Rand, n int) *Dataset {
	if n <= 0 {
		n = DianpingRestaurants
	}
	const r = DefaultRange
	// Correlation loadings per aspect on the latent quality factor.
	loading := [DianpingDim]float64{0.9, 0.85, 0.4, 0.8, 0.75, 0.35}
	ds := &Dataset{Dim: DianpingDim, Range: r, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		quality := rng.NormFloat64() // latent restaurant quality
		p := make(vec.Vector, DianpingDim)
		for j := range p {
			l := loading[j]
			z := l*quality + math.Sqrt(1-l*l)*rng.NormFloat64()
			// Review scores live on a 0..5-star scale averaged over many
			// reviews; map the latent z to the attribute range. Smaller is
			// preferable in this library, so z is used directly (a low
			// value means "ranked early").
			p[j] = clamp((0.5+z*0.15)*r, r)
		}
		ds.Points[i] = p
	}
	return ds
}

// dianpingProfiles are archetypal aspect-importance profiles: overall-rate
// driven, foodies, budget eaters, service-sensitive, ambience-sensitive,
// and the impatient. User preferences are Dirichlet draws around a profile.
var dianpingProfiles = [][]float64{
	{8, 3, 2, 2, 2, 1}, // rate-driven
	{3, 9, 2, 2, 2, 1}, // foodie
	{2, 3, 9, 1, 1, 2}, // budget
	{2, 2, 1, 9, 3, 2}, // service
	{2, 2, 1, 3, 9, 2}, // ambience
	{3, 2, 2, 2, 1, 9}, // impatient
}

// DianpingWeights simulates the user side of DIANPING: each user's
// preference vector is the average emphasis of the user's reviews across
// the six aspects, drawn as a Dirichlet around one of six archetypal
// profiles. Pass n <= 0 for the full paper cardinality.
func DianpingWeights(rng *rand.Rand, n int) *Dataset {
	if n <= 0 {
		n = DianpingUsers
	}
	ds := &Dataset{Dim: DianpingDim, Range: 1, Points: make([]vec.Vector, n)}
	for i := range ds.Points {
		profile := dianpingProfiles[rng.Intn(len(dianpingProfiles))]
		ds.Points[i] = dirichlet(rng, profile)
	}
	return ds
}

// dirichlet draws from Dirichlet(alpha) via normalized Gamma variates.
func dirichlet(rng *rand.Rand, alpha []float64) vec.Vector {
	w := make(vec.Vector, len(alpha))
	for {
		for j, a := range alpha {
			w[j] = gammaDraw(rng, a)
		}
		if vec.Normalize(w) {
			return w
		}
	}
}

// gammaDraw samples Gamma(shape, 1) using Marsaglia–Tsang for shape >= 1
// and the boost transform for shape < 1.
func gammaDraw(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaDraw(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
