package dataset

import (
	"math"
	"math/rand"
	"testing"

	"gridrank/internal/vec"
)

func TestGenerateProductsAllDistributionsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dist := range []Distribution{Uniform, Clustered, AntiCorrelated, Normal, Exponential} {
		t.Run(string(dist), func(t *testing.T) {
			ds := GenerateProducts(rng, dist, 500, 6, DefaultRange)
			if ds.Len() != 500 {
				t.Fatalf("got %d points, want 500", ds.Len())
			}
			if ds.Dim != 6 || ds.Range != DefaultRange {
				t.Fatalf("bad metadata: %+v", ds)
			}
			if err := ds.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGenerateProductsUnknownDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown distribution should panic")
		}
	}()
	GenerateProducts(rand.New(rand.NewSource(1)), "XX", 10, 2, 1)
}

func TestGenerateWeightsAllDistributionsOnSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dist := range []Distribution{Uniform, Clustered, Normal, Exponential, Dianping} {
		t.Run(string(dist), func(t *testing.T) {
			ds := GenerateWeights(rng, dist, 500, 6)
			if ds.Len() != 500 {
				t.Fatalf("got %d weights, want 500", ds.Len())
			}
			if err := ds.ValidateWeights(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUniformCoversRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := GenerateProducts(rng, Uniform, 5000, 3, 100)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range ds.Points {
		for _, x := range p {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
	}
	if lo > 5 || hi < 95 {
		t.Errorf("uniform data should span the range, got [%v, %v]", lo, hi)
	}
}

func TestClusteredIsClustered(t *testing.T) {
	// Average nearest-centroid distance must be far below what uniform
	// data would show: points sit within ~σ of a centroid.
	rng := rand.New(rand.NewSource(4))
	ds := GenerateProducts(rng, Clustered, 2000, 4, 1000)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Variance per dimension of clustered data (mixture) is dominated by
	// the centroid spread; instead check local density: the distance from
	// each point to its nearest other point should be much smaller than
	// for uniform data of the same size.
	avgCl := avgNNDist(ds.Points[:300])
	un := GenerateProducts(rng, Uniform, 2000, 4, 1000)
	avgUn := avgNNDist(un.Points[:300])
	if avgCl >= avgUn {
		t.Errorf("clustered data should be locally denser: clustered NN %v >= uniform NN %v", avgCl, avgUn)
	}
}

func avgNNDist(pts []vec.Vector) float64 {
	var total float64
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			var d2 float64
			for k := range p {
				v := p[k] - q[k]
				d2 += v * v
			}
			best = math.Min(best, d2)
		}
		total += math.Sqrt(best)
	}
	return total / float64(len(pts))
}

func TestAntiCorrelatedNegativeCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := GenerateProducts(rng, AntiCorrelated, 5000, 2, 1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pearson correlation between dim 0 and dim 1 should be clearly negative.
	var sx, sy, sxx, syy, sxy float64
	n := float64(ds.Len())
	for _, p := range ds.Points {
		sx += p[0]
		sy += p[1]
		sxx += p[0] * p[0]
		syy += p[1] * p[1]
		sxy += p[0] * p[1]
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	r := cov / math.Sqrt(vx*vy)
	if r > -0.3 {
		t.Errorf("anti-correlated data has correlation %v, want clearly negative", r)
	}
}

func TestExponentialSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := GenerateProducts(rng, Exponential, 5000, 1, 1000)
	var mean float64
	for _, p := range ds.Points {
		mean += p[0]
	}
	mean /= float64(ds.Len())
	// Exp data piles up near zero: mean well below the range midpoint.
	if mean > 400 {
		t.Errorf("exponential mean %v too high, want << 500", mean)
	}
	var below int
	for _, p := range ds.Points {
		if p[0] < mean {
			below++
		}
	}
	if frac := float64(below) / float64(ds.Len()); frac < 0.55 {
		t.Errorf("exponential data should be right-skewed, %v below mean", frac)
	}
}

func TestNormalConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := GenerateProducts(rng, Normal, 5000, 1, 1000)
	within := 0
	for _, p := range ds.Points {
		if math.Abs(p[0]-500) <= 200 { // 2σ = 200
			within++
		}
	}
	if frac := float64(within) / float64(ds.Len()); frac < 0.90 {
		t.Errorf("normal data: only %v within 2σ of the mean", frac)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	ds := &Dataset{Dim: 2, Range: 10, Points: []vec.Vector{{1, 2}, {3}}}
	if err := ds.Validate(); err == nil {
		t.Error("dimension mismatch not caught")
	}
	ds = &Dataset{Dim: 2, Range: 10, Points: []vec.Vector{{1, 11}}}
	if err := ds.Validate(); err == nil {
		t.Error("out-of-range value not caught")
	}
	ds = &Dataset{Dim: 2, Range: 10, Points: []vec.Vector{{1, math.NaN()}}}
	if err := ds.Validate(); err == nil {
		t.Error("NaN not caught")
	}
	ds = &Dataset{Dim: 0, Range: 10}
	if err := ds.Validate(); err == nil {
		t.Error("zero dimension not caught")
	}
	ds = &Dataset{Dim: 2, Range: 0}
	if err := ds.Validate(); err == nil {
		t.Error("zero range not caught")
	}
}

func TestValidateWeightsCatchesViolations(t *testing.T) {
	ds := &Dataset{Dim: 2, Range: 1, Points: []vec.Vector{{0.5, 0.6}}}
	if err := ds.ValidateWeights(); err == nil {
		t.Error("non-unit sum not caught")
	}
	ds = &Dataset{Dim: 2, Range: 1, Points: []vec.Vector{{-0.5, 1.5}}}
	if err := ds.ValidateWeights(); err == nil {
		t.Error("negative weight not caught")
	}
	ds = &Dataset{Dim: 2, Range: 1, Points: []vec.Vector{{0.4, 0.6}, {0.1}}}
	if err := ds.ValidateWeights(); err == nil {
		t.Error("dimension mismatch not caught")
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	a := GenerateProducts(rand.New(rand.NewSource(42)), Clustered, 100, 4, 100)
	b := GenerateProducts(rand.New(rand.NewSource(42)), Clustered, 100, 4, 100)
	for i := range a.Points {
		if !vec.Equal(a.Points[i], b.Points[i]) {
			t.Fatalf("point %d differs between identically seeded runs", i)
		}
	}
}

func TestSparseWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, nnz := range []int{1, 3, 8} {
		ds := SparseWeights(rng, 300, 8, nnz)
		if err := ds.ValidateWeights(); err != nil {
			t.Fatalf("nnz=%d: %v", nnz, err)
		}
		for i, w := range ds.Points {
			nz := 0
			for _, x := range w {
				if x != 0 {
					nz++
				}
			}
			if nz != nnz {
				t.Fatalf("nnz=%d: weight %d has %d non-zeros", nnz, i, nz)
			}
		}
	}
	// Every dimension gets used across the set.
	ds := SparseWeights(rng, 500, 6, 2)
	used := map[int]bool{}
	for _, w := range ds.Points {
		for j, x := range w {
			if x != 0 {
				used[j] = true
			}
		}
	}
	if len(used) != 6 {
		t.Errorf("only %d of 6 dimensions ever non-zero", len(used))
	}
}

func TestSparseWeightsPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, nnz := range []int{0, 7} {
		nnz := nnz
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("nnz=%d should panic for d=6", nnz)
				}
			}()
			SparseWeights(rng, 10, 6, nnz)
		}()
	}
}

func TestNumClusters(t *testing.T) {
	if numClusters(0) != 1 {
		t.Error("numClusters(0) should clamp to 1")
	}
	if got := numClusters(1000); got != 9 && got != 10 {
		// cbrt(1000)=10 but float truncation may give 9
		t.Errorf("numClusters(1000) = %d", got)
	}
	if got := numClusters(100000); got < 40 || got > 47 {
		t.Errorf("numClusters(100000) = %d, want ≈46", got)
	}
}
