package dataset

// Flat (SoA) dataset reading: the index load path stores rows in one
// contiguous float64 array (vec.Matrix), so reading through Dataset —
// one allocation and one copy per row, then a second copy into the flat
// matrix — pays double. ReadBinaryFlat decodes a GRD1 stream straight
// into the final backing array: zero per-row allocations, and the only
// copies are the decode itself plus the geometric growth the
// untrusted-header policy requires.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// FlatSet is a dataset as one contiguous row-major array — the shape
// vec.MatrixFromFlat adopts without copying.
type FlatSet struct {
	Dim   int
	Range float64
	Data  []float64 // Count()·Dim values, row-major
}

// Count returns the number of rows.
func (fs *FlatSet) Count() int { return len(fs.Data) / fs.Dim }

// ReadBinaryFlat reads a data set written by WriteBinary into flat
// storage. Semantically identical to ReadBinary (same format, same
// plausibility limits, same error wrapping); only the destination
// layout differs.
func ReadBinaryFlat(r io.Reader) (*FlatSet, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4+4+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	dim := int(binary.LittleEndian.Uint32(hdr[4:]))
	count := binary.LittleEndian.Uint64(hdr[8:])
	rng := math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:]))
	if dim <= 0 || dim > 1<<16 {
		return nil, fmt.Errorf("%w: implausible dimension %d", ErrBadFormat, dim)
	}
	if count > 1<<33 {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadFormat, count)
	}
	// Grow geometrically rather than trusting the header count: a corrupt
	// header must not be able to force a huge up-front allocation.
	initial := count
	if initial > 1<<16 {
		initial = 1 << 16
	}
	fs := &FlatSet{Dim: dim, Range: rng, Data: make([]float64, 0, initial*uint64(dim))}
	buf := make([]byte, 8*dim)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated at point %d: %v", ErrBadFormat, i, err)
		}
		for j := 0; j < dim; j++ {
			fs.Data = append(fs.Data, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:])))
		}
	}
	return fs, nil
}

// Validate checks every attribute lies in [0, Range] and is not NaN —
// the flat twin of Dataset.Validate, with identical messages (rows are
// never ragged here, so the dimension check is structural).
func (fs *FlatSet) Validate() error {
	if fs.Dim <= 0 {
		return fmt.Errorf("dataset: non-positive dimension %d", fs.Dim)
	}
	if fs.Range <= 0 {
		return fmt.Errorf("dataset: non-positive range %v", fs.Range)
	}
	for k, x := range fs.Data {
		if math.IsNaN(x) || x < 0 || x > fs.Range {
			return fmt.Errorf("dataset: point %d attribute %d = %v outside [0, %v]", k/fs.Dim, k%fs.Dim, x, fs.Range)
		}
	}
	return nil
}

// ValidateWeights checks every row is a legal preference vector — the
// flat twin of Dataset.ValidateWeights, same tolerance and messages.
func (fs *FlatSet) ValidateWeights() error {
	d := fs.Dim
	for i := 0; i*d < len(fs.Data); i++ {
		var sum float64
		for j, x := range fs.Data[i*d : (i+1)*d] {
			if math.IsNaN(x) || x < 0 {
				return fmt.Errorf("dataset: weight %d component %d = %v is negative or NaN", i, j, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("dataset: weight %d sums to %v, want 1", i, sum)
		}
	}
	return nil
}
