package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func TestHouseProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := HouseProducts(rng, 2000)
	if ds.Dim != HouseDim || ds.Len() != 2000 {
		t.Fatalf("bad shape: dim=%d n=%d", ds.Dim, ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expense shares: each tuple's attributes sum to ~Range (they are
	// percentages of the annual payment).
	for i, p := range ds.Points[:50] {
		var s float64
		for _, x := range p {
			s += x
		}
		if math.Abs(s-DefaultRange) > DefaultRange*0.001 {
			t.Fatalf("tuple %d shares sum to %v, want ≈%v", i, s, DefaultRange)
		}
	}
	// Property tax (alpha=5) should on average exceed water (alpha=1.2).
	var tax, water float64
	for _, p := range ds.Points {
		water += p[2]
		tax += p[5]
	}
	if tax <= water {
		t.Errorf("expected property tax share (%v) > water share (%v)", tax, water)
	}
}

func TestHouseDefaultCardinality(t *testing.T) {
	if testing.Short() {
		t.Skip("full HOUSE cardinality in -short mode")
	}
	rng := rand.New(rand.NewSource(2))
	ds := HouseProducts(rng, 0)
	if ds.Len() != HouseSize {
		t.Fatalf("default cardinality %d, want %d", ds.Len(), HouseSize)
	}
}

func TestColorProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := ColorProducts(rng, 3000)
	if ds.Dim != ColorDim || ds.Len() != 3000 {
		t.Fatalf("bad shape: dim=%d n=%d", ds.Dim, ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Variance decays across dimensions (higher moments are tighter).
	v0 := dimVariance(ds, 0)
	v8 := dimVariance(ds, 8)
	if v8 >= v0 {
		t.Errorf("expected variance decay: dim0 var %v <= dim8 var %v", v0, v8)
	}
}

func dimVariance(ds *Dataset, j int) float64 {
	var s, ss float64
	for _, p := range ds.Points {
		s += p[j]
		ss += p[j] * p[j]
	}
	n := float64(ds.Len())
	return ss/n - (s/n)*(s/n)
}

func TestDianpingProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := DianpingProducts(rng, 4000)
	if ds.Dim != DianpingDim || ds.Len() != 4000 {
		t.Fatalf("bad shape: dim=%d n=%d", ds.Dim, ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Aspects 0 (rate) and 1 (food) share the quality factor strongly:
	// their correlation must exceed that of 0 (rate) and 2 (cost).
	r01 := pearson(ds, 0, 1)
	r02 := pearson(ds, 0, 2)
	if r01 <= r02 {
		t.Errorf("rate–food correlation %v should exceed rate–cost %v", r01, r02)
	}
	if r01 < 0.4 {
		t.Errorf("rate–food correlation %v too weak for latent-factor data", r01)
	}
}

func pearson(ds *Dataset, a, b int) float64 {
	var sx, sy, sxx, syy, sxy float64
	n := float64(ds.Len())
	for _, p := range ds.Points {
		sx += p[a]
		sy += p[b]
		sxx += p[a] * p[a]
		syy += p[b] * p[b]
		sxy += p[a] * p[b]
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	return cov / math.Sqrt(vx*vy)
}

func TestDianpingWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := DianpingWeights(rng, 3000)
	if ds.Dim != DianpingDim || ds.Len() != 3000 {
		t.Fatalf("bad shape: dim=%d n=%d", ds.Dim, ds.Len())
	}
	if err := ds.ValidateWeights(); err != nil {
		t.Fatal(err)
	}
	// Archetypal profiles should make the max-weight dimension vary:
	// every aspect should be some user's dominant concern.
	domSeen := map[int]bool{}
	for _, w := range ds.Points {
		best, arg := -1.0, -1
		for j, x := range w {
			if x > best {
				best, arg = x, j
			}
		}
		domSeen[arg] = true
	}
	if len(domSeen) != DianpingDim {
		t.Errorf("only %d of %d aspects ever dominant", len(domSeen), DianpingDim)
	}
}

func TestGammaDrawMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, shape := range []float64{0.5, 1, 2.5, 7} {
		var s float64
		const n = 20000
		for i := 0; i < n; i++ {
			x := gammaDraw(rng, shape)
			if x < 0 {
				t.Fatalf("gamma draw negative: %v", x)
			}
			s += x
		}
		mean := s / n
		if math.Abs(mean-shape) > shape*0.1 {
			t.Errorf("gamma(%v) sample mean %v, want ≈%v", shape, mean, shape)
		}
	}
}

func TestDirichletOnSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := []float64{1, 2, 3}
	var means [3]float64
	const n = 5000
	for i := 0; i < n; i++ {
		w := dirichlet(rng, alpha)
		var s float64
		for j, x := range w {
			if x < 0 {
				t.Fatalf("negative Dirichlet component %v", x)
			}
			s += x
			means[j] += x
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Dirichlet draw sums to %v", s)
		}
	}
	// E[w_j] = alpha_j / Σalpha = 1/6, 2/6, 3/6.
	for j, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := means[j] / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Dirichlet mean[%d] = %v, want ≈%v", j, got, want)
		}
	}
}
