package dataset

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridrank/internal/vec"
)

func sameDataset(a, b *Dataset) bool {
	if a.Dim != b.Dim || a.Range != b.Range || a.Len() != b.Len() {
		return false
	}
	for i := range a.Points {
		if !vec.Equal(a.Points[i], b.Points[i]) {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := GenerateProducts(rng, Uniform, 300, 7, DefaultRange)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDataset(ds, got) {
		t.Fatal("binary round trip lost data")
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	ds := &Dataset{Dim: 3, Range: 5}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != 3 || got.Range != 5 || got.Len() != 0 {
		t.Fatalf("empty round trip: %+v", got)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXXGARBAGEGARBAGEGARBAGE"),
		"truncated header": func() []byte {
			var buf bytes.Buffer
			ds := &Dataset{Dim: 2, Range: 1, Points: []vec.Vector{{0.5, 0.5}}}
			WriteBinary(&buf, ds)
			return buf.Bytes()[:10]
		}(),
		"truncated body": func() []byte {
			var buf bytes.Buffer
			ds := &Dataset{Dim: 2, Range: 1, Points: []vec.Vector{{0.5, 0.5}, {0.1, 0.2}}}
			WriteBinary(&buf, ds)
			return buf.Bytes()[:buf.Len()-8]
		}(),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", name, err)
		}
	}
}

func TestWriteBinaryRejectsInconsistentPoint(t *testing.T) {
	ds := &Dataset{Dim: 2, Range: 1, Points: []vec.Vector{{0.5, 0.5}, {0.1}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err == nil {
		t.Fatal("inconsistent dimensionality should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := GenerateWeights(rng, Uniform, 100, 5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDataset(ds, got) {
		t.Fatal("CSV round trip lost data")
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	in := "1,2,3\n4,5,6\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim != 3 || ds.Len() != 2 {
		t.Fatalf("got dim=%d n=%d", ds.Dim, ds.Len())
	}
	if ds.Range < 6 {
		t.Errorf("inferred range %v should cover max value 6", ds.Range)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV should fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged CSV should fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Error("non-numeric CSV should fail")
	}
}

func TestSaveLoadBinaryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.grd")
	rng := rand.New(rand.NewSource(3))
	ds := GenerateProducts(rng, Clustered, 200, 4, 100)
	if err := SaveBinary(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDataset(ds, got) {
		t.Fatal("file round trip lost data")
	}
	if _, err := LoadBinary(filepath.Join(dir, "missing.grd")); !os.IsNotExist(err) {
		t.Errorf("missing file error = %v", err)
	}
}
