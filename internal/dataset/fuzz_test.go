package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// FuzzReadBinary ensures the binary parser never panics or over-allocates
// on arbitrary input, and that valid round-trips survive.
func FuzzReadBinary(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	ds := GenerateProducts(rng, Uniform, 20, 3, 100)
	var valid bytes.Buffer
	if err := WriteBinary(&valid, ds); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("GRD1garbage"))
	f.Add(valid.Bytes()[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Successfully parsed data must be structurally sound.
		if got.Dim <= 0 {
			t.Fatalf("parsed dataset with dim %d", got.Dim)
		}
		for _, p := range got.Points {
			if len(p) != got.Dim {
				t.Fatal("ragged parse")
			}
		}
		// And must round-trip.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatal("round trip changed cardinality")
		}
	})
}

// FuzzReadCSV ensures the CSV parser is panic-free and accepts only
// rectangular numeric data.
func FuzzReadCSV(f *testing.F) {
	f.Add("# dim=2 range=10\n1,2\n3,4\n")
	f.Add("1,2,3\n")
	f.Add("")
	f.Add("a,b\n")
	f.Add("1\n1,2\n")
	f.Fuzz(func(t *testing.T, s string) {
		ds, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		if ds.Dim <= 0 {
			t.Fatalf("parsed CSV with dim %d", ds.Dim)
		}
		for _, p := range ds.Points {
			if len(p) != ds.Dim {
				t.Fatal("ragged CSV parse")
			}
		}
	})
}
