package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"gridrank/internal/vec"
)

// Binary file layout (little endian):
//
//	magic   uint32  'G''R''D''1'
//	dim     uint32
//	count   uint64
//	range   float64
//	data    count × dim × float64
//
// The format exists so that Table 2's "reading data" row can be measured
// against a real on-disk representation, and so the CLI tools can exchange
// data sets.

const binaryMagic = 0x31445247 // "GRD1" little-endian

// ErrBadFormat reports a corrupt or non-dataset file.
var ErrBadFormat = errors.New("dataset: bad file format")

// WriteBinary writes ds to w in the library's binary format.
func WriteBinary(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 4+4+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ds.Dim))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(ds.Points)))
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(ds.Range))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8*ds.Dim)
	for _, p := range ds.Points {
		if len(p) != ds.Dim {
			return fmt.Errorf("dataset: point has dimension %d, want %d", len(p), ds.Dim)
		}
		for j, x := range p {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(x))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a data set written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4+4+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	dim := int(binary.LittleEndian.Uint32(hdr[4:]))
	count := binary.LittleEndian.Uint64(hdr[8:])
	rng := math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:]))
	if dim <= 0 || dim > 1<<16 {
		return nil, fmt.Errorf("%w: implausible dimension %d", ErrBadFormat, dim)
	}
	if count > 1<<33 {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadFormat, count)
	}
	// Allocate incrementally rather than trusting the header count: a
	// corrupt header must not be able to force a huge up-front allocation.
	initial := count
	if initial > 1<<16 {
		initial = 1 << 16
	}
	ds := &Dataset{Dim: dim, Range: rng, Points: make([]vec.Vector, 0, initial)}
	buf := make([]byte, 8*dim)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated at point %d: %v", ErrBadFormat, i, err)
		}
		p := make(vec.Vector, dim)
		for j := range p {
			p[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
		}
		ds.Points = append(ds.Points, p)
	}
	return ds, nil
}

// SaveBinary writes ds to the named file.
func SaveBinary(path string, ds *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a data set from the named file.
func LoadBinary(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteCSV writes ds as comma-separated rows, one vector per line, with a
// leading "# dim=<d> range=<r>" comment so CSV round-trips preserve the
// declared range.
func WriteCSV(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dim=%d range=%g\n", ds.Dim, ds.Range); err != nil {
		return err
	}
	for _, p := range ds.Points {
		for j, x := range p {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(x, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a data set written by WriteCSV. Files without the header
// comment are accepted; the range then defaults to the max value seen
// (rounded up) and the dimension to that of the first row.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ds := &Dataset{}
	maxSeen := 0.0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parseCSVHeader(line, ds)
			continue
		}
		fields := strings.Split(line, ",")
		p := make(vec.Vector, len(fields))
		for j, f := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("%w: row %d: %v", ErrBadFormat, len(ds.Points)+1, err)
			}
			p[j] = x
			if x > maxSeen {
				maxSeen = x
			}
		}
		if ds.Dim == 0 {
			ds.Dim = len(p)
		} else if len(p) != ds.Dim {
			return nil, fmt.Errorf("%w: row %d has %d fields, want %d", ErrBadFormat, len(ds.Points)+1, len(p), ds.Dim)
		}
		ds.Points = append(ds.Points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ds.Range == 0 {
		ds.Range = math.Max(1, math.Ceil(maxSeen))
	}
	if ds.Dim == 0 {
		return nil, fmt.Errorf("%w: empty file", ErrBadFormat)
	}
	return ds, nil
}

func parseCSVHeader(line string, ds *Dataset) {
	for _, tok := range strings.Fields(strings.TrimPrefix(line, "#")) {
		if v, ok := strings.CutPrefix(tok, "dim="); ok {
			if n, err := strconv.Atoi(v); err == nil {
				ds.Dim = n
			}
		}
		if v, ok := strings.CutPrefix(tok, "range="); ok {
			if r, err := strconv.ParseFloat(v, 64); err == nil {
				ds.Range = r
			}
		}
	}
}
