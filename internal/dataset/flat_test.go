package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"gridrank/internal/vec"
)

// TestReadBinaryFlatMatchesReadBinary proves the flat reader decodes a
// GRD1 stream to bit-identical values and metadata.
func TestReadBinaryFlatMatchesReadBinary(t *testing.T) {
	ds := GenerateProducts(rand.New(rand.NewSource(7)), Clustered, 123, 5, 100)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	rowwise, err := ReadBinary(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := ReadBinaryFlat(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if flat.Dim != rowwise.Dim || flat.Range != rowwise.Range || flat.Count() != len(rowwise.Points) {
		t.Fatalf("flat header (%d, %v, %d) != rowwise (%d, %v, %d)",
			flat.Dim, flat.Range, flat.Count(), rowwise.Dim, rowwise.Range, len(rowwise.Points))
	}
	for i, p := range rowwise.Points {
		for j, x := range p {
			if got := flat.Data[i*flat.Dim+j]; math.Float64bits(got) != math.Float64bits(x) {
				t.Fatalf("value [%d][%d]: flat %v != rowwise %v", i, j, got, x)
			}
		}
	}
	if err := flat.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestReadBinaryFlatRejects pins the flat reader's error behaviour to
// ReadBinary's: bad magic, truncation, implausible headers.
func TestReadBinaryFlatRejects(t *testing.T) {
	ds := GenerateWeights(rand.New(rand.NewSource(3)), Uniform, 20, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	if _, err := ReadBinaryFlat(bytes.NewReader(stream[:len(stream)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	bad := append([]byte(nil), stream...)
	bad[0] ^= 0xff
	if _, err := ReadBinaryFlat(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	flat, err := ReadBinaryFlat(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.ValidateWeights(); err != nil {
		t.Fatalf("ValidateWeights on generated weights: %v", err)
	}
}

// TestFlatValidateMessages pins the flat validators to Dataset's
// messages, so the load path's errors did not change shape when it
// switched readers.
func TestFlatValidateMessages(t *testing.T) {
	fs := &FlatSet{Dim: 2, Range: 1, Data: []float64{0.5, 0.5, 0.2, 1.5}}
	ds := &Dataset{Dim: 2, Range: 1, Points: []vec.Vector{{0.5, 0.5}, {0.2, 1.5}}}
	ferr, derr := fs.Validate(), ds.Validate()
	if ferr == nil || derr == nil || ferr.Error() != derr.Error() {
		t.Fatalf("Validate messages diverge: flat %q, dataset %q", ferr, derr)
	}

	fw := &FlatSet{Dim: 2, Range: 1, Data: []float64{0.5, 0.5, 0.9, 0.2}}
	dw := &Dataset{Dim: 2, Range: 1, Points: []vec.Vector{{0.5, 0.5}, {0.9, 0.2}}}
	ferr, derr = fw.ValidateWeights(), dw.ValidateWeights()
	if ferr == nil || derr == nil || ferr.Error() != derr.Error() {
		t.Fatalf("ValidateWeights messages diverge: flat %q, dataset %q", ferr, derr)
	}
	if !strings.Contains(ferr.Error(), "sums to") {
		t.Fatalf("unexpected weight error %q", ferr)
	}
}
