// Package sub implements continuous reverse-rank subscriptions: clients
// register (q, k, kind) monitors and receive enter/leave events for
// preference vectors as epochs publish. The registry is notified by the
// index's mutation paths — under the same writer lock, immediately
// after the epoch install, in the same position as the answer-cache
// hooks — so every diff observes exactly one published epoch and events
// are emitted in epoch order.
//
// The diff pass is incremental on single-mutation epochs. A product
// mutation touches exactly one row p; a monitor (q, k) can only change
// if p scores strictly below q under some preference, which requires
// p[j] < q[j] in some dimension (the answer cache's dominance
// predicate, DESIGN.md §12). Gated monitors are skipped outright; for
// the rest, a per-preference score gate (one dot product: does the row
// score strictly below q under w?) leaves only the preferences the row
// can actually have moved, and only those are re-evaluated through the
// bounded rank oracle. A preference splice evaluates only the spliced
// vector. Batch rebuilds fall back to a bounded full recompute per
// monitor (one reverse-rank query against the new epoch). The
// PrefsDiffEvaluated / PrefsDiffFullCost counters expose the saving: on
// single-mutation epochs the diff pass counts the preference vectors
// whose rank it actually evaluated per monitor (an O(d) gate check is
// not an evaluation; capped by construction at the full-recompute set),
// against what a per-monitor recompute would have examined.
//
// Event delivery is non-blocking: each monitor owns a bounded buffered
// channel, and a consumer that falls behind is cancelled (its channel
// closed, Lagged reported) rather than lied to — a dropped enter/leave
// would silently corrupt the client's view of its answer set forever.
package sub

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind selects which reverse rank query a monitor watches.
type Kind uint8

const (
	// KindTopK monitors reverse top-k membership: the set of preferences
	// placing q within their personal top-k products.
	KindTopK Kind = iota
	// KindKRanks monitors reverse k-ranks membership: the k preferences
	// ranking q best (ties toward smaller ids).
	KindKRanks
)

// String returns the wire name of the kind.
func (k Kind) String() string {
	switch k {
	case KindTopK:
		return "reverse-topk"
	case KindKRanks:
		return "reverse-kranks"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// EventType distinguishes enter from leave.
type EventType uint8

const (
	// Enter reports a preference joining the monitor's answer set.
	Enter EventType = iota
	// Leave reports a preference leaving the monitor's answer set.
	Leave
)

// String returns the wire name of the event type.
func (t EventType) String() string {
	if t == Enter {
		return "enter"
	}
	return "leave"
}

// Event is one membership change of a monitor's answer set.
type Event struct {
	// Seq is the epoch whose install caused the change.
	Seq uint64
	// Type is Enter or Leave.
	Type EventType
	// Pref is the preference id in the published epoch's numbering. One
	// exception: when a preference delete removes a monitored member,
	// the Leave for the deleted preference carries its pre-delete id
	// (it has no post-delete id); every other id that epoch emits is
	// post-delete. Ids above the deleted one shift down by one, exactly
	// as DELETE /v1/preferences documents.
	Pref int
}

// Member is one current member of a monitor's answer set. Rank is the
// member's exact rank for KindKRanks monitors and 0 for KindTopK (top-k
// membership is a threshold, not an ordering).
type Member struct {
	Pref int
	Rank int
}

// Snapshot is the post-publish epoch view a notification diffs against.
// The closures wrap the new epoch's rank machinery; the registry never
// sees the index types, keeping the import graph acyclic.
type Snapshot struct {
	// Seq is the published epoch's sequence number, stamped on events.
	Seq uint64
	// NumPrefs is |W| of the published epoch.
	NumPrefs int
	// RankOf returns rank(W[wi], q) bounded by cutoff: ok reports the
	// exact rank is below cutoff; cutoff <= 0 means unbounded.
	RankOf func(wi int, q []float64, cutoff int) (int, bool)
	// Pref returns preference vector wi (read-only).
	Pref func(wi int) []float64
	// TopKSet returns the ids of every preference placing q in its
	// top-k, ascending.
	TopKSet func(q []float64, k int) []int
	// KRanksSet returns the reverse k-ranks answer for q: up to k
	// members ordered by ascending (rank, id).
	KRanksSet func(q []float64, k int) []Member
}

// ErrLimit reports a Subscribe against a full registry.
var ErrLimit = errors.New("sub: subscriber limit reached")

// Monitor is one registered (q, k, kind) subscription.
type Monitor struct {
	id     uint64
	q      []float64
	k      int
	kind   Kind
	ch     chan Event
	lagged atomic.Bool

	// members is the current answer set: pref id → rank (rank 0 and
	// meaningless for KindTopK). Mutated only under the registry lock.
	members map[int]int
	closed  bool
}

// ID returns the monitor's registry-unique id.
func (m *Monitor) ID() uint64 { return m.id }

// Kind returns the monitored query kind.
func (m *Monitor) Kind() Kind { return m.kind }

// K returns the monitored k.
func (m *Monitor) K() int { return m.k }

// Query returns the monitored query point (read-only).
func (m *Monitor) Query() []float64 { return m.q }

// Events is the monitor's event stream. It is closed when the monitor
// is cancelled — by Unsubscribe, or by the registry when the consumer
// fell behind (check Lagged to distinguish).
func (m *Monitor) Events() <-chan Event { return m.ch }

// Lagged reports that the registry cancelled this monitor because its
// event buffer overflowed. Once the channel is closed, a false Lagged
// means the close came from Unsubscribe.
func (m *Monitor) Lagged() bool { return m.lagged.Load() }

// Counts is the registry's counter snapshot.
type Counts struct {
	Monitors     int64 // currently registered monitors (gauge)
	Subscribed   int64 // monitors ever registered
	Unsubscribed int64 // monitors removed by Unsubscribe
	Events       int64 // events delivered into monitor buffers
	Lagged       int64 // monitors cancelled for a full buffer

	DiffPasses int64 // single-mutation epochs processed incrementally
	FullPasses int64 // rebuild epochs processed by full recompute
	GatedSkips int64 // monitor×epoch pairs skipped by the dominance gate

	// PrefsDiffEvaluated counts the preference vectors whose rank the
	// diff pass actually evaluated per monitor on single-mutation
	// epochs — a dominance or score gate check (O(d), no rank oracle)
	// does not count; PrefsDiffFullCost is what a full per-monitor
	// recompute would have examined on those same epochs
	// (monitors × |W|). The first is strictly smaller whenever any gate
	// or candidate-set restriction saved work. PrefsRebuildEvaluated is
	// the rebuild epochs' cost, kept separate so the comparison stays a
	// like-for-like one.
	PrefsDiffEvaluated    int64
	PrefsDiffFullCost     int64
	PrefsRebuildEvaluated int64
}

// Registry holds the live monitors and runs the diff passes. All
// methods are safe for concurrent use, but the On* notifications must
// be serialized with each other and with Subscribe in epoch order —
// the index guarantees this by calling every one under its writer
// lock, immediately after the epoch install.
type Registry struct {
	mu       sync.Mutex
	limit    int // max live monitors; <= 0 = unlimited
	nextID   uint64
	monitors map[uint64]*Monitor

	subscribed   atomic.Int64
	unsubscribed atomic.Int64
	events       atomic.Int64
	laggedN      atomic.Int64
	diffPasses   atomic.Int64
	fullPasses   atomic.Int64
	gatedSkips   atomic.Int64
	diffEvals    atomic.Int64
	diffFullCost atomic.Int64
	rebuildEvals atomic.Int64
}

// NewRegistry builds an empty registry holding at most limit live
// monitors (<= 0 = unlimited).
func NewRegistry(limit int) *Registry {
	return &Registry{limit: limit, monitors: make(map[uint64]*Monitor)}
}

// Subscribe registers a monitor for (q, k, kind), computing its initial
// answer set against s (the epoch current at registration). The caller
// owns q — it is not copied — and must serialize Subscribe with epoch
// publishes so the initial set and the event stream splice without a
// gap. buffer bounds the undelivered-event queue; a consumer that lets
// it fill is cancelled.
func (r *Registry) Subscribe(q []float64, k int, kind Kind, buffer int, s Snapshot) (*Monitor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sub: k must be positive, got %d", k)
	}
	if kind != KindTopK && kind != KindKRanks {
		return nil, fmt.Errorf("sub: unknown kind %d", kind)
	}
	if buffer <= 0 {
		buffer = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && len(r.monitors) >= r.limit {
		return nil, fmt.Errorf("%w (%d)", ErrLimit, r.limit)
	}
	m := &Monitor{
		id:      r.nextID,
		q:       q,
		k:       k,
		kind:    kind,
		ch:      make(chan Event, buffer),
		members: make(map[int]int),
	}
	r.nextID++
	for _, mem := range r.compute(m, s) {
		m.members[mem.Pref] = mem.Rank
	}
	r.monitors[m.id] = m
	r.subscribed.Add(1)
	return m, nil
}

// SetLimit changes the live-monitor bound (<= 0 = unlimited). A limit
// below the current count keeps existing monitors and refuses new ones.
func (r *Registry) SetLimit(n int) {
	r.mu.Lock()
	r.limit = n
	r.mu.Unlock()
}

// Unsubscribe cancels monitor id, closing its event channel. It reports
// whether the id was live.
func (r *Registry) Unsubscribe(id uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.monitors[id]
	if !ok {
		return false
	}
	r.remove(m)
	r.unsubscribed.Add(1)
	return true
}

// Members returns monitor id's current answer set ordered by ascending
// pref id, or ok=false when the id is not live.
func (r *Registry) Members(id uint64) ([]Member, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.monitors[id]
	if !ok {
		return nil, false
	}
	return sortedMembers(m.members), true
}

// Len returns the number of live monitors.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.monitors)
}

// Counts returns the registry's counter snapshot.
func (r *Registry) Counts() Counts {
	r.mu.Lock()
	n := len(r.monitors)
	r.mu.Unlock()
	return Counts{
		Monitors:              int64(n),
		Subscribed:            r.subscribed.Load(),
		Unsubscribed:          r.unsubscribed.Load(),
		Events:                r.events.Load(),
		Lagged:                r.laggedN.Load(),
		DiffPasses:            r.diffPasses.Load(),
		FullPasses:            r.fullPasses.Load(),
		GatedSkips:            r.gatedSkips.Load(),
		PrefsDiffEvaluated:    r.diffEvals.Load(),
		PrefsDiffFullCost:     r.diffFullCost.Load(),
		PrefsRebuildEvaluated: r.rebuildEvals.Load(),
	}
}

// remove deletes a monitor and closes its channel (registry lock held).
func (r *Registry) remove(m *Monitor) {
	m.closed = true
	close(m.ch)
	delete(r.monitors, m.id)
}

// emit delivers one event without blocking. A full buffer cancels the
// monitor: a consumer that cannot keep up would otherwise receive a
// gapped stream and silently diverge from the true answer set.
func (r *Registry) emit(m *Monitor, ev Event) {
	if m.closed {
		return
	}
	select {
	case m.ch <- ev:
		r.events.Add(1)
	default:
		m.lagged.Store(true)
		r.laggedN.Add(1)
		r.remove(m)
	}
}

// sorted returns the live monitors in id order, so one epoch's events
// interleave deterministically across monitors.
func (r *Registry) sorted() []*Monitor {
	ms := make([]*Monitor, 0, len(r.monitors))
	for _, m := range r.monitors {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].id < ms[j].id })
	return ms
}

func sortedMembers(members map[int]int) []Member {
	out := make([]Member, 0, len(members))
	for p, rk := range members {
		out = append(out, Member{Pref: p, Rank: rk})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pref < out[j].Pref })
	return out
}

// compute returns a monitor's answer set from scratch against s.
func (r *Registry) compute(m *Monitor, s Snapshot) []Member {
	if m.kind == KindTopK {
		ids := s.TopKSet(m.q, m.k)
		out := make([]Member, len(ids))
		for i, id := range ids {
			out[i] = Member{Pref: id}
		}
		return out
	}
	return s.KRanksSet(m.q, m.k)
}

// rowAffects is the dominance predicate of DESIGN.md §12: a product row
// p can change any rank relative to q only if p[j] < q[j] in some
// dimension — otherwise f_w(p) >= f_w(q) for every non-negative w, so p
// never scores strictly below q and every rank(w, q) is unchanged.
// NaN or a length mismatch conservatively affects.
func rowAffects(p, q []float64) bool {
	if len(p) != len(q) {
		return true
	}
	for j := range p {
		if !(p[j] >= q[j]) {
			return true
		}
	}
	return false
}

// dot is the scoring inner product f_w(p).
func dot(w, p []float64) float64 {
	var s float64
	for j := range w {
		s += w[j] * p[j]
	}
	return s
}

// resetDiff replaces a monitor's answer set with fresh and emits the
// set difference, leaves before enters, each side in ascending pref id.
// It is the tail of every recompute path.
func (r *Registry) resetDiff(m *Monitor, seq uint64, fresh []Member) {
	next := make(map[int]int, len(fresh))
	for _, mem := range fresh {
		next[mem.Pref] = mem.Rank
	}
	var leaves, enters []int
	for p := range m.members {
		if _, ok := next[p]; !ok {
			leaves = append(leaves, p)
		}
	}
	for p := range next {
		if _, ok := m.members[p]; !ok {
			enters = append(enters, p)
		}
	}
	sort.Ints(leaves)
	sort.Ints(enters)
	m.members = next
	for _, p := range leaves {
		r.emit(m, Event{Seq: seq, Type: Leave, Pref: p})
	}
	for _, p := range enters {
		r.emit(m, Event{Seq: seq, Type: Enter, Pref: p})
	}
}

// recomputeFanout is the point where a TopK product-delete diff stops
// probing moved preferences one bounded rank evaluation at a time and
// recomputes the answer with one grouped reverse query instead: the
// grid scan amortizes its cell classification across all preferences,
// so a large probe fan-out costs more than the single query it was
// trying to avoid.
const recomputeFanout = 32

// OnProductMutation diffs every monitor after a single-product insert
// or delete. row is the inserted point or the deleted point's former
// attributes — the only data whose ranks changed. Two gates bound the
// work before any rank is evaluated: the componentwise dominance gate
// skips a monitor outright, and a per-preference score gate skips every
// preference w with f_w(row) >= f_w(q) — a row that does not score
// strictly below q never counts into rank(w, q), so adding or removing
// it cannot move that preference. Both are exact predicates, not
// heuristics; a gated skip is proven unchanged.
func (r *Registry) OnProductMutation(s Snapshot, row []float64, inserted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.monitors) == 0 {
		return
	}
	r.diffPasses.Add(1)
	for _, m := range r.sorted() {
		r.diffFullCost.Add(int64(s.NumPrefs))
		if !rowAffects(row, m.q) {
			r.gatedSkips.Add(1)
			continue
		}
		switch {
		case m.kind == KindTopK && inserted:
			// Ranks only grow (by one, for preferences scoring row below
			// q): members can leave, nobody can enter. Only moved current
			// members need re-evaluation.
			for _, mem := range sortedMembers(m.members) {
				w := s.Pref(mem.Pref)
				if !(dot(w, row) < dot(w, m.q)) {
					continue
				}
				r.diffEvals.Add(1)
				if _, ok := s.RankOf(mem.Pref, m.q, m.k); !ok {
					delete(m.members, mem.Pref)
					r.emit(m, Event{Seq: s.Seq, Type: Leave, Pref: mem.Pref})
				}
			}
		case m.kind == KindTopK:
			// Ranks only shrink: non-members can enter, members stay. The
			// score gate leaves only the moved non-members; a handful get
			// individual bounded rank probes, a crowd is cheaper as one
			// grouped reverse query.
			var moved []int
			for wi := 0; wi < s.NumPrefs; wi++ {
				if _, ok := m.members[wi]; ok {
					continue
				}
				w := s.Pref(wi)
				if dot(w, row) < dot(w, m.q) {
					moved = append(moved, wi)
				}
			}
			if len(moved) >= recomputeFanout {
				r.diffEvals.Add(int64(s.NumPrefs))
				r.resetDiff(m, s.Seq, r.compute(m, s))
				continue
			}
			r.diffEvals.Add(int64(len(moved)))
			for _, wi := range moved {
				if _, ok := s.RankOf(wi, m.q, m.k); ok {
					m.members[wi] = 0
					r.emit(m, Event{Seq: s.Seq, Type: Enter, Pref: wi})
				}
			}
		case inserted:
			// KRanks insert: the set can only change when some member's
			// rank grew — i.e. row scores below q under a member. Check
			// the members (one dot product each); recompute only when one
			// moved.
			moved := false
			for p := range m.members {
				if dot(s.Pref(p), row) < dot(s.Pref(p), m.q) {
					moved = true
					break
				}
			}
			if !moved {
				continue
			}
			r.diffEvals.Add(int64(s.NumPrefs))
			r.resetDiff(m, s.Seq, s.KRanksSet(m.q, m.k))
		default:
			// KRanks delete: every moved preference's rank shrinks by
			// exactly one. If only members moved, membership cannot change
			// — each member's (rank, id) key stays at or below every
			// non-member's — so the stored ranks are decremented in place
			// with no events and no rank evaluation. A moved non-member
			// can overtake the worst member, so that case recomputes.
			var movedMembers []int
			recompute := false
			for wi := 0; wi < s.NumPrefs && !recompute; wi++ {
				w := s.Pref(wi)
				if !(dot(w, row) < dot(w, m.q)) {
					continue
				}
				if _, ok := m.members[wi]; ok {
					movedMembers = append(movedMembers, wi)
				} else {
					recompute = true
				}
			}
			if recompute {
				r.diffEvals.Add(int64(s.NumPrefs))
				r.resetDiff(m, s.Seq, s.KRanksSet(m.q, m.k))
				continue
			}
			for _, wi := range movedMembers {
				m.members[wi]--
			}
		}
	}
}

// OnPreferenceInsert diffs every monitor after a single-preference
// insert; id is the new preference's id (the largest in the epoch).
// Existing preferences' ranks are untouched, so only the spliced vector
// is ever evaluated.
func (r *Registry) OnPreferenceInsert(s Snapshot, id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.monitors) == 0 {
		return
	}
	r.diffPasses.Add(1)
	for _, m := range r.sorted() {
		r.diffFullCost.Add(int64(s.NumPrefs))
		r.diffEvals.Add(1)
		if m.kind == KindTopK {
			if _, ok := s.RankOf(id, m.q, m.k); ok {
				m.members[id] = 0
				r.emit(m, Event{Seq: s.Seq, Type: Enter, Pref: id})
			}
			continue
		}
		// KRanks: the newcomer wins admission when the set is short, or
		// when it strictly beats the worst member — at equal rank the
		// incumbent keeps the seat, because the new id is the largest
		// and ties resolve toward smaller ids.
		rank, _ := s.RankOf(id, m.q, 0)
		if len(m.members) < m.k {
			m.members[id] = rank
			r.emit(m, Event{Seq: s.Seq, Type: Enter, Pref: id})
			continue
		}
		worst, worstRank := -1, -1
		for p, rk := range m.members {
			if rk > worstRank || (rk == worstRank && p > worst) {
				worst, worstRank = p, rk
			}
		}
		if rank < worstRank {
			delete(m.members, worst)
			m.members[id] = rank
			r.emit(m, Event{Seq: s.Seq, Type: Leave, Pref: worst})
			r.emit(m, Event{Seq: s.Seq, Type: Enter, Pref: id})
		}
	}
}

// OnPreferenceDelete diffs every monitor after a single-preference
// delete: ids above the deleted one shift down, the deleted preference
// leaves any set it was in (its Leave carries the pre-delete id — see
// Event.Pref), and a KRanks monitor that lost a member refills from a
// recompute. No surviving preference's rank changes, so TopK monitors
// never evaluate anything here.
func (r *Registry) OnPreferenceDelete(s Snapshot, id, oldCount int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.monitors) == 0 {
		return
	}
	r.diffPasses.Add(1)
	for _, m := range r.sorted() {
		r.diffFullCost.Add(int64(s.NumPrefs))
		remapped := make(map[int]int, len(m.members))
		wasMember := false
		for p, rk := range m.members {
			switch {
			case p == id:
				wasMember = true
			case p > id:
				remapped[p-1] = rk
			default:
				remapped[p] = rk
			}
		}
		m.members = remapped
		if !wasMember {
			continue
		}
		r.emit(m, Event{Seq: s.Seq, Type: Leave, Pref: id})
		if m.kind == KindKRanks {
			// The vacated seat goes to the best surviving non-member;
			// finding it is a recompute (survivors' ranks are unchanged,
			// so the refreshed ranks also repair the stored ones).
			r.diffEvals.Add(int64(s.NumPrefs))
			r.resetDiff(m, s.Seq, s.KRanksSet(m.q, m.k))
		}
	}
}

// OnRebuild recomputes every monitor against a rebuilt epoch (batch
// mutations): the whole data set may have changed, so each monitor pays
// one bounded reverse-rank query — never more.
func (r *Registry) OnRebuild(s Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.monitors) == 0 {
		return
	}
	r.fullPasses.Add(1)
	for _, m := range r.sorted() {
		r.rebuildEvals.Add(int64(s.NumPrefs))
		r.resetDiff(m, s.Seq, r.compute(m, s))
	}
}
