package sub

import (
	"math/rand"
	"sort"
	"testing"
)

// The property harness drives a Registry against a brute-force model:
// plain product/preference slices whose ranks are computed by exact
// scans. After every random mutation the matching On* notification
// fires and three properties must hold: each monitor's answer set
// equals a from-scratch recompute, the emitted events are exactly the
// membership delta, and the diff pass never examines more preference
// vectors than a full per-monitor recompute would.

// model is the brute-force oracle: the authoritative data the registry
// is monitoring.
type model struct {
	ps [][]float64
	ws [][]float64
}

func (mo *model) clone() *model {
	cp := &model{ps: make([][]float64, len(mo.ps)), ws: make([][]float64, len(mo.ws))}
	copy(cp.ps, mo.ps)
	copy(cp.ws, mo.ws)
	return cp
}

func (mo *model) rank(wi int, q []float64) int {
	w := mo.ws[wi]
	fq := dot(w, q)
	r := 0
	for _, p := range mo.ps {
		if dot(w, p) < fq {
			r++
		}
	}
	return r
}

func (mo *model) topkSet(q []float64, k int) []int {
	var out []int
	for wi := range mo.ws {
		if mo.rank(wi, q) < k {
			out = append(out, wi)
		}
	}
	return out
}

func (mo *model) kranksSet(q []float64, k int) []Member {
	ms := make([]Member, len(mo.ws))
	for wi := range mo.ws {
		ms[wi] = Member{Pref: wi, Rank: mo.rank(wi, q)}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Rank != ms[j].Rank {
			return ms[i].Rank < ms[j].Rank
		}
		return ms[i].Pref < ms[j].Pref
	})
	if k < len(ms) {
		ms = ms[:k]
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Pref < ms[j].Pref })
	return ms
}

// snapshot wraps a frozen copy of the model as the epoch view the
// registry diffs against. The copy matters: the registry's contract is
// an immutable published epoch.
func (mo *model) snapshot(seq uint64) Snapshot {
	frozen := mo.clone()
	return Snapshot{
		Seq:      seq,
		NumPrefs: len(frozen.ws),
		RankOf: func(wi int, q []float64, cutoff int) (int, bool) {
			r := frozen.rank(wi, q)
			if cutoff <= 0 {
				return r, true
			}
			if r >= cutoff {
				return cutoff, false
			}
			return r, true
		},
		Pref:      func(wi int) []float64 { return frozen.ws[wi] },
		TopKSet:   frozen.topkSet,
		KRanksSet: frozen.kranksSet,
	}
}

func (mo *model) members(m *Monitor) []Member {
	if m.Kind() == KindTopK {
		ids := mo.topkSet(m.Query(), m.K())
		out := make([]Member, len(ids))
		for i, id := range ids {
			out[i] = Member{Pref: id}
		}
		return out
	}
	return mo.kranksSet(m.Query(), m.K())
}

func randVec(rng *rand.Rand, d int, scale float64) []float64 {
	v := make([]float64, d)
	for j := range v {
		v[j] = rng.Float64() * scale
	}
	return v
}

func randPref(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	sum := 0.0
	for j := range v {
		v[j] = 0.05 + rng.Float64()
		sum += v[j]
	}
	for j := range v {
		v[j] /= sum
	}
	return v
}

type evKey struct {
	t EventType
	p int
}

func drain(m *Monitor) map[evKey]int {
	out := map[evKey]int{}
	for {
		select {
		case ev, ok := <-m.Events():
			if !ok {
				return out
			}
			out[evKey{ev.Type, ev.Pref}]++
		default:
			return out
		}
	}
}

func memberSet(ms []Member) map[int]bool {
	s := make(map[int]bool, len(ms))
	for _, m := range ms {
		s[m.Pref] = true
	}
	return s
}

// expectedEvents computes the membership delta between old and new,
// with prefDelete >= 0 applying the delete renumbering: the deleted
// pref leaves under its old id, survivors compare under new ids.
func expectedEvents(old, fresh []Member, prefDelete int) map[evKey]int {
	oldSet := memberSet(old)
	newSet := memberSet(fresh)
	out := map[evKey]int{}
	if prefDelete >= 0 {
		remapped := map[int]bool{}
		for p := range oldSet {
			switch {
			case p == prefDelete:
				out[evKey{Leave, p}]++
			case p > prefDelete:
				remapped[p-1] = true
			default:
				remapped[p] = true
			}
		}
		oldSet = remapped
	}
	for p := range oldSet {
		if !newSet[p] {
			out[evKey{Leave, p}]++
		}
	}
	for p := range newSet {
		if !oldSet[p] {
			out[evKey{Enter, p}]++
		}
	}
	return out
}

func sameEvents(a, b map[evKey]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func sameMembers(a, b []Member, ranks bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pref != b[i].Pref {
			return false
		}
		if ranks && a[i].Rank != b[i].Rank {
			return false
		}
	}
	return true
}

// TestDiffMatchesFullRecompute is the property test: across random
// mutation histories, the perturbed-region diff leaves every monitor
// holding the identical answer set a full recompute produces, emits
// exactly the membership delta as events, and examines no more
// preference vectors than the full recompute would have.
func TestDiffMatchesFullRecompute(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(52000 + trial)))
			d := 2 + rng.Intn(3)
			mo := &model{}
			for i := 0; i < 10+rng.Intn(20); i++ {
				mo.ps = append(mo.ps, randVec(rng, d, 1))
			}
			for i := 0; i < 8+rng.Intn(12); i++ {
				mo.ws = append(mo.ws, randPref(rng, d))
			}
			r := NewRegistry(0)
			var monitors []*Monitor
			for i := 0; i < 3; i++ {
				kind := KindTopK
				if i%2 == 1 {
					kind = KindKRanks
				}
				q := mo.ps[rng.Intn(len(mo.ps))]
				m, err := r.Subscribe(q, 1+rng.Intn(4), kind, 4096, mo.snapshot(0))
				if err != nil {
					t.Fatal(err)
				}
				got, _ := r.Members(m.ID())
				if want := mo.members(m); !sameMembers(got, want, kind == KindKRanks) {
					t.Fatalf("monitor %d initial members %v, want %v", m.ID(), got, want)
				}
				monitors = append(monitors, m)
			}
			for step := 0; step < 25; step++ {
				seq := uint64(step + 1)
				old := make([][]Member, len(monitors))
				for i, m := range monitors {
					old[i], _ = r.Members(m.ID())
				}
				prefDelete := -1
				switch op := rng.Intn(6); {
				case op == 0: // insert product (sometimes dominating: gate path)
					p := randVec(rng, d, []float64{1, 3}[rng.Intn(2)])
					mo.ps = append(mo.ps, p)
					r.OnProductMutation(mo.snapshot(seq), p, true)
				case op == 1 && len(mo.ps) > 2: // delete product
					i := rng.Intn(len(mo.ps))
					row := mo.ps[i]
					mo.ps = append(mo.ps[:i:i], mo.ps[i+1:]...)
					r.OnProductMutation(mo.snapshot(seq), row, false)
				case op == 2: // insert preference
					w := randPref(rng, d)
					mo.ws = append(mo.ws, w)
					r.OnPreferenceInsert(mo.snapshot(seq), len(mo.ws)-1)
				case op == 3 && len(mo.ws) > 2: // delete preference
					i := rng.Intn(len(mo.ws))
					oldCount := len(mo.ws)
					mo.ws = append(mo.ws[:i:i], mo.ws[i+1:]...)
					r.OnPreferenceDelete(mo.snapshot(seq), i, oldCount)
					prefDelete = i
				default: // batch rebuild
					mo.ps = append(mo.ps, randVec(rng, d, 1), randVec(rng, d, 1))
					mo.ws = append(mo.ws, randPref(rng, d))
					r.OnRebuild(mo.snapshot(seq))
				}
				for i, m := range monitors {
					want := mo.members(m)
					got, ok := r.Members(m.ID())
					if !ok {
						t.Fatalf("step %d: monitor %d vanished (lagged=%v)", step, m.ID(), m.Lagged())
					}
					if !sameMembers(got, want, m.Kind() == KindKRanks) {
						t.Fatalf("step %d monitor %d (%v, k=%d): members %v, recompute %v",
							step, m.ID(), m.Kind(), m.K(), got, want)
					}
					gotEv := drain(m)
					wantEv := expectedEvents(old[i], want, prefDelete)
					if !sameEvents(gotEv, wantEv) {
						t.Fatalf("step %d monitor %d: events %v, want %v", step, m.ID(), gotEv, wantEv)
					}
				}
			}
			c := r.Counts()
			if c.PrefsDiffEvaluated > c.PrefsDiffFullCost {
				t.Fatalf("diff examined %d preference vectors, full-recompute baseline %d",
					c.PrefsDiffEvaluated, c.PrefsDiffFullCost)
			}
			if c.Lagged != 0 {
				t.Fatalf("unexpected lagged monitors: %+v", c)
			}
		})
	}
}

func TestSubscribeValidation(t *testing.T) {
	mo := &model{ps: [][]float64{{0.5, 0.5}}, ws: [][]float64{{0.5, 0.5}}}
	r := NewRegistry(0)
	if _, err := r.Subscribe([]float64{0.5, 0.5}, 0, KindTopK, 8, mo.snapshot(0)); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := r.Subscribe([]float64{0.5, 0.5}, 1, Kind(9), 8, mo.snapshot(0)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSubscriberLimit(t *testing.T) {
	mo := &model{ps: [][]float64{{0.5, 0.5}}, ws: [][]float64{{0.5, 0.5}}}
	r := NewRegistry(1)
	m, err := r.Subscribe([]float64{0.5, 0.5}, 1, KindTopK, 8, mo.snapshot(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Subscribe([]float64{0.5, 0.5}, 1, KindTopK, 8, mo.snapshot(0)); err == nil {
		t.Fatal("second subscribe above the limit accepted")
	}
	r.SetLimit(2)
	if _, err := r.Subscribe([]float64{0.5, 0.5}, 1, KindTopK, 8, mo.snapshot(0)); err != nil {
		t.Fatal(err)
	}
	if !r.Unsubscribe(m.ID()) {
		t.Fatal("unsubscribe of a live monitor reported false")
	}
	if r.Unsubscribe(m.ID()) {
		t.Fatal("double unsubscribe reported true")
	}
	if _, ok := <-m.Events(); ok {
		t.Fatal("channel still open after unsubscribe")
	}
	if m.Lagged() {
		t.Fatal("unsubscribed monitor reports lagged")
	}
	if c := r.Counts(); c.Monitors != 1 || c.Subscribed != 2 || c.Unsubscribed != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

// TestLaggedConsumerCancelled pins the overflow policy: a full buffer
// cancels the monitor instead of dropping events silently.
func TestLaggedConsumerCancelled(t *testing.T) {
	mo := &model{
		ps: [][]float64{{0.9, 0.9}},
		ws: [][]float64{{0.5, 0.5}, {0.3, 0.7}},
	}
	r := NewRegistry(0)
	// Monitor a point every preference ranks first; buffer of one.
	m, err := r.Subscribe([]float64{0.1, 0.1}, 1, KindTopK, 1, mo.snapshot(0))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Members(m.ID()); len(got) != 2 {
		t.Fatalf("initial members %v, want both preferences", got)
	}
	// A product strictly below the query point evicts both members: two
	// leave events into a one-slot buffer.
	p := []float64{0.01, 0.01}
	mo.ps = append(mo.ps, p)
	r.OnProductMutation(mo.snapshot(1), p, true)
	if !m.Lagged() {
		t.Fatal("overflowed monitor not lagged")
	}
	if _, ok := r.Members(m.ID()); ok {
		t.Fatal("lagged monitor still registered")
	}
	// The buffered prefix is still readable, then the channel closes.
	if ev, ok := <-m.Events(); !ok || ev.Type != Leave {
		t.Fatalf("buffered event = %v, %v", ev, ok)
	}
	if _, ok := <-m.Events(); ok {
		t.Fatal("channel open after lag cancellation")
	}
	c := r.Counts()
	if c.Lagged != 1 || c.Monitors != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestKindStrings(t *testing.T) {
	if KindTopK.String() != "reverse-topk" || KindKRanks.String() != "reverse-kranks" {
		t.Fatal("kind names drifted from the wire protocol")
	}
	if Enter.String() != "enter" || Leave.String() != "leave" {
		t.Fatal("event type names drifted from the wire protocol")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown kind must still print")
	}
}
