package model

import (
	"math"
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/grid"
	"gridrank/internal/vec"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestUpperTailMatchesPaperExample(t *testing.T) {
	// Section 5.3: Φ(0.0125) = 0.495.
	if got := UpperTail(0.0125); math.Abs(got-0.495) > 1e-3 {
		t.Errorf("Φ(0.0125) = %v, want ≈0.495", got)
	}
}

func TestInvUpperTail(t *testing.T) {
	for _, p := range []float64{0.5, 0.495, 0.25, 0.1, 0.01, 1e-6} {
		x, err := InvUpperTail(p)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if got := UpperTail(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("UpperTail(InvUpperTail(%v)) = %v", p, got)
		}
	}
	if _, err := InvUpperTail(0); err == nil {
		t.Error("p=0 should error")
	}
	if _, err := InvUpperTail(0.6); err == nil {
		t.Error("p>0.5 should error")
	}
}

func TestScoreMoments(t *testing.T) {
	mean, std := ScoreMoments(20, 1)
	if mean != 10 {
		t.Errorf("mean = %v, want 10", mean)
	}
	want := math.Sqrt(20) / (2 * math.Sqrt(3))
	if math.Abs(std-want) > 1e-12 {
		t.Errorf("std = %v, want %v", std, want)
	}
}

func TestRequiredPartitionsMatchesPaperExample(t *testing.T) {
	// Section 5.3's worked example: d = 20, ε = 1% → n ≈ 24.9, so 25
	// exactly and 32 as the next power of two ("n = 32 satisfies Eq. 28").
	n, err := RequiredPartitions(20, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("RequiredPartitions(20, 1%%) = %d, want 25", n)
	}
	p2, err := RequiredPartitionsPow2(20, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != 32 {
		t.Errorf("RequiredPartitionsPow2(20, 1%%) = %d, want 32", p2)
	}
}

func TestRequiredPartitionsErrors(t *testing.T) {
	if _, err := RequiredPartitions(0, 0.01); err == nil {
		t.Error("d=0 should error")
	}
	if _, err := RequiredPartitions(5, 0); err == nil {
		t.Error("ε=0 should error")
	}
	if _, err := RequiredPartitions(5, 1); err == nil {
		t.Error("ε=1 should error")
	}
}

func TestWorstCaseFilteringSatisfiesTheorem1(t *testing.T) {
	// For every d, the n returned by RequiredPartitions must achieve
	// F_worst > 1−ε, and n−1 (when ≥1) must not be clearly sufficient —
	// i.e. the bound is tight to within the integer rounding.
	for _, d := range []int{2, 6, 10, 20, 50} {
		for _, eps := range []float64{0.01, 0.05} {
			n, err := RequiredPartitions(d, eps)
			if err != nil {
				t.Fatal(err)
			}
			if f := WorstCaseFiltering(d, n); f < 1-eps {
				t.Errorf("d=%d ε=%v: F_worst(n=%d) = %v < %v", d, eps, n, f, 1-eps)
			}
		}
	}
}

func TestWorstCaseFilteringMonotone(t *testing.T) {
	// More partitions filter more; more dimensions filter less.
	if WorstCaseFiltering(6, 32) <= WorstCaseFiltering(6, 8) {
		t.Error("F should grow with n")
	}
	if WorstCaseFiltering(40, 32) >= WorstCaseFiltering(6, 32) {
		t.Error("F should shrink with d")
	}
}

func TestDiceProbBasics(t *testing.T) {
	// One 6-sided die: uniform.
	for s := 1; s <= 6; s++ {
		if got := DiceProb(s, 1, 6); math.Abs(got-1.0/6) > 1e-12 {
			t.Errorf("P(1d6 = %d) = %v", s, got)
		}
	}
	// Two 6-sided dice: P(7) = 6/36.
	if got := DiceProb(7, 2, 6); math.Abs(got-6.0/36) > 1e-12 {
		t.Errorf("P(2d6 = 7) = %v, want 1/6", got)
	}
	if DiceProb(1, 2, 6) != 0 || DiceProb(13, 2, 6) != 0 {
		t.Error("impossible sums must have probability 0")
	}
}

func TestDiceProbSumsToOne(t *testing.T) {
	for _, c := range []struct{ d, faces int }{{3, 4}, {4, 16}, {6, 9}} {
		total := 0.0
		for s := c.d; s <= c.d*c.faces; s++ {
			total += DiceProb(s, c.d, c.faces)
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("d=%d faces=%d: probabilities sum to %v", c.d, c.faces, total)
		}
	}
}

func TestDiceClosedFormAgreesWithDP(t *testing.T) {
	for _, c := range []struct{ d, faces int }{{2, 6}, {3, 4}, {4, 8}, {5, 5}} {
		for s := c.d; s <= c.d*c.faces; s++ {
			dp := DiceProb(s, c.d, c.faces)
			cf := DiceClosedForm(s, c.d, c.faces)
			if math.Abs(dp-cf) > 1e-9 {
				t.Errorf("d=%d faces=%d s=%d: DP %v vs closed form %v", c.d, c.faces, s, dp, cf)
			}
		}
	}
}

// Lemma 1's claim: dice sums approach the normal distribution. Compare the
// exact CDF of d=8 dice with n²=16 faces against N(μ, σ) at several points.
func TestDiceApproachesNormal(t *testing.T) {
	const d, faces = 8, 16
	// One die uniform on 1..faces: mean (faces+1)/2, var (faces²−1)/12.
	mu := float64(d) * float64(faces+1) / 2
	sigma := math.Sqrt(float64(d) * (float64(faces*faces) - 1) / 12)
	cdf := 0.0
	maxErr := 0.0
	for s := d; s <= d*faces; s++ {
		cdf += DiceProb(s, d, faces)
		normal := NormalCDF((float64(s) + 0.5 - mu) / sigma)
		if e := math.Abs(cdf - normal); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.01 {
		t.Errorf("max CDF deviation from normal = %v, want < 0.01", maxErr)
	}
}

func TestRTreeFilterVolumeMatchesPaperExample(t *testing.T) {
	// Section 5.2: d = 10, g = 5, γ = 0 → at most 1/5! = 0.8% of the space.
	got := RTreeFilterVolume(5, 0)
	if math.Abs(got-1.0/120) > 1e-12 {
		t.Errorf("Vol_max(5, 0) = %v, want 1/120", got)
	}
	if RTreeFilterVolume(0, 0.5) != 1 {
		t.Error("g=0 should give volume 1")
	}
	// Shrinks rapidly with g.
	if RTreeFilterVolume(10, 0) >= RTreeFilterVolume(5, 0) {
		t.Error("volume bound must shrink with g")
	}
}

func TestGridDelta(t *testing.T) {
	if got := GridDelta(6, 32, 10000); math.Abs(got-10000.0*6/1024) > 1e-9 {
		t.Errorf("GridDelta = %v", got)
	}
}

// Empirical check of the spirit of Lemma 2: the measured fraction of
// random pairs whose Grid bound interval straddles a random query score
// shrinks as n grows.
func TestEmpiricalFilteringGrowsWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const d = 6
	P := dataset.GenerateProducts(rng, dataset.Uniform, 400, d, 1).Points
	W := dataset.GenerateWeights(rng, dataset.Uniform, 50, d).Points
	rate := func(n int) float64 {
		g := grid.New(n, 1, 1)
		pa := grid.NewPointIndex(g, P)
		wa := grid.NewWeightIndex(g, W)
		decided, total := 0, 0
		for wi, w := range W {
			q := P[rng.Intn(len(P))]
			fq := vec.Dot(w, q)
			for pi := range P {
				total++
				if g.Classify(pa.Row(pi), wa.Row(wi), fq) != grid.Incomparable {
					decided++
				}
			}
		}
		return float64(decided) / float64(total)
	}
	r4, r32, r128 := rate(4), rate(32), rate(128)
	if !(r4 < r32 && r32 < r128) {
		t.Errorf("filtering should grow with n: %v, %v, %v", r4, r32, r128)
	}
	// Note: this measures the pure per-pair classification rate; the
	// paper's >99% figures also credit points skipped by early termination
	// (see EXPERIMENTS.md fig15b).
	if r128 < 0.90 {
		t.Errorf("n=128 d=6 filtering %v, want > 0.90", r128)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dice d=0", func() { DiceProb(1, 0, 6) })
	mustPanic("dice faces=0", func() { DiceProb(1, 1, 0) })
	mustPanic("wcf d=0", func() { WorstCaseFiltering(0, 4) })
	mustPanic("rtv g<0", func() { RTreeFilterVolume(-1, 0) })
	mustPanic("rtv gamma>1", func() { RTreeFilterVolume(2, 1.5) })
}
