// Package model implements the analytical performance models of the
// paper's Section 5: the normal approximation of Grid-index score
// distributions (Lemma 1), the worst-case filtering performance (Lemma 2,
// Equation 25), Theorem 1's required partition count, the exact
// dice-problem score distribution (Equation 15), and the R-tree filtering
// volume bound of Section 5.2 (Equation 10).
//
// Following the paper's notation, Φ(x) here is the upper tail
// P(Z > x) of the standard normal distribution (the paper uses
// Φ(0.0125) = 0.495), not the CDF.
package model

import (
	"fmt"
	"math"
)

// NormalCDF returns P(Z ≤ x) for Z ~ N(0, 1).
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// UpperTail is the paper's Φ(·): P(Z > x) for Z ~ N(0, 1).
func UpperTail(x float64) float64 { return 1 - NormalCDF(x) }

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// InvUpperTail returns the x with UpperTail(x) = p, for p in (0, 0.5].
// It solves by bisection on the monotone tail, to ~1e-12 accuracy — the
// programmatic version of the paper's "look up the SND table".
func InvUpperTail(p float64) (float64, error) {
	if p <= 0 || p > 0.5 {
		return 0, fmt.Errorf("model: InvUpperTail needs p in (0, 0.5], got %v", p)
	}
	lo, hi := 0.0, 1.0
	for UpperTail(hi) > p {
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("model: InvUpperTail(%v) did not bracket", p)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-13; i++ {
		mid := (lo + hi) / 2
		if UpperTail(mid) > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// ScoreMoments returns the normal approximation's parameters for the score
// of a d-dimensional point whose per-dimension sub-scores w[i]·p[i] are
// uniform on [0, r) (Equation 19): mean μ' = rd/2 and standard deviation
// σ' = √d·r / (2√3).
func ScoreMoments(d int, r float64) (mean, std float64) {
	mean = 0.5 * r * float64(d)
	std = math.Sqrt(float64(d)) * r / (2 * math.Sqrt(3))
	return mean, std
}

// WorstCaseFiltering returns F_worst of Equation 25: the guaranteed
// filtering performance of an n-partition Grid-index on d-dimensional
// data, 2·Φ(√(3d)/n²), evaluated at the distribution's densest interval.
func WorstCaseFiltering(d, n int) float64 {
	if d < 1 || n < 1 {
		panic(fmt.Sprintf("model: invalid d=%d n=%d", d, n))
	}
	z := math.Sqrt(3*float64(d)) / float64(n*n)
	return 2 * UpperTail(z)
}

// RequiredPartitions returns Theorem 1's minimum n guaranteeing filtering
// performance above 1−ε: the smallest integer n with
// n > sqrt(2·sqrt(3d)/δ) where Φ(δ/2) = (1−ε)/2.
func RequiredPartitions(d int, eps float64) (int, error) {
	if d < 1 {
		return 0, fmt.Errorf("model: invalid dimension %d", d)
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("model: ε must be in (0, 1), got %v", eps)
	}
	halfDelta, err := InvUpperTail((1 - eps) / 2)
	if err != nil {
		return 0, err
	}
	delta := 2 * halfDelta
	n := math.Sqrt(2 * math.Sqrt(3*float64(d)) / delta)
	return int(math.Floor(n)) + 1, nil
}

// RequiredPartitionsPow2 rounds RequiredPartitions up to the next power of
// two, matching the paper's choice of n = 32 for d = 20, ε = 1% (the grid
// is usually sized to a power of two so approximate vectors bit-pack
// exactly).
func RequiredPartitionsPow2(d int, eps float64) (int, error) {
	n, err := RequiredPartitions(d, eps)
	if err != nil {
		return 0, err
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p, nil
}

// DiceProb returns the probability that the sum of d fair dice with the
// given number of faces (each face valued 1..faces) equals s — the
// paper's Equation 15, with a die modelling one dimension's score
// interval among the n² Grid partitions. Computed by exact dynamic-
// programming convolution; the closed-form alternating sum overflows
// float64 binomials long before interesting d.
func DiceProb(s, d, faces int) float64 {
	if d < 1 || faces < 1 {
		panic(fmt.Sprintf("model: invalid dice d=%d faces=%d", d, faces))
	}
	if s < d || s > d*faces {
		return 0
	}
	// dp[v] = number of ways (scaled) to reach sum v.
	// Work in probabilities to avoid overflow: each die contributes 1/faces.
	dp := make([]float64, d*faces+1)
	for f := 1; f <= faces; f++ {
		dp[f] = 1 / float64(faces)
	}
	cur := faces
	for die := 2; die <= d; die++ {
		next := make([]float64, d*faces+1)
		for v := die - 1; v <= cur; v++ {
			if dp[v] == 0 {
				continue
			}
			contrib := dp[v] / float64(faces)
			for f := 1; f <= faces; f++ {
				next[v+f] += contrib
			}
		}
		dp = next
		cur += faces
	}
	return dp[s]
}

// DiceClosedForm evaluates Equation 15 literally:
//
//	P(s, d, n) = n^(−2d) · Σ_k (−1)^k · C(d, k) · C(s − n²k − 1, d − 1)
//
// with n² faces. It is only numerically trustworthy for small d and faces
// (binomials grow fast); it exists to cross-check DiceProb in tests.
func DiceClosedForm(s, d, faces int) float64 {
	if s < d || s > d*faces {
		return 0
	}
	total := 0.0
	for k := 0; k <= (s-d)/faces; k++ {
		term := binom(d, k) * binom(s-faces*k-1, d-1)
		if k%2 == 1 {
			term = -term
		}
		total += term
	}
	return total / math.Pow(float64(faces), float64(d))
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	v := 1.0
	for i := 0; i < k; i++ {
		v = v * float64(n-i) / float64(i+1)
	}
	return v
}

// RTreeFilterVolume returns Equation 10's upper bound on the fraction of
// the data space an R-tree-based method can prune for reverse rank
// queries: Vol_max = (1−γ)^g / g!, where g is the number of dimensions in
// which the pruned region is a hyper-tetrahedron (the paper argues g ≈ d/2)
// and γ is the relative position of the MBR (γ = 0 gives the most
// optimistic bound).
func RTreeFilterVolume(g int, gamma float64) float64 {
	if g < 0 {
		panic(fmt.Sprintf("model: invalid g=%d", g))
	}
	if gamma < 0 || gamma > 1 {
		panic(fmt.Sprintf("model: γ must be in [0, 1], got %v", gamma))
	}
	v := 1.0
	for i := 1; i <= g; i++ {
		v = v * (1 - gamma) / float64(i)
	}
	return v
}

// GridDelta returns Equation 23's Δ = r·d/n², the score-interval width the
// paper's model assigns to a d-dimensional Grid-index bound.
func GridDelta(d, n int, r float64) float64 {
	return r * float64(d) / float64(n*n)
}
