// Package stats provides the explicit operation counters used to reproduce
// the paper's cost metrics: pairwise multiplications (the dominant CPU cost
// identified in Section 1.2), bound-sum evaluations of the Grid-index,
// visited data points and R-tree nodes, and refinement counts.
//
// Counters are plain values passed by pointer; there is no global state, so
// the benchmark harness can run queries on separate goroutines with separate
// counters and merge the results afterwards.
package stats

import "fmt"

// Counters accumulates operation counts across one or more queries.
type Counters struct {
	// PairwiseMults counts full inner-product evaluations f_w(p), each of
	// which costs d multiplications. This is the "number of pairwise
	// computations" metric of Figures 11b/11d.
	PairwiseMults int64

	// BoundSums counts Grid-index bound evaluations (Equations 3 and 4),
	// each of which costs d additions and d table lookups but zero
	// multiplications.
	BoundSums int64

	// PointsVisited counts accesses to original (full-precision) data
	// points, the metric of Figure 15a.
	PointsVisited int64

	// ApproxVisited counts accesses to approximate vectors.
	ApproxVisited int64

	// NodesVisited counts R-tree node accesses (internal + leaf).
	NodesVisited int64

	// LeavesVisited counts R-tree leaf node accesses.
	LeavesVisited int64

	// CellsVisited counts histogram cell accesses (MPA).
	CellsVisited int64

	// Refinements counts Case-3 candidates whose exact score had to be
	// computed after Grid filtering.
	Refinements int64

	// Filtered counts points decided by Grid bounds alone (Case 1 or 2).
	// It always equals Case1Filtered + Case2Filtered.
	Filtered int64

	// Case1Filtered counts points whose lower bound already exceeded the
	// query score (Case 1, Section 3.1): they raise the rank without an
	// exact evaluation.
	Case1Filtered int64

	// Case2Filtered counts points whose upper bound fell below the query
	// score (Case 2): they are discarded without an exact evaluation.
	Case2Filtered int64

	// WeightsPruned counts weight vectors (or whole weight groups) discarded
	// without individual rank evaluation.
	WeightsPruned int64

	// Queries counts completed queries, so averages can be reported.
	Queries int64
}

// Add merges o into c.
func (c *Counters) Add(o *Counters) {
	c.PairwiseMults += o.PairwiseMults
	c.BoundSums += o.BoundSums
	c.PointsVisited += o.PointsVisited
	c.ApproxVisited += o.ApproxVisited
	c.NodesVisited += o.NodesVisited
	c.LeavesVisited += o.LeavesVisited
	c.CellsVisited += o.CellsVisited
	c.Refinements += o.Refinements
	c.Filtered += o.Filtered
	c.Case1Filtered += o.Case1Filtered
	c.Case2Filtered += o.Case2Filtered
	c.WeightsPruned += o.WeightsPruned
	c.Queries += o.Queries
}

// Merge sums any number of per-worker counter sets into dst. This is the
// merge step of the package's concurrency design: query workers count
// into private Counters and the coordinator folds them together once the
// goroutines have joined, so the hot loops never touch shared memory.
func Merge(dst *Counters, parts ...*Counters) {
	for _, p := range parts {
		dst.Add(p)
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// FilterRate returns the fraction of Grid-checked points decided without an
// exact score computation: Filtered / (Filtered + Refinements).
// It returns 0 when nothing was checked.
func (c *Counters) FilterRate() float64 {
	total := c.Filtered + c.Refinements
	if total == 0 {
		return 0
	}
	return float64(c.Filtered) / float64(total)
}

// PerQuery returns a copy of c scaled to a single-query average.
// It returns c unchanged when Queries <= 1.
func (c *Counters) PerQuery() Counters {
	if c.Queries <= 1 {
		return *c
	}
	n := c.Queries
	return Counters{
		PairwiseMults: c.PairwiseMults / n,
		BoundSums:     c.BoundSums / n,
		PointsVisited: c.PointsVisited / n,
		ApproxVisited: c.ApproxVisited / n,
		NodesVisited:  c.NodesVisited / n,
		LeavesVisited: c.LeavesVisited / n,
		CellsVisited:  c.CellsVisited / n,
		Refinements:   c.Refinements / n,
		Filtered:      c.Filtered / n,
		Case1Filtered: c.Case1Filtered / n,
		Case2Filtered: c.Case2Filtered / n,
		WeightsPruned: c.WeightsPruned / n,
		Queries:       1,
	}
}

// String renders the non-zero counters compactly, for logs and examples.
func (c *Counters) String() string {
	s := fmt.Sprintf("queries=%d mults=%d boundSums=%d", c.Queries, c.PairwiseMults, c.BoundSums)
	if c.Filtered+c.Refinements > 0 {
		s += fmt.Sprintf(" filtered=%d refined=%d (rate %.2f%%)",
			c.Filtered, c.Refinements, 100*c.FilterRate())
	}
	if c.NodesVisited > 0 {
		s += fmt.Sprintf(" nodes=%d leaves=%d", c.NodesVisited, c.LeavesVisited)
	}
	if c.CellsVisited > 0 {
		s += fmt.Sprintf(" cells=%d", c.CellsVisited)
	}
	if c.WeightsPruned > 0 {
		s += fmt.Sprintf(" weightsPruned=%d", c.WeightsPruned)
	}
	return s
}
