package stats

import (
	"strings"
	"testing"
)

func TestAddMergesAllFields(t *testing.T) {
	a := Counters{
		PairwiseMults: 1, BoundSums: 2, PointsVisited: 3, ApproxVisited: 4,
		NodesVisited: 5, LeavesVisited: 6, CellsVisited: 7, Refinements: 8,
		Filtered: 9, WeightsPruned: 10, Queries: 11,
	}
	b := a
	a.Add(&b)
	want := Counters{
		PairwiseMults: 2, BoundSums: 4, PointsVisited: 6, ApproxVisited: 8,
		NodesVisited: 10, LeavesVisited: 12, CellsVisited: 14, Refinements: 16,
		Filtered: 18, WeightsPruned: 20, Queries: 22,
	}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestReset(t *testing.T) {
	c := Counters{PairwiseMults: 5, Queries: 2}
	c.Reset()
	if c != (Counters{}) {
		t.Errorf("Reset left %+v", c)
	}
}

func TestFilterRate(t *testing.T) {
	c := Counters{}
	if c.FilterRate() != 0 {
		t.Error("empty counters should report rate 0")
	}
	c = Counters{Filtered: 99, Refinements: 1}
	if got := c.FilterRate(); got != 0.99 {
		t.Errorf("FilterRate = %v, want 0.99", got)
	}
}

func TestPerQuery(t *testing.T) {
	c := Counters{PairwiseMults: 100, Filtered: 50, Queries: 10}
	avg := c.PerQuery()
	if avg.PairwiseMults != 10 || avg.Filtered != 5 || avg.Queries != 1 {
		t.Errorf("PerQuery = %+v", avg)
	}
	single := Counters{PairwiseMults: 7, Queries: 1}
	if single.PerQuery() != single {
		t.Error("PerQuery with 1 query should be identity")
	}
	zero := Counters{PairwiseMults: 7}
	if zero.PerQuery() != zero {
		t.Error("PerQuery with 0 queries should be identity")
	}
}

func TestStringMentionsKeyCounters(t *testing.T) {
	c := Counters{PairwiseMults: 3, Filtered: 1, Refinements: 1, NodesVisited: 2, Queries: 1}
	s := c.String()
	for _, want := range []string{"mults=3", "filtered=1", "nodes=2", "rate 50.00%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
