// Package flight is the always-on flight recorder: a bounded,
// lock-free ring of fixed-size digests — one per query, one per
// mutation/epoch install, one per subscription lifecycle event —
// written unconditionally on the hot paths and read only when someone
// asks (the /debug/flight endpoint, the diagnostics bundle, or a
// post-mortem against a loaded index). Unlike the tracer, which
// samples, the recorder never misses an operation: after an incident
// the last N operations are always reconstructable, sampled or not.
//
// # Memory model
//
// The ring is a fixed slice of slots allocated once at construction;
// records are plain value structs copied in and out, so steady-state
// recording performs zero heap allocations. Writers claim a slot by
// incrementing a global cursor (one atomic add), then serialize access
// to that slot with a one-word CAS latch: the slot's version counter is
// even when idle; a writer CASes it odd, copies the record in, and
// releases by storing the next even value. Readers (Snapshot) take the
// same latch and restore the version they found, so they never destroy
// a generation. All transitions are Go atomics, which establish
// happens-before edges — the recorder is race-detector-clean without
// requiring unsampled seqlock reads. Writers never block each other
// except on the same slot, which requires lapping the whole ring;
// recording never blocks a query on reader activity for longer than one
// record copy.
package flight

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Class partitions records by which subsystem produced them.
type Class uint8

const (
	classInvalid Class = iota // zero value marks a claimed-but-unwritten slot
	ClassQuery
	ClassMutation
	ClassSub
)

func (c Class) String() string {
	switch c {
	case ClassQuery:
		return "query"
	case ClassMutation:
		return "mutation"
	case ClassSub:
		return "subscription"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Op identifies the operation a record digests.
type Op uint8

const (
	opInvalid Op = iota
	OpReverseTopK
	OpReverseKRanks
	OpInsertProduct
	OpDeleteProduct
	OpInsertPreference
	OpDeletePreference
	OpInsertProducts
	OpDeleteProducts
	OpInsertPreferences
	OpDeletePreferences
	OpSubscribe
	OpUnsubscribe
	OpSubLagged
)

func (o Op) String() string {
	switch o {
	case OpReverseTopK:
		return "reverse_topk"
	case OpReverseKRanks:
		return "reverse_kranks"
	case OpInsertProduct:
		return "insert_product"
	case OpDeleteProduct:
		return "delete_product"
	case OpInsertPreference:
		return "insert_preference"
	case OpDeletePreference:
		return "delete_preference"
	case OpInsertProducts:
		return "insert_products"
	case OpDeleteProducts:
		return "delete_products"
	case OpInsertPreferences:
		return "insert_preferences"
	case OpDeletePreferences:
		return "delete_preferences"
	case OpSubscribe:
		return "subscribe"
	case OpUnsubscribe:
		return "unsubscribe"
	case OpSubLagged:
		return "subscriber_lagged"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Outcome is how the operation ended.
type Outcome uint8

const (
	OutcomeOK Outcome = iota
	OutcomeCanceled
	OutcomeDeadline
	OutcomeError
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeCanceled:
		return "canceled"
	case OutcomeDeadline:
		return "deadline"
	case OutcomeError:
		return "error"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Flag bits packed into Record.Flags.
const (
	// FlagCacheHit marks a query answered from the answer cache.
	FlagCacheHit uint8 = 1 << iota
	// FlagDerived marks a mutation that derived the next epoch from the
	// previous one instead of rebuilding the grid.
	FlagDerived
	// FlagSampled marks an operation whose trace was head-sampled (its
	// trace ID was returned to the caller, so TraceHi/TraceLo identify a
	// span tree that may still be resident in the trace ring).
	FlagSampled
)

// Record is one fixed-size flight digest. It contains no pointers, so
// copying it into a ring slot allocates nothing and a snapshot taken
// later cannot retain any query-lifetime memory.
//
// Field use by class:
//
//   - Query: K, Epoch (epoch served), Case1/2/3 (scan breakdown; zero
//     when the caller did not request stats), FlagCacheHit,
//     FlagSampled plus TraceHi/TraceLo, Outcome.
//   - Mutation: Epoch (epoch installed), FlagDerived, Aux1 = answer
//     cache entries invalidated by the install's sweep, Aux2 =
//     subscription preference diff evaluations the install triggered.
//   - Subscription: K (subscription's k), Aux1 = subscription kind
//     (0 = reverse top-k, 1 = reverse k-ranks), Aux2 = subscription ID;
//     for OpSubLagged, Aux2 = number of subscribers cancelled as lagged.
type Record struct {
	Seq     uint64  // claim order; process-lifetime monotonic
	Unix    int64   // completion time, nanoseconds since the epoch
	Class   Class   //
	Op      Op      //
	Outcome Outcome //
	Flags   uint8   //
	K       int32   //
	Epoch   uint64  //
	DurNs   int64   //
	Case1   int64   //
	Case2   int64   //
	Case3   int64   //
	TraceHi uint64  //
	TraceLo uint64  //
	Aux1    int64   //
	Aux2    int64   //
}

// TraceID renders the record's trace ID as 32 lowercase hex digits, or
// "" when no trace was attached. Allocates; debug/bundle path only.
func (r Record) TraceID() string {
	if r.TraceHi == 0 && r.TraceLo == 0 {
		return ""
	}
	return fmt.Sprintf("%016x%016x", r.TraceHi, r.TraceLo)
}

// MarshalJSON renders the record with symbolic class/op/outcome names
// and decoded flags — the form the diagnostics bundle and the
// /debug/flight endpoint serve. Allocates; never on the record path.
func (r Record) MarshalJSON() ([]byte, error) {
	return json.Marshal(recordJSON{
		Seq:      r.Seq,
		Time:     time.Unix(0, r.Unix).UTC().Format(time.RFC3339Nano),
		Class:    r.Class.String(),
		Op:       r.Op.String(),
		Outcome:  r.Outcome.String(),
		K:        r.K,
		Epoch:    r.Epoch,
		DurNs:    r.DurNs,
		Case1:    r.Case1,
		Case2:    r.Case2,
		Case3:    r.Case3,
		CacheHit: r.Flags&FlagCacheHit != 0,
		Derived:  r.Flags&FlagDerived != 0,
		Sampled:  r.Flags&FlagSampled != 0,
		TraceID:  r.TraceID(),
		Aux1:     r.Aux1,
		Aux2:     r.Aux2,
	})
}

type recordJSON struct {
	Seq      uint64 `json:"seq"`
	Time     string `json:"time"`
	Class    string `json:"class"`
	Op       string `json:"op"`
	Outcome  string `json:"outcome"`
	K        int32  `json:"k,omitempty"`
	Epoch    uint64 `json:"epoch"`
	DurNs    int64  `json:"durationNs"`
	Case1    int64  `json:"case1,omitempty"`
	Case2    int64  `json:"case2,omitempty"`
	Case3    int64  `json:"case3,omitempty"`
	CacheHit bool   `json:"cacheHit,omitempty"`
	Derived  bool   `json:"derived,omitempty"`
	Sampled  bool   `json:"sampled,omitempty"`
	TraceID  string `json:"traceId,omitempty"`
	Aux1     int64  `json:"aux1,omitempty"`
	Aux2     int64  `json:"aux2,omitempty"`
}

// Counts is a snapshot of the recorder's lifetime totals.
type Counts struct {
	Recorded      int64 `json:"recorded"` // all records ever written
	Queries       int64 `json:"queries"`
	Mutations     int64 `json:"mutations"`
	Subscriptions int64 `json:"subscriptions"`
	Capacity      int   `json:"capacity"` // ring slots (power of two)
}

// slot is one ring entry: a version latch and the record it guards.
// ver is even when the slot is idle; a writer or reader CASes it odd
// while it holds the slot. Writers release to the next even value (a
// new generation); readers restore the value they latched.
type slot struct {
	ver atomic.Uint64
	rec Record
}

// DefaultCapacity is the ring size used when the caller passes 0.
const DefaultCapacity = 4096

// Recorder is the flight ring. The zero-value pointer (nil) is a valid
// no-op recorder: every method is nil-safe, so callers hook record
// sites without guarding. A nil *Recorder is how "disabled" is spelled.
type Recorder struct {
	slots  []slot
	mask   uint64
	cursor atomic.Uint64

	queries   atomic.Int64
	mutations atomic.Int64
	subs      atomic.Int64
}

// New builds a recorder with capacity slots, rounded up to a power of
// two; capacity <= 0 selects DefaultCapacity.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Recorder{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Capacity returns the ring's slot count (0 for a nil recorder).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Record copies rec into the ring, stamping rec.Seq with its claim
// order. Zero allocations; safe from any goroutine; no-op on nil.
func (r *Recorder) Record(rec Record) {
	if r == nil {
		return
	}
	i := r.cursor.Add(1) - 1
	rec.Seq = i
	s := &r.slots[i&r.mask]
	for {
		v := s.ver.Load()
		if v&1 == 0 && s.ver.CompareAndSwap(v, v+1) {
			s.rec = rec
			s.ver.Store(v + 2)
			break
		}
	}
	switch rec.Class {
	case ClassQuery:
		r.queries.Add(1)
	case ClassMutation:
		r.mutations.Add(1)
	case ClassSub:
		r.subs.Add(1)
	}
}

// Snapshot copies out the resident records, newest first. It latches
// each slot for the duration of one record copy, so concurrent writers
// are delayed by at most that. Allocates; debug path only.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	c := r.cursor.Load()
	n := uint64(len(r.slots))
	if c < n {
		n = c
	}
	out := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		s := &r.slots[(c-1-i)&r.mask]
		for {
			v := s.ver.Load()
			if v&1 == 0 && s.ver.CompareAndSwap(v, v+1) {
				rec := s.rec
				s.ver.Store(v)
				if rec.Class != classInvalid {
					out = append(out, rec)
				}
				break
			}
		}
	}
	// Concurrent writers can lap slots mid-walk, so enforce newest-first
	// by the claim sequence rather than trusting walk order.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Counts returns the recorder's lifetime totals (zero for nil).
func (r *Recorder) Counts() Counts {
	if r == nil {
		return Counts{}
	}
	q, m, s := r.queries.Load(), r.mutations.Load(), r.subs.Load()
	return Counts{
		Recorded:      q + m + s,
		Queries:       q,
		Mutations:     m,
		Subscriptions: s,
		Capacity:      len(r.slots),
	}
}
