//go:build race

package flight

const raceEnabled = true
