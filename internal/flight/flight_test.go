package flight

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Record(Record{Class: ClassQuery, Op: OpReverseTopK}) // must not panic
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v, want nil", got)
	}
	if got := r.Counts(); got != (Counts{}) {
		t.Fatalf("nil Counts = %+v, want zero", got)
	}
	if got := r.Capacity(); got != 0 {
		t.Fatalf("nil Capacity = %d, want 0", got)
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultCapacity}, {-5, DefaultCapacity},
		{1, 1}, {2, 2}, {3, 4}, {100, 128}, {4096, 4096},
	} {
		if got := New(tc.in).Capacity(); got != tc.want {
			t.Errorf("New(%d).Capacity() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRecordSnapshotOrderAndWrap(t *testing.T) {
	r := New(8)
	for i := 0; i < 20; i++ {
		r.Record(Record{Class: ClassQuery, Op: OpReverseTopK, K: int32(i)})
	}
	got := r.Snapshot()
	if len(got) != 8 {
		t.Fatalf("Snapshot len = %d, want 8 (ring capacity)", len(got))
	}
	// Newest first: K 19 down to 12, Seq 19 down to 12.
	for i, rec := range got {
		if want := int32(19 - i); rec.K != want {
			t.Errorf("rec[%d].K = %d, want %d", i, rec.K, want)
		}
		if want := uint64(19 - i); rec.Seq != want {
			t.Errorf("rec[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestSnapshotSkipsUnwrittenSlots(t *testing.T) {
	r := New(16)
	r.Record(Record{Class: ClassMutation, Op: OpInsertProduct})
	if got := r.Snapshot(); len(got) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(got))
	}
}

func TestCounts(t *testing.T) {
	r := New(4)
	r.Record(Record{Class: ClassQuery, Op: OpReverseTopK})
	r.Record(Record{Class: ClassQuery, Op: OpReverseKRanks})
	r.Record(Record{Class: ClassMutation, Op: OpInsertProduct})
	r.Record(Record{Class: ClassSub, Op: OpSubscribe})
	got := r.Counts()
	want := Counts{Recorded: 4, Queries: 2, Mutations: 1, Subscriptions: 1, Capacity: 4}
	if got != want {
		t.Fatalf("Counts = %+v, want %+v", got, want)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := New(64)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: must never see a torn record
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range r.Snapshot() {
				if rec.Class != ClassQuery || rec.Op != OpReverseTopK {
					t.Errorf("torn record: %+v", rec)
					return
				}
				if rec.Epoch != uint64(rec.K) {
					t.Errorf("torn record: K=%d Epoch=%d", rec.K, rec.Epoch)
					return
				}
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				k := int32(i % 97)
				r.Record(Record{Class: ClassQuery, Op: OpReverseTopK, K: k, Epoch: uint64(k)})
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()
	c := r.Counts()
	if c.Recorded != writers*perWriter || c.Queries != writers*perWriter {
		t.Fatalf("Counts = %+v, want %d recorded queries", c, writers*perWriter)
	}
	snap := r.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("Snapshot len = %d, want 64", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Seq <= snap[i].Seq {
			t.Fatalf("snapshot not newest-first at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}

func TestRecordMarshalJSON(t *testing.T) {
	rec := Record{
		Seq: 7, Unix: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).UnixNano(),
		Class: ClassQuery, Op: OpReverseKRanks, Outcome: OutcomeDeadline,
		Flags: FlagCacheHit | FlagSampled, K: 10, Epoch: 42, DurNs: 1500,
		Case1: 3, Case2: 2, Case3: 1,
		TraceHi: 0x0123456789abcdef, TraceLo: 0xfedcba9876543210,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]any{
		"class": "query", "op": "reverse_kranks", "outcome": "deadline",
		"cacheHit": true, "sampled": true,
		"traceId": "0123456789abcdeffedcba9876543210",
		"k":       float64(10), "epoch": float64(42), "durationNs": float64(1500),
	} {
		if m[k] != want {
			t.Errorf("json[%q] = %v, want %v", k, m[k], want)
		}
	}
	if _, ok := m["derived"]; ok {
		t.Error("derived should be omitted when false")
	}
	if !strings.HasPrefix(m["time"].(string), "2026-08-08T12:00:00") {
		t.Errorf("time = %v", m["time"])
	}
}

func TestTraceID(t *testing.T) {
	if got := (Record{}).TraceID(); got != "" {
		t.Fatalf("zero TraceID = %q, want empty", got)
	}
	if got := (Record{TraceHi: 1, TraceLo: 2}).TraceID(); got != "00000000000000010000000000000002" {
		t.Fatalf("TraceID = %q", got)
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{ClassQuery.String(), "query"},
		{ClassMutation.String(), "mutation"},
		{ClassSub.String(), "subscription"},
		{Class(99).String(), "class(99)"},
		{OpReverseTopK.String(), "reverse_topk"},
		{OpSubLagged.String(), "subscriber_lagged"},
		{Op(99).String(), "op(99)"},
		{OutcomeOK.String(), "ok"},
		{OutcomeCanceled.String(), "canceled"},
		{OutcomeError.String(), "error"},
		{Outcome(99).String(), "outcome(99)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestRecordZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	r := New(256)
	rec := Record{Class: ClassQuery, Op: OpReverseTopK, K: 10, Epoch: 1, DurNs: 100}
	if avg := testing.AllocsPerRun(1000, func() { r.Record(rec) }); avg != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", avg)
	}
}

func BenchmarkRecord(b *testing.B) {
	r := New(4096)
	rec := Record{Class: ClassQuery, Op: OpReverseTopK, K: 10, Epoch: 1, DurNs: 100}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(rec)
		}
	})
}
