//go:build !race

package flight

// raceEnabled mirrors the pattern in internal/algo: allocation-count
// tests are skipped under the race detector, whose instrumentation
// inserts allocations the production build does not perform.
const raceEnabled = false
