// Package diag builds and validates one-shot diagnostics bundles: a
// tar.gz capture of a process's observable state (goroutine dump,
// runtime telemetry, metrics scrape, flight-recorder digests, kept
// traces, index metadata) taken at a single point in time, for attaching
// to an incident ticket or inspecting offline with rrqdiag.
//
// Bundle layout: the first tar entry is manifest.json — capture time,
// source ("server" or "index"), Go version, and for every other entry
// its byte size and SHA-256 — so a consumer can verify a capture is
// complete and untampered before trusting it. The remaining entries
// follow in manifest order.
//
// Redaction: bundles are built only from content the producer passes in;
// this package never reads config files or the environment. Producers
// must sanitize what they include — the server's /debug/bundle handler,
// for example, replaces its collector endpoint URL (which may embed
// credentials) with a boolean.
package diag

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/metrics"
	"sort"
	"time"
)

// ManifestName is the bundle's first tar entry.
const ManifestName = "manifest.json"

// ManifestVersion identifies the bundle layout; readers reject versions
// they do not understand rather than misinterpreting entries.
const ManifestVersion = 1

// maxEntryBytes bounds one decompressed entry on read, so a corrupt or
// hostile bundle cannot balloon memory (a gzip bomb inside the tar).
const maxEntryBytes = 64 << 20

// Entry describes one bundled file.
type Entry struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Manifest is the bundle's self-description.
type Manifest struct {
	Version   int       `json:"version"`
	CreatedAt time.Time `json:"createdAt"`
	Source    string    `json:"source"` // "server" or "index"
	GoVersion string    `json:"goVersion"`
	Entries   []Entry   `json:"entries"`
}

// File is one named payload to bundle.
type File struct {
	Name string
	Data []byte
}

// WriteBundle writes a tar.gz bundle of files to w: manifest.json first,
// then the files in the given order. Names must be unique, non-empty and
// not ManifestName.
func WriteBundle(w io.Writer, source string, files []File) error {
	m := Manifest{
		Version:   ManifestVersion,
		CreatedAt: time.Now().UTC(),
		Source:    source,
		GoVersion: runtime.Version(),
	}
	seen := map[string]bool{ManifestName: true}
	for _, f := range files {
		if f.Name == "" || seen[f.Name] {
			return fmt.Errorf("diag: duplicate or invalid entry name %q", f.Name)
		}
		seen[f.Name] = true
		sum := sha256.Sum256(f.Data)
		m.Entries = append(m.Entries, Entry{
			Name: f.Name, Bytes: int64(len(f.Data)), SHA256: hex.EncodeToString(sum[:]),
		})
	}
	mj, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}

	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	write := func(name string, data []byte) error {
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(data)), ModTime: m.CreatedAt,
		}); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	if err := write(ManifestName, mj); err != nil {
		return err
	}
	for _, f := range files {
		if err := write(f.Name, f.Data); err != nil {
			return err
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

// ReadBundle parses a tar.gz bundle, returning the manifest and the
// entries by name. It requires manifest.json to be the first entry and
// a version this package understands; integrity is checked separately
// with Validate.
func ReadBundle(r io.Reader) (Manifest, map[string][]byte, error) {
	var m Manifest
	gz, err := gzip.NewReader(r)
	if err != nil {
		return m, nil, fmt.Errorf("diag: not a gzip stream: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	files := make(map[string][]byte)
	first := true
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return m, nil, fmt.Errorf("diag: reading tar: %w", err)
		}
		data, err := io.ReadAll(io.LimitReader(tr, maxEntryBytes+1))
		if err != nil {
			return m, nil, fmt.Errorf("diag: reading entry %s: %w", hdr.Name, err)
		}
		if len(data) > maxEntryBytes {
			return m, nil, fmt.Errorf("diag: entry %s exceeds %d bytes", hdr.Name, maxEntryBytes)
		}
		if first {
			if hdr.Name != ManifestName {
				return m, nil, fmt.Errorf("diag: first entry is %s, want %s", hdr.Name, ManifestName)
			}
			if err := json.Unmarshal(data, &m); err != nil {
				return m, nil, fmt.Errorf("diag: parsing manifest: %w", err)
			}
			if m.Version != ManifestVersion {
				return m, nil, fmt.Errorf("diag: unsupported manifest version %d", m.Version)
			}
			first = false
			continue
		}
		files[hdr.Name] = data
	}
	if first {
		return m, nil, fmt.Errorf("diag: empty bundle")
	}
	return m, files, nil
}

// Validate checks the files against the manifest: every listed entry
// must be present with the declared size and SHA-256, and no unlisted
// entries may appear.
func Validate(m Manifest, files map[string][]byte) error {
	listed := make(map[string]bool, len(m.Entries))
	for _, e := range m.Entries {
		listed[e.Name] = true
		data, ok := files[e.Name]
		if !ok {
			return fmt.Errorf("diag: entry %s listed in manifest but missing", e.Name)
		}
		if int64(len(data)) != e.Bytes {
			return fmt.Errorf("diag: entry %s is %d bytes, manifest says %d", e.Name, len(data), e.Bytes)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != e.SHA256 {
			return fmt.Errorf("diag: entry %s fails its checksum", e.Name)
		}
	}
	for name := range files {
		if !listed[name] {
			return fmt.Errorf("diag: entry %s not listed in manifest", name)
		}
	}
	return nil
}

// Goroutines returns the full goroutine dump (stack traces of every
// goroutine), the capture a hang investigation starts from.
func Goroutines() []byte {
	// runtime.Stack with all=true needs a buffer sized for every stack;
	// double until it fits.
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, 2*len(buf))
	}
}

// RuntimeSnapshot returns a JSON document of MemStats key fields plus
// every runtime/metrics sample the toolchain exposes, keyed by metric
// name. Histogram-valued metrics are summarized to their bucket counts'
// total rather than serialized in full.
func RuntimeSnapshot() []byte {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	rt := make(map[string]any, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			rt[s.Name] = s.Value.Uint64()
		case metrics.KindFloat64:
			rt[s.Name] = s.Value.Float64()
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var total uint64
			for _, c := range h.Counts {
				total += c
			}
			rt[s.Name] = map[string]any{"histogramTotal": total, "buckets": len(h.Counts)}
		}
	}
	// Sorted key order keeps captures diffable across runs.
	keys := make([]string, 0, len(rt))
	for k := range rt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]any, len(rt))
	for _, k := range keys {
		ordered[k] = rt[k]
	}

	doc := map[string]any{
		"memStats": map[string]any{
			"heapAlloc":    ms.HeapAlloc,
			"heapInuse":    ms.HeapInuse,
			"heapObjects":  ms.HeapObjects,
			"stackInuse":   ms.StackInuse,
			"sys":          ms.Sys,
			"numGC":        ms.NumGC,
			"pauseTotalNs": ms.PauseTotalNs,
			"lastGC":       ms.LastGC,
		},
		"goroutines": runtime.NumGoroutine(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"numCPU":     runtime.NumCPU(),
		"goVersion":  runtime.Version(),
		"metrics":    ordered,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// Every value above is a JSON-marshalable builtin; a failure here
		// is a programming error worth surfacing in the bundle itself.
		return []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return out
}

// MustJSON marshals v with indentation for bundling, embedding the
// error as a JSON document instead of failing the whole capture.
func MustJSON(v any) []byte {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return out
}

// Buffer is a small helper for producers assembling bundle files from
// io.Writer-based renderers.
func Buffer(render func(io.Writer) error) []byte {
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		return []byte(fmt.Sprintf("render error: %v", err))
	}
	return buf.Bytes()
}
