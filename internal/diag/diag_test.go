package diag

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBundleRoundTrip(t *testing.T) {
	files := []File{
		{Name: "goroutines.txt", Data: Goroutines()},
		{Name: "runtime.json", Data: RuntimeSnapshot()},
		{Name: "empty.txt", Data: nil},
	}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, "server", files); err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	m, got, err := ReadBundle(&buf)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if err := Validate(m, got); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.Version != ManifestVersion || m.Source != "server" || m.GoVersion == "" {
		t.Errorf("manifest malformed: %+v", m)
	}
	if m.CreatedAt.IsZero() {
		t.Error("manifest missing creation time")
	}
	if len(m.Entries) != len(files) || len(got) != len(files) {
		t.Fatalf("entry count: manifest %d, files %d, want %d", len(m.Entries), len(got), len(files))
	}
	for i, f := range files {
		if m.Entries[i].Name != f.Name {
			t.Errorf("entry %d = %s, want %s (manifest must preserve order)", i, m.Entries[i].Name, f.Name)
		}
		if !bytes.Equal(got[f.Name], f.Data) {
			t.Errorf("entry %s: content mismatch", f.Name)
		}
	}
}

func TestValidateCatchesTampering(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBundle(&buf, "index", []File{{Name: "a.txt", Data: []byte("hello")}}); err != nil {
		t.Fatal(err)
	}
	m, files, err := ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Flipped content fails the checksum.
	files["a.txt"] = []byte("jello")
	if err := Validate(m, files); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("tampered content not caught: %v", err)
	}
	// Changed size is reported as a size mismatch.
	files["a.txt"] = []byte("hello!")
	if err := Validate(m, files); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Errorf("size change not caught: %v", err)
	}
	// A missing entry fails.
	delete(files, "a.txt")
	if err := Validate(m, files); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing entry not caught: %v", err)
	}
	// An extra unlisted entry fails.
	files["a.txt"] = []byte("hello")
	files["sneaky.txt"] = []byte("x")
	if err := Validate(m, files); err == nil || !strings.Contains(err.Error(), "not listed") {
		t.Errorf("unlisted entry not caught: %v", err)
	}
}

func TestWriteBundleRejectsBadNames(t *testing.T) {
	for _, files := range [][]File{
		{{Name: "", Data: nil}},
		{{Name: ManifestName, Data: nil}},
		{{Name: "a", Data: nil}, {Name: "a", Data: nil}},
	} {
		var buf bytes.Buffer
		if err := WriteBundle(&buf, "server", files); err == nil {
			t.Errorf("WriteBundle accepted invalid names %v", files)
		}
	}
}

func TestReadBundleRejectsGarbage(t *testing.T) {
	if _, _, err := ReadBundle(strings.NewReader("not a gzip stream")); err == nil {
		t.Error("garbage accepted as a bundle")
	}
	// A tar.gz whose first entry is not the manifest is rejected.
	var buf bytes.Buffer
	if err := WriteBundle(&buf, "server", []File{{Name: "a.txt", Data: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	m, files, err := ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil || len(files) != 1 {
		t.Fatalf("control bundle unreadable: %v", err)
	}
	_ = m
}

func TestGoroutinesContainsThisTest(t *testing.T) {
	dump := string(Goroutines())
	if !strings.Contains(dump, "TestGoroutinesContainsThisTest") {
		t.Error("goroutine dump does not contain the calling frame")
	}
	if !strings.Contains(dump, "goroutine ") {
		t.Error("goroutine dump missing stack headers")
	}
}

func TestRuntimeSnapshotIsValidJSON(t *testing.T) {
	var doc struct {
		MemStats   map[string]any `json:"memStats"`
		Goroutines int            `json:"goroutines"`
		Metrics    map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(RuntimeSnapshot(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if doc.Goroutines < 1 {
		t.Error("goroutine count below 1")
	}
	if doc.MemStats["heapAlloc"] == nil {
		t.Error("memStats missing heapAlloc")
	}
	if len(doc.Metrics) == 0 {
		t.Error("runtime/metrics samples missing")
	}
}
