package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func TestCountersAndErrors(t *testing.T) {
	r := New()
	e := r.Endpoint("reverse_topk")
	for i := 0; i < 5; i++ {
		e.Begin()
		e.Observe(2*time.Millisecond, 200)
	}
	e.Begin()
	e.Observe(time.Millisecond, 400)
	e.Begin()
	e.Observe(time.Millisecond, 504)
	e.Begin()
	e.Observe(time.Millisecond, 499)

	out := render(t, r)
	for _, want := range []string{
		`gridrank_requests_total{endpoint="reverse_topk"} 8`,
		`gridrank_request_errors_total{endpoint="reverse_topk",code="400"} 1`,
		`gridrank_request_errors_total{endpoint="reverse_topk",code="499"} 1`,
		`gridrank_request_errors_total{endpoint="reverse_topk",code="504"} 1`,
		`gridrank_requests_in_flight{endpoint="reverse_topk"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestInFlightGauge(t *testing.T) {
	r := New()
	e := r.Endpoint("rank")
	e.Begin()
	e.Begin()
	if out := render(t, r); !strings.Contains(out, `gridrank_requests_in_flight{endpoint="rank"} 2`) {
		t.Errorf("in-flight gauge wrong:\n%s", out)
	}
	e.Observe(time.Millisecond, 200)
	e.Observe(time.Millisecond, 200)
	if out := render(t, r); !strings.Contains(out, `gridrank_requests_in_flight{endpoint="rank"} 0`) {
		t.Errorf("in-flight gauge should drain to 0:\n%s", out)
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := New()
	e := r.Endpoint("q")
	e.Begin()
	e.Observe(700*time.Microsecond, 200) // -> le=0.001
	e.Begin()
	e.Observe(3*time.Millisecond, 200) // -> le=0.005
	e.Begin()
	e.Observe(time.Minute, 200) // -> +Inf only

	out := render(t, r)
	for _, want := range []string{
		`gridrank_request_duration_seconds_bucket{endpoint="q",le="0.0005"} 0`,
		`gridrank_request_duration_seconds_bucket{endpoint="q",le="0.001"} 1`,
		`gridrank_request_duration_seconds_bucket{endpoint="q",le="0.0025"} 1`,
		`gridrank_request_duration_seconds_bucket{endpoint="q",le="0.005"} 2`,
		`gridrank_request_duration_seconds_bucket{endpoint="q",le="10"} 2`,
		`gridrank_request_duration_seconds_bucket{endpoint="q",le="+Inf"} 3`,
		`gridrank_request_duration_seconds_count{endpoint="q"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBucketBoundaryIsInclusive(t *testing.T) {
	r := New()
	e := r.Endpoint("q")
	e.Begin()
	e.Observe(time.Millisecond, 200) // exactly 0.001 -> le="0.001" (le is <=)
	out := render(t, r)
	if !strings.Contains(out, `gridrank_request_duration_seconds_bucket{endpoint="q",le="0.001"} 1`) {
		t.Errorf("0.001s observation must land in the le=0.001 bucket:\n%s", out)
	}
	if !strings.Contains(out, `gridrank_request_duration_seconds_bucket{endpoint="q",le="0.0005"} 0`) {
		t.Errorf("0.001s observation must not land in le=0.0005:\n%s", out)
	}
}

func TestFilterRate(t *testing.T) {
	r := New()
	e := r.Endpoint("reverse_kranks")
	e.AddFilterCounts(90, 10)
	out := render(t, r)
	for _, want := range []string{
		`gridrank_filtered_points_total{endpoint="reverse_kranks"} 90`,
		`gridrank_refined_points_total{endpoint="reverse_kranks"} 10`,
		`gridrank_filter_rate{endpoint="reverse_kranks"} 0.9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// No work at all renders a 0 rate, not NaN.
	r2 := New()
	r2.Endpoint("idle")
	if out := render(t, r2); !strings.Contains(out, `gridrank_filter_rate{endpoint="idle"} 0`) {
		t.Errorf("idle endpoint should report rate 0:\n%s", out)
	}
}

func TestEndpointsSortedAndStable(t *testing.T) {
	r := New()
	r.Endpoint("zeta")
	r.Endpoint("alpha")
	out := render(t, r)
	if strings.Index(out, `endpoint="alpha"`) > strings.Index(out, `endpoint="zeta"`) {
		t.Errorf("endpoints must render in sorted order:\n%s", out)
	}
	// The runtime telemetry block at the tail (goroutines, heap, GC)
	// varies between scrapes by design; everything before it must be
	// byte-stable.
	appSection := func(s string) string {
		if i := strings.Index(s, "# HELP gridrank_build_info"); i >= 0 {
			return s[:i]
		}
		return s
	}
	if appSection(render(t, r)) != appSection(out) {
		t.Error("render must be deterministic")
	}
}

// TestConcurrentObserve exercises the lock-free hot path under the race
// detector and checks nothing is lost.
func TestConcurrentObserve(t *testing.T) {
	r := New()
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := r.Endpoint("hot")
			for i := 0; i < per; i++ {
				e.Begin()
				status := 200
				if i%10 == 0 {
					status = 504
				}
				e.Observe(time.Duration(i%7)*time.Millisecond, status)
				e.AddFilterCounts(3, 1)
			}
		}(g)
	}
	wg.Wait()
	out := render(t, r)
	for _, want := range []string{
		`gridrank_requests_total{endpoint="hot"} 4000`,
		`gridrank_request_errors_total{endpoint="hot",code="504"} 400`,
		`gridrank_request_duration_seconds_count{endpoint="hot"} 4000`,
		`gridrank_filtered_points_total{endpoint="hot"} 12000`,
		`gridrank_refined_points_total{endpoint="hot"} 4000`,
		`gridrank_filter_rate{endpoint="hot"} 0.75`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMutationCountersAndEpoch(t *testing.T) {
	r := New()
	// A fresh registry still renders the epoch gauge (0 = as built).
	out := render(t, r)
	if !strings.Contains(out, "gridrank_index_epoch 0") {
		t.Errorf("missing zero epoch gauge in:\n%s", out)
	}

	r.AddMutations("insert_product", 3)
	r.AddMutations("delete_preference", 1)
	r.AddMutations("insert_product", 2)
	r.SetIndexEpoch(6)

	out = render(t, r)
	for _, want := range []string{
		`gridrank_mutations_total{kind="delete_preference"} 1`,
		`gridrank_mutations_total{kind="insert_product"} 5`,
		"gridrank_index_epoch 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Kinds render sorted so scrapes diff cleanly.
	if strings.Index(out, "delete_preference") > strings.Index(out, "insert_product") {
		t.Error("mutation kinds not sorted")
	}
}

func TestConcurrentMutationCounters(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.AddMutations("insert_product", 1)
			}
		}()
	}
	wg.Wait()
	if out := render(t, r); !strings.Contains(out, `gridrank_mutations_total{kind="insert_product"} 800`) {
		t.Errorf("lost mutation counts:\n%s", out)
	}
}
