package metrics

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// This file is a strict structural validator for the text exposition
// format (version 0.0.4) the registry renders: every scrape must parse,
// families must be announced (HELP then TYPE) before their first sample
// and never reappear, label values must escape cleanly, histogram
// buckets must be cumulative with +Inf last, and counters must follow
// the _total naming convention. The point is to fail here, in-process,
// rather than in a Prometheus server's scrape-error log.

// sample is one parsed metric line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// family is one parsed metric family: its announcements and samples in
// order of appearance.
type family struct {
	help    string
	typ     string
	samples []sample
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// baseFamily strips the histogram/summary sample suffixes so samples
// attach to their announced family.
func baseFamily(name string, families map[string]*family) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f := families[base]; f != nil && (f.typ == "histogram" || f.typ == "summary") {
				return base
			}
		}
	}
	return name
}

// parseExposition parses a full scrape strictly, failing the test on the
// first structural violation.
func parseExposition(t *testing.T, text string) map[string]*family {
	t.Helper()
	families := make(map[string]*family)
	var current string // family currently being emitted
	seen := make(map[string]bool)
	var lastLine string // for error context

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d: %s\n  line: %q\n  prev: %q", lineNo, fmt.Sprintf(format, args...), line, lastLine)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" || help == "" {
				fail("malformed HELP line")
			}
			if seen[name] {
				fail("family %s announced twice", name)
			}
			families[name] = &family{help: help}
			current = name
			lastLine = line
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				fail("malformed TYPE line")
			}
			f := families[name]
			if f == nil {
				fail("TYPE for %s without preceding HELP", name)
			}
			if current != name {
				fail("TYPE for %s does not follow its HELP", name)
			}
			if f.typ != "" {
				fail("family %s typed twice", name)
			}
			if !validTypes[typ] {
				fail("invalid TYPE %q", typ)
			}
			f.typ = typ
			lastLine = line
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("unknown comment form")
		}
		s := parseSampleLine(t, line, fail)
		fam := baseFamily(s.name, families)
		f := families[fam]
		if f == nil {
			fail("sample for unannounced family %s", s.name)
		}
		if f.typ == "" {
			fail("sample for %s before its TYPE", s.name)
		}
		if fam != current {
			if seen[fam] {
				fail("family %s reappears after other families", fam)
			}
			fail("sample for %s outside its family block (current %s)", s.name, current)
		}
		seen[fam] = true
		f.samples = append(f.samples, s)
		lastLine = line
	}
	// Every announced family must carry a TYPE (empty sample sets are
	// fine: a counter family with no traffic renders zero lines).
	for name, f := range families {
		if f.typ == "" {
			t.Fatalf("family %s has HELP but no TYPE", name)
		}
	}
	return families
}

// parseSampleLine parses `name{labels} value` strictly, including label
// escape sequences.
func parseSampleLine(t *testing.T, line string, fail func(string, ...any)) sample {
	t.Helper()
	s := sample{labels: map[string]string{}}
	rest := line
	// Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
	i := 0
	for i < len(rest) {
		c := rest[i]
		if c == '{' || c == ' ' {
			break
		}
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			fail("invalid metric name character %q", c)
		}
		i++
	}
	if i == 0 {
		fail("empty metric name")
	}
	s.name, rest = rest[:i], rest[i:]
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.IndexByte(rest, '=')
			if eq <= 0 {
				fail("malformed label pair")
			}
			key := rest[:eq]
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				fail("label value for %s not quoted", key)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for len(rest) > 0 {
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					closed = true
					break
				}
				if c == '\\' {
					if len(rest) < 2 {
						fail("dangling escape in label %s", key)
					}
					switch rest[1] {
					case '\\', '"':
						val.WriteByte(rest[1])
					case 'n':
						val.WriteByte('\n')
					default:
						fail("invalid escape \\%c in label %s", rest[1], key)
					}
					rest = rest[2:]
					continue
				}
				if c == '\n' {
					fail("raw newline in label %s", key)
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if !closed {
				fail("unterminated label value for %s", key)
			}
			if _, dup := s.labels[key]; dup {
				fail("duplicate label %s", key)
			}
			s.labels[key] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			} else if !strings.HasPrefix(rest, "}") {
				fail("expected , or } after label %s", key)
			}
		}
		rest = rest[1:] // consume }
	}
	if !strings.HasPrefix(rest, " ") {
		fail("expected single space before value")
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		fail("malformed value field %q", rest)
	}
	v, err := parseValue(rest)
	if err != nil {
		fail("unparseable value %q: %v", rest, err)
	}
	s.value = v
	return s
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(v, 64)
}

// scrapeWithTraffic drives a registry through every metric surface —
// including an endpoint name that needs label escaping — and returns the
// rendered scrape.
func scrapeWithTraffic(t *testing.T) string {
	t.Helper()
	r := New()
	for _, name := range []string{
		"reverse_topk",
		"reverse_kranks",
		`path"with\quotes` + "\nand newline", // must escape, not corrupt the scrape
	} {
		e := r.Endpoint(name)
		e.Begin()
		e.Observe(3*time.Millisecond, 200)
		e.Begin()
		e.Observe(7*time.Second, 429) // lands in the +Inf bucket
		e.AddFilterCounts(990, 10)
	}
	r.AddMutations("insert_product", 3)
	r.SetIndexEpoch(5)
	r.SetTraceSource(func() TraceCounts {
		return TraceCounts{Started: 10, Kept: 4, Dropped: 6, Slow: 1, Evicted: 2}
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestExpositionFormatStrict(t *testing.T) {
	text := scrapeWithTraffic(t)
	families := parseExposition(t, text)

	for name, f := range families {
		// Counter families must follow the _total convention (histogram
		// component samples are exempt by construction: their family name
		// is the base).
		if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter family %s does not end in _total", name)
		}
	}

	// The escaped endpoint label must round-trip through the parser.
	rawName := `path"with\quotes` + "\nand newline"
	found := false
	for _, s := range families["gridrank_requests_total"].samples {
		if s.labels["endpoint"] == rawName {
			found = true
			if s.value != 2 {
				t.Errorf("escaped endpoint count = %g, want 2", s.value)
			}
		}
	}
	if !found {
		t.Errorf("escaped endpoint label did not round-trip; samples: %+v",
			families["gridrank_requests_total"].samples)
	}

	// Histogram invariants: per endpoint, le strictly increasing,
	// cumulative counts non-decreasing, +Inf last, _count == +Inf bucket.
	hist := families["gridrank_request_duration_seconds"]
	if hist == nil || hist.typ != "histogram" {
		t.Fatal("latency histogram family missing or mistyped")
	}
	type histState struct {
		lastLe    float64
		lastCum   float64
		infSeen   bool
		infBucket float64
		count     float64
		hasCount  bool
	}
	byEndpoint := map[string]*histState{}
	for _, s := range hist.samples {
		ep := s.labels["endpoint"]
		st := byEndpoint[ep]
		if st == nil {
			st = &histState{lastLe: -1}
			byEndpoint[ep] = st
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			if st.infSeen {
				t.Errorf("endpoint %q: bucket after +Inf", ep)
			}
			le, err := parseValue(s.labels["le"])
			if err != nil {
				t.Fatalf("endpoint %q: bad le %q", ep, s.labels["le"])
			}
			if le <= st.lastLe {
				t.Errorf("endpoint %q: le %g not strictly increasing after %g", ep, le, st.lastLe)
			}
			if s.value < st.lastCum {
				t.Errorf("endpoint %q: bucket counts not cumulative: %g after %g", ep, s.value, st.lastCum)
			}
			st.lastLe, st.lastCum = le, s.value
			if s.labels["le"] == "+Inf" {
				st.infSeen, st.infBucket = true, s.value
			}
		case strings.HasSuffix(s.name, "_count"):
			st.count, st.hasCount = s.value, true
		}
	}
	for ep, st := range byEndpoint {
		if !st.infSeen {
			t.Errorf("endpoint %q: no +Inf bucket", ep)
		}
		if !st.hasCount {
			t.Errorf("endpoint %q: no _count sample", ep)
		}
		if st.hasCount && st.infSeen && st.count != st.infBucket {
			t.Errorf("endpoint %q: _count %g != +Inf bucket %g", ep, st.count, st.infBucket)
		}
		if st.count != 2 {
			t.Errorf("endpoint %q: _count %g, want 2", ep, st.count)
		}
	}

	// Trace and runtime families must be present with sane values.
	for name, want := range map[string]float64{
		"gridrank_traces_started_total": 10,
		"gridrank_traces_kept_total":    4,
		"gridrank_traces_dropped_total": 6,
		"gridrank_traces_evicted_total": 2,
		"gridrank_slow_queries_total":   1,
	} {
		f := families[name]
		if f == nil || len(f.samples) != 1 {
			t.Errorf("family %s missing or wrong sample count", name)
			continue
		}
		if f.samples[0].value != want {
			t.Errorf("%s = %g, want %g", name, f.samples[0].value, want)
		}
	}
	for _, name := range []string{
		"gridrank_build_info", "gridrank_go_goroutines", "gridrank_go_gomaxprocs",
		"gridrank_go_heap_alloc_bytes", "gridrank_go_heap_inuse_bytes",
		"gridrank_go_gc_pause_seconds_total",
	} {
		f := families[name]
		if f == nil || len(f.samples) != 1 {
			t.Errorf("runtime family %s missing", name)
			continue
		}
		if f.samples[0].value < 0 {
			t.Errorf("%s negative: %g", name, f.samples[0].value)
		}
	}
	bi := families["gridrank_build_info"].samples[0]
	if bi.value != 1 || bi.labels["go_version"] == "" || bi.labels["module_version"] == "" {
		t.Errorf("build_info malformed: %+v", bi)
	}
	if families["gridrank_go_goroutines"].samples[0].value < 1 {
		t.Error("goroutine count below 1")
	}
}

// TestExpositionWithoutTraceSource checks the trace families vanish
// cleanly when no tracer is registered, and the scrape still parses.
func TestExpositionWithoutTraceSource(t *testing.T) {
	r := New()
	r.Endpoint("reverse_topk").Begin()
	r.Endpoint("reverse_topk").Observe(time.Millisecond, 200)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	families := parseExposition(t, sb.String())
	if families["gridrank_traces_started_total"] != nil {
		t.Error("trace family rendered without a source")
	}
	if families["gridrank_go_goroutines"] == nil {
		t.Error("runtime telemetry missing")
	}
}
