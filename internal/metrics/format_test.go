package metrics

import (
	"strings"
	"testing"
	"time"

	"gridrank/internal/metrics/metricstest"
)

// This file drives the registry through every metric surface and
// validates both text exposition flavors with the strict parser in
// internal/metrics/metricstest: classic Prometheus 0.0.4 and
// OpenMetrics 1.0 (where the scrape must end with `# EOF`, counter
// families are announced by base name, and exemplars must sit on the
// bucket their observation landed in). The point is to fail here,
// in-process, rather than in a Prometheus server's scrape-error log.

// trafficRegistry drives a registry through every metric surface —
// including an endpoint name that needs label escaping and exemplar
// capture — and returns it ready to render in either format.
func trafficRegistry(t *testing.T) *Registry {
	t.Helper()
	r := New()
	for _, name := range []string{
		"reverse_topk",
		"reverse_kranks",
		`path"with\quotes` + "\nand newline", // must escape, not corrupt the scrape
	} {
		e := r.Endpoint(name)
		e.Begin()
		e.ObserveExemplar(3*time.Millisecond, 200, "4bf92f3577b34da6a3ce929d0e0e4736")
		e.Begin()
		e.Observe(7*time.Second, 429) // lands in the +Inf bucket, no exemplar
		e.AddFilterCounts(990, 10)
	}
	r.AddMutations("insert_product", 3)
	r.ObserveMutation("insert_product", 2*time.Millisecond)
	r.ObserveMutation("insert_product", 40*time.Millisecond)
	r.ObserveMutation("delete_preference", 300*time.Microsecond)
	r.SetEpochInstallLag(150 * time.Microsecond)
	r.SetIndexEpoch(5)
	r.SetTraceSource(func() TraceCounts {
		return TraceCounts{Started: 10, Kept: 4, Dropped: 6, Slow: 1, Evicted: 2, Resident: 2}
	})
	r.SetOTLPSource(func() OTLPCounts {
		return OTLPCounts{Enqueued: 9, Exported: 7, Dropped: 1, SendFailures: 2, Retries: 2, Queue: 1}
	})
	r.SetFlightSource(func() FlightCounts {
		return FlightCounts{Recorded: 20, Queries: 15, Mutations: 4, Subscriptions: 1, Capacity: 4096}
	})
	return r
}

func scrapeWithTraffic(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	if err := trafficRegistry(t).WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestExpositionFormatStrict(t *testing.T) {
	text := scrapeWithTraffic(t)
	families := metricstest.ParseExposition(t, text)

	for name, f := range families {
		// Counter families must follow the _total convention (histogram
		// component samples are exempt by construction: their family name
		// is the base).
		if f.Type == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter family %s does not end in _total", name)
		}
	}

	// The escaped endpoint label must round-trip through the parser.
	rawName := `path"with\quotes` + "\nand newline"
	found := false
	for _, s := range families["gridrank_requests_total"].Samples {
		if s.Labels["endpoint"] == rawName {
			found = true
			if s.Value != 2 {
				t.Errorf("escaped endpoint count = %g, want 2", s.Value)
			}
		}
	}
	if !found {
		t.Errorf("escaped endpoint label did not round-trip; samples: %+v",
			families["gridrank_requests_total"].Samples)
	}

	// Histogram invariants: per endpoint, le strictly increasing,
	// cumulative counts non-decreasing, +Inf last, _count == +Inf bucket.
	hist := families["gridrank_request_duration_seconds"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatal("latency histogram family missing or mistyped")
	}
	type histState struct {
		lastLe    float64
		lastCum   float64
		infSeen   bool
		infBucket float64
		count     float64
		hasCount  bool
	}
	byEndpoint := map[string]*histState{}
	for _, s := range hist.Samples {
		ep := s.Labels["endpoint"]
		st := byEndpoint[ep]
		if st == nil {
			st = &histState{lastLe: -1}
			byEndpoint[ep] = st
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if st.infSeen {
				t.Errorf("endpoint %q: bucket after +Inf", ep)
			}
			le, err := metricstest.ParseValue(s.Labels["le"])
			if err != nil {
				t.Fatalf("endpoint %q: bad le %q", ep, s.Labels["le"])
			}
			if le <= st.lastLe {
				t.Errorf("endpoint %q: le %g not strictly increasing after %g", ep, le, st.lastLe)
			}
			if s.Value < st.lastCum {
				t.Errorf("endpoint %q: bucket counts not cumulative: %g after %g", ep, s.Value, st.lastCum)
			}
			st.lastLe, st.lastCum = le, s.Value
			if s.Labels["le"] == "+Inf" {
				st.infSeen, st.infBucket = true, s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			st.count, st.hasCount = s.Value, true
		}
	}
	for ep, st := range byEndpoint {
		if !st.infSeen {
			t.Errorf("endpoint %q: no +Inf bucket", ep)
		}
		if !st.hasCount {
			t.Errorf("endpoint %q: no _count sample", ep)
		}
		if st.hasCount && st.infSeen && st.count != st.infBucket {
			t.Errorf("endpoint %q: _count %g != +Inf bucket %g", ep, st.count, st.infBucket)
		}
		if st.count != 2 {
			t.Errorf("endpoint %q: _count %g, want 2", ep, st.count)
		}
	}

	// Trace and runtime families must be present with sane values.
	for name, want := range map[string]float64{
		"gridrank_traces_started_total": 10,
		"gridrank_traces_kept_total":    4,
		"gridrank_traces_dropped_total": 6,
		"gridrank_traces_evicted_total": 2,
		"gridrank_slow_queries_total":   1,
	} {
		f := families[name]
		if f == nil || len(f.Samples) != 1 {
			t.Errorf("family %s missing or wrong sample count", name)
			continue
		}
		if f.Samples[0].Value != want {
			t.Errorf("%s = %g, want %g", name, f.Samples[0].Value, want)
		}
	}
	for _, name := range []string{
		"gridrank_build_info", "gridrank_go_goroutines", "gridrank_go_gomaxprocs",
		"gridrank_go_heap_alloc_bytes", "gridrank_go_heap_inuse_bytes",
		"gridrank_go_gc_pause_seconds_total",
	} {
		f := families[name]
		if f == nil || len(f.Samples) != 1 {
			t.Errorf("runtime family %s missing", name)
			continue
		}
		if f.Samples[0].Value < 0 {
			t.Errorf("%s negative: %g", name, f.Samples[0].Value)
		}
	}
	bi := families["gridrank_build_info"].Samples[0]
	if bi.Value != 1 || bi.Labels["go_version"] == "" || bi.Labels["module_version"] == "" {
		t.Errorf("build_info malformed: %+v", bi)
	}
	if families["gridrank_go_goroutines"].Samples[0].Value < 1 {
		t.Error("goroutine count below 1")
	}
}

// TestOpenMetricsFormatStrict parses the OpenMetrics flavor of the same
// traffic strictly: # EOF must terminate the scrape, counter families
// must be announced by base name with _total kept on the samples, and
// the captured exemplar must round-trip on exactly the bucket its
// observation landed in.
func TestOpenMetricsFormatStrict(t *testing.T) {
	r := trafficRegistry(t)
	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	families := metricstest.ParseOpenMetrics(t, text)

	// Counter families are announced without _total; their samples keep
	// the suffix.
	if families["gridrank_requests_total"] != nil {
		t.Error("counter family announced with _total suffix in OpenMetrics mode")
	}
	reqs := families["gridrank_requests"]
	if reqs == nil || reqs.Type != "counter" {
		t.Fatal("gridrank_requests counter family missing or mistyped")
	}
	for _, s := range reqs.Samples {
		if s.Name != "gridrank_requests_total" {
			t.Errorf("counter sample name %s, want gridrank_requests_total", s.Name)
		}
	}
	fr := families["gridrank_flight_records"]
	if fr == nil || len(fr.Samples) != 1 || fr.Samples[0].Value != 20 {
		t.Errorf("flight records family malformed: %+v", fr)
	}

	// The exemplar must sit on the bucket the 3ms observation landed in
	// (le=0.005) and nowhere else, with its value inside the bucket's
	// range and a positive timestamp.
	hist := families["gridrank_request_duration_seconds"]
	if hist == nil {
		t.Fatal("latency histogram family missing")
	}
	exemplars := 0
	for _, s := range hist.Samples {
		if s.Labels["endpoint"] != "reverse_topk" || !strings.HasSuffix(s.Name, "_bucket") {
			if s.Exemplar != nil && !strings.HasSuffix(s.Name, "_bucket") {
				t.Errorf("exemplar on non-bucket sample %s", s.Name)
			}
			continue
		}
		if s.Exemplar == nil {
			continue
		}
		exemplars++
		ex := s.Exemplar
		if s.Labels["le"] != "0.005" {
			t.Errorf("exemplar on le=%q, want le=\"0.005\"", s.Labels["le"])
		}
		if ex.Labels["trace_id"] != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("exemplar trace_id = %q", ex.Labels["trace_id"])
		}
		if ex.Value != 0.003 {
			t.Errorf("exemplar value = %g, want 0.003", ex.Value)
		}
		le, _ := metricstest.ParseValue(s.Labels["le"])
		if ex.Value > le || ex.Value <= 0.0025 {
			t.Errorf("exemplar value %g outside bucket range (0.0025, %g]", ex.Value, le)
		}
		if !ex.HasTs || ex.Ts <= 0 {
			t.Errorf("exemplar timestamp missing or non-positive: %+v", ex)
		}
	}
	if exemplars != 1 {
		t.Errorf("reverse_topk exemplar count = %d, want 1", exemplars)
	}

	// Mutation latency histograms and the new gauges must render.
	mh := families["gridrank_mutation_duration_seconds"]
	if mh == nil || mh.Type != "histogram" {
		t.Fatal("mutation duration histogram family missing")
	}
	counts := map[string]float64{}
	for _, s := range mh.Samples {
		if strings.HasSuffix(s.Name, "_count") {
			counts[s.Labels["kind"]] = s.Value
		}
	}
	if counts["insert_product"] != 2 || counts["delete_preference"] != 1 {
		t.Errorf("mutation duration counts = %v", counts)
	}
	for name, want := range map[string]float64{
		"gridrank_epoch_install_to_publish_seconds": 0.00015,
		"gridrank_traces_resident":                  2,
		"gridrank_otlp_queue_depth":                 1,
		"gridrank_flight_capacity":                  4096,
	} {
		f := families[name]
		if f == nil || len(f.Samples) != 1 {
			t.Errorf("gauge family %s missing", name)
			continue
		}
		if f.Samples[0].Value != want {
			t.Errorf("%s = %g, want %g", name, f.Samples[0].Value, want)
		}
	}

	if !strings.HasSuffix(strings.TrimRight(text, "\n"), "# EOF") {
		t.Error("scrape does not end with # EOF")
	}
}

// TestClassicScrapeHasNoExemplars pins the classic format down: the
// strict parser fails on exemplar syntax in classic mode, so a clean
// parse of the same exemplar-bearing registry proves none leaked.
func TestClassicScrapeHasNoExemplars(t *testing.T) {
	text := scrapeWithTraffic(t)
	if strings.Contains(text, " # {") {
		t.Fatal("classic scrape contains exemplar syntax")
	}
	if strings.Contains(text, "# EOF") {
		t.Fatal("classic scrape contains # EOF")
	}
}

// TestExpositionWithoutTraceSource checks the trace families vanish
// cleanly when no tracer is registered, and the scrape still parses.
func TestExpositionWithoutTraceSource(t *testing.T) {
	r := New()
	r.Endpoint("reverse_topk").Begin()
	r.Endpoint("reverse_topk").Observe(time.Millisecond, 200)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	families := metricstest.ParseExposition(t, sb.String())
	if families["gridrank_traces_started_total"] != nil {
		t.Error("trace family rendered without a source")
	}
	if families["gridrank_go_goroutines"] == nil {
		t.Error("runtime telemetry missing")
	}
}
