// Package metricstest is a strict structural validator for the two
// text exposition flavors the metrics registry renders — classic
// Prometheus 0.0.4 and OpenMetrics 1.0. It exists so tests (both the
// registry's own and the server's live-scrape tests) fail in-process on
// a malformed scrape rather than in a Prometheus server's scrape-error
// log.
//
// The rules enforced: every scrape must parse, families must be
// announced (HELP then TYPE) before their first sample and never
// reappear, label values must escape cleanly, and counters must follow
// the _total naming convention (on the family name in classic mode, on
// the samples only in OpenMetrics mode). In OpenMetrics mode the scrape
// must end with `# EOF` and bucket lines may carry exemplars, which
// must themselves parse; exemplars anywhere else are a parse failure.
package metricstest

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// ExemplarLine is one parsed OpenMetrics exemplar suffix.
type ExemplarLine struct {
	Labels map[string]string
	Value  float64
	HasTs  bool
	Ts     float64
}

// Sample is one parsed metric line.
type Sample struct {
	Name     string
	Labels   map[string]string
	Value    float64
	Exemplar *ExemplarLine
}

// Family is one parsed metric family: its announcements and samples in
// order of appearance.
type Family struct {
	Help    string
	Type    string
	Samples []Sample
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// baseFamily strips the histogram/summary sample suffixes — and, in
// OpenMetrics mode, the counter _total suffix — so samples attach to
// their announced family.
func baseFamily(name string, families map[string]*Family, om bool) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f := families[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	if om {
		if base, ok := strings.CutSuffix(name, "_total"); ok {
			if f := families[base]; f != nil && f.Type == "counter" {
				return base
			}
		}
	}
	return name
}

// ParseExposition parses a classic-format scrape strictly, failing the
// test on the first structural violation.
func ParseExposition(t testing.TB, text string) map[string]*Family {
	t.Helper()
	return parseExpositionMode(t, text, false)
}

// ParseOpenMetrics parses an OpenMetrics scrape strictly, additionally
// requiring the terminating # EOF and validating exemplar syntax.
func ParseOpenMetrics(t testing.TB, text string) map[string]*Family {
	t.Helper()
	return parseExpositionMode(t, text, true)
}

func parseExpositionMode(t testing.TB, text string, om bool) map[string]*Family {
	t.Helper()
	families := make(map[string]*Family)
	var current string // family currently being emitted
	seen := make(map[string]bool)
	var lastLine string // for error context
	eofSeen := false

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d: %s\n  line: %q\n  prev: %q", lineNo, fmt.Sprintf(format, args...), line, lastLine)
		}
		if line == "" {
			continue
		}
		if eofSeen {
			fail("content after # EOF")
		}
		if line == "# EOF" {
			if !om {
				fail("# EOF in classic exposition")
			}
			eofSeen = true
			lastLine = line
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" || help == "" {
				fail("malformed HELP line")
			}
			if seen[name] {
				fail("family %s announced twice", name)
			}
			families[name] = &Family{Help: help}
			current = name
			lastLine = line
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				fail("malformed TYPE line")
			}
			f := families[name]
			if f == nil {
				fail("TYPE for %s without preceding HELP", name)
			}
			if current != name {
				fail("TYPE for %s does not follow its HELP", name)
			}
			if f.Type != "" {
				fail("family %s typed twice", name)
			}
			if !validTypes[typ] {
				fail("invalid TYPE %q", typ)
			}
			f.Type = typ
			lastLine = line
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("unknown comment form")
		}
		s := parseSampleLine(t, line, om, fail)
		fam := baseFamily(s.Name, families, om)
		f := families[fam]
		if f == nil {
			fail("sample for unannounced family %s", s.Name)
		}
		if f.Type == "" {
			fail("sample for %s before its TYPE", s.Name)
		}
		if fam != current {
			if seen[fam] {
				fail("family %s reappears after other families", fam)
			}
			fail("sample for %s outside its family block (current %s)", s.Name, current)
		}
		seen[fam] = true
		f.Samples = append(f.Samples, s)
		lastLine = line
	}
	// Every announced family must carry a TYPE (empty sample sets are
	// fine: a counter family with no traffic renders zero lines).
	for name, f := range families {
		if f.Type == "" {
			t.Fatalf("family %s has HELP but no TYPE", name)
		}
	}
	if om && !eofSeen {
		t.Fatal("OpenMetrics scrape does not end with # EOF")
	}
	return families
}

// parseLabelBlock parses a `{key="value",...}` block starting at the
// opening brace, returning the label map and the remaining input after
// the closing brace. Escape sequences are validated strictly.
func parseLabelBlock(rest string, fail func(string, ...any)) (map[string]string, string) {
	labels := map[string]string{}
	if !strings.HasPrefix(rest, "{") {
		fail("expected { to open label block")
	}
	rest = rest[1:]
	for !strings.HasPrefix(rest, "}") {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			fail("malformed label pair")
		}
		key := rest[:eq]
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			fail("label value for %s not quoted", key)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for len(rest) > 0 {
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				closed = true
				break
			}
			if c == '\\' {
				if len(rest) < 2 {
					fail("dangling escape in label %s", key)
				}
				switch rest[1] {
				case '\\', '"':
					val.WriteByte(rest[1])
				case 'n':
					val.WriteByte('\n')
				default:
					fail("invalid escape \\%c in label %s", rest[1], key)
				}
				rest = rest[2:]
				continue
			}
			if c == '\n' {
				fail("raw newline in label %s", key)
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		if !closed {
			fail("unterminated label value for %s", key)
		}
		if _, dup := labels[key]; dup {
			fail("duplicate label %s", key)
		}
		labels[key] = val.String()
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		} else if !strings.HasPrefix(rest, "}") {
			fail("expected , or } after label %s", key)
		}
	}
	return labels, rest[1:] // consume }
}

// parseSampleLine parses `name{labels} value` strictly, including label
// escape sequences and — in OpenMetrics mode — an optional
// `# {labels} value [timestamp]` exemplar suffix.
func parseSampleLine(t testing.TB, line string, om bool, fail func(string, ...any)) Sample {
	t.Helper()
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
	i := 0
	for i < len(rest) {
		c := rest[i]
		if c == '{' || c == ' ' {
			break
		}
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			fail("invalid metric name character %q", c)
		}
		i++
	}
	if i == 0 {
		fail("empty metric name")
	}
	s.Name, rest = rest[:i], rest[i:]
	if strings.HasPrefix(rest, "{") {
		s.Labels, rest = parseLabelBlock(rest, fail)
	}
	if !strings.HasPrefix(rest, " ") {
		fail("expected single space before value")
	}
	rest = strings.TrimPrefix(rest, " ")
	valField := rest
	var exField string
	if idx := strings.Index(rest, " # "); idx >= 0 {
		valField, exField = rest[:idx], rest[idx+3:]
		if !om {
			fail("exemplar in classic exposition")
		}
		if !strings.HasSuffix(s.Name, "_bucket") {
			fail("exemplar on non-bucket sample %s", s.Name)
		}
	}
	if valField == "" || strings.ContainsAny(valField, " \t") {
		fail("malformed value field %q", valField)
	}
	v, err := ParseValue(valField)
	if err != nil {
		fail("unparseable value %q: %v", valField, err)
	}
	s.Value = v
	if exField != "" {
		s.Exemplar = parseExemplar(exField, fail)
	}
	return s
}

// parseExemplar parses the `{labels} value [timestamp]` exemplar body.
func parseExemplar(body string, fail func(string, ...any)) *ExemplarLine {
	ex := &ExemplarLine{}
	var rest string
	ex.Labels, rest = parseLabelBlock(body, fail)
	if !strings.HasPrefix(rest, " ") {
		fail("expected space after exemplar labels")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		fail("exemplar needs a value and optional timestamp, got %q", rest)
	}
	v, err := ParseValue(fields[0])
	if err != nil {
		fail("unparseable exemplar value %q: %v", fields[0], err)
	}
	ex.Value = v
	if len(fields) == 2 {
		ts, err := ParseValue(fields[1])
		if err != nil {
			fail("unparseable exemplar timestamp %q: %v", fields[1], err)
		}
		ex.HasTs, ex.Ts = true, ts
	}
	return ex
}

// ParseValue parses one exposition value, accepting the +Inf/-Inf
// spellings the formats use.
func ParseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(v, 64)
}
