// Package metrics is the server's observability layer: a dependency-free
// registry of per-endpoint request counters, error counters by status
// code, latency histograms with OpenMetrics exemplars, mutation latency
// histograms, Grid-index filter-rate gauges, tracing/export/flight
// counters and Go runtime telemetry, rendered for GET /metrics in
// either the classic Prometheus text exposition format (version 0.0.4)
// or OpenMetrics 1.0 (negotiated by Accept header in the server).
//
// The OpenMetrics rendering differs from the classic one in three ways:
// counter families are announced by their base name (the _total suffix
// stays on the samples, per the OpenMetrics spec), histogram bucket
// lines may carry a `# {trace_id="..."} value timestamp` exemplar
// linking the bucket to a recent trace, and the scrape ends with the
// mandatory `# EOF` marker.
//
// Runtime telemetry (goroutines, heap, GC pause total, GOMAXPROCS,
// build info) is gathered at scrape time — one runtime.ReadMemStats per
// scrape, no background sampler goroutine.
//
// The hot path is lock-free: requests, latencies and filter counts go
// through atomics; the only mutexes guard endpoint creation (once per
// endpoint name) and the rare error-code map insert. Scrapes take no
// locks on the hot path either — they read the same atomics, so a
// scrape concurrent with traffic sees a consistent-enough snapshot (the
// usual Prometheus counter semantics).
package metrics

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond cache hits to the multi-second scans of a |W| in the
// millions. The terminal +Inf bucket is implicit.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry aggregates per-endpoint metrics and renders them for
// scraping. The zero value is not usable; call New.
type Registry struct {
	mu        sync.RWMutex
	endpoints map[string]*Endpoint

	// mutations counts successful index mutations by kind
	// (insert_product, delete_product, insert_preference,
	// delete_preference); mutLat holds the matching per-kind latency
	// histograms; epoch mirrors the index's mutation epoch.
	mutMu     sync.Mutex
	mutations map[string]*atomic.Int64
	mutLat    map[string]*histogram
	epoch     atomic.Uint64

	// installLagBits is the float64 bits of the epoch-install-to-publish
	// gauge: seconds between the newest epoch's install in the index and
	// its publication to this registry — the window where queries already
	// run against the new epoch but scrapes still report the old one.
	installLagBits atomic.Uint64

	// traceSource, when set, is polled at scrape time for the tracing
	// subsystem's counters (started/kept/dropped/evicted traces and slow
	// queries).
	traceMu     sync.Mutex
	traceSource func() TraceCounts

	// cacheSource, when set, is polled at scrape time for the answer
	// cache's counters and occupancy.
	cacheMu     sync.Mutex
	cacheSource func() CacheCounts

	// subSource, when set, is polled at scrape time for the continuous
	// subscription registry's counters.
	subMu     sync.Mutex
	subSource func() SubCounts

	// otlpSource, when set, is polled at scrape time for the OTLP span
	// exporter's counters (enqueued/exported/dropped/retries and queue
	// depth).
	otlpMu     sync.Mutex
	otlpSource func() OTLPCounts

	// flightSource, when set, is polled at scrape time for the flight
	// recorder's digest counters.
	flightMu     sync.Mutex
	flightSource func() FlightCounts

	// layout, when set, labels gridrank_build_info with the index's
	// physical scan layout (packed row width, kernel row block).
	layoutMu sync.Mutex
	layout   *Layout
}

// Layout describes the index's physical scan representation for the
// gridrank_build_info labels. The field meanings match the root
// package's Layout; the duplicate type keeps the import graph acyclic,
// as with TraceCounts.
type Layout struct {
	Packed     bool // rows stored bit-packed rather than as float64 cells
	BitsPerDim int  // bits per dimension when packed, 0 otherwise
	RowBlock   int  // rows classified per kernel call (1 when unpacked)
}

// SetLayout records the index's scan layout, surfaced as labels on
// gridrank_build_info. Layout is fixed at build time, so this is set
// once at server start.
func (r *Registry) SetLayout(l Layout) {
	r.layoutMu.Lock()
	r.layout = &l
	r.layoutMu.Unlock()
}

func (r *Registry) layoutLabels() *Layout {
	r.layoutMu.Lock()
	defer r.layoutMu.Unlock()
	return r.layout
}

// TraceCounts is the tracing subsystem's counter snapshot, polled at
// scrape time through SetTraceSource. The field meanings match
// trace.Counts; the duplicate type keeps the import graph acyclic
// (internal/trace must not depend on metrics and vice versa).
type TraceCounts struct {
	Started  int64 // traces begun (sampled or recorded for the slow filter)
	Kept     int64 // traces published to the debug ring
	Dropped  int64 // recorded traces discarded as fast and unsampled
	Slow     int64 // queries over the slow-query threshold
	Evicted  int64 // published traces overwritten by newer ones
	Resident int64 // kept traces currently resident in the ring (gauge)
}

// SetTraceSource registers the tracing counter snapshot function,
// typically trace.(*Tracer).Counts. A nil source removes the trace
// metric families from the scrape.
func (r *Registry) SetTraceSource(f func() TraceCounts) {
	r.traceMu.Lock()
	r.traceSource = f
	r.traceMu.Unlock()
}

func (r *Registry) traceCounts() (TraceCounts, bool) {
	r.traceMu.Lock()
	f := r.traceSource
	r.traceMu.Unlock()
	if f == nil {
		return TraceCounts{}, false
	}
	return f(), true
}

// CacheCounts is the answer cache's counter snapshot, polled at scrape
// time through SetCacheSource. The field meanings match the root
// package's CacheStats; the duplicate type keeps the import graph
// acyclic, as with TraceCounts.
type CacheCounts struct {
	Hits           int64 // lookups answered from a resident entry
	Misses         int64 // lookups that fell through to the scan
	Stores         int64 // answers accepted into the cache
	RejectedStores int64 // stores refused as older than the head epoch
	Invalidations  int64 // entries removed or rewritten by mutation sweeps
	Flushes        int64 // whole-cache clears (batch mutations, rebuilds)
	Evictions      int64 // entries dropped by the LRU capacity bound
	Expirations    int64 // entries dropped as older than the TTL
	Entries        int64 // current resident entries (gauge)
}

// SetCacheSource registers the answer-cache counter snapshot function.
// A nil source removes the cache metric families from the scrape.
func (r *Registry) SetCacheSource(f func() CacheCounts) {
	r.cacheMu.Lock()
	r.cacheSource = f
	r.cacheMu.Unlock()
}

func (r *Registry) cacheCounts() (CacheCounts, bool) {
	r.cacheMu.Lock()
	f := r.cacheSource
	r.cacheMu.Unlock()
	if f == nil {
		return CacheCounts{}, false
	}
	return f(), true
}

// SubCounts is the continuous subscription registry's counter snapshot,
// polled at scrape time through SetSubSource. The field meanings match
// the root package's SubStats; the duplicate type keeps the import graph
// acyclic, as with TraceCounts.
type SubCounts struct {
	Monitors     int64 // currently registered subscriptions (gauge)
	Subscribed   int64 // subscriptions ever registered
	Unsubscribed int64 // subscriptions closed by their owners
	Events       int64 // enter/leave events delivered
	Lagged       int64 // subscriptions cancelled for a full buffer

	DiffPasses int64 // single-mutation epochs diffed incrementally
	FullPasses int64 // rebuild epochs recomputed per monitor
	GatedSkips int64 // monitor×epoch pairs skipped by the dominance gate

	PrefsDiffEvaluated int64 // preference vectors examined by diff passes
	PrefsDiffFullCost  int64 // what full recomputes would have examined there
}

// SetSubSource registers the subscription counter snapshot function. A
// nil source removes the subscription metric families from the scrape.
func (r *Registry) SetSubSource(f func() SubCounts) {
	r.subMu.Lock()
	r.subSource = f
	r.subMu.Unlock()
}

func (r *Registry) subCounts() (SubCounts, bool) {
	r.subMu.Lock()
	f := r.subSource
	r.subMu.Unlock()
	if f == nil {
		return SubCounts{}, false
	}
	return f(), true
}

// OTLPCounts is the OTLP span exporter's counter snapshot, polled at
// scrape time through SetOTLPSource. The field meanings match
// trace.ExporterCounts; the duplicate type keeps the import graph
// acyclic, as with TraceCounts.
type OTLPCounts struct {
	Enqueued     int64 // spans handed to the exporter
	Exported     int64 // spans delivered to the collector
	Dropped      int64 // spans discarded for a full queue or after close
	SendFailures int64 // batch posts that failed (before retries succeeded)
	Retries      int64 // batch posts retried after a failure
	Queue        int64 // spans waiting in the bounded queue (gauge)
}

// SetOTLPSource registers the OTLP exporter counter snapshot function.
// A nil source removes the exporter metric families from the scrape.
func (r *Registry) SetOTLPSource(f func() OTLPCounts) {
	r.otlpMu.Lock()
	r.otlpSource = f
	r.otlpMu.Unlock()
}

func (r *Registry) otlpCounts() (OTLPCounts, bool) {
	r.otlpMu.Lock()
	f := r.otlpSource
	r.otlpMu.Unlock()
	if f == nil {
		return OTLPCounts{}, false
	}
	return f(), true
}

// FlightCounts is the flight recorder's counter snapshot, polled at
// scrape time through SetFlightSource. The field meanings match
// flight.Counts; the duplicate type keeps the import graph acyclic, as
// with TraceCounts.
type FlightCounts struct {
	Recorded      int64 // digests ever recorded
	Queries       int64 // of which query digests
	Mutations     int64 // of which mutation/epoch-install digests
	Subscriptions int64 // of which subscription lifecycle digests
	Capacity      int64 // ring capacity in slots (gauge)
}

// SetFlightSource registers the flight recorder counter snapshot
// function. A nil source removes the flight metric families from the
// scrape.
func (r *Registry) SetFlightSource(f func() FlightCounts) {
	r.flightMu.Lock()
	r.flightSource = f
	r.flightMu.Unlock()
}

func (r *Registry) flightCounts() (FlightCounts, bool) {
	r.flightMu.Lock()
	f := r.flightSource
	r.flightMu.Unlock()
	if f == nil {
		return FlightCounts{}, false
	}
	return f(), true
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		endpoints: make(map[string]*Endpoint),
		mutations: make(map[string]*atomic.Int64),
		mutLat:    make(map[string]*histogram),
	}
}

// AddMutations records n successful index mutations of the given kind
// (rendered as gridrank_mutations_total{kind=...}).
func (r *Registry) AddMutations(kind string, n int64) {
	r.mutMu.Lock()
	c := r.mutations[kind]
	if c == nil {
		c = new(atomic.Int64)
		r.mutations[kind] = c
	}
	r.mutMu.Unlock()
	c.Add(n)
}

// ObserveMutation records the wall time of one successful index
// mutation of the given kind, rendered as the
// gridrank_mutation_duration_seconds{kind=...} histogram. Batch
// mutations observe once per call, matching the index's one-epoch-per-
// batch semantics, so derive-vs-rebuild latency regressions show up
// per kind rather than being averaged away.
func (r *Registry) ObserveMutation(kind string, d time.Duration) {
	r.mutMu.Lock()
	h := r.mutLat[kind]
	if h == nil {
		h = newHistogram()
		r.mutLat[kind] = h
	}
	r.mutMu.Unlock()
	h.observe(d.Seconds())
}

// SetEpochInstallLag publishes the delay between the newest epoch's
// install in the index and its publication to this registry (rendered
// as the gridrank_epoch_install_to_publish_seconds gauge).
func (r *Registry) SetEpochInstallLag(d time.Duration) {
	r.installLagBits.Store(math.Float64bits(d.Seconds()))
}

func (r *Registry) installLag() float64 {
	return math.Float64frombits(r.installLagBits.Load())
}

// SetIndexEpoch publishes the index's current mutation epoch (rendered
// as the gridrank_index_epoch gauge).
func (r *Registry) SetIndexEpoch(epoch uint64) { r.epoch.Store(epoch) }

// snapshotMutations copies the mutation-counter map for rendering.
func (r *Registry) snapshotMutations() map[string]int64 {
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	out := make(map[string]int64, len(r.mutations))
	for kind, c := range r.mutations {
		out[kind] = c.Load()
	}
	return out
}

// snapshotMutLat returns the mutation latency histograms in sorted kind
// order. The histogram pointers are stable, so rendering reads them
// without the lock.
func (r *Registry) snapshotMutLat() (kinds []string, hists []*histogram) {
	r.mutMu.Lock()
	for kind := range r.mutLat {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		hists = append(hists, r.mutLat[kind])
	}
	r.mutMu.Unlock()
	return kinds, hists
}

// Endpoint returns the metrics bucket for name, creating it on first
// use. The returned pointer is stable and safe for concurrent use.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.RLock()
	e := r.endpoints[name]
	r.mu.RUnlock()
	if e != nil {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e = r.endpoints[name]; e == nil {
		e = &Endpoint{
			name:    name,
			errors:  make(map[int]*atomic.Int64),
			latency: newHistogram(),
		}
		r.endpoints[name] = e
	}
	return e
}

// Endpoint holds the metrics of one named HTTP endpoint.
type Endpoint struct {
	name     string
	requests atomic.Int64
	inFlight atomic.Int64
	latency  *histogram

	errMu  sync.Mutex
	errors map[int]*atomic.Int64 // completed requests by status >= 400

	// filtered and refined accumulate the Grid-index work counters of
	// the endpoint's queries, so the scrape can report the live filter
	// rate (the paper's headline efficiency metric) per endpoint.
	filtered atomic.Int64
	refined  atomic.Int64
}

// Begin marks a request in flight. Observe ends it.
func (e *Endpoint) Begin() {
	e.inFlight.Add(1)
}

// Observe records one completed request begun with Begin: its wall time
// and final status code. Statuses >= 400 — including 499 (client went
// away) and 504 (deadline exceeded) — count into the error metric.
func (e *Endpoint) Observe(d time.Duration, status int) {
	e.ObserveExemplar(d, status, "")
}

// ObserveExemplar records one completed request like Observe and, when
// traceID is non-empty, additionally pins {traceID, d} as the exemplar
// of the latency bucket the request landed in. The OpenMetrics scrape
// renders it on that bucket's line, so a p99 spike on a dashboard links
// straight to a representative trace in /debug/traces.
func (e *Endpoint) ObserveExemplar(d time.Duration, status int, traceID string) {
	e.inFlight.Add(-1)
	e.requests.Add(1)
	sec := d.Seconds()
	i := e.latency.observe(sec)
	if traceID != "" {
		e.latency.exemplars[i].Store(&Exemplar{
			TraceID: traceID,
			Value:   sec,
			Unix:    float64(time.Now().UnixMilli()) / 1e3,
		})
	}
	if status >= 400 {
		e.errMu.Lock()
		c := e.errors[status]
		if c == nil {
			c = new(atomic.Int64)
			e.errors[status] = c
		}
		e.errMu.Unlock()
		c.Add(1)
	}
}

// AddFilterCounts folds one query's Grid-index work counters into the
// endpoint's filter-rate gauge. Cancelled queries contribute the work
// they performed before stopping.
func (e *Endpoint) AddFilterCounts(filtered, refined int64) {
	e.filtered.Add(filtered)
	e.refined.Add(refined)
}

// snapshotErrors copies the error-code map for rendering.
func (e *Endpoint) snapshotErrors() map[int]int64 {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	out := make(map[int]int64, len(e.errors))
	for code, c := range e.errors {
		out[code] = c.Load()
	}
	return out
}

// Exemplar links one histogram bucket to a recent trace. Value is the
// observation in seconds (by construction inside the bucket's range, as
// OpenMetrics requires); Unix is the capture time in seconds since the
// Unix epoch.
type Exemplar struct {
	TraceID string
	Value   float64
	Unix    float64
}

// histogram is a fixed-bucket latency histogram. Buckets store
// non-cumulative counts; rendering accumulates them into the cumulative
// `le` series Prometheus expects. Each bucket additionally holds the
// most recent exemplar observed into it (last-writer-wins — recency is
// exactly what a dashboard jump-to-trace wants).
type histogram struct {
	counts    []atomic.Int64             // len(LatencyBuckets)+1, last is +Inf
	sumBits   atomic.Uint64              // float64 bits of the observed sum, CAS-added
	exemplars []atomic.Pointer[Exemplar] // len(counts); nil until observed
}

func newHistogram() *histogram {
	return &histogram{
		counts:    make([]atomic.Int64, len(LatencyBuckets)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(LatencyBuckets)+1),
	}
}

// observe counts one observation and returns the index of the bucket it
// landed in, so callers can attach an exemplar to the same bucket.
func (h *histogram) observe(seconds float64) int {
	i := sort.SearchFloat64s(LatencyBuckets, seconds)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, next) {
			return i
		}
	}
}

func (h *histogram) sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// WritePrometheus renders every endpoint's metrics in the classic
// Prometheus text exposition format (version 0.0.4), endpoints in
// sorted order so scrapes are stable and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WriteExposition(w, false)
}

// WriteOpenMetrics renders the OpenMetrics 1.0 flavor of the scrape:
// counter families announced by base name, exemplars on histogram
// buckets, and the terminating # EOF marker.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.WriteExposition(w, true)
}

// WriteExposition renders the scrape in either exposition format. Both
// flavors emit the same families in the same order; the OpenMetrics one
// additionally carries exemplars and the # EOF trailer.
func (r *Registry) WriteExposition(w io.Writer, openMetrics bool) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.endpoints))
	for name := range r.endpoints {
		names = append(names, name)
	}
	eps := make([]*Endpoint, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		eps = append(eps, r.endpoints[name])
	}
	r.mu.RUnlock()

	b := &expoWriter{errWriter: errWriter{w: w}, om: openMetrics}
	b.family("gridrank_requests_total", "counter", "Completed HTTP requests by endpoint.")
	for _, e := range eps {
		b.printf("gridrank_requests_total{endpoint=%q} %d\n", e.name, e.requests.Load())
	}

	b.family("gridrank_request_errors_total", "counter", "Completed HTTP requests with status >= 400, by endpoint and status code (499 = client cancelled, 504 = deadline exceeded).")
	for _, e := range eps {
		errs := e.snapshotErrors()
		codes := make([]int, 0, len(errs))
		for code := range errs {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			b.printf("gridrank_request_errors_total{endpoint=%q,code=\"%d\"} %d\n", e.name, code, errs[code])
		}
	}

	b.family("gridrank_requests_in_flight", "gauge", "Requests currently being served, by endpoint.")
	for _, e := range eps {
		b.printf("gridrank_requests_in_flight{endpoint=%q} %d\n", e.name, e.inFlight.Load())
	}

	b.family("gridrank_request_duration_seconds", "histogram", "Wall time of completed requests, by endpoint.")
	for _, e := range eps {
		b.histogram("gridrank_request_duration_seconds", "endpoint", e.name, e.latency)
	}

	b.family("gridrank_filtered_points_total", "counter", "Points decided by Grid-index bounds alone, by endpoint.")
	for _, e := range eps {
		b.printf("gridrank_filtered_points_total{endpoint=%q} %d\n", e.name, e.filtered.Load())
	}
	b.family("gridrank_refined_points_total", "counter", "Points needing an exact score after Grid-index filtering, by endpoint.")
	for _, e := range eps {
		b.printf("gridrank_refined_points_total{endpoint=%q} %d\n", e.name, e.refined.Load())
	}
	b.family("gridrank_filter_rate", "gauge", "Fraction of examined points the Grid-index decided without a multiplication, by endpoint.")
	for _, e := range eps {
		f, rf := e.filtered.Load(), e.refined.Load()
		rate := 0.0
		if f+rf > 0 {
			rate = float64(f) / float64(f+rf)
		}
		b.printf("gridrank_filter_rate{endpoint=%q} %s\n", e.name, formatFloat(rate))
	}

	muts := r.snapshotMutations()
	kinds := make([]string, 0, len(muts))
	for kind := range muts {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	b.family("gridrank_mutations_total", "counter", "Successful index mutations by kind.")
	for _, kind := range kinds {
		b.printf("gridrank_mutations_total{kind=%q} %d\n", kind, muts[kind])
	}
	latKinds, latHists := r.snapshotMutLat()
	b.family("gridrank_mutation_duration_seconds", "histogram", "Wall time of successful index mutations, by kind (one observation per batch call).")
	for i, kind := range latKinds {
		b.histogram("gridrank_mutation_duration_seconds", "kind", kind, latHists[i])
	}
	b.family("gridrank_epoch_install_to_publish_seconds", "gauge", "Delay between the newest epoch's install in the index and its publication to the metrics registry.")
	b.printf("gridrank_epoch_install_to_publish_seconds %s\n", formatFloat(r.installLag()))
	b.family("gridrank_index_epoch", "gauge", "Current index mutation epoch (0 = as built or loaded).")
	b.printf("gridrank_index_epoch %d\n", r.epoch.Load())

	if tc, ok := r.traceCounts(); ok {
		b.family("gridrank_traces_started_total", "counter", "Query traces begun (head-sampled, remote-parented or recorded for the slow-query filter).")
		b.printf("gridrank_traces_started_total %d\n", tc.Started)
		b.family("gridrank_traces_kept_total", "counter", "Completed traces published to the debug ring.")
		b.printf("gridrank_traces_kept_total %d\n", tc.Kept)
		b.family("gridrank_traces_dropped_total", "counter", "Recorded traces discarded at completion as fast and unsampled.")
		b.printf("gridrank_traces_dropped_total %d\n", tc.Dropped)
		b.family("gridrank_traces_evicted_total", "counter", "Published traces overwritten by newer ones in the bounded ring.")
		b.printf("gridrank_traces_evicted_total %d\n", tc.Evicted)
		b.family("gridrank_traces_resident", "gauge", "Kept traces currently resident in the debug ring.")
		b.printf("gridrank_traces_resident %d\n", tc.Resident)
		b.family("gridrank_slow_queries_total", "counter", "Queries that exceeded the slow-query threshold.")
		b.printf("gridrank_slow_queries_total %d\n", tc.Slow)
	}

	if oc, ok := r.otlpCounts(); ok {
		b.family("gridrank_otlp_spans_enqueued_total", "counter", "Spans handed to the OTLP exporter.")
		b.printf("gridrank_otlp_spans_enqueued_total %d\n", oc.Enqueued)
		b.family("gridrank_otlp_spans_exported_total", "counter", "Spans delivered to the OTLP collector.")
		b.printf("gridrank_otlp_spans_exported_total %d\n", oc.Exported)
		b.family("gridrank_otlp_spans_dropped_total", "counter", "Spans discarded because the export queue was full or the exporter closed.")
		b.printf("gridrank_otlp_spans_dropped_total %d\n", oc.Dropped)
		b.family("gridrank_otlp_send_failures_total", "counter", "OTLP batch posts that failed.")
		b.printf("gridrank_otlp_send_failures_total %d\n", oc.SendFailures)
		b.family("gridrank_otlp_retries_total", "counter", "OTLP batch posts retried after a failure.")
		b.printf("gridrank_otlp_retries_total %d\n", oc.Retries)
		b.family("gridrank_otlp_queue_depth", "gauge", "Spans waiting in the bounded OTLP export queue.")
		b.printf("gridrank_otlp_queue_depth %d\n", oc.Queue)
	}

	if fc, ok := r.flightCounts(); ok {
		b.family("gridrank_flight_records_total", "counter", "Digests recorded by the always-on flight recorder.")
		b.printf("gridrank_flight_records_total %d\n", fc.Recorded)
		b.family("gridrank_flight_queries_total", "counter", "Query digests recorded by the flight recorder.")
		b.printf("gridrank_flight_queries_total %d\n", fc.Queries)
		b.family("gridrank_flight_mutations_total", "counter", "Mutation/epoch-install digests recorded by the flight recorder.")
		b.printf("gridrank_flight_mutations_total %d\n", fc.Mutations)
		b.family("gridrank_flight_subscriptions_total", "counter", "Subscription lifecycle digests recorded by the flight recorder.")
		b.printf("gridrank_flight_subscriptions_total %d\n", fc.Subscriptions)
		b.family("gridrank_flight_capacity", "gauge", "Flight recorder ring capacity in slots.")
		b.printf("gridrank_flight_capacity %d\n", fc.Capacity)
	}

	if cc, ok := r.cacheCounts(); ok {
		b.family("gridrank_cache_hits_total", "counter", "Reverse-rank queries answered from the epoch-invalidated answer cache.")
		b.printf("gridrank_cache_hits_total %d\n", cc.Hits)
		b.family("gridrank_cache_misses_total", "counter", "Cache lookups that fell through to the Grid-index scan.")
		b.printf("gridrank_cache_misses_total %d\n", cc.Misses)
		b.family("gridrank_cache_stores_total", "counter", "Scan answers accepted into the cache.")
		b.printf("gridrank_cache_stores_total %d\n", cc.Stores)
		b.family("gridrank_cache_stores_rejected_total", "counter", "Stores refused because the answer was computed against an epoch older than the cache head.")
		b.printf("gridrank_cache_stores_rejected_total %d\n", cc.RejectedStores)
		b.family("gridrank_cache_invalidated_entries_total", "counter", "Cached answers removed or rewritten by mutation invalidation sweeps.")
		b.printf("gridrank_cache_invalidated_entries_total %d\n", cc.Invalidations)
		b.family("gridrank_cache_flushes_total", "counter", "Whole-cache clears (batch mutations and index rebuilds).")
		b.printf("gridrank_cache_flushes_total %d\n", cc.Flushes)
		b.family("gridrank_cache_evictions_total", "counter", "Entries dropped by the LRU capacity bound.")
		b.printf("gridrank_cache_evictions_total %d\n", cc.Evictions)
		b.family("gridrank_cache_expired_total", "counter", "Entries dropped on contact as older than the TTL.")
		b.printf("gridrank_cache_expired_total %d\n", cc.Expirations)
		b.family("gridrank_cache_entries", "gauge", "Currently resident cached answers.")
		b.printf("gridrank_cache_entries %d\n", cc.Entries)
	}

	if sc, ok := r.subCounts(); ok {
		b.family("gridrank_sub_monitors", "gauge", "Currently registered continuous subscriptions.")
		b.printf("gridrank_sub_monitors %d\n", sc.Monitors)
		b.family("gridrank_sub_subscribed_total", "counter", "Subscriptions ever registered.")
		b.printf("gridrank_sub_subscribed_total %d\n", sc.Subscribed)
		b.family("gridrank_sub_unsubscribed_total", "counter", "Subscriptions closed by their owners.")
		b.printf("gridrank_sub_unsubscribed_total %d\n", sc.Unsubscribed)
		b.family("gridrank_sub_events_total", "counter", "Enter/leave events delivered to subscribers.")
		b.printf("gridrank_sub_events_total %d\n", sc.Events)
		b.family("gridrank_sub_lagged_total", "counter", "Subscriptions cancelled because their event buffer overflowed.")
		b.printf("gridrank_sub_lagged_total %d\n", sc.Lagged)
		b.family("gridrank_sub_diff_passes_total", "counter", "Single-mutation epochs answered by the incremental diff pass.")
		b.printf("gridrank_sub_diff_passes_total %d\n", sc.DiffPasses)
		b.family("gridrank_sub_full_passes_total", "counter", "Rebuild epochs answered by full per-monitor recomputes.")
		b.printf("gridrank_sub_full_passes_total %d\n", sc.FullPasses)
		b.family("gridrank_sub_gated_skips_total", "counter", "Monitor-epoch pairs skipped entirely by the dominance gate.")
		b.printf("gridrank_sub_gated_skips_total %d\n", sc.GatedSkips)
		b.family("gridrank_sub_prefs_diff_evaluated_total", "counter", "Preference vectors examined by diff passes.")
		b.printf("gridrank_sub_prefs_diff_evaluated_total %d\n", sc.PrefsDiffEvaluated)
		b.family("gridrank_sub_prefs_diff_full_cost_total", "counter", "Preference vectors full recomputes would have examined on diffed epochs.")
		b.printf("gridrank_sub_prefs_diff_full_cost_total %d\n", sc.PrefsDiffFullCost)
	}

	writeRuntimeTelemetry(b, r.layoutLabels())
	if openMetrics {
		b.printf("# EOF\n")
	}
	return b.err
}

// buildInfo is resolved once: the module version and Go toolchain are
// fixed for the process lifetime.
var buildInfoOnce = sync.OnceValues(func() (goVersion, modVersion string) {
	goVersion, modVersion = runtime.Version(), "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		if bi.Main.Version != "" {
			modVersion = bi.Main.Version
		}
	}
	return goVersion, modVersion
})

// writeRuntimeTelemetry renders the Go runtime gauges, gathered at
// scrape time. runtime.ReadMemStats is a brief stop-the-world, which at
// scrape cadence (seconds to minutes) is noise; in exchange there is no
// background goroutine and no staleness.
func writeRuntimeTelemetry(b *expoWriter, lay *Layout) {
	goVersion, modVersion := buildInfoOnce()
	b.family("gridrank_build_info", "gauge", "Build metadata; the value is always 1.")
	if lay != nil {
		layout := "float64"
		if lay.Packed {
			layout = "packed"
		}
		b.printf("gridrank_build_info{go_version=%q,module_version=%q,layout=%q,packed_bits=\"%d\",row_block=\"%d\"} 1\n",
			goVersion, modVersion, layout, lay.BitsPerDim, lay.RowBlock)
	} else {
		b.printf("gridrank_build_info{go_version=%q,module_version=%q} 1\n", goVersion, modVersion)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.family("gridrank_go_goroutines", "gauge", "Current number of goroutines.")
	b.printf("gridrank_go_goroutines %d\n", runtime.NumGoroutine())
	b.family("gridrank_go_gomaxprocs", "gauge", "Value of GOMAXPROCS, the query workers' CPU budget.")
	b.printf("gridrank_go_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
	b.family("gridrank_go_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	b.printf("gridrank_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	b.family("gridrank_go_heap_inuse_bytes", "gauge", "Bytes in in-use heap spans.")
	b.printf("gridrank_go_heap_inuse_bytes %d\n", ms.HeapInuse)
	b.family("gridrank_go_gc_pause_seconds_total", "counter", "Cumulative stop-the-world GC pause time.")
	b.printf("gridrank_go_gc_pause_seconds_total %s\n", formatFloat(float64(ms.PauseTotalNs)/1e9))
}

// formatFloat renders a float the way Prometheus expects: shortest
// representation that round-trips.
func formatFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

// errWriter latches the first write error so the render loop stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...interface{}) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}

// expoWriter renders one scrape in either exposition flavor.
type expoWriter struct {
	errWriter
	om bool
}

// family announces a metric family (HELP then TYPE). In OpenMetrics
// mode, counter families are announced by their base name — the _total
// suffix belongs to the sample, not the family, per the spec.
func (b *expoWriter) family(name, typ, help string) {
	if b.om && typ == "counter" {
		name = strings.TrimSuffix(name, "_total")
	}
	b.printf("# HELP %s %s\n", name, help)
	b.printf("# TYPE %s %s\n", name, typ)
}

// exemplar renders the OpenMetrics exemplar suffix of one bucket line,
// or "" in the classic format and for buckets with no exemplar yet.
func (b *expoWriter) exemplar(ex *Exemplar) string {
	if !b.om || ex == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %.3f", ex.TraceID, formatFloat(ex.Value), ex.Unix)
}

// histogram renders one labeled histogram: cumulative buckets with
// optional exemplars, +Inf last, then _sum and _count.
func (b *expoWriter) histogram(name, labelKey, labelVal string, h *histogram) {
	var cum int64
	for i, ub := range LatencyBuckets {
		cum += h.counts[i].Load()
		b.printf("%s_bucket{%s=%q,le=%q} %d%s\n",
			name, labelKey, labelVal, formatFloat(ub), cum, b.exemplar(h.exemplars[i].Load()))
	}
	cum += h.counts[len(LatencyBuckets)].Load()
	b.printf("%s_bucket{%s=%q,le=\"+Inf\"} %d%s\n",
		name, labelKey, labelVal, cum, b.exemplar(h.exemplars[len(LatencyBuckets)].Load()))
	b.printf("%s_sum{%s=%q} %s\n", name, labelKey, labelVal, formatFloat(h.sum()))
	b.printf("%s_count{%s=%q} %d\n", name, labelKey, labelVal, cum)
}
