// Package metrics is the server's observability layer: a dependency-free
// registry of per-endpoint request counters, error counters by status
// code, latency histograms, Grid-index filter-rate gauges, tracing
// counters and Go runtime telemetry, rendered in the Prometheus text
// exposition format (version 0.0.4) for GET /metrics.
//
// Runtime telemetry (goroutines, heap, GC pause total, GOMAXPROCS,
// build info) is gathered at scrape time — one runtime.ReadMemStats per
// scrape, no background sampler goroutine.
//
// The hot path is lock-free: requests, latencies and filter counts go
// through atomics; the only mutexes guard endpoint creation (once per
// endpoint name) and the rare error-code map insert. Scrapes take no
// locks on the hot path either — they read the same atomics, so a
// scrape concurrent with traffic sees a consistent-enough snapshot (the
// usual Prometheus counter semantics).
package metrics

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond cache hits to the multi-second scans of a |W| in the
// millions. The terminal +Inf bucket is implicit.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry aggregates per-endpoint metrics and renders them for
// scraping. The zero value is not usable; call New.
type Registry struct {
	mu        sync.RWMutex
	endpoints map[string]*Endpoint

	// mutations counts successful index mutations by kind
	// (insert_product, delete_product, insert_preference,
	// delete_preference); epoch mirrors the index's mutation epoch.
	mutMu     sync.Mutex
	mutations map[string]*atomic.Int64
	epoch     atomic.Uint64

	// traceSource, when set, is polled at scrape time for the tracing
	// subsystem's counters (started/kept/dropped/evicted traces and slow
	// queries).
	traceMu     sync.Mutex
	traceSource func() TraceCounts

	// cacheSource, when set, is polled at scrape time for the answer
	// cache's counters and occupancy.
	cacheMu     sync.Mutex
	cacheSource func() CacheCounts

	// subSource, when set, is polled at scrape time for the continuous
	// subscription registry's counters.
	subMu     sync.Mutex
	subSource func() SubCounts

	// layout, when set, labels gridrank_build_info with the index's
	// physical scan layout (packed row width, kernel row block).
	layoutMu sync.Mutex
	layout   *Layout
}

// Layout describes the index's physical scan representation for the
// gridrank_build_info labels. The field meanings match the root
// package's Layout; the duplicate type keeps the import graph acyclic,
// as with TraceCounts.
type Layout struct {
	Packed     bool // rows stored bit-packed rather than as float64 cells
	BitsPerDim int  // bits per dimension when packed, 0 otherwise
	RowBlock   int  // rows classified per kernel call (1 when unpacked)
}

// SetLayout records the index's scan layout, surfaced as labels on
// gridrank_build_info. Layout is fixed at build time, so this is set
// once at server start.
func (r *Registry) SetLayout(l Layout) {
	r.layoutMu.Lock()
	r.layout = &l
	r.layoutMu.Unlock()
}

func (r *Registry) layoutLabels() *Layout {
	r.layoutMu.Lock()
	defer r.layoutMu.Unlock()
	return r.layout
}

// TraceCounts is the tracing subsystem's counter snapshot, polled at
// scrape time through SetTraceSource. The field meanings match
// trace.Counts; the duplicate type keeps the import graph acyclic
// (internal/trace must not depend on metrics and vice versa).
type TraceCounts struct {
	Started int64 // traces begun (sampled or recorded for the slow filter)
	Kept    int64 // traces published to the debug ring
	Dropped int64 // recorded traces discarded as fast and unsampled
	Slow    int64 // queries over the slow-query threshold
	Evicted int64 // published traces overwritten by newer ones
}

// SetTraceSource registers the tracing counter snapshot function,
// typically trace.(*Tracer).Counts. A nil source removes the trace
// metric families from the scrape.
func (r *Registry) SetTraceSource(f func() TraceCounts) {
	r.traceMu.Lock()
	r.traceSource = f
	r.traceMu.Unlock()
}

func (r *Registry) traceCounts() (TraceCounts, bool) {
	r.traceMu.Lock()
	f := r.traceSource
	r.traceMu.Unlock()
	if f == nil {
		return TraceCounts{}, false
	}
	return f(), true
}

// CacheCounts is the answer cache's counter snapshot, polled at scrape
// time through SetCacheSource. The field meanings match the root
// package's CacheStats; the duplicate type keeps the import graph
// acyclic, as with TraceCounts.
type CacheCounts struct {
	Hits           int64 // lookups answered from a resident entry
	Misses         int64 // lookups that fell through to the scan
	Stores         int64 // answers accepted into the cache
	RejectedStores int64 // stores refused as older than the head epoch
	Invalidations  int64 // entries removed or rewritten by mutation sweeps
	Flushes        int64 // whole-cache clears (batch mutations, rebuilds)
	Evictions      int64 // entries dropped by the LRU capacity bound
	Expirations    int64 // entries dropped as older than the TTL
	Entries        int64 // current resident entries (gauge)
}

// SetCacheSource registers the answer-cache counter snapshot function.
// A nil source removes the cache metric families from the scrape.
func (r *Registry) SetCacheSource(f func() CacheCounts) {
	r.cacheMu.Lock()
	r.cacheSource = f
	r.cacheMu.Unlock()
}

func (r *Registry) cacheCounts() (CacheCounts, bool) {
	r.cacheMu.Lock()
	f := r.cacheSource
	r.cacheMu.Unlock()
	if f == nil {
		return CacheCounts{}, false
	}
	return f(), true
}

// SubCounts is the continuous subscription registry's counter snapshot,
// polled at scrape time through SetSubSource. The field meanings match
// the root package's SubStats; the duplicate type keeps the import graph
// acyclic, as with TraceCounts.
type SubCounts struct {
	Monitors     int64 // currently registered subscriptions (gauge)
	Subscribed   int64 // subscriptions ever registered
	Unsubscribed int64 // subscriptions closed by their owners
	Events       int64 // enter/leave events delivered
	Lagged       int64 // subscriptions cancelled for a full buffer

	DiffPasses int64 // single-mutation epochs diffed incrementally
	FullPasses int64 // rebuild epochs recomputed per monitor
	GatedSkips int64 // monitor×epoch pairs skipped by the dominance gate

	PrefsDiffEvaluated int64 // preference vectors examined by diff passes
	PrefsDiffFullCost  int64 // what full recomputes would have examined there
}

// SetSubSource registers the subscription counter snapshot function. A
// nil source removes the subscription metric families from the scrape.
func (r *Registry) SetSubSource(f func() SubCounts) {
	r.subMu.Lock()
	r.subSource = f
	r.subMu.Unlock()
}

func (r *Registry) subCounts() (SubCounts, bool) {
	r.subMu.Lock()
	f := r.subSource
	r.subMu.Unlock()
	if f == nil {
		return SubCounts{}, false
	}
	return f(), true
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		endpoints: make(map[string]*Endpoint),
		mutations: make(map[string]*atomic.Int64),
	}
}

// AddMutations records n successful index mutations of the given kind
// (rendered as gridrank_mutations_total{kind=...}).
func (r *Registry) AddMutations(kind string, n int64) {
	r.mutMu.Lock()
	c := r.mutations[kind]
	if c == nil {
		c = new(atomic.Int64)
		r.mutations[kind] = c
	}
	r.mutMu.Unlock()
	c.Add(n)
}

// SetIndexEpoch publishes the index's current mutation epoch (rendered
// as the gridrank_index_epoch gauge).
func (r *Registry) SetIndexEpoch(epoch uint64) { r.epoch.Store(epoch) }

// snapshotMutations copies the mutation-counter map for rendering.
func (r *Registry) snapshotMutations() map[string]int64 {
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	out := make(map[string]int64, len(r.mutations))
	for kind, c := range r.mutations {
		out[kind] = c.Load()
	}
	return out
}

// Endpoint returns the metrics bucket for name, creating it on first
// use. The returned pointer is stable and safe for concurrent use.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.RLock()
	e := r.endpoints[name]
	r.mu.RUnlock()
	if e != nil {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e = r.endpoints[name]; e == nil {
		e = &Endpoint{
			name:    name,
			errors:  make(map[int]*atomic.Int64),
			latency: histogram{counts: make([]atomic.Int64, len(LatencyBuckets)+1)},
		}
		r.endpoints[name] = e
	}
	return e
}

// Endpoint holds the metrics of one named HTTP endpoint.
type Endpoint struct {
	name     string
	requests atomic.Int64
	inFlight atomic.Int64
	latency  histogram

	errMu  sync.Mutex
	errors map[int]*atomic.Int64 // completed requests by status >= 400

	// filtered and refined accumulate the Grid-index work counters of
	// the endpoint's queries, so the scrape can report the live filter
	// rate (the paper's headline efficiency metric) per endpoint.
	filtered atomic.Int64
	refined  atomic.Int64
}

// Begin marks a request in flight. Observe ends it.
func (e *Endpoint) Begin() {
	e.inFlight.Add(1)
}

// Observe records one completed request begun with Begin: its wall time
// and final status code. Statuses >= 400 — including 499 (client went
// away) and 504 (deadline exceeded) — count into the error metric.
func (e *Endpoint) Observe(d time.Duration, status int) {
	e.inFlight.Add(-1)
	e.requests.Add(1)
	e.latency.observe(d.Seconds())
	if status >= 400 {
		e.errMu.Lock()
		c := e.errors[status]
		if c == nil {
			c = new(atomic.Int64)
			e.errors[status] = c
		}
		e.errMu.Unlock()
		c.Add(1)
	}
}

// AddFilterCounts folds one query's Grid-index work counters into the
// endpoint's filter-rate gauge. Cancelled queries contribute the work
// they performed before stopping.
func (e *Endpoint) AddFilterCounts(filtered, refined int64) {
	e.filtered.Add(filtered)
	e.refined.Add(refined)
}

// snapshotErrors copies the error-code map for rendering.
func (e *Endpoint) snapshotErrors() map[int]int64 {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	out := make(map[int]int64, len(e.errors))
	for code, c := range e.errors {
		out[code] = c.Load()
	}
	return out
}

// histogram is a fixed-bucket latency histogram. Buckets store
// non-cumulative counts; rendering accumulates them into the cumulative
// `le` series Prometheus expects.
type histogram struct {
	counts  []atomic.Int64 // len(LatencyBuckets)+1, last is +Inf
	sumBits atomic.Uint64  // float64 bits of the observed sum, CAS-added
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(LatencyBuckets, seconds)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (h *histogram) sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// WritePrometheus renders every endpoint's metrics in the Prometheus
// text exposition format, endpoints in sorted order so scrapes are
// stable and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.endpoints))
	for name := range r.endpoints {
		names = append(names, name)
	}
	eps := make([]*Endpoint, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		eps = append(eps, r.endpoints[name])
	}
	r.mu.RUnlock()

	b := &errWriter{w: w}
	b.printf("# HELP gridrank_requests_total Completed HTTP requests by endpoint.\n")
	b.printf("# TYPE gridrank_requests_total counter\n")
	for _, e := range eps {
		b.printf("gridrank_requests_total{endpoint=%q} %d\n", e.name, e.requests.Load())
	}

	b.printf("# HELP gridrank_request_errors_total Completed HTTP requests with status >= 400, by endpoint and status code (499 = client cancelled, 504 = deadline exceeded).\n")
	b.printf("# TYPE gridrank_request_errors_total counter\n")
	for _, e := range eps {
		errs := e.snapshotErrors()
		codes := make([]int, 0, len(errs))
		for code := range errs {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			b.printf("gridrank_request_errors_total{endpoint=%q,code=\"%d\"} %d\n", e.name, code, errs[code])
		}
	}

	b.printf("# HELP gridrank_requests_in_flight Requests currently being served, by endpoint.\n")
	b.printf("# TYPE gridrank_requests_in_flight gauge\n")
	for _, e := range eps {
		b.printf("gridrank_requests_in_flight{endpoint=%q} %d\n", e.name, e.inFlight.Load())
	}

	b.printf("# HELP gridrank_request_duration_seconds Wall time of completed requests, by endpoint.\n")
	b.printf("# TYPE gridrank_request_duration_seconds histogram\n")
	for _, e := range eps {
		var cum int64
		for i, ub := range LatencyBuckets {
			cum += e.latency.counts[i].Load()
			b.printf("gridrank_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", e.name, formatFloat(ub), cum)
		}
		cum += e.latency.counts[len(LatencyBuckets)].Load()
		b.printf("gridrank_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", e.name, cum)
		b.printf("gridrank_request_duration_seconds_sum{endpoint=%q} %s\n", e.name, formatFloat(e.latency.sum()))
		b.printf("gridrank_request_duration_seconds_count{endpoint=%q} %d\n", e.name, cum)
	}

	b.printf("# HELP gridrank_filtered_points_total Points decided by Grid-index bounds alone, by endpoint.\n")
	b.printf("# TYPE gridrank_filtered_points_total counter\n")
	for _, e := range eps {
		b.printf("gridrank_filtered_points_total{endpoint=%q} %d\n", e.name, e.filtered.Load())
	}
	b.printf("# HELP gridrank_refined_points_total Points needing an exact score after Grid-index filtering, by endpoint.\n")
	b.printf("# TYPE gridrank_refined_points_total counter\n")
	for _, e := range eps {
		b.printf("gridrank_refined_points_total{endpoint=%q} %d\n", e.name, e.refined.Load())
	}
	b.printf("# HELP gridrank_filter_rate Fraction of examined points the Grid-index decided without a multiplication, by endpoint.\n")
	b.printf("# TYPE gridrank_filter_rate gauge\n")
	for _, e := range eps {
		f, rf := e.filtered.Load(), e.refined.Load()
		rate := 0.0
		if f+rf > 0 {
			rate = float64(f) / float64(f+rf)
		}
		b.printf("gridrank_filter_rate{endpoint=%q} %s\n", e.name, formatFloat(rate))
	}

	muts := r.snapshotMutations()
	kinds := make([]string, 0, len(muts))
	for kind := range muts {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	b.printf("# HELP gridrank_mutations_total Successful index mutations by kind.\n")
	b.printf("# TYPE gridrank_mutations_total counter\n")
	for _, kind := range kinds {
		b.printf("gridrank_mutations_total{kind=%q} %d\n", kind, muts[kind])
	}
	b.printf("# HELP gridrank_index_epoch Current index mutation epoch (0 = as built or loaded).\n")
	b.printf("# TYPE gridrank_index_epoch gauge\n")
	b.printf("gridrank_index_epoch %d\n", r.epoch.Load())

	if tc, ok := r.traceCounts(); ok {
		b.printf("# HELP gridrank_traces_started_total Query traces begun (head-sampled, remote-parented or recorded for the slow-query filter).\n")
		b.printf("# TYPE gridrank_traces_started_total counter\n")
		b.printf("gridrank_traces_started_total %d\n", tc.Started)
		b.printf("# HELP gridrank_traces_kept_total Completed traces published to the debug ring.\n")
		b.printf("# TYPE gridrank_traces_kept_total counter\n")
		b.printf("gridrank_traces_kept_total %d\n", tc.Kept)
		b.printf("# HELP gridrank_traces_dropped_total Recorded traces discarded at completion as fast and unsampled.\n")
		b.printf("# TYPE gridrank_traces_dropped_total counter\n")
		b.printf("gridrank_traces_dropped_total %d\n", tc.Dropped)
		b.printf("# HELP gridrank_traces_evicted_total Published traces overwritten by newer ones in the bounded ring.\n")
		b.printf("# TYPE gridrank_traces_evicted_total counter\n")
		b.printf("gridrank_traces_evicted_total %d\n", tc.Evicted)
		b.printf("# HELP gridrank_slow_queries_total Queries that exceeded the slow-query threshold.\n")
		b.printf("# TYPE gridrank_slow_queries_total counter\n")
		b.printf("gridrank_slow_queries_total %d\n", tc.Slow)
	}

	if cc, ok := r.cacheCounts(); ok {
		b.printf("# HELP gridrank_cache_hits_total Reverse-rank queries answered from the epoch-invalidated answer cache.\n")
		b.printf("# TYPE gridrank_cache_hits_total counter\n")
		b.printf("gridrank_cache_hits_total %d\n", cc.Hits)
		b.printf("# HELP gridrank_cache_misses_total Cache lookups that fell through to the Grid-index scan.\n")
		b.printf("# TYPE gridrank_cache_misses_total counter\n")
		b.printf("gridrank_cache_misses_total %d\n", cc.Misses)
		b.printf("# HELP gridrank_cache_stores_total Scan answers accepted into the cache.\n")
		b.printf("# TYPE gridrank_cache_stores_total counter\n")
		b.printf("gridrank_cache_stores_total %d\n", cc.Stores)
		b.printf("# HELP gridrank_cache_stores_rejected_total Stores refused because the answer was computed against an epoch older than the cache head.\n")
		b.printf("# TYPE gridrank_cache_stores_rejected_total counter\n")
		b.printf("gridrank_cache_stores_rejected_total %d\n", cc.RejectedStores)
		b.printf("# HELP gridrank_cache_invalidated_entries_total Cached answers removed or rewritten by mutation invalidation sweeps.\n")
		b.printf("# TYPE gridrank_cache_invalidated_entries_total counter\n")
		b.printf("gridrank_cache_invalidated_entries_total %d\n", cc.Invalidations)
		b.printf("# HELP gridrank_cache_flushes_total Whole-cache clears (batch mutations and index rebuilds).\n")
		b.printf("# TYPE gridrank_cache_flushes_total counter\n")
		b.printf("gridrank_cache_flushes_total %d\n", cc.Flushes)
		b.printf("# HELP gridrank_cache_evictions_total Entries dropped by the LRU capacity bound.\n")
		b.printf("# TYPE gridrank_cache_evictions_total counter\n")
		b.printf("gridrank_cache_evictions_total %d\n", cc.Evictions)
		b.printf("# HELP gridrank_cache_expired_total Entries dropped on contact as older than the TTL.\n")
		b.printf("# TYPE gridrank_cache_expired_total counter\n")
		b.printf("gridrank_cache_expired_total %d\n", cc.Expirations)
		b.printf("# HELP gridrank_cache_entries Currently resident cached answers.\n")
		b.printf("# TYPE gridrank_cache_entries gauge\n")
		b.printf("gridrank_cache_entries %d\n", cc.Entries)
	}

	if sc, ok := r.subCounts(); ok {
		b.printf("# HELP gridrank_sub_monitors Currently registered continuous subscriptions.\n")
		b.printf("# TYPE gridrank_sub_monitors gauge\n")
		b.printf("gridrank_sub_monitors %d\n", sc.Monitors)
		b.printf("# HELP gridrank_sub_subscribed_total Subscriptions ever registered.\n")
		b.printf("# TYPE gridrank_sub_subscribed_total counter\n")
		b.printf("gridrank_sub_subscribed_total %d\n", sc.Subscribed)
		b.printf("# HELP gridrank_sub_unsubscribed_total Subscriptions closed by their owners.\n")
		b.printf("# TYPE gridrank_sub_unsubscribed_total counter\n")
		b.printf("gridrank_sub_unsubscribed_total %d\n", sc.Unsubscribed)
		b.printf("# HELP gridrank_sub_events_total Enter/leave events delivered to subscribers.\n")
		b.printf("# TYPE gridrank_sub_events_total counter\n")
		b.printf("gridrank_sub_events_total %d\n", sc.Events)
		b.printf("# HELP gridrank_sub_lagged_total Subscriptions cancelled because their event buffer overflowed.\n")
		b.printf("# TYPE gridrank_sub_lagged_total counter\n")
		b.printf("gridrank_sub_lagged_total %d\n", sc.Lagged)
		b.printf("# HELP gridrank_sub_diff_passes_total Single-mutation epochs answered by the incremental diff pass.\n")
		b.printf("# TYPE gridrank_sub_diff_passes_total counter\n")
		b.printf("gridrank_sub_diff_passes_total %d\n", sc.DiffPasses)
		b.printf("# HELP gridrank_sub_full_passes_total Rebuild epochs answered by full per-monitor recomputes.\n")
		b.printf("# TYPE gridrank_sub_full_passes_total counter\n")
		b.printf("gridrank_sub_full_passes_total %d\n", sc.FullPasses)
		b.printf("# HELP gridrank_sub_gated_skips_total Monitor-epoch pairs skipped entirely by the dominance gate.\n")
		b.printf("# TYPE gridrank_sub_gated_skips_total counter\n")
		b.printf("gridrank_sub_gated_skips_total %d\n", sc.GatedSkips)
		b.printf("# HELP gridrank_sub_prefs_diff_evaluated_total Preference vectors examined by diff passes.\n")
		b.printf("# TYPE gridrank_sub_prefs_diff_evaluated_total counter\n")
		b.printf("gridrank_sub_prefs_diff_evaluated_total %d\n", sc.PrefsDiffEvaluated)
		b.printf("# HELP gridrank_sub_prefs_diff_full_cost_total Preference vectors full recomputes would have examined on diffed epochs.\n")
		b.printf("# TYPE gridrank_sub_prefs_diff_full_cost_total counter\n")
		b.printf("gridrank_sub_prefs_diff_full_cost_total %d\n", sc.PrefsDiffFullCost)
	}

	writeRuntimeTelemetry(b, r.layoutLabels())
	return b.err
}

// buildInfo is resolved once: the module version and Go toolchain are
// fixed for the process lifetime.
var buildInfoOnce = sync.OnceValues(func() (goVersion, modVersion string) {
	goVersion, modVersion = runtime.Version(), "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		if bi.Main.Version != "" {
			modVersion = bi.Main.Version
		}
	}
	return goVersion, modVersion
})

// writeRuntimeTelemetry renders the Go runtime gauges, gathered at
// scrape time. runtime.ReadMemStats is a brief stop-the-world, which at
// scrape cadence (seconds to minutes) is noise; in exchange there is no
// background goroutine and no staleness.
func writeRuntimeTelemetry(b *errWriter, lay *Layout) {
	goVersion, modVersion := buildInfoOnce()
	b.printf("# HELP gridrank_build_info Build metadata; the value is always 1.\n")
	b.printf("# TYPE gridrank_build_info gauge\n")
	if lay != nil {
		layout := "float64"
		if lay.Packed {
			layout = "packed"
		}
		b.printf("gridrank_build_info{go_version=%q,module_version=%q,layout=%q,packed_bits=\"%d\",row_block=\"%d\"} 1\n",
			goVersion, modVersion, layout, lay.BitsPerDim, lay.RowBlock)
	} else {
		b.printf("gridrank_build_info{go_version=%q,module_version=%q} 1\n", goVersion, modVersion)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.printf("# HELP gridrank_go_goroutines Current number of goroutines.\n")
	b.printf("# TYPE gridrank_go_goroutines gauge\n")
	b.printf("gridrank_go_goroutines %d\n", runtime.NumGoroutine())
	b.printf("# HELP gridrank_go_gomaxprocs Value of GOMAXPROCS, the query workers' CPU budget.\n")
	b.printf("# TYPE gridrank_go_gomaxprocs gauge\n")
	b.printf("gridrank_go_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
	b.printf("# HELP gridrank_go_heap_alloc_bytes Bytes of allocated heap objects.\n")
	b.printf("# TYPE gridrank_go_heap_alloc_bytes gauge\n")
	b.printf("gridrank_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	b.printf("# HELP gridrank_go_heap_inuse_bytes Bytes in in-use heap spans.\n")
	b.printf("# TYPE gridrank_go_heap_inuse_bytes gauge\n")
	b.printf("gridrank_go_heap_inuse_bytes %d\n", ms.HeapInuse)
	b.printf("# HELP gridrank_go_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	b.printf("# TYPE gridrank_go_gc_pause_seconds_total counter\n")
	b.printf("gridrank_go_gc_pause_seconds_total %s\n", formatFloat(float64(ms.PauseTotalNs)/1e9))
}

// formatFloat renders a float the way Prometheus expects: shortest
// representation that round-trips.
func formatFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

// errWriter latches the first write error so the render loop stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...interface{}) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}
