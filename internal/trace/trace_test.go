package trace

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracerNeverRecords(t *testing.T) {
	for _, tc := range []*Tracer{nil, New(Config{})} {
		if tc.Enabled() {
			t.Fatalf("tracer %+v reports enabled", tc)
		}
		if tr := tc.Start("q", Parent{}); tr != nil {
			t.Fatalf("disabled tracer recorded a trace")
		}
		// Even a valid remote parent must not force recording on a fully
		// disabled tracer: the operator turned tracing off.
		parent := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
		if !parent.Valid {
			t.Fatal("test traceparent did not parse")
		}
		if tr := tc.Start("q", parent); tr != nil {
			t.Fatalf("disabled tracer honoured a remote parent")
		}
	}
}

func TestProbabilisticSampling(t *testing.T) {
	tc := New(Config{SampleRate: 1})
	tr := tc.Start("q", Parent{})
	if tr == nil || !tr.Sampled() {
		t.Fatal("rate-1 tracer did not sample")
	}
	id := tr.ID()
	if len(id) != 32 {
		t.Fatalf("trace ID %q is not 32 hex digits", id)
	}
	sp := tr.StartSpan("scan")
	sp.SetInt("case1_filtered", 7).SetFloat("filter_rate", 0.99).SetStr("kind", "rtk")
	sp.End()
	tr.SetAttr("endpoint", "reverse_topk")
	tr.Finish()

	td := tc.Get(id)
	if td == nil {
		t.Fatalf("sampled trace %s not stored", id)
	}
	if !td.Sampled || td.Remote {
		t.Fatalf("stored trace flags wrong: %+v", td)
	}
	if len(td.Spans) != 2 {
		t.Fatalf("got %d spans, want root+scan", len(td.Spans))
	}
	root := td.Spans[0]
	if root.Name != "q" || root.ParentID != "" || root.Attrs["endpoint"] != "reverse_topk" {
		t.Fatalf("bad root span %+v", root)
	}
	scan := td.Spans[1]
	if scan.Name != "scan" || scan.ParentID != root.SpanID {
		t.Fatalf("bad scan span %+v", scan)
	}
	if scan.Attrs["case1_filtered"] != int64(7) || scan.Attrs["kind"] != "rtk" {
		t.Fatalf("scan attrs lost: %+v", scan.Attrs)
	}
	if got := tc.Counts(); got.Started != 1 || got.Kept != 1 || got.Dropped != 0 {
		t.Fatalf("counts %+v", got)
	}
}

func TestTailSamplingKeepsSlowDropsFast(t *testing.T) {
	// Fast + unsampled → dropped.
	tc := New(Config{SlowQuery: time.Hour})
	tr := tc.Start("q", Parent{})
	if tr == nil {
		t.Fatal("tail-mode tracer did not record")
	}
	if tr.Sampled() {
		t.Fatal("tail-only trace claims head-sampled")
	}
	tr.Finish()
	if got := tc.Counts(); got.Kept != 0 || got.Dropped != 1 {
		t.Fatalf("fast trace not dropped: %+v", got)
	}
	if len(tc.Traces()) != 0 {
		t.Fatal("dropped trace stored")
	}

	// Slow → kept and logged with the trace ID and scan breakdown.
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tc = New(Config{SlowQuery: time.Nanosecond, Logger: logger})
	tr = tc.Start("q", Parent{})
	sp := tr.StartSpan("scan")
	sp.SetInt("case3_refined", 11)
	time.Sleep(time.Microsecond)
	sp.End()
	id := tr.ID()
	tr.Finish()
	if td := tc.Get(id); td == nil || !td.Slow {
		t.Fatalf("slow trace not captured: %+v", td)
	}
	log := buf.String()
	if !strings.Contains(log, "slow query") || !strings.Contains(log, id) {
		t.Fatalf("slow log line missing trace ID: %q", log)
	}
	if !strings.Contains(log, "scan.case3_refined=11") {
		t.Fatalf("slow log line missing case breakdown: %q", log)
	}
	if got := tc.Counts(); got.Slow != 1 || got.Kept != 1 {
		t.Fatalf("counts %+v", got)
	}
}

func TestRemoteParentReusesID(t *testing.T) {
	tc := New(Config{SlowQuery: time.Hour}) // head sampling off
	parent := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	tr := tc.Start("q", parent)
	if tr == nil || !tr.Sampled() {
		t.Fatal("remote parent did not force sampling")
	}
	if tr.ID() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("remote trace ID not reused: %s", tr.ID())
	}
	tp := tr.Traceparent()
	if !strings.HasPrefix(tp, "00-0af7651916cd43dd8448eb211c80319c-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("bad traceparent propagation %q", tp)
	}
	tr.Finish()
	td := tc.Get(tr.ID())
	if td == nil || !td.Remote {
		t.Fatalf("remote trace not stored/flagged: %+v", td)
	}
	if td.Spans[0].ParentID != "b7ad6b7169203331" {
		t.Fatalf("root span lost remote parent: %+v", td.Spans[0])
	}
}

func TestConcurrentWorkerSpans(t *testing.T) {
	tc := New(Config{SampleRate: 1})
	tr := tc.Start("q", Parent{})
	scan := tr.StartSpan("scan")
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := scan.Child("scan.worker")
			sp.SetInt("worker", int64(i))
			sp.End()
		}(w)
	}
	wg.Wait()
	scan.End()
	tr.Finish()
	td := tc.Get(tr.ID())
	if td == nil {
		t.Fatal("trace not stored")
	}
	var workerSpans int
	var scanID string
	for _, sp := range td.Spans {
		if sp.Name == "scan" {
			scanID = sp.SpanID
		}
	}
	for _, sp := range td.Spans {
		if sp.Name == "scan.worker" {
			workerSpans++
			if sp.ParentID != scanID {
				t.Fatalf("worker span parented to %s, want scan %s", sp.ParentID, scanID)
			}
		}
	}
	if workerSpans != workers {
		t.Fatalf("got %d worker spans, want %d", workerSpans, workers)
	}
}

func TestFinishIsIdempotentAndLateSpansDrop(t *testing.T) {
	tc := New(Config{SampleRate: 1})
	tr := tc.Start("q", Parent{})
	sp := tr.StartSpan("late")
	tr.Finish()
	tr.Finish()
	sp.End() // after Finish: must not panic, must not mutate the export
	if got := tc.Counts(); got.Kept != 1 {
		t.Fatalf("double Finish published twice: %+v", got)
	}
	td := tc.Get(tr.ID())
	if len(td.Spans) != 1 {
		t.Fatalf("late span leaked into export: %+v", td.Spans)
	}
}

func TestWriteText(t *testing.T) {
	tc := New(Config{SampleRate: 1})
	tr := tc.Start("reverse_kranks", Parent{})
	sp := tr.StartSpan("scan")
	sp.SetInt("case1_filtered", 42).SetFloat("filter_rate", 0.995)
	wsp := sp.Child("scan.worker")
	wsp.End()
	sp.End()
	tr.StartSpan("merge").End()
	tr.Finish()
	var buf bytes.Buffer
	if err := WriteText(&buf, tc.Get(tr.ID())); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace ", "reverse_kranks", "scan", "scan.worker", "merge", "case1_filtered=42", "filter_rate=0.995"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
	if err := WriteText(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIDsAreUniqueAndNonZero(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := randTraceID()
		if id.IsZero() {
			t.Fatal("zero trace ID")
		}
		s := id.String()
		if seen[s] {
			t.Fatalf("duplicate trace ID %s", s)
		}
		seen[s] = true
		if randSpanID() == 0 {
			t.Fatal("zero span ID")
		}
	}
}

// TestSamplingRateRoughly checks the coin is actually biased by the rate
// (loose bounds; the generator is not seeded).
func TestSamplingRateRoughly(t *testing.T) {
	tc := New(Config{SampleRate: 0.5})
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if tr := tc.Start("q", Parent{}); tr != nil {
			hits++
			tr.Finish()
		}
	}
	if hits < n/4 || hits > 3*n/4 {
		t.Fatalf("rate-0.5 sampled %d of %d", hits, n)
	}
}
