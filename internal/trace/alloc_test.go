package trace

import (
	"testing"
	"time"
)

// TestNoopPathAllocations pins the zero-cost contract the query path
// relies on: when tracing is off (nil *Tracer, or a tracer with neither
// sampling nor a slow threshold) every call a query makes — Start,
// StartSpan, SetInt, Child, End, Finish, ID — must allocate nothing.
// The GIR hot loop runs at zero allocations per query; tracing must not
// change that when disabled.
func TestNoopPathAllocations(t *testing.T) {
	var nilTracer *Tracer
	disabled := New(Config{})

	if n := testing.AllocsPerRun(100, func() {
		_ = nilTracer.Enabled()
		tr := nilTracer.Start("q", Parent{})
		sp := tr.StartSpan("scan")
		sp.SetInt("k", 1).SetFloat("r", 0.5).SetStr("s", "x")
		wsp := sp.Child("scan.worker")
		wsp.End()
		sp.End()
		_ = tr.ID()
		_ = tr.Sampled()
		_ = tr.Traceparent()
		tr.SetAttr("a", 1)
		tr.Finish()
	}); n != 0 {
		t.Fatalf("nil tracer path allocates %v per run, want 0", n)
	}

	if n := testing.AllocsPerRun(100, func() {
		if tr := disabled.Start("q", Parent{}); tr != nil {
			t.Fatal("disabled tracer sampled")
		}
	}); n != 0 {
		t.Fatalf("disabled tracer Start allocates %v per run, want 0", n)
	}

	// An unsampled Start on a probabilistic tracer must also be free.
	// SampleRate 0 with a slow threshold DOES record (tail sampling), so
	// use a rate-only tracer with rate 0 via a tiny-but-nonzero rate that
	// never hits: rate of exactly 0 disables; instead exercise the nil
	// return from the coin by using rate 0 and no slow threshold, which
	// is the `disabled` case above. Here pin the slow-only tracer's cost
	// is bounded: it must record, so it allocates — just assert it still
	// returns a usable trace rather than asserting allocs.
	slow := New(Config{SlowQuery: time.Hour})
	if tr := slow.Start("q", Parent{}); tr == nil {
		t.Fatal("slow-only tracer did not record")
	} else {
		tr.Finish()
	}
}
