package trace

import "sync/atomic"

// Ring is a bounded lock-free ring buffer of completed traces: writers
// claim a slot with one atomic increment and publish with one atomic
// pointer store, so tracing never blocks the query path on readers (and
// readers never block writers). The newest Capacity traces survive;
// older ones are overwritten and counted as evicted.
//
// Snapshot and Get read the same atomics without locks. A read racing a
// wrap-around write may observe a trace newer than the cursor it loaded
// — harmless for the debug endpoints this serves.
type Ring struct {
	slots   []atomic.Pointer[TraceData]
	cursor  atomic.Uint64
	mask    uint64
	evicted atomic.Int64
}

// NewRing builds a ring holding at least capacity traces (rounded up to
// a power of two so slot selection is a mask, not a modulo).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[TraceData], n), mask: uint64(n - 1)}
}

// Capacity returns the slot count.
func (r *Ring) Capacity() int { return len(r.slots) }

// Put stores one completed trace, overwriting the oldest when full.
// Eviction is counted by what the Swap actually displaced, not inferred
// from the cursor: under concurrent writers the cursor can lap a slot
// whose earlier claimant has not published yet, and the old arithmetic
// (cursor minus capacity) counted those unpublished slots as evictions.
// Swap-based accounting keeps the invariant kept == evicted + resident
// exact at every quiescent point.
func (r *Ring) Put(td *TraceData) {
	i := r.cursor.Add(1) - 1
	if old := r.slots[i&r.mask].Swap(td); old != nil {
		r.evicted.Add(1)
	}
}

// Evicted returns how many stored traces have been overwritten.
func (r *Ring) Evicted() int64 { return r.evicted.Load() }

// Resident counts the traces currently stored in the ring.
func (r *Ring) Resident() int64 {
	var n int64
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Snapshot returns the stored traces, newest first.
func (r *Ring) Snapshot() []*TraceData {
	c := r.cursor.Load()
	n := uint64(len(r.slots))
	if c < n {
		n = c
	}
	out := make([]*TraceData, 0, n)
	for i := uint64(0); i < n; i++ {
		if td := r.slots[(c-1-i)&r.mask].Load(); td != nil {
			out = append(out, td)
		}
	}
	return out
}

// Get returns the stored trace with the given hex trace ID, or nil.
// Scans newest-first, so a reused remote ID resolves to its latest
// capture.
func (r *Ring) Get(id string) *TraceData {
	for _, td := range r.Snapshot() {
		if td.TraceID == id {
			return td
		}
	}
	return nil
}
