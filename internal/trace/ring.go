package trace

import "sync/atomic"

// Ring is a bounded lock-free ring buffer of completed traces: writers
// claim a slot with one atomic increment and publish with one atomic
// pointer store, so tracing never blocks the query path on readers (and
// readers never block writers). The newest Capacity traces survive;
// older ones are overwritten and counted as evicted.
//
// Snapshot and Get read the same atomics without locks. A read racing a
// wrap-around write may observe a trace newer than the cursor it loaded
// — harmless for the debug endpoints this serves.
type Ring struct {
	slots  []atomic.Pointer[TraceData]
	cursor atomic.Uint64
	mask   uint64
}

// NewRing builds a ring holding at least capacity traces (rounded up to
// a power of two so slot selection is a mask, not a modulo).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[TraceData], n), mask: uint64(n - 1)}
}

// Capacity returns the slot count.
func (r *Ring) Capacity() int { return len(r.slots) }

// Put stores one completed trace, overwriting the oldest when full.
func (r *Ring) Put(td *TraceData) {
	i := r.cursor.Add(1) - 1
	r.slots[i&r.mask].Store(td)
}

// Evicted returns how many stored traces have been overwritten.
func (r *Ring) Evicted() int64 {
	c := r.cursor.Load()
	if c <= uint64(len(r.slots)) {
		return 0
	}
	return int64(c - uint64(len(r.slots)))
}

// Snapshot returns the stored traces, newest first.
func (r *Ring) Snapshot() []*TraceData {
	c := r.cursor.Load()
	n := uint64(len(r.slots))
	if c < n {
		n = c
	}
	out := make([]*TraceData, 0, n)
	for i := uint64(0); i < n; i++ {
		if td := r.slots[(c-1-i)&r.mask].Load(); td != nil {
			out = append(out, td)
		}
	}
	return out
}

// Get returns the stored trace with the given hex trace ID, or nil.
// Scans newest-first, so a reused remote ID resolves to its latest
// capture.
func (r *Ring) Get(id string) *TraceData {
	for _, td := range r.Snapshot() {
		if td.TraceID == id {
			return td
		}
	}
	return nil
}
