package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRingAccountingUnderConcurrentWriters is the regression test for
// the eviction-accounting fix: the old implementation derived Evicted
// from the cursor (cursor − capacity), which counts slots that were
// claimed but never published — under concurrent writers a lapping Put
// can overwrite a still-nil slot, and the cursor arithmetic overcounted
// it as an eviction. With Swap-based accounting the identities
//
//	started == kept + dropped          (every trace finishes exactly once)
//	kept    == evicted + resident      (every kept trace is in the ring or was displaced)
//
// hold exactly, and composing them gives the invariant the debug
// endpoint advertises: started == dropped + evicted + resident. The
// test hammers the ring from many goroutines (run under -race in CI),
// then asserts the identities at a quiescent snapshot after every
// round; a concurrent reader checks weaker bounds mid-churn.
func TestRingAccountingUnderConcurrentWriters(t *testing.T) {
	const (
		rounds    = 8
		writers   = 8
		perWriter = 200
	)
	// rate 0.5 + an unreachable slow threshold: every query is started
	// and recorded, about half are kept, the rest are dropped at Finish
	// — exercising all four counters at once.
	tr := New(Config{SampleRate: 0.5, SlowQuery: time.Hour, Capacity: 64})

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() { // mid-churn reader: bounds only, counters move independently
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := tr.Counts()
			if c.Resident > int64(tr.ring.Capacity()) {
				t.Errorf("resident %d exceeds capacity %d", c.Resident, tr.ring.Capacity())
				return
			}
			if c.Evicted+c.Resident > c.Started {
				t.Errorf("evicted(%d)+resident(%d) > started(%d)", c.Evicted, c.Resident, c.Started)
				return
			}
		}
	}()

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					q := tr.Start(fmt.Sprintf("q%d", i), Parent{})
					if q != nil {
						q.StartSpan("scan").End()
						q.Finish()
					}
				}
			}()
		}
		wg.Wait()

		c := tr.Counts()
		if c.Started != c.Kept+c.Dropped {
			t.Fatalf("round %d: started(%d) != kept(%d) + dropped(%d)", round, c.Started, c.Kept, c.Dropped)
		}
		if c.Kept != c.Evicted+c.Resident {
			t.Fatalf("round %d: kept(%d) != evicted(%d) + resident(%d)", round, c.Kept, c.Evicted, c.Resident)
		}
		if c.Started != c.Dropped+c.Evicted+c.Resident {
			t.Fatalf("round %d: started(%d) != dropped(%d) + evicted(%d) + resident(%d)",
				round, c.Started, c.Dropped, c.Evicted, c.Resident)
		}
	}
	close(stop)
	readerWG.Wait()

	c := tr.Counts()
	if c.Started == 0 || c.Kept == 0 || c.Dropped == 0 || c.Evicted == 0 {
		t.Fatalf("stress did not exercise all counters: %+v", c)
	}
	if c.Resident != int64(tr.ring.Capacity()) {
		t.Fatalf("ring should be full after %d keeps: resident %d, capacity %d",
			c.Kept, c.Resident, tr.ring.Capacity())
	}
}

// TestRingEvictionNotOvercountedBeforeWrap pins the simple half of the
// fix: filling the ring exactly to capacity evicts nothing.
func TestRingEvictionNotOvercountedBeforeWrap(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 8; i++ {
		r.Put(&TraceData{TraceID: fmt.Sprint(i)})
	}
	if got := r.Evicted(); got != 0 {
		t.Fatalf("Evicted = %d after exactly-capacity puts, want 0", got)
	}
	if got := r.Resident(); got != 8 {
		t.Fatalf("Resident = %d, want 8", got)
	}
	r.Put(&TraceData{TraceID: "wrap"})
	if got := r.Evicted(); got != 1 {
		t.Fatalf("Evicted = %d after one wrap, want 1", got)
	}
	if got := r.Resident(); got != 8 {
		t.Fatalf("Resident = %d after wrap, want 8", got)
	}
}
