// Package trace is the per-query tracing subsystem: a dependency-free
// sampling tracer whose spans cover the query lifecycle — HTTP handling,
// epoch snapshot, grid scan (with the per-case work breakdown of
// Section 3.1 attached as span attributes), per-worker scan spans in the
// parallel path, heap merge and response encoding.
//
// Two sampling modes compose:
//
//   - Probabilistic: each query is recorded with probability
//     Config.SampleRate and kept unconditionally on completion.
//   - Tail-based slow-query capture: with Config.SlowQuery set, every
//     query buffers its spans and the keep/drop decision is made at
//     Finish — a query slower than the threshold is always kept (and
//     logged through Config.Logger), a fast unsampled one is discarded.
//
// A request carrying a valid W3C traceparent header reuses the remote
// trace ID and is always kept — the caller explicitly asked for the
// trace; otherwise IDs come from a process-local random generator.
//
// The disabled path is free: a nil *Trace (what Start returns when both
// modes are off, or when the probabilistic coin came up tails and no
// slow threshold is set) makes every span call a nil-receiver no-op with
// zero allocations, asserted by TestNoopPathAllocations and tracked by
// the committed BenchmarkGIRTraceOverhead numbers.
//
// Completed traces land in a bounded lock-free ring buffer (see ring.go)
// served as JSON by the server's GET /debug/traces endpoints.
package trace

import (
	"fmt"
	"log/slog"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit W3C trace identifier.
type TraceID struct{ Hi, Lo uint64 }

// String renders the ID as 32 lowercase hex digits (the traceparent
// form).
func (id TraceID) String() string { return fmt.Sprintf("%016x%016x", id.Hi, id.Lo) }

// IsZero reports the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// SpanID is a 64-bit W3C span identifier.
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// randTraceID draws a non-zero random trace ID from the process-local
// generator (math/rand/v2's per-thread ChaCha8 streams — no lock, no
// syscall, safe for concurrent use).
func randTraceID() TraceID {
	for {
		id := TraceID{Hi: rand.Uint64(), Lo: rand.Uint64()}
		if !id.IsZero() {
			return id
		}
	}
}

func randSpanID() SpanID {
	for {
		if id := SpanID(rand.Uint64()); id != 0 {
			return id
		}
	}
}

// Config tunes a Tracer.
type Config struct {
	// SampleRate is the probability an eligible query records a trace
	// that is kept unconditionally. 0 disables probabilistic sampling;
	// 1 traces everything. Values outside [0, 1] are clamped.
	SampleRate float64

	// SlowQuery, when positive, turns on tail-based capture: every query
	// records spans and those slower than the threshold are kept (and
	// logged) even when the probabilistic coin said no.
	SlowQuery time.Duration

	// Capacity bounds the completed-trace ring buffer (rounded up to a
	// power of two). 0 means DefaultCapacity.
	Capacity int

	// Logger, when set, receives one structured record per slow query,
	// carrying the trace ID and the scan's case breakdown.
	Logger *slog.Logger
}

// DefaultCapacity is the default ring-buffer size.
const DefaultCapacity = 256

// Tracer owns the sampling decision and the completed-trace storage.
// All methods are safe for concurrent use; a nil *Tracer is a valid
// always-off tracer.
type Tracer struct {
	rate   float64
	slow   time.Duration
	ring   *Ring
	logger *slog.Logger

	started atomic.Int64 // traces that began recording
	kept    atomic.Int64 // traces published to the ring
	dropped atomic.Int64 // recorded traces discarded at Finish (fast + unsampled)
	slowN   atomic.Int64 // traces over the slow-query threshold

	// exporter, when set, receives every kept trace for OTLP shipment.
	// An atomic pointer so SetExporter is safe while queries are in
	// flight; the hot path pays one atomic load when nothing is wired.
	exporter atomic.Pointer[Exporter]
}

// SetExporter wires (or, with nil, unwires) an OTLP exporter that
// receives every kept trace after it is published to the ring. Safe to
// call while queries are in flight.
func (t *Tracer) SetExporter(e *Exporter) {
	if t == nil {
		return
	}
	t.exporter.Store(e)
}

// New builds a Tracer. A tracer with SampleRate 0 and SlowQuery 0 is
// valid but never records: Start always returns nil.
func New(cfg Config) *Tracer {
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	return &Tracer{
		rate:   cfg.SampleRate,
		slow:   cfg.SlowQuery,
		ring:   NewRing(cfg.Capacity),
		logger: cfg.Logger,
	}
}

// Enabled reports whether any sampling mode is on.
func (t *Tracer) Enabled() bool { return t != nil && (t.rate > 0 || t.slow > 0) }

// SlowThreshold returns the tail-capture threshold (0 = off).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// Start makes the head sampling decision for one query and returns its
// Trace, or nil when the query is not recorded (every span call on a nil
// Trace is a free no-op). A valid remote parent forces recording and
// keeping — the caller asked for this trace by sending a traceparent
// header — and reuses the remote trace ID.
func (t *Tracer) Start(name string, parent Parent) *Trace {
	if !t.Enabled() {
		return nil
	}
	keep := false
	switch {
	case parent.Valid:
		keep = true
	case t.rate > 0 && rand.Float64() < t.rate:
		keep = true
	case t.slow > 0:
		// Tail-based: record now, decide at Finish.
	default:
		return nil
	}
	t.started.Add(1)
	tr := &Trace{
		t:     t,
		name:  name,
		keep:  keep,
		root:  randSpanID(),
		start: time.Now(),
	}
	if parent.Valid {
		tr.id = parent.TraceID
		tr.parent = parent.SpanID
		tr.remote = true
	} else {
		tr.id = randTraceID()
	}
	return tr
}

// Traces returns the stored traces, newest first.
func (t *Tracer) Traces() []*TraceData {
	if t == nil {
		return nil
	}
	return t.ring.Snapshot()
}

// Get returns the stored trace with the given hex ID, or nil.
func (t *Tracer) Get(id string) *TraceData {
	if t == nil {
		return nil
	}
	return t.ring.Get(id)
}

// Counts is the tracer's live telemetry, scraped into /metrics.
type Counts struct {
	Started  int64 // traces that began recording
	Kept     int64 // traces published to the ring
	Dropped  int64 // recorded traces discarded at Finish
	Slow     int64 // traces over the slow-query threshold
	Evicted  int64 // stored traces overwritten by newer ones
	Resident int64 // traces currently stored in the ring
}

// Counts returns the tracer's counters, gathered at call time.
func (t *Tracer) Counts() Counts {
	if t == nil {
		return Counts{}
	}
	return Counts{
		Started:  t.started.Load(),
		Kept:     t.kept.Load(),
		Dropped:  t.dropped.Load(),
		Slow:     t.slowN.Load(),
		Evicted:  t.ring.Evicted(),
		Resident: t.ring.Resident(),
	}
}

// Attr is one span attribute. Value is an int64, float64, string or
// bool.
type Attr struct {
	Key   string
	Value any
}

// spanRecord is one completed span, buffered until Finish.
type spanRecord struct {
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	dur    time.Duration
	attrs  []Attr
}

// Trace buffers the spans of one query until the tail sampling decision
// at Finish. It is safe for concurrent span creation (the parallel scan
// path ends worker spans from many goroutines). A nil *Trace is the
// not-recorded state: every method is a nil-receiver no-op.
type Trace struct {
	t      *Tracer
	id     TraceID
	root   SpanID
	parent SpanID // remote parent span (zero when locally rooted)
	remote bool
	keep   bool // head decision: keep regardless of duration
	name   string
	start  time.Time

	mu        sync.Mutex
	rootAttrs []Attr
	spans     []spanRecord
	finished  bool
}

// ID returns the 32-hex-digit trace ID ("" when not recording).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id.String()
}

// IDPair returns the trace ID's raw 128 bits without formatting, for
// callers (the flight recorder) that must not allocate on the query
// path. Zero/zero when not recording.
func (tr *Trace) IDPair() (hi, lo uint64) {
	if tr == nil {
		return 0, 0
	}
	return tr.id.Hi, tr.id.Lo
}

// Sampled reports whether the trace is already certain to be kept (head
// sampled or remote-requested). Tail-only traces report false until they
// turn out slow; responses only advertise a trace_id when Sampled, so a
// client never receives an ID that may not be retrievable.
func (tr *Trace) Sampled() bool { return tr != nil && tr.keep }

// Traceparent renders the W3C traceparent value identifying this trace
// and its root span, for response-header propagation.
func (tr *Trace) Traceparent() string {
	if tr == nil {
		return ""
	}
	return FormatTraceparent(tr.id, tr.root)
}

// SetAttr attaches a key/value to the trace's root span. Slow-query log
// lines carry the root attributes, so handlers put the query summary
// (endpoint, k, status, filter counts) here.
func (tr *Trace) SetAttr(key string, value any) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	tr.rootAttrs = append(tr.rootAttrs, Attr{key, value})
	tr.mu.Unlock()
	return tr
}

// StartSpan opens a span parented to the trace root. The returned span
// is owned by the calling goroutine until End.
func (tr *Trace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	return &Span{tr: tr, id: randSpanID(), parent: tr.root, name: name, start: time.Now()}
}

// Finish closes the trace and makes the tail sampling decision: kept
// traces are published to the ring buffer; a trace over the slow-query
// threshold is always kept and emits one structured log line carrying
// the trace ID, the root attributes and the scan span's case breakdown.
// Finish is idempotent; spans ended afterwards are discarded.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	tr.mu.Unlock()
	dur := time.Since(tr.start)
	slow := tr.t.slow > 0 && dur >= tr.t.slow
	if slow {
		tr.t.slowN.Add(1)
	}
	if !tr.keep && !slow {
		tr.t.dropped.Add(1)
		return
	}
	td := tr.export(dur, slow)
	tr.t.ring.Put(td)
	tr.t.kept.Add(1)
	if e := tr.t.exporter.Load(); e != nil {
		e.Enqueue(td) // non-blocking; drops (and counts) when the queue is full
	}
	if slow && tr.t.logger != nil {
		args := make([]any, 0, 8+2*len(tr.rootAttrs))
		args = append(args,
			"traceId", td.TraceID,
			"name", tr.name,
			"durationMs", float64(dur.Microseconds())/1e3,
		)
		for _, a := range tr.rootAttrs {
			args = append(args, a.Key, a.Value)
		}
		// The first scan span carries the per-case breakdown; surface it
		// in the log line so "why was this query slow" is answerable from
		// the log alone.
		for _, rec := range tr.spans {
			if rec.name == "scan" {
				for _, a := range rec.attrs {
					args = append(args, "scan."+a.Key, a.Value)
				}
				break
			}
		}
		tr.t.logger.Warn("slow query", args...)
	}
}

// export freezes the trace into its immutable stored form.
func (tr *Trace) export(dur time.Duration, slow bool) *TraceData {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	td := &TraceData{
		TraceID:    tr.id.String(),
		Name:       tr.name,
		Remote:     tr.remote,
		Sampled:    tr.keep,
		Slow:       slow,
		Start:      tr.start,
		DurationNs: dur.Nanoseconds(),
	}
	rootParent := ""
	if tr.remote {
		rootParent = tr.parent.String()
	}
	rest := make([]SpanData, len(tr.spans))
	for i, rec := range tr.spans {
		rest[i] = SpanData{
			SpanID:     rec.id.String(),
			ParentID:   rec.parent.String(),
			Name:       rec.name,
			OffsetNs:   rec.start.Sub(tr.start).Nanoseconds(),
			DurationNs: rec.dur.Nanoseconds(),
			Attrs:      attrMap(rec.attrs),
		}
	}
	sort.SliceStable(rest, func(a, b int) bool { return rest[a].OffsetNs < rest[b].OffsetNs })
	td.Spans = make([]SpanData, 0, len(rest)+1)
	td.Spans = append(td.Spans, SpanData{
		SpanID:     tr.root.String(),
		ParentID:   rootParent,
		Name:       tr.name,
		DurationNs: dur.Nanoseconds(),
		Attrs:      attrMap(tr.rootAttrs),
	})
	td.Spans = append(td.Spans, rest...)
	return td
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// Span is one in-flight span. A nil *Span (from a nil Trace) makes every
// method a free no-op, so instrumented code calls unconditionally.
type Span struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
}

// Child opens a span parented to s (the per-worker scan spans hang off
// the scan span this way). Safe to call from any goroutine.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tr: s.tr, id: randSpanID(), parent: s.id, name: name, start: time.Now()}
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{key, v})
	return s
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{key, v})
	return s
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{key, v})
	return s
}

// End closes the span and buffers it into the trace. Ending after the
// trace finished discards the span (the tail decision was already made).
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := spanRecord{id: s.id, parent: s.parent, name: s.name, start: s.start, dur: time.Since(s.start), attrs: s.attrs}
	tr := s.tr
	tr.mu.Lock()
	if !tr.finished {
		tr.spans = append(tr.spans, rec)
	}
	tr.mu.Unlock()
}

// TraceData is the immutable stored form of a completed trace, marshaled
// as-is by the /debug/traces endpoints.
type TraceData struct {
	TraceID string `json:"traceId"`
	Name    string `json:"name"`
	// Remote marks a trace whose ID came from an incoming traceparent.
	Remote bool `json:"remoteParent,omitempty"`
	// Sampled marks a head-sampled trace; false means it survived only
	// through the slow-query tail capture.
	Sampled bool `json:"sampled"`
	// Slow marks a trace over the slow-query threshold.
	Slow       bool       `json:"slow,omitempty"`
	Start      time.Time  `json:"start"`
	DurationNs int64      `json:"durationNs"`
	Spans      []SpanData `json:"spans"`
}

// SpanData is one stored span. The first span is always the root.
type SpanData struct {
	SpanID     string         `json:"spanId"`
	ParentID   string         `json:"parentId,omitempty"`
	Name       string         `json:"name"`
	OffsetNs   int64          `json:"offsetNs"`
	DurationNs int64          `json:"durationNs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}
