package trace

import (
	"fmt"
	"sync"
	"testing"
)

func mkTrace(i int) *TraceData {
	return &TraceData{TraceID: fmt.Sprintf("%032x", i+1), Name: "q"}
}

func TestRingRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {100, 128}, {256, 256},
	} {
		if got := NewRing(tc.in).Capacity(); got != tc.want {
			t.Errorf("NewRing(%d).Capacity() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingWrapEvictsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Put(mkTrace(i))
	}
	if got := r.Evicted(); got != 2 {
		t.Fatalf("Evicted() = %d, want 2", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	// Newest first: traces 5,4,3,2 (0-indexed inserts).
	for i, td := range snap {
		want := mkTrace(5 - i).TraceID
		if td.TraceID != want {
			t.Fatalf("snap[%d] = %s, want %s", i, td.TraceID, want)
		}
	}
	if got := r.Get(mkTrace(0).TraceID); got != nil {
		t.Fatal("evicted trace still retrievable")
	}
	if got := r.Get(mkTrace(5).TraceID); got == nil {
		t.Fatal("latest trace not retrievable")
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	if len(r.Snapshot()) != 0 || r.Evicted() != 0 {
		t.Fatal("empty ring not empty")
	}
	r.Put(mkTrace(0))
	r.Put(mkTrace(1))
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].TraceID != mkTrace(1).TraceID {
		t.Fatalf("partial snapshot wrong: %d entries", len(snap))
	}
}

func TestRingGetPrefersNewestDuplicate(t *testing.T) {
	r := NewRing(4)
	a := &TraceData{TraceID: "dup", Name: "old"}
	b := &TraceData{TraceID: "dup", Name: "new"}
	r.Put(a)
	r.Put(b)
	if got := r.Get("dup"); got == nil || got.Name != "new" {
		t.Fatalf("Get returned %+v, want newest", got)
	}
}

func TestRingConcurrentPutSnapshot(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Put(mkTrace(base*1000 + i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, td := range r.Snapshot() {
				if td == nil {
					t.Error("nil trace in snapshot")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if len(r.Snapshot()) != 16 {
		t.Fatalf("full ring snapshot len = %d", len(r.Snapshot()))
	}
}
