package trace

import "testing"

func TestParseTraceparentValid(t *testing.T) {
	p := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !p.Valid {
		t.Fatal("valid header rejected")
	}
	if p.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace ID %s", p.TraceID)
	}
	if p.SpanID.String() != "b7ad6b7169203331" {
		t.Fatalf("span ID %s", p.SpanID)
	}
	if !p.Sampled {
		t.Fatal("sampled flag lost")
	}
	// Flag bit 0 clear → not sampled, still valid.
	p = ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	if !p.Valid || p.Sampled {
		t.Fatalf("flags-00 parse wrong: %+v", p)
	}
	// Future version with known layout is accepted per spec.
	p = ParseTraceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !p.Valid {
		t.Fatal("future version rejected")
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"short":             "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",
		"long":              "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
		"uppercase trace":   "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
		"uppercase span":    "00-0af7651916cd43dd8448eb211c80319c-B7AD6B7169203331-01",
		"non-hex":           "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01",
		"bad separator":     "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01",
		"version ff":        "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"zero trace id":     "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero span id":      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"spaces":            "00 0af7651916cd43dd8448eb211c80319c b7ad6b7169203331 01",
		"garbage":           "not-a-traceparent-header-at-all-just-some-random-text",
		"non-hex flags":     "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",
		"non-hex version":   "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"dash in trace id":  "00-0af7651916cd43dd-448eb211c80319c-b7ad6b7169203331-01",
		"truncated at flag": "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-1",
	}
	for name, h := range cases {
		if p := ParseTraceparent(h); p.Valid {
			t.Errorf("%s: header %q accepted", name, h)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := TraceID{Hi: 0x0af7651916cd43dd, Lo: 0x8448eb211c80319c}
	sp := SpanID(0xb7ad6b7169203331)
	h := FormatTraceparent(id, sp)
	if h != "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01" {
		t.Fatalf("FormatTraceparent = %q", h)
	}
	p := ParseTraceparent(h)
	if !p.Valid || p.TraceID != id || p.SpanID != sp || !p.Sampled {
		t.Fatalf("round trip lost data: %+v", p)
	}
	// Small IDs must zero-pad.
	h = FormatTraceparent(TraceID{Hi: 0, Lo: 1}, SpanID(2))
	if h != "00-00000000000000000000000000000001-0000000000000002-01" {
		t.Fatalf("zero padding broken: %q", h)
	}
	if p := ParseTraceparent(h); !p.Valid {
		t.Fatal("padded header rejected")
	}
}
