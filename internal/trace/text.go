package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteText renders a stored trace as a human-readable span tree — the
// EXPLAIN surface of rrqquery -explain and a quick way to eyeball a
// /debug/traces capture:
//
//	trace 0af7651916cd43dd8448eb211c80319c reverse_kranks 1.234ms (slow)
//	└─ reverse_kranks 1.234ms  endpoint=reverse_kranks k=10
//	   ├─ snapshot 1µs  epoch=0
//	   ├─ scan 1.1ms  case1_filtered=4800 case2_filtered=150 ...
//	   └─ merge 5µs
//
// Attributes print sorted by key; durations round to the nearest
// microsecond above 10µs for readability.
func WriteText(w io.Writer, td *TraceData) error {
	if td == nil {
		_, err := fmt.Fprintln(w, "trace not found")
		return err
	}
	flags := ""
	if td.Slow {
		flags += " (slow)"
	}
	if td.Remote {
		flags += " (remote parent)"
	}
	if _, err := fmt.Fprintf(w, "trace %s %s %s%s\n", td.TraceID, td.Name, fmtDur(td.DurationNs), flags); err != nil {
		return err
	}
	// Index spans and group children under their parents. Spans whose
	// parent is unknown (the root's remote parent, or a span orphaned by
	// a mid-trace Finish) render as top-level.
	known := make(map[string]bool, len(td.Spans))
	for _, sp := range td.Spans {
		known[sp.SpanID] = true
	}
	children := make(map[string][]SpanData)
	var tops []SpanData
	for _, sp := range td.Spans {
		if sp.ParentID != "" && known[sp.ParentID] && sp.ParentID != sp.SpanID {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		} else {
			tops = append(tops, sp)
		}
	}
	ew := &errWriter{w: w}
	for i, sp := range tops {
		writeSpanTree(ew, sp, children, "", i == len(tops)-1)
	}
	return ew.err
}

func writeSpanTree(w *errWriter, sp SpanData, children map[string][]SpanData, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	w.printf("%s%s%s %s%s\n", prefix, branch, sp.Name, fmtDur(sp.DurationNs), fmtAttrs(sp.Attrs))
	kids := children[sp.SpanID]
	for i, kid := range kids {
		writeSpanTree(w, kid, children, childPrefix, i == len(kids)-1)
	}
}

func fmtAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("  ")
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch v := attrs[k].(type) {
		case float64:
			fmt.Fprintf(&b, "%s=%.4g", k, v)
		default:
			fmt.Fprintf(&b, "%s=%v", k, v)
		}
	}
	return b.String()
}

func fmtDur(ns int64) string {
	d := time.Duration(ns)
	if d > 10*time.Microsecond {
		d = d.Round(time.Microsecond)
	}
	return d.String()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...any) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}
