package trace

// OTLP/HTTP-JSON span export. The exporter ships every kept trace to an
// OpenTelemetry collector as protobuf-JSON over HTTP — hand-rolled
// against the OTLP 1.x JSON mapping (hex trace/span IDs, stringified
// int64s and unix-nano timestamps, tagged attribute values) so the
// module stays dependency-free. Design constraints, in order:
//
//  1. Never block a query. Enqueue is a non-blocking channel send; a
//     full queue (stalled or slow collector) drops the trace and
//     increments a counter instead of applying backpressure.
//  2. Batch. A background worker accumulates up to BatchSize traces or
//     FlushInterval, whichever first, per POST.
//  3. Retry with backoff. A failed POST is retried MaxRetries times
//     with doubling backoff; a batch that exhausts its retries is
//     dropped and counted.
//
// The mapping from the in-process TraceData form is documented in
// DESIGN.md §16 alongside the flight-recorder memory model.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ExporterConfig tunes an Exporter. Only Endpoint is required.
type ExporterConfig struct {
	// Endpoint is the collector base URL, e.g. "http://localhost:4318".
	// The standard OTLP traces path /v1/traces is appended unless the
	// URL already ends with it.
	Endpoint string

	// ServiceName is the resource service.name ("gridrank" by default).
	ServiceName string

	// BatchSize caps traces per POST (default 64).
	BatchSize int

	// QueueSize bounds the pending-trace queue (default 1024). When the
	// queue is full, Enqueue drops instead of blocking.
	QueueSize int

	// FlushInterval bounds how long a non-full batch waits (default 3s).
	FlushInterval time.Duration

	// Timeout bounds each POST (default 5s).
	Timeout time.Duration

	// MaxRetries is how many times a failed POST is retried (default 2;
	// total attempts = MaxRetries+1).
	MaxRetries int

	// RetryBackoff is the first retry delay, doubled per attempt
	// (default 250ms).
	RetryBackoff time.Duration

	// Client overrides the HTTP client (tests). When nil, a client with
	// Timeout is built.
	Client *http.Client
}

func (c *ExporterConfig) setDefaults() {
	if c.ServiceName == "" {
		c.ServiceName = "gridrank"
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 3 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
}

// ExporterCounts is the exporter's live telemetry.
type ExporterCounts struct {
	Enqueued     int64 // traces accepted into the queue
	Exported     int64 // traces delivered (2xx from the collector)
	Dropped      int64 // traces lost: queue full, shutdown, or retries exhausted
	SendFailures int64 // POSTs that failed (each retry that fails counts)
	Retries      int64 // retry attempts made
	Queue        int   // traces currently queued
}

// Exporter ships kept traces to an OTLP/HTTP collector. Build with
// NewExporter, wire with Tracer.SetExporter, stop with Shutdown.
type Exporter struct {
	cfg    ExporterConfig
	url    string
	client *http.Client

	ch   chan *TraceData
	stop chan struct{} // closed by Shutdown: worker drains and exits
	done chan struct{} // closed when the worker has exited

	closed       atomic.Bool
	enqueued     atomic.Int64
	exported     atomic.Int64
	dropped      atomic.Int64
	sendFailures atomic.Int64
	retries      atomic.Int64
}

// NewExporter validates cfg, starts the background worker and returns
// the exporter.
func NewExporter(cfg ExporterConfig) (*Exporter, error) {
	if cfg.Endpoint == "" {
		return nil, fmt.Errorf("trace: OTLP endpoint required")
	}
	if !strings.HasPrefix(cfg.Endpoint, "http://") && !strings.HasPrefix(cfg.Endpoint, "https://") {
		return nil, fmt.Errorf("trace: OTLP endpoint %q must be an http(s) URL", cfg.Endpoint)
	}
	cfg.setDefaults()
	url := strings.TrimSuffix(cfg.Endpoint, "/")
	if !strings.HasSuffix(url, "/v1/traces") {
		url += "/v1/traces"
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	e := &Exporter{
		cfg:    cfg,
		url:    url,
		client: client,
		ch:     make(chan *TraceData, cfg.QueueSize),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go e.run()
	return e, nil
}

// Endpoint returns the resolved collector URL (with the /v1/traces
// path).
func (e *Exporter) Endpoint() string { return e.url }

// Enqueue hands one kept trace to the exporter. Never blocks: a full
// queue or a shut-down exporter drops the trace and counts it.
func (e *Exporter) Enqueue(td *TraceData) {
	if e == nil || td == nil {
		return
	}
	if e.closed.Load() {
		e.dropped.Add(1)
		return
	}
	select {
	case e.ch <- td:
		e.enqueued.Add(1)
	default:
		e.dropped.Add(1)
	}
}

// Counts returns the exporter's counters.
func (e *Exporter) Counts() ExporterCounts {
	if e == nil {
		return ExporterCounts{}
	}
	return ExporterCounts{
		Enqueued:     e.enqueued.Load(),
		Exported:     e.exported.Load(),
		Dropped:      e.dropped.Load(),
		SendFailures: e.sendFailures.Load(),
		Retries:      e.retries.Load(),
		Queue:        len(e.ch),
	}
}

// Shutdown stops accepting traces, flushes what is queued (bounded by
// ctx) and stops the worker. Idempotent.
func (e *Exporter) Shutdown(ctx context.Context) error {
	if e == nil {
		return nil
	}
	if e.closed.CompareAndSwap(false, true) {
		close(e.stop)
	}
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the worker: batch by size or interval, flush, drain on stop.
func (e *Exporter) run() {
	defer close(e.done)
	ticker := time.NewTicker(e.cfg.FlushInterval)
	defer ticker.Stop()
	batch := make([]*TraceData, 0, e.cfg.BatchSize)
	flush := func() {
		if len(batch) > 0 {
			e.send(batch)
			batch = batch[:0]
		}
	}
	for {
		select {
		case td := <-e.ch:
			batch = append(batch, td)
			if len(batch) >= e.cfg.BatchSize {
				flush()
			}
		case <-ticker.C:
			flush()
		case <-e.stop:
			for {
				select {
				case td := <-e.ch:
					batch = append(batch, td)
					if len(batch) >= e.cfg.BatchSize {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// send POSTs one batch, retrying with doubling backoff. A batch that
// exhausts its retries is dropped and counted — the collector being
// down must never wedge the worker.
func (e *Exporter) send(batch []*TraceData) {
	body, err := json.Marshal(otlpPayload{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKV{strKV("service.name", e.cfg.ServiceName)}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "gridrank/internal/trace"},
			Spans: spansOf(batch),
		}},
	}}})
	if err != nil { // cannot happen with these types; belt and braces
		e.dropped.Add(int64(len(batch)))
		return
	}
	backoff := e.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		if e.post(body) {
			e.exported.Add(int64(len(batch)))
			return
		}
		e.sendFailures.Add(1)
		if attempt >= e.cfg.MaxRetries {
			e.dropped.Add(int64(len(batch)))
			return
		}
		e.retries.Add(1)
		select {
		case <-time.After(backoff):
		case <-e.stop:
			// Shutting down: one final immediate attempt each loop, no
			// sleeping out the drain window.
		}
		backoff *= 2
	}
}

func (e *Exporter) post(body []byte) bool {
	req, err := http.NewRequest(http.MethodPost, e.url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// --- OTLP/JSON wire form (protobuf JSON mapping of
// opentelemetry.proto.trace.v1) ---

type otlpPayload struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

// Span kinds from the OTLP enum; only these two appear here.
const (
	otlpKindInternal = 1
	otlpKindServer   = 2
)

type otlpSpan struct {
	TraceID       string   `json:"traceId"`
	SpanID        string   `json:"spanId"`
	ParentSpanID  string   `json:"parentSpanId,omitempty"`
	Name          string   `json:"name"`
	Kind          int      `json:"kind"`
	StartUnixNano string   `json:"startTimeUnixNano"`
	EndUnixNano   string   `json:"endTimeUnixNano"`
	Attributes    []otlpKV `json:"attributes,omitempty"`
}

type otlpKV struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

// otlpValue is the tagged AnyValue union. Int64s are strings per the
// protobuf JSON mapping.
type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
}

func strKV(k, v string) otlpKV { return otlpKV{Key: k, Value: otlpValue{StringValue: &v}} }

func anyKV(k string, v any) otlpKV {
	switch x := v.(type) {
	case string:
		return strKV(k, x)
	case bool:
		return otlpKV{Key: k, Value: otlpValue{BoolValue: &x}}
	case int:
		s := strconv.FormatInt(int64(x), 10)
		return otlpKV{Key: k, Value: otlpValue{IntValue: &s}}
	case int64:
		s := strconv.FormatInt(x, 10)
		return otlpKV{Key: k, Value: otlpValue{IntValue: &s}}
	case float64:
		return otlpKV{Key: k, Value: otlpValue{DoubleValue: &x}}
	default:
		return strKV(k, fmt.Sprint(v))
	}
}

func attrKVs(attrs map[string]any) []otlpKV {
	if len(attrs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic wire form
	out := make([]otlpKV, 0, len(keys))
	for _, k := range keys {
		out = append(out, anyKV(k, attrs[k]))
	}
	return out
}

// spansOf flattens a batch into OTLP spans. TraceData's first span is
// the root (SERVER kind; its ParentID is the remote parent when the
// trace was propagated in); the rest are INTERNAL, already carrying
// their in-process parent IDs.
func spansOf(batch []*TraceData) []otlpSpan {
	var out []otlpSpan
	for _, td := range batch {
		startNs := td.Start.UnixNano()
		for i, sd := range td.Spans {
			kind := otlpKindInternal
			if i == 0 {
				kind = otlpKindServer
			}
			s := startNs + sd.OffsetNs
			out = append(out, otlpSpan{
				TraceID:       td.TraceID,
				SpanID:        sd.SpanID,
				ParentSpanID:  sd.ParentID,
				Name:          sd.Name,
				Kind:          kind,
				StartUnixNano: strconv.FormatInt(s, 10),
				EndUnixNano:   strconv.FormatInt(s+sd.DurationNs, 10),
				Attributes:    attrKVs(sd.Attrs),
			})
		}
	}
	return out
}
