package trace

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// collector is an in-test OTLP/HTTP collector that decodes every POST.
type collector struct {
	mu       sync.Mutex
	payloads []otlpPayload
	fail     int // next N requests answer 500
	got      chan struct{}
}

func newCollector() *collector { return &collector{got: make(chan struct{}, 64)} }

func (c *collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail > 0 {
		c.fail--
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	var p otlpPayload
	if err := json.Unmarshal(body, &p); err != nil {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	c.payloads = append(c.payloads, p)
	select {
	case c.got <- struct{}{}:
	default:
	}
	w.WriteHeader(http.StatusOK)
}

func (c *collector) spans() []otlpSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []otlpSpan
	for _, p := range c.payloads {
		for _, rs := range p.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				out = append(out, ss.Spans...)
			}
		}
	}
	return out
}

func TestOTLPRoundTrip(t *testing.T) {
	col := newCollector()
	srv := httptest.NewServer(col)
	defer srv.Close()

	tr := New(Config{SampleRate: 1})
	exp, err := NewExporter(ExporterConfig{
		Endpoint:      srv.URL,
		BatchSize:     4,
		FlushInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetExporter(exp)

	q := tr.Start("reverse_topk", Parent{})
	if q == nil {
		t.Fatal("Start returned nil at SampleRate 1")
	}
	q.SetAttr("k", 10).SetAttr("endpoint", "reverse_topk")
	scan := q.StartSpan("scan")
	scan.SetInt("case1Filtered", 120).SetInt("case2Filtered", 34).SetInt("case3Refined", 7)
	worker := scan.Child("scan.worker")
	worker.SetInt("worker", 0)
	worker.End()
	scan.End()
	q.Finish()

	select {
	case <-col.got:
	case <-time.After(5 * time.Second):
		t.Fatal("collector never received the batch")
	}
	if err := exp.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	spans := col.spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	byName := map[string]otlpSpan{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != q.ID() {
			t.Errorf("span %q traceId = %q, want %q", s.Name, s.TraceID, q.ID())
		}
		if len(s.TraceID) != 32 || len(s.SpanID) != 16 {
			t.Errorf("span %q has malformed IDs: trace %q span %q", s.Name, s.TraceID, s.SpanID)
		}
		if s.StartUnixNano == "" || s.EndUnixNano == "" {
			t.Errorf("span %q missing timestamps", s.Name)
		}
	}
	root, ok := byName["reverse_topk"]
	if !ok {
		t.Fatal("no root span named reverse_topk")
	}
	if root.Kind != otlpKindServer {
		t.Errorf("root kind = %d, want SERVER(%d)", root.Kind, otlpKindServer)
	}
	if root.ParentSpanID != "" {
		t.Errorf("root parent = %q, want none", root.ParentSpanID)
	}
	wantRootAttrs := map[string]otlpValue{}
	for _, kv := range root.Attributes {
		wantRootAttrs[kv.Key] = kv.Value
	}
	if v := wantRootAttrs["k"]; v.IntValue == nil || *v.IntValue != "10" {
		t.Errorf("root attr k = %+v, want intValue 10", v)
	}
	if v := wantRootAttrs["endpoint"]; v.StringValue == nil || *v.StringValue != "reverse_topk" {
		t.Errorf("root attr endpoint = %+v", v)
	}

	scanSpan, ok := byName["scan"]
	if !ok {
		t.Fatal("no scan span")
	}
	if scanSpan.Kind != otlpKindInternal {
		t.Errorf("scan kind = %d, want INTERNAL(%d)", scanSpan.Kind, otlpKindInternal)
	}
	if scanSpan.ParentSpanID != root.SpanID {
		t.Errorf("scan parent = %q, want root %q", scanSpan.ParentSpanID, root.SpanID)
	}
	got := map[string]string{}
	for _, kv := range scanSpan.Attributes {
		if kv.Value.IntValue != nil {
			got[kv.Key] = *kv.Value.IntValue
		}
	}
	for k, want := range map[string]string{"case1Filtered": "120", "case2Filtered": "34", "case3Refined": "7"} {
		if got[k] != want {
			t.Errorf("scan attr %s = %q, want %q", k, got[k], want)
		}
	}

	workerSpan, ok := byName["scan.worker"]
	if !ok {
		t.Fatal("no scan.worker span")
	}
	if workerSpan.ParentSpanID != scanSpan.SpanID {
		t.Errorf("worker parent = %q, want scan %q", workerSpan.ParentSpanID, scanSpan.SpanID)
	}
}

func TestOTLPRetryThenSuccess(t *testing.T) {
	col := newCollector()
	col.fail = 2
	srv := httptest.NewServer(col)
	defer srv.Close()

	exp, err := NewExporter(ExporterConfig{
		Endpoint:      srv.URL,
		BatchSize:     1,
		FlushInterval: 10 * time.Millisecond,
		MaxRetries:    3,
		RetryBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	exp.Enqueue(&TraceData{TraceID: "0123456789abcdef0123456789abcdef", Name: "q",
		Start: time.Now(), Spans: []SpanData{{SpanID: "0123456789abcdef", Name: "q"}}})

	select {
	case <-col.got:
	case <-time.After(5 * time.Second):
		t.Fatal("batch never delivered despite retries")
	}
	if err := exp.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	c := exp.Counts()
	if c.Exported != 1 || c.SendFailures != 2 || c.Retries != 2 || c.Dropped != 0 {
		t.Fatalf("counts = %+v, want 1 exported after 2 failures/retries", c)
	}
}

// TestOTLPStalledCollectorNeverBlocks is the acceptance guarantee: a
// collector that accepts the connection and then hangs must not slow or
// block trace completion — the bounded queue fills and further traces
// drop with the counter incrementing.
func TestOTLPStalledCollectorNeverBlocks(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stall every request
	}))
	defer srv.Close()
	defer close(release)

	tr := New(Config{SampleRate: 1})
	exp, err := NewExporter(ExporterConfig{
		Endpoint:      srv.URL,
		BatchSize:     1,
		QueueSize:     2,
		FlushInterval: 5 * time.Millisecond,
		Timeout:       30 * time.Second, // the stall outlives the test unless dropping works
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetExporter(exp)

	const n = 64
	start := time.Now()
	for i := 0; i < n; i++ {
		q := tr.Start("q", Parent{})
		q.StartSpan("scan").End()
		q.Finish() // must return immediately even though the collector hangs
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("finishing %d traces took %v with a stalled collector; Finish is blocking", n, elapsed)
	}
	c := exp.Counts()
	if c.Dropped == 0 {
		t.Fatalf("counts = %+v, want dropped > 0 with a stalled collector", c)
	}
	if got := tr.Counts().Kept; got != n {
		t.Fatalf("tracer kept %d, want %d — export must not affect keeping", got, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = exp.Shutdown(ctx) // may time out against the stalled POST; must not hang forever
	if exp.Counts().Queue > 2 {
		t.Fatalf("queue grew past its bound: %+v", exp.Counts())
	}
}

func TestOTLPEndpointValidation(t *testing.T) {
	if _, err := NewExporter(ExporterConfig{}); err == nil {
		t.Error("empty endpoint accepted")
	}
	if _, err := NewExporter(ExporterConfig{Endpoint: "localhost:4318"}); err == nil {
		t.Error("schemeless endpoint accepted")
	}
	exp, err := NewExporter(ExporterConfig{Endpoint: "http://localhost:4318/"})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Shutdown(context.Background())
	if got := exp.Endpoint(); got != "http://localhost:4318/v1/traces" {
		t.Errorf("Endpoint() = %q", got)
	}
	exp2, err := NewExporter(ExporterConfig{Endpoint: "http://c:4318/v1/traces"})
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Shutdown(context.Background())
	if got := exp2.Endpoint(); got != "http://c:4318/v1/traces" {
		t.Errorf("Endpoint() = %q (path must not double)", got)
	}
}

func TestOTLPEnqueueAfterShutdownDrops(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	exp, err := NewExporter(ExporterConfig{Endpoint: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	exp.Enqueue(&TraceData{TraceID: "x"})
	if c := exp.Counts(); c.Dropped != 1 {
		t.Fatalf("counts = %+v, want 1 dropped after shutdown", c)
	}
	// Idempotent shutdown.
	if err := exp.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestAttrValueMapping(t *testing.T) {
	kvs := attrKVs(map[string]any{
		"s": "str", "b": true, "i": int(3), "i64": int64(-9), "f": 2.5, "other": uint(7),
	})
	got := map[string]otlpValue{}
	for _, kv := range kvs {
		got[kv.Key] = kv.Value
	}
	if v := got["s"]; v.StringValue == nil || *v.StringValue != "str" {
		t.Errorf("s = %+v", v)
	}
	if v := got["b"]; v.BoolValue == nil || !*v.BoolValue {
		t.Errorf("b = %+v", v)
	}
	if v := got["i"]; v.IntValue == nil || *v.IntValue != "3" {
		t.Errorf("i = %+v", v)
	}
	if v := got["i64"]; v.IntValue == nil || *v.IntValue != "-9" {
		t.Errorf("i64 = %+v", v)
	}
	if v := got["f"]; v.DoubleValue == nil || *v.DoubleValue != 2.5 {
		t.Errorf("f = %+v", v)
	}
	if v := got["other"]; v.StringValue == nil || *v.StringValue != "7" {
		t.Errorf("other = %+v", v)
	}
	// Deterministic ordering: sorted by key.
	for i := 1; i < len(kvs); i++ {
		if kvs[i-1].Key >= kvs[i].Key {
			t.Fatalf("attributes not sorted: %q before %q", kvs[i-1].Key, kvs[i].Key)
		}
	}
}
