package trace

import (
	"fmt"
	"strconv"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/) traceparent
// handling. The header is
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  00    -   32 hex   -   16 hex    -   2 hex
//
// Parsing is strict where the spec is strict (lowercase hex, non-zero
// IDs, version ff invalid) and forgiving where it must be: a malformed
// header yields the zero Parent, which Start treats as "no parent" — a
// fresh trace ID, never an error to the client.

// Parent is the sampling-relevant content of an incoming traceparent
// header. The zero value means "no valid parent".
type Parent struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool // the sampled trace-flag bit
	Valid   bool
}

// ParseTraceparent parses a traceparent header value. Any deviation from
// the W3C grammar — wrong length, wrong separators, uppercase or
// non-hex digits, all-zero IDs, the forbidden version ff — returns the
// zero Parent rather than an error: trace propagation must never fail a
// request.
func ParseTraceparent(h string) Parent {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return Parent{}
	}
	if !isLowerHex(h[0:2]) || !isLowerHex(h[3:35]) || !isLowerHex(h[36:52]) || !isLowerHex(h[53:55]) {
		return Parent{}
	}
	if h[0:2] == "ff" { // forbidden version
		return Parent{}
	}
	hi, err := strconv.ParseUint(h[3:19], 16, 64)
	if err != nil {
		return Parent{}
	}
	lo, err := strconv.ParseUint(h[19:35], 16, 64)
	if err != nil {
		return Parent{}
	}
	sp, err := strconv.ParseUint(h[36:52], 16, 64)
	if err != nil {
		return Parent{}
	}
	flags, err := strconv.ParseUint(h[53:55], 16, 8)
	if err != nil {
		return Parent{}
	}
	id := TraceID{Hi: hi, Lo: lo}
	if id.IsZero() || sp == 0 {
		return Parent{}
	}
	return Parent{TraceID: id, SpanID: SpanID(sp), Sampled: flags&1 == 1, Valid: true}
}

// FormatTraceparent renders a version-00 traceparent with the sampled
// flag set (this process only propagates traces it is recording).
func FormatTraceparent(id TraceID, span SpanID) string {
	return fmt.Sprintf("00-%s-%s-01", id, span)
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
