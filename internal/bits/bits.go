// Package bits implements the bit-string compression of approximate vectors
// described in Section 3.2 of the paper: with n = 2^b value-range partitions
// per dimension, each d-dimensional approximate vector is stored as a
// (b·d)-bit string, roughly b/64 of the original 64-bit float data.
package bits

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Packed stores a fixed-size collection of approximate vectors, b bits per
// dimension, packed contiguously (little-endian within each uint64 word).
type Packed struct {
	bitsPerDim int
	dim        int
	count      int
	words      []uint64
}

// MaxBitsPerDim bounds b; 16 bits allows n up to 65536 partitions, far more
// than the paper's maximum of 128 (b = 7).
const MaxBitsPerDim = 16

// NewPacked allocates storage for count vectors of dim dimensions at b bits
// per dimension. It panics on invalid parameters, since the values come
// from programmatic configuration, not user input.
func NewPacked(count, dim, b int) *Packed {
	if b <= 0 || b > MaxBitsPerDim {
		panic(fmt.Sprintf("bits: bitsPerDim %d out of (0, %d]", b, MaxBitsPerDim))
	}
	if count < 0 || dim <= 0 {
		panic(fmt.Sprintf("bits: invalid shape count=%d dim=%d", count, dim))
	}
	totalBits := count * dim * b
	return &Packed{
		bitsPerDim: b,
		dim:        dim,
		count:      count,
		words:      make([]uint64, (totalBits+63)/64),
	}
}

// Count returns the number of vectors.
func (p *Packed) Count() int { return p.count }

// Dim returns the dimensionality.
func (p *Packed) Dim() int { return p.dim }

// BitsPerDim returns b.
func (p *Packed) BitsPerDim() int { return p.bitsPerDim }

// SizeBytes returns the size of the packed payload in bytes.
func (p *Packed) SizeBytes() int { return len(p.words) * 8 }

// Set stores cell value v (must fit in b bits) for vector i, dimension j.
func (p *Packed) Set(i, j int, v uint16) {
	if uint64(v) >= 1<<p.bitsPerDim {
		panic(fmt.Sprintf("bits: value %d does not fit in %d bits", v, p.bitsPerDim))
	}
	pos := (i*p.dim + j) * p.bitsPerDim
	word, off := pos/64, pos%64
	mask := uint64(1<<p.bitsPerDim) - 1
	p.words[word] = p.words[word]&^(mask<<off) | uint64(v)<<off
	if spill := off + p.bitsPerDim - 64; spill > 0 {
		low := p.bitsPerDim - spill
		p.words[word+1] = p.words[word+1]&^(mask>>low) | uint64(v)>>low
	}
}

// Get returns the cell value for vector i, dimension j.
func (p *Packed) Get(i, j int) uint16 {
	pos := (i*p.dim + j) * p.bitsPerDim
	word, off := pos/64, pos%64
	mask := uint64(1<<p.bitsPerDim) - 1
	v := p.words[word] >> off
	if spill := off + p.bitsPerDim - 64; spill > 0 {
		v |= p.words[word+1] << (p.bitsPerDim - spill)
	}
	return uint16(v & mask)
}

// Decode writes the approximate vector i into dst, which must have length
// Dim. Returns dst for convenience.
func (p *Packed) Decode(i int, dst []uint16) []uint16 {
	if len(dst) != p.dim {
		panic(fmt.Sprintf("bits: decode buffer length %d, want %d", len(dst), p.dim))
	}
	for j := range dst {
		dst[j] = p.Get(i, j)
	}
	return dst
}

// Encode stores the approximate vector src as vector i.
func (p *Packed) Encode(i int, src []uint16) {
	if len(src) != p.dim {
		panic(fmt.Sprintf("bits: encode buffer length %d, want %d", len(src), p.dim))
	}
	for j, v := range src {
		p.Set(i, j, v)
	}
}

// Serialization format (little endian):
//
//	magic  uint32 'B''V''1' 0
//	b      uint32
//	dim    uint32
//	count  uint64
//	words  ceil(count·dim·b / 64) × uint64

const packedMagic = 0x00315642

// ErrBadFormat reports a corrupt packed-vector stream.
var ErrBadFormat = errors.New("bits: bad file format")

// Write serializes p.
func (p *Packed) Write(w io.Writer) error {
	hdr := make([]byte, 4+4+4+8)
	binary.LittleEndian.PutUint32(hdr[0:], packedMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(p.bitsPerDim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(p.dim))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(p.count))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, word := range p.words {
		binary.LittleEndian.PutUint64(buf, word)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes a Packed written by Write.
func Read(r io.Reader) (*Packed, error) {
	hdr := make([]byte, 4+4+4+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != packedMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	b := int(binary.LittleEndian.Uint32(hdr[4:]))
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	count := binary.LittleEndian.Uint64(hdr[12:])
	if b <= 0 || b > MaxBitsPerDim || dim <= 0 || dim > 1<<16 || count > 1<<33 {
		return nil, fmt.Errorf("%w: implausible header b=%d dim=%d count=%d", ErrBadFormat, b, dim, count)
	}
	// Read the payload incrementally so a corrupt header cannot force a
	// huge up-front allocation; the words slice only grows as data
	// actually arrives.
	totalWords := (count*uint64(dim)*uint64(b) + 63) / 64
	initial := totalWords
	if initial > 1<<16 {
		initial = 1 << 16
	}
	words := make([]uint64, 0, initial)
	buf := make([]byte, 8)
	for i := uint64(0); i < totalWords; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated at word %d: %v", ErrBadFormat, i, err)
		}
		words = append(words, binary.LittleEndian.Uint64(buf))
	}
	return &Packed{bitsPerDim: b, dim: dim, count: int(count), words: words}, nil
}
