// Package bits implements the bit-string compression of approximate vectors
// described in Section 3.2 of the paper: with n = 2^b value-range partitions
// per dimension, each d-dimensional approximate vector is stored as a
// (b·d)-bit string, roughly b/64 of the original 64-bit float data.
package bits

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Packed stores a fixed-size collection of approximate vectors, b bits per
// dimension, packed contiguously (little-endian within each uint64 word).
type Packed struct {
	bitsPerDim int
	dim        int
	count      int
	words      []uint64
}

// MaxBitsPerDim bounds b; 16 bits allows n up to 65536 partitions, far more
// than the paper's maximum of 128 (b = 7).
const MaxBitsPerDim = 16

// NewPacked allocates storage for count vectors of dim dimensions at b bits
// per dimension. It panics on invalid parameters, since the values come
// from programmatic configuration, not user input.
func NewPacked(count, dim, b int) *Packed {
	if b <= 0 || b > MaxBitsPerDim {
		panic(fmt.Sprintf("bits: bitsPerDim %d out of (0, %d]", b, MaxBitsPerDim))
	}
	if count < 0 || dim <= 0 {
		panic(fmt.Sprintf("bits: invalid shape count=%d dim=%d", count, dim))
	}
	totalBits := count * dim * b
	return &Packed{
		bitsPerDim: b,
		dim:        dim,
		count:      count,
		words:      make([]uint64, (totalBits+63)/64),
	}
}

// Count returns the number of vectors.
func (p *Packed) Count() int { return p.count }

// Dim returns the dimensionality.
func (p *Packed) Dim() int { return p.dim }

// BitsPerDim returns b.
func (p *Packed) BitsPerDim() int { return p.bitsPerDim }

// SizeBytes returns the size of the packed payload in bytes.
func (p *Packed) SizeBytes() int { return len(p.words) * 8 }

// Set stores cell value v (must fit in b bits) for vector i, dimension j.
func (p *Packed) Set(i, j int, v uint16) {
	if uint64(v) >= 1<<p.bitsPerDim {
		panic(fmt.Sprintf("bits: value %d does not fit in %d bits", v, p.bitsPerDim))
	}
	pos := (i*p.dim + j) * p.bitsPerDim
	word, off := pos/64, pos%64
	mask := uint64(1<<p.bitsPerDim) - 1
	p.words[word] = p.words[word]&^(mask<<off) | uint64(v)<<off
	if spill := off + p.bitsPerDim - 64; spill > 0 {
		low := p.bitsPerDim - spill
		p.words[word+1] = p.words[word+1]&^(mask>>low) | uint64(v)>>low
	}
}

// Get returns the cell value for vector i, dimension j.
func (p *Packed) Get(i, j int) uint16 {
	pos := (i*p.dim + j) * p.bitsPerDim
	word, off := pos/64, pos%64
	mask := uint64(1<<p.bitsPerDim) - 1
	v := p.words[word] >> off
	if spill := off + p.bitsPerDim - 64; spill > 0 {
		v |= p.words[word+1] << (p.bitsPerDim - spill)
	}
	return uint16(v & mask)
}

// Decode writes the approximate vector i into dst, which must have length
// Dim. Returns dst for convenience.
func (p *Packed) Decode(i int, dst []uint16) []uint16 {
	if len(dst) != p.dim {
		panic(fmt.Sprintf("bits: decode buffer length %d, want %d", len(dst), p.dim))
	}
	for j := range dst {
		dst[j] = p.Get(i, j)
	}
	return dst
}

// Encode stores the approximate vector src as vector i.
func (p *Packed) Encode(i int, src []uint16) {
	if len(src) != p.dim {
		panic(fmt.Sprintf("bits: encode buffer length %d, want %d", len(src), p.dim))
	}
	for j, v := range src {
		p.Set(i, j, v)
	}
}

// PackedRows is the scan-oriented sibling of Packed: a fixed-stride,
// word-aligned store of approximate vectors designed so hot loops can
// classify rows directly on packed words. It trades a few padding bits
// for three properties Packed's contiguous layout cannot give:
//
//   - Every row starts at a word boundary and occupies exactly
//     WordsPerRow() words, so row r is words[r·wpr : (r+1)·wpr] — a
//     branch-free fixed-stride slice, the layout an mmap-able section
//     wants (ROADMAP item 4).
//   - No code straddles a word: a word holds ⌊64/b⌋ codes and the
//     remaining 64 mod (b·⌊64/b⌋) bits are zero padding, so extraction
//     is one shift and one mask per code with no spill branch.
//   - Rows of equal content are bit-identical words, so derived stores
//     (append/remove of one row) are byte-identical to re-encoding —
//     the property the copy-on-write grouping splices rely on.
type PackedRows struct {
	bitsPerDim  int
	dim         int
	count       int
	codesPerWd  int // ⌊64/b⌋ codes per word
	wordsPerRow int // ⌈dim / codesPerWd⌉
	words       []uint64
}

// NewPackedRows allocates storage for count rows of dim codes at b bits
// per code. It panics on invalid parameters, since the values come from
// programmatic configuration, not user input.
func NewPackedRows(count, dim, b int) *PackedRows {
	if b <= 0 || b > MaxBitsPerDim {
		panic(fmt.Sprintf("bits: bitsPerDim %d out of (0, %d]", b, MaxBitsPerDim))
	}
	if count < 0 || dim <= 0 {
		panic(fmt.Sprintf("bits: invalid shape count=%d dim=%d", count, dim))
	}
	cpw := 64 / b
	wpr := (dim + cpw - 1) / cpw
	return &PackedRows{
		bitsPerDim:  b,
		dim:         dim,
		count:       count,
		codesPerWd:  cpw,
		wordsPerRow: wpr,
		words:       make([]uint64, count*wpr),
	}
}

// Count returns the number of rows.
func (p *PackedRows) Count() int { return p.count }

// Dim returns the number of codes per row.
func (p *PackedRows) Dim() int { return p.dim }

// BitsPerDim returns b.
func (p *PackedRows) BitsPerDim() int { return p.bitsPerDim }

// CodesPerWord returns ⌊64/b⌋, the number of codes each word holds.
func (p *PackedRows) CodesPerWord() int { return p.codesPerWd }

// WordsPerRow returns the fixed per-row stride in words.
func (p *PackedRows) WordsPerRow() int { return p.wordsPerRow }

// SizeBytes returns the size of the packed payload in bytes.
func (p *PackedRows) SizeBytes() int { return len(p.words) * 8 }

// Words returns the flat word store (Count()·WordsPerRow() words,
// row-major), for hot loops that slice it directly. Not to be modified.
func (p *PackedRows) Words() []uint64 { return p.words }

// Row returns the words of row i. The slice aliases the store and must
// not be modified.
func (p *PackedRows) Row(i int) []uint64 {
	return p.words[i*p.wordsPerRow : (i+1)*p.wordsPerRow]
}

// packRowWords encodes row (codes < 1<<b) into dst[0:wpr] using the
// fixed-stride no-straddle layout. It panics on an oversized code.
func packRowWords(row []uint8, b, cpw int, dst []uint64) {
	var w uint64
	c, wi := 0, 0
	for _, v := range row {
		if int(v) >= 1<<b {
			panic(fmt.Sprintf("bits: value %d does not fit in %d bits", v, b))
		}
		w |= uint64(v) << (c * b)
		c++
		if c == cpw {
			dst[wi] = w
			wi++
			w, c = 0, 0
		}
	}
	if c > 0 {
		dst[wi] = w
	}
}

// EncodeRow stores the cell row (values < 1<<b) as row i.
func (p *PackedRows) EncodeRow(i int, row []uint8) {
	if len(row) != p.dim {
		panic(fmt.Sprintf("bits: encode buffer length %d, want %d", len(row), p.dim))
	}
	packRowWords(row, p.bitsPerDim, p.codesPerWd, p.Row(i))
}

// DecodeRow writes row i into dst, which must have length Dim. Returns
// dst for convenience.
func (p *PackedRows) DecodeRow(i int, dst []uint8) []uint8 {
	if len(dst) != p.dim {
		panic(fmt.Sprintf("bits: decode buffer length %d, want %d", len(dst), p.dim))
	}
	mask := uint64(1)<<p.bitsPerDim - 1
	rw := p.Row(i)
	wi, c := 0, 0
	w := rw[0]
	for j := range dst {
		dst[j] = uint8(w & mask)
		w >>= p.bitsPerDim
		c++
		if c == p.codesPerWd && j+1 < p.dim {
			wi++
			w, c = rw[wi], 0
		}
	}
	return dst
}

// EqualRow reports whether row i equals the unpacked cell row, comparing
// word at a time: each group of CodesPerWord codes is packed into one
// word on the fly and compared against the stored word, so the test costs
// WordsPerRow comparisons instead of Dim byte loads.
func (p *PackedRows) EqualRow(i int, row []uint8) bool {
	if len(row) != p.dim {
		return false
	}
	b, cpw := p.bitsPerDim, p.codesPerWd
	rw := p.Row(i)
	var w uint64
	c, wi := 0, 0
	for _, v := range row {
		w |= uint64(v) << (c * b)
		c++
		if c == cpw {
			if rw[wi] != w {
				return false
			}
			wi++
			w, c = 0, 0
		}
	}
	if c > 0 && rw[wi] != w {
		return false
	}
	return true
}

// WithAppendedRow derives a PackedRows with row appended. The receiver
// is untouched; the result's words are byte-identical to re-encoding the
// full mutated row set (rows are word-aligned, so the append is a flat
// copy plus one encoded row).
func (p *PackedRows) WithAppendedRow(row []uint8) *PackedRows {
	if len(row) != p.dim {
		panic(fmt.Sprintf("bits: append row length %d, want %d", len(row), p.dim))
	}
	np := &PackedRows{
		bitsPerDim:  p.bitsPerDim,
		dim:         p.dim,
		count:       p.count + 1,
		codesPerWd:  p.codesPerWd,
		wordsPerRow: p.wordsPerRow,
		words:       make([]uint64, (p.count+1)*p.wordsPerRow),
	}
	copy(np.words, p.words)
	packRowWords(row, p.bitsPerDim, p.codesPerWd, np.words[p.count*p.wordsPerRow:])
	return np
}

// WithRemovedRow derives a PackedRows without row i; rows after i shift
// down by one. The receiver is untouched.
func (p *PackedRows) WithRemovedRow(i int) *PackedRows {
	if i < 0 || i >= p.count {
		panic(fmt.Sprintf("bits: removed row %d out of range [0, %d)", i, p.count))
	}
	np := &PackedRows{
		bitsPerDim:  p.bitsPerDim,
		dim:         p.dim,
		count:       p.count - 1,
		codesPerWd:  p.codesPerWd,
		wordsPerRow: p.wordsPerRow,
		words:       make([]uint64, (p.count-1)*p.wordsPerRow),
	}
	copy(np.words, p.words[:i*p.wordsPerRow])
	copy(np.words[i*p.wordsPerRow:], p.words[(i+1)*p.wordsPerRow:])
	return np
}

// Equal reports whether two stores have identical shape and words.
func (p *PackedRows) Equal(q *PackedRows) bool {
	if p.bitsPerDim != q.bitsPerDim || p.dim != q.dim || p.count != q.count {
		return false
	}
	for i, w := range p.words {
		if q.words[i] != w {
			return false
		}
	}
	return true
}

// Serialization format (little endian):
//
//	magic  uint32 'B''V''1' 0
//	b      uint32
//	dim    uint32
//	count  uint64
//	words  ceil(count·dim·b / 64) × uint64
//
// PackedRows uses the same header with magic 'R''W''1' 0 and
// count·WordsPerRow payload words (the fixed-stride layout is fully
// determined by b and dim, so no extra header fields are needed).

const packedMagic = 0x00315642
const packedRowsMagic = 0x00315752

// ErrBadFormat reports a corrupt packed-vector stream.
var ErrBadFormat = errors.New("bits: bad file format")

// Write serializes p.
func (p *Packed) Write(w io.Writer) error {
	hdr := make([]byte, 4+4+4+8)
	binary.LittleEndian.PutUint32(hdr[0:], packedMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(p.bitsPerDim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(p.dim))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(p.count))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, word := range p.words {
		binary.LittleEndian.PutUint64(buf, word)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes a Packed written by Write.
func Read(r io.Reader) (*Packed, error) {
	hdr := make([]byte, 4+4+4+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != packedMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	b := int(binary.LittleEndian.Uint32(hdr[4:]))
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	count := binary.LittleEndian.Uint64(hdr[12:])
	if b <= 0 || b > MaxBitsPerDim || dim <= 0 || dim > 1<<16 || count > 1<<33 {
		return nil, fmt.Errorf("%w: implausible header b=%d dim=%d count=%d", ErrBadFormat, b, dim, count)
	}
	// Read the payload incrementally so a corrupt header cannot force a
	// huge up-front allocation; the words slice only grows as data
	// actually arrives.
	totalWords := (count*uint64(dim)*uint64(b) + 63) / 64
	initial := totalWords
	if initial > 1<<16 {
		initial = 1 << 16
	}
	words := make([]uint64, 0, initial)
	buf := make([]byte, 8)
	for i := uint64(0); i < totalWords; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated at word %d: %v", ErrBadFormat, i, err)
		}
		words = append(words, binary.LittleEndian.Uint64(buf))
	}
	return &Packed{bitsPerDim: b, dim: dim, count: int(count), words: words}, nil
}

// Write serializes p.
func (p *PackedRows) Write(w io.Writer) error {
	hdr := make([]byte, 4+4+4+8)
	binary.LittleEndian.PutUint32(hdr[0:], packedRowsMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(p.bitsPerDim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(p.dim))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(p.count))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, word := range p.words {
		binary.LittleEndian.PutUint64(buf, word)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadRows deserializes a PackedRows written by (*PackedRows).Write.
func ReadRows(r io.Reader) (*PackedRows, error) {
	hdr := make([]byte, 4+4+4+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != packedRowsMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	b := int(binary.LittleEndian.Uint32(hdr[4:]))
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	count := binary.LittleEndian.Uint64(hdr[12:])
	if b <= 0 || b > MaxBitsPerDim || dim <= 0 || dim > 1<<16 || count > 1<<33 {
		return nil, fmt.Errorf("%w: implausible header b=%d dim=%d count=%d", ErrBadFormat, b, dim, count)
	}
	cpw := 64 / b
	wpr := (dim + cpw - 1) / cpw
	// Incremental read, as in Read: a corrupt header cannot force a huge
	// up-front allocation.
	totalWords := count * uint64(wpr)
	initial := totalWords
	if initial > 1<<16 {
		initial = 1 << 16
	}
	words := make([]uint64, 0, initial)
	buf := make([]byte, 8)
	for i := uint64(0); i < totalWords; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated at word %d: %v", ErrBadFormat, i, err)
		}
		words = append(words, binary.LittleEndian.Uint64(buf))
	}
	p := &PackedRows{bitsPerDim: b, dim: dim, count: int(count), codesPerWd: cpw, wordsPerRow: wpr, words: words}
	// Padding bits must be zero: rows are compared word-at-a-time, so
	// nonzero padding would break EqualRow/Equal on otherwise-equal rows.
	if pad := uint(cpw * b); pad < 64 || dim%cpw != 0 {
		if err := p.checkPadding(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// RowsFromWords builds a PackedRows view over an existing word store —
// the persist layer's constructor: words may alias a mapped GRI3
// section and is adopted without copying, so it must not be modified
// afterward. Unlike NewPackedRows this returns an error, because the
// parameters come from a file, not program configuration.
//
// With checked set the padding bits are verified zero exactly as
// ReadRows verifies a stream (nonzero padding would break EqualRow on
// otherwise-equal rows). The mmap load path passes false: the scan
// touches every word and the file is trusted — see grid.GroupedFromParts
// for the same trade.
func RowsFromWords(count, dim, b int, words []uint64, checked bool) (*PackedRows, error) {
	if b <= 0 || b > MaxBitsPerDim || dim <= 0 || dim > 1<<16 || count < 0 || uint64(count) > 1<<33 {
		return nil, fmt.Errorf("%w: implausible shape b=%d dim=%d count=%d", ErrBadFormat, b, dim, count)
	}
	cpw := 64 / b
	wpr := (dim + cpw - 1) / cpw
	if len(words) != count*wpr {
		return nil, fmt.Errorf("%w: word store has %d words, want %d", ErrBadFormat, len(words), count*wpr)
	}
	p := &PackedRows{bitsPerDim: b, dim: dim, count: count, codesPerWd: cpw, wordsPerRow: wpr, words: words}
	if pad := uint(cpw * b); checked && (pad < 64 || dim%cpw != 0) {
		if err := p.checkPadding(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// checkPadding verifies every padding bit in the store is zero.
func (p *PackedRows) checkPadding() error {
	b, cpw, wpr := p.bitsPerDim, p.codesPerWd, p.wordsPerRow
	// Full words carry cpw codes; the last word of each row carries the
	// remainder. Bits above the carried codes must be zero.
	fullMask := ^uint64(0)
	if cpw*b < 64 {
		fullMask = uint64(1)<<(cpw*b) - 1
	}
	lastCodes := p.dim - (wpr-1)*cpw
	lastMask := ^uint64(0)
	if lastCodes*b < 64 {
		lastMask = uint64(1)<<(lastCodes*b) - 1
	}
	for r := 0; r < p.count; r++ {
		row := p.words[r*wpr : (r+1)*wpr]
		for wi, w := range row {
			m := fullMask
			if wi == wpr-1 {
				m = lastMask
			}
			if w&^m != 0 {
				return fmt.Errorf("%w: nonzero padding bits in row %d", ErrBadFormat, r)
			}
		}
	}
	return nil
}
