package bits

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetAllWidths(t *testing.T) {
	for b := 1; b <= MaxBitsPerDim; b++ {
		p := NewPacked(17, 5, b)
		rng := rand.New(rand.NewSource(int64(b)))
		want := make([][]uint16, 17)
		maxV := uint16(1<<b - 1)
		for i := range want {
			row := make([]uint16, 5)
			for j := range row {
				row[j] = uint16(rng.Intn(int(maxV) + 1))
				p.Set(i, j, row[j])
			}
			want[i] = row
		}
		for i, row := range want {
			for j, v := range row {
				if got := p.Get(i, j); got != v {
					t.Fatalf("b=%d: Get(%d,%d) = %d, want %d", b, i, j, got, v)
				}
			}
		}
	}
}

func TestWordBoundarySpill(t *testing.T) {
	// b=7, dim=10: vector 0 occupies bits 0..69, crossing the word boundary
	// at bit 64 inside dimension 9.
	p := NewPacked(3, 10, 7)
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ {
			p.Set(i, j, uint16((i*10+j)%128))
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ {
			if got := p.Get(i, j); got != uint16((i*10+j)%128) {
				t.Fatalf("Get(%d,%d) = %d, want %d", i, j, got, (i*10+j)%128)
			}
		}
	}
}

func TestSetOverwrites(t *testing.T) {
	p := NewPacked(1, 1, 6)
	p.Set(0, 0, 63)
	p.Set(0, 0, 1)
	if got := p.Get(0, 0); got != 1 {
		t.Fatalf("overwrite failed: got %d", got)
	}
	// Neighbors untouched.
	q := NewPacked(1, 3, 6)
	q.Set(0, 0, 63)
	q.Set(0, 1, 0)
	q.Set(0, 2, 63)
	q.Set(0, 1, 21)
	if q.Get(0, 0) != 63 || q.Get(0, 2) != 63 || q.Get(0, 1) != 21 {
		t.Fatal("Set disturbed neighboring cells")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := NewPacked(4, 8, 5)
	src := []uint16{1, 2, 3, 4, 5, 6, 7, 31}
	p.Encode(2, src)
	dst := make([]uint16, 8)
	p.Decode(2, dst)
	for j := range src {
		if dst[j] != src[j] {
			t.Fatalf("decode[%d] = %d, want %d", j, dst[j], src[j])
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("b=0", func() { NewPacked(1, 1, 0) })
	mustPanic("b too big", func() { NewPacked(1, 1, MaxBitsPerDim+1) })
	mustPanic("negative count", func() { NewPacked(-1, 1, 4) })
	mustPanic("zero dim", func() { NewPacked(1, 0, 4) })
	mustPanic("value overflow", func() { NewPacked(1, 1, 4).Set(0, 0, 16) })
	mustPanic("short decode buf", func() { NewPacked(1, 3, 4).Decode(0, make([]uint16, 2)) })
	mustPanic("short encode buf", func() { NewPacked(1, 3, 4).Encode(0, make([]uint16, 2)) })
}

func TestSizeBytesMatchesPaperEstimate(t *testing.T) {
	// Section 3.2: b=6, so an approximate vector costs 6/64 of the float
	// data. 1000 vectors × 20 dims: floats = 160000 bytes, packed ≈ 15000.
	p := NewPacked(1000, 20, 6)
	floatBytes := 1000 * 20 * 8
	if p.SizeBytes() > floatBytes/10 {
		t.Errorf("packed size %d bytes exceeds 1/10 of float size %d", p.SizeBytes(), floatBytes)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := NewPacked(50, 7, 6)
	for i := 0; i < 50; i++ {
		for j := 0; j < 7; j++ {
			p.Set(i, j, uint16(rng.Intn(64)))
		}
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 50 || got.Dim() != 7 || got.BitsPerDim() != 6 {
		t.Fatalf("metadata lost: %+v", got)
	}
	for i := 0; i < 50; i++ {
		for j := 0; j < 7; j++ {
			if got.Get(i, j) != p.Get(i, j) {
				t.Fatalf("cell (%d,%d) differs after round trip", i, j)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXXXXXXXXXXXXXXXXXXXXXX"),
		"truncated": func() []byte {
			var buf bytes.Buffer
			p := NewPacked(10, 4, 8)
			p.Write(&buf)
			return buf.Bytes()[:buf.Len()-4]
		}(),
	} {
		if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", name, err)
		}
	}
}

// Property: any sequence of Set operations is faithfully read back.
func TestPackedQuick(t *testing.T) {
	f := func(vals []uint16, bSeed uint8) bool {
		b := int(bSeed)%MaxBitsPerDim + 1
		dim := 3
		count := (len(vals) + dim - 1) / dim
		if count == 0 {
			return true
		}
		p := NewPacked(count, dim, b)
		mask := uint16(1<<b - 1)
		for idx, v := range vals {
			p.Set(idx/dim, idx%dim, v&mask)
		}
		for idx, v := range vals {
			if p.Get(idx/dim, idx%dim) != v&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
