package bits

import (
	"bytes"
	"testing"
)

// FuzzRead ensures the packed-vector parser never panics and that any
// successfully parsed store round-trips.
func FuzzRead(f *testing.F) {
	p := NewPacked(5, 3, 6)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			p.Set(i, j, uint16(i*3+j))
		}
	}
	var valid bytes.Buffer
	if err := p.Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:8])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.Dim() <= 0 || got.BitsPerDim() <= 0 {
			t.Fatalf("parsed implausible store: %d dims, %d bits", got.Dim(), got.BitsPerDim())
		}
		var buf bytes.Buffer
		if err := got.Write(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if again.Count() != got.Count() {
			t.Fatal("round trip changed count")
		}
	})
}
