package bits

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func randomRows(rng *rand.Rand, count, dim, b int) [][]uint8 {
	rows := make([][]uint8, count)
	for i := range rows {
		row := make([]uint8, dim)
		for j := range row {
			row[j] = uint8(rng.Intn(1 << b))
		}
		rows[i] = row
	}
	return rows
}

func TestPackedRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for b := 4; b <= 8; b++ {
		for _, dim := range []int{1, 2, 5, 6, 7, 10, 16, 33} {
			rows := randomRows(rng, 19, dim, b)
			p := NewPackedRows(len(rows), dim, b)
			for i, row := range rows {
				p.EncodeRow(i, row)
			}
			dst := make([]uint8, dim)
			for i, row := range rows {
				p.DecodeRow(i, dst)
				for j := range row {
					if dst[j] != row[j] {
						t.Fatalf("b=%d dim=%d: row %d dim %d = %d, want %d", b, dim, i, j, dst[j], row[j])
					}
				}
				if !p.EqualRow(i, row) {
					t.Fatalf("b=%d dim=%d: EqualRow(%d) = false for own row", b, dim, i)
				}
			}
			// EqualRow detects a single-code difference anywhere.
			for trial := 0; trial < 10; trial++ {
				i := rng.Intn(len(rows))
				j := rng.Intn(dim)
				mut := append([]uint8(nil), rows[i]...)
				mut[j] ^= 1
				if p.EqualRow(i, mut) {
					t.Fatalf("b=%d dim=%d: EqualRow missed a difference at (%d,%d)", b, dim, i, j)
				}
			}
		}
	}
}

func TestPackedRowsStride(t *testing.T) {
	// b=5 → 12 codes/word with 4 padding bits; dim=16 needs 2 words.
	p := NewPackedRows(3, 16, 5)
	if p.CodesPerWord() != 12 || p.WordsPerRow() != 2 {
		t.Fatalf("cpw=%d wpr=%d, want 12, 2", p.CodesPerWord(), p.WordsPerRow())
	}
	if len(p.Words()) != 6 {
		t.Fatalf("words len %d, want 6", len(p.Words()))
	}
	// Row slices are disjoint fixed-stride windows.
	row := make([]uint8, 16)
	for j := range row {
		row[j] = uint8(j)
	}
	p.EncodeRow(1, row)
	if p.Words()[0] != 0 || p.Words()[1] != 0 || p.Words()[4] != 0 || p.Words()[5] != 0 {
		t.Fatal("EncodeRow wrote outside its row's words")
	}
}

func TestPackedRowsDerivations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for b := 4; b <= 8; b++ {
		dim := 9
		rows := randomRows(rng, 8, dim, b)
		p := NewPackedRows(len(rows), dim, b)
		for i, row := range rows {
			p.EncodeRow(i, row)
		}
		// Append: derived store byte-identical to fresh encoding.
		extra := randomRows(rng, 1, dim, b)[0]
		ap := p.WithAppendedRow(extra)
		fresh := NewPackedRows(len(rows)+1, dim, b)
		for i, row := range append(append([][]uint8{}, rows...), extra) {
			fresh.EncodeRow(i, row)
		}
		if !ap.Equal(fresh) {
			t.Fatalf("b=%d: WithAppendedRow differs from fresh encoding", b)
		}
		if ap.Count() != len(rows)+1 {
			t.Fatalf("b=%d: append count %d", b, ap.Count())
		}
		// Remove each position: derived store byte-identical to fresh.
		for rm := 0; rm < len(rows); rm++ {
			dp := p.WithRemovedRow(rm)
			want := NewPackedRows(len(rows)-1, dim, b)
			k := 0
			for i, row := range rows {
				if i == rm {
					continue
				}
				want.EncodeRow(k, row)
				k++
			}
			if !dp.Equal(want) {
				t.Fatalf("b=%d: WithRemovedRow(%d) differs from fresh encoding", b, rm)
			}
		}
		// Receiver untouched by derivations.
		for i, row := range rows {
			if !p.EqualRow(i, row) {
				t.Fatalf("b=%d: derivation mutated receiver row %d", b, i)
			}
		}
	}
}

func TestPackedRowsSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := randomRows(rng, 23, 11, 6)
	p := NewPackedRows(len(rows), 11, 6)
	for i, row := range rows {
		p.EncodeRow(i, row)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatal("round trip lost data")
	}
	if got.Count() != 23 || got.Dim() != 11 || got.BitsPerDim() != 6 {
		t.Fatalf("metadata lost: count=%d dim=%d b=%d", got.Count(), got.Dim(), got.BitsPerDim())
	}
}

func TestReadRowsRejectsGarbage(t *testing.T) {
	valid := func() []byte {
		p := NewPackedRows(4, 6, 5)
		row := []uint8{1, 2, 3, 4, 5, 6}
		for i := 0; i < 4; i++ {
			p.EncodeRow(i, row)
		}
		var buf bytes.Buffer
		p.Write(&buf)
		return buf.Bytes()
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXXXXXXXXXXXXXXXXXXXXXX"),
		"truncated": valid()[:len(valid())-3],
		"bad bits": func() []byte {
			d := valid()
			d[4] = 99
			return d
		}(),
		"nonzero padding": func() []byte {
			// b=5, dim=6 → one word per row, bits 30..63 are padding.
			d := valid()
			d[len(d)-1] |= 0x80
			return d
		}(),
	}
	for name, data := range cases {
		if _, err := ReadRows(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", name, err)
		}
	}
	// The packed-vector magic is not accepted here and vice versa.
	var buf bytes.Buffer
	NewPacked(2, 3, 4).Write(&buf)
	if _, err := ReadRows(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadFormat) {
		t.Errorf("ReadRows accepted a Packed stream: %v", err)
	}
}

func TestPackedRowsPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("b=0", func() { NewPackedRows(1, 1, 0) })
	mustPanic("b too big", func() { NewPackedRows(1, 1, MaxBitsPerDim+1) })
	mustPanic("negative count", func() { NewPackedRows(-1, 1, 4) })
	mustPanic("zero dim", func() { NewPackedRows(1, 0, 4) })
	mustPanic("value overflow", func() { NewPackedRows(1, 1, 4).EncodeRow(0, []uint8{16}) })
	mustPanic("short encode", func() { NewPackedRows(1, 3, 4).EncodeRow(0, make([]uint8, 2)) })
	mustPanic("short decode", func() { NewPackedRows(1, 3, 4).DecodeRow(0, make([]uint8, 2)) })
	mustPanic("remove out of range", func() { NewPackedRows(1, 3, 4).WithRemovedRow(1) })
}
