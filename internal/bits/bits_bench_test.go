package bits

import (
	"math/rand"
	"testing"
)

func benchPacked(b *testing.B, bitsPerDim int) (*Packed, []uint16) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	p := NewPacked(10000, 6, bitsPerDim)
	buf := make([]uint16, 6)
	mask := uint16(1<<bitsPerDim - 1)
	for i := 0; i < 10000; i++ {
		for j := 0; j < 6; j++ {
			p.Set(i, j, uint16(rng.Intn(1<<bitsPerDim))&mask)
		}
	}
	return p, buf
}

func BenchmarkDecode6bit(b *testing.B) {
	p, buf := benchPacked(b, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Decode(i%10000, buf)
	}
}

func BenchmarkEncode6bit(b *testing.B) {
	p, buf := benchPacked(b, 6)
	for j := range buf {
		buf[j] = uint16(j)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Encode(i%10000, buf)
	}
}
