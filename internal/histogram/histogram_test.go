package histogram

import (
	"math"
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/vec"
)

func TestNewGroupsWeights(t *testing.T) {
	weights := []vec.Vector{
		{0.1, 0.9}, // cell (0, 4) at c=5
		{0.15, 0.85},
		{0.9, 0.1}, // cell (4, 0)
	}
	h, err := New(weights, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets()) != 2 {
		t.Fatalf("got %d buckets, want 2", len(h.Buckets()))
	}
	b0 := h.Buckets()[0]
	if len(b0.Weights) != 2 || b0.Weights[0] != 0 || b0.Weights[1] != 1 {
		t.Errorf("bucket 0 weights = %v", b0.Weights)
	}
	if b0.Lo[0] != 0 || b0.Lo[1] != 0.8 || b0.Hi[0] != 0.2 || b0.Hi[1] != 1.0 {
		t.Errorf("bucket 0 box = [%v, %v]", b0.Lo, b0.Hi)
	}
}

func TestEveryWeightInItsBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	W := dataset.GenerateWeights(rng, dataset.Clustered, 2000, 5).Points
	h, err := New(W, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(W))
	for _, b := range h.Buckets() {
		for _, wi := range b.Weights {
			if seen[wi] {
				t.Fatalf("weight %d assigned twice", wi)
			}
			seen[wi] = true
			for j, x := range W[wi] {
				if x < b.Lo[j]-1e-12 || x > b.Hi[j]+1e-12 {
					t.Fatalf("weight %d dim %d = %v outside bucket [%v, %v]",
						wi, j, x, b.Lo[j], b.Hi[j])
				}
			}
		}
	}
	for wi, ok := range seen {
		if !ok {
			t.Fatalf("weight %d not assigned to any bucket", wi)
		}
	}
}

func TestBoundaryValueOne(t *testing.T) {
	// A weight of exactly 1.0 must clamp into the last interval.
	h, err := New([]vec.Vector{{1, 0}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := h.Buckets()[0]
	if b.Hi[0] != 1.0 || b.Lo[0] != 0.8 {
		t.Errorf("value 1.0 landed in [%v, %v]", b.Lo[0], b.Hi[0])
	}
}

func TestRejectsBadWeights(t *testing.T) {
	if _, err := New([]vec.Vector{{0.5, 1.5}}, 5); err == nil {
		t.Error("out-of-domain weight accepted")
	}
	if _, err := New([]vec.Vector{{0.5, -0.1}}, 5); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := New([]vec.Vector{{0.5, math.NaN()}}, 5); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := New([]vec.Vector{{0.5, 0.5}, {0.5}}, 5); err == nil {
		t.Error("ragged weights accepted")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("c=0", func() { New([]vec.Vector{{0.5}}, 0) })
	mustPanic("empty", func() { New(nil, 5) })
}

// Section 5.1's observation: for fixed |W|, raising d makes nearly every
// weight occupy its own bucket, so group pruning degenerates.
func TestOccupancyGrowsWithDimension(t *testing.T) {
	// Simplex weights concentrate near 1/d per component, so at the
	// paper's c=5 the effect is partially masked by all cells collapsing
	// into the lowest interval (the other face of the same degeneration:
	// the boxes stop resolving anything). c=10 exposes the blow-up.
	rng := rand.New(rand.NewSource(2))
	ratio := func(d int) float64 {
		W := dataset.GenerateWeights(rng, dataset.Uniform, 3000, d).Points
		h, err := New(W, 10)
		if err != nil {
			t.Fatal(err)
		}
		return h.OccupancyRatio(len(W))
	}
	low := ratio(2)
	high := ratio(10)
	if low > 0.05 {
		t.Errorf("2-d occupancy ratio %v: expected strong grouping", low)
	}
	if high < 0.5 {
		t.Errorf("10-d occupancy ratio %v: expected bucket-per-weight degeneration", high)
	}
}

func TestConceptualBuckets(t *testing.T) {
	h, err := New([]vec.Vector{{0.1, 0.2, 0.3, 0.1, 0.1, 0.1, 0.05, 0.03, 0.01, 0.01}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: c=5, d=10 → ≈9 million conceptual buckets.
	if got := h.ConceptualBuckets(); got != math.Pow(5, 10) {
		t.Errorf("ConceptualBuckets = %v", got)
	}
}

func TestOccupancyRatioEmptyDenominator(t *testing.T) {
	h, err := New([]vec.Vector{{0.5, 0.5}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.OccupancyRatio(0) != 0 {
		t.Error("zero denominator should yield 0")
	}
}
