// Package histogram implements the d-dimensional equi-width histogram MPA
// uses to group the weight set W (Zhang et al., reused by the paper in
// Sections 2 and 5.1): each dimension of the weight space [0, 1]^d is cut
// into c equal intervals, giving c^d conceptual buckets. Only occupied
// buckets are materialized (sparse map), which is also what makes the
// paper's Section 5.1 criticism measurable: the number of occupied buckets
// approaches |W| as d grows, destroying the grouping benefit.
package histogram

import (
	"fmt"
	"math"

	"gridrank/internal/vec"
)

// DefaultIntervals is the paper's suggested setting c = 5 (Section 5.1).
const DefaultIntervals = 5

// Bucket is one occupied histogram cell: the weight-space box it covers
// and the indexes of the weight vectors inside it.
type Bucket struct {
	// Lo and Hi bound the cell in weight space; they are the exact corners
	// used for group-level score bounds.
	Lo, Hi vec.Vector
	// Weights are indexes into the source weight set.
	Weights []int
}

// Histogram groups a weight set into occupied equi-width cells.
type Histogram struct {
	dim       int
	intervals int
	buckets   []*Bucket
}

// New builds the histogram of the given weight set with c intervals per
// dimension. Weights must lie in [0, 1]. It panics on invalid shape
// parameters and returns an error for out-of-domain weight values.
func New(weights []vec.Vector, c int) (*Histogram, error) {
	if c < 1 {
		panic(fmt.Sprintf("histogram: intervals %d < 1", c))
	}
	if len(weights) == 0 {
		panic("histogram: empty weight set")
	}
	dim := len(weights[0])
	h := &Histogram{dim: dim, intervals: c}
	byKey := make(map[string]*Bucket)
	keyBuf := make([]byte, dim)
	for wi, w := range weights {
		if len(w) != dim {
			return nil, fmt.Errorf("histogram: weight %d has dimension %d, want %d", wi, len(w), dim)
		}
		for j, x := range w {
			if math.IsNaN(x) || x < 0 || x > 1 {
				return nil, fmt.Errorf("histogram: weight %d component %d = %v outside [0, 1]", wi, j, x)
			}
			cell := int(x * float64(c))
			if cell >= c {
				cell = c - 1
			}
			keyBuf[j] = byte(cell)
		}
		k := string(keyBuf)
		b := byKey[k]
		if b == nil {
			lo := make(vec.Vector, dim)
			hi := make(vec.Vector, dim)
			for j := range lo {
				cell := float64(keyBuf[j])
				lo[j] = cell / float64(c)
				hi[j] = (cell + 1) / float64(c)
			}
			b = &Bucket{Lo: lo, Hi: hi}
			byKey[k] = b
			h.buckets = append(h.buckets, b)
		}
		b.Weights = append(b.Weights, wi)
	}
	return h, nil
}

// Dim returns the weight dimensionality.
func (h *Histogram) Dim() int { return h.dim }

// Intervals returns c, the per-dimension interval count.
func (h *Histogram) Intervals() int { return h.intervals }

// Buckets returns the occupied cells in insertion order. The slice is the
// histogram's own storage; callers must not modify it.
func (h *Histogram) Buckets() []*Bucket { return h.buckets }

// OccupancyRatio returns occupied buckets / |W|: the Section 5.1 argument
// in one number. Near 0 means effective grouping; near 1 means every
// weight sits in its own cell and group pruning degenerates to a scan.
func (h *Histogram) OccupancyRatio(totalWeights int) float64 {
	if totalWeights == 0 {
		return 0
	}
	return float64(len(h.buckets)) / float64(totalWeights)
}

// ConceptualBuckets returns c^d as a float (it overflows int64 quickly:
// c=5, d=27 already exceeds 2^63), the denominator of Section 5.1's
// "9 million buckets for d=10" observation.
func (h *Histogram) ConceptualBuckets() float64 {
	return math.Pow(float64(h.intervals), float64(h.dim))
}
