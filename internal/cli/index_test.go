package cli

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"gridrank"
)

// buildIndexFile generates data sets and builds an index file via the
// CLI path, returning the index path.
func buildIndexFile(t *testing.T) string {
	t.Helper()
	pPath, wPath := genFiles(t)
	out := filepath.Join(filepath.Dir(pPath), "index.gri")
	var buf bytes.Buffer
	err := RunIndex(&buf, []string{"build", "-products", pPath, "-prefs", wPath, "-grid", "16", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "500 products") {
		t.Fatalf("build output: %q", buf.String())
	}
	return out
}

func TestIndexBuildAndInfo(t *testing.T) {
	out := buildIndexFile(t)
	var buf bytes.Buffer
	if err := RunIndex(&buf, []string{"info", "-index", out}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"format GRI3 (heap)", "500 products", "200 preferences", "dim 4", "grid 16"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("info output missing %q: %q", want, buf.String())
		}
	}
	buf.Reset()
	if err := RunIndex(&buf, []string{"info", "-index", out, "-mmap"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "format GRI3 (") {
		t.Errorf("mmap info output missing format: %q", buf.String())
	}
	for _, want := range []string{"500 products", "200 preferences"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("mmap info output missing %q: %q", want, buf.String())
		}
	}
}

func TestIndexMutationVerbs(t *testing.T) {
	out := buildIndexFile(t)
	var buf bytes.Buffer

	// Batch insert two products (semicolon-separated vectors).
	err := RunIndex(&buf, []string{"insert-product", "-index", out,
		"-v", "1,2,3,4; 5,6,7,8"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "inserted 2 product(s) at id 500") {
		t.Fatalf("insert output: %q", buf.String())
	}

	// Delete three products by id.
	buf.Reset()
	if err := RunIndex(&buf, []string{"delete-product", "-index", out, "-i", "3,5,7"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "now 499 products") {
		t.Fatalf("delete output: %q", buf.String())
	}

	// Insert one preference, delete one.
	buf.Reset()
	if err := RunIndex(&buf, []string{"insert-pref", "-index", out, "-v", "0.25,0.25,0.25,0.25"}); err != nil {
		t.Fatal(err)
	}
	if err := RunIndex(&buf, []string{"delete-pref", "-index", out, "-i", "0"}); err != nil {
		t.Fatal(err)
	}

	// The saved file reflects every mutation and still answers queries.
	ix, err := gridrank.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumProducts() != 499 || ix.NumPreferences() != 200 {
		t.Fatalf("reloaded index is %d×%d, want 499×200", ix.NumProducts(), ix.NumPreferences())
	}
	if _, err := ix.ReverseTopK(ix.Products()[0], 5); err != nil {
		t.Fatalf("reloaded index cannot query: %v", err)
	}
}

func TestIndexVerbErrors(t *testing.T) {
	out := buildIndexFile(t)
	cases := [][]string{
		nil,            // no verb
		{"frobnicate"}, // unknown verb
		{"build"},      // missing -products/-prefs
		{"info", "-index", "/nonexistent/x.gri"},
		{"insert-product", "-index", out}, // missing -v
		{"insert-product", "-index", out, "-v", "1,zap,3,4"},    // bad component
		{"insert-product", "-index", out, "-v", "1,2"},          // wrong dim
		{"insert-pref", "-index", out, "-v", "0.9,0.9,0.9,0.9"}, // not on simplex
		{"delete-product", "-index", out},                       // missing -i
		{"delete-product", "-index", out, "-i", "nine"},         // bad id
		{"delete-product", "-index", out, "-i", "99999"},        // out of range
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := RunIndex(&buf, args); err == nil {
			t.Errorf("RunIndex(%v) succeeded, want error", args)
		}
	}
	// Failed mutations must leave the file loadable and unchanged.
	ix, err := gridrank.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumProducts() != 500 || ix.NumPreferences() != 200 {
		t.Fatalf("index changed by failed verbs: %d×%d", ix.NumProducts(), ix.NumPreferences())
	}
}
