package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func genFiles(t *testing.T) (pPath, wPath string) {
	t.Helper()
	dir := t.TempDir()
	pPath = filepath.Join(dir, "p.grd")
	wPath = filepath.Join(dir, "w.grd")
	if _, err := Generate(GenOptions{Kind: "products", Dist: "UN", N: 500, D: 4, Seed: 1, Out: pPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(GenOptions{Kind: "prefs", Dist: "UN", N: 200, D: 4, Seed: 2, Out: wPath}); err != nil {
		t.Fatal(err)
	}
	return pPath, wPath
}

func TestGenerateAndLoadBinary(t *testing.T) {
	pPath, _ := genFiles(t)
	ds, err := LoadSet(pPath)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 500 || ds.Dim != 4 {
		t.Fatalf("loaded %d×%d", ds.Len(), ds.Dim)
	}
}

func TestGenerateCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.csv")
	msg, err := Generate(GenOptions{Kind: "products", Dist: "CL", N: 100, D: 3, Seed: 3, Out: path, Format: "csv"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "100 products") {
		t.Errorf("message: %q", msg)
	}
	ds, err := LoadSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 100 {
		t.Fatalf("CSV round trip: %d rows", ds.Len())
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []GenOptions{
		{Kind: "products", Dist: "UN", N: 10, D: 2},                                    // missing out
		{Kind: "products", Dist: "UN", N: 0, D: 2, Out: "x"},                           // n=0
		{Kind: "bogus", Dist: "UN", N: 10, D: 2, Out: filepath.Join(t.TempDir(), "x")}, // bad kind
		{Kind: "products", Dist: "UN", N: 10, D: 2, Out: "/nonexistent-dir/file"},      // bad path
		{Kind: "products", Dist: "UN", N: 10, D: 2, Out: "x", Format: "parquet"},       // bad format
	}
	for i, opts := range cases {
		if _, err := Generate(opts); err == nil {
			t.Errorf("case %d should fail: %+v", i, opts)
		}
	}
	// A failed Generate must not leave its output file behind (the bad
	// -format case used to litter an empty "x" in the working directory).
	if _, err := os.Stat("x"); !os.IsNotExist(err) {
		os.Remove("x")
		t.Error(`failed Generate left file "x" behind`)
	}
}

func TestRunQueryRTKAndRKR(t *testing.T) {
	pPath, wPath := genFiles(t)
	base := QueryOptions{
		PPath: pPath, WPath: wPath, K: 10, QIndex: 0,
		N: 16, Capacity: 16, Limit: 5, ShowStats: true,
	}
	for _, typ := range []string{"rtk", "rkr"} {
		for _, algoName := range []string{"gir", "sparse", "sim", "brute"} {
			opts := base
			opts.Type = typ
			opts.Algo = algoName
			var buf bytes.Buffer
			if err := RunQuery(&buf, opts); err != nil {
				t.Fatalf("%s/%s: %v", typ, algoName, err)
			}
			out := buf.String()
			if !strings.Contains(out, strings.ToUpper(typ)) {
				t.Errorf("%s/%s output missing header: %q", typ, algoName, out)
			}
			if !strings.Contains(out, "stats:") {
				t.Errorf("%s/%s output missing stats", typ, algoName)
			}
		}
	}
	// Tree algorithms on their supported query type.
	for _, c := range []struct{ typ, algoName string }{{"rtk", "bbr"}, {"rtk", "rta"}, {"rkr", "mpa"}} {
		opts := base
		opts.Type = c.typ
		opts.Algo = c.algoName
		var buf bytes.Buffer
		if err := RunQuery(&buf, opts); err != nil {
			t.Fatalf("%s/%s: %v", c.typ, c.algoName, err)
		}
	}
}

func TestRunQueryInlineVector(t *testing.T) {
	pPath, wPath := genFiles(t)
	var buf bytes.Buffer
	err := RunQuery(&buf, QueryOptions{
		PPath: pPath, WPath: wPath, Type: "rkr", Algo: "gir", K: 3,
		QIndex: -1, QRaw: "100, 200, 300, 400", N: 16, Capacity: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "position") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestRunQueryErrors(t *testing.T) {
	pPath, wPath := genFiles(t)
	base := QueryOptions{PPath: pPath, WPath: wPath, Type: "rtk", Algo: "gir", K: 5, QIndex: 0, N: 16, Capacity: 16}
	cases := []func(*QueryOptions){
		func(o *QueryOptions) { o.PPath = "" },
		func(o *QueryOptions) { o.PPath = "/missing" },
		func(o *QueryOptions) { o.Type = "bogus" },
		func(o *QueryOptions) { o.Algo = "mpa" },                    // mpa cannot answer rtk
		func(o *QueryOptions) { o.Type = "rkr"; o.Algo = "bbr" },    // bbr cannot answer rkr
		func(o *QueryOptions) { o.QIndex = -1 },                     // no query at all
		func(o *QueryOptions) { o.QIndex = 100000 },                 // out of range
		func(o *QueryOptions) { o.QIndex = -1; o.QRaw = "1,2" },     // wrong dim
		func(o *QueryOptions) { o.QIndex = -1; o.QRaw = "1,2,x,4" }, // not numeric
	}
	for i, mutate := range cases {
		opts := base
		mutate(&opts)
		var buf bytes.Buffer
		if err := RunQuery(&buf, opts); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRunQueryMismatchedDims(t *testing.T) {
	dir := t.TempDir()
	pPath := filepath.Join(dir, "p.grd")
	wPath := filepath.Join(dir, "w.grd")
	if _, err := Generate(GenOptions{Kind: "products", Dist: "UN", N: 50, D: 3, Seed: 1, Out: pPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(GenOptions{Kind: "prefs", Dist: "UN", N: 50, D: 5, Seed: 2, Out: wPath}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := RunQuery(&buf, QueryOptions{PPath: pPath, WPath: wPath, Type: "rtk", Algo: "gir", K: 5, QIndex: 0, N: 16, Capacity: 16})
	if err == nil || !strings.Contains(err.Error(), "dimension mismatch") {
		t.Errorf("err = %v", err)
	}
}

func TestFormatVector(t *testing.T) {
	if got := FormatVector([]float64{1, 2.5}); got != "(1, 2.5)" {
		t.Errorf("FormatVector = %q", got)
	}
}

func TestRunQueryExplain(t *testing.T) {
	pPath, wPath := genFiles(t)
	base := QueryOptions{
		PPath: pPath, WPath: wPath, K: 5, QIndex: 0,
		N: 16, Capacity: 16, Limit: 3, Algo: "gir", Explain: true,
	}
	for _, typ := range []string{"rtk", "rkr"} {
		opts := base
		opts.Type = typ
		var buf bytes.Buffer
		if err := RunQuery(&buf, opts); err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		out := buf.String()
		// Results first, then the EXPLAIN span tree with the full
		// pipeline phases and the scan's case breakdown.
		if !strings.Contains(out, strings.ToUpper(typ)) {
			t.Errorf("%s explain output missing results header:\n%s", typ, out)
		}
		wants := []string{
			"trace ", "load_data", "build_index", "scan",
			"case1_filtered=", "case2_filtered=", "case3_refined=",
			"filter_rate=", "products=500", "preferences=200", "k=5",
		}
		if typ == "rkr" {
			// RKR always produces k results to merge; RTK's answer set may
			// legitimately be empty, skipping the merge phase.
			wants = append(wants, "merge")
		}
		for _, want := range wants {
			if !strings.Contains(out, want) {
				t.Errorf("%s explain output missing %q:\n%s", typ, want, out)
			}
		}
		if strings.Contains(out, "trace not found") {
			t.Errorf("%s explain trace was not captured:\n%s", typ, out)
		}
	}
	// The parallel path adds per-worker spans to the tree.
	par := base
	par.Type = "rkr"
	par.Parallel = 3
	var buf bytes.Buffer
	if err := RunQuery(&buf, par); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "scan.worker") {
		t.Errorf("parallel explain output missing worker spans:\n%s", out)
	}
	// -explain requires gir: other algorithms have no span instrumentation.
	bad := base
	bad.Type = "rtk"
	bad.Algo = "brute"
	if err := RunQuery(&bytes.Buffer{}, bad); err == nil || !strings.Contains(err.Error(), "-explain") {
		t.Errorf("-explain with -algo brute should fail, got %v", err)
	}
}

func TestRunQueryParallel(t *testing.T) {
	pPath, wPath := genFiles(t)
	base := QueryOptions{
		PPath: pPath, WPath: wPath, K: 10, QIndex: 0,
		N: 16, Capacity: 16, Limit: 0,
	}
	for _, typ := range []string{"rtk", "rkr"} {
		seq := base
		seq.Type = typ
		seq.Algo = "gir"
		var want bytes.Buffer
		if err := RunQuery(&want, seq); err != nil {
			t.Fatal(err)
		}
		par := seq
		par.Parallel = 4
		var got bytes.Buffer
		if err := RunQuery(&got, par); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("%s -parallel 4 output differs from sequential:\n%s\nvs\n%s",
				typ, got.String(), want.String())
		}
	}
	// -parallel rejects negatives and non-gir algorithms.
	bad := base
	bad.Type = "rtk"
	bad.Algo = "gir"
	bad.Parallel = -1
	if err := RunQuery(&bytes.Buffer{}, bad); err == nil {
		t.Error("negative -parallel should fail")
	}
	bad.Parallel = 4
	bad.Algo = "sim"
	if err := RunQuery(&bytes.Buffer{}, bad); err == nil {
		t.Error("-parallel with -algo sim should fail")
	}
}
