// Package cli holds the testable logic behind the command-line tools
// (rrqgen, rrqquery); the main packages are thin flag-parsing wrappers.
package cli

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"gridrank/internal/algo"
	"gridrank/internal/dataset"
	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/trace"
	"gridrank/internal/vec"
)

// GenOptions configures dataset generation.
type GenOptions struct {
	Kind   string // "products" or "prefs"
	Dist   string // UN, CL, AC, NO, EX, HOUSE, COLOR, DIANPING
	N      int
	D      int
	Seed   int64
	Out    string
	Format string // "binary" or "csv"
}

// Generate creates a data set file per opts and reports what it wrote.
func Generate(opts GenOptions) (string, error) {
	if opts.Out == "" {
		return "", fmt.Errorf("-out is required")
	}
	if opts.N <= 0 {
		return "", fmt.Errorf("-n must be positive")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var ds *dataset.Dataset
	switch opts.Kind {
	case "products":
		ds = dataset.GenerateProducts(rng, dataset.Distribution(opts.Dist), opts.N, opts.D, dataset.DefaultRange)
	case "prefs":
		ds = dataset.GenerateWeights(rng, dataset.Distribution(opts.Dist), opts.N, opts.D)
	default:
		return "", fmt.Errorf("unknown -kind %q (want products or prefs)", opts.Kind)
	}
	// Validate the format before creating the file: a bad -format must
	// not leave an empty opts.Out behind.
	switch opts.Format {
	case "binary", "", "csv":
	default:
		return "", fmt.Errorf("unknown -format %q (want binary or csv)", opts.Format)
	}
	f, err := os.Create(opts.Out)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if opts.Format == "csv" {
		err = dataset.WriteCSV(f, ds)
	} else {
		err = dataset.WriteBinary(f, ds)
	}
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		// A failed write leaves no partial data set behind.
		os.Remove(opts.Out)
		return "", err
	}
	return fmt.Sprintf("wrote %d %s (%s, d=%d) to %s", ds.Len(), opts.Kind, opts.Dist, ds.Dim, opts.Out), nil
}

// LoadSet reads a data set, choosing the format by file extension
// (".csv" for CSV, anything else binary).
func LoadSet(path string) (*dataset.Dataset, error) {
	if strings.HasSuffix(path, ".csv") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadCSV(f)
	}
	return dataset.LoadBinary(path)
}

// QueryOptions configures one reverse rank query.
type QueryOptions struct {
	PPath, WPath string
	Type         string // "rtk" or "rkr"
	Algo         string // gir, sim, brute, bbr, rta, mpa
	K            int
	QIndex       int    // query product index, or -1
	QRaw         string // comma-separated query vector, or ""
	N            int    // grid partitions
	Capacity     int    // R-tree capacity
	Parallel     int    // intra-query workers for gir (0/1 = sequential)
	ShowStats    bool
	Limit        int           // max printed result rows, 0 = all
	Timeout      time.Duration // per-query deadline, 0 = none
	// Explain, when true, traces the run (data loading, index build and
	// the query's span tree with the Case-1/2/3 breakdown) and prints the
	// phase report after the results. Requires -algo gir.
	Explain bool
}

// applyParallel configures intra-query workers on algorithms that
// support them (currently gir only).
func applyParallel(a interface{ Name() string }, workers int) error {
	if workers == 0 || workers == 1 {
		return nil
	}
	if workers < 0 {
		return fmt.Errorf("-parallel must be non-negative, got %d", workers)
	}
	g, ok := a.(*algo.GIR)
	if !ok {
		return fmt.Errorf("-parallel is only supported by -algo gir, not %s", a.Name())
	}
	g.Parallelism = workers
	return nil
}

// RunQuery executes one query and writes a human-readable report to w.
// It is RunQueryCtx under a background context.
func RunQuery(w io.Writer, opts QueryOptions) error {
	return RunQueryCtx(context.Background(), w, opts)
}

// girWorkers maps the CLI's -parallel semantics (0 or 1 = sequential)
// to the algorithm layer's explicit worker count.
func girWorkers(parallel int) int {
	if parallel <= 1 {
		return 1
	}
	return parallel
}

// RunQueryCtx executes one query under ctx and writes a human-readable
// report to w. The gir algorithm honours cancellation mid-scan (it stops
// within one preference chunk); other algorithms only check the context
// before starting. opts.Timeout, when positive, bounds the query itself —
// not the data-set loading.
func RunQueryCtx(ctx context.Context, w io.Writer, opts QueryOptions) error {
	if opts.PPath == "" || opts.WPath == "" {
		return fmt.Errorf("-p and -w are required")
	}
	if opts.Explain && opts.Algo != "gir" {
		return fmt.Errorf("-explain is only supported by -algo gir, not %s", opts.Algo)
	}
	// With -explain the whole run is traced at rate 1 and the span tree
	// printed after the results; tr stays nil otherwise, making every
	// span call below a free no-op.
	var (
		tracer *trace.Tracer
		tr     *trace.Trace
	)
	if opts.Explain {
		tracer = trace.New(trace.Config{SampleRate: 1, Capacity: 4})
		tr = tracer.Start(opts.Type, trace.Parent{})
	}
	lsp := tr.StartSpan("load_data")
	P, err := LoadSet(opts.PPath)
	if err != nil {
		return fmt.Errorf("loading products: %w", err)
	}
	W, err := LoadSet(opts.WPath)
	if err != nil {
		return fmt.Errorf("loading preferences: %w", err)
	}
	lsp.SetInt("products", int64(P.Len())).SetInt("preferences", int64(W.Len())).End()
	if P.Dim != W.Dim {
		return fmt.Errorf("dimension mismatch: products %d, preferences %d", P.Dim, W.Dim)
	}
	q, err := resolveQueryVector(P, opts)
	if err != nil {
		return err
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	var c stats.Counters
	switch opts.Type {
	case "rtk":
		bsp := tr.StartSpan("build_index")
		a, err := BuildRTK(opts.Algo, P, W, opts.N, opts.Capacity)
		bsp.End()
		if err != nil {
			return err
		}
		if err := applyParallel(a, opts.Parallel); err != nil {
			return err
		}
		var res []int
		if g, ok := a.(*algo.GIR); ok {
			res, err = g.ReverseTopKTraced(ctx, q, opts.K, girWorkers(opts.Parallel), &c, tr)
		} else if err = ctx.Err(); err == nil {
			res = a.ReverseTopK(q, opts.K, &c)
		}
		if err != nil {
			return fmt.Errorf("query: %w", err)
		}
		fmt.Fprintf(w, "RTK(k=%d) via %s: %d matching preferences\n", opts.K, a.Name(), len(res))
		for i, wi := range res {
			if opts.Limit > 0 && i >= opts.Limit {
				fmt.Fprintf(w, "... and %d more\n", len(res)-opts.Limit)
				break
			}
			fmt.Fprintf(w, "  w[%d] = %s\n", wi, FormatVector(W.Points[wi]))
		}
	case "rkr":
		bsp := tr.StartSpan("build_index")
		a, err := BuildRKR(opts.Algo, P, W, opts.N, opts.Capacity)
		bsp.End()
		if err != nil {
			return err
		}
		if err := applyParallel(a, opts.Parallel); err != nil {
			return err
		}
		var res []topk.Match
		if g, ok := a.(*algo.GIR); ok {
			res, err = g.ReverseKRanksTraced(ctx, q, opts.K, girWorkers(opts.Parallel), &c, tr)
		} else if err = ctx.Err(); err == nil {
			res = a.ReverseKRanks(q, opts.K, &c)
		}
		if err != nil {
			return fmt.Errorf("query: %w", err)
		}
		fmt.Fprintf(w, "RKR(k=%d) via %s:\n", opts.K, a.Name())
		for i, m := range res {
			if opts.Limit > 0 && i >= opts.Limit {
				fmt.Fprintf(w, "... and %d more\n", len(res)-opts.Limit)
				break
			}
			fmt.Fprintf(w, "  w[%d] ranks q at position %d\n", m.WeightIndex, m.Rank+1)
		}
	default:
		return fmt.Errorf("unknown -type %q (want rtk or rkr)", opts.Type)
	}
	if opts.ShowStats {
		fmt.Fprintln(w, "stats:", c.String())
	}
	if tr != nil {
		tr.SetAttr("k", int64(opts.K))
		tr.Finish()
		fmt.Fprintln(w)
		return trace.WriteText(w, tracer.Get(tr.ID()))
	}
	return nil
}

func resolveQueryVector(P *dataset.Dataset, opts QueryOptions) (vec.Vector, error) {
	switch {
	case opts.QRaw != "":
		var q vec.Vector
		for _, field := range strings.Split(opts.QRaw, ",") {
			x, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("parsing -q: %w", err)
			}
			q = append(q, x)
		}
		if len(q) != P.Dim {
			return nil, fmt.Errorf("-q has %d values, want %d", len(q), P.Dim)
		}
		return q, nil
	case opts.QIndex >= 0:
		if opts.QIndex >= P.Len() {
			return nil, fmt.Errorf("-qi %d out of range (|P| = %d)", opts.QIndex, P.Len())
		}
		return P.Points[opts.QIndex], nil
	default:
		return nil, fmt.Errorf("one of -qi or -q is required")
	}
}

// BuildRTK constructs a reverse top-k algorithm by name.
func BuildRTK(name string, P, W *dataset.Dataset, n, capacity int) (algo.RTKAlgorithm, error) {
	switch name {
	case "gir":
		return algo.NewGIR(P.Points, W.Points, P.Range, n), nil
	case "sparse":
		return algo.NewSparseGIR(P.Points, W.Points, P.Range, n), nil
	case "sim":
		return algo.NewSIM(P.Points, W.Points), nil
	case "brute":
		return algo.NewBrute(P.Points, W.Points), nil
	case "bbr":
		return algo.NewBBR(P.Points, W.Points, capacity), nil
	case "rta":
		return algo.NewRTA(P.Points, W.Points), nil
	default:
		return nil, fmt.Errorf("algorithm %q does not answer rtk queries", name)
	}
}

// BuildRKR constructs a reverse k-ranks algorithm by name.
func BuildRKR(name string, P, W *dataset.Dataset, n, capacity int) (algo.RKRAlgorithm, error) {
	switch name {
	case "gir":
		return algo.NewGIR(P.Points, W.Points, P.Range, n), nil
	case "sparse":
		return algo.NewSparseGIR(P.Points, W.Points, P.Range, n), nil
	case "sim":
		return algo.NewSIM(P.Points, W.Points), nil
	case "brute":
		return algo.NewBrute(P.Points, W.Points), nil
	case "mpa":
		return algo.NewMPA(P.Points, W.Points, capacity, 5)
	default:
		return nil, fmt.Errorf("algorithm %q does not answer rkr queries", name)
	}
}

// FormatVector renders a vector compactly for CLI output.
func FormatVector(v vec.Vector) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatFloat(x, 'g', 4, 64)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
