package cli

// Index-file verbs behind the rrqindex tool: build an index from data
// set files, inspect one, and apply insert/delete mutations. Every
// mutation verb runs Load -> mutate -> Save, so writes go through the
// library's atomic save (temp file + fsync + rename) and a crash at any
// point leaves the previous index intact.

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gridrank"
	"gridrank/internal/vec"
)

// RunIndex dispatches an rrqindex verb: build, info, insert-product,
// delete-product, insert-pref or delete-pref. args holds the verb
// followed by its flags.
func RunIndex(w io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rrqindex <build|info|insert-product|delete-product|insert-pref|delete-pref> [flags]")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "build":
		return runIndexBuild(w, rest)
	case "info":
		return runIndexInfo(w, rest)
	case "insert-product":
		return runIndexInsert(w, rest, "product")
	case "insert-pref":
		return runIndexInsert(w, rest, "preference")
	case "delete-product":
		return runIndexDelete(w, rest, "product")
	case "delete-pref":
		return runIndexDelete(w, rest, "preference")
	default:
		return fmt.Errorf("unknown verb %q", verb)
	}
}

func runIndexBuild(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	fs.SetOutput(w)
	products := fs.String("products", "", "product data set file")
	prefs := fs.String("prefs", "", "preference data set file")
	grid := fs.Int("grid", 0, "grid partitions per axis (0 = auto)")
	packedBits := fs.Int("packed-bits", 0, "bit-packed cell rows at this width, 4-8 bits per dimension (0 = float64 layout)")
	out := fs.String("out", "index.gri", "output index file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *products == "" || *prefs == "" {
		return fmt.Errorf("build: -products and -prefs are required")
	}
	P, err := LoadSet(*products)
	if err != nil {
		return err
	}
	W, err := LoadSet(*prefs)
	if err != nil {
		return err
	}
	ix, err := gridrank.New(toVectors(P.Points), toVectors(W.Points),
		&gridrank.Options{GridPartitions: *grid, PackedBits: *packedBits})
	if err != nil {
		return err
	}
	if err := ix.Save(*out); err != nil {
		return err
	}
	fmt.Fprintf(w, "built %s: %d products, %d preferences, dim %d, grid %d, layout %s\n",
		*out, ix.NumProducts(), ix.NumPreferences(), ix.Dim(), ix.GridPartitions(),
		layoutString(ix.Layout()))
	return nil
}

// layoutString renders an index layout for the build and info verbs.
func layoutString(lay gridrank.Layout) string {
	if !lay.Packed {
		return "float64"
	}
	return fmt.Sprintf("packed %d-bit (x%d kernel)", lay.BitsPerDim, lay.RowBlock)
}

func runIndexInfo(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	fs.SetOutput(w)
	path := fs.String("index", "index.gri", "index file")
	mmap := fs.Bool("mmap", false, "memory-map the file (GRI3) instead of reading it onto the heap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	open := gridrank.Load
	if *mmap {
		open = gridrank.LoadMmap
	}
	ix, err := open(*path)
	if err != nil {
		return err
	}
	defer ix.Close()
	fmt.Fprintf(w, "%s: format %s (%s), %d products, %d preferences, dim %d, grid %d, %d point groups, %d weight groups, %d bytes grid memory, layout %s\n",
		*path, ix.Format(), ix.Resident(), ix.NumProducts(), ix.NumPreferences(), ix.Dim(), ix.GridPartitions(),
		ix.PointGroups(), ix.WeightGroups(), ix.GridMemoryBytes(), layoutString(ix.Layout()))
	return nil
}

func runIndexInsert(w io.Writer, args []string, kind string) error {
	fs := flag.NewFlagSet("insert-"+kind, flag.ContinueOnError)
	fs.SetOutput(w)
	path := fs.String("index", "index.gri", "index file")
	raw := fs.String("v", "", `vectors to insert: "0.1,0.2" or batch "0.1,0.2;0.3,0.4"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	vs, err := parseVectors(*raw)
	if err != nil {
		return err
	}
	ix, err := gridrank.Load(*path)
	if err != nil {
		return err
	}
	var first int
	if kind == "product" {
		first, err = ix.InsertProducts(vs)
	} else {
		first, err = ix.InsertPreferences(vs)
	}
	if err != nil {
		return err
	}
	if err := ix.Save(*path); err != nil {
		return err
	}
	fmt.Fprintf(w, "inserted %d %s(s) at id %d into %s (now %d products, %d preferences)\n",
		len(vs), kind, first, *path, ix.NumProducts(), ix.NumPreferences())
	return nil
}

func runIndexDelete(w io.Writer, args []string, kind string) error {
	fs := flag.NewFlagSet("delete-"+kind, flag.ContinueOnError)
	fs.SetOutput(w)
	path := fs.String("index", "index.gri", "index file")
	raw := fs.String("i", "", `ids to delete: "3" or batch "3,5,7"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids, err := parseIDs(*raw)
	if err != nil {
		return err
	}
	ix, err := gridrank.Load(*path)
	if err != nil {
		return err
	}
	if kind == "product" {
		err = ix.DeleteProducts(ids)
	} else {
		err = ix.DeletePreferences(ids)
	}
	if err != nil {
		return err
	}
	if err := ix.Save(*path); err != nil {
		return err
	}
	fmt.Fprintf(w, "deleted %d %s(s) from %s (now %d products, %d preferences)\n",
		len(ids), kind, *path, ix.NumProducts(), ix.NumPreferences())
	return nil
}

// toVectors adapts dataset rows to the public Vector type (both are
// []float64 under the hood; the copy is of headers only).
func toVectors(rows []vec.Vector) []gridrank.Vector {
	out := make([]gridrank.Vector, len(rows))
	for i, r := range rows {
		out[i] = gridrank.Vector(r)
	}
	return out
}

// parseVectors parses one or more comma-separated vectors joined by
// semicolons: "0.1,0.2;0.3,0.4".
func parseVectors(s string) ([]gridrank.Vector, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-v is required")
	}
	parts := strings.Split(s, ";")
	out := make([]gridrank.Vector, 0, len(parts))
	for _, part := range parts {
		fields := strings.Split(part, ",")
		v := make(gridrank.Vector, 0, len(fields))
		for _, f := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("bad vector component %q", f)
			}
			v = append(v, x)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseIDs parses a comma-separated id list: "3" or "3,5,7".
func parseIDs(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-i is required")
	}
	fields := strings.Split(s, ",")
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		id, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad id %q", f)
		}
		out = append(out, id)
	}
	return out, nil
}
