package cli

// The rrqdiag tool: one-shot diagnostics capture for incident forensics.
// Three modes, mutually exclusive:
//
//	rrqdiag -server http://localhost:8080 -out rrq-diag.tar.gz
//	rrqdiag -index catalogue.gri [-mmap] -out rrq-diag.tar.gz
//	rrqdiag -inspect rrq-diag.tar.gz
//
// Server mode fetches GET /debug/bundle from a live rrqserver — the
// whole point-in-time capture (goroutines, runtime stats, OpenMetrics
// snapshot, flight-recorder digests, kept traces, index metadata,
// sanitized config) assembled in one instant on the server. Index mode
// builds a smaller bundle locally from an index file when no server is
// running. Inspect mode validates any bundle's manifest (sizes and
// SHA-256 per entry, no missing or unlisted files) and prints its
// contents. Every fetched or built bundle is validated before it is
// written, so a truncated download never lands on disk as a plausible
// artifact.

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gridrank"
	"gridrank/internal/diag"
)

// RunDiag runs the rrqdiag tool against args, writing human output to w.
func RunDiag(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rrqdiag", flag.ContinueOnError)
	fs.SetOutput(w)
	server := fs.String("server", "", "base URL of a live rrqserver; fetches its /debug/bundle")
	index := fs.String("index", "", "index file; builds a local bundle without a server")
	useMmap := fs.Bool("mmap", false, "memory-map the -index file (GRI3) instead of reading it onto the heap")
	inspect := fs.String("inspect", "", "existing bundle to validate and summarize")
	out := fs.String("out", "rrq-diag.tar.gz", "output bundle path (server and index modes)")
	timeout := fs.Duration("timeout", 30*time.Second, "HTTP timeout for -server mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	modes := 0
	for _, set := range []bool{*server != "", *index != "", *inspect != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -server, -index or -inspect is required")
	}
	if *useMmap && *index == "" {
		return fmt.Errorf("-mmap requires -index")
	}
	switch {
	case *inspect != "":
		return inspectBundle(w, *inspect)
	case *server != "":
		return fetchBundle(w, *server, *out, *timeout)
	default:
		return indexBundle(w, *index, *useMmap, *out)
	}
}

// fetchBundle downloads a live server's bundle, validates it, and only
// then writes it to disk.
func fetchBundle(w io.Writer, base, out string, timeout time.Duration) error {
	url := strings.TrimSuffix(base, "/") + "/debug/bundle"
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch %s: status %s", url, resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("fetch %s: %w", url, err)
	}
	m, files, err := diag.ReadBundle(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("fetched bundle unreadable: %w", err)
	}
	if err := diag.Validate(m, files); err != nil {
		return fmt.Errorf("fetched bundle failed validation: %w", err)
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d bytes, %d entries, source %s)\n", out, len(raw), len(m.Entries), m.Source)
	return summarize(w, m)
}

// indexBundle builds a local bundle from an index file: process state
// plus the index's own metadata and flight counters. It is the
// no-server fallback — less than the server's capture (no metrics
// scrape, traces or live config), but enough to answer "what was this
// index and what shape is this process in".
func indexBundle(w io.Writer, path string, useMmap bool, out string) error {
	var (
		ix  *gridrank.Index
		err error
	)
	if useMmap {
		ix, err = gridrank.LoadMmap(path)
	} else {
		ix, err = gridrank.Load(path)
	}
	if err != nil {
		return err
	}
	defer ix.Close()

	lay := ix.Layout()
	meta := map[string]interface{}{
		"file":            path,
		"dim":             ix.Dim(),
		"epoch":           ix.Epoch(),
		"products":        ix.NumProducts(),
		"preferences":     ix.NumPreferences(),
		"pointGroups":     ix.PointGroups(),
		"weightGroups":    ix.WeightGroups(),
		"gridPartitions":  ix.GridPartitions(),
		"gridMemoryBytes": ix.GridMemoryBytes(),
		"format":          ix.Format(),
		"resident":        ix.Resident(),
		"layout": map[string]interface{}{
			"packed":     lay.Packed,
			"bitsPerDim": lay.BitsPerDim,
			"rowBlock":   lay.RowBlock,
		},
	}
	flight := map[string]interface{}{"enabled": ix.FlightEnabled()}
	if ix.FlightEnabled() {
		flight["counts"] = ix.FlightCounts()
		flight["records"] = ix.FlightRecords()
	}
	files := []diag.File{
		{Name: "goroutines.txt", Data: diag.Goroutines()},
		{Name: "runtime.json", Data: diag.RuntimeSnapshot()},
		{Name: "index.json", Data: diag.MustJSON(meta)},
		{Name: "flight.json", Data: diag.MustJSON(flight)},
	}
	var buf bytes.Buffer
	if err := diag.WriteBundle(&buf, "index", files); err != nil {
		return err
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d bytes, %d entries, source index)\n", out, buf.Len(), len(files))
	return nil
}

// inspectBundle validates a bundle on disk and prints its manifest.
func inspectBundle(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, files, err := diag.ReadBundle(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := diag.Validate(m, files); err != nil {
		return fmt.Errorf("%s: validation failed: %w", path, err)
	}
	fmt.Fprintf(w, "%s: valid (source %s, created %s, %s)\n",
		path, m.Source, m.CreatedAt.Format(time.RFC3339), m.GoVersion)
	return summarize(w, m)
}

func summarize(w io.Writer, m diag.Manifest) error {
	for _, e := range m.Entries {
		fmt.Fprintf(w, "  %-20s %8d bytes  sha256:%s\n", e.Name, e.Bytes, e.SHA256[:12])
	}
	return nil
}
