package cli

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridrank"
	"gridrank/internal/diag"
)

// savedIndex builds a small index and saves it under t.TempDir.
func savedIndex(t *testing.T) string {
	t.Helper()
	P, err := gridrank.GenerateProducts(7, gridrank.Uniform, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	W, err := gridrank.GeneratePreferences(8, gridrank.Uniform, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := gridrank.New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.gri")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// readBundleFile opens, parses and manifest-validates a bundle on disk.
func readBundleFile(t *testing.T, path string) (diag.Manifest, map[string][]byte) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, files, err := diag.ReadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("bundle unreadable: %v", err)
	}
	if err := diag.Validate(m, files); err != nil {
		t.Fatalf("bundle invalid: %v", err)
	}
	return m, files
}

func TestRunDiagIndexMode(t *testing.T) {
	ixPath := savedIndex(t)
	out := filepath.Join(t.TempDir(), "bundle.tar.gz")
	var sb strings.Builder
	if err := RunDiag(&sb, []string{"-index", ixPath, "-out", out}); err != nil {
		t.Fatalf("RunDiag: %v", err)
	}
	m, files := readBundleFile(t, out)
	if m.Source != "index" {
		t.Errorf("source = %q, want index", m.Source)
	}
	for _, name := range []string{"goroutines.txt", "runtime.json", "index.json", "flight.json"} {
		if files[name] == nil {
			t.Errorf("bundle missing %s", name)
		}
	}
	if !strings.Contains(string(files["index.json"]), `"products": 200`) {
		t.Errorf("index.json missing product count: %s", files["index.json"])
	}
	if !strings.Contains(sb.String(), "wrote "+out) {
		t.Errorf("missing confirmation line: %q", sb.String())
	}

	// The same bundle must pass -inspect.
	sb.Reset()
	if err := RunDiag(&sb, []string{"-inspect", out}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if !strings.Contains(sb.String(), "valid") || !strings.Contains(sb.String(), "index.json") {
		t.Errorf("inspect output incomplete: %q", sb.String())
	}
}

func TestRunDiagServerMode(t *testing.T) {
	// A fake rrqserver serving a canned, well-formed bundle.
	var canned bytes.Buffer
	if err := diag.WriteBundle(&canned, "server", []diag.File{
		{Name: "goroutines.txt", Data: diag.Goroutines()},
		{Name: "config.json", Data: []byte(`{"otlpConfigured":false}`)},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/bundle" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/gzip")
		w.Write(canned.Bytes())
	}))
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "fetched.tar.gz")
	var sb strings.Builder
	if err := RunDiag(&sb, []string{"-server", srv.URL, "-out", out}); err != nil {
		t.Fatalf("RunDiag -server: %v", err)
	}
	m, files := readBundleFile(t, out)
	if m.Source != "server" || files["config.json"] == nil {
		t.Errorf("fetched bundle malformed: %+v", m)
	}
}

func TestRunDiagRejectsCorruptDownload(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("this is not a tar.gz"))
	}))
	defer srv.Close()
	out := filepath.Join(t.TempDir(), "bad.tar.gz")
	var sb strings.Builder
	if err := RunDiag(&sb, []string{"-server", srv.URL, "-out", out}); err == nil {
		t.Fatal("corrupt download accepted")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("corrupt download written to disk anyway")
	}
}

func TestRunDiagModeValidation(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{},
		{"-server", "http://x", "-index", "y"},
		{"-mmap"},
	} {
		if err := RunDiag(&sb, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
