package cache

import (
	"reflect"
	"testing"
	"time"
)

var (
	q1 = []float64{0.6, 0.7}
	q2 = []float64{0.2, 0.3}
	q3 = []float64{0.8, 0.2}
)

func TestLookupMissAndHit(t *testing.T) {
	c := New(Config{})
	if _, _, ok := c.LookupTopK(q1, 5); ok {
		t.Fatal("hit on empty cache")
	}
	c.StoreTopK(q1, 5, 3, []int{1, 2})
	res, ep, ok := c.LookupTopK(q1, 5)
	if !ok || ep != 3 || !reflect.DeepEqual(res, []int{1, 2}) {
		t.Fatalf("LookupTopK = %v, %d, %v", res, ep, ok)
	}
	// The returned slice is a copy: corrupting it must not corrupt the
	// entry.
	res[0] = 99
	res2, _, _ := c.LookupTopK(q1, 5)
	if !reflect.DeepEqual(res2, []int{1, 2}) {
		t.Fatalf("entry aliased by returned slice: %v", res2)
	}
	cs := c.Counts()
	if cs.Hits != 2 || cs.Misses != 1 || cs.Stores != 1 {
		t.Fatalf("counters = %+v", cs)
	}
}

func TestKeyIsolation(t *testing.T) {
	c := New(Config{})
	c.StoreTopK(q1, 5, 0, []int{1})
	c.StoreKRanks(q1, 5, 0, []Match{{WeightIndex: 2, Rank: 0}})
	if _, _, ok := c.LookupTopK(q2, 5); ok {
		t.Fatal("hit for a different query vector")
	}
	if _, _, ok := c.LookupTopK(q1, 6); ok {
		t.Fatal("hit for a different k")
	}
	// Kinds never alias even at the same (q, k).
	ints, _, ok := c.LookupTopK(q1, 5)
	if !ok || !reflect.DeepEqual(ints, []int{1}) {
		t.Fatalf("topk entry = %v, %v", ints, ok)
	}
	ms, _, ok := c.LookupKRanks(q1, 5)
	if !ok || !reflect.DeepEqual(ms, []Match{{WeightIndex: 2, Rank: 0}}) {
		t.Fatalf("kranks entry = %v, %v", ms, ok)
	}
}

func TestEmptyAnswerHitIsNil(t *testing.T) {
	c := New(Config{})
	c.StoreTopK(q1, 5, 0, nil)
	res, _, ok := c.LookupTopK(q1, 5)
	if !ok {
		t.Fatal("miss for stored empty answer")
	}
	if res != nil {
		t.Fatalf("empty answer hit = %v, want nil (matching the scan)", res)
	}
}

func TestStoreRejectedBelowHead(t *testing.T) {
	c := New(Config{})
	c.SetHead(5)
	c.StoreTopK(q1, 5, 4, []int{1}) // computed against a pre-head epoch
	if _, _, ok := c.LookupTopK(q1, 5); ok {
		t.Fatal("stale store was accepted")
	}
	if got := c.Counts().RejectedStores; got != 1 {
		t.Fatalf("RejectedStores = %d, want 1", got)
	}
	c.StoreTopK(q1, 5, 5, []int{1}) // at-head stores are fine
	if _, _, ok := c.LookupTopK(q1, 5); !ok {
		t.Fatal("at-head store was rejected")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Size: 2})
	c.StoreTopK(q1, 5, 0, []int{1})
	c.StoreTopK(q2, 5, 0, []int{2})
	// Touch q1 so q2 is the LRU victim.
	if _, _, ok := c.LookupTopK(q1, 5); !ok {
		t.Fatal("q1 missing")
	}
	c.StoreTopK(q3, 5, 0, []int{3})
	if _, _, ok := c.LookupTopK(q2, 5); ok {
		t.Fatal("LRU entry survived past capacity")
	}
	if _, _, ok := c.LookupTopK(q1, 5); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, _, ok := c.LookupTopK(q3, 5); !ok {
		t.Fatal("newest entry missing")
	}
	if got := c.Counts().Evictions; got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{TTL: time.Minute, Now: func() time.Time { return now }})
	c.StoreTopK(q1, 5, 0, []int{1})
	if _, _, ok := c.LookupTopK(q1, 5); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Minute)
	if _, _, ok := c.LookupTopK(q1, 5); ok {
		t.Fatal("expired entry served")
	}
	if got := c.Counts().Expirations; got != 1 {
		t.Fatalf("Expirations = %d, want 1", got)
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still resident: Len = %d", c.Len())
	}
}

func TestFlush(t *testing.T) {
	c := New(Config{})
	c.StoreTopK(q1, 5, 0, []int{1})
	c.StoreKRanks(q2, 3, 0, []Match{{WeightIndex: 0, Rank: 1}})
	c.Flush(7)
	if c.Len() != 0 {
		t.Fatalf("Len after flush = %d", c.Len())
	}
	if got := c.Counts().Flushes; got != 1 {
		t.Fatalf("Flushes = %d, want 1", got)
	}
	// The flush raised the head: stores from before it are rejected.
	c.StoreTopK(q1, 5, 6, []int{1})
	if _, _, ok := c.LookupTopK(q1, 5); ok {
		t.Fatal("pre-flush store accepted")
	}
}

func TestProductMutationPredicate(t *testing.T) {
	c := New(Config{})
	c.StoreTopK(q1, 5, 0, []int{1})          // q1 = (0.6, 0.7)
	c.StoreKRanks(q2, 3, 0, []Match{{1, 0}}) // q2 = (0.2, 0.3)

	// A row dominating both queries componentwise affects neither.
	c.OnProductMutation(1, []float64{0.9, 0.9})
	if c.Len() != 2 {
		t.Fatalf("dominating row invalidated entries: Len = %d", c.Len())
	}
	// A row below q1 in one dimension affects q1 but still dominates q2.
	c.OnProductMutation(2, []float64{0.5, 0.9})
	if _, _, ok := c.LookupTopK(q1, 5); ok {
		t.Fatal("affected entry survived")
	}
	if _, _, ok := c.LookupKRanks(q2, 3); !ok {
		t.Fatal("unaffected entry invalidated")
	}
	if got := c.Counts().Invalidations; got != 1 {
		t.Fatalf("Invalidations = %d, want 1", got)
	}
	// The sweep raised the head to its epoch.
	c.StoreTopK(q1, 5, 1, []int{1})
	if _, _, ok := c.LookupTopK(q1, 5); ok {
		t.Fatal("store predating the sweep accepted")
	}
}

func TestProductMutationNaNConservative(t *testing.T) {
	c := New(Config{})
	c.StoreTopK(q1, 5, 0, []int{1})
	c.OnProductMutation(1, []float64{nan(), 0.9})
	if c.Len() != 0 {
		t.Fatal("NaN row must invalidate conservatively")
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestPreferenceInsertSplice(t *testing.T) {
	c := New(Config{})
	c.StoreTopK(q1, 2, 0, []int{0, 2})
	c.StoreKRanks(q1, 2, 0, []Match{{WeightIndex: 1, Rank: 1}, {WeightIndex: 0, Rank: 3}})
	c.StoreKRanks(q2, 4, 0, []Match{{WeightIndex: 0, Rank: 2}, {WeightIndex: 1, Rank: 5}}) // short: all of W

	ranks := map[string]int{
		key(0, 0, q1): 1, // new preference ranks q1 at 1
		key(0, 0, q2): 9, // and q2 at 9
	}
	rankOf := func(q []float64, cutoff int) (int, bool) {
		r := ranks[key(0, 0, q)]
		if cutoff <= 0 {
			return r, true
		}
		if r >= cutoff {
			return cutoff, false
		}
		return r, true
	}
	c.OnPreferenceInsert(4, 3, rankOf)

	// RTK: rank 1 < k=2, so id 3 joins the answer.
	ints, ep, ok := c.LookupTopK(q1, 2)
	if !ok || ep != 4 || !reflect.DeepEqual(ints, []int{0, 2, 3}) {
		t.Fatalf("topk after insert = %v, epoch %d", ints, ep)
	}
	// RKR full: (1, 3) ties the retained (1, 1) and loses the index
	// tie-break, landing behind it; the old worst (3, 0) is pushed out.
	ms, _, ok := c.LookupKRanks(q1, 2)
	want := []Match{{WeightIndex: 1, Rank: 1}, {WeightIndex: 3, Rank: 1}}
	if !ok || !reflect.DeepEqual(ms, want) {
		t.Fatalf("kranks after insert = %v, want %v", ms, want)
	}
	// RKR short: the new preference is appended at its exact rank even
	// though it is worse than everything retained.
	ms, _, ok = c.LookupKRanks(q2, 4)
	want = []Match{{WeightIndex: 0, Rank: 2}, {WeightIndex: 1, Rank: 5}, {WeightIndex: 3, Rank: 9}}
	if !ok || !reflect.DeepEqual(ms, want) {
		t.Fatalf("short kranks after insert = %v, want %v", ms, want)
	}
}

func TestPreferenceDelete(t *testing.T) {
	c := New(Config{})
	c.StoreTopK(q1, 2, 0, []int{0, 1, 3})
	c.StoreKRanks(q1, 2, 0, []Match{{WeightIndex: 3, Rank: 0}, {WeightIndex: 0, Rank: 2}}) // strict cut of 5
	c.StoreKRanks(q2, 9, 0, []Match{{WeightIndex: 1, Rank: 0}, {WeightIndex: 0, Rank: 2}, {WeightIndex: 4, Rank: 7},
		{WeightIndex: 2, Rank: 8}, {WeightIndex: 3, Rank: 8}}) // short: all 5 of W
	c.OnPreferenceDelete(6, 1, 5)

	// RTK: id 1 leaves, 3 renumbers to 2.
	ints, ep, ok := c.LookupTopK(q1, 2)
	if !ok || ep != 6 || !reflect.DeepEqual(ints, []int{0, 2}) {
		t.Fatalf("topk after delete = %v, epoch %d", ints, ep)
	}
	// RKR not containing the id: survivors remap.
	ms, _, ok := c.LookupKRanks(q1, 2)
	want := []Match{{WeightIndex: 2, Rank: 0}, {WeightIndex: 0, Rank: 2}}
	if !ok || !reflect.DeepEqual(ms, want) {
		t.Fatalf("kranks after delete = %v, want %v", ms, want)
	}
	// RKR containing the id but holding all of W: exact rewrite.
	ms, _, ok = c.LookupKRanks(q2, 9)
	want = []Match{{WeightIndex: 0, Rank: 2}, {WeightIndex: 3, Rank: 7},
		{WeightIndex: 1, Rank: 8}, {WeightIndex: 2, Rank: 8}}
	if !ok || !reflect.DeepEqual(ms, want) {
		t.Fatalf("full kranks after delete = %v, want %v", ms, want)
	}

	// RKR strict cut containing the id: the successor is unknown, so the
	// entry must go.
	c.StoreKRanks(q3, 2, 6, []Match{{WeightIndex: 1, Rank: 0}, {WeightIndex: 2, Rank: 1}})
	c.OnPreferenceDelete(7, 1, 4)
	if _, _, ok := c.LookupKRanks(q3, 2); ok {
		t.Fatal("strict-cut entry containing the deleted id survived")
	}
}

// TestPreferenceSweepSkipsFreshEntries pins the publish-before-sweep
// window: mutators install the new epoch before the cache hook runs, so
// a concurrent scan can store an answer already computed against newSeq
// before the sweep starts. Such entries already reflect the mutation
// and must not be rewritten a second time.
func TestPreferenceSweepSkipsFreshEntries(t *testing.T) {
	c := New(Config{})
	// Stored by a scan that snapshotted epoch 4 (the post-insert epoch):
	// the answer already contains the new id 3.
	c.StoreTopK(q1, 2, 4, []int{0, 3})
	c.StoreKRanks(q2, 2, 4, []Match{{WeightIndex: 3, Rank: 0}, {WeightIndex: 1, Rank: 2}})
	rankOf := func(q []float64, cutoff int) (int, bool) { return 0, true }
	c.OnPreferenceInsert(4, 3, rankOf)
	ints, ep, ok := c.LookupTopK(q1, 2)
	if !ok || ep != 4 || !reflect.DeepEqual(ints, []int{0, 3}) {
		t.Fatalf("fresh topk entry rewritten: %v, epoch %d", ints, ep)
	}
	ms, _, ok := c.LookupKRanks(q2, 2)
	want := []Match{{WeightIndex: 3, Rank: 0}, {WeightIndex: 1, Rank: 2}}
	if !ok || !reflect.DeepEqual(ms, want) {
		t.Fatalf("fresh kranks entry rewritten: %v, want %v", ms, want)
	}

	// Same window for a delete: an answer computed against the
	// post-delete epoch 5 has its ids remapped already.
	c.StoreTopK(q3, 2, 5, []int{0, 1})
	c.OnPreferenceDelete(5, 1, 4)
	ints, ep, ok = c.LookupTopK(q3, 2)
	if !ok || ep != 5 || !reflect.DeepEqual(ints, []int{0, 1}) {
		t.Fatalf("fresh topk entry remapped twice: %v, epoch %d", ints, ep)
	}
}

// TestPreferenceInsertRewriteBudget: an insert sweep rewrites at most
// RewriteBudget entries (hottest first) and invalidates the stale rest,
// so a big cache never turns one insert into a full-cache rank sweep.
func TestPreferenceInsertRewriteBudget(t *testing.T) {
	c := New(Config{RewriteBudget: 1})
	c.StoreTopK(q1, 2, 0, []int{0})
	c.StoreTopK(q2, 2, 0, []int{1})
	c.StoreTopK(q3, 2, 0, []int{2}) // most recently used: gets the rewrite
	evals := 0
	rankOf := func(q []float64, cutoff int) (int, bool) { evals++; return 0, true }
	c.OnPreferenceInsert(1, 5, rankOf)
	if evals != 1 {
		t.Fatalf("rank evaluations = %d, want 1", evals)
	}
	ints, ep, ok := c.LookupTopK(q3, 2)
	if !ok || ep != 1 || !reflect.DeepEqual(ints, []int{2, 5}) {
		t.Fatalf("hottest entry not rewritten: %v, epoch %d", ints, ep)
	}
	if _, _, ok := c.LookupTopK(q1, 2); ok {
		t.Fatal("stale entry past the budget survived")
	}
	if _, _, ok := c.LookupTopK(q2, 2); ok {
		t.Fatal("stale entry past the budget survived")
	}
	if got := c.Counts().Invalidations; got != 2 {
		t.Fatalf("Invalidations = %d, want 2", got)
	}
}

// A fresh entry is neither rewritten nor charged against the budget nor
// invalidated when the budget runs out.
func TestRewriteBudgetIgnoresFreshEntries(t *testing.T) {
	c := New(Config{RewriteBudget: 1})
	c.StoreTopK(q1, 2, 0, []int{0})
	c.StoreTopK(q2, 2, 7, []int{1, 5}) // computed against the new epoch
	rankOf := func(q []float64, cutoff int) (int, bool) { return 0, true }
	c.OnPreferenceInsert(7, 5, rankOf)
	ints, _, ok := c.LookupTopK(q2, 2)
	if !ok || !reflect.DeepEqual(ints, []int{1, 5}) {
		t.Fatalf("fresh entry disturbed: %v, %v", ints, ok)
	}
	ints, ep, ok := c.LookupTopK(q1, 2)
	if !ok || ep != 7 || !reflect.DeepEqual(ints, []int{0, 5}) {
		t.Fatalf("stale entry not rewritten within budget: %v, epoch %d", ints, ep)
	}
}

func TestStoreOverwrites(t *testing.T) {
	c := New(Config{})
	c.StoreTopK(q1, 5, 1, []int{1, 2, 3})
	c.StoreTopK(q1, 5, 2, []int{7})
	res, ep, ok := c.LookupTopK(q1, 5)
	if !ok || ep != 2 || !reflect.DeepEqual(res, []int{7}) {
		t.Fatalf("after overwrite = %v, epoch %d", res, ep)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}
