// Package cache is an epoch-invalidated answer cache for reverse rank
// queries, layered in front of the GIR scan by the root package. A hit
// returns the stored admitted-preference set with zero scan work; a
// miss runs the scan and stores the answer tagged with the epoch it was
// computed against.
//
// # Consistency model
//
// The cache never serves a stale answer. Every resident entry is valid
// for the index's current epoch, maintained by three mechanisms driven
// from the mutation paths (which serialize on the index writer lock):
//
//   - Product mutations invalidate exactly the entries the mutated row
//     can affect. A product row p changes rank(w, q) for some w only if
//     p can score strictly below q under a non-negative weight vector,
//     which requires p[j] < q[j] in at least one dimension j. Entries
//     whose stored query is componentwise dominated (p[j] >= q[j] for
//     all j) keep their answers — see DESIGN.md §12 for the soundness
//     argument.
//   - Preference mutations rewrite entries exactly: a delete remaps the
//     surviving ids (preference ranks depend only on products, so the
//     answer set is otherwise unchanged), and an insert splices the new
//     preference in with one bounded rank evaluation per entry through
//     the rankOf oracle. Rewritten entries are retagged with the new
//     epoch. Entries already tagged with the sweep's epoch (or later)
//     are skipped: mutators publish the new epoch before the hook runs,
//     so a concurrent scan can have computed — and stored — its answer
//     against the new epoch already, and rewriting it again would apply
//     the mutation twice. An insert sweep additionally bounds its rank
//     evaluations by Config.RewriteBudget, invalidating (never
//     corrupting) entries past the budget so one insert cannot stall the
//     query path for a full-cache scan.
//   - Full rebuilds (batch mutations) flush everything.
//
// A store is rejected when its epoch predates the head epoch — the
// epoch of the latest mutation — closing the race where a scan computed
// against epoch e completes after a mutation to e+1 already swept the
// cache: the sweep could not have seen the entry, so the entry must not
// enter.
//
// The cache is keyed by (query kind, k, exact query vector bits); it is
// bounded by an LRU eviction policy and an optional TTL. All methods
// are safe for concurrent use; the mutation hooks additionally assume
// the caller serializes mutations (the index writer lock does).
package cache

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind distinguishes the two cached query types.
type Kind uint8

const (
	// KindTopK marks reverse top-k entries ([]int answers).
	KindTopK Kind = 1
	// KindKRanks marks reverse k-ranks entries ([]Match answers).
	KindKRanks Kind = 2
)

// Match mirrors the root package's reverse k-ranks result. The
// duplicate type keeps the import graph acyclic (the root package
// imports cache, not vice versa).
type Match struct {
	WeightIndex int
	Rank        int
}

// DefaultSize is the entry capacity used when Config.Size is 0.
const DefaultSize = 4096

// DefaultRewriteBudget is the per-sweep rank-evaluation bound used when
// Config.RewriteBudget is 0.
const DefaultRewriteBudget = 512

// Config configures a cache.
type Config struct {
	// Size bounds the number of resident entries; the least recently
	// used entry is evicted beyond it. 0 means DefaultSize.
	Size int
	// TTL bounds entry lifetime; expired entries answer as misses and
	// are removed on contact. 0 disables expiry.
	TTL time.Duration
	// RewriteBudget bounds the rank evaluations one preference-insert
	// sweep performs while holding the cache mutex; entries beyond the
	// budget (coldest first) are invalidated instead of rewritten, which
	// is always sound — they just become misses. 0 means
	// DefaultRewriteBudget; negative means unbounded.
	RewriteBudget int
	// Now overrides the clock, for tests. nil means time.Now.
	Now func() time.Time
}

// Counters is a snapshot of the cache's lifetime counters.
type Counters struct {
	Hits           int64 // lookups answered from a resident entry
	Misses         int64 // lookups finding no usable entry
	Stores         int64 // answers accepted into the cache
	RejectedStores int64 // stores refused for predating the head epoch
	Invalidations  int64 // entries removed by mutation sweeps
	Flushes        int64 // full-flush events (rebuilds, batch mutations)
	Evictions      int64 // entries evicted by the LRU bound
	Expirations    int64 // entries removed past their TTL
}

// entry is one cached answer. The entry owns its slices: q and the
// answer are copied in on store and copied out on hit, so neither side
// can alias cache-internal state.
type entry struct {
	key     string
	kind    Kind
	k       int
	q       []float64
	epoch   uint64    // epoch the answer was computed or last rewritten against
	expires time.Time // zero when the cache has no TTL
	ints    []int     // KindTopK answer, ascending
	matches []Match   // KindKRanks answer, ascending (rank, index)

	// LRU intrusive list links; the list head is most recently used.
	prev, next *entry
}

// Cache is the answer cache. Use New; the zero value is not usable.
type Cache struct {
	mu            sync.Mutex
	size          int
	ttl           time.Duration
	rewriteBudget int // <0 = unbounded
	now           func() time.Time
	entries       map[string]*entry
	// head/tail of the intrusive LRU list (head = most recently used).
	lruHead, lruTail *entry
	// headEpoch is the epoch of the latest mutation observed; stores
	// computed against older epochs are rejected (see package comment).
	headEpoch uint64

	hits, misses, stores, rejected atomic.Int64
	invalidations, flushes         atomic.Int64
	evictions, expirations         atomic.Int64
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	if cfg.Size <= 0 {
		cfg.Size = DefaultSize
	}
	if cfg.RewriteBudget == 0 {
		cfg.RewriteBudget = DefaultRewriteBudget
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Cache{
		size:          cfg.Size,
		ttl:           cfg.TTL,
		rewriteBudget: cfg.RewriteBudget,
		now:           cfg.Now,
		entries:       make(map[string]*entry),
	}
}

// Size returns the configured entry capacity.
func (c *Cache) Size() int { return c.size }

// TTL returns the configured entry lifetime (0 = none).
func (c *Cache) TTL() time.Duration { return c.ttl }

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Counts returns a snapshot of the lifetime counters.
func (c *Cache) Counts() Counters {
	return Counters{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Stores:         c.stores.Load(),
		RejectedStores: c.rejected.Load(),
		Invalidations:  c.invalidations.Load(),
		Flushes:        c.flushes.Load(),
		Evictions:      c.evictions.Load(),
		Expirations:    c.expirations.Load(),
	}
}

// SetHead raises the head epoch: stores computed against epochs before
// head are rejected. The index calls this once when the cache is
// attached (with the then-current epoch) so scans that predate the
// attachment cannot populate it; afterwards the mutation hooks maintain
// it.
func (c *Cache) SetHead(epoch uint64) {
	c.mu.Lock()
	if epoch > c.headEpoch {
		c.headEpoch = epoch
	}
	c.mu.Unlock()
}

// key builds the canonical entry key: kind, k, then the exact bit
// pattern of every query component. Two queries hit the same entry only
// when they are bitwise identical, so float equality subtleties (-0 vs
// +0, NaN payloads) can only split entries, never alias them.
func key(kind Kind, k int, q []float64) string {
	b := make([]byte, 1+8+8*len(q))
	b[0] = byte(kind)
	binary.BigEndian.PutUint64(b[1:], uint64(k))
	for i, x := range q {
		binary.BigEndian.PutUint64(b[9+8*i:], math.Float64bits(x))
	}
	return string(b)
}

// lookup finds a usable entry under c.mu: resident, right kind, not
// expired. Expired entries are removed on contact.
func (c *Cache) lookup(kind Kind, k int, q []float64) *entry {
	e := c.entries[key(kind, k, q)]
	if e == nil {
		c.misses.Add(1)
		return nil
	}
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.remove(e)
		c.expirations.Add(1)
		c.misses.Add(1)
		return nil
	}
	c.moveToFront(e)
	c.hits.Add(1)
	return e
}

// LookupTopK returns the cached reverse top-k answer for (q, k), the
// epoch it is valid against, and whether there was a hit. The returned
// slice is a fresh copy (nil for a cached empty answer, matching the
// scan's nil return).
func (c *Cache) LookupTopK(q []float64, k int) ([]int, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.lookup(KindTopK, k, q)
	if e == nil {
		return nil, 0, false
	}
	if len(e.ints) == 0 {
		return nil, e.epoch, true
	}
	out := make([]int, len(e.ints))
	copy(out, e.ints)
	return out, e.epoch, true
}

// LookupKRanks returns the cached reverse k-ranks answer for (q, k),
// the epoch it is valid against, and whether there was a hit.
func (c *Cache) LookupKRanks(q []float64, k int) ([]Match, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.lookup(KindKRanks, k, q)
	if e == nil {
		return nil, 0, false
	}
	out := make([]Match, len(e.matches))
	copy(out, e.matches)
	return out, e.epoch, true
}

// store inserts or overwrites an entry under c.mu, enforcing the head
// bound and the LRU capacity.
func (c *Cache) store(kind Kind, k int, q []float64, epoch uint64, ints []int, matches []Match) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch < c.headEpoch {
		c.rejected.Add(1)
		return
	}
	ky := key(kind, k, q)
	e := c.entries[ky]
	if e == nil {
		e = &entry{
			key:  ky,
			kind: kind,
			k:    k,
			q:    append([]float64(nil), q...),
		}
		c.entries[ky] = e
		c.pushFront(e)
		if len(c.entries) > c.size {
			c.remove(c.lruTail)
			c.evictions.Add(1)
		}
	} else {
		c.moveToFront(e)
	}
	e.epoch = epoch
	e.ints = append(e.ints[:0], ints...)
	e.matches = append(e.matches[:0], matches...)
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	c.stores.Add(1)
}

// StoreTopK caches a reverse top-k answer computed against epoch.
func (c *Cache) StoreTopK(q []float64, k int, epoch uint64, res []int) {
	c.store(KindTopK, k, q, epoch, res, nil)
}

// StoreKRanks caches a reverse k-ranks answer computed against epoch.
func (c *Cache) StoreKRanks(q []float64, k int, epoch uint64, res []Match) {
	c.store(KindKRanks, k, q, epoch, nil, res)
}

// rowAffects reports whether mutating product row p can change any
// cached answer for query q: true unless p dominates q componentwise
// (p[j] >= q[j] for every j). The negated comparison makes NaN — and a
// length mismatch, via the len check — land on the conservative
// "affects" side.
func rowAffects(p, q []float64) bool {
	if len(p) != len(q) {
		return true
	}
	for j := range p {
		if !(p[j] >= q[j]) {
			return true
		}
	}
	return false
}

// OnProductMutation applies a single-product insert or delete that
// produced epoch newSeq: every entry the mutated row (the inserted
// point, or the deleted point's former attributes) can affect is
// invalidated; dominated entries keep their answers and their epoch
// tags.
func (c *Cache) OnProductMutation(newSeq uint64, row []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if newSeq > c.headEpoch {
		c.headEpoch = newSeq
	}
	for e := c.lruHead; e != nil; {
		next := e.next
		if rowAffects(row, e.q) {
			c.remove(e)
			c.invalidations.Add(1)
		}
		e = next
	}
}

// OnPreferenceInsert applies a preference insert (new id newID, always
// the largest) that produced epoch newSeq. rankOf must evaluate
// rank(newID, q) against the new epoch, bounded by cutoff with
// rankBounded semantics (ok iff the exact rank is below cutoff; cutoff
// <= 0 means unbounded). Entries computed against an older epoch are
// rewritten exactly — the new preference is spliced in where it wins
// admission — and retagged with newSeq; entries already tagged newSeq
// (stored by a scan that snapshotted the published epoch before this
// sweep ran) already contain the insert and are left alone. Rewrites
// run hottest-first (the sweep walks the LRU list from its head) and
// stop after the configured budget of rank evaluations; stale entries
// past the budget are invalidated instead, so one insert never holds
// the cache mutex for a full-cache rank sweep.
func (c *Cache) OnPreferenceInsert(newSeq uint64, newID int, rankOf func(q []float64, cutoff int) (int, bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if newSeq > c.headEpoch {
		c.headEpoch = newSeq
	}
	budget := c.rewriteBudget
	for e := c.lruHead; e != nil; {
		next := e.next
		if e.epoch >= newSeq {
			e = next
			continue
		}
		if budget == 0 {
			c.remove(e)
			c.invalidations.Add(1)
			e = next
			continue
		}
		if budget > 0 {
			budget--
		}
		switch e.kind {
		case KindTopK:
			// Admitted iff rank(newID, q) < k. The new id is the largest,
			// so appending keeps the answer ascending.
			if _, ok := rankOf(e.q, e.k); ok {
				e.ints = append(e.ints, newID)
			}
		case KindKRanks:
			e.matches = spliceMatch(e.matches, e.k, newID, rankOf, e.q)
		}
		e.epoch = newSeq
		e = next
	}
}

// spliceMatch inserts the new preference into a reverse k-ranks answer
// where it belongs. The new id is larger than every resident id, so it
// loses every rank tie: with a full answer it is admitted only on a
// strictly better rank than the worst retained match, and its insertion
// point is after all matches of equal rank — exactly the scan's
// (rank, index) tie-break.
func spliceMatch(matches []Match, k, newID int, rankOf func(q []float64, cutoff int) (int, bool), q []float64) []Match {
	var rnk int
	if len(matches) < k {
		// Short answer: every preference is retained, so the new one is
		// inserted unconditionally at its exact rank.
		rnk, _ = rankOf(q, 0)
	} else {
		worst := matches[len(matches)-1]
		var ok bool
		if rnk, ok = rankOf(q, worst.Rank); !ok {
			return matches // not admitted: rank(newID, q) >= worst rank
		}
	}
	at := sort.Search(len(matches), func(i int) bool { return matches[i].Rank > rnk })
	matches = append(matches, Match{})
	copy(matches[at+1:], matches[at:])
	matches[at] = Match{WeightIndex: newID, Rank: rnk}
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}

// OnPreferenceDelete applies a preference delete (id deleted, former
// preference count oldCount) that produced epoch newSeq. Preference
// ranks depend only on the product set, so a delete never changes the
// rank of a surviving preference: reverse top-k entries drop the
// deleted id and remap the survivors; reverse k-ranks entries do the
// same when exact, and are invalidated only when the deleted id was
// retained and the answer was a strict top-k cut (the successor match
// is unknown). Entries already tagged newSeq were computed against the
// published post-delete epoch — their ids are already remapped — and
// are skipped; remapping them again would corrupt them.
func (c *Cache) OnPreferenceDelete(newSeq uint64, deleted, oldCount int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if newSeq > c.headEpoch {
		c.headEpoch = newSeq
	}
	for e := c.lruHead; e != nil; {
		next := e.next
		if e.epoch >= newSeq {
			e = next
			continue
		}
		switch e.kind {
		case KindTopK:
			out := e.ints[:0]
			for _, id := range e.ints {
				switch {
				case id == deleted:
				case id > deleted:
					out = append(out, id-1)
				default:
					out = append(out, id)
				}
			}
			e.ints = out
			e.epoch = newSeq
		case KindKRanks:
			contains := false
			for _, m := range e.matches {
				if m.WeightIndex == deleted {
					contains = true
					break
				}
			}
			if contains && len(e.matches) != oldCount {
				// The answer was a strict cut and lost a member: the
				// (k)-th best among the survivors is not stored.
				c.remove(e)
				c.invalidations.Add(1)
				break
			}
			out := e.matches[:0]
			for _, m := range e.matches {
				if m.WeightIndex == deleted {
					continue
				}
				if m.WeightIndex > deleted {
					m.WeightIndex--
				}
				out = append(out, m)
			}
			e.matches = out
			e.epoch = newSeq
		}
		e = next
	}
}

// Flush drops every entry; the mutation paths that rebuild the whole
// index (batch mutations) call it with the new epoch.
func (c *Cache) Flush(newSeq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if newSeq > c.headEpoch {
		c.headEpoch = newSeq
	}
	c.entries = make(map[string]*entry)
	c.lruHead, c.lruTail = nil, nil
	c.flushes.Add(1)
}

// pushFront links a new entry at the LRU head. Caller holds c.mu.
func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = nil, c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

// moveToFront marks an entry most recently used. Caller holds c.mu.
func (c *Cache) moveToFront(e *entry) {
	if c.lruHead == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// remove unlinks and deletes an entry. Caller holds c.mu.
func (c *Cache) remove(e *entry) {
	c.unlink(e)
	delete(c.entries, e.key)
}

// unlink detaches an entry from the LRU list. Caller holds c.mu.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}
