package cache

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzCacheKey drives the cache's key construction and invalidation
// predicate with arbitrary — including non-finite and boundary — (q, k)
// inputs, asserting the two properties correctness hangs on:
//
//  1. Key isolation: a lookup with a query that is not bitwise
//     identical to the stored one (or with a different k or kind) never
//     hits, so corrupted keys cannot alias a foreign answer.
//  2. No stale hit: after a product mutation with row p, the stored
//     entry survives if and only if p dominates the stored query
//     componentwise (p[j] >= q[j] for all j, the DESIGN.md §12
//     predicate). NaN anywhere must land on the invalidation side.
//
// And throughout: no panic, whatever the bytes decode to.
func FuzzCacheKey(f *testing.F) {
	f.Add(seedBytes(2, 5, []float64{0.6, 0.7}, []float64{0.2, 0.3}, []float64{0.9, 0.9}))
	f.Add(seedBytes(3, 1, []float64{0, 0, 0}, []float64{0, 0, 0}, []float64{0, 0, 0}))
	f.Add(seedBytes(1, -4, []float64{math.Inf(1)}, []float64{math.NaN()}, []float64{-0.0}))
	f.Add(seedBytes(4, 1<<30, []float64{1e300, -1e300, 0.5, 2}, []float64{0.5, 0.5, 0.5, 0.5}, []float64{math.NaN(), 1, 1, 1}))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, k, q, q2, row, ok := decodeFuzzInput(data)
		if !ok {
			return
		}
		c := New(Config{Size: 4})
		answer := []int{0, 2, 5}
		c.StoreTopK(q, k, 1, answer)
		c.StoreKRanks(q, k, 1, []Match{{WeightIndex: 1, Rank: 0}})

		// Key isolation: a bitwise-different query must miss.
		if !sameBits(q, q2) {
			if _, _, hit := c.LookupTopK(q2, k); hit {
				t.Fatalf("foreign hit: q2=%v aliased q=%v", q2, q)
			}
		}
		if _, _, hit := c.LookupTopK(q, k+1); hit {
			t.Fatalf("hit for wrong k")
		}

		// The stored query must hit, and with the stored answer.
		got, _, hit := c.LookupTopK(q, k)
		if !hit {
			t.Fatalf("stored query missed: q=%v k=%d", q, k)
		}
		if len(got) != len(answer) {
			t.Fatalf("hit returned %v, stored %v", got, answer)
		}

		// Invalidation predicate: survive iff row dominates q.
		c.OnProductMutation(2, row)
		_, _, hit = c.LookupTopK(q, k)
		if want := dominates(row, q); hit != want {
			t.Fatalf("after mutation row=%v q=%v: hit=%v, want %v", row, q, hit, want)
		}
		_, _, hit2 := c.LookupKRanks(q, k)
		if hit2 != hit {
			t.Fatalf("kinds disagree on invalidation: topk=%v kranks=%v", hit, hit2)
		}
	})
}

// dominates is the reference predicate: row keeps the entry iff every
// component is >= the query's (NaN compares false, so it invalidates).
func dominates(row, q []float64) bool {
	if len(row) != len(q) {
		return false
	}
	for j := range row {
		if !(row[j] >= q[j]) {
			return false
		}
	}
	return true
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// decodeFuzzInput carves data into a dimensionality d in [1, 8], a k,
// and three d-dimensional vectors (stored query, probe query, mutated
// row) from the raw float64 bit patterns — NaNs, infinities and
// subnormals included.
func decodeFuzzInput(data []byte) (d, k int, q, q2, row []float64, ok bool) {
	if len(data) < 2+8 {
		return 0, 0, nil, nil, nil, false
	}
	d = int(data[0]%8) + 1
	k = int(int8(data[1]))
	data = data[2:]
	if len(data) < 3*8*d {
		return 0, 0, nil, nil, nil, false
	}
	vec := func() []float64 {
		v := make([]float64, d)
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		data = data[8*d:]
		return v
	}
	return d, k, vec(), vec(), vec(), true
}

// seedBytes encodes a corpus seed in decodeFuzzInput's format.
func seedBytes(d, k int, q, q2, row []float64) []byte {
	b := []byte{byte(d - 1), byte(k)}
	for _, v := range [][]float64{q, q2, row} {
		for i := 0; i < d; i++ {
			var x float64
			if i < len(v) {
				x = v[i]
			}
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			b = append(b, buf[:]...)
		}
	}
	return b
}
