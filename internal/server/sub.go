package server

// Continuous subscription endpoints: clients register a (query, k, kind)
// monitor and receive enter/leave events over Server-Sent Events as
// mutations install epochs.
//
//	POST   /v1/subscriptions             {"kind":"reverse-topk","query":[...]|"product":i,"k":10}
//	GET    /v1/subscriptions/{id}/events SSE stream of enter/leave events
//	DELETE /v1/subscriptions/{id}        end the subscription
//
// The stream carries one SSE event per membership change ("event: enter"
// or "event: leave", data {"seq","preference"}) and always ends with a
// terminal event naming why: "shutdown" (server draining), "lagged" (the
// consumer let the event buffer fill and the index cancelled the
// subscription — re-subscribe to resynchronize), or "cancelled" (DELETE,
// or Close on the library handle). A draining server refuses new
// subscriptions with 503 and Drain closes every live stream, so graceful
// shutdown never stalls on an open SSE connection.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gridrank"
)

// DefaultMaxSubscribers bounds live subscriptions when
// Config.MaxSubscribers is 0.
const DefaultMaxSubscribers = 64

// DefaultEventBuffer is the per-subscription event buffer when
// Config.EventBuffer is 0. A subscriber that lets it fill is cancelled
// with a "lagged" terminal event rather than sent a gapped stream.
const DefaultEventBuffer = 256

type subscribeRequest struct {
	// Kind is "reverse-topk" or "reverse-kranks".
	Kind    string    `json:"kind"`
	Query   []float64 `json:"query,omitempty"`
	Product *int      `json:"product,omitempty"`
	K       int       `json:"k"`
}

// subMember is one current member of the monitored answer set. Rank is
// present only for reverse-kranks subscriptions.
type subMember struct {
	Preference int  `json:"preference"`
	Rank       *int `json:"rank,omitempty"`
}

type subscribeResponse struct {
	ID      uint64      `json:"id"`
	Kind    string      `json:"kind"`
	K       int         `json:"k"`
	Members []subMember `json:"members"`
	// Events is the path of the subscription's SSE stream.
	Events string `json:"events"`
}

// subEventData is the data payload of one enter/leave SSE event.
type subEventData struct {
	Seq        uint64 `json:"seq"`
	Preference int    `json:"preference"`
}

func subMembers(kind gridrank.SubKind, ms []gridrank.SubMember) []subMember {
	out := make([]subMember, len(ms))
	for i, m := range ms {
		out[i] = subMember{Preference: m.Pref}
		if kind == gridrank.SubReverseKRanks {
			r := m.Rank
			out[i].Rank = &r
		}
	}
	return out
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Drain refuses new subscriptions and closes every live one, ending
// their SSE streams with a "shutdown" terminal event, then flushes the
// OTLP exporter (bounded — a stalled collector cannot hold up shutdown).
// Call it before http.Server.Shutdown so open streams do not stall the
// drain; it is idempotent and safe from any goroutine.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		close(s.draining)
		s.subMu.Lock()
		subs := make([]*gridrank.Subscription, 0, len(s.subs))
		for _, sub := range s.subs {
			subs = append(subs, sub)
		}
		s.subs = make(map[uint64]*gridrank.Subscription)
		s.subMu.Unlock()
		for _, sub := range subs {
			sub.Close()
		}
		if s.exporter != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = s.exporter.Shutdown(ctx)
			cancel()
		}
	})
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	var req subscribeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	var kind gridrank.SubKind
	switch req.Kind {
	case gridrank.SubReverseTopK.String():
		kind = gridrank.SubReverseTopK
	case gridrank.SubReverseKRanks.String():
		kind = gridrank.SubReverseKRanks
	default:
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown kind %q (want %q or %q)", req.Kind,
				gridrank.SubReverseTopK, gridrank.SubReverseKRanks))
		return
	}
	q, err := s.resolveQueryVector(req.Query, req.Product)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sub, err := s.ix.Subscribe(q, req.K, kind, s.eventBuffer)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, gridrank.ErrTooManySubscribers) {
			status = http.StatusTooManyRequests
		}
		s.writeError(w, status, err)
		return
	}
	s.subMu.Lock()
	// Drain may have run between the check above and here; a
	// subscription registered now would never be closed by it.
	if s.isDraining() {
		s.subMu.Unlock()
		sub.Close()
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	s.subs[sub.ID()] = sub
	s.subMu.Unlock()
	s.writeJSON(w, http.StatusCreated, subscribeResponse{
		ID:      sub.ID(),
		Kind:    kind.String(),
		K:       sub.K(),
		Members: subMembers(kind, sub.Initial()),
		Events:  fmt.Sprintf("/v1/subscriptions/%d/events", sub.ID()),
	})
}

func (s *Server) lookupSubscription(r *http.Request) (*gridrank.Subscription, error) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("invalid subscription id %q", r.PathValue("id"))
	}
	s.subMu.Lock()
	sub := s.subs[id]
	s.subMu.Unlock()
	if sub == nil {
		return nil, nil
	}
	return sub, nil
}

func (s *Server) dropSubscription(id uint64) {
	s.subMu.Lock()
	delete(s.subs, id)
	s.subMu.Unlock()
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	sub, err := s.lookupSubscription(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if sub == nil {
		s.writeError(w, http.StatusNotFound, errors.New("no such subscription"))
		return
	}
	sub.Close()
	s.dropSubscription(sub.ID())
	s.writeJSON(w, http.StatusOK, map[string]interface{}{"id": sub.ID(), "closed": true})
}

// sseWrite emits one SSE event and flushes it to the client.
func sseWrite(w http.ResponseWriter, f http.Flusher, name string, data interface{}) {
	b, err := json.Marshal(data)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, b)
	f.Flush()
}

// handleSubscriptionEvents streams a subscription's events as SSE until
// the subscription ends, the server drains, or the client goes away.
// The loop selects on the event channel, the drain signal and the
// request context, so a draining server is never stalled by an idle
// stream: the handler emits its terminal event and returns.
func (s *Server) handleSubscriptionEvents(w http.ResponseWriter, r *http.Request) {
	sub, err := s.lookupSubscription(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if sub == nil {
		s.writeError(w, http.StatusNotFound, errors.New("no such subscription"))
		return
	}
	f, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	// terminal names why the stream ended. Lagged wins over everything
	// (the stream is incomplete and the client must re-subscribe);
	// draining beats cancelled so shutdown reads as shutdown even though
	// Drain ends streams by closing their subscriptions.
	terminal := func() string {
		switch {
		case sub.Lagged():
			return "lagged"
		case s.isDraining():
			return "shutdown"
		default:
			return "cancelled"
		}
	}
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				name := terminal()
				sseWrite(w, f, name, subEventData{})
				if name == "lagged" {
					// The index already cancelled the monitor; forget the
					// dead handle so its id stops resolving.
					s.dropSubscription(sub.ID())
				}
				return
			}
			sseWrite(w, f, ev.Type.String(), subEventData{Seq: ev.Seq, Preference: ev.Pref})
		case <-s.draining:
			sseWrite(w, f, "shutdown", subEventData{})
			return
		case <-r.Context().Done():
			return
		}
	}
}
