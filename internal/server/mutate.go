package server

// Mutation endpoints. The index's copy-on-write epochs make these safe
// under full query traffic: a mutation installs a new snapshot, queries
// in flight finish against the one they started with. Endpoints:
//
//	POST   /v1/products         {"product":[...]} | {"products":[[...],...]}
//	DELETE /v1/products/{id}
//	DELETE /v1/products         {"ids":[...]}
//	POST   /v1/preferences      {"preference":[...]} | {"preferences":[[...],...]}
//	DELETE /v1/preferences/{id}
//	DELETE /v1/preferences      {"ids":[...]}
//
// Every successful mutation response carries the new epoch (also
// surfaced by GET /v1/index and the gridrank_index_epoch gauge), so a
// client can tell which snapshot its subsequent queries will see at
// minimum. Element ids are positional: deleting id i shifts every id
// above i down by one, exactly like rebuilding over the remaining data.
//
// Status mapping: 400 for malformed vectors or batches, 404 for an
// unknown id, 409 for deleting the last element of a set.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gridrank"
)

// Mutation kinds, the label values of gridrank_mutations_total.
const (
	mutInsertProduct    = "insert_product"
	mutDeleteProduct    = "delete_product"
	mutInsertPreference = "insert_preference"
	mutDeletePreference = "delete_preference"
)

// mutationErrorStatus maps a mutation error to its HTTP status.
func mutationErrorStatus(err error) int {
	switch {
	case errors.Is(err, gridrank.ErrOutOfRange):
		return http.StatusNotFound
	case errors.Is(err, gridrank.ErrLastElement):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// recordMutations publishes a successful mutation into the metrics
// registry: the per-kind counter, the per-kind latency histogram (the
// index call's duration, start to installed — decode and encode are the
// endpoint histogram's business), the epoch gauge, and the
// install-to-publish lag (how stale the epoch gauge was while this
// publish was pending).
func (s *Server) recordMutations(kind string, n int, start, installed time.Time) {
	s.metrics.AddMutations(kind, int64(n))
	s.metrics.ObserveMutation(kind, installed.Sub(start))
	s.metrics.SetIndexEpoch(s.ix.Epoch())
	s.metrics.SetEpochInstallLag(time.Since(installed))
}

// insertRequest accepts one vector or a batch (exactly one of the pair;
// the field names differ between the product and preference endpoints).
type insertRequest struct {
	Product     []float64   `json:"product,omitempty"`
	Products    [][]float64 `json:"products,omitempty"`
	Preference  []float64   `json:"preference,omitempty"`
	Preferences [][]float64 `json:"preferences,omitempty"`
}

// insertVectors extracts the single-or-batch pair of an insert request.
func insertVectors(single []float64, batch [][]float64, kind string) ([]gridrank.Vector, error) {
	switch {
	case single != nil && batch != nil:
		return nil, fmt.Errorf("provide either %q or %q, not both", kind, kind+"s")
	case single != nil:
		return []gridrank.Vector{single}, nil
	case len(batch) > 0:
		out := make([]gridrank.Vector, len(batch))
		for i, v := range batch {
			out[i] = v
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%q vector or %q array required", kind, kind+"s")
	}
}

type insertResponse struct {
	// FirstID is the id of the first inserted element; a batch occupies
	// consecutive ids from it.
	FirstID  int    `json:"firstId"`
	Inserted int    `json:"inserted"`
	Total    int    `json:"total"`
	Epoch    uint64 `json:"epoch"`
}

type deleteRequest struct {
	IDs []int `json:"ids"`
}

type deleteResponse struct {
	Deleted int    `json:"deleted"`
	Total   int    `json:"total"`
	Epoch   uint64 `json:"epoch"`
}

func (s *Server) handleInsertProducts(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	vs, err := insertVectors(req.Product, req.Products, "product")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	first, err := s.ix.InsertProductsCtx(r.Context(), vs)
	installed := time.Now()
	if err != nil {
		s.writeError(w, mutationErrorStatus(err), err)
		return
	}
	s.recordMutations(mutInsertProduct, len(vs), start, installed)
	s.writeJSON(w, http.StatusOK, insertResponse{
		FirstID: first, Inserted: len(vs), Total: s.ix.NumProducts(), Epoch: s.ix.Epoch(),
	})
}

func (s *Server) handleInsertPreferences(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	vs, err := insertVectors(req.Preference, req.Preferences, "preference")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	first, err := s.ix.InsertPreferencesCtx(r.Context(), vs)
	installed := time.Now()
	if err != nil {
		s.writeError(w, mutationErrorStatus(err), err)
		return
	}
	s.recordMutations(mutInsertPreference, len(vs), start, installed)
	s.writeJSON(w, http.StatusOK, insertResponse{
		FirstID: first, Inserted: len(vs), Total: s.ix.NumPreferences(), Epoch: s.ix.Epoch(),
	})
}

// pathID parses the {id} wildcard of a delete-by-id route.
func pathID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, fmt.Errorf("bad element id %q", r.PathValue("id"))
	}
	return id, nil
}

func (s *Server) handleDeleteProduct(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	err = s.ix.DeleteProductCtx(r.Context(), id)
	installed := time.Now()
	if err != nil {
		s.writeError(w, mutationErrorStatus(err), err)
		return
	}
	s.recordMutations(mutDeleteProduct, 1, start, installed)
	s.writeJSON(w, http.StatusOK, deleteResponse{
		Deleted: 1, Total: s.ix.NumProducts(), Epoch: s.ix.Epoch(),
	})
}

func (s *Server) handleDeletePreference(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	err = s.ix.DeletePreferenceCtx(r.Context(), id)
	installed := time.Now()
	if err != nil {
		s.writeError(w, mutationErrorStatus(err), err)
		return
	}
	s.recordMutations(mutDeletePreference, 1, start, installed)
	s.writeJSON(w, http.StatusOK, deleteResponse{
		Deleted: 1, Total: s.ix.NumPreferences(), Epoch: s.ix.Epoch(),
	})
}

func (s *Server) handleDeleteProducts(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	start := time.Now()
	if err := s.ix.DeleteProductsCtx(r.Context(), req.IDs); err != nil {
		s.writeError(w, mutationErrorStatus(err), err)
		return
	}
	installed := time.Now()
	s.recordMutations(mutDeleteProduct, len(req.IDs), start, installed)
	s.writeJSON(w, http.StatusOK, deleteResponse{
		Deleted: len(req.IDs), Total: s.ix.NumProducts(), Epoch: s.ix.Epoch(),
	})
}

func (s *Server) handleDeletePreferences(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	start := time.Now()
	if err := s.ix.DeletePreferencesCtx(r.Context(), req.IDs); err != nil {
		s.writeError(w, mutationErrorStatus(err), err)
		return
	}
	installed := time.Now()
	s.recordMutations(mutDeletePreference, len(req.IDs), start, installed)
	s.writeJSON(w, http.StatusOK, deleteResponse{
		Deleted: len(req.IDs), Total: s.ix.NumPreferences(), Epoch: s.ix.Epoch(),
	})
}
