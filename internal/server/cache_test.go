package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The server-level acceptance path for the answer cache: enabling it
// through Config, observing hits and invalidations in the /metrics
// exposition, cache.lookup spans in /debug/traces, and the cache block
// of /v1/index — with answers identical before and after mutations.

func getMetricsBody(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	return rec.Body.String()
}

// TestCacheEndToEnd drives a cache-enabled traced server through a
// repeat query (hit), a mutation (invalidation sweep) and a re-query,
// checking the counters, the spans and the metadata along the way.
func TestCacheEndToEnd(t *testing.T) {
	s := tracedServer(t, Config{TraceSampleRate: 1, CacheSize: 64, CacheTTL: time.Minute})

	query := map[string]interface{}{"product": 3, "k": 100}
	first := postTraceparent(t, s, "/v1/reverse-topk", "", query)
	if first.Code != http.StatusOK {
		t.Fatalf("first query: %d %s", first.Code, first.Body.String())
	}
	second := postTraceparent(t, s, "/v1/reverse-topk", "", query)
	if second.Code != http.StatusOK {
		t.Fatalf("second query: %d %s", second.Code, second.Body.String())
	}
	var res1, res2 struct {
		Preferences []int  `json:"preferences"`
		Count       int    `json:"count"`
		TraceID     string `json:"trace_id"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &res1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second.Body.Bytes(), &res2); err != nil {
		t.Fatal(err)
	}
	if res1.Count == 0 {
		t.Fatalf("degenerate fixture: first query returned no preferences: %s", first.Body.String())
	}
	if len(res1.Preferences) != len(res2.Preferences) {
		t.Fatalf("cache changed the answer: %v vs %v", res1.Preferences, res2.Preferences)
	}
	for i := range res1.Preferences {
		if res1.Preferences[i] != res2.Preferences[i] {
			t.Fatalf("cache changed the answer: %v vs %v", res1.Preferences, res2.Preferences)
		}
	}

	// The second query's trace must carry a cache.lookup span marked as a
	// hit, and no scan span (the cache answered).
	td := getTrace(t, s, res2.TraceID, http.StatusOK)
	spans := spanNames(td)
	lookup, ok := spans["cache.lookup"]
	if !ok {
		t.Fatalf("no cache.lookup span in hit trace: %v", td.Spans)
	}
	if hit, _ := lookup.Attrs["hit"].(float64); hit != 1 {
		t.Fatalf("cache.lookup attrs = %v, want hit=1", lookup.Attrs)
	}
	if _, scanned := spans["scan"]; scanned {
		t.Fatal("hit trace still contains a scan span")
	}
	// The first query's trace records the miss and the store.
	td1 := getTrace(t, s, res1.TraceID, http.StatusOK)
	spans1 := spanNames(td1)
	if lk, ok := spans1["cache.lookup"]; !ok {
		t.Fatalf("no cache.lookup span in miss trace: %v", td1.Spans)
	} else if hit, _ := lk.Attrs["hit"].(float64); hit != 0 {
		t.Fatalf("miss trace cache.lookup attrs = %v, want hit=0", lk.Attrs)
	}
	if _, ok := spans1["cache.store"]; !ok {
		t.Fatalf("no cache.store span in miss trace: %v", td1.Spans)
	}

	// The scrape exposes the cache counter families with the hit counted.
	body := getMetricsBody(t, s)
	for _, want := range []string{
		"gridrank_cache_hits_total 1",
		"gridrank_cache_misses_total",
		"gridrank_cache_stores_total",
		"gridrank_cache_entries",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, body)
		}
	}

	// A product delete sweeps the cache; the re-query is correct against
	// the new epoch and the invalidation counter moves.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/products/0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE /v1/products/0: %d %s", rec.Code, rec.Body.String())
	}
	third := postTraceparent(t, s, "/v1/reverse-topk", "", query)
	if third.Code != http.StatusOK {
		t.Fatalf("post-mutation query: %d %s", third.Code, third.Body.String())
	}
	body = getMetricsBody(t, s)
	if !strings.Contains(body, "gridrank_cache_invalidated_entries_total") {
		t.Errorf("missing invalidation counter in /metrics:\n%s", body)
	}

	// /v1/index reports the cache block.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/index", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/index: %d", rec.Code)
	}
	var meta struct {
		CacheEnabled bool  `json:"cacheEnabled"`
		CacheSize    int   `json:"cacheSize"`
		CacheTTLMs   int64 `json:"cacheTTLMs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if !meta.CacheEnabled || meta.CacheSize != 64 || meta.CacheTTLMs != time.Minute.Milliseconds() {
		t.Fatalf("/v1/index cache block = %+v", meta)
	}
}

// TestCacheDisabledMetricsAbsent pins that a server without a cache
// exposes no cache metric families and reports cacheEnabled=false.
func TestCacheDisabledMetricsAbsent(t *testing.T) {
	s := tracedServer(t, Config{})
	if strings.Contains(getMetricsBody(t, s), "gridrank_cache_") {
		t.Fatal("cache metric families present without a cache")
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/index", nil))
	var meta struct {
		CacheEnabled bool `json:"cacheEnabled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.CacheEnabled {
		t.Fatal("/v1/index reports cacheEnabled on a cache-less server")
	}
}

// TestNegativeCacheTTLFailsLoudly pins that NewWithConfig rejects an
// invalid cache config instead of silently leaving the cache off.
func TestNegativeCacheTTLFailsLoudly(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWithConfig accepted CacheTTL < 0 without complaint")
		}
	}()
	tracedServer(t, Config{CacheSize: 8, CacheTTL: -time.Second})
}
