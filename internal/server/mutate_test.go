package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func del(t *testing.T, s *Server, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var r *httptest.ResponseRecorder
	if body == nil {
		req := httptest.NewRequest(http.MethodDelete, path, nil)
		r = httptest.NewRecorder()
		s.ServeHTTP(r, req)
		return r
	}
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodDelete, path, strings.NewReader(string(raw)))
	r = httptest.NewRecorder()
	s.ServeHTTP(r, req)
	return r
}

func decodeInto(t *testing.T, rec *httptest.ResponseRecorder, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("bad response %q: %v", rec.Body.String(), err)
	}
}

func TestInsertProductEndpoint(t *testing.T) {
	s, ix := testServer(t)
	before := ix.NumProducts()

	rec := post(t, s, "/v1/products", map[string]interface{}{
		"product": []float64{1, 2, 3, 4},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body.String())
	}
	var resp insertResponse
	decodeInto(t, rec, &resp)
	if resp.FirstID != before || resp.Inserted != 1 || resp.Total != before+1 {
		t.Fatalf("insert response %+v (before=%d)", resp, before)
	}
	if resp.Epoch == 0 {
		t.Fatal("insert did not advance the epoch")
	}
	if ix.NumProducts() != before+1 {
		t.Fatalf("index has %d products, want %d", ix.NumProducts(), before+1)
	}

	// Batch insert occupies consecutive ids.
	rec = post(t, s, "/v1/products", map[string]interface{}{
		"products": [][]float64{{1, 1, 1, 1}, {2, 2, 2, 2}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch insert: %d %s", rec.Code, rec.Body.String())
	}
	decodeInto(t, rec, &resp)
	if resp.FirstID != before+1 || resp.Inserted != 2 || resp.Total != before+3 {
		t.Fatalf("batch insert response %+v", resp)
	}

	// Malformed bodies map to 400.
	for name, body := range map[string]interface{}{
		"wrong dim":       map[string]interface{}{"product": []float64{1, 2}},
		"negative attr":   map[string]interface{}{"product": []float64{1, -2, 3, 4}},
		"both fields":     map[string]interface{}{"product": []float64{1, 2, 3, 4}, "products": [][]float64{{1, 2, 3, 4}}},
		"neither field":   map[string]interface{}{},
		"nan-bearing":     map[string]interface{}{"product": []interface{}{1, "x", 3, 4}},
		"empty batch row": map[string]interface{}{"products": [][]float64{{}}},
	} {
		if rec := post(t, s, "/v1/products", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
}

func TestInsertPreferenceEndpoint(t *testing.T) {
	s, ix := testServer(t)
	before := ix.NumPreferences()

	rec := post(t, s, "/v1/preferences", map[string]interface{}{
		"preference": []float64{0.25, 0.25, 0.25, 0.25},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body.String())
	}
	var resp insertResponse
	decodeInto(t, rec, &resp)
	if resp.FirstID != before || resp.Total != before+1 || ix.NumPreferences() != before+1 {
		t.Fatalf("insert response %+v (before=%d)", resp, before)
	}

	// Weights must sum to 1.
	rec = post(t, s, "/v1/preferences", map[string]interface{}{
		"preference": []float64{0.5, 0.5, 0.5, 0.5},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("non-normalized preference: %d", rec.Code)
	}
}

func TestDeleteEndpoints(t *testing.T) {
	s, ix := testServer(t)
	nP, nW := ix.NumProducts(), ix.NumPreferences()

	rec := del(t, s, "/v1/products/3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete product: %d %s", rec.Code, rec.Body.String())
	}
	var resp deleteResponse
	decodeInto(t, rec, &resp)
	if resp.Deleted != 1 || resp.Total != nP-1 || ix.NumProducts() != nP-1 {
		t.Fatalf("delete response %+v", resp)
	}

	// Batch delete by ids.
	rec = del(t, s, "/v1/preferences", map[string]interface{}{"ids": []int{0, 5, 9}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch delete: %d %s", rec.Code, rec.Body.String())
	}
	decodeInto(t, rec, &resp)
	if resp.Deleted != 3 || resp.Total != nW-3 || ix.NumPreferences() != nW-3 {
		t.Fatalf("batch delete response %+v", resp)
	}

	// Unknown id maps to 404, bad id syntax to 400, duplicate batch
	// ids to 400.
	if rec := del(t, s, "/v1/products/999999", nil); rec.Code != http.StatusNotFound {
		t.Errorf("out-of-range id: %d, want 404", rec.Code)
	}
	if rec := del(t, s, "/v1/products/notanumber", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("non-numeric id: %d, want 400", rec.Code)
	}
	if rec := del(t, s, "/v1/products", map[string]interface{}{"ids": []int{1, 1}}); rec.Code != http.StatusBadRequest {
		t.Errorf("duplicate ids: %d, want 400", rec.Code)
	}
}

func TestDeleteLastElementConflicts(t *testing.T) {
	s, ix := testServer(t)
	// Drain preferences down to one via the batch endpoint, then confirm
	// deleting the survivor is a 409.
	n := ix.NumPreferences()
	ids := make([]int, n-1)
	for i := range ids {
		ids[i] = i + 1
	}
	if rec := del(t, s, "/v1/preferences", map[string]interface{}{"ids": ids}); rec.Code != http.StatusOK {
		t.Fatalf("drain: %d %s", rec.Code, rec.Body.String())
	}
	if rec := del(t, s, "/v1/preferences/0", nil); rec.Code != http.StatusConflict {
		t.Fatalf("deleting last preference: %d, want 409", rec.Code)
	}
}

// TestMutationsVisibleToQueries exercises the end-to-end path: a product
// inserted over HTTP is immediately queryable by id, and after deleting
// it the id space shrinks back.
func TestMutationsVisibleToQueries(t *testing.T) {
	s, ix := testServer(t)
	n := ix.NumProducts()

	rec := post(t, s, "/v1/products", map[string]interface{}{
		"product": []float64{5, 5, 5, 5},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: %d", rec.Code)
	}
	rec = post(t, s, "/v1/reverse-topk", map[string]interface{}{
		"product": n, "k": 5,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("query of inserted product: %d %s", rec.Code, rec.Body.String())
	}

	if rec := del(t, s, "/v1/products/"+strconv.Itoa(n), nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	rec = post(t, s, "/v1/reverse-topk", map[string]interface{}{
		"product": n, "k": 5,
	})
	if rec.Code == http.StatusOK {
		t.Fatal("deleted product still queryable by id")
	}
}

func TestMutationMetrics(t *testing.T) {
	s, _ := testServer(t)
	post(t, s, "/v1/products", map[string]interface{}{"product": []float64{1, 2, 3, 4}})
	post(t, s, "/v1/products", map[string]interface{}{"products": [][]float64{{1, 1, 1, 1}, {2, 2, 2, 2}}})
	del(t, s, "/v1/preferences/0", nil)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`gridrank_mutations_total{kind="insert_product"} 3`,
		`gridrank_mutations_total{kind="delete_preference"} 1`,
		"gridrank_index_epoch 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestIndexMetadataEpoch(t *testing.T) {
	s, ix := testServer(t)
	readEpoch := func() float64 {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/index", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("index metadata: %d", rec.Code)
		}
		var meta map[string]interface{}
		decodeInto(t, rec, &meta)
		e, ok := meta["epoch"].(float64)
		if !ok {
			t.Fatalf("no epoch in metadata: %v", meta)
		}
		return e
	}
	if e := readEpoch(); e != 0 {
		t.Fatalf("fresh index epoch = %v", e)
	}
	post(t, s, "/v1/products", map[string]interface{}{"product": []float64{1, 2, 3, 4}})
	if e := readEpoch(); e != 1 {
		t.Fatalf("post-mutation epoch = %v, want 1", e)
	}
	if ix.Epoch() != 1 {
		t.Fatalf("index epoch = %d", ix.Epoch())
	}
}
