package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridrank"
	"gridrank/internal/trace"
)

// tracedServer builds a test server with explicit tracing configuration.
func tracedServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	P, err := gridrank.GenerateProducts(31, gridrank.Uniform, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	W, err := gridrank.GeneratePreferences(32, gridrank.Uniform, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := gridrank.New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(ix, cfg)
}

// postTraceparent is post with an optional traceparent request header.
func postTraceparent(t *testing.T, s *Server, path, traceparent string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// getTrace fetches one stored trace by ID, failing on any status but
// want.
func getTrace(t *testing.T, s *Server, id string, want int) *trace.TraceData {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/"+id, nil))
	if rec.Code != want {
		t.Fatalf("GET /debug/traces/%s: %d (want %d): %s", id, rec.Code, want, rec.Body.String())
	}
	if want != http.StatusOK {
		return nil
	}
	var td trace.TraceData
	if err := json.Unmarshal(rec.Body.Bytes(), &td); err != nil {
		t.Fatal(err)
	}
	return &td
}

func listTraces(t *testing.T, s *Server) tracesResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces: %d", rec.Code)
	}
	var resp tracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// spanNames indexes a stored trace's spans by name.
func spanNames(td *trace.TraceData) map[string]trace.SpanData {
	out := make(map[string]trace.SpanData, len(td.Spans))
	for _, sp := range td.Spans {
		out[sp.Name] = sp
	}
	return out
}

// TestSampledQueryEndToEnd is the acceptance path: a rate-1 server
// returns trace_id in the response, and the stored trace carries the
// snapshot, scan (with case breakdown) and merge spans.
func TestSampledQueryEndToEnd(t *testing.T) {
	s := tracedServer(t, Config{TraceSampleRate: 1})
	rec := postTraceparent(t, s, "/v1/reverse-kranks", "", map[string]interface{}{"product": 3, "k": 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("query failed: %d %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Matches []json.RawMessage `json:"matches"`
		TraceID string            `json:"trace_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.TraceID) != 32 {
		t.Fatalf("response trace_id %q is not a 32-hex trace ID", resp.TraceID)
	}
	if tp := rec.Header().Get("traceparent"); !strings.Contains(tp, resp.TraceID) {
		t.Errorf("traceparent response header %q does not carry trace ID %s", tp, resp.TraceID)
	}

	td := getTrace(t, s, resp.TraceID, http.StatusOK)
	if td.TraceID != resp.TraceID {
		t.Fatalf("stored trace ID %s != response %s", td.TraceID, resp.TraceID)
	}
	spans := spanNames(td)
	for _, name := range []string{"reverse_kranks", "decode", "snapshot", "scan", "merge", "encode"} {
		if _, ok := spans[name]; !ok {
			t.Errorf("trace missing span %q; have %v", name, td.Spans)
		}
	}
	scan := spans["scan"]
	for _, attr := range []string{"case1_filtered", "case2_filtered", "case3_refined", "filter_rate", "heap_admits", "cutoff_final"} {
		if _, ok := scan.Attrs[attr]; !ok {
			t.Errorf("scan span missing attr %q: %+v", attr, scan.Attrs)
		}
	}
	root := spans["reverse_kranks"]
	if root.Attrs["k"] != float64(5) { // JSON numbers decode as float64
		t.Errorf("root span k attr = %v", root.Attrs["k"])
	}
	for _, attr := range []string{"filtered", "refined", "filter_rate"} {
		if _, ok := root.Attrs[attr]; !ok {
			t.Errorf("root span missing %q: %+v", attr, root.Attrs)
		}
	}

	// The listing shows it too.
	list := listTraces(t, s)
	if list.Kept < 1 || len(list.Traces) < 1 || list.Traces[0].TraceID != resp.TraceID {
		t.Errorf("listing does not lead with the trace: %+v", list)
	}
}

// TestUnsampledQueryLeavesNoTrace checks the off path: no trace_id, no
// stored trace, 404 on lookup.
func TestUnsampledQueryLeavesNoTrace(t *testing.T) {
	s := tracedServer(t, Config{}) // tracing disabled entirely
	rec := postTraceparent(t, s, "/v1/reverse-topk", "", map[string]interface{}{"product": 3, "k": 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("query failed: %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "trace_id") {
		t.Errorf("untraced response advertises a trace: %s", rec.Body.String())
	}
	if rec.Header().Get("traceparent") != "" {
		t.Error("untraced response carries a traceparent header")
	}
	list := listTraces(t, s)
	if len(list.Traces) != 0 || list.Started != 0 {
		t.Errorf("disabled tracer stored traces: %+v", list)
	}
	getTrace(t, s, "00000000000000000000000000000001", http.StatusNotFound)
}

// TestSlowQueryAlwaysCaptured checks tail-based capture: rate 0 but a
// 1ns threshold stores every query and logs it.
func TestSlowQueryAlwaysCaptured(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	s := tracedServer(t, Config{SlowQuery: time.Nanosecond, Logger: logger})
	rec := postTraceparent(t, s, "/v1/reverse-kranks", "", map[string]interface{}{"product": 7, "k": 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("query failed: %d", rec.Code)
	}
	// Tail-only capture: the response must NOT advertise a trace ID (the
	// keep decision postdates the response), but the trace must be
	// stored and logged.
	if strings.Contains(rec.Body.String(), "trace_id") {
		t.Errorf("tail-only capture leaked trace_id into the response: %s", rec.Body.String())
	}
	list := listTraces(t, s)
	if len(list.Traces) != 1 || !list.Traces[0].Slow {
		t.Fatalf("slow query not captured: %+v", list)
	}
	id := list.Traces[0].TraceID
	log := logBuf.String()
	if !strings.Contains(log, "slow query") || !strings.Contains(log, id) {
		t.Errorf("slow-query log line missing (want trace %s): %q", id, log)
	}
	if !strings.Contains(log, "scan.case1_filtered") {
		t.Errorf("slow-query log line missing case breakdown: %q", log)
	}
	td := getTrace(t, s, id, http.StatusOK)
	if td.Sampled {
		t.Error("tail-captured trace claims head-sampled")
	}
	if _, ok := spanNames(td)["scan"]; !ok {
		t.Errorf("slow trace missing scan span: %+v", td.Spans)
	}

	// A fast query on a high-threshold server must be dropped.
	s2 := tracedServer(t, Config{SlowQuery: time.Hour})
	postTraceparent(t, s2, "/v1/reverse-kranks", "", map[string]interface{}{"product": 7, "k": 3})
	list = listTraces(t, s2)
	if len(list.Traces) != 0 || list.Dropped != 1 {
		t.Errorf("fast query not dropped under 1h threshold: %+v", list)
	}
}

// TestTraceparentPropagation checks the W3C header contract: a valid
// header reuses the remote trace ID in the response, the store and the
// propagated header; a malformed one gets a fresh ID and no error.
func TestTraceparentPropagation(t *testing.T) {
	s := tracedServer(t, Config{SlowQuery: time.Hour}) // head sampling off
	const remoteID = "0af7651916cd43dd8448eb211c80319c"
	rec := postTraceparent(t, s, "/v1/reverse-topk",
		"00-"+remoteID+"-b7ad6b7169203331-01",
		map[string]interface{}{"product": 2, "k": 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("query failed: %d %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != remoteID {
		t.Fatalf("remote trace ID not reused: got %q", resp.TraceID)
	}
	if tp := rec.Header().Get("traceparent"); !strings.HasPrefix(tp, "00-"+remoteID+"-") {
		t.Errorf("traceparent response header does not propagate the remote ID: %q", tp)
	}
	td := getTrace(t, s, remoteID, http.StatusOK)
	if !td.Remote {
		t.Error("stored trace not flagged remoteParent")
	}

	// Malformed headers: 200, fresh trace behaviour (here: no trace at
	// all, since head sampling is off and the query is fast... but the
	// hour threshold records then drops — so no stored remnant either).
	for _, bad := range []string{
		"00-" + strings.ToUpper(remoteID) + "-b7ad6b7169203331-01", // uppercase
		"ff-" + remoteID + "-b7ad6b7169203331-01",                  // version ff
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // zero ID
		"not a traceparent",
	} {
		rec := postTraceparent(t, s, "/v1/reverse-topk", bad, map[string]interface{}{"product": 2, "k": 5})
		if rec.Code != http.StatusOK {
			t.Errorf("malformed traceparent %q rejected with %d", bad, rec.Code)
		}
		if strings.Contains(rec.Body.String(), remoteID) {
			t.Errorf("malformed traceparent %q adopted the remote ID", bad)
		}
	}
}

// TestBatchTracing checks a traced batch lands every query's spans on
// one trace.
func TestBatchTracing(t *testing.T) {
	s := tracedServer(t, Config{TraceSampleRate: 1})
	rec := postTraceparent(t, s, "/v1/batch", "", map[string]interface{}{
		"queries": []map[string]interface{}{
			{"type": "reverse-topk", "product": 1, "k": 5},
			{"type": "reverse-kranks", "product": 2, "k": 3},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch failed: %d %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("batch response has no trace_id")
	}
	td := getTrace(t, s, resp.TraceID, http.StatusOK)
	var scans, snapshots int
	for _, sp := range td.Spans {
		switch sp.Name {
		case "scan":
			scans++
		case "snapshot":
			snapshots++
		}
	}
	if scans != 2 || snapshots != 2 {
		t.Errorf("batch trace has %d scan / %d snapshot spans, want 2/2: %+v", scans, snapshots, td.Spans)
	}
}

// TestTraceMetricsExported checks the scrape reflects tracer activity.
func TestTraceMetricsExported(t *testing.T) {
	s := tracedServer(t, Config{TraceSampleRate: 1})
	postTraceparent(t, s, "/v1/reverse-topk", "", map[string]interface{}{"product": 1, "k": 5})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"gridrank_traces_started_total 1",
		"gridrank_traces_kept_total 1",
		"gridrank_go_goroutines",
		"gridrank_build_info",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
