package server

// Tests for the request lifecycle added with the context-first API:
// opt-in stats, per-request deadlines, the /metrics exposition, the
// /v1/batch endpoint, and non-finite input rejection.

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridrank"
)

// bigServer builds a server over a preference set large enough that a
// query takes a measurable amount of time, for deadline tests.
func bigServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	P, err := gridrank.GenerateProducts(71, gridrank.Uniform, 4000, 6)
	if err != nil {
		t.Fatal(err)
	}
	W, err := gridrank.GeneratePreferences(72, gridrank.Uniform, 30000, 6)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := gridrank.New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(ix, cfg)
}

func TestStatsAreOptIn(t *testing.T) {
	s, _ := testServer(t)
	rec := post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 3, "k": 20})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if strings.Contains(rec.Body.String(), `"stats"`) {
		t.Errorf("stats must be omitted unless requested: %s", rec.Body.String())
	}
	rec = post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 3, "k": 20, "stats": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Stats *gridrank.Stats `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil {
		t.Fatalf("stats requested but missing: %s", rec.Body.String())
	}
	if resp.Stats.Filtered+resp.Stats.Refined == 0 {
		t.Errorf("stats block is empty: %+v", resp.Stats)
	}
	// Same contract on reverse-kranks.
	rec = post(t, s, "/v1/reverse-kranks", map[string]interface{}{"product": 3, "k": 5, "stats": true})
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"stats"`) {
		t.Errorf("kranks stats opt-in: %d %s", rec.Code, rec.Body.String())
	}
}

func TestPerRequestTimeout(t *testing.T) {
	s := bigServer(t, Config{})
	// 1ms cannot finish a 30k-preference scan cold; the deadline must cut
	// the query off and map to 504.
	rec := post(t, s, "/v1/reverse-kranks", map[string]interface{}{"product": 1, "k": 10, "timeoutMs": 1})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeoutMs=1: status %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Errorf("error should mention the deadline: %s", rec.Body.String())
	}
	// The timeout request must be counted in the error metric.
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), `gridrank_request_errors_total{endpoint="reverse_kranks",code="504"} 1`) {
		t.Errorf("504 missing from error metric:\n%s", mrec.Body.String())
	}
}

func TestServerDefaultTimeout(t *testing.T) {
	s := bigServer(t, Config{QueryTimeout: time.Nanosecond})
	rec := post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 1, "k": 10})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("default timeout: status %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	// A generous per-request override beats the tiny default.
	rec = post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 1, "k": 10, "timeoutMs": 60000})
	if rec.Code != http.StatusOK {
		t.Fatalf("override timeout: status %d (%s)", rec.Code, rec.Body.String())
	}
}

func TestNegativeTimeoutRejected(t *testing.T) {
	s, _ := testServer(t)
	rec := post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 1, "k": 10, "timeoutMs": -5})
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "timeoutMs") {
		t.Fatalf("timeoutMs=-5: status %d (%s)", rec.Code, rec.Body.String())
	}
}

func TestClientCancelIs499(t *testing.T) {
	s := bigServer(t, Config{})
	body := strings.NewReader(`{"product": 1, "k": 10}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/reverse-kranks", body)
	ctx, cancel := context.WithCancel(req.Context())
	cancel() // the client is already gone
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != statusClientClosed {
		t.Fatalf("cancelled client: status %d, want %d (%s)", rec.Code, statusClientClosed, rec.Body.String())
	}
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), `gridrank_request_errors_total{endpoint="reverse_kranks",code="499"} 1`) {
		t.Errorf("499 missing from error metric:\n%s", mrec.Body.String())
	}
}

func TestMetricsAfterWorkload(t *testing.T) {
	s, _ := testServer(t)
	for i := 0; i < 3; i++ {
		rec := post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": i, "k": 30})
		if rec.Code != http.StatusOK {
			t.Fatalf("warmup query %d: %d", i, rec.Code)
		}
	}
	post(t, s, "/v1/reverse-kranks", map[string]interface{}{"product": 0, "k": 5})
	post(t, s, "/v1/reverse-topk", map[string]interface{}{"k": 5}) // 400: no query

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`gridrank_requests_total{endpoint="reverse_topk"} 4`,
		`gridrank_requests_total{endpoint="reverse_kranks"} 1`,
		`gridrank_request_errors_total{endpoint="reverse_topk",code="400"} 1`,
		`gridrank_request_duration_seconds_bucket{endpoint="reverse_topk",le="+Inf"} 4`,
		`gridrank_request_duration_seconds_count{endpoint="reverse_kranks"} 1`,
		`gridrank_filtered_points_total{endpoint="reverse_topk"}`,
		`gridrank_filter_rate{endpoint="reverse_topk"} 0.`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, out)
		}
	}
	// POST must be rejected.
	prec := post(t, s, "/metrics", map[string]int{})
	if prec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: %d", prec.Code)
	}
}

func TestBatchMixedQueries(t *testing.T) {
	s, ix := testServer(t)
	rec := post(t, s, "/v1/batch", map[string]interface{}{
		"queries": []map[string]interface{}{
			{"type": "reverse-topk", "product": 7, "k": 50},
			{"type": "reverse-kranks", "product": 3, "k": 5},
			{"type": "reverse-topk", "product": 9, "k": 50},
			{"type": "reverse-kranks", "product": 999999, "k": 5}, // bad product
		},
		"parallelism": 2,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Results []struct {
			ReverseTopK *struct {
				Preferences []int `json:"preferences"`
				Count       int   `json:"count"`
			} `json:"reverseTopk"`
			ReverseKRanks *struct {
				Matches []struct {
					Preference int `json:"preference"`
					Rank       int `json:"rank"`
				} `json:"matches"`
			} `json:"reverseKranks"`
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(resp.Results))
	}
	// Item 0 and 2: RTK answers matching the direct API.
	for _, item := range []int{0, 2} {
		product := []int{7, 0, 9}[item]
		r := resp.Results[item]
		if r.ReverseTopK == nil || r.Error != "" {
			t.Fatalf("result %d: %+v", item, r)
		}
		want, err := ix.ReverseTopKCtx(context.Background(), ix.Products()[product], 50)
		if err != nil {
			t.Fatal(err)
		}
		if r.ReverseTopK.Count != len(want) {
			t.Errorf("result %d: count %d, want %d", item, r.ReverseTopK.Count, len(want))
		}
		for i := range want {
			if r.ReverseTopK.Preferences[i] != want[i] {
				t.Fatalf("result %d answer diverges at %d", item, i)
			}
		}
	}
	// Item 1: RKR answer matching the direct API.
	if resp.Results[1].ReverseKRanks == nil {
		t.Fatalf("result 1: %+v", resp.Results[1])
	}
	wantKR, err := ix.ReverseKRanksCtx(context.Background(), ix.Products()[3], 5)
	if err != nil {
		t.Fatal(err)
	}
	gotKR := resp.Results[1].ReverseKRanks.Matches
	if len(gotKR) != len(wantKR) {
		t.Fatalf("result 1: %d matches, want %d", len(gotKR), len(wantKR))
	}
	for i := range wantKR {
		if gotKR[i].Preference != wantKR[i].WeightIndex || gotKR[i].Rank != wantKR[i].Rank {
			t.Errorf("result 1 match %d: %+v, want %+v", i, gotKR[i], wantKR[i])
		}
	}
	// Item 3: its own error, not the batch's.
	if resp.Results[3].Error == "" {
		t.Errorf("result 3 should carry a per-item error: %+v", resp.Results[3])
	}
}

func TestBatchValidation(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		name string
		body interface{}
		want int
	}{
		{"empty", map[string]interface{}{"queries": []int{}}, http.StatusBadRequest},
		{"missing queries", map[string]interface{}{}, http.StatusBadRequest},
		{"negative parallelism", map[string]interface{}{
			"queries":     []map[string]interface{}{{"type": "reverse-topk", "product": 1, "k": 5}},
			"parallelism": -1}, http.StatusBadRequest},
		{"negative timeout", map[string]interface{}{
			"queries":   []map[string]interface{}{{"type": "reverse-topk", "product": 1, "k": 5}},
			"timeoutMs": -1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := post(t, s, "/v1/batch", c.body)
			if rec.Code != c.want {
				t.Errorf("status %d, want %d (%s)", rec.Code, c.want, rec.Body.String())
			}
		})
	}
	// Unknown type fails the item, not the request.
	rec := post(t, s, "/v1/batch", map[string]interface{}{
		"queries": []map[string]interface{}{{"type": "sideways", "product": 1, "k": 5}},
	})
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "unknown type") {
		t.Errorf("unknown type: %d %s", rec.Code, rec.Body.String())
	}
	// Over the batch limit.
	over := make([]map[string]interface{}, DefaultMaxBatch+1)
	for i := range over {
		over[i] = map[string]interface{}{"type": "reverse-topk", "product": 1, "k": 5}
	}
	rec = post(t, s, "/v1/batch", map[string]interface{}{"queries": over})
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "limit") {
		t.Errorf("over limit: %d %s", rec.Code, rec.Body.String())
	}
}

func TestBatchTimeout(t *testing.T) {
	s := bigServer(t, Config{})
	items := make([]map[string]interface{}, 16)
	for i := range items {
		items[i] = map[string]interface{}{"type": "reverse-kranks", "product": i, "k": 10}
	}
	rec := post(t, s, "/v1/batch", map[string]interface{}{"queries": items, "timeoutMs": 1})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("batch timeoutMs=1: status %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
}

// TestNonFiniteInputsRejected posts raw bodies whose numbers JSON cannot
// faithfully carry: NaN/Infinity tokens are invalid JSON, and 1e999
// overflows float64. All must answer 400 with a clear error.
func TestNonFiniteInputsRejected(t *testing.T) {
	s, _ := testServer(t)
	bodies := []string{
		`{"query": [NaN, 1, 2, 3], "k": 5}`,
		`{"query": [Infinity, 1, 2, 3], "k": 5}`,
		`{"query": [-Infinity, 1, 2, 3], "k": 5}`,
		`{"query": [1e999, 1, 2, 3], "k": 5}`,
		`{"query": [-1e999, 1, 2, 3], "k": 5}`,
	}
	for _, path := range []string{"/v1/reverse-topk", "/v1/reverse-kranks"} {
		for _, body := range bodies {
			req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", path, body, rec.Code)
			}
			if !strings.Contains(rec.Body.String(), "error") {
				t.Errorf("%s %s: missing error body: %s", path, body, rec.Body.String())
			}
		}
	}
	// A negative coordinate is syntactically valid JSON and must be
	// caught by the library's validation instead.
	rec := post(t, s, "/v1/reverse-topk", map[string]interface{}{"query": []float64{-1, 1, 2, 3}, "k": 5})
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "finite and non-negative") {
		t.Errorf("negative coordinate: %d %s", rec.Code, rec.Body.String())
	}
}

func smallServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	P, err := gridrank.GenerateProducts(31, gridrank.Uniform, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	W, err := gridrank.GeneratePreferences(32, gridrank.Uniform, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := gridrank.New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(ix, cfg)
}

func TestIndexReportsLifecycleConfig(t *testing.T) {
	s := smallServer(t, Config{QueryTimeout: 250 * time.Millisecond, MaxBatch: 64})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/index", nil))
	for _, want := range []string{`"queryTimeoutMs":250`, `"maxBatch":64`} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("missing %s in /v1/index: %s", want, rec.Body.String())
		}
	}
}

// TestRequestLogging checks the middleware emits one structured record
// per request with the endpoint and status attributes.
func TestRequestLogging(t *testing.T) {
	var sb strings.Builder
	s := smallServer(t, Config{Logger: slog.New(slog.NewTextHandler(&sb, nil))})
	post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 1, "k": 5})
	out := sb.String()
	for _, want := range []string{"endpoint=reverse_topk", "status=200", "method=POST"} {
		if !strings.Contains(out, want) {
			t.Errorf("log record missing %q: %s", want, out)
		}
	}
}
