package server

// Forensic debug endpoints: the flight recorder's digest ring and the
// one-shot diagnostics bundle. Both are snapshots — they read atomics
// and ring slots without pausing traffic, so fetching them during an
// incident is safe.

import (
	"net/http"

	"gridrank/internal/diag"
	"gridrank/internal/flight"
)

// flightResponse is the GET /debug/flight document.
type flightResponse struct {
	Enabled bool            `json:"enabled"`
	Counts  flight.Counts   `json:"counts"`
	Records []flight.Record `json:"records"`
}

// handleFlight serves the flight recorder's digests, newest first, with
// the lifetime counters so an empty ring can be told apart from a
// disabled recorder.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	resp := flightResponse{Enabled: s.ix.FlightEnabled()}
	if resp.Enabled {
		resp.Counts = s.ix.FlightCounts()
		resp.Records = s.ix.FlightRecords()
	}
	if resp.Records == nil {
		resp.Records = []flight.Record{}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// bundleFiles assembles the point-in-time capture served by
// GET /debug/bundle. Everything here is already exposed by other
// endpoints; the bundle's value is capturing all of it in the same
// instant, checksummed, in one artifact.
func (s *Server) bundleFiles() []diag.File {
	flightDoc := flightResponse{Enabled: s.ix.FlightEnabled(), Records: []flight.Record{}}
	if flightDoc.Enabled {
		flightDoc.Counts = s.ix.FlightCounts()
		if recs := s.ix.FlightRecords(); recs != nil {
			flightDoc.Records = recs
		}
	}
	traces := s.tracer.Traces()
	tracesDoc := map[string]any{"counts": s.tracer.Counts(), "traces": traces}
	return []diag.File{
		{Name: "goroutines.txt", Data: diag.Goroutines()},
		{Name: "runtime.json", Data: diag.RuntimeSnapshot()},
		{Name: "metrics.om", Data: diag.Buffer(s.metrics.WriteOpenMetrics)},
		{Name: "flight.json", Data: diag.MustJSON(flightDoc)},
		{Name: "traces.json", Data: diag.MustJSON(tracesDoc)},
		{Name: "index.json", Data: diag.MustJSON(s.indexMeta())},
		{Name: "subscriptions.json", Data: diag.MustJSON(s.ix.SubscriptionStats())},
		{Name: "config.json", Data: diag.MustJSON(s.configInfo)},
	}
}

// handleBundle streams the diagnostics bundle as a tar.gz download.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="rrq-diag.tar.gz"`)
	// Write errors mid-stream mean the client went away; there is no
	// useful status left to send.
	_ = diag.WriteBundle(w, "server", s.bundleFiles())
}
