package server

import (
	"fmt"
	"net/http"
	"time"

	"gridrank"
	"gridrank/internal/trace"
)

// Tracing glue: request-scoped trace construction, the /debug/traces
// endpoints and the response decoration shared by the query handlers.

// startTrace begins a per-request trace named after the endpoint,
// honouring an incoming W3C traceparent header (a valid remote parent
// reuses the caller's trace ID and forces sampling; a malformed header
// is treated as absent, never rejected). Returns nil — a free no-op for
// every span call — when tracing is disabled or the query lost the
// sampling coin toss.
func (s *Server) startTrace(r *http.Request, name string) *trace.Trace {
	return s.tracer.Start(name, trace.ParseTraceparent(r.Header.Get("traceparent")))
}

// traceQueryOption appends WithTrace to opts when the request is traced.
func traceQueryOption(opts []gridrank.QueryOption, tr *trace.Trace) []gridrank.QueryOption {
	if tr != nil {
		opts = append(opts, gridrank.WithTrace(tr))
	}
	return opts
}

// traceIDFromHeader extracts the 32-hex trace ID from a W3C traceparent
// header ("00-<traceID>-<spanID>-<flags>"), or "" when absent or
// malformed. The middleware uses it to turn the header decorateTraced
// set into a latency-histogram exemplar.
func traceIDFromHeader(tp string) string {
	if len(tp) < 36 || tp[2] != '-' || tp[35] != '-' {
		return ""
	}
	return tp[3:35]
}

// decorateTraced stamps a head-sampled trace onto the response headers.
// Tail-only captures (slow-query candidates) are not advertised: whether
// they survive is decided at Finish, after the response is gone — find
// those through the slow-query log line or GET /debug/traces.
func decorateTraced(w http.ResponseWriter, tr *trace.Trace) (traceID string) {
	if !tr.Sampled() {
		return ""
	}
	w.Header().Set("traceparent", tr.Traceparent())
	return tr.ID()
}

// finishQueryTrace records the query outcome on the root span and
// completes the trace.
func finishQueryTrace(tr *trace.Trace, st *gridrank.Stats, err error) {
	if tr == nil {
		return
	}
	if st != nil {
		tr.SetAttr("filtered", st.Filtered)
		tr.SetAttr("refined", st.Refined)
		tr.SetAttr("filter_rate", st.FilterRate())
	}
	if err != nil {
		tr.SetAttr("error", err.Error())
	}
	tr.Finish()
}

// traceSummary is one row of GET /debug/traces.
type traceSummary struct {
	TraceID    string    `json:"traceId"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"durationMs"`
	Sampled    bool      `json:"sampled"`
	Slow       bool      `json:"slow,omitempty"`
	Remote     bool      `json:"remoteParent,omitempty"`
	Spans      int       `json:"spans"`
}

type tracesResponse struct {
	Traces []traceSummary `json:"traces"`
	// Counts reports the tracer's lifetime totals, so an empty list can
	// be told apart from a disabled tracer.
	Started int64 `json:"started"`
	Kept    int64 `json:"kept"`
	Dropped int64 `json:"dropped"`
	Slow    int64 `json:"slow"`
	Evicted int64 `json:"evicted"`
	// Resident counts traces currently in the ring; with Evicted it
	// satisfies kept == evicted + resident at any quiescent point.
	Resident int64 `json:"resident"`
}

// handleTraces lists the stored traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	stored := s.tracer.Traces()
	resp := tracesResponse{Traces: make([]traceSummary, 0, len(stored))}
	for _, td := range stored {
		resp.Traces = append(resp.Traces, traceSummary{
			TraceID:    td.TraceID,
			Name:       td.Name,
			Start:      td.Start,
			DurationMs: float64(td.DurationNs) / 1e6,
			Sampled:    td.Sampled,
			Slow:       td.Slow,
			Remote:     td.Remote,
			Spans:      len(td.Spans),
		})
	}
	c := s.tracer.Counts()
	resp.Started, resp.Kept, resp.Dropped, resp.Slow, resp.Evicted, resp.Resident =
		c.Started, c.Kept, c.Dropped, c.Slow, c.Evicted, c.Resident
	s.writeJSON(w, http.StatusOK, resp)
}

// handleTraceByID serves one stored trace with its full span tree.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	td := s.tracer.Get(id)
	if td == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no stored trace %q (never captured, or evicted from the bounded ring)", id))
		return
	}
	s.writeJSON(w, http.StatusOK, td)
}
