package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gridrank"
)

func testServer(t *testing.T) (*Server, *gridrank.Index) {
	t.Helper()
	P, err := gridrank.GenerateProducts(31, gridrank.Uniform, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	W, err := gridrank.GeneratePreferences(32, gridrank.Uniform, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := gridrank.New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(ix), ix
}

func post(t *testing.T, s *Server, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
}

func TestIndexMetadata(t *testing.T) {
	s, ix := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/index", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var meta map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if int(meta["products"].(float64)) != ix.NumProducts() {
		t.Errorf("products = %v", meta["products"])
	}
	if int(meta["dim"].(float64)) != 4 {
		t.Errorf("dim = %v", meta["dim"])
	}
	if meta["format"] != "GRI3" || meta["resident"] != "heap" {
		t.Errorf("format/resident = %v/%v, want GRI3/heap", meta["format"], meta["resident"])
	}
	// POST must be rejected.
	rec = post(t, s, "/v1/index", map[string]int{})
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/index: %d", rec.Code)
	}
}

func TestReverseTopKByProduct(t *testing.T) {
	s, ix := testServer(t)
	rec := post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 7, "k": 50})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Preferences []int `json:"preferences"`
		Count       int   `json:"count"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want, err := ix.ReverseTopKCtx(context.Background(), ix.Products()[7], 50)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(want) || len(resp.Preferences) != len(want) {
		t.Fatalf("got %d results, want %d", resp.Count, len(want))
	}
	for i := range want {
		if resp.Preferences[i] != want[i] {
			t.Fatalf("result %d = %d, want %d", i, resp.Preferences[i], want[i])
		}
	}
}

func TestReverseTopKEmptyAnswerIsJSONArray(t *testing.T) {
	s, _ := testServer(t)
	// A terrible product (max on every attribute) has an empty RTK set.
	q := []float64{9999, 9999, 9999, 9999}
	rec := post(t, s, "/v1/reverse-topk", map[string]interface{}{"query": q, "k": 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"preferences":[]`) {
		t.Errorf("empty answer should marshal as [], got %s", rec.Body.String())
	}
}

func TestReverseKRanks(t *testing.T) {
	s, ix := testServer(t)
	rec := post(t, s, "/v1/reverse-kranks", map[string]interface{}{"product": 3, "k": 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Matches []struct {
			Preference int `json:"preference"`
			Rank       int `json:"rank"`
			Position   int `json:"position"`
		} `json:"matches"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want, err := ix.ReverseKRanksCtx(context.Background(), ix.Products()[3], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 5 {
		t.Fatalf("got %d matches", len(resp.Matches))
	}
	for i, m := range resp.Matches {
		if m.Preference != want[i].WeightIndex || m.Rank != want[i].Rank || m.Position != want[i].Rank+1 {
			t.Fatalf("match %d = %+v, want %+v", i, m, want[i])
		}
	}
}

func TestTopKAndRank(t *testing.T) {
	s, ix := testServer(t)
	w := ix.Preferences()[0]
	rec := post(t, s, "/v1/topk", map[string]interface{}{"preference": w, "k": 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("topk status %d: %s", rec.Code, rec.Body.String())
	}
	var topkResp struct {
		Products []struct {
			Index int     `json:"Index"`
			Score float64 `json:"Score"`
		} `json:"products"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &topkResp); err != nil {
		t.Fatal(err)
	}
	if len(topkResp.Products) != 3 {
		t.Fatalf("got %d products", len(topkResp.Products))
	}
	best := topkResp.Products[0].Index
	rec = post(t, s, "/v1/rank", map[string]interface{}{"preference": w, "product": best})
	if rec.Code != http.StatusOK {
		t.Fatalf("rank status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"rank":0`) {
		t.Errorf("the top product must have rank 0: %s", rec.Body.String())
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		name string
		path string
		body interface{}
		want int
	}{
		{"no query", "/v1/reverse-topk", map[string]int{"k": 5}, http.StatusBadRequest},
		{"both query and product", "/v1/reverse-topk",
			map[string]interface{}{"query": []float64{1, 2, 3, 4}, "product": 1, "k": 5},
			http.StatusBadRequest},
		{"bad k", "/v1/reverse-topk", map[string]interface{}{"product": 0, "k": 0}, http.StatusBadRequest},
		{"wrong dim", "/v1/reverse-kranks",
			map[string]interface{}{"query": []float64{1}, "k": 5}, http.StatusBadRequest},
		{"product out of range", "/v1/reverse-kranks",
			map[string]interface{}{"product": 99999, "k": 5}, http.StatusBadRequest},
		{"unknown field", "/v1/reverse-topk",
			map[string]interface{}{"product": 0, "k": 5, "bogus": true}, http.StatusBadRequest},
		{"missing preference", "/v1/topk", map[string]int{"k": 5}, http.StatusBadRequest},
		{"rank missing preference", "/v1/rank", map[string]interface{}{"product": 0}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := post(t, s, c.path, c.body)
			if rec.Code != c.want {
				t.Errorf("%s: status %d, want %d (%s)", c.path, rec.Code, c.want, rec.Body.String())
			}
			if !strings.Contains(rec.Body.String(), "error") {
				t.Errorf("error body missing: %s", rec.Body.String())
			}
		})
	}
}

func TestMethodEnforcement(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/reverse-topk", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET query endpoint: %d", rec.Code)
	}
}

func TestMalformedJSON(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/reverse-topk", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d", rec.Code)
	}
}

// Handlers must be safe under concurrent queries (the index is immutable).
func TestConcurrentRequests(t *testing.T) {
	s, _ := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				rec := post(t, s, "/v1/reverse-kranks",
					map[string]interface{}{"product": (g*8 + i) % 500, "k": 3})
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("goroutine %d: status %d", g, rec.Code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
