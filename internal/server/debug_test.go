package server

// Tests for the forensic surface: the live /metrics scrape in both
// exposition flavors (validated by the strict parser in
// internal/metrics/metricstest, exemplars included), the /debug/flight
// digest endpoint, the /debug/bundle tar.gz (round-tripped through
// internal/diag and manifest-validated), and the OTLP exporter wired
// end-to-end through Config against a fake collector.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gridrank/internal/diag"
	"gridrank/internal/metrics/metricstest"
)

func TestTraceIDFromHeader(t *testing.T) {
	const id = "4bf92f3577b34da6a3ce929d0e0e4736"
	for tp, want := range map[string]string{
		"00-" + id + "-00f067aa0ba902b7-01": id,
		"00-" + id + "-00f067aa0ba902b7-00": id,
		"":                                  "",
		"garbage":                           "",
		"00-" + id:                          "", // no span segment
		"0x-" + id + "-00f067aa0ba902b7-01": id, // version not validated, only shape
	} {
		if got := traceIDFromHeader(tp); got != want {
			t.Errorf("traceIDFromHeader(%q) = %q, want %q", tp, got, want)
		}
	}
}

func TestAcceptsOpenMetrics(t *testing.T) {
	for accept, want := range map[string]bool{
		"":                             false,
		"text/plain":                   false,
		"application/openmetrics-text": true,
		"application/openmetrics-text; version=1.0.0; charset=utf-8": true,
		"text/plain, application/openmetrics-text;q=0.9":             true,
		"application/openmetrics-json":                               false,
	} {
		if got := acceptsOpenMetrics(accept); got != want {
			t.Errorf("acceptsOpenMetrics(%q) = %v, want %v", accept, got, want)
		}
	}
}

// TestLiveScrapeOpenMetrics scrapes a real HTTP server end-to-end: a
// traced query's trace ID (from the response traceparent header) must
// come back as an exemplar on a reverse_topk latency bucket, the scrape
// must carry the negotiated OpenMetrics content type, and the whole
// body must survive the strict parser — # EOF, exemplar syntax, label
// escaping and all.
func TestLiveScrapeOpenMetrics(t *testing.T) {
	s := tracedServer(t, Config{TraceSampleRate: 1})
	srv := httptest.NewServer(s)
	defer srv.Close()

	body, _ := json.Marshal(map[string]interface{}{"product": 3, "k": 10})
	resp, err := http.Post(srv.URL+"/v1/reverse-topk", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	traceID := traceIDFromHeader(resp.Header.Get("traceparent"))
	if traceID == "" {
		t.Fatalf("traced query returned no traceparent header (got %q)", resp.Header.Get("traceparent"))
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	scrape, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(scrape.Body)
	scrape.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := scrape.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("Content-Type = %q, want application/openmetrics-text", ct)
	}

	families := metricstest.ParseOpenMetrics(t, string(raw))
	hist := families["gridrank_request_duration_seconds"]
	if hist == nil {
		t.Fatal("latency histogram family missing from live scrape")
	}
	found := false
	for _, smp := range hist.Samples {
		if smp.Exemplar == nil || smp.Labels["endpoint"] != "reverse_topk" {
			continue
		}
		found = true
		if smp.Exemplar.Labels["trace_id"] != traceID {
			t.Errorf("exemplar trace_id = %q, want %q", smp.Exemplar.Labels["trace_id"], traceID)
		}
		le, err := metricstest.ParseValue(smp.Labels["le"])
		if err != nil {
			t.Fatalf("bad le %q", smp.Labels["le"])
		}
		if smp.Exemplar.Value > le {
			t.Errorf("exemplar value %g above its bucket bound %g", smp.Exemplar.Value, le)
		}
	}
	if !found {
		t.Error("no exemplar on any reverse_topk latency bucket")
	}
	// The counter family must be announced by base name in this flavor.
	if families["gridrank_requests_total"] != nil || families["gridrank_requests"] == nil {
		t.Error("OpenMetrics counter announcement not on base name")
	}
}

// TestLiveScrapeClassicDefault checks that without Accept negotiation
// the scrape is classic 0.0.4: parseable, exemplar-free, no # EOF.
func TestLiveScrapeClassicDefault(t *testing.T) {
	s := tracedServer(t, Config{TraceSampleRate: 1})
	postTraceparent(t, s, "/v1/reverse-topk", "", map[string]interface{}{"product": 1, "k": 5})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	text := rec.Body.String()
	metricstest.ParseExposition(t, text) // fails on exemplars or # EOF
	if strings.Contains(text, " # {") {
		t.Error("classic scrape leaked exemplar syntax")
	}
}

func TestDebugFlightEndpoint(t *testing.T) {
	s, _ := testServer(t)
	post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 2, "k": 5})
	rec := post(t, s, "/v1/products", map[string]interface{}{"products": [][]float64{{1, 2, 3, 4}}})
	if rec.Code != http.StatusOK && rec.Code != http.StatusCreated {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body.String())
	}

	frec := httptest.NewRecorder()
	s.ServeHTTP(frec, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if frec.Code != http.StatusOK {
		t.Fatalf("GET /debug/flight: %d", frec.Code)
	}
	var resp struct {
		Enabled bool `json:"enabled"`
		Counts  struct {
			Recorded  int64 `json:"Recorded"`
			Queries   int64 `json:"Queries"`
			Mutations int64 `json:"Mutations"`
		}
		Records []map[string]interface{} `json:"records"`
	}
	if err := json.Unmarshal(frec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("flight response not JSON: %v", err)
	}
	if !resp.Enabled {
		t.Fatal("flight recorder disabled on a default index")
	}
	if resp.Counts.Queries < 1 || resp.Counts.Mutations < 1 {
		t.Errorf("flight counts missing traffic: %+v", resp.Counts)
	}
	if len(resp.Records) == 0 {
		t.Error("flight ring empty after traffic")
	}
}

// TestDebugBundle fetches the diagnostics bundle and validates it the
// way rrqdiag would: read the tar.gz, check the manifest hashes both
// ways, and spot-check each artifact is the real thing — the metrics
// snapshot parses as strict OpenMetrics and the config is sanitized.
func TestDebugBundle(t *testing.T) {
	s := tracedServer(t, Config{TraceSampleRate: 1})
	post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 2, "k": 5})

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/bundle", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/bundle: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/gzip" {
		t.Errorf("Content-Type = %q", ct)
	}

	m, files, err := diag.ReadBundle(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if err := diag.Validate(m, files); err != nil {
		t.Fatalf("bundle failed manifest validation: %v", err)
	}
	if m.Source != "server" {
		t.Errorf("manifest source = %q", m.Source)
	}
	for _, name := range []string{
		"goroutines.txt", "runtime.json", "metrics.om", "flight.json",
		"traces.json", "index.json", "subscriptions.json", "config.json",
	} {
		if files[name] == nil {
			t.Errorf("bundle missing %s (have %v)", name, m.Entries)
		}
	}

	metricstest.ParseOpenMetrics(t, string(files["metrics.om"]))
	if !strings.Contains(string(files["goroutines.txt"]), "goroutine ") {
		t.Error("goroutines.txt is not a goroutine dump")
	}
	var flightDoc struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(files["flight.json"], &flightDoc); err != nil || !flightDoc.Enabled {
		t.Errorf("flight.json malformed (err %v): %s", err, files["flight.json"])
	}
	var cfg map[string]interface{}
	if err := json.Unmarshal(files["config.json"], &cfg); err != nil {
		t.Fatalf("config.json not JSON: %v", err)
	}
	if cfg["otlpConfigured"] != false {
		t.Errorf("otlpConfigured = %v, want false", cfg["otlpConfigured"])
	}
	for k := range cfg {
		if strings.Contains(strings.ToLower(k), "endpoint") {
			t.Errorf("sanitized config leaks key %q", k)
		}
	}
}

// TestOTLPExportThroughServer wires Config.OTLPEndpoint against a fake
// collector and checks a traced query's spans arrive after Drain, the
// scrape reports exporter counters, and the bundle's config redacts the
// collector URL down to a boolean.
func TestOTLPExportThroughServer(t *testing.T) {
	var mu sync.Mutex
	var bodies [][]byte
	col := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/traces" {
			t.Errorf("collector got path %q", r.URL.Path)
		}
		raw, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, raw)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer col.Close()

	s := tracedServer(t, Config{TraceSampleRate: 1, OTLPEndpoint: col.URL})
	rec := postTraceparent(t, s, "/v1/reverse-topk", "", map[string]interface{}{"product": 4, "k": 8})
	if rec.Code != http.StatusOK {
		t.Fatalf("query status %d", rec.Code)
	}
	traceID := traceIDFromHeader(rec.Header().Get("traceparent"))
	if traceID == "" {
		t.Fatal("no traceparent on traced response")
	}

	s.Drain() // flushes the exporter
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(bodies)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	all := strings.Join(func() []string {
		out := make([]string, len(bodies))
		for i, b := range bodies {
			out[i] = string(b)
		}
		return out
	}(), "\n")
	mu.Unlock()
	if !strings.Contains(all, traceID) {
		t.Errorf("collector never received trace %s; payloads: %.400s", traceID, all)
	}
	if !strings.Contains(all, `"service.name"`) {
		t.Error("export missing service.name resource attribute")
	}

	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := mrec.Body.String()
	if !strings.Contains(body, "gridrank_otlp_spans_enqueued_total 1") {
		t.Errorf("scrape missing OTLP enqueue counter:\n%s", body)
	}

	brec := httptest.NewRecorder()
	s.ServeHTTP(brec, httptest.NewRequest(http.MethodGet, "/debug/bundle", nil))
	_, files, err := diag.ReadBundle(bytes.NewReader(brec.Body.Bytes()))
	if err != nil {
		t.Fatalf("bundle after drain: %v", err)
	}
	if strings.Contains(string(files["config.json"]), col.URL) {
		t.Error("sanitized config leaks the collector URL")
	}
	if !strings.Contains(string(files["config.json"]), `"otlpConfigured": true`) &&
		!strings.Contains(string(files["config.json"]), `"otlpConfigured":true`) {
		t.Errorf("config.json should record otlpConfigured=true: %s", files["config.json"])
	}
}
