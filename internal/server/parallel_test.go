package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"gridrank"
)

// capServer builds a server with an explicit parallelism cap.
func capServer(t *testing.T, maxPar int) (*Server, *gridrank.Index) {
	t.Helper()
	P, err := gridrank.GenerateProducts(51, gridrank.Uniform, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	W, err := gridrank.GeneratePreferences(52, gridrank.Uniform, 150, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := gridrank.New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(ix, Config{MaxParallelism: maxPar}), ix
}

func TestIndexReportsMaxParallelism(t *testing.T) {
	s, _ := capServer(t, 3)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/index", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"maxParallelism":3`) {
		t.Fatalf("index metadata missing maxParallelism=3: %s", rec.Body.String())
	}
	// The default configuration caps at GOMAXPROCS.
	def, _ := testServer(t)
	rec = httptest.NewRecorder()
	def.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/index", nil))
	want := fmt.Sprintf(`"maxParallelism":%d`, runtime.GOMAXPROCS(0))
	if !strings.Contains(rec.Body.String(), want) {
		t.Fatalf("default index metadata missing %s: %s", want, rec.Body.String())
	}
}

func TestParallelismRejectsNegative(t *testing.T) {
	s, _ := capServer(t, 4)
	for _, path := range []string{"/v1/reverse-topk", "/v1/reverse-kranks"} {
		rec := post(t, s, path, map[string]interface{}{"product": 0, "k": 5, "parallelism": -2})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s parallelism=-2: status %d, want 400 (%s)", path, rec.Code, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), "parallelism") {
			t.Errorf("%s: error should name the field: %s", path, rec.Body.String())
		}
	}
}

func TestParallelismRejectsNonInteger(t *testing.T) {
	s, _ := capServer(t, 4)
	rec := post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 0, "k": 5, "parallelism": "lots"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf(`parallelism="lots": status %d, want 400`, rec.Code)
	}
}

// TestParallelismClampsToCap sends a request far above the cap: it must
// succeed (clamped, not rejected) and return the same answer as the
// sequential request.
func TestParallelismClampsToCap(t *testing.T) {
	s, _ := capServer(t, 2)
	seq := post(t, s, "/v1/reverse-kranks", map[string]interface{}{"product": 7, "k": 10})
	if seq.Code != http.StatusOK {
		t.Fatalf("sequential request failed: %d %s", seq.Code, seq.Body.String())
	}
	for _, p := range []int{1, 2, 3, 10000} {
		rec := post(t, s, "/v1/reverse-kranks", map[string]interface{}{"product": 7, "k": 10, "parallelism": p})
		if rec.Code != http.StatusOK {
			t.Fatalf("parallelism=%d: status %d (%s)", p, rec.Code, rec.Body.String())
		}
		if got, want := matchesOf(t, rec), matchesOf(t, seq); got != want {
			t.Errorf("parallelism=%d: matches %s != sequential %s", p, got, want)
		}
	}
	rtkSeq := post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 7, "k": 40})
	rtkPar := post(t, s, "/v1/reverse-topk", map[string]interface{}{"product": 7, "k": 40, "parallelism": 9999})
	if rtkPar.Code != http.StatusOK {
		t.Fatalf("rtk parallelism=9999: status %d (%s)", rtkPar.Code, rtkPar.Body.String())
	}
	if got, want := preferencesOf(t, rtkPar), preferencesOf(t, rtkSeq); got != want {
		t.Errorf("rtk clamped: preferences %s != sequential %s", got, want)
	}
}

// matchesOf extracts the serialized matches array (ignoring stats, which
// legitimately differ between sequential and parallel execution).
func matchesOf(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	return fieldOf(t, rec, "matches")
}

func preferencesOf(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	return fieldOf(t, rec, "preferences")
}

func fieldOf(t *testing.T, rec *httptest.ResponseRecorder, field string) string {
	t.Helper()
	var m map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("parsing response: %v (%s)", err, rec.Body.String())
	}
	return fmt.Sprintf("%v", m[field])
}
