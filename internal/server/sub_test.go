package server

// End-to-end tests of the continuous subscription endpoints: register
// over HTTP, stream enter/leave events as SSE while mutations land, and
// — the shutdown seam this PR pins — Drain must end every open stream
// with a terminal "shutdown" event instead of stalling graceful
// shutdown until the drain deadline.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"gridrank"
)

// subTestServer builds a server over a deterministic two-point index:
// W = {(0.5, 0.5)} ranks (0.1, 0.1) first, so mutations below or above
// that point have known effects on its monitors.
func subTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	P := []gridrank.Vector{{0.1, 0.1}, {0.9, 0.9}}
	W := []gridrank.Vector{{0.5, 0.5}}
	ix, err := gridrank.New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(ix, cfg)
}

func subscribe(t *testing.T, ts *httptest.Server, body string) subscribeResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/subscriptions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	var sr subscribeResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// sseEvent is one parsed SSE frame.
type sseTestEvent struct {
	name string
	data subEventData
}

// readSSE consumes one SSE frame (event + data lines up to the blank
// separator) from the stream.
func readSSE(t *testing.T, sc *bufio.Scanner) sseTestEvent {
	t.Helper()
	var ev sseTestEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			if ev.name != "" {
				return ev
			}
		}
	}
	t.Fatalf("SSE stream ended mid-frame: %v", sc.Err())
	return ev
}

func TestSubscriptionSSELifecycle(t *testing.T) {
	s := subTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sr := subscribe(t, ts, `{"kind":"reverse-topk","query":[0.1,0.1],"k":1}`)
	if sr.Kind != "reverse-topk" || sr.K != 1 {
		t.Fatalf("subscribe response = %+v", sr)
	}
	// (0.1, 0.1) is the best product for the only preference: member.
	if len(sr.Members) != 1 || sr.Members[0].Preference != 0 {
		t.Fatalf("initial members = %+v, want [pref 0]", sr.Members)
	}
	if sr.Events != fmt.Sprintf("/v1/subscriptions/%d/events", sr.ID) {
		t.Fatalf("events path = %q", sr.Events)
	}

	stream, err := http.Get(ts.URL + sr.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(stream.Body)

	// A product strictly below the monitored point pushes the
	// preference's rank to 1: it must leave the top-1 set.
	resp := post(t, s, "/v1/products", map[string]interface{}{"product": []float64{0.05, 0.05}})
	if resp.Code != http.StatusOK && resp.Code != http.StatusCreated {
		t.Fatalf("insert: %d %s", resp.Code, resp.Body.String())
	}
	ev := readSSE(t, sc)
	if ev.name != "leave" || ev.data.Preference != 0 || ev.data.Seq != 1 {
		t.Fatalf("event = %+v, want leave pref 0 seq 1", ev)
	}

	// Deleting the interloper restores the membership.
	req := httptest.NewRequest(http.MethodDelete, "/v1/products/2", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body.String())
	}
	ev = readSSE(t, sc)
	if ev.name != "enter" || ev.data.Preference != 0 || ev.data.Seq != 2 {
		t.Fatalf("event = %+v, want enter pref 0 seq 2", ev)
	}

	// DELETE ends the subscription; the stream closes with a terminal
	// "cancelled" frame.
	req = httptest.NewRequest(http.MethodDelete, fmt.Sprintf("/v1/subscriptions/%d", sr.ID), nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("unsubscribe: %d %s", rec.Code, rec.Body.String())
	}
	if ev := readSSE(t, sc); ev.name != "cancelled" {
		t.Fatalf("terminal event = %+v, want cancelled", ev)
	}
}

func TestSubscriptionValidation(t *testing.T) {
	s := subTestServer(t, Config{MaxSubscribers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"kind":"nope","query":[0.1,0.1],"k":1}`, http.StatusBadRequest},
		{`{"kind":"reverse-topk","query":[0.1,0.1],"k":0}`, http.StatusBadRequest},
		{`{"kind":"reverse-topk","k":1}`, http.StatusBadRequest},
		{`{"kind":"reverse-topk","query":[0.1,0.1],"product":1,"k":1}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/subscriptions", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("subscribe %s: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}

	// Unknown ids are 404 on both the stream and the delete.
	resp, err := http.Get(ts.URL + "/v1/subscriptions/999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events of unknown id: %d", resp.StatusCode)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/subscriptions/999", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("delete unknown id: %d", rec.Code)
	}

	// The configured limit holds: the second subscription is 429.
	subscribe(t, ts, `{"kind":"reverse-kranks","product":0,"k":1}`)
	resp, err = http.Post(ts.URL+"/v1/subscriptions", "application/json",
		strings.NewReader(`{"kind":"reverse-topk","product":0,"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-limit subscribe: %d, want 429", resp.StatusCode)
	}
}

// TestDrainEndsSSEStreams is the shutdown-seam regression test: an open
// SSE stream must observe Drain, emit a terminal "shutdown" event and
// return — leaving no handler goroutine behind to stall graceful
// shutdown. The leak check is twofold: the terminal frame arrives, and
// httptest.Server.Close (which blocks until every handler returns)
// completes promptly.
func TestDrainEndsSSEStreams(t *testing.T) {
	s := subTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	before := runtime.NumGoroutine()
	sr := subscribe(t, ts, `{"kind":"reverse-topk","query":[0.1,0.1],"k":1}`)
	stream, err := http.Get(ts.URL + sr.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)

	// Drain with the stream idle: the handler must wake on the drain
	// signal, not on a next event that never comes.
	done := make(chan sseTestEvent, 1)
	go func() { done <- readSSE(t, sc) }()
	s.Drain()
	select {
	case ev := <-done:
		if ev.name != "shutdown" {
			t.Fatalf("terminal event = %+v, want shutdown", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE handler did not observe Drain within 5s")
	}
	// The stream is over: the body reaches EOF rather than blocking.
	if sc.Scan() {
		t.Fatalf("unexpected post-shutdown frame: %q", sc.Text())
	}
	stream.Body.Close()

	// New subscriptions are refused while draining.
	resp, err := http.Post(ts.URL+"/v1/subscriptions", "application/json",
		strings.NewReader(`{"kind":"reverse-topk","product":0,"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("subscribe while draining: %d, want 503", resp.StatusCode)
	}
	// Drain is idempotent.
	s.Drain()

	// No handler goroutine lingers once the client connection is gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines: %d before, %d after drain", before, n)
	}
}
