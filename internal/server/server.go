// Package server exposes a gridrank index over HTTP with a small JSON
// API, turning the library into the kind of service the paper's
// applications describe (market analysis, product placement, business
// reviewing). The index is immutable, so all handlers are safe under
// concurrent requests.
//
// Endpoints:
//
//	GET  /healthz            liveness
//	GET  /v1/index           index metadata (incl. maxParallelism)
//	POST /v1/reverse-topk    {"query":[...]|"product":i, "k":100, "parallelism":4}
//	POST /v1/reverse-kranks  {"query":[...]|"product":i, "k":10, "parallelism":4}
//	POST /v1/topk            {"preference":[...], "k":10}
//	POST /v1/rank            {"preference":[...], "query":[...]|"product":i}
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"

	"gridrank"
)

// maxBodyBytes bounds request bodies; a query vector of a few thousand
// dimensions fits comfortably.
const maxBodyBytes = 1 << 20

// Config tunes server behaviour beyond the index itself.
type Config struct {
	// MaxParallelism caps the per-request "parallelism" field of the
	// reverse-topk and reverse-kranks endpoints: requests asking for
	// more workers are clamped to this value, never rejected. 0 means
	// GOMAXPROCS, the number of workers beyond which a single query
	// cannot speed up anyway.
	MaxParallelism int
}

// Server wraps an index with HTTP handlers.
type Server struct {
	ix             *gridrank.Index
	mux            *http.ServeMux
	maxParallelism int
}

// New builds a Server around an index with the default configuration.
func New(ix *gridrank.Index) *Server {
	return NewWithConfig(ix, Config{})
}

// NewWithConfig builds a Server around an index.
func NewWithConfig(ix *gridrank.Index, cfg Config) *Server {
	if cfg.MaxParallelism <= 0 {
		cfg.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	s := &Server{ix: ix, mux: http.NewServeMux(), maxParallelism: cfg.MaxParallelism}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/index", s.handleIndex)
	s.mux.HandleFunc("/v1/reverse-topk", s.handleReverseTopK)
	s.mux.HandleFunc("/v1/reverse-kranks", s.handleReverseKRanks)
	s.mux.HandleFunc("/v1/topk", s.handleTopK)
	s.mux.HandleFunc("/v1/rank", s.handleRank)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// queryRequest is the shared request shape: either an inline vector or a
// reference to an indexed product.
type queryRequest struct {
	Query      []float64 `json:"query,omitempty"`
	Product    *int      `json:"product,omitempty"`
	Preference []float64 `json:"preference,omitempty"`
	K          int       `json:"k"`
	// Parallelism requests intra-query workers for this query: 0 (or
	// absent) uses the index default, values above the server cap are
	// clamped to it, negative values are rejected with 400.
	Parallelism int `json:"parallelism,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decode parses a POST body into req, enforcing method and size limits.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, req *queryRequest) bool {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return false
	}
	return true
}

// resolveQuery produces the query point from either field.
func (s *Server) resolveQuery(req *queryRequest) (gridrank.Vector, error) {
	switch {
	case req.Query != nil && req.Product != nil:
		return nil, errors.New("provide either query or product, not both")
	case req.Query != nil:
		return req.Query, nil
	case req.Product != nil:
		return s.ix.Product(*req.Product)
	default:
		return nil, errors.New("query vector or product index required")
	}
}

// resolveParallelism validates and clamps a request's worker count.
func (s *Server) resolveParallelism(p int) (int, error) {
	if p < 0 {
		return 0, fmt.Errorf("parallelism must be non-negative, got %d", p)
	}
	if p > s.maxParallelism {
		p = s.maxParallelism
	}
	return p, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"dim":             s.ix.Dim(),
		"products":        s.ix.NumProducts(),
		"preferences":     s.ix.NumPreferences(),
		"gridPartitions":  s.ix.GridPartitions(),
		"gridMemoryBytes": s.ix.GridMemoryBytes(),
		"maxParallelism":  s.maxParallelism,
	})
}

type rtkResponse struct {
	Preferences []int          `json:"preferences"`
	Count       int            `json:"count"`
	Stats       gridrank.Stats `json:"stats"`
}

func (s *Server) handleReverseTopK(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	q, err := s.resolveQuery(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	workers, err := s.resolveParallelism(req.Parallelism)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var res []int
	var st gridrank.Stats
	if workers == 0 {
		res, st, err = s.ix.ReverseTopKStats(q, req.K)
	} else {
		res, st, err = s.ix.ReverseTopKParallelStats(q, req.K, workers)
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if res == nil {
		res = []int{}
	}
	s.writeJSON(w, http.StatusOK, rtkResponse{Preferences: res, Count: len(res), Stats: st})
}

type rkrMatch struct {
	Preference int `json:"preference"`
	Rank       int `json:"rank"`     // 0-based count of better products
	Position   int `json:"position"` // 1-based rank shown to humans
}

type rkrResponse struct {
	Matches []rkrMatch     `json:"matches"`
	Stats   gridrank.Stats `json:"stats"`
}

func (s *Server) handleReverseKRanks(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	q, err := s.resolveQuery(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	workers, err := s.resolveParallelism(req.Parallelism)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var res []gridrank.Match
	var st gridrank.Stats
	if workers == 0 {
		res, st, err = s.ix.ReverseKRanksStats(q, req.K)
	} else {
		res, st, err = s.ix.ReverseKRanksParallelStats(q, req.K, workers)
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	matches := make([]rkrMatch, len(res))
	for i, m := range res {
		matches[i] = rkrMatch{Preference: m.WeightIndex, Rank: m.Rank, Position: m.Rank + 1}
	}
	s.writeJSON(w, http.StatusOK, rkrResponse{Matches: matches, Stats: st})
}

type topkResponse struct {
	Products []gridrank.Result `json:"products"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Preference == nil {
		s.writeError(w, http.StatusBadRequest, errors.New("preference vector required"))
		return
	}
	res, err := s.ix.TopK(req.Preference, req.K)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, topkResponse{Products: res})
}

type rankResponse struct {
	Rank     int `json:"rank"`
	Position int `json:"position"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Preference == nil {
		s.writeError(w, http.StatusBadRequest, errors.New("preference vector required"))
		return
	}
	q, err := s.resolveQuery(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rank, err := s.ix.Rank(req.Preference, q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rankResponse{Rank: rank, Position: rank + 1})
}
