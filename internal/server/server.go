// Package server exposes a gridrank index over HTTP with a small JSON
// API, turning the library into the kind of service the paper's
// applications describe (market analysis, product placement, business
// reviewing). Queries read immutable epoch snapshots and the mutation
// endpoints install new epochs atomically, so all handlers are safe
// under concurrent requests — including mutations racing queries.
//
// Endpoints:
//
//	GET  /healthz            liveness
//	GET  /metrics            Prometheus/OpenMetrics exposition (see internal/metrics;
//	                         Accept: application/openmetrics-text gets exemplars + # EOF)
//	GET  /debug/traces       recent query traces, newest first (see internal/trace)
//	GET  /debug/traces/{id}  one stored trace with its full span tree
//	GET  /debug/flight       the flight recorder's digest ring, newest first
//	GET  /debug/bundle       one-shot diagnostics bundle (tar.gz, see internal/diag)
//	GET  /v1/index           index metadata (incl. maxParallelism, queryTimeoutMs)
//	POST /v1/reverse-topk    {"query":[...]|"product":i, "k":100, "parallelism":4, "stats":true, "timeoutMs":500}
//	POST /v1/reverse-kranks  {"query":[...]|"product":i, "k":10, "parallelism":4, "stats":true, "timeoutMs":500}
//	POST /v1/batch           {"queries":[{"type":"reverse-topk","product":3,"k":10}, ...], "parallelism":4}
//	POST /v1/topk            {"preference":[...], "k":10}
//	POST /v1/rank            {"preference":[...], "query":[...]|"product":i}
//	POST   /v1/products         insert one product or a batch (see mutate.go)
//	DELETE /v1/products/{id}    delete one product
//	DELETE /v1/products         {"ids":[...]} batch delete
//	POST   /v1/preferences      insert one preference or a batch
//	DELETE /v1/preferences/{id} delete one preference
//	DELETE /v1/preferences      {"ids":[...]} batch delete
//	POST   /v1/subscriptions             register a continuous monitor (see sub.go)
//	GET    /v1/subscriptions/{id}/events SSE stream of enter/leave events
//	DELETE /v1/subscriptions/{id}        end a subscription
//
// Request lifecycle: every query runs under the request's context, with
// a deadline from the per-request "timeoutMs" field (falling back to
// Config.QueryTimeout). A query whose deadline passes is cut off within
// one preference chunk and answered 504; a query whose client went away
// stops the same way and is recorded as 499. All requests flow through
// the metrics middleware (counts, latency histogram, filter rate — see
// GET /metrics) and, when Config.Logger is set, structured request
// logging.
//
// Tracing: with Config.TraceSampleRate or Config.SlowQuery set, the
// query endpoints record per-request traces — decode, epoch snapshot,
// grid scan (with the Case-1/2/3 breakdown), per-worker scan spans,
// merge and encode. Incoming W3C traceparent headers are honoured (the
// remote trace ID is reused and always sampled); sampled responses
// carry a "trace_id" field and a traceparent response header, and slow
// queries are logged and always captured regardless of the sampling
// coin. Completed traces are served by the /debug/traces endpoints.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"gridrank"
	"gridrank/internal/metrics"
	"gridrank/internal/trace"
)

// maxBodyBytes bounds request bodies; a query vector of a few thousand
// dimensions fits comfortably.
const maxBodyBytes = 1 << 20

// DefaultMaxBatch bounds the number of queries in one /v1/batch request.
const DefaultMaxBatch = 256

// DefaultTraceBuffer is the default capacity of the completed-trace ring
// served at /debug/traces.
const DefaultTraceBuffer = 256

// statusClientClosed is nginx's convention for "client closed request":
// the client disconnected before the answer was ready, so no status ever
// reaches it — the code exists for logs and the error metric.
const statusClientClosed = 499

// Endpoint names used for metrics labels.
const (
	epHealthz     = "healthz"
	epIndex       = "index"
	epRTK         = "reverse_topk"
	epRKR         = "reverse_kranks"
	epBatch       = "batch"
	epTopK        = "topk"
	epRank        = "rank"
	epProducts    = "products"
	epPreferences = "preferences"
	epSubs        = "subscriptions"
)

// Config tunes server behaviour beyond the index itself.
type Config struct {
	// MaxParallelism caps the per-request "parallelism" field of the
	// reverse-topk and reverse-kranks endpoints: requests asking for
	// more workers are clamped to this value, never rejected. 0 means
	// GOMAXPROCS, the number of workers beyond which a single query
	// cannot speed up anyway.
	MaxParallelism int

	// QueryTimeout is the default per-query deadline. Requests may
	// override it with a positive "timeoutMs" field. 0 means no default
	// deadline (the request context still cancels abandoned queries).
	QueryTimeout time.Duration

	// MaxBatch caps the number of queries one /v1/batch request may
	// carry. 0 means DefaultMaxBatch.
	MaxBatch int

	// Logger, when set, receives one structured record per request
	// (endpoint, method, status, duration). nil disables request
	// logging.
	Logger *slog.Logger

	// Metrics, when set, is the registry the server reports into —
	// share one across servers to aggregate. nil creates a private
	// registry, exposed at GET /metrics either way.
	Metrics *metrics.Registry

	// TraceSampleRate is the fraction of queries traced head-first, in
	// [0, 1]. 0 disables probabilistic sampling; slow-query capture and
	// remote traceparent headers still work when SlowQuery is set.
	TraceSampleRate float64

	// SlowQuery, when positive, turns on tail-based capture: every query
	// records spans, and those slower than this threshold are kept in
	// the trace ring and logged even when the sampling coin said no.
	SlowQuery time.Duration

	// TraceBuffer bounds the completed-trace ring served at
	// /debug/traces. 0 means DefaultTraceBuffer.
	TraceBuffer int

	// OTLPEndpoint, when set, exports every kept trace to an OTLP/HTTP
	// collector at this URL (e.g. "http://collector:4318"). Export
	// follows the keep decision — only sampled or slow traces leave the
	// process — so it is inert unless TraceSampleRate or SlowQuery is
	// also set. The exporter never blocks a query: a stalled collector
	// fills a bounded queue and further spans are dropped and counted
	// (gridrank_otlp_spans_dropped_total). An invalid URL makes
	// NewWithConfig panic.
	OTLPEndpoint string

	// OTLPServiceName overrides the service.name resource attribute on
	// exported spans. Empty uses the exporter's default.
	OTLPServiceName string

	// CacheSize, when positive, enables the index's answer cache with
	// room for that many cached reverse-rank answers. 0 leaves the cache
	// off (unless the caller enabled it on the index directly — the
	// server reports cache metrics either way).
	CacheSize int

	// CacheTTL bounds the age of served cache entries when CacheSize is
	// set. 0 means entries live until invalidated or evicted; a negative
	// value is invalid and makes NewWithConfig panic.
	CacheTTL time.Duration

	// MaxSubscribers bounds live continuous subscriptions; further
	// POST /v1/subscriptions requests get 429. 0 means
	// DefaultMaxSubscribers; negative means unlimited.
	MaxSubscribers int

	// EventBuffer is the per-subscription event buffer. A subscriber
	// that lets it fill is cancelled with a "lagged" terminal event. 0
	// means DefaultEventBuffer.
	EventBuffer int
}

// Server wraps an index with HTTP handlers.
type Server struct {
	ix             *gridrank.Index
	mux            *http.ServeMux
	maxParallelism int
	queryTimeout   time.Duration
	maxBatch       int
	logger         *slog.Logger
	metrics        *metrics.Registry
	tracer         *trace.Tracer
	exporter       *trace.Exporter

	// configInfo is the sanitized configuration snapshot bundled by
	// GET /debug/bundle: plain limits and rates only — the collector URL
	// (which may embed credentials) is reduced to a boolean.
	configInfo map[string]any

	// Continuous subscription state (see sub.go): the live handles by
	// id, the per-subscription event buffer, and the drain signal SSE
	// handlers select on so shutdown never stalls behind an open stream.
	subMu       sync.Mutex
	subs        map[uint64]*gridrank.Subscription
	eventBuffer int
	draining    chan struct{}
	drainOnce   sync.Once
}

// New builds a Server around an index with the default configuration.
func New(ix *gridrank.Index) *Server {
	return NewWithConfig(ix, Config{})
}

// NewWithConfig builds a Server around an index.
func NewWithConfig(ix *gridrank.Index, cfg Config) *Server {
	if cfg.MaxParallelism <= 0 {
		cfg.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.TraceBuffer <= 0 {
		cfg.TraceBuffer = DefaultTraceBuffer
	}
	tracer := trace.New(trace.Config{
		SampleRate: cfg.TraceSampleRate,
		SlowQuery:  cfg.SlowQuery,
		Capacity:   cfg.TraceBuffer,
		Logger:     cfg.Logger,
	})
	if tracer.Enabled() {
		cfg.Metrics.SetTraceSource(func() metrics.TraceCounts {
			c := tracer.Counts()
			return metrics.TraceCounts{
				Started: c.Started, Kept: c.Kept, Dropped: c.Dropped,
				Slow: c.Slow, Evicted: c.Evicted, Resident: c.Resident,
			}
		})
	}
	var exporter *trace.Exporter
	if cfg.OTLPEndpoint != "" {
		exp, err := trace.NewExporter(trace.ExporterConfig{
			Endpoint:    cfg.OTLPEndpoint,
			ServiceName: cfg.OTLPServiceName,
		})
		if err != nil {
			panic("server: invalid OTLP endpoint: " + err.Error())
		}
		tracer.SetExporter(exp)
		exporter = exp
		cfg.Metrics.SetOTLPSource(func() metrics.OTLPCounts {
			c := exp.Counts()
			return metrics.OTLPCounts{
				Enqueued: c.Enqueued, Exported: c.Exported, Dropped: c.Dropped,
				SendFailures: c.SendFailures, Retries: c.Retries, Queue: int64(c.Queue),
			}
		})
	}
	if ix.FlightEnabled() {
		cfg.Metrics.SetFlightSource(func() metrics.FlightCounts {
			c := ix.FlightCounts()
			return metrics.FlightCounts{
				Recorded: c.Recorded, Queries: c.Queries, Mutations: c.Mutations,
				Subscriptions: c.Subscriptions, Capacity: int64(c.Capacity),
			}
		})
	}
	if cfg.CacheSize > 0 {
		// EnableCache validates the config; an invalid value (e.g. a
		// negative TTL) is a programming error and fails loudly rather
		// than silently leaving the cache off.
		if err := ix.EnableCache(cfg.CacheSize, cfg.CacheTTL); err != nil {
			panic("server: invalid cache config: " + err.Error())
		}
	}
	if ix.CacheEnabled() {
		cfg.Metrics.SetCacheSource(func() metrics.CacheCounts {
			cs, ok := ix.CacheStats()
			if !ok {
				return metrics.CacheCounts{}
			}
			return metrics.CacheCounts{
				Hits: cs.Hits, Misses: cs.Misses,
				Stores: cs.Stores, RejectedStores: cs.RejectedStores,
				Invalidations: cs.Invalidations, Flushes: cs.Flushes,
				Evictions: cs.Evictions, Expirations: cs.Expirations,
				Entries: int64(cs.Entries),
			}
		})
	}
	switch {
	case cfg.MaxSubscribers == 0:
		cfg.MaxSubscribers = DefaultMaxSubscribers
	case cfg.MaxSubscribers < 0:
		cfg.MaxSubscribers = 0 // unlimited at the index layer
	}
	if err := ix.SetSubscriberLimit(cfg.MaxSubscribers); err != nil {
		panic("server: invalid subscriber limit: " + err.Error())
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = DefaultEventBuffer
	}
	cfg.Metrics.SetSubSource(func() metrics.SubCounts {
		st := ix.SubscriptionStats()
		return metrics.SubCounts{
			Monitors: st.Monitors, Subscribed: st.Subscribed,
			Unsubscribed: st.Unsubscribed, Events: st.Events, Lagged: st.Lagged,
			DiffPasses: st.DiffPasses, FullPasses: st.FullPasses,
			GatedSkips:         st.GatedSkips,
			PrefsDiffEvaluated: st.PrefsDiffEvaluated,
			PrefsDiffFullCost:  st.PrefsDiffFullCost,
		}
	})
	if tracer.Enabled() {
		ix.SetSubscriptionTracer(tracer)
	}
	// Layout is fixed at build time, so the labels are set once here.
	lay := ix.Layout()
	cfg.Metrics.SetLayout(metrics.Layout{
		Packed: lay.Packed, BitsPerDim: lay.BitsPerDim, RowBlock: lay.RowBlock,
	})
	s := &Server{
		ix:             ix,
		mux:            http.NewServeMux(),
		maxParallelism: cfg.MaxParallelism,
		queryTimeout:   cfg.QueryTimeout,
		maxBatch:       cfg.MaxBatch,
		logger:         cfg.Logger,
		metrics:        cfg.Metrics,
		tracer:         tracer,
		exporter:       exporter,
		subs:           make(map[uint64]*gridrank.Subscription),
		eventBuffer:    cfg.EventBuffer,
		draining:       make(chan struct{}),
	}
	s.configInfo = map[string]any{
		"maxParallelism":  cfg.MaxParallelism,
		"queryTimeoutMs":  cfg.QueryTimeout.Milliseconds(),
		"maxBatch":        cfg.MaxBatch,
		"cacheSize":       cfg.CacheSize,
		"cacheTTLMs":      cfg.CacheTTL.Milliseconds(),
		"maxSubscribers":  cfg.MaxSubscribers,
		"eventBuffer":     cfg.EventBuffer,
		"traceSampleRate": cfg.TraceSampleRate,
		"slowQueryMs":     cfg.SlowQuery.Milliseconds(),
		"traceBuffer":     cfg.TraceBuffer,
		"otlpConfigured":  cfg.OTLPEndpoint != "",
	}
	s.mux.HandleFunc("/healthz", s.instrument(epHealthz, s.handleHealth))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	s.mux.HandleFunc("GET /debug/bundle", s.handleBundle)
	s.mux.HandleFunc("/v1/index", s.instrument(epIndex, s.handleIndex))
	s.mux.HandleFunc("/v1/reverse-topk", s.instrument(epRTK, s.handleReverseTopK))
	s.mux.HandleFunc("/v1/reverse-kranks", s.instrument(epRKR, s.handleReverseKRanks))
	s.mux.HandleFunc("/v1/batch", s.instrument(epBatch, s.handleBatch))
	s.mux.HandleFunc("/v1/topk", s.instrument(epTopK, s.handleTopK))
	s.mux.HandleFunc("/v1/rank", s.instrument(epRank, s.handleRank))
	// Mutation routes (see mutate.go) use method-qualified patterns so
	// POST and DELETE on one path dispatch to distinct handlers and other
	// methods get the mux's own 405.
	s.mux.HandleFunc("POST /v1/products", s.instrument(epProducts, s.handleInsertProducts))
	s.mux.HandleFunc("DELETE /v1/products", s.instrument(epProducts, s.handleDeleteProducts))
	s.mux.HandleFunc("DELETE /v1/products/{id}", s.instrument(epProducts, s.handleDeleteProduct))
	s.mux.HandleFunc("POST /v1/preferences", s.instrument(epPreferences, s.handleInsertPreferences))
	s.mux.HandleFunc("DELETE /v1/preferences", s.instrument(epPreferences, s.handleDeletePreferences))
	s.mux.HandleFunc("DELETE /v1/preferences/{id}", s.instrument(epPreferences, s.handleDeletePreference))
	// Continuous subscription routes (see sub.go). The SSE stream is
	// instrumented too: its latency sample is the stream's lifetime.
	s.mux.HandleFunc("POST /v1/subscriptions", s.instrument(epSubs, s.handleSubscribe))
	s.mux.HandleFunc("GET /v1/subscriptions/{id}/events", s.instrument(epSubs, s.handleSubscriptionEvents))
	s.mux.HandleFunc("DELETE /v1/subscriptions/{id}", s.instrument(epSubs, s.handleUnsubscribe))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics returns the server's registry, for sharing or testing.
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// statusWriter captures the final status code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers (the
// SSE subscription stream) keep working through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the observability middleware: request
// and error counters, the latency histogram, and structured logging. A
// request whose context died before the handler wrote anything is
// recorded as 499 (client closed request). When the handler advertised a
// sampled trace (the traceparent response header set by decorateTraced),
// its trace ID becomes the exemplar of the latency bucket this request
// lands in, so an OpenMetrics scrape links latency spikes to span trees.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ep.Begin()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		d := time.Since(start)
		ep.ObserveExemplar(d, sw.status, traceIDFromHeader(sw.Header().Get("traceparent")))
		if s.logger != nil {
			s.logger.Info("request",
				"endpoint", name,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"durationMs", float64(d.Microseconds())/1e3,
				"remote", r.RemoteAddr,
			)
		}
	}
}

// queryRequest is the shared request shape: either an inline vector or a
// reference to an indexed product.
type queryRequest struct {
	Query      []float64 `json:"query,omitempty"`
	Product    *int      `json:"product,omitempty"`
	Preference []float64 `json:"preference,omitempty"`
	K          int       `json:"k"`
	// Parallelism requests intra-query workers for this query: 0 (or
	// absent) uses the index default, values above the server cap are
	// clamped to it, negative values are rejected with 400.
	Parallelism int `json:"parallelism,omitempty"`
	// Stats, when true, includes the work-statistics block in the
	// response.
	Stats bool `json:"stats,omitempty"`
	// TimeoutMs overrides the server's default query deadline for this
	// request. 0 (or absent) uses the default; negative values are
	// rejected with 400.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// queryErrorStatus maps a query error to its HTTP status: deadline
// overruns are 504, a client that went away is 499, anything else is a
// caller mistake.
func queryErrorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosed
	default:
		return http.StatusBadRequest
	}
}

// decode parses a POST body into req, enforcing method and size limits.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, req interface{}) bool {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return false
	}
	return s.decodeBody(w, r, req)
}

// decodeBody parses a request body into req regardless of method (the
// mutation routes bind methods in their mux patterns).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, req interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return false
	}
	return true
}

// resolveQueryVector produces the query point from either field.
func (s *Server) resolveQueryVector(query []float64, product *int) (gridrank.Vector, error) {
	switch {
	case query != nil && product != nil:
		return nil, errors.New("provide either query or product, not both")
	case query != nil:
		return query, nil
	case product != nil:
		return s.ix.Product(*product)
	default:
		return nil, errors.New("query vector or product index required")
	}
}

// resolveParallelism validates and clamps a request's worker count.
func (s *Server) resolveParallelism(p int) (int, error) {
	if p < 0 {
		return 0, fmt.Errorf("parallelism must be non-negative, got %d", p)
	}
	if p > s.maxParallelism {
		p = s.maxParallelism
	}
	return p, nil
}

// queryContext derives the context one query (or batch) runs under: the
// request context — which already dies when the client disconnects —
// plus the deadline from timeoutMs or the server default.
func (s *Server) queryContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc, error) {
	if timeoutMs < 0 {
		return nil, nil, fmt.Errorf("timeoutMs must be non-negative, got %d", timeoutMs)
	}
	timeout := s.queryTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
	}
	if timeout <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, nil
}

// queryOptions assembles the per-call options shared by both query
// endpoints. The stats sink is always attached: the metrics layer needs
// the filter counters even when the client did not ask for them.
func queryOptions(workers int, st *gridrank.Stats) []gridrank.QueryOption {
	opts := []gridrank.QueryOption{gridrank.WithStats(st)}
	if workers > 0 {
		opts = append(opts, gridrank.WithWorkers(workers))
	}
	return opts
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if acceptsOpenMetrics(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = s.metrics.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// acceptsOpenMetrics reports whether the Accept header asks for the
// OpenMetrics exposition. Prometheus sends
// "application/openmetrics-text;version=1.0.0;q=...,text/plain;..."
// when exemplar scraping is enabled; a bare media type match is enough —
// anyone naming OpenMetrics explicitly wants the exemplar-bearing form.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(part, ";")
		if strings.TrimSpace(mt) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.writeJSON(w, http.StatusOK, s.indexMeta())
}

// indexMeta assembles the index metadata document served by
// GET /v1/index and bundled by GET /debug/bundle.
func (s *Server) indexMeta() map[string]interface{} {
	meta := map[string]interface{}{
		"dim":             s.ix.Dim(),
		"epoch":           s.ix.Epoch(),
		"products":        s.ix.NumProducts(),
		"preferences":     s.ix.NumPreferences(),
		"pointGroups":     s.ix.PointGroups(),
		"weightGroups":    s.ix.WeightGroups(),
		"gridPartitions":  s.ix.GridPartitions(),
		"gridMemoryBytes": s.ix.GridMemoryBytes(),
		"maxParallelism":  s.maxParallelism,
		"maxBatch":        s.maxBatch,
		"queryTimeoutMs":  s.queryTimeout.Milliseconds(),
		"cacheEnabled":    s.ix.CacheEnabled(),
		"format":          s.ix.Format(),
		"resident":        s.ix.Resident(),
	}
	lay := s.ix.Layout()
	meta["layout"] = map[string]interface{}{
		"packed":     lay.Packed,
		"bitsPerDim": lay.BitsPerDim,
		"rowBlock":   lay.RowBlock,
	}
	if cs, ok := s.ix.CacheStats(); ok {
		meta["cacheSize"] = cs.Size
		meta["cacheTTLMs"] = cs.TTL.Milliseconds()
		meta["cacheEntries"] = cs.Entries
	}
	return meta
}

type rtkResponse struct {
	Preferences []int           `json:"preferences"`
	Count       int             `json:"count"`
	Stats       *gridrank.Stats `json:"stats,omitempty"`
	// TraceID identifies this query's trace when it was head-sampled;
	// retrieve the span tree at GET /debug/traces/{trace_id}.
	TraceID string `json:"trace_id,omitempty"`
}

func (s *Server) handleReverseTopK(w http.ResponseWriter, r *http.Request) {
	tr := s.startTrace(r, epRTK)
	var req queryRequest
	dsp := tr.StartSpan("decode")
	ok := s.decode(w, r, &req)
	dsp.End()
	if !ok {
		finishQueryTrace(tr, nil, errors.New("bad request"))
		return
	}
	tr.SetAttr("k", req.K)
	q, err := s.resolveQueryVector(req.Query, req.Product)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		finishQueryTrace(tr, nil, err)
		return
	}
	workers, err := s.resolveParallelism(req.Parallelism)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		finishQueryTrace(tr, nil, err)
		return
	}
	ctx, cancel, err := s.queryContext(r, req.TimeoutMs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		finishQueryTrace(tr, nil, err)
		return
	}
	defer cancel()
	var st gridrank.Stats
	res, err := s.ix.ReverseTopKCtx(ctx, q, req.K, traceQueryOption(queryOptions(workers, &st), tr)...)
	s.metrics.Endpoint(epRTK).AddFilterCounts(st.Filtered, st.Refined)
	if err != nil {
		s.writeError(w, queryErrorStatus(err), err)
		finishQueryTrace(tr, &st, err)
		return
	}
	if res == nil {
		res = []int{}
	}
	resp := rtkResponse{Preferences: res, Count: len(res), TraceID: decorateTraced(w, tr)}
	if req.Stats {
		resp.Stats = &st
	}
	esp := tr.StartSpan("encode")
	s.writeJSON(w, http.StatusOK, resp)
	esp.End()
	finishQueryTrace(tr, &st, nil)
}

type rkrMatch struct {
	Preference int `json:"preference"`
	Rank       int `json:"rank"`     // 0-based count of better products
	Position   int `json:"position"` // 1-based rank shown to humans
}

type rkrResponse struct {
	Matches []rkrMatch      `json:"matches"`
	Stats   *gridrank.Stats `json:"stats,omitempty"`
	// TraceID identifies this query's trace when it was head-sampled;
	// retrieve the span tree at GET /debug/traces/{trace_id}.
	TraceID string `json:"trace_id,omitempty"`
}

func (s *Server) handleReverseKRanks(w http.ResponseWriter, r *http.Request) {
	tr := s.startTrace(r, epRKR)
	var req queryRequest
	dsp := tr.StartSpan("decode")
	ok := s.decode(w, r, &req)
	dsp.End()
	if !ok {
		finishQueryTrace(tr, nil, errors.New("bad request"))
		return
	}
	tr.SetAttr("k", req.K)
	q, err := s.resolveQueryVector(req.Query, req.Product)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		finishQueryTrace(tr, nil, err)
		return
	}
	workers, err := s.resolveParallelism(req.Parallelism)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		finishQueryTrace(tr, nil, err)
		return
	}
	ctx, cancel, err := s.queryContext(r, req.TimeoutMs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		finishQueryTrace(tr, nil, err)
		return
	}
	defer cancel()
	var st gridrank.Stats
	res, err := s.ix.ReverseKRanksCtx(ctx, q, req.K, traceQueryOption(queryOptions(workers, &st), tr)...)
	s.metrics.Endpoint(epRKR).AddFilterCounts(st.Filtered, st.Refined)
	if err != nil {
		s.writeError(w, queryErrorStatus(err), err)
		finishQueryTrace(tr, &st, err)
		return
	}
	matches := make([]rkrMatch, len(res))
	for i, m := range res {
		matches[i] = rkrMatch{Preference: m.WeightIndex, Rank: m.Rank, Position: m.Rank + 1}
	}
	resp := rkrResponse{Matches: matches, TraceID: decorateTraced(w, tr)}
	if req.Stats {
		resp.Stats = &st
	}
	esp := tr.StartSpan("encode")
	s.writeJSON(w, http.StatusOK, resp)
	esp.End()
	finishQueryTrace(tr, &st, nil)
}

// batchItem is one query of a /v1/batch request.
type batchItem struct {
	Type    string    `json:"type"` // "reverse-topk" or "reverse-kranks"
	Query   []float64 `json:"query,omitempty"`
	Product *int      `json:"product,omitempty"`
	K       int       `json:"k"`
}

type batchRequest struct {
	Queries []batchItem `json:"queries"`
	// Parallelism is the worker count the batch fans out across (the
	// inter-query pool of the library's batch API), validated and
	// clamped like the single-query field.
	Parallelism int `json:"parallelism,omitempty"`
	TimeoutMs   int `json:"timeoutMs,omitempty"`
}

// batchItemResult is one query's outcome, in input order. Exactly one of
// the three fields is set.
type batchItemResult struct {
	ReverseTopK   *rtkResponse `json:"reverseTopk,omitempty"`
	ReverseKRanks *rkrResponse `json:"reverseKranks,omitempty"`
	Error         string       `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchItemResult `json:"results"`
	// TraceID identifies the batch's trace when it was head-sampled. All
	// queries of the batch land their spans on this one trace.
	TraceID string `json:"trace_id,omitempty"`
}

// handleBatch fans a list of mixed reverse-topk / reverse-kranks queries
// through the library's batch machinery: items are grouped by (type, k),
// each group runs as one concurrent batch, and the answers are scattered
// back into input order. One bad item fails only itself; an expired or
// cancelled batch context fails the whole request (504 / 499).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tr := s.startTrace(r, epBatch)
	var req batchRequest
	dsp := tr.StartSpan("decode")
	ok := s.decode(w, r, &req)
	dsp.End()
	if !ok {
		finishQueryTrace(tr, nil, errors.New("bad request"))
		return
	}
	tr.SetAttr("queries", len(req.Queries))
	if len(req.Queries) == 0 {
		err := errors.New("queries must be a non-empty array")
		s.writeError(w, http.StatusBadRequest, err)
		finishQueryTrace(tr, nil, err)
		return
	}
	if len(req.Queries) > s.maxBatch {
		err := fmt.Errorf("batch of %d queries exceeds the limit of %d", len(req.Queries), s.maxBatch)
		s.writeError(w, http.StatusBadRequest, err)
		finishQueryTrace(tr, nil, err)
		return
	}
	workers, err := s.resolveParallelism(req.Parallelism)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		finishQueryTrace(tr, nil, err)
		return
	}
	ctx, cancel, err := s.queryContext(r, req.TimeoutMs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		finishQueryTrace(tr, nil, err)
		return
	}
	defer cancel()

	results := make([]batchItemResult, len(req.Queries))
	type group struct {
		indices []int             // positions in req.Queries
		vectors []gridrank.Vector // resolved query points
	}
	groups := make(map[string]*group) // key: type + k
	for i, item := range req.Queries {
		if item.Type != "reverse-topk" && item.Type != "reverse-kranks" {
			results[i] = batchItemResult{Error: fmt.Sprintf("unknown type %q (want reverse-topk or reverse-kranks)", item.Type)}
			continue
		}
		q, err := s.resolveQueryVector(item.Query, item.Product)
		if err != nil {
			results[i] = batchItemResult{Error: err.Error()}
			continue
		}
		key := fmt.Sprintf("%s/%d", item.Type, item.K)
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
		}
		g.indices = append(g.indices, i)
		g.vectors = append(g.vectors, q)
	}
	for _, g := range groups {
		// Every item of a group shares its type and k by construction.
		item := req.Queries[g.indices[0]]
		k := item.K
		switch item.Type {
		case "reverse-topk":
			batch := s.ix.ReverseTopKBatchCtx(ctx, g.vectors, k, workers, traceQueryOption(nil, tr)...)
			for j, br := range batch {
				i := g.indices[j]
				if br.Err != nil {
					results[i] = batchItemResult{Error: br.Err.Error()}
					continue
				}
				res := br.Value
				if res == nil {
					res = []int{}
				}
				results[i] = batchItemResult{ReverseTopK: &rtkResponse{Preferences: res, Count: len(res)}}
			}
		case "reverse-kranks":
			batch := s.ix.ReverseKRanksBatchCtx(ctx, g.vectors, k, workers, traceQueryOption(nil, tr)...)
			for j, br := range batch {
				i := g.indices[j]
				if br.Err != nil {
					results[i] = batchItemResult{Error: br.Err.Error()}
					continue
				}
				matches := make([]rkrMatch, len(br.Value))
				for mi, m := range br.Value {
					matches[mi] = rkrMatch{Preference: m.WeightIndex, Rank: m.Rank, Position: m.Rank + 1}
				}
				results[i] = batchItemResult{ReverseKRanks: &rkrResponse{Matches: matches}}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		s.writeError(w, queryErrorStatus(err), err)
		finishQueryTrace(tr, nil, err)
		return
	}
	esp := tr.StartSpan("encode")
	s.writeJSON(w, http.StatusOK, batchResponse{Results: results, TraceID: decorateTraced(w, tr)})
	esp.End()
	finishQueryTrace(tr, nil, nil)
}

type topkResponse struct {
	Products []gridrank.Result `json:"products"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Preference == nil {
		s.writeError(w, http.StatusBadRequest, errors.New("preference vector required"))
		return
	}
	res, err := s.ix.TopK(req.Preference, req.K)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, topkResponse{Products: res})
}

type rankResponse struct {
	Rank     int `json:"rank"`
	Position int `json:"position"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Preference == nil {
		s.writeError(w, http.StatusBadRequest, errors.New("preference vector required"))
		return
	}
	q, err := s.resolveQueryVector(req.Query, req.Product)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rank, err := s.ix.Rank(req.Preference, q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rankResponse{Rank: rank, Position: rank + 1})
}
