// Package topk implements top-k query evaluation (Definition 1 of the
// paper) and exact rank counting, the primitives every reverse-rank
// algorithm is defined against. It also provides the bounded result heap
// used by the reverse k-ranks algorithms (Algorithm 3's size-k heap).
package topk

import (
	"container/heap"
	"fmt"
	"sort"

	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

// Result is one scored element of a top-k answer.
type Result struct {
	Index int     // position in the point set P
	Score float64 // f_w(p)
}

// TopK returns the k lowest-scoring points of P under w (minimum scores are
// preferable), ordered by ascending score with index as tie-breaker so the
// answer is deterministic. If k >= len(P) the full ranking is returned.
// Counts one pairwise multiplication per point into c (may be nil).
func TopK(P []vec.Vector, w vec.Vector, k int, c *stats.Counters) []Result {
	if k <= 0 {
		return nil
	}
	if k > len(P) {
		k = len(P)
	}
	// Bounded max-heap of the k best (smallest) scores seen so far. The
	// full scan visits every point unconditionally, so consecutive points
	// pair through the widened vec.Dot2 kernel (scores stay bit-identical
	// to per-point Dot calls); offers happen in index order either way.
	h := make(maxHeap, 0, k)
	offer := func(i int, s float64) {
		if c != nil {
			c.PairwiseMults++
			c.PointsVisited++
		}
		if len(h) < k {
			heap.Push(&h, Result{i, s})
		} else if less(Result{i, s}, h[0]) {
			h[0] = Result{i, s}
			heap.Fix(&h, 0)
		}
	}
	i := 0
	for ; i+2 <= len(P); i += 2 {
		s0, s1 := vec.Dot2(w, P[i], P[i+1])
		offer(i, s0)
		offer(i+1, s1)
	}
	if i < len(P) {
		offer(i, vec.Dot(w, P[i]))
	}
	out := make([]Result, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool { return less(out[a], out[b]) })
	return out
}

// less orders results by ascending score, then ascending index.
func less(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Index < b.Index
}

// maxHeap keeps the worst (largest) retained result at the root.
type maxHeap []Result

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return less(h[j], h[i]) }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Rank returns rank(w, q): the number of points of P with a score strictly
// below f_w(q) (the paper's Definition 3 count; q's 1-based position is
// Rank+1). Counts pairwise multiplications into c (may be nil).
func Rank(P []vec.Vector, w, q vec.Vector, c *stats.Counters) int {
	fq := vec.Dot(w, q)
	if c != nil {
		c.PairwiseMults++
	}
	// Full scan with no early exit: pair consecutive points through
	// vec.Dot2 (bit-identical scores, same counters). RankBounded below
	// deliberately stays per-point — its cutoff exit must not pay for a
	// speculative second score.
	rank := 0
	i := 0
	for ; i+2 <= len(P); i += 2 {
		if c != nil {
			c.PairwiseMults += 2
			c.PointsVisited += 2
		}
		s0, s1 := vec.Dot2(w, P[i], P[i+1])
		if s0 < fq {
			rank++
		}
		if s1 < fq {
			rank++
		}
	}
	if i < len(P) {
		if c != nil {
			c.PairwiseMults++
			c.PointsVisited++
		}
		if vec.Dot(w, P[i]) < fq {
			rank++
		}
	}
	return rank
}

// RankBounded is Rank with early termination: it stops and reports
// (cutoff, false) as soon as the count reaches cutoff, the optimization
// the SIM baseline uses for reverse top-k. ok is true when the exact rank
// (< cutoff) was determined.
func RankBounded(P []vec.Vector, w, q vec.Vector, cutoff int, c *stats.Counters) (rank int, ok bool) {
	if cutoff <= 0 {
		return 0, false
	}
	fq := vec.Dot(w, q)
	if c != nil {
		c.PairwiseMults++
	}
	for _, p := range P {
		if c != nil {
			c.PairwiseMults++
			c.PointsVisited++
		}
		if vec.Dot(w, p) < fq {
			rank++
			if rank >= cutoff {
				return cutoff, false
			}
		}
	}
	return rank, true
}

// Match is one element of a reverse k-ranks answer: a weight vector index
// and q's rank under it.
type Match struct {
	WeightIndex int
	Rank        int
}

// matchWorse orders matches by descending rank then descending index, so
// the root of a max-heap holds the current worst retained match and ties
// resolve toward keeping the lowest weight indexes (deterministic answers).
func matchWorse(a, b Match) bool {
	if a.Rank != b.Rank {
		return a.Rank > b.Rank
	}
	return a.WeightIndex > b.WeightIndex
}

// KRankHeap is the bounded heap of Algorithm 3: it retains the k weight
// vectors with the smallest rank seen so far and exposes the current
// admission threshold (minRank) used to early-terminate rank counting.
//
// The heap operations are hand-rolled over []Match rather than going
// through container/heap: the interface{} indirection there boxes every
// pushed Match, which is the difference between a zero-allocation and an
// O(k)-allocation steady-state query (see DESIGN.md §9).
type KRankHeap struct {
	k int
	h []Match
}

// NewKRankHeap creates a heap retaining the best k matches. It panics when
// k < 1.
func NewKRankHeap(k int) *KRankHeap {
	if k < 1 {
		panic(fmt.Sprintf("topk: KRankHeap needs k >= 1, got %d", k))
	}
	return &KRankHeap{k: k}
}

// Len returns the number of retained matches.
func (kh *KRankHeap) Len() int { return len(kh.h) }

// Reset empties the heap and re-arms it for a new query retaining k
// matches, reusing the backing array. It panics when k < 1.
func (kh *KRankHeap) Reset(k int) {
	if k < 1 {
		panic(fmt.Sprintf("topk: KRankHeap needs k >= 1, got %d", k))
	}
	kh.k = k
	kh.h = kh.h[:0]
}

// Threshold returns the current admission cutoff: a new match must have
// rank strictly below the worst retained rank once the heap is full
// (matching Algorithm 3's minRank update; equal ranks keep the earlier
// weight index). Before the heap fills, every rank is admissible and the
// threshold is maxInt.
func (kh *KRankHeap) Threshold() int {
	if len(kh.h) < kh.k {
		return int(^uint(0) >> 1)
	}
	return kh.h[0].Rank
}

// Offer inserts a match if it beats the current threshold, evicting the
// worst retained match when full. It reports whether the match was kept.
func (kh *KRankHeap) Offer(m Match) bool {
	if len(kh.h) < kh.k {
		kh.h = append(kh.h, m)
		siftUpMatch(kh.h, len(kh.h)-1)
		return true
	}
	if !matchWorse(kh.h[0], m) {
		return false
	}
	kh.h[0] = m
	siftDownMatch(kh.h, 0)
	return true
}

// Results returns the retained matches ordered by ascending rank, then
// ascending weight index. The copy is heapsorted in place (it inherits
// the heap invariant from the retained slice), so the returned slice is
// the only allocation.
func (kh *KRankHeap) Results() []Match {
	out := make([]Match, len(kh.h))
	copy(out, kh.h)
	// Repeatedly swap the worst match (root) to the end: ascending
	// (rank, index) order falls out.
	for i := len(out) - 1; i > 0; i-- {
		out[0], out[i] = out[i], out[0]
		siftDownMatch(out[:i], 0)
	}
	return out
}

// siftUpMatch restores the max-heap invariant (worst match at the root
// under matchWorse) after appending at index i.
func siftUpMatch(h []Match, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !matchWorse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDownMatch restores the invariant after replacing the element at
// index i.
func siftDownMatch(h []Match, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && matchWorse(h[l], h[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && matchWorse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
