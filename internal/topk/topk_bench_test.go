package topk

import (
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
)

func BenchmarkTopK100of100K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 100000, 6, 10000).Points
	W := dataset.GenerateWeights(rng, dataset.Uniform, 16, 6).Points
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(P, W[i%len(W)], 100, nil)
	}
}

func BenchmarkRank100K(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 100000, 6, 10000).Points
	W := dataset.GenerateWeights(rng, dataset.Uniform, 16, 6).Points
	q := P[50000]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rank(P, W[i%len(W)], q, nil)
	}
}

func BenchmarkRankBoundedEarlyExit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 100000, 6, 10000).Points
	W := dataset.GenerateWeights(rng, dataset.Uniform, 16, 6).Points
	q := P[50000]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankBounded(P, W[i%len(W)], q, 100, nil)
	}
}

func BenchmarkKRankHeap(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	ranks := make([]int, 4096)
	for i := range ranks {
		ranks[i] = rng.Intn(100000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewKRankHeap(100)
		for wi, r := range ranks {
			h.Offer(Match{WeightIndex: wi, Rank: r})
		}
	}
}
